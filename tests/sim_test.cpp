// Tests for the OFDM numerology, coded uplink simulation and the batched
// detection entry point (Detector::detect_batch).
#include <gtest/gtest.h>

#include <cmath>

#include "api/detector_registry.h"
#include "channel/trace.h"
#include "core/flexcore_detector.h"
#include "detect/fcsd.h"
#include "ofdm/ofdm.h"
#include "parallel/thread_pool.h"
#include "sim/link.h"
#include "sim/montecarlo.h"

namespace fa = flexcore::api;
namespace fs = flexcore::sim;
namespace fd = flexcore::detect;
namespace fc = flexcore::core;
namespace ch = flexcore::channel;
namespace fo = flexcore::ofdm;
using flexcore::modulation::Constellation;

// ------------------------------------------------------------------- OFDM

TEST(Ofdm, WifiRateConstants) {
  fo::OfdmConfig cfg;  // defaults = paper's 802.11 numerology
  // 48 data subcarriers / 4 us = 12M vectors per second.
  EXPECT_NEAR(fo::vectors_per_second(cfg), 12e6, 1.0);
  // 64-QAM rate 1/2: 48 * 6 * 0.5 / 4us = 36 Mbit/s per user.
  EXPECT_NEAR(fo::per_user_rate_mbps(cfg, 6), 36.0, 1e-9);
  // 16-QAM rate 1/2: 24 Mbit/s per user.
  EXPECT_NEAR(fo::per_user_rate_mbps(cfg, 4), 24.0, 1e-9);
}

TEST(Ofdm, NetworkThroughputSumsUsers) {
  fo::OfdmConfig cfg;
  const double per[4] = {0.0, 0.5, 1.0, 0.0};
  // 16-QAM: 24 * (1 + 0.5 + 0 + 1) = 60 Mbit/s.
  EXPECT_NEAR(fo::network_throughput_mbps(cfg, 4, per, 4), 60.0, 1e-9);
}

TEST(Ofdm, PaddedInfoBitsFillsWholeSymbols) {
  fo::OfdmConfig cfg;
  for (int bps : {2, 4, 6}) {
    const std::size_t ncbps = fo::coded_bits_per_ofdm_symbol(cfg, bps);
    for (std::size_t req : {100u, 1000u, 4096u}) {
      const std::size_t info = fo::padded_info_bits(req, cfg, bps);
      EXPECT_GE(info, req);
      EXPECT_EQ((2 * (info + 6)) % ncbps, 0u) << "bps=" << bps << " req=" << req;
      // Padding never adds more than one block.
      EXPECT_LT(info, req + ncbps);
    }
  }
}

// ------------------------------------------------------------ coded link

namespace {

fs::LinkConfig small_link(int qam) {
  fs::LinkConfig cfg;
  cfg.qam_order = qam;
  cfg.info_bits_per_user = 300;  // keep unit tests fast
  return cfg;
}

ch::TraceConfig small_trace(std::size_t nr, std::size_t nt) {
  ch::TraceConfig cfg;
  cfg.nr = nr;
  cfg.nt = nt;
  return cfg;
}

}  // namespace

TEST(Link, PerfectChannelDeliversEveryPacket) {
  const fs::LinkConfig lcfg = small_link(16);
  fs::UplinkPacketLink link(lcfg);
  Constellation c(16);
  const auto det = fa::make_detector("zf-sic", {.constellation = &c});

  ch::TraceGenerator gen(small_trace(4, 4), 42);
  ch::Rng rng(43);
  const auto trace = gen.next();
  const auto out = link.run_packet(*det, trace, 1e-9, rng);
  for (bool ok : out.user_ok) EXPECT_TRUE(ok);
  EXPECT_EQ(out.symbol_errors, 0u);
  EXPECT_EQ(out.vectors_detected,
            link.ofdm_symbols_per_packet() * lcfg.ofdm.data_subcarriers);
}

TEST(Link, InfoBitsArePaddedConsistently) {
  const fs::LinkConfig lcfg = small_link(64);
  fs::UplinkPacketLink link(lcfg);
  const std::size_t ncbps = fo::coded_bits_per_ofdm_symbol(lcfg.ofdm, 6);
  EXPECT_EQ((2 * (link.info_bits() + 6)) % ncbps, 0u);
  EXPECT_EQ(link.ofdm_symbols_per_packet(),
            2 * (link.info_bits() + 6) / ncbps);
}

TEST(Link, HeavyNoiseKillsPackets) {
  const fs::LinkConfig lcfg = small_link(16);
  fs::UplinkPacketLink link(lcfg);
  Constellation c(16);
  const auto det = fa::make_detector("mmse", {.constellation = &c});

  ch::TraceGenerator gen(small_trace(4, 4), 44);
  ch::Rng rng(45);
  const auto out = link.run_packet(*det, gen.next(), 10.0, rng);
  std::size_t failed = 0;
  for (bool ok : out.user_ok) failed += !ok;
  EXPECT_GT(failed, 0u);
  EXPECT_GT(out.symbol_errors, out.symbols_sent / 4);
}

TEST(Link, CodingCorrectsSparseSymbolErrors) {
  // At moderate SNR the raw stream has symbol errors but Viterbi delivers
  // clean packets — the mechanism behind the paper's throughput metric.
  const fs::LinkConfig lcfg = small_link(4);
  fs::UplinkPacketLink link(lcfg);
  Constellation c(4);
  const auto det = fa::make_detector("zf-sic", {.constellation = &c});

  ch::TraceGenerator gen(small_trace(6, 4), 46);
  ch::Rng rng(47);
  std::size_t sym_errors = 0, packets_ok = 0, packets = 0;
  const double nv = ch::noise_var_for_snr_db(6.0);
  for (int p = 0; p < 10; ++p) {
    const auto out = link.run_packet(*det, gen.next(), nv, rng);
    sym_errors += out.symbol_errors;
    for (bool ok : out.user_ok) {
      ++packets;
      packets_ok += ok;
    }
  }
  EXPECT_GT(sym_errors, 0u) << "test wants a regime with raw errors";
  EXPECT_GT(packets_ok, packets * 6 / 10) << "coding failed to recover";
}

TEST(Link, SoftDecodingBeatsHardAtSameSnr) {
  // The paper's future-work extension: list-based soft output + soft
  // Viterbi should deliver at least as many packets as hard decisions.
  fs::LinkConfig lcfg = small_link(16);
  fs::UplinkPacketLink link(lcfg);
  Constellation c(16);
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-32", {.constellation = &c});

  const double nv = ch::noise_var_for_snr_db(10.0);
  std::size_t hard_ok = 0, soft_ok = 0;
  for (int p = 0; p < 8; ++p) {
    ch::TraceGenerator gen(small_trace(6, 6), 48 + static_cast<unsigned>(p));
    ch::Rng rng_h(100 + static_cast<unsigned>(p));
    ch::Rng rng_s(100 + static_cast<unsigned>(p));  // identical noise draws
    const auto trace = gen.next();
    const auto hard = link.run_packet(*det, trace, nv, rng_h);
    const auto soft = link.run_packet_soft(*det, trace, nv, rng_s);
    for (bool ok : hard.user_ok) hard_ok += ok;
    for (bool ok : soft.user_ok) soft_ok += ok;
  }
  EXPECT_GE(soft_ok, hard_ok);
}

// ----------------------------------------------------------- monte carlo

TEST(MonteCarlo, VerDecreasesWithSnr) {
  Constellation c(16);
  const auto det = fa::make_detector("zf-sic", {.constellation = &c});
  fs::VerScenario sc;
  sc.nr = 6;
  sc.nt = 6;
  sc.qam_order = 16;
  const auto lo = fs::measure_vector_error_rate(*det, sc, 8.0, 30, 20, 7);
  const auto hi = fs::measure_vector_error_rate(*det, sc, 20.0, 30, 20, 7);
  EXPECT_GT(lo.ver, hi.ver);
  EXPECT_GE(lo.ver, lo.ser);  // a vector error needs >= 1 symbol error
  EXPECT_EQ(lo.vectors, 600u);
}

TEST(MonteCarlo, ThroughputReflectsPer) {
  Constellation c(16);
  const auto det = fa::make_detector("mmse", {.constellation = &c});
  fs::LinkConfig lcfg = small_link(16);
  ch::TraceConfig tcfg = small_trace(6, 4);

  // Clean: every packet lands, throughput = Nt * per-user rate.
  const auto clean = fs::measure_throughput(*det, lcfg, tcfg, 1e-9, 4, 11);
  EXPECT_NEAR(clean.avg_per, 0.0, 1e-12);
  EXPECT_NEAR(clean.throughput_mbps, 4 * fo::per_user_rate_mbps(lcfg.ofdm, 4),
              1e-9);

  // Noisy: PER > 0 and throughput drops accordingly.
  const auto noisy = fs::measure_throughput(*det, lcfg, tcfg, 0.5, 4, 11);
  EXPECT_GT(noisy.avg_per, 0.0);
  EXPECT_LT(noisy.throughput_mbps, clean.throughput_mbps);
}

TEST(MonteCarlo, FindSnrForPerBrackets) {
  Constellation c(4);
  const auto det = fa::make_detector("zf-sic", {.constellation = &c});
  fs::LinkConfig lcfg = small_link(4);
  ch::TraceConfig tcfg = small_trace(6, 4);
  const double snr =
      fs::find_snr_for_per(*det, lcfg, tcfg, 0.5, 0.0, 30.0, 5, 4, 13);
  EXPECT_GT(snr, 0.0);
  EXPECT_LT(snr, 30.0);
  // PER at the found SNR should be in a sane band around the target.
  const double nv = ch::noise_var_for_snr_db(snr);
  const auto r = fs::measure_throughput(*det, lcfg, tcfg, nv, 16, 13);
  EXPECT_GT(r.avg_per, 0.05);
  EXPECT_LT(r.avg_per, 0.95);
}

// ---------------------------------------------------------- detect_batch

TEST(Batch, FcsdBatchMatchesSequentialDetection) {
  Constellation c(16);
  const auto det =
      fa::make_detector_as<fd::FcsdDetector>("fcsd-L1", {.constellation = &c});
  ch::Rng rng(55);
  const auto h = ch::rayleigh_iid(6, 6, rng);
  const double nv = 0.02;
  det->set_channel(h, nv);

  std::vector<flexcore::linalg::CVec> ys;
  std::vector<flexcore::detect::DetectionResult> want;
  for (int v = 0; v < 40; ++v) {
    flexcore::linalg::CVec s(6);
    for (int u = 0; u < 6; ++u) s[static_cast<std::size_t>(u)] = c.point(static_cast<int>(rng.uniform_int(16)));
    ys.push_back(ch::transmit(h, s, nv, rng));
    want.push_back(det->detect(ys.back()));
  }

  flexcore::parallel::ThreadPool pool(2);
  det->set_thread_pool(&pool);
  flexcore::detect::BatchResult out;
  det->detect_batch(ys, &out);
  ASSERT_EQ(out.results.size(), ys.size());
  EXPECT_EQ(out.tasks, ys.size() * det->num_paths());
  for (std::size_t v = 0; v < ys.size(); ++v) {
    EXPECT_EQ(out.results[v].symbols, want[v].symbols) << "vector " << v;
    EXPECT_NEAR(out.results[v].metric, want[v].metric, 1e-9) << "vector " << v;
  }
}

TEST(Batch, FlexCoreBatchMatchesSequential) {
  Constellation c(16);
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-24", {.constellation = &c});
  ch::Rng rng(56);
  const auto h = ch::rayleigh_iid(6, 6, rng);
  const double nv = 0.05;
  det->set_channel(h, nv);

  std::vector<flexcore::linalg::CVec> ys;
  for (int v = 0; v < 30; ++v) {
    flexcore::linalg::CVec s(6);
    for (int u = 0; u < 6; ++u) s[static_cast<std::size_t>(u)] = c.point(static_cast<int>(rng.uniform_int(16)));
    ys.push_back(ch::transmit(h, s, nv, rng));
  }

  flexcore::parallel::ThreadPool pool(2);
  det->set_thread_pool(&pool);
  flexcore::detect::BatchResult out;
  det->detect_batch(ys, &out);
  EXPECT_EQ(out.tasks, ys.size() * det->active_paths());
  for (std::size_t v = 0; v < ys.size(); ++v) {
    const auto want = det->detect(ys[v]);
    EXPECT_EQ(out.results[v].symbols, want.symbols) << "vector " << v;
    EXPECT_NEAR(out.results[v].metric, want.metric, 1e-9);
  }
}

TEST(Batch, EmptyBatchIsSafe) {
  Constellation c(16);
  const auto det = fa::make_detector("fcsd-L1", {.constellation = &c});
  flexcore::parallel::ThreadPool pool(2);
  det->set_thread_pool(&pool);
  flexcore::detect::BatchResult out;
  det->detect_batch({}, &out);
  EXPECT_EQ(out.tasks, 0u);
  EXPECT_TRUE(out.results.empty());
}
