// Tests for the lane-parallel path-kernel engine (detect/path_kernels.h):
// fp64 block kernels bit-identical to the scalar path_metric across
// detector families x constellations x MIMO sizes, the fp32 tier within a
// documented SER tolerance on a fig12-style sweep, and the ":fp32" spec
// grammar round-tripping through the registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "api/detector_registry.h"
#include "api/uplink_pipeline.h"
#include "channel/channel.h"
#include "core/flexcore_detector.h"
#include "detect/fcsd.h"
#include "detect/path_kernels.h"
#include "parallel/thread_pool.h"
#include "perfmodel/fixed_point.h"
#include "sim/frame_synth.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace fs = flexcore::sim;
namespace fl = flexcore::linalg;
using flexcore::modulation::Constellation;

namespace {

/// Documented fp32 tolerance: the single-precision tier may move the
/// measured SER by at most this much (absolute) relative to fp64 on a
/// Rayleigh sweep at operating SNRs.  In practice the gap is orders of
/// magnitude smaller — fp32 keeps ~7 significant digits and the metric
/// margins between winning and runner-up paths are far coarser.
constexpr double kFp32SerTolerance = 5e-3;

fl::CVec random_y(const fl::CMat& h, const Constellation& c, double nv,
                  ch::Rng& rng) {
  fl::CVec s(h.cols());
  for (auto& z : s) {
    z = c.point(static_cast<int>(
        rng.uniform_int(static_cast<std::uint64_t>(c.order()))));
  }
  return ch::transmit(h, s, nv, rng);
}

/// Asserts the block kernel reproduces the scalar path_metric bit-for-bit
/// over every path of one rotated vector.
template <typename D>
void expect_block_matches_scalar(const D& det, std::size_t paths,
                                 const fl::CVec& ybar, const char* what) {
  std::vector<double> blk(paths);
  det.path_metric_block(ybar, 0, paths, blk.data());
  for (std::size_t p = 0; p < paths; ++p) {
    const double scalar = det.path_metric(ybar, p);
    EXPECT_EQ(scalar, blk[p]) << what << " path " << p;
  }
}

// ----------------------------------------------------- fp64 bit-identity

TEST(KernelEquivalence, FlexCoreFp64BlockMatchesScalar) {
  for (int qam : {4, 16, 64}) {
    Constellation c(qam);
    for (std::size_t nt : {2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
      ch::Rng rng(100 * static_cast<std::uint64_t>(qam) + nt);
      const auto h = ch::rayleigh_iid(nt, nt, rng);
      const double nv = ch::noise_var_for_snr_db(15.0);
      for (const char* family : {"flexcore-24", "a-flexcore-24"}) {
        const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
            family, {.constellation = &c});
        det->set_channel(h, nv);
        for (int rep = 0; rep < 4; ++rep) {
          const fl::CVec ybar = det->rotate(random_y(h, c, nv, rng));
          expect_block_matches_scalar(*det, det->active_paths(), ybar,
                                      family);
        }
      }
    }
  }
}

TEST(KernelEquivalence, FcsdFp64BlockMatchesScalar) {
  for (int qam : {4, 16, 64}) {
    Constellation c(qam);
    for (std::size_t nt : {2u, 4u, 8u, 12u, 16u}) {
      ch::Rng rng(999 * static_cast<std::uint64_t>(qam) + nt);
      const auto h = ch::rayleigh_iid(nt, nt, rng);
      const double nv = ch::noise_var_for_snr_db(15.0);
      fd::FcsdDetector det(c, 1);
      det.set_channel(h, nv);
      for (int rep = 0; rep < 4; ++rep) {
        const fl::CVec ybar = det.rotate(random_y(h, c, nv, rng));
        expect_block_matches_scalar(det, det.num_paths(), ybar, "fcsd-L1");
      }
    }
  }
}

TEST(KernelEquivalence, DeactivatedPathsMatchAsInfinity) {
  // Brutal noise pushes effective points far outside the constellation, so
  // LUT entries deactivate; the block kernel must report exactly the same
  // +infinity verdicts as the scalar walk.
  Constellation c(64);
  ch::Rng rng(7);
  const auto h = ch::rayleigh_iid(8, 8, rng);
  const double nv = 4.0;
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-32", {.constellation = &c});
  det->set_channel(h, nv);

  std::size_t saw_inf = 0;
  for (int rep = 0; rep < 20; ++rep) {
    const fl::CVec ybar = det->rotate(random_y(h, c, nv, rng));
    std::vector<double> blk(det->active_paths());
    det->path_metric_block(ybar, 0, blk.size(), blk.data());
    for (std::size_t p = 0; p < blk.size(); ++p) {
      const double scalar = det->path_metric(ybar, p);
      EXPECT_EQ(scalar, blk[p]) << "path " << p;
      saw_inf += std::isinf(blk[p]);
    }
  }
  EXPECT_GT(saw_inf, 0u)
      << "scenario no longer deactivates any PE; raise the noise";
}

TEST(KernelEquivalence, AblationOrderingModesMatchScalar) {
  // The exact-sort ordering and the skip-to-valid LUT policy compile to
  // the per-lane fallback modes; both must still match the scalar kernel
  // bitwise.
  Constellation c(16);
  ch::Rng rng(11);
  const auto h = ch::rayleigh_iid(6, 6, rng);
  const double nv = ch::noise_var_for_snr_db(12.0);

  fa::DetectorConfig cfg{.constellation = &c};
  cfg.flexcore.num_pes = 16;
  cfg.flexcore.ordering = fc::OrderingMode::kExactSort;
  const auto exact =
      fa::make_detector_as<fc::FlexCoreDetector>("flexcore-16", cfg);
  exact->set_channel(h, nv);

  cfg.flexcore.ordering = fc::OrderingMode::kLut;
  cfg.flexcore.invalid_policy = fc::InvalidEntryPolicy::kSkipToValid;
  const auto skipper =
      fa::make_detector_as<fc::FlexCoreDetector>("flexcore-16", cfg);
  skipper->set_channel(h, nv);

  for (int rep = 0; rep < 4; ++rep) {
    const fl::CVec y = random_y(h, c, nv, rng);
    expect_block_matches_scalar(*exact, exact->active_paths(),
                                exact->rotate(y), "exact-sort");
    expect_block_matches_scalar(*skipper, skipper->active_paths(),
                                skipper->rotate(y), "skip-to-valid");
  }
}

TEST(KernelEquivalence, MisalignedBlockRangesMatch) {
  // path_metric_block accepts any (first, n) range, not just whole blocks.
  Constellation c(16);
  ch::Rng rng(13);
  const auto h = ch::rayleigh_iid(6, 6, rng);
  const double nv = ch::noise_var_for_snr_db(14.0);
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-29", {.constellation = &c});
  det->set_channel(h, nv);
  const std::size_t paths = det->active_paths();
  ASSERT_GT(paths, 11u);
  const fl::CVec ybar = det->rotate(random_y(h, c, nv, rng));

  std::vector<double> all(paths);
  det->path_metric_block(ybar, 0, paths, all.data());
  const std::pair<std::size_t, std::size_t> ranges[] = {
      {3, 5}, {7, 9}, {paths - 3, 3}, {1, paths - 1}};
  for (const auto& [first, n] : ranges) {
    std::vector<double> part(n);
    det->path_metric_block(ybar, first, n, part.data());
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(part[k], all[first + k]) << "first=" << first << " k=" << k;
    }
  }
}

// ----------------------------------------------------- fp32 compute tier

TEST(KernelPrecision, Fp32SerWithinToleranceOnSweep) {
  // fig12-style sweep: Rayleigh channels, 8 users, 64-QAM, across the
  // operating SNR range; the fp32 tier's SER may not exceed fp64's by more
  // than the documented tolerance.
  Constellation c(64);
  const std::size_t nt = 8, nsc = 24, nv = 8;

  for (double snr_db : {16.0, 20.0, 24.0}) {
    const double noise = ch::noise_var_for_snr_db(snr_db);
    const fs::SynthFrame fr = fs::synth_frame(
        c, nsc, nv, nt, nt, noise, 5000 + static_cast<std::uint64_t>(snr_db));

    fa::PipelineConfig c64;
    c64.detector = "flexcore-64";
    c64.qam_order = 64;
    c64.threads = 2;
    fa::UplinkPipeline p64(c64);

    fa::PipelineConfig c32 = c64;
    c32.precision = fd::Precision::kFloat32;
    fa::UplinkPipeline p32(c32);

    const auto r64 = p64.detect_frame(fs::frame_job_of(fr, noise));
    const auto r32 = p32.detect_frame(fs::frame_job_of(fr, noise));
    const double symbols = static_cast<double>(nsc * nv * nt);
    const double ser64 =
        static_cast<double>(fs::count_symbol_errors(fr, r64.results)) / symbols;
    const double ser32 =
        static_cast<double>(fs::count_symbol_errors(fr, r32.results)) / symbols;
    EXPECT_LE(ser32, ser64 + kFp32SerTolerance)
        << "snr=" << snr_db << " ser64=" << ser64 << " ser32=" << ser32;
  }
}

// ------------------------------------------------------- spec grammar

TEST(KernelSpecs, PrecisionSuffixRoundTripsThroughRegistry) {
  Constellation c(16);
  const fa::DetectorConfig cfg{.constellation = &c};
  for (const char* spec :
       {"flexcore-16:fp32", "a-flexcore-8:fp32", "fcsd-L1:fp32"}) {
    const auto det = fa::make_detector(spec, cfg);
    EXPECT_EQ(det->name(), spec);
    // name() round-trips: constructing from the reported name reproduces
    // the same detector spelling.
    EXPECT_EQ(fa::make_detector(det->name(), cfg)->name(), det->name());
  }
  // ":fp64" is accepted and normalizes to the suffix-free spelling.
  EXPECT_EQ(fa::make_detector("flexcore-16:fp64", cfg)->name(),
            "flexcore-16");
  // The config knob selects the tier without a suffix...
  fa::DetectorConfig fp32 = cfg;
  fp32.precision = fd::Precision::kFloat32;
  EXPECT_EQ(fa::make_detector("flexcore-16", fp32)->name(),
            "flexcore-16:fp32");
  // ...and an explicit suffix overrides the knob.
  EXPECT_EQ(fa::make_detector("flexcore-16:fp64", fp32)->name(),
            "flexcore-16");
  // Families without a reduced-precision tier reject the suffix.
  EXPECT_THROW(fa::make_detector("zf:fp32", cfg), std::invalid_argument);
  EXPECT_THROW(fa::make_detector("kbest-8:fp32", cfg), std::invalid_argument);
}

// ----------------------------------------------------- int16 quantized tier

TEST(KernelI16, SlicerLutGoldenPattern) {
  // With R = I the effective point equals the incoming coordinate, so the
  // compiled per-level slicer LUT must reproduce the textbook rounded
  // slice a = round((eff/scale + side - 1) / 2) over the whole covered
  // grid: exact at cell centers, stable at +-0.7 half-cells (well over a
  // bucket away from every decision boundary), pad indices outside the
  // constellation, and the deactivating sentinel beyond the coverage.
  for (int qam : {4, 16, 64}) {
    Constellation c(qam);
    const int side = c.side();
    fd::PathPlanI16 plan;
    plan.compile_fcsd(fl::CMat::identity(4), 1, c);
    for (std::size_t level = 0; level < 4; ++level) {
      // Value coverage is +-(side + kPamPad) * scale; the centers (and
      // their +-0.7 half-cell offsets) of a in [-2, side+1] all fall
      // strictly inside it for every square constellation.
      for (int a = -2; a <= side + 1; ++a) {
        const double center = (2.0 * a - (side - 1)) * c.scale();
        EXPECT_EQ(plan.slicer_center(level, center), a)
            << "qam=" << qam << " level=" << level << " a=" << a;
        for (double off : {-0.7, 0.7}) {
          EXPECT_EQ(plan.slicer_center(level, center + off * c.scale()), a)
              << "qam=" << qam << " level=" << level << " a=" << a
              << " off=" << off;
        }
      }
      EXPECT_EQ(plan.slicer_center(level, (side + 14) * c.scale()),
                fd::PathPlanI16::kSlicerInvalid);
      EXPECT_EQ(plan.slicer_center(level, -(side + 14) * c.scale()),
                fd::PathPlanI16::kSlicerInvalid);
    }
  }
}

TEST(KernelI16, QuantizationScalesRespectSharedFormat) {
  // The per-plan scales are channel-derived but the fractional resolution
  // is capped at the shared Q-format (perfmodel::I16Format) — the contract
  // that keeps the FPGA cost model and the shipped kernel in one format.
  Constellation c(64);
  ch::Rng rng(21);
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-32:i16", {.constellation = &c});
  det->set_channel(ch::rayleigh_iid(12, 12, rng),
                   ch::noise_var_for_snr_db(20.0));
  const fd::PathPlanI16& plan = det->plan_i16();
  EXPECT_LE(plan.frac_bits(), flexcore::perfmodel::I16Format::kFracBits);
  EXPECT_GE(plan.point_bits(), 1);
  EXPECT_GT(plan.frac_bits(), 0) << "well-conditioned Rayleigh channel";
}

TEST(KernelI16, MisalignedBlockRangesSelfConsistent) {
  // Any (first, n) range must reproduce the full scan's values exactly:
  // the kernel evaluates whole 16-lane blocks (fused pairs on aligned
  // 32-path ranges) and copies out the requested lanes, so solo blocks,
  // pair blocks and tails must agree bit-for-bit.
  Constellation c(64);
  ch::Rng rng(17);
  const auto h = ch::rayleigh_iid(8, 8, rng);
  const double nv = ch::noise_var_for_snr_db(16.0);
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-77:i16", {.constellation = &c});
  det->set_channel(h, nv);
  const std::size_t paths = det->active_paths();
  ASSERT_GT(paths, 40u);
  const fl::CVec ybar = det->rotate(random_y(h, c, nv, rng));

  std::vector<double> all(paths);
  det->path_metric_block(ybar, 0, paths, all.data());
  const std::pair<std::size_t, std::size_t> ranges[] = {
      {0, 32},      {0, paths},    {5, 11},       {16, 16},
      {31, 2},      {32, 32},      {paths - 7, 7}, {1, paths - 1}};
  for (const auto& [first, n] : ranges) {
    std::vector<double> part(n);
    det->path_metric_block(ybar, first, n, part.data());
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(part[k], all[first + k]) << "first=" << first << " k=" << k;
    }
  }
}

TEST(KernelI16, SerWithinToleranceAcrossFamiliesAndQam) {
  // The documented accuracy contract of the quantized tier, swept across
  // detector families x constellations x MIMO sizes: end-to-end SER may
  // exceed the exact tier's by at most kI16SerTolerance per configuration
  // aggregate.  detect_batch over a pool routes detection through the
  // compiled plans (the sequential fallback walks paths in fp64).
  flexcore::parallel::ThreadPool pool(2);
  struct Sweep {
    const char* base;
    const char* i16;
    std::vector<std::size_t> nts;
  };
  const Sweep sweeps[] = {
      {"flexcore-32", "flexcore-32:i16", {2, 4, 8, 12, 16}},
      {"a-flexcore-32", "a-flexcore-32:i16", {2, 4, 8, 12}},
      {"fcsd-L1", "fcsd-L1:i16", {2, 4, 8}},
  };
  const std::pair<int, double> operating[] = {{4, 8.0}, {16, 14.0},
                                              {64, 20.0}};
  for (const Sweep& sw : sweeps) {
    for (const auto& [qam_order, snr_db] : operating) {
      Constellation c(qam_order);
      const fa::DetectorConfig cfg{.constellation = &c};
      const auto d64 = fa::make_detector(sw.base, cfg);
      const auto d16 = fa::make_detector(sw.i16, cfg);
      d64->set_thread_pool(&pool);
      d16->set_thread_pool(&pool);
      const double nv = ch::noise_var_for_snr_db(snr_db);

      std::size_t symbols = 0, err64 = 0, err16 = 0;
      ch::Rng rng(1000 + static_cast<std::uint64_t>(qam_order));
      fd::BatchResult out64, out16;
      for (const std::size_t nt : sw.nts) {
        const auto h = ch::rayleigh_iid(nt, nt, rng);
        d64->set_channel(h, nv);
        d16->set_channel(h, nv);
        std::vector<std::vector<int>> tx(8, std::vector<int>(nt));
        std::vector<fl::CVec> ys(8, fl::CVec(nt));
        fl::CVec s(nt);
        for (std::size_t v = 0; v < 8; ++v) {
          for (std::size_t u = 0; u < nt; ++u) {
            tx[v][u] = static_cast<int>(rng.uniform_int(
                static_cast<std::uint64_t>(qam_order)));
            s[u] = c.point(tx[v][u]);
          }
          ys[v] = ch::transmit(h, s, nv, rng);
        }
        d64->detect_batch(ys, &out64);
        d16->detect_batch(ys, &out16);
        for (std::size_t v = 0; v < 8; ++v) {
          for (std::size_t u = 0; u < nt; ++u) {
            ++symbols;
            err64 += out64.results[v].symbols[u] != tx[v][u];
            err16 += out16.results[v].symbols[u] != tx[v][u];
          }
        }
      }
      const double ser64 = static_cast<double>(err64) / static_cast<double>(symbols);
      const double ser16 = static_cast<double>(err16) / static_cast<double>(symbols);
      EXPECT_LE(ser16, ser64 + fd::kI16SerTolerance)
          << sw.i16 << " qam=" << qam_order << " ser64=" << ser64
          << " ser16=" << ser16;
    }
  }
}

TEST(KernelI16, MetricsBitIdenticalAcrossRepeatsAndGolden) {
  // The tier is pure-integer end-to-end, so its metrics are bit-identical
  // across runs, builds and ISAs.  The FNV hash below pins the exact bit
  // patterns of one fixed scenario: CI runs this suite both with the
  // native dispatch and with FLEXCORE_I16_ISA=base, so a divergence
  // between any per-ISA kernel copy and the portable fallback — or any
  // unintended change to the quantized datapath — fails here.
  Constellation c(64);
  ch::Rng rng(90);
  const auto h = ch::rayleigh_iid(12, 12, rng);
  const double nv = ch::noise_var_for_snr_db(18.0);
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-64:i16", {.constellation = &c});
  det->set_channel(h, nv);
  const fl::CVec ybar = det->rotate(random_y(h, c, nv, rng));

  auto hash_metrics = [&]() {
    std::vector<double> m(det->active_paths());
    det->path_metric_block(ybar, 0, m.size(), m.data());
    std::uint64_t fnv = 1469598103934665603ull;
    for (const double v : m) {
      // +inf (deactivated) hashes via its bit pattern like any value.
      std::uint64_t bits;
      static_assert(sizeof bits == sizeof v);
      std::memcpy(&bits, &v, sizeof bits);
      for (int b = 0; b < 64; b += 8) {
        fnv = (fnv ^ ((bits >> b) & 0xFF)) * 1099511628211ull;
      }
    }
    return fnv;
  };
  const std::uint64_t h1 = hash_metrics();
  EXPECT_EQ(h1, hash_metrics());
  EXPECT_EQ(h1, 0xe45c3940471ad014ull)
      << "i16 metric bit patterns changed: if intentional, re-pin the "
         "golden hash (std::printf(\"%llx\", h1))";
}

TEST(KernelI16, FootprintOrderingAcrossTiers) {
  // The storage story of the tier ladder: int16 SoA plans are smaller than
  // fp32 plans, which are smaller than fp64 plans, for the same channel.
  Constellation c(64);
  ch::Rng rng(33);
  const auto h = ch::rayleigh_iid(12, 12, rng);
  const double nv = ch::noise_var_for_snr_db(18.0);
  std::size_t bytes[3] = {0, 0, 0};
  const char* specs[3] = {"flexcore-128:i16", "flexcore-128:fp32",
                          "flexcore-128"};
  for (int t = 0; t < 3; ++t) {
    const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
        specs[t], {.constellation = &c});
    det->set_channel(h, nv);
    bytes[t] = det->plan_footprint_bytes();
  }
  EXPECT_LT(bytes[0], bytes[1]) << "i16 plan must undercut fp32";
  EXPECT_LT(bytes[1], bytes[2]) << "fp32 plan must undercut fp64";
}

TEST(KernelI16, SpecGrammarRoundTripsAndRejects) {
  Constellation c(16);
  const fa::DetectorConfig cfg{.constellation = &c};
  for (const char* spec :
       {"flexcore-16:i16", "a-flexcore-8:i16", "fcsd-L1:i16"}) {
    const auto det = fa::make_detector(spec, cfg);
    EXPECT_EQ(det->name(), spec);
    EXPECT_EQ(fa::make_detector(det->name(), cfg)->name(), det->name());
  }
  // The config knob selects the tier without a suffix, and a suffix
  // overrides the knob.
  fa::DetectorConfig i16 = cfg;
  i16.precision = fd::Precision::kInt16;
  EXPECT_EQ(fa::make_detector("flexcore-16", i16)->name(),
            "flexcore-16:i16");
  EXPECT_EQ(fa::make_detector("flexcore-16:fp64", i16)->name(),
            "flexcore-16");
  // Detectors without block kernels reject the tier like any unknown spec.
  EXPECT_THROW(fa::make_detector("zf:i16", cfg), std::invalid_argument);
  EXPECT_THROW(fa::make_detector("kbest-8:i16", cfg), std::invalid_argument);
  EXPECT_THROW(fa::make_detector("ml-sd:i16", cfg), std::invalid_argument);
  // The tier is discoverable: list_specs() surfaces an :i16 spelling.
  const auto specs = fa::list_specs();
  EXPECT_NE(std::find(specs.begin(), specs.end(), "flexcore-64:i16"),
            specs.end());
}

}  // namespace
