// Tests for the lane-parallel path-kernel engine (detect/path_kernels.h):
// fp64 block kernels bit-identical to the scalar path_metric across
// detector families x constellations x MIMO sizes, the fp32 tier within a
// documented SER tolerance on a fig12-style sweep, and the ":fp32" spec
// grammar round-tripping through the registry.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "api/detector_registry.h"
#include "api/uplink_pipeline.h"
#include "channel/channel.h"
#include "core/flexcore_detector.h"
#include "detect/fcsd.h"
#include "detect/path_kernels.h"
#include "sim/frame_synth.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace fs = flexcore::sim;
namespace fl = flexcore::linalg;
using flexcore::modulation::Constellation;

namespace {

/// Documented fp32 tolerance: the single-precision tier may move the
/// measured SER by at most this much (absolute) relative to fp64 on a
/// Rayleigh sweep at operating SNRs.  In practice the gap is orders of
/// magnitude smaller — fp32 keeps ~7 significant digits and the metric
/// margins between winning and runner-up paths are far coarser.
constexpr double kFp32SerTolerance = 5e-3;

fl::CVec random_y(const fl::CMat& h, const Constellation& c, double nv,
                  ch::Rng& rng) {
  fl::CVec s(h.cols());
  for (auto& z : s) {
    z = c.point(static_cast<int>(
        rng.uniform_int(static_cast<std::uint64_t>(c.order()))));
  }
  return ch::transmit(h, s, nv, rng);
}

/// Asserts the block kernel reproduces the scalar path_metric bit-for-bit
/// over every path of one rotated vector.
template <typename D>
void expect_block_matches_scalar(const D& det, std::size_t paths,
                                 const fl::CVec& ybar, const char* what) {
  std::vector<double> blk(paths);
  det.path_metric_block(ybar, 0, paths, blk.data());
  for (std::size_t p = 0; p < paths; ++p) {
    const double scalar = det.path_metric(ybar, p);
    EXPECT_EQ(scalar, blk[p]) << what << " path " << p;
  }
}

// ----------------------------------------------------- fp64 bit-identity

TEST(KernelEquivalence, FlexCoreFp64BlockMatchesScalar) {
  for (int qam : {4, 16, 64}) {
    Constellation c(qam);
    for (std::size_t nt : {2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
      ch::Rng rng(100 * static_cast<std::uint64_t>(qam) + nt);
      const auto h = ch::rayleigh_iid(nt, nt, rng);
      const double nv = ch::noise_var_for_snr_db(15.0);
      for (const char* family : {"flexcore-24", "a-flexcore-24"}) {
        const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
            family, {.constellation = &c});
        det->set_channel(h, nv);
        for (int rep = 0; rep < 4; ++rep) {
          const fl::CVec ybar = det->rotate(random_y(h, c, nv, rng));
          expect_block_matches_scalar(*det, det->active_paths(), ybar,
                                      family);
        }
      }
    }
  }
}

TEST(KernelEquivalence, FcsdFp64BlockMatchesScalar) {
  for (int qam : {4, 16, 64}) {
    Constellation c(qam);
    for (std::size_t nt : {2u, 4u, 8u, 12u, 16u}) {
      ch::Rng rng(999 * static_cast<std::uint64_t>(qam) + nt);
      const auto h = ch::rayleigh_iid(nt, nt, rng);
      const double nv = ch::noise_var_for_snr_db(15.0);
      fd::FcsdDetector det(c, 1);
      det.set_channel(h, nv);
      for (int rep = 0; rep < 4; ++rep) {
        const fl::CVec ybar = det.rotate(random_y(h, c, nv, rng));
        expect_block_matches_scalar(det, det.num_paths(), ybar, "fcsd-L1");
      }
    }
  }
}

TEST(KernelEquivalence, DeactivatedPathsMatchAsInfinity) {
  // Brutal noise pushes effective points far outside the constellation, so
  // LUT entries deactivate; the block kernel must report exactly the same
  // +infinity verdicts as the scalar walk.
  Constellation c(64);
  ch::Rng rng(7);
  const auto h = ch::rayleigh_iid(8, 8, rng);
  const double nv = 4.0;
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-32", {.constellation = &c});
  det->set_channel(h, nv);

  std::size_t saw_inf = 0;
  for (int rep = 0; rep < 20; ++rep) {
    const fl::CVec ybar = det->rotate(random_y(h, c, nv, rng));
    std::vector<double> blk(det->active_paths());
    det->path_metric_block(ybar, 0, blk.size(), blk.data());
    for (std::size_t p = 0; p < blk.size(); ++p) {
      const double scalar = det->path_metric(ybar, p);
      EXPECT_EQ(scalar, blk[p]) << "path " << p;
      saw_inf += std::isinf(blk[p]);
    }
  }
  EXPECT_GT(saw_inf, 0u)
      << "scenario no longer deactivates any PE; raise the noise";
}

TEST(KernelEquivalence, AblationOrderingModesMatchScalar) {
  // The exact-sort ordering and the skip-to-valid LUT policy compile to
  // the per-lane fallback modes; both must still match the scalar kernel
  // bitwise.
  Constellation c(16);
  ch::Rng rng(11);
  const auto h = ch::rayleigh_iid(6, 6, rng);
  const double nv = ch::noise_var_for_snr_db(12.0);

  fa::DetectorConfig cfg{.constellation = &c};
  cfg.flexcore.num_pes = 16;
  cfg.flexcore.ordering = fc::OrderingMode::kExactSort;
  const auto exact =
      fa::make_detector_as<fc::FlexCoreDetector>("flexcore-16", cfg);
  exact->set_channel(h, nv);

  cfg.flexcore.ordering = fc::OrderingMode::kLut;
  cfg.flexcore.invalid_policy = fc::InvalidEntryPolicy::kSkipToValid;
  const auto skipper =
      fa::make_detector_as<fc::FlexCoreDetector>("flexcore-16", cfg);
  skipper->set_channel(h, nv);

  for (int rep = 0; rep < 4; ++rep) {
    const fl::CVec y = random_y(h, c, nv, rng);
    expect_block_matches_scalar(*exact, exact->active_paths(),
                                exact->rotate(y), "exact-sort");
    expect_block_matches_scalar(*skipper, skipper->active_paths(),
                                skipper->rotate(y), "skip-to-valid");
  }
}

TEST(KernelEquivalence, MisalignedBlockRangesMatch) {
  // path_metric_block accepts any (first, n) range, not just whole blocks.
  Constellation c(16);
  ch::Rng rng(13);
  const auto h = ch::rayleigh_iid(6, 6, rng);
  const double nv = ch::noise_var_for_snr_db(14.0);
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-29", {.constellation = &c});
  det->set_channel(h, nv);
  const std::size_t paths = det->active_paths();
  ASSERT_GT(paths, 11u);
  const fl::CVec ybar = det->rotate(random_y(h, c, nv, rng));

  std::vector<double> all(paths);
  det->path_metric_block(ybar, 0, paths, all.data());
  const std::pair<std::size_t, std::size_t> ranges[] = {
      {3, 5}, {7, 9}, {paths - 3, 3}, {1, paths - 1}};
  for (const auto& [first, n] : ranges) {
    std::vector<double> part(n);
    det->path_metric_block(ybar, first, n, part.data());
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(part[k], all[first + k]) << "first=" << first << " k=" << k;
    }
  }
}

// ----------------------------------------------------- fp32 compute tier

TEST(KernelPrecision, Fp32SerWithinToleranceOnSweep) {
  // fig12-style sweep: Rayleigh channels, 8 users, 64-QAM, across the
  // operating SNR range; the fp32 tier's SER may not exceed fp64's by more
  // than the documented tolerance.
  Constellation c(64);
  const std::size_t nt = 8, nsc = 24, nv = 8;

  for (double snr_db : {16.0, 20.0, 24.0}) {
    const double noise = ch::noise_var_for_snr_db(snr_db);
    const fs::SynthFrame fr = fs::synth_frame(
        c, nsc, nv, nt, nt, noise, 5000 + static_cast<std::uint64_t>(snr_db));

    fa::PipelineConfig c64;
    c64.detector = "flexcore-64";
    c64.qam_order = 64;
    c64.threads = 2;
    fa::UplinkPipeline p64(c64);

    fa::PipelineConfig c32 = c64;
    c32.precision = fd::Precision::kFloat32;
    fa::UplinkPipeline p32(c32);

    const auto r64 = p64.detect_frame(fs::frame_job_of(fr, noise));
    const auto r32 = p32.detect_frame(fs::frame_job_of(fr, noise));
    const double symbols = static_cast<double>(nsc * nv * nt);
    const double ser64 =
        static_cast<double>(fs::count_symbol_errors(fr, r64.results)) / symbols;
    const double ser32 =
        static_cast<double>(fs::count_symbol_errors(fr, r32.results)) / symbols;
    EXPECT_LE(ser32, ser64 + kFp32SerTolerance)
        << "snr=" << snr_db << " ser64=" << ser64 << " ser32=" << ser32;
  }
}

// ------------------------------------------------------- spec grammar

TEST(KernelSpecs, PrecisionSuffixRoundTripsThroughRegistry) {
  Constellation c(16);
  const fa::DetectorConfig cfg{.constellation = &c};
  for (const char* spec :
       {"flexcore-16:fp32", "a-flexcore-8:fp32", "fcsd-L1:fp32"}) {
    const auto det = fa::make_detector(spec, cfg);
    EXPECT_EQ(det->name(), spec);
    // name() round-trips: constructing from the reported name reproduces
    // the same detector spelling.
    EXPECT_EQ(fa::make_detector(det->name(), cfg)->name(), det->name());
  }
  // ":fp64" is accepted and normalizes to the suffix-free spelling.
  EXPECT_EQ(fa::make_detector("flexcore-16:fp64", cfg)->name(),
            "flexcore-16");
  // The config knob selects the tier without a suffix...
  fa::DetectorConfig fp32 = cfg;
  fp32.precision = fd::Precision::kFloat32;
  EXPECT_EQ(fa::make_detector("flexcore-16", fp32)->name(),
            "flexcore-16:fp32");
  // ...and an explicit suffix overrides the knob.
  EXPECT_EQ(fa::make_detector("flexcore-16:fp64", fp32)->name(),
            "flexcore-16");
  // Families without a reduced-precision tier reject the suffix.
  EXPECT_THROW(fa::make_detector("zf:fp32", cfg), std::invalid_argument);
  EXPECT_THROW(fa::make_detector("kbest-8:fp32", cfg), std::invalid_argument);
}

}  // namespace
