// Tests for the baseline detectors: linear, SIC, ML sphere decoder, FCSD,
// K-best and the trellis detector of [50].  Detectors are constructed
// through api::make_detector — the library's public construction path.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "api/detector_registry.h"
#include "channel/channel.h"
#include "detect/exhaustive.h"
#include "detect/fcsd.h"
#include "detect/kbest.h"
#include "detect/linear.h"
#include "detect/ml_sphere.h"
#include "detect/sic.h"
#include "detect/trellis.h"

namespace fa = flexcore::api;
namespace fd = flexcore::detect;
namespace ch = flexcore::channel;
using flexcore::linalg::CMat;
using flexcore::linalg::CVec;
using flexcore::linalg::cplx;
using flexcore::modulation::Constellation;

namespace {

struct Scenario {
  CMat h;
  CVec s;
  std::vector<int> tx;
  CVec y;
};

Scenario make_scenario(const Constellation& c, std::size_t nr, std::size_t nt,
                       double noise_var, ch::Rng& rng) {
  Scenario sc;
  sc.h = ch::rayleigh_iid(nr, nt, rng);
  sc.tx.resize(nt);
  sc.s.resize(nt);
  for (std::size_t u = 0; u < nt; ++u) {
    sc.tx[u] = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(c.order())));
    sc.s[u] = c.point(sc.tx[u]);
  }
  sc.y = ch::transmit(sc.h, sc.s, noise_var, rng);
  return sc;
}

/// Quick uncoded symbol-error count over `trials` independent channels.
template <typename MakeDetector>
std::size_t count_symbol_errors(const Constellation& c, std::size_t nr,
                                std::size_t nt, double noise_var,
                                int trials, std::uint64_t seed,
                                MakeDetector make) {
  ch::Rng rng(seed);
  auto det = make();
  std::size_t errors = 0;
  for (int t = 0; t < trials; ++t) {
    const Scenario sc = make_scenario(c, nr, nt, noise_var, rng);
    det->set_channel(sc.h, noise_var);
    const auto res = det->detect(sc.y);
    for (std::size_t u = 0; u < nt; ++u) errors += res.symbols[u] != sc.tx[u];
  }
  return errors;
}

}  // namespace

// ------------------------------------------------------------------ linear

TEST(Linear, ZfRecoversNoiseless) {
  Constellation c(16);
  ch::Rng rng(1);
  for (int t = 0; t < 20; ++t) {
    const Scenario sc = make_scenario(c, 6, 4, 0.0, rng);
    const auto det = fa::make_detector("zf", {.constellation = &c});
    det->set_channel(sc.h, 1e-3);
    EXPECT_EQ(det->detect(sc.y).symbols, sc.tx);
  }
}

TEST(Linear, MmseRecoversNoiseless) {
  Constellation c(64);
  ch::Rng rng(2);
  for (int t = 0; t < 20; ++t) {
    const Scenario sc = make_scenario(c, 8, 8, 0.0, rng);
    const auto det = fa::make_detector("mmse", {.constellation = &c});
    det->set_channel(sc.h, 1e-6);
    EXPECT_EQ(det->detect(sc.y).symbols, sc.tx);
  }
}

TEST(Linear, MmseBeatsZfInSquareSystems) {
  Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(5.0);
  const auto zf = count_symbol_errors(c, 8, 8, nv, 400, 77, [&] {
    return fa::make_detector("zf", {.constellation = &c});
  });
  const auto mmse = count_symbol_errors(c, 8, 8, nv, 400, 77, [&] {
    return fa::make_detector("mmse", {.constellation = &c});
  });
  EXPECT_LT(mmse, zf);
}

TEST(Linear, EqualizeAppliesFilter) {
  Constellation c(4);
  ch::Rng rng(3);
  const CMat h = ch::rayleigh_iid(4, 4, rng);
  const auto det =
      fa::make_detector_as<fd::LinearDetector>("zf", {.constellation = &c});
  det->set_channel(h, 0.01);
  CVec s(4, cplx{1.0, 0.0});
  const CVec x = det->equalize(h * s);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_LT(std::abs(x[i] - s[i]), 1e-8);
}

TEST(Linear, MetricIsTrueResidual) {
  Constellation c(16);
  ch::Rng rng(4);
  const Scenario sc = make_scenario(c, 6, 6, 0.05, rng);
  const auto det = fa::make_detector("mmse", {.constellation = &c});
  det->set_channel(sc.h, 0.05);
  const auto res = det->detect(sc.y);
  CVec shat(6);
  for (std::size_t i = 0; i < 6; ++i) shat[i] = c.point(res.symbols[i]);
  const CVec r = flexcore::linalg::sub(sc.y, sc.h * shat);
  EXPECT_NEAR(res.metric, flexcore::linalg::norm2(r), 1e-9);
}

// --------------------------------------------------------------------- SIC

TEST(Sic, RecoversNoiseless) {
  Constellation c(64);
  ch::Rng rng(5);
  for (int t = 0; t < 20; ++t) {
    const Scenario sc = make_scenario(c, 8, 8, 0.0, rng);
    const auto det = fa::make_detector("zf-sic", {.constellation = &c});
    det->set_channel(sc.h, 1e-6);
    EXPECT_EQ(det->detect(sc.y).symbols, sc.tx);
  }
}

TEST(Sic, BeatsPlainZfAtModerateSnr) {
  Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(7.2);
  const auto zf = count_symbol_errors(c, 6, 6, nv, 500, 88, [&] {
    return fa::make_detector("zf", {.constellation = &c});
  });
  const auto sic = count_symbol_errors(c, 6, 6, nv, 500, 88, [&] {
    return fa::make_detector("zf-sic", {.constellation = &c});
  });
  EXPECT_LT(sic, zf);
}

// ------------------------------------------------------------- ML sphere

TEST(Exhaustive, ThrowsOnHugeSearchSpace) {
  Constellation c(64);
  CMat h(8, 8);
  EXPECT_THROW(fd::exhaustive_ml(c, h, CVec(8)), std::invalid_argument);
}

class MlVsExhaustive
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(MlVsExhaustive, SphereDecoderIsExactlyML) {
  const auto [order, nt, snr_db] = GetParam();
  Constellation c(order);
  // Tuple SNRs were calibrated as receive-sum values; convert to per-user.
  const double nv =
      ch::noise_var_for_snr_db(snr_db - 10.0 * std::log10(static_cast<double>(nt)));
  ch::Rng rng(100 + static_cast<unsigned>(order + nt));
  const auto sd = fa::make_detector("ml-sd", {.constellation = &c});
  for (int t = 0; t < 25; ++t) {
    const Scenario sc = make_scenario(c, static_cast<std::size_t>(nt),
                                      static_cast<std::size_t>(nt), nv, rng);
    sd->set_channel(sc.h, nv);
    const auto got = sd->detect(sc.y);
    const auto want = fd::exhaustive_ml(c, sc.h, sc.y);
    EXPECT_EQ(got.symbols, want.symbols) << "trial " << t;
    EXPECT_NEAR(got.metric, want.metric, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallSystems, MlVsExhaustive,
    ::testing::Values(std::tuple{4, 2, 8.0}, std::tuple{4, 3, 6.0},
                      std::tuple{4, 4, 10.0}, std::tuple{16, 2, 12.0},
                      std::tuple{16, 3, 14.0}, std::tuple{4, 5, 3.0}));

TEST(MlSphere, UnsortedQrGivesSameAnswer) {
  Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(7.2);
  ch::Rng rng(6);
  fa::DetectorConfig unsorted_cfg{.constellation = &c};
  unsorted_cfg.ml_sphere = {.max_nodes = 0, .use_sorted_qr = false};
  const auto sorted = fa::make_detector("ml-sd", {.constellation = &c});
  const auto unsorted = fa::make_detector("ml-sd", unsorted_cfg);
  for (int t = 0; t < 20; ++t) {
    const Scenario sc = make_scenario(c, 3, 3, nv, rng);
    sorted->set_channel(sc.h, nv);
    unsorted->set_channel(sc.h, nv);
    EXPECT_EQ(sorted->detect(sc.y).symbols, unsorted->detect(sc.y).symbols);
  }
}

TEST(MlSphere, SortedQrVisitsFewerNodes) {
  Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(6.2);
  ch::Rng rng(7);
  fa::DetectorConfig unsorted_cfg{.constellation = &c};
  unsorted_cfg.ml_sphere = {.max_nodes = 0, .use_sorted_qr = false};
  const auto sorted = fa::make_detector("ml-sd", {.constellation = &c});
  const auto unsorted = fa::make_detector("ml-sd", unsorted_cfg);
  std::uint64_t n_sorted = 0, n_unsorted = 0;
  for (int t = 0; t < 30; ++t) {
    const Scenario sc = make_scenario(c, 6, 6, nv, rng);
    sorted->set_channel(sc.h, nv);
    unsorted->set_channel(sc.h, nv);
    n_sorted += sorted->detect(sc.y).stats.nodes_visited;
    n_unsorted += unsorted->detect(sc.y).stats.nodes_visited;
  }
  EXPECT_LT(n_sorted, n_unsorted);
}

TEST(MlSphere, NodeCountDropsWithSnr) {
  Constellation c(16);
  ch::Rng rng(8);
  const auto sd = fa::make_detector("ml-sd", {.constellation = &c});
  std::uint64_t lo_snr_nodes = 0, hi_snr_nodes = 0;
  for (int t = 0; t < 20; ++t) {
    const double nv_lo = ch::noise_var_for_snr_db(-1.8);
    const double nv_hi = ch::noise_var_for_snr_db(16.2);
    Scenario sc = make_scenario(c, 6, 6, nv_lo, rng);
    sd->set_channel(sc.h, nv_lo);
    lo_snr_nodes += sd->detect(sc.y).stats.nodes_visited;
    sc = make_scenario(c, 6, 6, nv_hi, rng);
    sd->set_channel(sc.h, nv_hi);
    hi_snr_nodes += sd->detect(sc.y).stats.nodes_visited;
  }
  EXPECT_LT(hi_snr_nodes, lo_snr_nodes);
}

TEST(MlSphere, TruncationStillReturnsACandidate) {
  Constellation c(64);
  const double nv = ch::noise_var_for_snr_db(1.0);
  ch::Rng rng(9);
  fa::DetectorConfig trunc_cfg{.constellation = &c};
  trunc_cfg.ml_sphere = {.max_nodes = 50, .use_sorted_qr = true};
  const auto sd = fa::make_detector("ml-sd", trunc_cfg);
  const Scenario sc = make_scenario(c, 8, 8, nv, rng);
  sd->set_channel(sc.h, nv);
  const auto res = sd->detect(sc.y);
  EXPECT_EQ(res.symbols.size(), 8u);
  EXPECT_TRUE(std::isfinite(res.metric));
  EXPECT_LE(res.stats.nodes_visited, 50u + 8u);
}

TEST(MlSphere, FlopCountersPopulated) {
  Constellation c(16);
  ch::Rng rng(10);
  const double nv = ch::noise_var_for_snr_db(7.0);
  const auto sd = fa::make_detector("ml-sd", {.constellation = &c});
  const Scenario sc = make_scenario(c, 4, 4, nv, rng);
  sd->set_channel(sc.h, nv);
  const auto res = sd->detect(sc.y);
  EXPECT_GT(res.stats.nodes_visited, 0u);
  EXPECT_GT(res.stats.flops, res.stats.real_mults);
}

// -------------------------------------------------------------------- FCSD

TEST(Fcsd, NumPathsIsPowerOfConstellation) {
  Constellation c(16);
  const fa::DetectorConfig acfg{.constellation = &c};
  const auto fcsd = [&](const char* spec) {
    return fa::make_detector_as<fd::FcsdDetector>(spec, acfg);
  };
  EXPECT_EQ(fcsd("fcsd-L0")->num_paths(), 1u);
  EXPECT_EQ(fcsd("fcsd-L1")->num_paths(), 16u);
  EXPECT_EQ(fcsd("fcsd-L2")->num_paths(), 256u);
  EXPECT_EQ(fcsd("fcsd-L1")->parallel_tasks(), 16u);
}

TEST(Fcsd, FullExpansionEqualsExhaustiveML) {
  Constellation c(4);
  const double nv = ch::noise_var_for_snr_db(1.2);
  ch::Rng rng(11);
  // L = Nt: visits every leaf.
  const auto det = fa::make_detector("fcsd-L3", {.constellation = &c});
  for (int t = 0; t < 25; ++t) {
    const Scenario sc = make_scenario(c, 3, 3, nv, rng);
    det->set_channel(sc.h, nv);
    const auto got = det->detect(sc.y);
    const auto want = fd::exhaustive_ml(c, sc.h, sc.y);
    EXPECT_EQ(got.symbols, want.symbols);
    EXPECT_NEAR(got.metric, want.metric, 1e-8);
  }
}

TEST(Fcsd, RecoversNoiseless) {
  Constellation c(64);
  ch::Rng rng(12);
  const auto det = fa::make_detector("fcsd-L1", {.constellation = &c});
  for (int t = 0; t < 10; ++t) {
    const Scenario sc = make_scenario(c, 8, 8, 0.0, rng);
    det->set_channel(sc.h, 1e-6);
    EXPECT_EQ(det->detect(sc.y).symbols, sc.tx);
  }
}

TEST(Fcsd, MoreLevelsNeverHurt) {
  Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(6.2);
  const auto e1 = count_symbol_errors(c, 6, 6, nv, 300, 99, [&] {
    return fa::make_detector("fcsd-L1", {.constellation = &c});
  });
  const auto e2 = count_symbol_errors(c, 6, 6, nv, 300, 99, [&] {
    return fa::make_detector("fcsd-L2", {.constellation = &c});
  });
  EXPECT_LE(e2, e1);
}

TEST(Fcsd, BeatsLinearDetection) {
  Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(5.0);
  const auto mmse = count_symbol_errors(c, 8, 8, nv, 300, 101, [&] {
    return fa::make_detector("mmse", {.constellation = &c});
  });
  const auto fcsd = count_symbol_errors(c, 8, 8, nv, 300, 101, [&] {
    return fa::make_detector("fcsd-L1", {.constellation = &c});
  });
  EXPECT_LT(fcsd, mmse);
}

TEST(Fcsd, DetectEqualsBestPathEvaluation) {
  Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(6.0);
  ch::Rng rng(13);
  const auto det =
      fa::make_detector_as<fd::FcsdDetector>("fcsd-L1", {.constellation = &c});
  const Scenario sc = make_scenario(c, 4, 4, nv, rng);
  det->set_channel(sc.h, nv);
  const auto res = det->detect(sc.y);

  const CVec ybar = det->rotate(sc.y);
  double best = 1e300;
  for (std::size_t p = 0; p < det->num_paths(); ++p) {
    best = std::min(best, det->evaluate_path(ybar, p).metric);
  }
  EXPECT_NEAR(res.metric, best, 1e-10);
}

TEST(Fcsd, PathMetricMatchesEvaluatePath) {
  Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(6.0);
  ch::Rng rng(14);
  const auto det =
      fa::make_detector_as<fd::FcsdDetector>("fcsd-L2", {.constellation = &c});
  const Scenario sc = make_scenario(c, 4, 4, nv, rng);
  det->set_channel(sc.h, nv);
  const CVec ybar = det->rotate(sc.y);
  for (std::size_t p = 0; p < det->num_paths(); p += 7) {
    EXPECT_NEAR(det->path_metric(ybar, p), det->evaluate_path(ybar, p).metric,
                1e-12);
  }
}

TEST(Fcsd, TooManyLevelsThrows) {
  Constellation c(16);
  ch::Rng rng(15);
  const auto det = fa::make_detector("fcsd-L5", {.constellation = &c});
  const CMat h = ch::rayleigh_iid(4, 4, rng);
  EXPECT_THROW(det->set_channel(h, 0.1), std::invalid_argument);
}

// ------------------------------------------------------------------ K-best

TEST(KBest, ExactForTwoLayersWithFullWidth) {
  Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(7.0);
  ch::Rng rng(16);
  // K = |Q| keeps every level-1 prefix.
  const auto det = fa::make_detector("kbest-16", {.constellation = &c});
  for (int t = 0; t < 20; ++t) {
    const Scenario sc = make_scenario(c, 2, 2, nv, rng);
    det->set_channel(sc.h, nv);
    const auto want = fd::exhaustive_ml(c, sc.h, sc.y);
    EXPECT_EQ(det->detect(sc.y).symbols, want.symbols);
  }
}

TEST(KBest, WiderIsNeverWorse) {
  Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(6.2);
  const auto e4 = count_symbol_errors(c, 6, 6, nv, 250, 111, [&] {
    return fa::make_detector("kbest-4", {.constellation = &c});
  });
  const auto e32 = count_symbol_errors(c, 6, 6, nv, 250, 111, [&] {
    return fa::make_detector("kbest-32", {.constellation = &c});
  });
  EXPECT_LE(e32, e4);
}

TEST(KBest, RecoversNoiseless) {
  Constellation c(16);
  ch::Rng rng(17);
  const auto det = fa::make_detector("kbest-8", {.constellation = &c});
  for (int t = 0; t < 10; ++t) {
    const Scenario sc = make_scenario(c, 6, 6, 0.0, rng);
    det->set_channel(sc.h, 1e-6);
    EXPECT_EQ(det->detect(sc.y).symbols, sc.tx);
  }
}

// ----------------------------------------------------------------- trellis

TEST(Trellis, ExactForTwoAntennas) {
  // With Nt = 2 the per-state survivor structure enumerates all |Q|^2
  // hypotheses, so [50] is exact ML there.
  Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(7.0);
  ch::Rng rng(18);
  const auto det = fa::make_detector("trellis50", {.constellation = &c});
  for (int t = 0; t < 20; ++t) {
    const Scenario sc = make_scenario(c, 2, 2, nv, rng);
    det->set_channel(sc.h, nv);
    const auto want = fd::exhaustive_ml(c, sc.h, sc.y);
    EXPECT_EQ(det->detect(sc.y).symbols, want.symbols);
  }
}

TEST(Trellis, BetweenMmseAndMlForLargerArrays) {
  // Fig. 9's qualitative ordering: MMSE < trellis [50] <= ML.
  Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(6.2);
  const auto mmse = count_symbol_errors(c, 6, 6, nv, 250, 121, [&] {
    return fa::make_detector("mmse", {.constellation = &c});
  });
  const auto trellis = count_symbol_errors(c, 6, 6, nv, 250, 121, [&] {
    return fa::make_detector("trellis50", {.constellation = &c});
  });
  const auto ml = count_symbol_errors(c, 6, 6, nv, 250, 121, [&] {
    return fa::make_detector("ml-sd", {.constellation = &c});
  });
  EXPECT_LT(trellis, mmse);
  EXPECT_LE(ml, trellis);
}

TEST(Trellis, FixedParallelTasks) {
  Constellation c(64);
  const auto det = fa::make_detector("trellis50", {.constellation = &c});
  EXPECT_EQ(det->parallel_tasks(), 64u);
}

TEST(Trellis, RecoversNoiseless) {
  Constellation c(16);
  ch::Rng rng(19);
  const auto det = fa::make_detector("trellis50", {.constellation = &c});
  for (int t = 0; t < 10; ++t) {
    const Scenario sc = make_scenario(c, 6, 6, 0.0, rng);
    det->set_channel(sc.h, 1e-6);
    EXPECT_EQ(det->detect(sc.y).symbols, sc.tx);
  }
}

// --------------------------------------------------------- cross-detector

TEST(AllDetectors, AgreeOnCleanChannel) {
  Constellation c(16);
  ch::Rng rng(20);
  const Scenario sc = make_scenario(c, 6, 6, 0.0, rng);

  std::vector<std::unique_ptr<fd::Detector>> dets;
  for (const char* spec :
       {"zf", "mmse", "zf-sic", "ml-sd", "fcsd-L1", "kbest-8", "trellis50"}) {
    dets.push_back(fa::make_detector(spec, {.constellation = &c}));
  }

  for (auto& det : dets) {
    det->set_channel(sc.h, 1e-9);
    EXPECT_EQ(det->detect(sc.y).symbols, sc.tx) << det->name();
  }
}

TEST(AllDetectors, NamesAreUniqueAndNonEmpty) {
  // api::list_specs() enumerates every registered family, so detectors
  // added later are covered without touching this test.
  Constellation c(16);
  std::vector<std::unique_ptr<fd::Detector>> dets;
  for (const std::string& spec : fa::list_specs()) {
    dets.push_back(fa::make_detector(spec, {.constellation = &c}));
  }
  std::set<std::string> names;
  for (auto& det : dets) {
    EXPECT_FALSE(det->name().empty());
    EXPECT_TRUE(names.insert(det->name()).second) << det->name();
  }
}
