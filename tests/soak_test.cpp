// Tests for the soak harness: the four-scenario chaos corpus at a short
// horizon (every invariant must hold at any budget), targeted scenarios
// pinning the quarantine and bypass machinery, and end-to-end determinism
// of the seeded campaign counters.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "fault/injector.h"
#include "sim/soak.h"

namespace fa = flexcore::api;
namespace ff = flexcore::fault;
namespace fs = flexcore::sim;

namespace {

void expect_ok(const fs::SoakScenarioReport& rep) {
  for (const std::string& v : rep.violations) {
    ADD_FAILURE() << rep.name << ": " << v;
  }
  EXPECT_EQ(rep.tickets_lost, 0u) << rep.name;
  EXPECT_EQ(rep.fifo_violations, 0u) << rep.name;
  EXPECT_EQ(rep.bit_mismatches, 0u) << rep.name;
}

}  // namespace

TEST(Soak, DefaultCorpusHoldsEveryInvariantAtShortHorizon) {
  // The fig19 corpus at a CI-friendly horizon: the >= 1000-reconfiguration
  // acceptance gate is a budget property, every OTHER invariant must hold
  // at 10 rounds exactly as at 128.
  for (const fs::SoakScenarioConfig& cfg : fs::default_soak_corpus(10, 77)) {
    SCOPED_TRACE(cfg.name);
    const fs::SoakScenarioReport rep = fs::run_soak_scenario(cfg);
    expect_ok(rep);
    EXPECT_GT(rep.frames_submitted, 0u);
    EXPECT_GT(rep.reconfigs, 0u);
    EXPECT_GT(rep.faults_injected, 0u) << "a chaos run must inject faults";
    EXPECT_EQ(rep.frames_submitted,
              rep.frames_done + rep.frames_quarantined + rep.frames_failed +
                  rep.frames_dropped + rep.frames_expired)
        << "every ticket must reach a terminal state";
  }
}

TEST(Soak, CertainCorruptionQuarantinesEveryFrame) {
  // p=1 non-finite payloads with the admission scan off: every frame is
  // corrupted, reaches dispatch, and terminates kQuarantined — none done,
  // none lost, and the campaign still reports ok.
  fs::SoakScenarioConfig cfg;
  cfg.name = "all-quarantine";
  cfg.cells = 1;
  cfg.rounds = 5;
  cfg.frames_per_cell = 2;
  cfg.reconfig_cycle = {"flexcore-8"};
  cfg.seed = 91;
  cfg.runtime.threads = 2;
  cfg.runtime.dispatchers = 1;
  cfg.runtime.admission_scan = false;
  cfg.spot_check_every = 0;  // no clean frames to check
  cfg.faults.seed = 92;
  cfg.faults.rules = {
      {.kind = ff::FaultKind::kNonFinitePayload, .probability = 1.0}};

  const fs::SoakScenarioReport rep = fs::run_soak_scenario(cfg);
  expect_ok(rep);
  EXPECT_GT(rep.frames_submitted, 0u);
  EXPECT_EQ(rep.injected_bad, rep.frames_submitted);
  EXPECT_EQ(rep.frames_quarantined, rep.frames_submitted);
  EXPECT_EQ(rep.frames_done, 0u);
  EXPECT_EQ(rep.injected_bad_done, 0u)
      << "a non-finite frame must never be reported done";
  EXPECT_GE(rep.watchdog_transitions, 1u)
      << "an all-bad cell must trip the health watchdog";
  EXPECT_EQ(rep.worst_health,
            static_cast<int>(fa::CellHealth::kQuarantining));
}

TEST(Soak, DeadShardFabricBypassesEveryFrameAndStaysDone) {
  // p=1 shard failures on a two-cluster fabric: every frame walks the
  // retry-then-bypass ladder and still completes kDone (the bypass is the
  // identity merge), with zero quarantines and a clean scorecard.
  fs::SoakScenarioConfig cfg;
  cfg.name = "dead-fabric";
  cfg.cells = 1;
  cfg.rounds = 4;
  cfg.frames_per_cell = 2;
  cfg.reconfig_cycle = {"flexcore-8"};
  cfg.seed = 93;
  cfg.shards = 2;
  cfg.runtime.threads = 2;
  cfg.runtime.dispatchers = 1;
  cfg.runtime.admission_scan = false;
  cfg.spot_check_every = 2;
  cfg.faults.seed = 94;
  cfg.faults.rules = {{.kind = ff::FaultKind::kShardFail,
                       .probability = 1.0}};

  const fs::SoakScenarioReport rep = fs::run_soak_scenario(cfg);
  expect_ok(rep);
  EXPECT_GT(rep.frames_submitted, 0u);
  EXPECT_EQ(rep.frames_done, rep.frames_submitted);
  EXPECT_EQ(rep.frames_quarantined, 0u);
  EXPECT_EQ(rep.shard_retries, rep.frames_submitted);
  EXPECT_EQ(rep.shard_bypasses, rep.frames_submitted);
  EXPECT_GT(rep.spot_checks, 0u);
}

TEST(Soak, CampaignCountersReplayFromTheSeeds) {
  // Determinism: under kBlock with no deadlines, nothing is shed, so the
  // full scorecard (not just the injections) must replay exactly.
  const fs::SoakScenarioConfig cfg = fs::default_soak_corpus(6, 1234)[0];
  ASSERT_EQ(cfg.runtime.policy, fa::QueuePolicy::kBlock);
  const fs::SoakScenarioReport a = fs::run_soak_scenario(cfg);
  const fs::SoakScenarioReport b = fs::run_soak_scenario(cfg);
  expect_ok(a);
  expect_ok(b);
  EXPECT_EQ(a.frames_submitted, b.frames_submitted);
  EXPECT_EQ(a.frames_done, b.frames_done);
  EXPECT_EQ(a.frames_quarantined, b.frames_quarantined);
  EXPECT_EQ(a.injected_bad, b.injected_bad);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.reconfigs, b.reconfigs);
  EXPECT_EQ(a.clean_errors, b.clean_errors);
  EXPECT_EQ(a.oracle_errors, b.oracle_errors);
}
