// Tests for the asynchronous multi-cell runtime: api::Runtime / api::Cell /
// api::FrameTicket — submit/poll semantics, per-cell FIFO ordering,
// bit-identity with the synchronous path, the three backpressure policies,
// deadline expiry and the RuntimeStats counters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/cell.h"
#include "api/runtime.h"
#include "api/uplink_pipeline.h"
#include "channel/channel.h"
#include "channel/rng.h"
#include "frame_fixtures.h"

namespace fa = flexcore::api;
namespace fd = flexcore::detect;
namespace ch = flexcore::channel;
using flexcore::linalg::CMat;
using flexcore::linalg::CVec;
using flexcore::modulation::Constellation;
using flexcore::testing::expect_bit_identical;
using flexcore::testing::Frame;
using flexcore::testing::job_of;
using flexcore::testing::make_frame;

namespace {

/// Synchronous reference: detect_frame on a standalone single-threaded
/// pipeline with the same spec.
std::vector<fd::DetectionResult> sync_reference(const std::string& spec,
                                                int qam, const Frame& fr,
                                                double noise_var) {
  fa::PipelineConfig cfg;
  cfg.detector = spec;
  cfg.qam_order = qam;
  cfg.threads = 1;
  fa::UplinkPipeline pipe(cfg);
  return pipe.detect_frame(job_of(fr, noise_var)).results;
}

/// frames_in must account for every frame: completed, shed, queued or in
/// flight — the bookkeeping invariant of the admission queue.
void expect_consistent(const fa::RuntimeStats& rs) {
  std::uint64_t in = 0, accounted = 0;
  for (const fa::CellStats& cs : rs.cells) {
    EXPECT_EQ(cs.frames_in,
              cs.frames_out + cs.frames_dropped + cs.frames_expired +
                  cs.frames_failed + cs.frames_quarantined + cs.queue_depth +
                  cs.in_flight)
        << "cell " << cs.cell_id;
    in += cs.frames_in;
    accounted += cs.frames_out + cs.frames_dropped + cs.frames_expired +
                 cs.frames_failed + cs.frames_quarantined;
  }
  EXPECT_EQ(rs.frames_in, in);
  EXPECT_EQ(rs.frames_in,
            accounted + rs.queue_depth + rs.in_flight);
  EXPECT_EQ(rs.latency_count, rs.frames_out);
}

}  // namespace

// ------------------------------------------------------------ ticket basics

TEST(Runtime, SubmitWaitTryGetRoundTrip) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 2;
  rcfg.dispatchers = 1;
  fa::Runtime rt(rcfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});

  const double nv = ch::noise_var_for_snr_db(12.0);
  const Frame fr = make_frame(cell.constellation(), 4, 3, 4, 4, nv, 40);

  fa::FrameTicket t = rt.submit(cell, job_of(fr, nv));
  ASSERT_TRUE(t.valid());
  EXPECT_EQ(t.cell_id(), cell.id());
  EXPECT_EQ(t.sequence(), 0u);
  EXPECT_EQ(t.wait(), fa::TicketStatus::kDone);
  const fa::FrameResult* r = t.try_get();
  ASSERT_NE(r, nullptr);
  expect_bit_identical(r->results,
                       sync_reference("flexcore-8", 16, fr, nv), "single");

  // take() moves the result out: afterwards the ticket exposes NO result
  // (not an empty shell) and a second take throws.
  fa::FrameResult moved = t.take();
  EXPECT_EQ(moved.results.size(), fr.ys.size());
  EXPECT_EQ(t.status(), fa::TicketStatus::kDone);
  EXPECT_EQ(t.try_get(), nullptr);
  EXPECT_THROW(t.take(), std::logic_error);
  int late_status_only = 0;
  t.on_complete([&](fa::TicketStatus st, const fa::FrameResult* res) {
    late_status_only += (st == fa::TicketStatus::kDone && res == nullptr);
  });
  EXPECT_EQ(late_status_only, 1) << "late callback after take: null result";
}

TEST(Runtime, OnCompleteFiresOnceWithResult) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 1;
  rcfg.dispatchers = 1;
  fa::Runtime rt(rcfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  const double nv = 0.05;
  const Frame fr = make_frame(cell.constellation(), 2, 2, 4, 4, nv, 41);

  std::atomic<int> fired{0};
  std::atomic<bool> had_result{false};
  fa::FrameTicket t = rt.submit(cell, job_of(fr, nv));
  t.on_complete([&](fa::TicketStatus st, const fa::FrameResult* r) {
    fired.fetch_add(1);
    had_result.store(st == fa::TicketStatus::kDone && r != nullptr &&
                     r->results.size() == 4);
  });
  t.wait();
  rt.drain();
  EXPECT_EQ(fired.load(), 1);
  EXPECT_TRUE(had_result.load());

  // Registering on an already-terminal ticket fires immediately.
  int late = 0;
  t.on_complete([&](fa::TicketStatus, const fa::FrameResult*) { ++late; });
  EXPECT_EQ(late, 1);
}

TEST(Runtime, MalformedJobsThrowSynchronouslyAtSubmit) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 1;
  rcfg.dispatchers = 0;  // nothing must reach a dispatcher
  fa::Runtime rt(rcfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  const Frame fr = make_frame(cell.constellation(), 2, 3, 4, 4, 0.05, 42);

  fa::FrameJob bad = job_of(fr, 0.05);
  bad.vectors_per_channel = 2;  // 6 vectors != 2 * 2
  EXPECT_THROW(rt.submit(cell, bad), std::invalid_argument);

  Frame ragged = fr;
  ragged.channels[1] = CMat(5, 4);
  EXPECT_THROW(rt.submit(cell, job_of(ragged, 0.05)), std::invalid_argument);

  EXPECT_EQ(rt.stats().frames_in, 0u);
  EXPECT_FALSE(rt.run_one());
}

// ------------------------------------------- bit-identity and FIFO ordering

TEST(Runtime, FourCellStressFifoAndBitIdentical) {
  // The acceptance scenario: interleaved frames from 4 cells with distinct
  // detector specs on a small shared pool.  Per cell: completion callbacks
  // fire in submission order and every result is bit-identical to the
  // synchronous single-cell path.
  constexpr std::size_t kCells = 4;
  constexpr std::size_t kFramesPerCell = 6;
  const char* specs[kCells] = {"flexcore-8", "flexcore-16", "a-flexcore-12",
                               "fcsd-L1"};

  fa::RuntimeConfig rcfg;
  rcfg.threads = 3;  // small pool, many concurrent grids
  rcfg.dispatchers = 3;
  rcfg.queue_capacity = 8;
  fa::Runtime rt(rcfg);

  const double nv = ch::noise_var_for_snr_db(12.0);
  std::vector<fa::Cell*> cells;
  std::vector<std::vector<Frame>> frames(kCells);
  for (std::size_t cidx = 0; cidx < kCells; ++cidx) {
    cells.push_back(
        &rt.open_cell({.detector = specs[cidx], .qam_order = 16}));
    for (std::size_t i = 0; i < kFramesPerCell; ++i) {
      frames[cidx].push_back(make_frame(cells[cidx]->constellation(), 6, 3, 4,
                                        4, nv, 100 + 17 * cidx + i));
    }
  }

  std::mutex order_mu;
  std::vector<std::vector<std::uint64_t>> completion_order(kCells);
  std::vector<std::vector<fa::FrameTicket>> tickets(kCells);

  // Interleave submissions across cells (round-robin), as concurrent
  // uplinks would arrive.
  for (std::size_t i = 0; i < kFramesPerCell; ++i) {
    for (std::size_t cidx = 0; cidx < kCells; ++cidx) {
      fa::FrameTicket t = rt.submit(*cells[cidx], job_of(frames[cidx][i], nv));
      t.on_complete([&, cidx, i](fa::TicketStatus st, const fa::FrameResult*) {
        EXPECT_EQ(st, fa::TicketStatus::kDone);
        std::lock_guard lock(order_mu);
        completion_order[cidx].push_back(i);
      });
      tickets[cidx].push_back(std::move(t));
    }
  }
  rt.drain();

  for (std::size_t cidx = 0; cidx < kCells; ++cidx) {
    // (a) FIFO completion per cell.
    ASSERT_EQ(completion_order[cidx].size(), kFramesPerCell) << specs[cidx];
    for (std::size_t i = 0; i < kFramesPerCell; ++i) {
      EXPECT_EQ(completion_order[cidx][i], i)
          << specs[cidx] << ": completions out of submission order";
      EXPECT_EQ(tickets[cidx][i].sequence(), i);
    }
    // (b) bit-identity with the synchronous path, every frame.
    for (std::size_t i = 0; i < kFramesPerCell; ++i) {
      const fa::FrameResult* r = tickets[cidx][i].try_get();
      ASSERT_NE(r, nullptr);
      expect_bit_identical(
          r->results, sync_reference(specs[cidx], 16, frames[cidx][i], nv),
          specs[cidx]);
    }
  }

  // (c) stats consistent with the completed tickets.
  const fa::RuntimeStats rs = rt.stats();
  expect_consistent(rs);
  EXPECT_EQ(rs.frames_in, kCells * kFramesPerCell);
  EXPECT_EQ(rs.frames_out, kCells * kFramesPerCell);
  EXPECT_EQ(rs.frames_dropped + rs.frames_expired + rs.frames_failed, 0u);
  EXPECT_EQ(rs.queue_depth, 0u);
  EXPECT_EQ(rs.in_flight, 0u);
  EXPECT_EQ(rs.latency_count, kCells * kFramesPerCell);
  EXPECT_GT(rs.latency_p50_us, 0.0);
  EXPECT_GE(rs.latency_p99_us, rs.latency_p50_us);
}

TEST(Runtime, CellCoherencePolicyReusesPreprocessingAndMatches) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 2;
  rcfg.dispatchers = 1;
  fa::Runtime rt(rcfg);
  fa::CellConfig ccfg;
  ccfg.detector = "flexcore-12";
  ccfg.qam_order = 16;
  ccfg.reuse_preprocessing = true;  // static channel across the burst
  fa::Cell& cell = rt.open_cell(ccfg);

  const double nv = ch::noise_var_for_snr_db(12.0);
  const Frame fr = make_frame(cell.constellation(), 8, 4, 6, 6, nv, 50);

  fa::FrameTicket a = rt.submit(cell, job_of(fr, nv));
  fa::FrameTicket b = rt.submit(cell, job_of(fr, nv));
  fa::FrameTicket c = rt.submit(cell, job_of(fr, nv));
  rt.drain();

  ASSERT_EQ(a.wait(), fa::TicketStatus::kDone);
  ASSERT_EQ(b.wait(), fa::TicketStatus::kDone);
  ASSERT_EQ(c.wait(), fa::TicketStatus::kDone);
  // First frame pays the preprocessing, the rest ride the coherence
  // interval...
  EXPECT_EQ(a.try_get()->channels_installed, 8u);
  EXPECT_EQ(b.try_get()->channels_installed, 0u);
  EXPECT_EQ(c.try_get()->channels_installed, 0u);
  // ...and results stay bit-identical to the cold synchronous path.
  const auto want = sync_reference("flexcore-12", 16, fr, nv);
  expect_bit_identical(a.try_get()->results, want, "cold");
  expect_bit_identical(b.try_get()->results, want, "warm b");
  expect_bit_identical(c.try_get()->results, want, "warm c");
}

// ------------------------------------------------------ backpressure: Block

TEST(Runtime, BlockPolicyBlocksSubmitterUntilSlotFrees) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 1;
  rcfg.dispatchers = 0;  // deterministic: we pump with run_one()
  rcfg.queue_capacity = 1;
  rcfg.policy = fa::QueuePolicy::kBlock;
  fa::Runtime rt(rcfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  const double nv = 0.05;
  const Frame fr = make_frame(cell.constellation(), 2, 2, 4, 4, nv, 60);

  fa::FrameTicket first = rt.submit(cell, job_of(fr, nv));  // fills the queue
  std::atomic<bool> second_submitted{false};
  fa::FrameTicket second;
  std::thread submitter([&] {
    second = rt.submit(cell, job_of(fr, nv));  // must block: queue is full
    second_submitted.store(true);
  });

  // Give the submitter ample time to reach the blocking wait.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_submitted.load())
      << "submit returned while the bounded queue was full";

  ASSERT_TRUE(rt.run_one());  // frees the slot -> submitter unblocks
  submitter.join();
  EXPECT_TRUE(second_submitted.load());
  ASSERT_TRUE(rt.run_one());
  EXPECT_FALSE(rt.run_one());

  EXPECT_EQ(first.wait(), fa::TicketStatus::kDone);
  EXPECT_EQ(second.wait(), fa::TicketStatus::kDone);
  const fa::RuntimeStats rs = rt.stats();
  expect_consistent(rs);
  EXPECT_EQ(rs.frames_out, 2u);
  EXPECT_EQ(rs.frames_dropped, 0u);
}

// ------------------------------------------------- backpressure: DropNewest

TEST(Runtime, DropNewestRejectsWhenSaturatedAndKeepsFifo) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 1;
  rcfg.dispatchers = 0;
  rcfg.queue_capacity = 2;
  rcfg.policy = fa::QueuePolicy::kDropNewest;
  fa::Runtime rt(rcfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  const double nv = 0.05;
  const Frame fr = make_frame(cell.constellation(), 2, 2, 4, 4, nv, 61);

  fa::FrameTicket a = rt.submit(cell, job_of(fr, nv));
  fa::FrameTicket b = rt.submit(cell, job_of(fr, nv));
  fa::FrameTicket c = rt.submit(cell, job_of(fr, nv));  // queue full -> shed

  EXPECT_EQ(c.status(), fa::TicketStatus::kDropped);
  EXPECT_EQ(c.wait(), fa::TicketStatus::kDropped);
  EXPECT_EQ(c.try_get(), nullptr) << "dropped frames expose no result";
  EXPECT_THROW(c.take(), std::logic_error);

  // The queued frames are untouched by the shed and complete FIFO.
  while (rt.run_one()) {
  }
  EXPECT_EQ(a.wait(), fa::TicketStatus::kDone);
  EXPECT_EQ(b.wait(), fa::TicketStatus::kDone);
  expect_bit_identical(a.try_get()->results,
                       sync_reference("flexcore-8", 16, fr, nv), "kept a");

  const fa::RuntimeStats rs = rt.stats();
  expect_consistent(rs);
  EXPECT_EQ(rs.frames_in, 3u);
  EXPECT_EQ(rs.frames_out, 2u);
  EXPECT_EQ(rs.frames_dropped, 1u);
  // Dropped frames still consume a sequence number (admission order).
  EXPECT_EQ(c.sequence(), 2u);
}

// -------------------------------------------- backpressure: DeadlineExpire

TEST(Runtime, DeadlineExpireAtDispatchNeverWritesResult) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 1;
  rcfg.dispatchers = 0;
  rcfg.queue_capacity = 4;
  rcfg.policy = fa::QueuePolicy::kDeadlineExpire;
  fa::Runtime rt(rcfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  const double nv = 0.05;
  const Frame fr = make_frame(cell.constellation(), 2, 2, 4, 4, nv, 62);

  fa::FrameTicket stale = rt.submit(cell, job_of(fr, nv), /*deadline_us=*/1);
  fa::FrameTicket fresh = rt.submit(cell, job_of(fr, nv));  // no deadline
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  ASSERT_TRUE(rt.run_one());  // dispatches `stale` -> expired, not detected
  ASSERT_TRUE(rt.run_one());
  EXPECT_FALSE(rt.run_one());

  EXPECT_EQ(stale.wait(), fa::TicketStatus::kExpired);
  EXPECT_EQ(stale.try_get(), nullptr)
      << "expired frames must never expose a partially-written result";
  EXPECT_THROW(stale.take(), std::logic_error);
  EXPECT_EQ(fresh.wait(), fa::TicketStatus::kDone);
  expect_bit_identical(fresh.try_get()->results,
                       sync_reference("flexcore-8", 16, fr, nv), "fresh");

  const fa::RuntimeStats rs = rt.stats();
  expect_consistent(rs);
  EXPECT_EQ(rs.frames_expired, 1u);
  EXPECT_EQ(rs.frames_out, 1u);
  EXPECT_EQ(rs.latency_count, 1u) << "expired frames record no latency";
}

TEST(Runtime, DeadlineExpireFreesQueueSpaceAtAdmission) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 1;
  rcfg.dispatchers = 0;
  rcfg.queue_capacity = 2;
  rcfg.policy = fa::QueuePolicy::kDeadlineExpire;
  fa::Runtime rt(rcfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  const double nv = 0.05;
  const Frame fr = make_frame(cell.constellation(), 2, 2, 4, 4, nv, 63);

  // Fill the queue with short-deadline frames, let them go stale, then
  // submit again: admission expires the stale pair instead of blocking.
  fa::FrameTicket s1 = rt.submit(cell, job_of(fr, nv), 1);
  fa::FrameTicket s2 = rt.submit(cell, job_of(fr, nv), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  fa::FrameTicket live = rt.submit(cell, job_of(fr, nv));

  EXPECT_EQ(s1.status(), fa::TicketStatus::kExpired);
  EXPECT_EQ(s2.status(), fa::TicketStatus::kExpired);
  ASSERT_TRUE(rt.run_one());
  EXPECT_EQ(live.wait(), fa::TicketStatus::kDone);

  const fa::RuntimeStats rs = rt.stats();
  expect_consistent(rs);
  EXPECT_EQ(rs.frames_in, 3u);
  EXPECT_EQ(rs.frames_expired, 2u);
  EXPECT_EQ(rs.frames_out, 1u);
}

TEST(Runtime, DeadlineExpireFullQueueWaitsForStalenessNotForever) {
  // Regression: with a full queue whose frames are not YET stale, submit
  // must sleep until the earliest queued deadline and then expire it —
  // not block forever (in poll mode nobody else would ever wake it).
  fa::RuntimeConfig rcfg;
  rcfg.threads = 1;
  rcfg.dispatchers = 0;  // poll mode: the submitting thread is alone
  rcfg.queue_capacity = 1;
  rcfg.policy = fa::QueuePolicy::kDeadlineExpire;
  fa::Runtime rt(rcfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  const double nv = 0.05;
  const Frame fr = make_frame(cell.constellation(), 2, 2, 4, 4, nv, 64);

  fa::FrameTicket stale =
      rt.submit(cell, job_of(fr, nv), /*deadline_us=*/20000);
  // Queue is full and `stale` is 20ms from its deadline: this call must
  // wait ~20ms, expire it, and admit the new frame on the same thread.
  fa::FrameTicket live = rt.submit(cell, job_of(fr, nv));

  EXPECT_EQ(stale.status(), fa::TicketStatus::kExpired);
  ASSERT_TRUE(rt.run_one());
  EXPECT_EQ(live.wait(), fa::TicketStatus::kDone);
  const fa::RuntimeStats rs = rt.stats();
  expect_consistent(rs);
  EXPECT_EQ(rs.frames_expired, 1u);
  EXPECT_EQ(rs.frames_out, 1u);
}

// -------------------------------------------------------- drain + lifecycle

TEST(Runtime, DrainCompletesEverythingWithDispatchers) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 2;
  rcfg.dispatchers = 2;
  rcfg.queue_capacity = 16;
  fa::Runtime rt(rcfg);
  fa::Cell& a = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  fa::Cell& b = rt.open_cell({.detector = "zf-sic", .qam_order = 16});
  const double nv = 0.05;
  const Frame fra = make_frame(a.constellation(), 4, 2, 4, 4, nv, 70);
  const Frame frb = make_frame(b.constellation(), 4, 2, 4, 4, nv, 71);

  std::vector<fa::FrameTicket> tickets;
  for (int i = 0; i < 5; ++i) {
    tickets.push_back(rt.submit(a, job_of(fra, nv)));
    tickets.push_back(rt.submit(b, job_of(frb, nv)));
  }
  rt.drain();
  for (auto& t : tickets) {
    EXPECT_EQ(t.status(), fa::TicketStatus::kDone);
  }
  const fa::RuntimeStats rs = rt.stats();
  expect_consistent(rs);
  EXPECT_EQ(rs.frames_out, 10u);
  EXPECT_EQ(rs.queue_depth + rs.in_flight, 0u);
  // Generic (non-grid) detectors ride the same runtime path.
  expect_bit_identical(tickets[1].try_get()->results,
                       sync_reference("zf-sic", 16, frb, nv), "zf-sic");
}

TEST(Runtime, DestructorDrainsPendingFramesInPollMode) {
  const double nv = 0.05;
  Constellation qam(16);
  const Frame fr = make_frame(qam, 2, 2, 4, 4, nv, 72);
  fa::FrameTicket pending;
  {
    fa::RuntimeConfig rcfg;
    rcfg.threads = 1;
    rcfg.dispatchers = 0;
    fa::Runtime rt(rcfg);
    fa::Cell& cell =
        rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
    pending = rt.submit(cell, job_of(fr, nv));
  }  // destructor pumps the queue
  EXPECT_EQ(pending.status(), fa::TicketStatus::kDone);
}

TEST(Runtime, SubmitAfterShutdownThrows) {
  // Destruction is the only shutdown path; emulate late submit by checking
  // the queue_capacity guard instead of racing the destructor.
  EXPECT_THROW(fa::Runtime rt(fa::RuntimeConfig{.queue_capacity = 0}),
               std::invalid_argument);
}

// -------------------------------------------- quarantine + health watchdog

TEST(Runtime, WaitForTimesOutPendingAndSeesTerminalStates) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 1;
  rcfg.dispatchers = 0;  // poll mode: nothing completes until run_one()
  fa::Runtime rt(rcfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  const double nv = 0.05;
  const Frame fr = make_frame(cell.constellation(), 2, 2, 4, 4, nv, 80);

  fa::FrameTicket t = rt.submit(cell, job_of(fr, nv));
  EXPECT_EQ(t.wait_for(std::chrono::milliseconds(5)),
            fa::TicketStatus::kPending)
      << "wait_for must time out on an unpumped frame, not hang";

  ASSERT_TRUE(rt.run_one());
  EXPECT_EQ(t.wait_for(std::chrono::seconds(5)), fa::TicketStatus::kDone);
  // Terminal tickets answer immediately, timeout notwithstanding.
  EXPECT_EQ(t.wait_for(std::chrono::nanoseconds(0)),
            fa::TicketStatus::kDone);
}

TEST(Runtime, NonFiniteFrameIsQuarantinedAndNeverPoisonsTheNext) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 1;
  rcfg.dispatchers = 0;
  rcfg.admission_scan = false;  // let corruption reach the dispatch path
  fa::Runtime rt(rcfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  const double nv = 0.05;
  const Frame clean = make_frame(cell.constellation(), 3, 2, 4, 4, nv, 81);

  Frame bad = clean;
  bad.ys[1][0] = flexcore::linalg::cplx(
      std::numeric_limits<double>::quiet_NaN(), 0.0);

  fa::FrameTicket q = rt.submit(cell, job_of(bad, nv));  // scan off: admitted
  fa::FrameTicket ok = rt.submit(cell, job_of(clean, nv));
  ASSERT_TRUE(rt.run_one());
  ASSERT_TRUE(rt.run_one());
  EXPECT_FALSE(rt.run_one());

  EXPECT_EQ(q.wait(), fa::TicketStatus::kQuarantined);
  EXPECT_EQ(q.try_get(), nullptr)
      << "quarantined frames must never expose a partial result";
  EXPECT_THROW(q.take(), std::logic_error);
  EXPECT_NE(q.error().find("non-finite"), std::string::npos) << q.error();

  // Containment: the very next clean frame detects bit-identically to a
  // fresh synchronous pipeline — nothing leaked from the corrupt frame.
  EXPECT_EQ(ok.wait(), fa::TicketStatus::kDone);
  expect_bit_identical(ok.try_get()->results,
                       sync_reference("flexcore-8", 16, clean, nv),
                       "frame after quarantine");

  const fa::RuntimeStats rs = rt.stats();
  expect_consistent(rs);
  EXPECT_EQ(rs.frames_quarantined, 1u);
  EXPECT_EQ(rs.frames_failed, 0u)
      << "corrupt input is kQuarantined, not kFailed";
  EXPECT_EQ(rs.frames_out, 1u);
  EXPECT_EQ(rs.latency_count, 1u)
      << "quarantined frames record no latency sample";
}

TEST(Runtime, AdmissionScanRejectsNonFiniteFramesAtSubmit) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 1;
  rcfg.dispatchers = 0;
  ASSERT_TRUE(rcfg.admission_scan) << "the full scan is the default";
  fa::Runtime rt(rcfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  Frame bad = make_frame(cell.constellation(), 2, 2, 4, 4, 0.05, 82);
  bad.channels[0](1, 2) = flexcore::linalg::cplx(
      0.0, std::numeric_limits<double>::infinity());

  EXPECT_THROW(rt.submit(cell, job_of(bad, 0.05)), fa::NonFiniteError);
  EXPECT_EQ(rt.stats().frames_in, 0u)
      << "rejected frames never enter the accounting";
  EXPECT_FALSE(rt.run_one());
}

TEST(Runtime, WatchdogDegradesOnBadBurstsAndRecovers) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 1;
  rcfg.dispatchers = 0;
  rcfg.admission_scan = false;
  fa::Runtime rt(rcfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  const double nv = 0.05;
  const Frame clean = make_frame(cell.constellation(), 2, 2, 4, 4, nv, 83);
  Frame bad = clean;
  bad.ys[0][0] = flexcore::linalg::cplx(
      std::numeric_limits<double>::quiet_NaN(), 0.0);

  EXPECT_EQ(rt.stats().cells[0].health,
            static_cast<int>(fa::CellHealth::kHealthy));

  // A burst of corrupt frames: the verdict must escalate to quarantining.
  for (int i = 0; i < 4; ++i) {
    fa::FrameTicket t = rt.submit(cell, job_of(bad, nv));
    ASSERT_TRUE(rt.run_one());
    EXPECT_EQ(t.wait(), fa::TicketStatus::kQuarantined);
  }
  {
    const fa::RuntimeStats rs = rt.stats();
    expect_consistent(rs);
    EXPECT_EQ(rs.cells[0].health,
              static_cast<int>(fa::CellHealth::kQuarantining));
    EXPECT_GE(rs.cells[0].health_transitions, 1u);
  }

  // A clean window (the full health ring) heals the verdict back.
  for (int i = 0; i < 16; ++i) {
    fa::FrameTicket t = rt.submit(cell, job_of(clean, nv));
    ASSERT_TRUE(rt.run_one());
    EXPECT_EQ(t.wait(), fa::TicketStatus::kDone);
  }
  {
    const fa::RuntimeStats rs = rt.stats();
    expect_consistent(rs);
    EXPECT_EQ(rs.cells[0].health,
              static_cast<int>(fa::CellHealth::kHealthy));
    EXPECT_GE(rs.cells[0].health_transitions, 2u)
        << "the recovery is a transition too";
  }
}

// ------------------------------------------------------- latency histogram

TEST(LatencyHistogram, BucketsAndQuantiles) {
  fa::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_us(0.5), 0.0);

  // 0.5us -> bucket 0; 1.5 -> [1,2); 3 -> [2,4); 1000 -> [512,1024).
  h.record(0.5);
  h.record(1.5);
  h.record(3.0);
  h.record(1000.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(fa::LatencyHistogram::bucket_of(0.5), 0u);
  EXPECT_EQ(fa::LatencyHistogram::bucket_of(1.5), 1u);
  EXPECT_EQ(fa::LatencyHistogram::bucket_of(3.0), 2u);
  EXPECT_EQ(fa::LatencyHistogram::bucket_of(1000.0), 10u);

  // Quantiles report the conservative upper bucket edge.
  EXPECT_DOUBLE_EQ(h.quantile_us(0.0), 1.0);    // first sample's bucket
  EXPECT_DOUBLE_EQ(h.quantile_us(0.25), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile_us(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile_us(0.75), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile_us(1.0), 1024.0);
  EXPECT_DOUBLE_EQ(h.mean_us(), (0.5 + 1.5 + 3.0 + 1000.0) / 4.0);

  // Monstrous samples land in the open-ended last bucket.
  fa::LatencyHistogram big;
  big.record(1e30);
  EXPECT_EQ(fa::LatencyHistogram::bucket_of(1e30),
            fa::LatencyHistogram::kBuckets - 1);
  EXPECT_GT(big.quantile_us(0.5), 0.0);
}
