// Tests for QAM constellations, Gray mapping and analytic error rates.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <set>

#include "modulation/constellation.h"
#include "modulation/error_rates.h"

namespace fm = flexcore::modulation;
using flexcore::linalg::cplx;

class ConstellationTest : public ::testing::TestWithParam<int> {};

TEST_P(ConstellationTest, UnitAverageEnergy) {
  fm::Constellation c(GetParam());
  EXPECT_NEAR(c.average_energy(), 1.0, 1e-12);
}

TEST_P(ConstellationTest, SizeAndBits) {
  fm::Constellation c(GetParam());
  EXPECT_EQ(static_cast<int>(c.points().size()), GetParam());
  EXPECT_EQ(1 << c.bits_per_symbol(), GetParam());
  EXPECT_EQ(c.side() * c.side(), GetParam());
}

TEST_P(ConstellationTest, PointsAreDistinct) {
  fm::Constellation c(GetParam());
  std::set<std::pair<double, double>> seen;
  for (cplx p : c.points()) seen.insert({p.real(), p.imag()});
  EXPECT_EQ(seen.size(), c.points().size());
}

TEST_P(ConstellationTest, SliceRecoversEveryPoint) {
  fm::Constellation c(GetParam());
  for (int i = 0; i < c.order(); ++i) {
    EXPECT_EQ(c.slice(c.point(i)), i);
  }
}

TEST_P(ConstellationTest, SliceIsNearestUnderPerturbation) {
  fm::Constellation c(GetParam());
  std::mt19937_64 gen(5);
  std::uniform_real_distribution<double> u(-0.49, 0.49);
  for (int t = 0; t < 200; ++t) {
    const int idx = static_cast<int>(gen() % static_cast<unsigned>(c.order()));
    const cplx z = c.point(idx) + cplx{u(gen) * c.min_distance(),
                                       u(gen) * c.min_distance()};
    EXPECT_EQ(c.slice(z), c.kth_nearest_exact(z, 1));
  }
}

TEST_P(ConstellationTest, SliceClampsOutOfRange) {
  fm::Constellation c(GetParam());
  const double big = 100.0;
  const int corner = c.slice(cplx{big, big});
  EXPECT_EQ(corner, c.index_from_axes(c.side() - 1, c.side() - 1));
  const int corner2 = c.slice(cplx{-big, -big});
  EXPECT_EQ(corner2, c.index_from_axes(0, 0));
}

TEST_P(ConstellationTest, BitsRoundTrip) {
  fm::Constellation c(GetParam());
  for (int i = 0; i < c.order(); ++i) {
    std::vector<std::uint8_t> bits;
    c.unmap_bits(i, bits);
    ASSERT_EQ(static_cast<int>(bits.size()), c.bits_per_symbol());
    EXPECT_EQ(c.map_bits(bits), i);
  }
}

TEST_P(ConstellationTest, GrayAdjacentSymbolsDifferInOneBit) {
  fm::Constellation c(GetParam());
  const int side = c.side();
  auto hamming = [&](int a, int b) {
    std::vector<std::uint8_t> ba, bb;
    c.unmap_bits(a, ba);
    c.unmap_bits(b, bb);
    int d = 0;
    for (std::size_t i = 0; i < ba.size(); ++i) d += ba[i] != bb[i];
    return d;
  };
  for (int i = 0; i < side; ++i) {
    for (int q = 0; q < side; ++q) {
      if (i + 1 < side) {
        EXPECT_EQ(hamming(c.index_from_axes(i, q), c.index_from_axes(i + 1, q)), 1);
      }
      if (q + 1 < side) {
        EXPECT_EQ(hamming(c.index_from_axes(i, q), c.index_from_axes(i, q + 1)), 1);
      }
    }
  }
}

TEST_P(ConstellationTest, KthNearestCoversAllSymbolsOnce) {
  fm::Constellation c(GetParam());
  const cplx z{0.123 * c.scale(), -0.321 * c.scale()};
  std::set<int> seen;
  double prev = -1.0;
  for (int k = 1; k <= c.order(); ++k) {
    const int idx = c.kth_nearest_exact(z, k);
    EXPECT_TRUE(seen.insert(idx).second) << "duplicate at k=" << k;
    const double d = std::abs(c.point(idx) - z);
    EXPECT_GE(d + 1e-12, prev) << "distances must be non-decreasing";
    prev = d;
  }
  EXPECT_EQ(static_cast<int>(seen.size()), c.order());
}

TEST_P(ConstellationTest, MinDistanceMatchesPointGrid) {
  fm::Constellation c(GetParam());
  double min_d = 1e9;
  for (int a = 0; a < c.order(); ++a) {
    for (int b = a + 1; b < c.order(); ++b) {
      min_d = std::min(min_d, std::abs(c.point(a) - c.point(b)));
    }
  }
  EXPECT_NEAR(min_d, c.min_distance(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, ConstellationTest,
                         ::testing::Values(4, 16, 64, 256));

TEST(Constellation, RejectsUnsupportedOrders) {
  EXPECT_THROW(fm::Constellation(8), std::invalid_argument);
  EXPECT_THROW(fm::Constellation(32), std::invalid_argument);
  EXPECT_THROW(fm::Constellation(0), std::invalid_argument);
}

TEST(Constellation, UnboundedAxisIndexExtendsGrid) {
  fm::Constellation c(16);
  // Point one full step beyond the top-right corner of the grid.
  const double beyond = c.pam_level(c.side() - 1) + c.min_distance();
  EXPECT_EQ(c.unbounded_axis_index(beyond), c.side());
  EXPECT_FALSE(c.axes_in_range(c.side(), 0));
  EXPECT_TRUE(c.axes_in_range(c.side() - 1, 0));
}

// ------------------------------------------------------------- error rates

TEST(ErrorRates, QFunctionKnownValues) {
  EXPECT_NEAR(fm::q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(fm::q_function(1.0), 0.158655, 1e-5);
  EXPECT_NEAR(fm::q_function(3.0), 0.001349, 1e-5);
  EXPECT_GT(fm::q_function(-1.0), 0.8);
}

TEST(ErrorRates, SerDecreasesWithSnr) {
  fm::Constellation c(16);
  double prev = 1.0;
  for (double nv : {1.0, 0.5, 0.1, 0.01, 0.001}) {
    const double ser = fm::qam_symbol_error(c, 1.0, nv);
    EXPECT_LT(ser, prev);
    prev = ser;
  }
}

TEST(ErrorRates, SerIncreasesWithOrder) {
  const double nv = 0.05;
  double prev = 0.0;
  for (int m : {4, 16, 64, 256}) {
    fm::Constellation c(m);
    const double ser = fm::qam_symbol_error(c, 1.0, nv);
    EXPECT_GT(ser, prev) << "m=" << m;
    prev = ser;
  }
}

TEST(ErrorRates, SerMatchesMonteCarlo) {
  // Validate the closed form against simulation at a few operating points.
  fm::Constellation c(16);
  std::mt19937_64 gen(1234);
  std::normal_distribution<double> n;
  for (double nv : {0.2, 0.05}) {
    const double sr = std::sqrt(nv / 2.0);
    int errors = 0;
    const int trials = 200000;
    for (int t = 0; t < trials; ++t) {
      const int tx = static_cast<int>(gen() % 16);
      const cplx y = c.point(tx) + cplx{sr * n(gen), sr * n(gen)};
      if (c.slice(y) != tx) ++errors;
    }
    const double mc = static_cast<double>(errors) / trials;
    const double analytic = fm::qam_symbol_error(c, 1.0, nv);
    EXPECT_NEAR(mc, analytic, 0.015) << "noise_var=" << nv;
  }
}

TEST(ErrorRates, LevelErrorProbabilityClamped) {
  fm::Constellation c(64);
  // Extremely noisy: the paper's formula exceeds 1; ours must stay in (0,1).
  const double pe = fm::level_error_probability(fm::PeModel::kPaperErfc, c,
                                                0.01, 100.0);
  EXPECT_GT(pe, 0.0);
  EXPECT_LT(pe, 1.0);
  // Extremely clean: clamped away from exactly 0.
  const double pe2 = fm::level_error_probability(fm::PeModel::kPaperErfc, c,
                                                 10.0, 1e-9);
  EXPECT_GT(pe2, 0.0);
}

TEST(ErrorRates, ModelsAreMonotoneInChannelGain) {
  fm::Constellation c(64);
  for (auto model : {fm::PeModel::kPaperErfc, fm::PeModel::kExactSer,
                     fm::PeModel::kRayleighCalibrated}) {
    double prev = 1.0;
    for (double r : {0.5, 1.0, 2.0, 4.0}) {
      const double pe = fm::level_error_probability(model, c, r, 0.1);
      EXPECT_LE(pe, prev);
      prev = pe;
    }
  }
}

TEST(ErrorRates, PamSymbolErrorEdgeCases) {
  EXPECT_EQ(fm::pam_symbol_error(4, 1.0, 0.0), 0.0);
  // Huge noise: approaches 2 * (1 - 1/m) * 0.5.
  EXPECT_NEAR(fm::pam_symbol_error(4, 1e-9, 1.0), 0.75, 1e-3);
}
