// Tests for the paper-suggested extensions and auxiliary substrates:
// adaptive K-best (§6), channel estimation (§3.1/§5.1), channel aging
// (§3.1), and the 16-bit fixed-point engine (§4 / Table 3 premise).
#include <gtest/gtest.h>

#include <cmath>

#include "api/detector_registry.h"
#include "channel/estimation.h"
#include "channel/trace.h"
#include "core/adaptive_kbest.h"
#include "core/flexcore_detector.h"
#include "detect/kbest.h"
#include "perfmodel/fixed_path.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace pm = flexcore::perfmodel;
using flexcore::linalg::CMat;
using flexcore::linalg::CVec;
using flexcore::modulation::Constellation;

// ------------------------------------------------------------ adaptive K

TEST(AdaptiveKBest, RecoversNoiseless) {
  Constellation c(16);
  ch::Rng rng(1);
  const auto det = fa::make_detector("akbest-16", {.constellation = &c});
  for (int t = 0; t < 10; ++t) {
    const CMat h = ch::rayleigh_iid(6, 6, rng);
    CVec s(6);
    std::vector<int> tx(6);
    for (int u = 0; u < 6; ++u) {
      tx[static_cast<std::size_t>(u)] = static_cast<int>(rng.uniform_int(16));
      s[static_cast<std::size_t>(u)] = c.point(tx[static_cast<std::size_t>(u)]);
    }
    const CVec y = ch::transmit(h, s, 0.0, rng);
    det->set_channel(h, 1e-6);
    EXPECT_EQ(det->detect(y).symbols, tx);
  }
}

TEST(AdaptiveKBest, WidthsAreMonotoneDownTheTree) {
  // Distinct-prefix counts can only grow as the walk descends (level Nt
  // down to 1, i.e. array index nt-1 down to 0).
  Constellation c(64);
  ch::Rng rng(2);
  const auto det = fa::make_detector_as<fc::AdaptiveKBestDetector>(
      "akbest-64", {.constellation = &c});
  const CMat h = ch::rayleigh_iid(8, 8, rng);
  det->set_channel(h, 0.02);
  const auto& k = det->level_widths();
  ASSERT_EQ(k.size(), 8u);
  for (std::size_t i = 0; i + 1 < k.size(); ++i) {
    EXPECT_GE(k[i], k[i + 1]) << "widths must not shrink downwards";
    EXPECT_GE(k[i], 1u);
    EXPECT_LE(k[i], 64u);
  }
}

TEST(AdaptiveKBest, WidthsBoundedByBudget) {
  Constellation c(16);
  ch::Rng rng(3);
  for (std::size_t budget : {4u, 16u, 64u}) {
    const auto det = fa::make_detector_as<fc::AdaptiveKBestDetector>(
        "akbest-" + std::to_string(budget), {.constellation = &c});
    const CMat h = ch::rayleigh_iid(6, 6, rng);
    det->set_channel(h, 0.1);
    for (std::size_t k : det->level_widths()) EXPECT_LE(k, budget);
    EXPECT_LE(det->parallel_tasks(), budget);
  }
}

TEST(AdaptiveKBest, MoreBudgetNeverWorse) {
  Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(8.0);
  auto run = [&](std::size_t budget) {
    ch::Rng rng(4);
    const auto det = fa::make_detector(
        "akbest-" + std::to_string(budget), {.constellation = &c});
    std::size_t err = 0;
    for (int t = 0; t < 150; ++t) {
      ch::Rng hrng(100 + static_cast<unsigned>(t));
      const CMat h = ch::rayleigh_iid(6, 6, hrng);
      det->set_channel(h, nv);
      CVec s(6);
      std::vector<int> tx(6);
      for (int u = 0; u < 6; ++u) {
        tx[static_cast<std::size_t>(u)] = static_cast<int>(rng.uniform_int(16));
        s[static_cast<std::size_t>(u)] = c.point(tx[static_cast<std::size_t>(u)]);
      }
      const CVec y = ch::transmit(h, s, nv, rng);
      const auto res = det->detect(y);
      for (int u = 0; u < 6; ++u) {
        err += res.symbols[static_cast<std::size_t>(u)] !=
               tx[static_cast<std::size_t>(u)];
      }
    }
    return err;
  };
  const auto e4 = run(4);
  const auto e64 = run(64);
  EXPECT_LE(e64, e4);
}

TEST(AdaptiveKBest, NameAndInterface) {
  Constellation c(16);
  const auto det = fa::make_detector("akbest-32", {.constellation = &c});
  EXPECT_EQ(det->name(), "akbest-32");
}

// ------------------------------------------------------- channel estimation

TEST(Estimation, MseScalesInverselyWithRepeats) {
  ch::Rng rng(5);
  const CMat h = ch::rayleigh_iid(8, 8, rng);
  const double nv = 0.05;
  double mse1 = 0.0, mse8 = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    mse1 += ch::estimation_mse(h, ch::estimate_channel(h, nv, 1, rng).h_hat);
    mse8 += ch::estimation_mse(h, ch::estimate_channel(h, nv, 8, rng).h_hat);
  }
  mse1 /= trials;
  mse8 /= trials;
  // LS: MSE = noise_var / repeats (each entry estimated from `repeats`
  // observations of a unit pilot).
  EXPECT_NEAR(mse1, nv, 0.3 * nv);
  EXPECT_NEAR(mse8, nv / 8.0, 0.3 * nv / 8.0);
}

TEST(Estimation, NoiseVarianceEstimateUnbiased) {
  ch::Rng rng(6);
  const CMat h = ch::rayleigh_iid(8, 8, rng);
  const double nv = 0.02;
  double acc = 0.0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    acc += ch::estimate_channel(h, nv, 4, rng).noise_var_hat;
  }
  EXPECT_NEAR(acc / trials, nv, 0.15 * nv);
}

TEST(Estimation, NoiselessPilotsGiveExactChannel) {
  ch::Rng rng(7);
  const CMat h = ch::rayleigh_iid(4, 4, rng);
  const auto est = ch::estimate_channel(h, 0.0, 1, rng);
  EXPECT_LT(ch::estimation_mse(h, est.h_hat), 1e-20);
  EXPECT_NEAR(est.noise_var_hat, 0.0, 1e-20);
}

TEST(Estimation, ZeroRepeatsThrows) {
  ch::Rng rng(8);
  const CMat h = ch::rayleigh_iid(2, 2, rng);
  EXPECT_THROW(ch::estimate_channel(h, 0.1, 0, rng), std::invalid_argument);
}

TEST(Estimation, PilotCountReported) {
  ch::Rng rng(9);
  const CMat h = ch::rayleigh_iid(4, 4, rng);
  EXPECT_EQ(ch::estimate_channel(h, 0.1, 3, rng).pilots_used, 12u);
}

// ------------------------------------------------------------ channel aging

TEST(Aging, RhoOneIsIdentity) {
  ch::TraceConfig cfg;
  cfg.nr = cfg.nt = 4;
  cfg.num_subcarriers = 8;
  ch::TraceGenerator gen(cfg, 10);
  ch::Rng rng(11);
  const auto trace = gen.next();
  const auto aged = ch::evolve_trace(trace, 1.0, rng);
  for (std::size_t f = 0; f < 8; ++f) {
    EXPECT_LT(CMat::max_abs_diff(trace.per_subcarrier[f], aged.per_subcarrier[f]),
              1e-15);
  }
}

TEST(Aging, PowerIsStationary) {
  ch::TraceConfig cfg;
  cfg.nr = cfg.nt = 4;
  cfg.num_subcarriers = 4;
  ch::TraceGenerator gen(cfg, 12);
  ch::Rng rng(13);
  auto trace = gen.next();
  double power = 0.0;
  std::size_t count = 0;
  for (int step = 0; step < 200; ++step) {
    trace = ch::evolve_trace(trace, 0.9, rng);
    for (const auto& h : trace.per_subcarrier) {
      power += h.frobenius_norm() * h.frobenius_norm();
      count += h.rows() * h.cols();
    }
  }
  EXPECT_NEAR(power / static_cast<double>(count), 1.0, 0.15);
}

TEST(Aging, CorrelationDecaysGeometrically) {
  ch::TraceConfig cfg;
  cfg.nr = cfg.nt = 2;
  cfg.num_subcarriers = 1;
  ch::TraceGenerator gen(cfg, 14);
  ch::Rng rng(15);
  const double rho = 0.8;
  double corr1 = 0.0, corr2 = 0.0, norm = 0.0;
  for (int t = 0; t < 500; ++t) {
    auto t0 = gen.next();
    const auto t1 = ch::evolve_trace(t0, rho, rng);
    const auto t2 = ch::evolve_trace(t1, rho, rng);
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t c = 0; c < 2; ++c) {
        const auto h0 = t0.per_subcarrier[0](r, c);
        corr1 += (std::conj(h0) * t1.per_subcarrier[0](r, c)).real();
        corr2 += (std::conj(h0) * t2.per_subcarrier[0](r, c)).real();
        norm += flexcore::linalg::abs2(h0);
      }
    }
  }
  EXPECT_NEAR(corr1 / norm, rho, 0.06);
  EXPECT_NEAR(corr2 / norm, rho * rho, 0.06);
}

TEST(Aging, InvalidRhoThrows) {
  ch::TraceConfig cfg;
  cfg.nr = cfg.nt = 2;
  ch::TraceGenerator gen(cfg, 16);
  ch::Rng rng(17);
  const auto trace = gen.next();
  EXPECT_THROW(ch::evolve_trace(trace, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(ch::evolve_trace(trace, 1.1, rng), std::invalid_argument);
}

TEST(Aging, PreservesUserGains) {
  ch::TraceConfig cfg;
  cfg.nr = cfg.nt = 4;
  ch::TraceGenerator gen(cfg, 18);
  ch::Rng rng(19);
  const auto trace = gen.next();
  const auto aged = ch::evolve_trace(trace, 0.5, rng);
  EXPECT_EQ(aged.user_gains, trace.user_gains);
}

// ------------------------------------------------------------- fixed point

TEST(FixedPath, MetricTracksDoubleEngine) {
  Constellation c(16);
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-16", {.constellation = &c});
  ch::Rng rng(20);
  const CMat h = ch::rayleigh_iid(6, 6, rng);
  const double nv = 0.05;
  det->set_channel(h, nv);
  CVec s(6);
  for (int u = 0; u < 6; ++u) s[static_cast<std::size_t>(u)] = c.point(5);
  const CVec y = ch::transmit(h, s, nv, rng);
  const CVec ybar = det->rotate(y);

  for (std::size_t p = 0; p < det->active_paths(); ++p) {
    const auto dbl = det->evaluate_path(ybar, p);
    const auto fix = pm::fixed_path_walk(det->constellation(), det->lut(),
                                         det->qr().R,
                                         det->preprocessing().paths[p].p,
                                         det->config().invalid_policy, ybar);
    // Paths valid in double should be valid in fixed point and vice versa
    // except within quantization of the slicer boundary; metrics agree to
    // Q4.11 resolution accumulated over the walk.
    if (dbl.valid && fix.valid) {
      EXPECT_NEAR(fix.metric, dbl.metric, 0.05 + 0.05 * dbl.metric)
          << "path " << p;
    }
  }
}

TEST(FixedPath, HighAgreementWithDoubleDecisions) {
  Constellation c(16);
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-32", {.constellation = &c});
  ch::Rng rng(21);
  const CMat h = ch::rayleigh_iid(6, 6, rng);
  const double nv = ch::noise_var_for_snr_db(14.0);
  det->set_channel(h, nv);

  std::vector<CVec> ys;
  CVec s(6);
  for (int v = 0; v < 60; ++v) {
    for (int u = 0; u < 6; ++u) {
      s[static_cast<std::size_t>(u)] = c.point(static_cast<int>(rng.uniform_int(16)));
    }
    ys.push_back(ch::transmit(h, s, nv, rng));
  }
  EXPECT_GE(pm::fixed_vs_double_agreement(*det, ys), 0.9);
}

TEST(FixedPath, EmptyBatchAgreementIsOne) {
  Constellation c(16);
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-4", {.constellation = &c});
  EXPECT_EQ(pm::fixed_vs_double_agreement(*det, {}), 1.0);
}
