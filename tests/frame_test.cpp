// Tests for the frame-level detection engine: api::FrameJob /
// UplinkPipeline::detect_frame, the multi-channel grid
// (detect::run_frame_grid) and its zero-allocation steady state.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "api/uplink_pipeline.h"
#include "channel/channel.h"
#include "core/flexcore_detector.h"
#include "detect/fcsd.h"
#include "detect/path_grid.h"
#include "frame_fixtures.h"
#include "parallel/hot_path_guard.h"
#include "parallel/thread_pool.h"

namespace fa = flexcore::api;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace ch = flexcore::channel;
using flexcore::linalg::CMat;
using flexcore::linalg::CVec;
using flexcore::modulation::Constellation;

// ------------------------------------------------------- allocation probe
//
// Allocation counting comes from the library's own hot-path guard
// (parallel/hot_path_guard.h): libflexcore interposes operator new/delete
// process-wide, and a HotPathScope armed with Scope::kProcess counts every
// thread's allocations while it is live.

namespace {

using flexcore::testing::expect_bit_identical;
using flexcore::testing::Frame;
using flexcore::testing::job_of;
using flexcore::testing::make_frame;

/// Reference: the sequential per-subcarrier set_channel + detect lifecycle
/// on a fresh registry-constructed detector.
std::vector<fd::DetectionResult> sequential_reference(
    const std::string& spec, const Constellation& c, const Frame& fr,
    double noise_var) {
  const auto det = fa::make_detector(spec, {.constellation = &c});
  std::vector<fd::DetectionResult> out;
  out.reserve(fr.ys.size());
  for (std::size_t f = 0; f < fr.channels.size(); ++f) {
    det->set_channel(fr.channels[f], noise_var);
    for (std::size_t t = 0; t < fr.nv; ++t) {
      out.push_back(det->detect(fr.ys[f * fr.nv + t]));
    }
  }
  return out;
}

// ------------------------------------------------------------ detect_frame

TEST(Frame, EmptyFrameIsNoOp) {
  fa::PipelineConfig cfg;
  cfg.detector = "flexcore-8";
  cfg.qam_order = 16;
  cfg.threads = 2;
  fa::UplinkPipeline pipe(cfg);

  const fa::FrameResult fr = pipe.detect_frame(fa::FrameJob{});
  EXPECT_TRUE(fr.results.empty());
  EXPECT_EQ(fr.tasks, 0u);
  EXPECT_EQ(fr.channels_installed, 0u);
  EXPECT_EQ(pipe.vectors_detected(), 0u);
  EXPECT_EQ(pipe.channel_installs(), 0u);
}

TEST(Frame, ZeroVectorsStillInstallsChannels) {
  fa::PipelineConfig cfg;
  cfg.detector = "flexcore-8";
  cfg.qam_order = 16;
  cfg.threads = 1;
  fa::UplinkPipeline pipe(cfg);
  const Frame fr = make_frame(pipe.constellation(), 3, 0, 4, 4, 0.05, 21);

  const fa::FrameResult out = pipe.detect_frame(job_of(fr, 0.05));
  EXPECT_TRUE(out.results.empty());
  EXPECT_EQ(out.channels_installed, 3u);
  EXPECT_GT(out.sum_active_paths, 0.0);
  EXPECT_EQ(pipe.channel_installs(), 3u);
}

TEST(Frame, SingleSubcarrierMatchesDetectBitForBit) {
  fa::PipelineConfig cfg;
  cfg.detector = "flexcore-16";
  cfg.qam_order = 16;
  cfg.threads = 2;
  fa::UplinkPipeline pipe(cfg);
  const double nv = ch::noise_var_for_snr_db(12.0);
  const Frame fr = make_frame(pipe.constellation(), 1, 20, 6, 6, nv, 22);

  const fa::FrameResult out = pipe.detect_frame(job_of(fr, nv));
  expect_bit_identical(out.results,
                       sequential_reference("flexcore-16", pipe.constellation(),
                                            fr, nv));
}

TEST(Frame, SixtyFourSubcarrierFrameMatchesSequentialLifecycle) {
  // The acceptance-criteria scenario: a 64-subcarrier frame must be
  // bit-identical to 64 sequential set_channel + detect calls.
  fa::PipelineConfig cfg;
  cfg.detector = "flexcore-8";
  cfg.qam_order = 16;
  cfg.threads = 3;
  fa::UplinkPipeline pipe(cfg);
  const double nv = ch::noise_var_for_snr_db(14.0);
  const Frame fr = make_frame(pipe.constellation(), 64, 2, 4, 4, nv, 23);

  const fa::FrameResult out = pipe.detect_frame(job_of(fr, nv));
  expect_bit_identical(out.results,
                       sequential_reference("flexcore-8", pipe.constellation(),
                                            fr, nv));
  EXPECT_EQ(out.channels_installed, 64u);
  EXPECT_EQ(pipe.vectors_detected(), fr.ys.size());
  EXPECT_GT(out.tasks, 0u);
}

TEST(Frame, AdaptiveFlexcoreFrameMatchesSequentialLifecycle) {
  // a-FlexCore activates a different path count per subcarrier, exercising
  // the ragged paths-per-channel dimension of the grid.
  fa::PipelineConfig cfg;
  cfg.detector = "a-flexcore-24";
  cfg.qam_order = 16;
  cfg.threads = 2;
  fa::UplinkPipeline pipe(cfg);
  const double nv = ch::noise_var_for_snr_db(13.0);
  const Frame fr = make_frame(pipe.constellation(), 12, 4, 6, 6, nv, 24);

  const fa::FrameResult out = pipe.detect_frame(job_of(fr, nv));
  expect_bit_identical(out.results,
                       sequential_reference("a-flexcore-24",
                                            pipe.constellation(), fr, nv));
}

TEST(Frame, SicFallbackAppliedInsideFrame) {
  // A tiny path budget at brutal noise deactivates every PE for some
  // vectors; the frame engine must apply the same SIC fallback detect()
  // does and report the count.
  fa::PipelineConfig cfg;
  cfg.detector = "flexcore-2";
  cfg.qam_order = 64;
  cfg.threads = 2;
  fa::UplinkPipeline pipe(cfg);
  const double nv = 4.0;
  const Frame fr = make_frame(pipe.constellation(), 8, 25, 8, 8, nv, 25);

  const fa::FrameResult out = pipe.detect_frame(job_of(fr, nv));
  expect_bit_identical(out.results,
                       sequential_reference("flexcore-2", pipe.constellation(),
                                            fr, nv));
  EXPECT_GT(out.sic_fallbacks, 0u)
      << "scenario no longer exercises the fallback; lower the budget";
}

TEST(Frame, FcsdFrameMatchesSequentialLifecycle) {
  fa::PipelineConfig cfg;
  cfg.detector = "fcsd-L1";
  cfg.qam_order = 16;
  cfg.threads = 2;
  fa::UplinkPipeline pipe(cfg);
  const double nv = 0.05;
  const Frame fr = make_frame(pipe.constellation(), 10, 6, 6, 6, nv, 26);

  const fa::FrameResult out = pipe.detect_frame(job_of(fr, nv));
  expect_bit_identical(out.results,
                       sequential_reference("fcsd-L1", pipe.constellation(),
                                            fr, nv));
  EXPECT_EQ(out.sic_fallbacks, 0u);
}

TEST(Frame, GenericDetectorsRouteThroughBatchFallback) {
  // Detectors without span kernels (zf-sic, kbest) still honour the frame
  // contract via per-subcarrier detect_batch.
  for (const char* spec : {"zf-sic", "kbest-4"}) {
    fa::PipelineConfig cfg;
    cfg.detector = spec;
    cfg.qam_order = 16;
    cfg.threads = 2;
    fa::UplinkPipeline pipe(cfg);
    const double nv = 0.05;
    const Frame fr = make_frame(pipe.constellation(), 6, 5, 5, 5, nv, 27);

    const fa::FrameResult out = pipe.detect_frame(job_of(fr, nv));
    expect_bit_identical(out.results,
                         sequential_reference(spec, pipe.constellation(), fr,
                                              nv));
  }
}

TEST(Frame, ThreadCountDoesNotChangeResults) {
  const double nv = ch::noise_var_for_snr_db(10.0);
  Constellation c(16);
  const Frame fr = make_frame(c, 16, 6, 6, 6, nv, 28);

  std::vector<fd::DetectionResult> one, many;
  for (std::size_t threads : {1u, 4u}) {
    fa::PipelineConfig cfg;
    cfg.detector = "flexcore-12";
    cfg.qam_order = 16;
    cfg.threads = threads;
    fa::UplinkPipeline pipe(cfg);
    auto& dst = threads == 1 ? one : many;
    dst = pipe.detect_frame(job_of(fr, nv)).results;
  }
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t v = 0; v < one.size(); ++v) {
    EXPECT_EQ(one[v].symbols, many[v].symbols) << "vector " << v;
    EXPECT_EQ(one[v].metric, many[v].metric) << "vector " << v;
  }
}

TEST(Frame, MalformedJobsThrow) {
  fa::PipelineConfig cfg;
  cfg.detector = "flexcore-8";
  cfg.qam_order = 16;
  cfg.threads = 1;
  fa::UplinkPipeline pipe(cfg);
  const Frame fr = make_frame(pipe.constellation(), 2, 3, 4, 4, 0.05, 29);

  fa::FrameJob bad_count = job_of(fr, 0.05);
  bad_count.vectors_per_channel = 2;  // ys.size() == 6 != 2 * 2
  EXPECT_THROW(pipe.detect_frame(bad_count), std::invalid_argument);

  Frame ragged = fr;
  ragged.channels[1] = CMat(5, 4);  // shape mismatch
  EXPECT_THROW(pipe.detect_frame(job_of(ragged, 0.05)), std::invalid_argument);

  // Degenerate (zero-dimension) channel matrices.
  Frame empty_h = fr;
  empty_h.channels.assign(2, CMat(0, 0));
  EXPECT_THROW(pipe.detect_frame(job_of(empty_h, 0.05)),
               std::invalid_argument);

  // A received vector whose length disagrees with the channel row count
  // (mismatched per-subcarrier batch contents).
  Frame bad_y = fr;
  bad_y.ys[3] = CVec(7);
  EXPECT_THROW(pipe.detect_frame(job_of(bad_y, 0.05)), std::invalid_argument);

  // Empty ys with a nonzero vector count promises 6 vectors but carries 0.
  fa::FrameJob empty_ys = job_of(fr, 0.05);
  empty_ys.ys = {};
  EXPECT_THROW(pipe.detect_frame(empty_ys), std::invalid_argument);

  // api::validate_frame_job is the same guard, callable without running
  // (the runtime validates at submit time through it).
  EXPECT_THROW(fa::validate_frame_job(bad_count), std::invalid_argument);
  EXPECT_NO_THROW(fa::validate_frame_job(job_of(fr, 0.05)));
  EXPECT_NO_THROW(fa::validate_frame_job(fa::FrameJob{}));

  // Nothing above reached the grid or the counters.
  EXPECT_EQ(pipe.vectors_detected(), 0u);
  EXPECT_EQ(pipe.channel_installs(), 0u);
}

TEST(Frame, SharedPoolPipelinesMatchOwnedPoolPipelines) {
  // Two pipelines multiplexing ONE shared pool (the runtime's layout)
  // produce the same frames as pipelines owning their pools.
  flexcore::parallel::ThreadPool shared(3);
  const double nv = ch::noise_var_for_snr_db(12.0);
  Constellation c(16);
  const Frame fr_a = make_frame(c, 6, 3, 4, 4, nv, 35);
  const Frame fr_b = make_frame(c, 4, 2, 4, 4, nv, 36);

  fa::PipelineConfig shared_cfg;
  shared_cfg.detector = "flexcore-8";
  shared_cfg.qam_order = 16;
  shared_cfg.shared_pool = &shared;
  fa::UplinkPipeline pa(shared_cfg), pb(shared_cfg);
  EXPECT_TRUE(pa.uses_shared_pool());
  EXPECT_EQ(&pa.pool(), &shared);
  EXPECT_EQ(&pb.pool(), &shared);

  fa::PipelineConfig owned_cfg = shared_cfg;
  owned_cfg.shared_pool = nullptr;
  owned_cfg.threads = 3;
  fa::UplinkPipeline ref(owned_cfg);
  EXPECT_FALSE(ref.uses_shared_pool());

  const fa::FrameResult ra = pa.detect_frame(job_of(fr_a, nv));
  const fa::FrameResult rb = pb.detect_frame(job_of(fr_b, nv));
  expect_bit_identical(ra.results,
                       ref.detect_frame(job_of(fr_a, nv)).results);
  expect_bit_identical(rb.results,
                       ref.detect_frame(job_of(fr_b, nv)).results);
}

TEST(Frame, CountersAggregateAcrossFrames) {
  fa::PipelineConfig cfg;
  cfg.detector = "flexcore-8";
  cfg.qam_order = 16;
  cfg.threads = 2;
  fa::UplinkPipeline pipe(cfg);
  const double nv = 0.05;
  const Frame fr = make_frame(pipe.constellation(), 4, 3, 4, 4, nv, 30);

  const fa::FrameResult a = pipe.detect_frame(job_of(fr, nv));
  const fa::FrameResult b = pipe.detect_frame(job_of(fr, nv));
  EXPECT_EQ(pipe.channel_installs(), 8u);
  EXPECT_EQ(pipe.vectors_detected(), 2 * fr.ys.size());
  EXPECT_GT(pipe.total_stats().paths_evaluated, 0u);
  // Same job twice: identical verdicts and counters.
  expect_bit_identical(b.results, a.results);
  EXPECT_EQ(a.tasks, b.tasks);
}

TEST(Frame, ReusePreprocessingSkipsInstallsAndMatches) {
  fa::PipelineConfig cfg;
  cfg.detector = "flexcore-12";
  cfg.qam_order = 16;
  cfg.threads = 2;
  fa::UplinkPipeline pipe(cfg);
  const double nv = ch::noise_var_for_snr_db(12.0);
  const Frame fr = make_frame(pipe.constellation(), 10, 4, 6, 6, nv, 33);

  const fa::FrameResult cold = pipe.detect_frame(job_of(fr, nv));
  EXPECT_EQ(pipe.channel_installs(), 10u);

  fa::FrameJob warm = job_of(fr, nv);
  warm.reuse_preprocessing = true;
  const fa::FrameResult reused = pipe.detect_frame(warm);
  EXPECT_EQ(pipe.channel_installs(), 10u) << "reuse must not re-install";
  EXPECT_EQ(reused.channels_installed, 0u);
  expect_bit_identical(reused.results, cold.results);

  // A different subcarrier count invalidates the cache: preprocessing runs
  // despite the flag.
  const Frame other = make_frame(pipe.constellation(), 4, 4, 6, 6, nv, 34);
  fa::FrameJob fresh = job_of(other, nv);
  fresh.reuse_preprocessing = true;
  const fa::FrameResult out = pipe.detect_frame(fresh);
  EXPECT_EQ(out.channels_installed, 4u);
  expect_bit_identical(out.results,
                       sequential_reference("flexcore-12", pipe.constellation(),
                                            other, nv));

  // So does a different antenna geometry at the SAME count: reusing 6x6 QR
  // state for a 4x4 frame would walk garbage.
  const Frame geom = make_frame(pipe.constellation(), 4, 4, 4, 4, nv, 37);
  fa::FrameJob regeom = job_of(geom, nv);
  regeom.reuse_preprocessing = true;
  const fa::FrameResult gout = pipe.detect_frame(regeom);
  EXPECT_EQ(gout.channels_installed, 4u) << "geometry change must reinstall";
  expect_bit_identical(gout.results,
                       sequential_reference("flexcore-12", pipe.constellation(),
                                            geom, nv));
}

// --------------------------------------------------------- zero-allocation

TEST(FrameGrid, SteadyStateGridDoesNotAllocate) {
  // The acceptance criterion for the workspace refactor: once buffers are
  // warm, a full multi-channel grid run performs ZERO heap allocations —
  // at any thread count.
  Constellation c(16);
  ch::Rng rng(31);
  const std::size_t nsc = 4, nv = 6, n = 6;
  const double noise = ch::noise_var_for_snr_db(12.0);

  std::vector<std::unique_ptr<fc::FlexCoreDetector>> dets;
  std::vector<const fc::FlexCoreDetector*> ptrs;
  std::vector<std::size_t> paths;
  Frame fr = make_frame(c, nsc, nv, n, n, noise, 32);
  for (std::size_t f = 0; f < nsc; ++f) {
    dets.push_back(
        std::make_unique<fc::FlexCoreDetector>(c, fc::FlexCoreConfig{.num_pes = 8}));
    dets.back()->set_channel(fr.channels[f], noise);
    ptrs.push_back(dets.back().get());
    paths.push_back(dets.back()->active_paths());
  }

  for (std::size_t threads : {1u, 3u}) {
    flexcore::parallel::ThreadPool pool(threads);
    fd::FrameGridOutput grid;
    // Warm runs: grow every buffer to its high-water mark.
    fd::run_frame_grid<fc::FlexCoreDetector>(ptrs, paths, fr.ys, nv, n, pool,
                                             &grid);
    fd::run_frame_grid<fc::FlexCoreDetector>(ptrs, paths, fr.ys, nv, n, pool,
                                             &grid);

    flexcore::parallel::HotPathScope guard(
        "frame grid steady state",
        flexcore::parallel::HotPathScope::Scope::kProcess);
    fd::run_frame_grid<fc::FlexCoreDetector>(ptrs, paths, fr.ys, nv, n, pool,
                                             &grid);
    EXPECT_EQ(guard.delta().allocations, 0u) << "threads=" << threads;

    // The grid still produced verdicts.
    ASSERT_EQ(grid.best_path.size(), nsc * nv);
    for (double m : grid.best_metric) EXPECT_TRUE(std::isfinite(m));
  }
}

TEST(PathGrid, SteadyStateGridDoesNotAllocate) {
  // The single-channel grid honours the same contract as the frame grid:
  // with a warm PathGridOutput (and the per-call metrics vector gone), a
  // full vector x path run performs ZERO heap allocations — at any thread
  // count, for both the FlexCore and FCSD block kernels.
  Constellation c(16);
  const double noise = ch::noise_var_for_snr_db(12.0);
  const Frame fr = make_frame(c, 1, 24, 6, 6, noise, 41);

  fc::FlexCoreDetector flex(c, fc::FlexCoreConfig{.num_pes = 16});
  flex.set_channel(fr.channels[0], noise);
  fd::FcsdDetector fcsd(c, 1);
  fcsd.set_channel(fr.channels[0], noise);

  for (std::size_t threads : {1u, 3u}) {
    flexcore::parallel::ThreadPool pool(threads);
    fd::PathGridOutput grid;
    const auto run_both = [&] {
      fd::run_path_grid(flex, flex.active_paths(), fr.ys, 6, pool, &grid);
      fd::run_path_grid(fcsd, fcsd.num_paths(), fr.ys, 6, pool, &grid);
    };
    run_both();  // warm: grow every buffer to its high-water mark
    run_both();

    flexcore::parallel::HotPathScope guard(
        "path grid steady state",
        flexcore::parallel::HotPathScope::Scope::kProcess);
    run_both();
    EXPECT_EQ(guard.delta().allocations, 0u) << "threads=" << threads;

    ASSERT_EQ(grid.best_path.size(), fr.ys.size());
    for (double m : grid.best_metric) EXPECT_TRUE(std::isfinite(m));
  }
}

TEST(Frame, Fp32TierRunsAndStaysClose) {
  // The ":fp32" compute tier flows end-to-end through the pipeline: the
  // frame grid runs the single-precision block kernels, winner
  // reconstruction stays double, and at a comfortable SNR the symbol
  // decisions match the fp64 tier on the overwhelming majority of
  // vectors (tests/kernel_test.cpp quantifies the SER gap properly).
  const double nv = ch::noise_var_for_snr_db(18.0);
  Constellation c(16);
  const Frame fr = make_frame(c, 8, 6, 6, 6, nv, 43);

  fa::PipelineConfig c64;
  c64.detector = "flexcore-16";
  c64.qam_order = 16;
  c64.threads = 2;
  fa::UplinkPipeline p64(c64);

  fa::PipelineConfig c32 = c64;
  c32.precision = flexcore::detect::Precision::kFloat32;
  fa::UplinkPipeline p32(c32);
  EXPECT_EQ(p32.detector().name(), "flexcore-16:fp32");

  const fa::FrameResult r64 = p64.detect_frame(job_of(fr, nv));
  const fa::FrameResult r32 = p32.detect_frame(job_of(fr, nv));
  ASSERT_EQ(r32.results.size(), r64.results.size());
  std::size_t disagreements = 0;
  for (std::size_t v = 0; v < r64.results.size(); ++v) {
    disagreements += r32.results[v].symbols != r64.results[v].symbols;
  }
  EXPECT_LE(disagreements, r64.results.size() / 10)
      << "fp32 tier diverged from fp64 on too many vectors";
}

}  // namespace
