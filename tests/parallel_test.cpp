// Tests for the fork-join thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sched.h>
#endif

#include "parallel/thread_pool.h"

namespace fp = flexcore::parallel;

TEST(ThreadPool, DefaultThreadCountPositive) {
  EXPECT_GE(fp::default_thread_count(), 1u);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  fp::ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    fp::ThreadPool pool(threads);
    const std::size_t n = 10007;  // prime, exercises ragged chunking
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ThreadPool, ZeroIterationsIsNoOp) {
  fp::ThreadPool pool(4);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  fp::ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(97, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50u * 97u);
}

TEST(ThreadPool, ExplicitChunkSizeHonoursAllIndices) {
  fp::ThreadPool pool(3);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(
      n, [&](std::size_t i) { hits[i].fetch_add(1); }, /*chunk=*/7);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, WorkerIndexInRangeAndExclusive) {
  // parallel_for_worker must hand every iteration a worker index in
  // [0, size()) and never run two concurrent iterations under the same
  // index — the contract per-worker workspaces rely on.
  for (std::size_t threads : {1u, 2u, 4u}) {
    fp::ThreadPool pool(threads);
    const std::size_t n = 5000;
    std::vector<std::atomic<int>> in_flight(threads);
    std::vector<std::atomic<int>> hits(n);
    std::atomic<bool> overlap{false};
    pool.parallel_for_worker(n, [&](std::size_t w, std::size_t i) {
      ASSERT_LT(w, threads);
      if (in_flight[w].fetch_add(1, std::memory_order_acq_rel) != 0) {
        overlap.store(true, std::memory_order_relaxed);
      }
      hits[i].fetch_add(1, std::memory_order_relaxed);
      in_flight[w].fetch_sub(1, std::memory_order_acq_rel);
    });
    EXPECT_FALSE(overlap.load()) << "threads=" << threads;
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, ChunkOverloadCoversRangeOncePerIndex) {
  for (std::size_t threads : {1u, 3u}) {
    fp::ThreadPool pool(threads);
    const std::size_t n = 1003;  // ragged vs chunk size
    std::vector<std::atomic<int>> hits(n);
    std::atomic<std::size_t> calls{0};
    pool.parallel_for_chunks(
        n,
        [&](std::size_t w, std::size_t begin, std::size_t end) {
          ASSERT_LT(w, threads);
          ASSERT_LE(begin, end);
          ASSERT_LE(end, n);
          calls.fetch_add(1, std::memory_order_relaxed);
          for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        },
        /*chunk=*/64);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
    if (threads > 1) {
      // One call per chunk, not per index.
      EXPECT_LE(calls.load(), (n + 63) / 64);
    }
  }
}

TEST(ThreadPool, ConcurrentJobsFromMultipleSubmitters) {
  // The multi-cell runtime shape: several external threads each submit
  // independent task grids to ONE pool.  Every job must see all its own
  // iterations exactly once, regardless of how workers interleave chunks
  // of different jobs.
  for (std::size_t threads : {1u, 2u, 4u}) {
    fp::ThreadPool pool(threads);
    constexpr std::size_t kSubmitters = 4;
    constexpr std::size_t kRounds = 25;
    const std::size_t n = 1237;  // prime, ragged chunks
    std::vector<std::atomic<std::size_t>> sums(kSubmitters);
    std::vector<std::thread> submitters;
    for (std::size_t s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&, s] {
        for (std::size_t round = 0; round < kRounds; ++round) {
          std::vector<std::atomic<int>> hits(n);
          pool.parallel_for(n, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          });
          // run_job returned: the grid must be complete, immediately.
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(hits[i].load(), 1)
                << "submitter " << s << " round " << round << " i " << i;
          }
          sums[s].fetch_add(n, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : submitters) t.join();
    for (std::size_t s = 0; s < kSubmitters; ++s) {
      EXPECT_EQ(sums[s].load(), kRounds * n) << "threads=" << threads;
    }
  }
}

TEST(ThreadPool, ConcurrentWorkerIndexExclusivePerJob) {
  // Worker indices are exclusive WITHIN one job even when jobs overlap:
  // two submitters may both be worker 0 of their own grids, but inside a
  // single job no index runs two iterations at once.
  fp::ThreadPool pool(3);
  constexpr std::size_t kSubmitters = 3;
  std::atomic<bool> overlap{false};
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        std::vector<std::atomic<int>> in_flight(pool.size());
        pool.parallel_for_worker(801, [&](std::size_t w, std::size_t) {
          ASSERT_LT(w, pool.size());
          if (in_flight[w].fetch_add(1, std::memory_order_acq_rel) != 0) {
            overlap.store(true, std::memory_order_relaxed);
          }
          in_flight[w].fetch_sub(1, std::memory_order_acq_rel);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_FALSE(overlap.load());
}

#ifdef __linux__
namespace {

/// CPUs this process is allowed to run on (pinning outside the allowed set
/// is rejected by the kernel, so the test must pick from here).
std::vector<int> allowed_cpus() {
  std::vector<int> cpus;
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof set, &set) != 0) return cpus;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &set)) cpus.push_back(c);
  }
  return cpus;
}

}  // namespace

TEST(ThreadPool, AffinityPinsSpawnedWorkersOnly) {
  const std::vector<int> cpus = allowed_cpus();
  ASSERT_FALSE(cpus.empty());
  const int target = cpus.front();

  fp::PoolOptions opts;
  opts.threads = 3;
  opts.pin_cpus = {target};
  fp::ThreadPool pool(opts);
  EXPECT_EQ(pool.size(), 3u);
  // Both spawned workers pinned (the caller / worker 0 never is).
  EXPECT_EQ(pool.pinned_workers(), 2u);

  // Every iteration that runs on a SPAWNED worker must be on the target
  // cpu; worker 0 (this thread) is wherever the scheduler left it.
  std::atomic<int> off_target{0};
  std::atomic<int> spawned_seen{0};
  // A round where worker 0 races through every chunk proves nothing; retry
  // until a spawned worker participated (virtually always round one).
  for (int round = 0; round < 50 && spawned_seen.load() == 0; ++round) {
    pool.parallel_for_worker(10000, [&](std::size_t w, std::size_t) {
      if (w == 0) return;
      spawned_seen.fetch_add(1, std::memory_order_relaxed);
      if (sched_getcpu() != target) {
        off_target.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  EXPECT_EQ(off_target.load(), 0);
  // On a single-cpu machine the submitting thread can legitimately starve
  // the pinned workers of chunks (everyone shares the one core), so only
  // demand participation when there is real parallelism to be had.
  if (cpus.size() > 1) {
    EXPECT_GT(spawned_seen.load(), 0) << "spawned workers never ran";
  }

  // The pool still covers every index under pinning.
  std::vector<std::atomic<int>> hits(1003);
  pool.parallel_for(1003, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, AffinityRoundRobinAcrossCpuList) {
  const std::vector<int> cpus = allowed_cpus();
  if (cpus.size() < 2) GTEST_SKIP() << "needs >= 2 allowed cpus";

  fp::PoolOptions opts;
  opts.threads = 5;  // spawned workers 1..4 over two cpus
  opts.pin_cpus = {cpus[0], cpus[1]};
  fp::ThreadPool pool(opts);
  EXPECT_EQ(pool.pinned_workers(), 4u);

  // An out-of-range id is best-effort-skipped, not fatal.
  fp::PoolOptions bad;
  bad.threads = 2;
  bad.pin_cpus = {CPU_SETSIZE + 7};
  fp::ThreadPool tolerant(bad);
  EXPECT_EQ(tolerant.pinned_workers(), 0u);
  std::atomic<int> ran{0};
  tolerant.parallel_for(64, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, PinCurrentThreadRoundTrips) {
  const std::vector<int> cpus = allowed_cpus();
  ASSERT_FALSE(cpus.empty());
  std::atomic<bool> ok{false};
  // Pin a scratch thread, not the test runner's.
  std::thread t([&] {
    if (!fp::pin_current_thread(cpus.back())) return;
    ok.store(sched_getcpu() == cpus.back());
  });
  t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_FALSE(fp::pin_current_thread(-1)) << "invalid ids report failure";
}
#endif  // __linux__

TEST(ThreadPool, NoPinningByDefault) {
  // The plain constructor and empty pin_cpus never pin anything.
  fp::ThreadPool plain(4);
  EXPECT_EQ(plain.pinned_workers(), 0u);
  fp::PoolOptions opts;
  opts.threads = 4;
  fp::ThreadPool unpinned(opts);
  EXPECT_EQ(unpinned.pinned_workers(), 0u);
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  fp::ThreadPool pool(4);
  const std::size_t n = 100000;
  std::vector<double> data(n);
  std::iota(data.begin(), data.end(), 0.0);
  std::atomic<long long> sum{0};
  pool.parallel_for(n, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(data[i]), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}
