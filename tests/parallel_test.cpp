// Tests for the fork-join thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "parallel/thread_pool.h"

namespace fp = flexcore::parallel;

TEST(ThreadPool, DefaultThreadCountPositive) {
  EXPECT_GE(fp::default_thread_count(), 1u);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  fp::ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    fp::ThreadPool pool(threads);
    const std::size_t n = 10007;  // prime, exercises ragged chunking
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ThreadPool, ZeroIterationsIsNoOp) {
  fp::ThreadPool pool(4);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  fp::ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(97, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50u * 97u);
}

TEST(ThreadPool, ExplicitChunkSizeHonoursAllIndices) {
  fp::ThreadPool pool(3);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(
      n, [&](std::size_t i) { hits[i].fetch_add(1); }, /*chunk=*/7);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, WorkerIndexInRangeAndExclusive) {
  // parallel_for_worker must hand every iteration a worker index in
  // [0, size()) and never run two concurrent iterations under the same
  // index — the contract per-worker workspaces rely on.
  for (std::size_t threads : {1u, 2u, 4u}) {
    fp::ThreadPool pool(threads);
    const std::size_t n = 5000;
    std::vector<std::atomic<int>> in_flight(threads);
    std::vector<std::atomic<int>> hits(n);
    std::atomic<bool> overlap{false};
    pool.parallel_for_worker(n, [&](std::size_t w, std::size_t i) {
      ASSERT_LT(w, threads);
      if (in_flight[w].fetch_add(1, std::memory_order_acq_rel) != 0) {
        overlap.store(true, std::memory_order_relaxed);
      }
      hits[i].fetch_add(1, std::memory_order_relaxed);
      in_flight[w].fetch_sub(1, std::memory_order_acq_rel);
    });
    EXPECT_FALSE(overlap.load()) << "threads=" << threads;
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, ChunkOverloadCoversRangeOncePerIndex) {
  for (std::size_t threads : {1u, 3u}) {
    fp::ThreadPool pool(threads);
    const std::size_t n = 1003;  // ragged vs chunk size
    std::vector<std::atomic<int>> hits(n);
    std::atomic<std::size_t> calls{0};
    pool.parallel_for_chunks(
        n,
        [&](std::size_t w, std::size_t begin, std::size_t end) {
          ASSERT_LT(w, threads);
          ASSERT_LE(begin, end);
          ASSERT_LE(end, n);
          calls.fetch_add(1, std::memory_order_relaxed);
          for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        },
        /*chunk=*/64);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
    if (threads > 1) {
      // One call per chunk, not per index.
      EXPECT_LE(calls.load(), (n + 63) / 64);
    }
  }
}

TEST(ThreadPool, ConcurrentJobsFromMultipleSubmitters) {
  // The multi-cell runtime shape: several external threads each submit
  // independent task grids to ONE pool.  Every job must see all its own
  // iterations exactly once, regardless of how workers interleave chunks
  // of different jobs.
  for (std::size_t threads : {1u, 2u, 4u}) {
    fp::ThreadPool pool(threads);
    constexpr std::size_t kSubmitters = 4;
    constexpr std::size_t kRounds = 25;
    const std::size_t n = 1237;  // prime, ragged chunks
    std::vector<std::atomic<std::size_t>> sums(kSubmitters);
    std::vector<std::thread> submitters;
    for (std::size_t s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&, s] {
        for (std::size_t round = 0; round < kRounds; ++round) {
          std::vector<std::atomic<int>> hits(n);
          pool.parallel_for(n, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          });
          // run_job returned: the grid must be complete, immediately.
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(hits[i].load(), 1)
                << "submitter " << s << " round " << round << " i " << i;
          }
          sums[s].fetch_add(n, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : submitters) t.join();
    for (std::size_t s = 0; s < kSubmitters; ++s) {
      EXPECT_EQ(sums[s].load(), kRounds * n) << "threads=" << threads;
    }
  }
}

TEST(ThreadPool, ConcurrentWorkerIndexExclusivePerJob) {
  // Worker indices are exclusive WITHIN one job even when jobs overlap:
  // two submitters may both be worker 0 of their own grids, but inside a
  // single job no index runs two iterations at once.
  fp::ThreadPool pool(3);
  constexpr std::size_t kSubmitters = 3;
  std::atomic<bool> overlap{false};
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        std::vector<std::atomic<int>> in_flight(pool.size());
        pool.parallel_for_worker(801, [&](std::size_t w, std::size_t) {
          ASSERT_LT(w, pool.size());
          if (in_flight[w].fetch_add(1, std::memory_order_acq_rel) != 0) {
            overlap.store(true, std::memory_order_relaxed);
          }
          in_flight[w].fetch_sub(1, std::memory_order_acq_rel);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_FALSE(overlap.load());
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  fp::ThreadPool pool(4);
  const std::size_t n = 100000;
  std::vector<double> data(n);
  std::iota(data.begin(), data.end(), 0.0);
  std::atomic<long long> sum{0};
  pool.parallel_for(n, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(data[i]), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}
