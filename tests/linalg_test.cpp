// Unit and property tests for the linalg substrate.
#include <gtest/gtest.h>

#include <random>

#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "linalg/solve.h"
#include "linalg/svd.h"

namespace fl = flexcore::linalg;
using fl::cplx;
using fl::CMat;
using fl::CVec;

namespace {

CMat random_matrix(std::size_t rows, std::size_t cols, std::mt19937_64& gen) {
  std::normal_distribution<double> n;
  CMat m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = cplx{n(gen), n(gen)};
  return m;
}

CVec random_vector(std::size_t n, std::mt19937_64& gen) {
  std::normal_distribution<double> d;
  CVec v(n);
  for (auto& z : v) z = cplx{d(gen), d(gen)};
  return v;
}

void expect_orthonormal(const CMat& q, double tol = 1e-9) {
  const CMat g = q.hermitian() * q;
  EXPECT_LT(CMat::max_abs_diff(g, CMat::identity(q.cols())), tol)
      << "Q^H Q != I";
}

void expect_upper_triangular(const CMat& r, double tol = 1e-10) {
  for (std::size_t i = 0; i < r.rows(); ++i)
    for (std::size_t j = 0; j < i && j < r.cols(); ++j)
      EXPECT_LT(std::abs(r(i, j)), tol) << "R(" << i << "," << j << ") nonzero";
}

CMat permuted(const CMat& h, const std::vector<std::size_t>& perm) {
  CMat hp(h.rows(), h.cols());
  for (std::size_t j = 0; j < h.cols(); ++j) hp.set_col(j, h.col(perm[j]));
  return hp;
}

}  // namespace

TEST(Matrix, InitializerListAndIndexing) {
  CMat m{{cplx{1, 0}, cplx{2, 0}}, {cplx{3, 0}, cplx{4, 5}}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(1, 1), (cplx{4, 5}));
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((CMat{{cplx{1, 0}}, {cplx{1, 0}, cplx{2, 0}}}),
               std::invalid_argument);
}

TEST(Matrix, IdentityMultiplication) {
  std::mt19937_64 gen(1);
  const CMat a = random_matrix(4, 4, gen);
  const CMat i = CMat::identity(4);
  EXPECT_LT(CMat::max_abs_diff(a * i, a), 1e-12);
  EXPECT_LT(CMat::max_abs_diff(i * a, a), 1e-12);
}

TEST(Matrix, HermitianTwiceIsIdentityOp) {
  std::mt19937_64 gen(2);
  const CMat a = random_matrix(3, 5, gen);
  EXPECT_LT(CMat::max_abs_diff(a.hermitian().hermitian(), a), 1e-15);
}

TEST(Matrix, MatVecMatchesMatMat) {
  std::mt19937_64 gen(3);
  const CMat a = random_matrix(4, 3, gen);
  const CVec v = random_vector(3, gen);
  CMat vm(3, 1);
  for (std::size_t i = 0; i < 3; ++i) vm(i, 0) = v[i];
  const CMat prod = a * vm;
  const CVec pv = a * v;
  for (std::size_t i = 0; i < 4; ++i) EXPECT_LT(std::abs(prod(i, 0) - pv[i]), 1e-12);
}

TEST(Matrix, SwapColsIsInvolution) {
  std::mt19937_64 gen(4);
  CMat a = random_matrix(4, 4, gen);
  const CMat orig = a;
  a.swap_cols(1, 3);
  a.swap_cols(1, 3);
  EXPECT_LT(CMat::max_abs_diff(a, orig), 0.0 + 1e-15);
}

TEST(Matrix, FrobeniusNormOfIdentity) {
  EXPECT_NEAR(CMat::identity(9).frobenius_norm(), 3.0, 1e-12);
}

// ---------------------------------------------------------------- QR family

class QrReconstruction : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrReconstruction, MgsFactorsAreValid) {
  auto [nr, nt] = GetParam();
  std::mt19937_64 gen(42u + static_cast<unsigned>(nr * 100 + nt));
  const CMat h = random_matrix(static_cast<std::size_t>(nr),
                               static_cast<std::size_t>(nt), gen);
  const fl::QrResult qr = fl::qr_mgs(h);
  expect_orthonormal(qr.Q);
  expect_upper_triangular(qr.R);
  EXPECT_LT(CMat::max_abs_diff(qr.Q * qr.R, h), 1e-9);
}

TEST_P(QrReconstruction, HouseholderFactorsAreValid) {
  auto [nr, nt] = GetParam();
  std::mt19937_64 gen(77u + static_cast<unsigned>(nr * 100 + nt));
  const CMat h = random_matrix(static_cast<std::size_t>(nr),
                               static_cast<std::size_t>(nt), gen);
  const fl::QrResult qr = fl::qr_householder(h);
  expect_orthonormal(qr.Q);
  expect_upper_triangular(qr.R);
  EXPECT_LT(CMat::max_abs_diff(qr.Q * qr.R, h), 1e-9);
}

TEST_P(QrReconstruction, MgsAndHouseholderAgreeOnR) {
  auto [nr, nt] = GetParam();
  std::mt19937_64 gen(99u + static_cast<unsigned>(nr * 100 + nt));
  const CMat h = random_matrix(static_cast<std::size_t>(nr),
                               static_cast<std::size_t>(nt), gen);
  // Both conventions force real positive diagonals, so R is unique.
  const CMat r1 = fl::qr_mgs(h).R;
  const CMat r2 = fl::qr_householder(h).R;
  EXPECT_LT(CMat::max_abs_diff(r1, r2), 1e-8);
}

TEST_P(QrReconstruction, SortedQrReconstructsPermuted) {
  auto [nr, nt] = GetParam();
  std::mt19937_64 gen(7u + static_cast<unsigned>(nr * 100 + nt));
  const CMat h = random_matrix(static_cast<std::size_t>(nr),
                               static_cast<std::size_t>(nt), gen);
  const fl::QrResult qr = fl::sorted_qr_wubben(h);
  expect_orthonormal(qr.Q);
  expect_upper_triangular(qr.R);
  EXPECT_LT(CMat::max_abs_diff(qr.Q * qr.R, permuted(h, qr.perm)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrReconstruction,
                         ::testing::Values(std::pair{2, 2}, std::pair{4, 4},
                                           std::pair{8, 8}, std::pair{12, 12},
                                           std::pair{16, 12}, std::pair{12, 8},
                                           std::pair{16, 16}));

TEST(Qr, DiagonalIsRealPositive) {
  std::mt19937_64 gen(11);
  const CMat h = random_matrix(8, 8, gen);
  for (const auto& qr : {fl::qr_mgs(h), fl::qr_householder(h),
                         fl::sorted_qr_wubben(h)}) {
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_GT(qr.R(i, i).real(), 0.0);
      EXPECT_NEAR(qr.R(i, i).imag(), 0.0, 1e-10);
    }
  }
}

TEST(Qr, RankDeficientThrows) {
  CMat h(3, 2);
  h(0, 0) = h(1, 0) = h(2, 0) = cplx{1.0, 0.0};
  h.set_col(1, h.col(0));  // duplicate column
  EXPECT_THROW(fl::qr_mgs(h), std::runtime_error);
  EXPECT_THROW(fl::qr_householder(h), std::runtime_error);
}

TEST(Qr, WideMatrixThrows) {
  std::mt19937_64 gen(12);
  const CMat h = random_matrix(2, 4, gen);
  EXPECT_THROW(fl::qr_mgs(h), std::runtime_error);
}

TEST(SortedQr, PermIsAPermutation) {
  std::mt19937_64 gen(13);
  const CMat h = random_matrix(12, 12, gen);
  const fl::QrResult qr = fl::sorted_qr_wubben(h);
  std::vector<bool> seen(12, false);
  for (std::size_t p : qr.perm) {
    ASSERT_LT(p, 12u);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(SortedQr, UnpermuteRoundTrips) {
  const std::vector<std::size_t> perm{2, 0, 1};
  const std::vector<int> detected{10, 20, 30};
  const std::vector<int> orig = fl::unpermute(detected, perm);
  // detected[i] belongs to original antenna perm[i].
  EXPECT_EQ(orig[2], 10);
  EXPECT_EQ(orig[0], 20);
  EXPECT_EQ(orig[1], 30);
}

TEST(FcsdQr, FullLevelsHaveWorstNoiseAmplification) {
  // The stream with the largest ZF noise amplification must be assigned to
  // the topmost (first-detected, fully-expanded) level.
  std::mt19937_64 gen(14);
  for (int trial = 0; trial < 20; ++trial) {
    const CMat h = random_matrix(6, 6, gen);
    const fl::QrResult qr = fl::fcsd_sorted_qr(h, 1);
    expect_orthonormal(qr.Q);
    EXPECT_LT(CMat::max_abs_diff(qr.Q * qr.R, permuted(h, qr.perm)), 1e-9);

    const CMat ginv = fl::inverse(h.hermitian() * h);
    std::size_t worst = 0;
    for (std::size_t j = 1; j < 6; ++j) {
      if (ginv(j, j).real() > ginv(worst, worst).real()) worst = j;
    }
    EXPECT_EQ(qr.perm.back(), worst);
  }
}

TEST(FcsdQr, FullLevelsGreaterThanNtThrows) {
  std::mt19937_64 gen(15);
  const CMat h = random_matrix(4, 4, gen);
  EXPECT_THROW(fl::fcsd_sorted_qr(h, 5), std::invalid_argument);
}

TEST(SolveUpper, BackSubstitution) {
  std::mt19937_64 gen(16);
  const CMat h = random_matrix(6, 6, gen);
  const fl::QrResult qr = fl::qr_mgs(h);
  const CVec x = random_vector(6, gen);
  const CVec y = qr.R * x;
  const CVec got = fl::solve_upper(qr.R, y);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_LT(std::abs(got[i] - x[i]), 1e-9);
}

// ---------------------------------------------------------------- solvers

TEST(Inverse, TimesOriginalIsIdentity) {
  std::mt19937_64 gen(21);
  for (std::size_t n : {1u, 2u, 5u, 12u}) {
    const CMat a = random_matrix(n, n, gen);
    const CMat inv = fl::inverse(a);
    EXPECT_LT(CMat::max_abs_diff(a * inv, CMat::identity(n)), 1e-8) << "n=" << n;
    EXPECT_LT(CMat::max_abs_diff(inv * a, CMat::identity(n)), 1e-8) << "n=" << n;
  }
}

TEST(Inverse, SingularThrows) {
  CMat a(2, 2);
  a(0, 0) = a(0, 1) = a(1, 0) = a(1, 1) = cplx{1.0, 0.0};
  EXPECT_THROW(fl::inverse(a), std::runtime_error);
}

TEST(Solve, MatchesInverse) {
  std::mt19937_64 gen(22);
  const CMat a = random_matrix(7, 7, gen);
  const CVec b = random_vector(7, gen);
  const CVec x1 = fl::solve(a, b);
  const CVec x2 = fl::inverse(a) * b;
  for (std::size_t i = 0; i < 7; ++i) EXPECT_LT(std::abs(x1[i] - x2[i]), 1e-8);
}

TEST(Cholesky, ReconstructsHermitianPd) {
  std::mt19937_64 gen(23);
  const CMat a = random_matrix(6, 6, gen);
  const CMat g = a.hermitian() * a;  // Hermitian PD w.p. 1
  const CMat l = fl::cholesky(g);
  EXPECT_LT(CMat::max_abs_diff(l * l.hermitian(), g), 1e-9);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_GT(l(i, i).real(), 0.0);
    for (std::size_t j = i + 1; j < 6; ++j) EXPECT_EQ(l(i, j), (cplx{0, 0}));
  }
}

TEST(Cholesky, IndefiniteThrows) {
  CMat a = CMat::identity(2);
  a(1, 1) = cplx{-1.0, 0.0};
  EXPECT_THROW(fl::cholesky(a), std::runtime_error);
}

TEST(Filters, ZfInvertsChannel) {
  std::mt19937_64 gen(24);
  const CMat h = random_matrix(8, 6, gen);
  const CMat w = fl::zf_filter(h);
  EXPECT_LT(CMat::max_abs_diff(w * h, CMat::identity(6)), 1e-8);
}

TEST(Filters, MmseApproachesZfAsNoiseVanishes) {
  std::mt19937_64 gen(25);
  const CMat h = random_matrix(8, 6, gen);
  const CMat zf = fl::zf_filter(h);
  const CMat mmse = fl::mmse_filter(h, 1e-12);
  EXPECT_LT(CMat::max_abs_diff(zf, mmse), 1e-6);
}

TEST(Filters, MmseShrinksTowardZeroAtHighNoise) {
  std::mt19937_64 gen(26);
  const CMat h = random_matrix(6, 6, gen);
  const CMat w = fl::mmse_filter(h, 1e9);
  EXPECT_LT(w.frobenius_norm(), 1e-6);
}

// ---------------------------------------------------------------- SVD

TEST(Svd, SingularValuesOfIdentity) {
  const fl::RVec sv = fl::singular_values(CMat::identity(5));
  for (double s : sv) EXPECT_NEAR(s, 1.0, 1e-10);
}

TEST(Svd, MatchesGramEigenvalues) {
  std::mt19937_64 gen(31);
  const CMat a = random_matrix(6, 4, gen);
  const fl::RVec sv = fl::singular_values(a);
  // sum sigma_i^2 == ||A||_F^2
  double sum2 = 0.0;
  for (double s : sv) sum2 += s * s;
  EXPECT_NEAR(sum2, a.frobenius_norm() * a.frobenius_norm(), 1e-8);
  // descending order
  for (std::size_t i = 1; i < sv.size(); ++i) EXPECT_GE(sv[i - 1], sv[i]);
}

TEST(Svd, DiagonalMatrixSingularValues) {
  CMat d(3, 3);
  d(0, 0) = cplx{3.0, 0.0};
  d(1, 1) = cplx{0.0, -2.0};  // magnitude 2
  d(2, 2) = cplx{1.0, 0.0};
  const fl::RVec sv = fl::singular_values(d);
  EXPECT_NEAR(sv[0], 3.0, 1e-10);
  EXPECT_NEAR(sv[1], 2.0, 1e-10);
  EXPECT_NEAR(sv[2], 1.0, 1e-10);
}

TEST(Svd, ConditionNumberScalesWithIllConditioning) {
  CMat d = CMat::identity(4);
  d(3, 3) = cplx{1e-3, 0.0};
  EXPECT_NEAR(fl::condition_number(d), 1e3, 1e-3);
  EXPECT_NEAR(fl::condition_number(CMat::identity(4)), 1.0, 1e-10);
}

TEST(Svd, ProductWithUnitaryPreservesSingularValues) {
  std::mt19937_64 gen(32);
  const CMat a = random_matrix(5, 5, gen);
  const fl::QrResult qr = fl::qr_mgs(random_matrix(5, 5, gen));
  const fl::RVec s1 = fl::singular_values(a);
  const fl::RVec s2 = fl::singular_values(qr.Q * a);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(s1[i], s2[i], 1e-8);
}

// Property: the Wübben ordering's first pivot is the minimum column norm —
// R(0,0) of SQRD can never exceed R(0,0) of any column order, in particular
// the natural one.
TEST(SortedQr, FirstPivotIsMinimumColumnNorm) {
  std::mt19937_64 gen(33);
  for (int t = 0; t < 30; ++t) {
    const CMat h = random_matrix(8, 8, gen);
    const CMat r_plain = fl::qr_mgs(h).R;
    const CMat r_sorted = fl::sorted_qr_wubben(h).R;
    EXPECT_LE(std::abs(r_sorted(0, 0)), std::abs(r_plain(0, 0)) + 1e-9);
    double min_norm = std::abs(r_sorted(0, 0));
    for (std::size_t c = 0; c < 8; ++c) {
      min_norm = std::min(min_norm, std::sqrt(fl::norm2(h.col(c))));
    }
    EXPECT_NEAR(std::abs(r_sorted(0, 0)), min_norm, 1e-9);
  }
}
