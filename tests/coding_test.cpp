// Tests for the 802.11 convolutional code, Viterbi decoders & interleaver.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "coding/convolutional.h"
#include "coding/interleaver.h"

namespace fc = flexcore::coding;
using fc::BitVec;

namespace {
BitVec random_bits(std::size_t n, std::mt19937_64& gen) {
  BitVec b(n);
  for (auto& x : b) x = static_cast<std::uint8_t>(gen() & 1);
  return b;
}
}  // namespace

TEST(ConvEncode, OutputLengthIsRateHalfPlusTail) {
  std::mt19937_64 gen(1);
  for (std::size_t n : {1u, 7u, 100u, 1000u}) {
    const BitVec coded = fc::conv_encode(random_bits(n, gen));
    EXPECT_EQ(coded.size(), 2 * (n + 6));
  }
}

TEST(ConvEncode, AllZeroInputGivesAllZeroOutput) {
  const BitVec coded = fc::conv_encode(BitVec(64, 0));
  EXPECT_TRUE(std::all_of(coded.begin(), coded.end(),
                          [](std::uint8_t b) { return b == 0; }));
}

TEST(ConvEncode, KnownImpulseResponse) {
  // A single 1 followed by zeros reads out the generator taps 133/171.
  BitVec info(7, 0);
  info[0] = 1;
  const BitVec coded = fc::conv_encode(info);
  // First output pair: both generators see only the new bit -> (1, 1).
  EXPECT_EQ(coded[0], 1);
  EXPECT_EQ(coded[1], 1);
  // Octal 133 = 1011011b, 171 = 1111001b.  Our register convention keeps the
  // newest bit in the MSB, so the impulse response reads each generator
  // MSB-first.
  BitVec g0, g1;
  for (std::size_t step = 0; step < 7; ++step) {
    g0.push_back(coded[2 * step]);
    g1.push_back(coded[2 * step + 1]);
  }
  const BitVec expect_g0{1, 0, 1, 1, 0, 1, 1};  // 133 octal, MSB-first
  const BitVec expect_g1{1, 1, 1, 1, 0, 0, 1};  // 171 octal, MSB-first
  EXPECT_EQ(g0, expect_g0);
  EXPECT_EQ(g1, expect_g1);
}

TEST(Viterbi, DecodesCleanStream) {
  std::mt19937_64 gen(2);
  for (std::size_t n : {1u, 10u, 333u, 2048u}) {
    const BitVec info = random_bits(n, gen);
    EXPECT_EQ(fc::viterbi_decode(fc::conv_encode(info)), info) << "n=" << n;
  }
}

TEST(Viterbi, CorrectsIsolatedBitErrors) {
  std::mt19937_64 gen(3);
  const BitVec info = random_bits(200, gen);
  BitVec coded = fc::conv_encode(info);
  // Flip well-separated bits (free distance 10 at rate 1/2 tolerates
  // isolated errors easily).
  for (std::size_t pos = 5; pos < coded.size(); pos += 50) coded[pos] ^= 1;
  EXPECT_EQ(fc::viterbi_decode(coded), info);
}

TEST(Viterbi, CorrectsBurstsUpToCapability) {
  std::mt19937_64 gen(4);
  const BitVec info = random_bits(400, gen);
  BitVec coded = fc::conv_encode(info);
  // d_free = 10: up to 4 errors within one constraint span are correctable.
  coded[100] ^= 1;
  coded[103] ^= 1;
  coded[301] ^= 1;
  coded[306] ^= 1;
  EXPECT_EQ(fc::viterbi_decode(coded), info);
}

TEST(Viterbi, FailsGracefullyUnderHeavyCorruption) {
  std::mt19937_64 gen(5);
  const BitVec info = random_bits(100, gen);
  BitVec coded = fc::conv_encode(info);
  for (auto& b : coded) b ^= static_cast<std::uint8_t>(gen() & 1);
  const BitVec decoded = fc::viterbi_decode(coded);
  EXPECT_EQ(decoded.size(), info.size());  // still shape-correct
}

TEST(Viterbi, OddLengthThrows) {
  EXPECT_THROW(fc::viterbi_decode(BitVec(3, 0)), std::invalid_argument);
  EXPECT_THROW(fc::viterbi_decode_soft(std::vector<double>(5, 0.0)),
               std::invalid_argument);
}

TEST(ViterbiSoft, MatchesHardOnSaturatedLlrs) {
  std::mt19937_64 gen(6);
  const BitVec info = random_bits(256, gen);
  const BitVec coded = fc::conv_encode(info);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? -10.0 : 10.0;  // positive = bit 0
  }
  EXPECT_EQ(fc::viterbi_decode_soft(llrs), info);
}

TEST(ViterbiSoft, ExploitsReliabilityToBeatHard) {
  // Construct a case where hard decisions are wrong but low-confidence:
  // soft decoding must recover while hard decoding (on sliced bits) fails.
  std::mt19937_64 gen(7);
  std::normal_distribution<double> noise(0.0, 1.0);
  int soft_wins = 0, trials = 60;
  for (int t = 0; t < trials; ++t) {
    const BitVec info = random_bits(120, gen);
    const BitVec coded = fc::conv_encode(info);
    std::vector<double> llrs(coded.size());
    BitVec hard(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) {
      const double tx = coded[i] ? -1.0 : 1.0;  // BPSK, + = bit 0
      const double rx = tx + 1.1 * noise(gen);
      llrs[i] = 2.0 * rx;
      hard[i] = rx < 0 ? 1 : 0;
    }
    const bool soft_ok = fc::viterbi_decode_soft(llrs) == info;
    const bool hard_ok = fc::viterbi_decode(hard) == info;
    soft_wins += (soft_ok && !hard_ok) ? 1 : 0;
    // Soft should never lose where hard wins (same channel realization).
    EXPECT_FALSE(hard_ok && !soft_ok) << "soft decoder lost to hard";
  }
  EXPECT_GT(soft_wins, 0) << "expected soft decoding to win somewhere";
}

// -------------------------------------------------------------- interleaver

class InterleaverTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(InterleaverTest, PermutationIsBijective) {
  auto [ncbps, nbpsc] = GetParam();
  fc::Interleaver ilv(ncbps, nbpsc);
  std::vector<bool> seen(ncbps, false);
  for (std::size_t idx : ilv.permutation()) {
    ASSERT_LT(idx, ncbps);
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST_P(InterleaverTest, DeinterleaveInverts) {
  auto [ncbps, nbpsc] = GetParam();
  fc::Interleaver ilv(ncbps, nbpsc);
  std::mt19937_64 gen(8);
  const BitVec in = random_bits(ncbps, gen);
  EXPECT_EQ(ilv.deinterleave(ilv.interleave(in)), in);
}

TEST_P(InterleaverTest, StreamRoundTrip) {
  auto [ncbps, nbpsc] = GetParam();
  fc::Interleaver ilv(ncbps, nbpsc);
  std::mt19937_64 gen(9);
  const BitVec in = random_bits(4 * ncbps, gen);
  EXPECT_EQ(ilv.deinterleave_stream(ilv.interleave_stream(in)), in);
}

TEST_P(InterleaverTest, SpreadsAdjacentBits) {
  auto [ncbps, nbpsc] = GetParam();
  fc::Interleaver ilv(ncbps, nbpsc);
  // 802.11 goal: adjacent coded bits land on non-adjacent subcarriers.
  const auto& perm = ilv.permutation();
  const std::size_t sub0 = perm[0] / nbpsc;
  const std::size_t sub1 = perm[1] / nbpsc;
  EXPECT_GT(std::max(sub0, sub1) - std::min(sub0, sub1), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, InterleaverTest,
                         ::testing::Values(std::pair{96u, 2u},    // QPSK
                                           std::pair{192u, 4u},   // 16-QAM
                                           std::pair{288u, 6u})); // 64-QAM

TEST(Interleaver, RejectsBadBlockSizes) {
  EXPECT_THROW(fc::Interleaver(100, 4), std::invalid_argument);  // not /16
  EXPECT_THROW(fc::Interleaver(96, 5), std::invalid_argument);   // not /nbpsc
  EXPECT_THROW(fc::Interleaver(0, 1), std::invalid_argument);
}

TEST(Interleaver, SoftStreamUsesSamePermutation) {
  fc::Interleaver ilv(96, 2);
  std::mt19937_64 gen(10);
  const BitVec bits = random_bits(96, gen);
  const BitVec il = ilv.interleave(bits);
  std::vector<double> soft(il.size());
  for (std::size_t i = 0; i < il.size(); ++i) soft[i] = il[i] ? -1.0 : 1.0;
  const std::vector<double> de = ilv.deinterleave_stream(soft);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(de[i] < 0, bits[i] == 1);
  }
}
