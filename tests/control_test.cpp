// Tests for the adaptive control plane: control::PathPolicy (fig14 model
// inversion), control::FeedbackLoop (convergence, hysteresis, error
// integral action, load degrade/restore, determinism) and the FIFO-safe
// Runtime::reconfigure path, plus the scenario driver feeding them.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "api/cell.h"
#include "api/runtime.h"
#include "api/uplink_pipeline.h"
#include "channel/channel.h"
#include "channel/estimation.h"
#include "channel/rng.h"
#include "control/feedback.h"
#include "control/path_policy.h"
#include "frame_fixtures.h"
#include "sim/scenario.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace ctl = flexcore::control;
namespace fs = flexcore::sim;
using flexcore::modulation::Constellation;
using flexcore::testing::expect_bit_identical;
using flexcore::testing::Frame;
using flexcore::testing::job_of;
using flexcore::testing::make_frame;

namespace {

/// Synchronous single-threaded reference for bit-identity checks.
std::vector<flexcore::detect::DetectionResult> sync_reference(
    const std::string& spec, int qam, const Frame& fr, double noise_var) {
  fa::PipelineConfig cfg;
  cfg.detector = spec;
  cfg.qam_order = qam;
  cfg.threads = 1;
  fa::UplinkPipeline pipe(cfg);
  return pipe.detect_frame(job_of(fr, noise_var)).results;
}

ctl::Observation snr_obs(double snr_db) {
  ctl::Observation obs;
  obs.snr_db_estimate = snr_db;
  return obs;
}

ctl::Observation load_obs(double snr_db, std::size_t depth,
                          std::size_t capacity) {
  ctl::Observation obs = snr_obs(snr_db);
  obs.queue_depth = depth;
  obs.queue_capacity = capacity;
  return obs;
}

}  // namespace

// ------------------------------------------------------------- path policy

TEST(PathPolicy, SolvesMinimalCountMeetingTarget) {
  Constellation qam(16);
  ctl::PathPolicyConfig cfg;
  cfg.target_error = 1e-2;
  cfg.max_paths = 256;
  const ctl::PathDecision d = ctl::solve_path_count(qam, 4, 10.0, cfg);
  ASSERT_TRUE(d.feasible);
  EXPECT_GE(d.coverage, 1.0 - cfg.target_error);
  // Minimality: the solved count meets the target, one path fewer misses.
  EXPECT_GE(ctl::model_coverage(qam, 4, 10.0, d.paths),
            1.0 - cfg.target_error);
  ASSERT_GT(d.paths, 1u);
  EXPECT_LT(ctl::model_coverage(qam, 4, 10.0, d.paths - 1),
            1.0 - cfg.target_error);
}

TEST(PathPolicy, MonotoneInSnrAndTarget) {
  Constellation qam(16);
  ctl::PathPolicyConfig cfg;
  cfg.target_error = 1e-2;
  cfg.max_paths = 1024;
  const std::size_t at5 = ctl::solve_path_count(qam, 4, 5.0, cfg).paths;
  const std::size_t at10 = ctl::solve_path_count(qam, 4, 10.0, cfg).paths;
  const std::size_t at20 = ctl::solve_path_count(qam, 4, 20.0, cfg).paths;
  EXPECT_GE(at5, at10);
  EXPECT_GE(at10, at20);
  EXPECT_GT(at5, at20);  // strictly cheaper somewhere across 15 dB
  // A tighter target can only cost paths.
  ctl::PathPolicyConfig tight = cfg;
  tight.target_error = 1e-3;
  EXPECT_GE(ctl::solve_path_count(qam, 4, 10.0, tight).paths, at10);
}

TEST(PathPolicy, ClampsAndInfeasibilityAreExplicit) {
  Constellation qam(64);
  ctl::PathPolicyConfig cfg;
  cfg.target_error = 1e-3;
  cfg.max_paths = 8;  // far too small for 64-QAM at 0 dB
  const ctl::PathDecision d = ctl::solve_path_count(qam, 8, 0.0, cfg);
  EXPECT_FALSE(d.feasible);
  EXPECT_EQ(d.paths, cfg.max_paths);
  EXPECT_LT(d.coverage, 1.0 - cfg.target_error);

  cfg.min_paths = 4;
  cfg.max_paths = 256;
  cfg.target_error = 0.5;  // trivially met by the root path at high SNR
  const ctl::PathDecision e = ctl::solve_path_count(qam, 8, 30.0, cfg);
  EXPECT_TRUE(e.feasible);
  EXPECT_EQ(e.paths, cfg.min_paths);  // clamped up from 1

  EXPECT_THROW(ctl::solve_path_count(qam, 0, 10.0, cfg),
               std::invalid_argument);
}

TEST(PathPolicy, SnrBackoffCostsPaths) {
  Constellation qam(16);
  ctl::PathPolicyConfig cfg;
  cfg.target_error = 1e-2;
  cfg.max_paths = 1024;
  ctl::PathPolicyConfig margin = cfg;
  margin.snr_backoff_db = 3.0;
  EXPECT_GT(ctl::solve_path_count(qam, 4, 10.0, margin).paths,
            ctl::solve_path_count(qam, 4, 10.0, cfg).paths);
}

TEST(PathPolicy, PathSpecFamilies) {
  Constellation qam(16);
  EXPECT_EQ(ctl::path_spec("flexcore", qam, 24), "flexcore-24");
  EXPECT_EQ(ctl::path_spec("a-flexcore", qam, 8), "a-flexcore-8");
  EXPECT_EQ(ctl::path_spec("fcsd", qam, 10), "fcsd-L1");   // 16 >= 10
  EXPECT_EQ(ctl::path_spec("fcsd", qam, 17), "fcsd-L2");   // needs 256
  EXPECT_EQ(ctl::path_spec("fcsd", qam, 10000), "fcsd-L2");  // capped
  EXPECT_THROW(ctl::path_spec("kbest", qam, 8), std::invalid_argument);
  EXPECT_THROW(ctl::path_spec("flexcore", qam, 0), std::invalid_argument);
}

// ------------------------------------------------------------ feedback loop

TEST(FeedbackLoop, ConvergesAtFixedSnr) {
  Constellation qam(16);
  ctl::ControlConfig cfg;
  cfg.policy.max_paths = 64;
  ctl::FeedbackLoop loop(qam, 4, cfg);
  std::size_t emitted = 0;
  for (int i = 0; i < 100; ++i) {
    emitted += loop.observe(snr_obs(12.0)).has_value();
  }
  // Exactly the initial decision, then steady state.
  EXPECT_EQ(emitted, 1u);
  ASSERT_TRUE(loop.current().has_value());
  EXPECT_EQ(loop.current()->reason, std::string("init"));
  const std::size_t solved =
      ctl::solve_path_count(qam, 4, 12.0, cfg.policy).paths;
  EXPECT_EQ(loop.current()->detector,
            "flexcore-" + std::to_string(solved));
}

TEST(FeedbackLoop, HysteresisStopsThrash) {
  Constellation qam(16);
  ctl::ControlConfig cfg;
  cfg.policy.max_paths = 64;
  cfg.hysteresis_db = 1.0;
  ctl::FeedbackLoop loop(qam, 4, cfg);
  std::size_t emitted = 0;
  // +-0.4 dB wobble around 12: inside the hysteresis band after smoothing.
  for (int i = 0; i < 200; ++i) {
    emitted += loop.observe(snr_obs(12.0 + (i % 2 ? 0.4 : -0.4))).has_value();
  }
  EXPECT_EQ(emitted, 1u) << "spec thrashed inside the hysteresis band";
}

TEST(FeedbackLoop, TracksRampAndHonoursHold) {
  Constellation qam(16);
  ctl::ControlConfig cfg;
  cfg.policy.max_paths = 256;
  cfg.min_hold_frames = 4;
  ctl::FeedbackLoop loop(qam, 4, cfg);
  for (int i = 0; i < 100; ++i) {
    loop.observe(snr_obs(18.0 - 0.1 * i));  // 18 -> 8 dB ramp
  }
  const auto& log = loop.decisions();
  ASSERT_GE(log.size(), 3u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    // Falling SNR can only grow the budget...
    EXPECT_GE(log[i].paths, log[i - 1].paths);
    // ...and changes respect the coherence hold.
    EXPECT_GE(log[i].frame_index - log[i - 1].frame_index,
              cfg.min_hold_frames);
  }
  EXPECT_GT(log.back().paths, log.front().paths);
}

TEST(FeedbackLoop, DeterministicGivenSameObservables) {
  Constellation qam(16);
  ctl::ControlConfig cfg;
  cfg.policy.max_paths = 64;
  ctl::FeedbackLoop a(qam, 4, cfg), b(qam, 4, cfg);
  ch::Rng rng(5);
  std::vector<ctl::Observation> seq;
  for (int i = 0; i < 300; ++i) {
    ctl::Observation obs =
        snr_obs(12.0 + 6.0 * std::sin(i / 20.0) + rng.gaussian() * 0.3);
    obs.symbols = 64;
    obs.symbol_errors = (i % 17 == 0) ? 2 : 0;
    obs.queue_depth = (i / 50) % 2 == 1 ? 4 : 0;
    obs.queue_capacity = 4;
    seq.push_back(obs);
  }
  for (const auto& obs : seq) {
    const auto da = a.observe(obs);
    const auto db = b.observe(obs);
    ASSERT_EQ(da.has_value(), db.has_value());
  }
  ASSERT_EQ(a.decisions().size(), b.decisions().size());
  for (std::size_t i = 0; i < a.decisions().size(); ++i) {
    EXPECT_EQ(a.decisions()[i].detector, b.decisions()[i].detector);
    EXPECT_EQ(a.decisions()[i].frame_index, b.decisions()[i].frame_index);
    EXPECT_EQ(std::string(a.decisions()[i].reason),
              std::string(b.decisions()[i].reason));
  }
}

TEST(FeedbackLoop, ErrorFeedbackBacksOffThenRecovers) {
  Constellation qam(16);
  ctl::ControlConfig cfg;
  cfg.policy.max_paths = 256;
  cfg.error_window = 4;
  ctl::FeedbackLoop loop(qam, 4, cfg);
  ctl::Observation clean = snr_obs(14.0);
  clean.symbols = 100;
  loop.observe(clean);  // init
  const std::size_t init_paths = loop.current()->paths;

  // Sustained SER above target at the same reported SNR: the integral
  // action must distrust the model and buy more paths.
  ctl::Observation bad = clean;
  bad.symbol_errors = 5;  // 5e-2 > 1e-2 target
  for (int i = 0; i < 20; ++i) loop.observe(bad);
  EXPECT_GT(loop.error_backoff_db(), 0.0);
  EXPECT_GT(loop.current()->paths, init_paths);

  // Clean windows bleed the backoff back off.
  for (int i = 0; i < 60; ++i) loop.observe(clean);
  EXPECT_EQ(loop.error_backoff_db(), 0.0);
  EXPECT_EQ(loop.current()->paths, init_paths);
}

TEST(FeedbackLoop, LoadDegradesToFamilySwapAndRestores) {
  Constellation qam(16);
  ctl::ControlConfig cfg;
  cfg.policy.max_paths = 64;
  cfg.degrade_after = 2;
  cfg.restore_after = 3;
  cfg.max_degrade_steps = 2;
  ctl::FeedbackLoop loop(qam, 4, cfg);
  loop.observe(snr_obs(10.0));  // init at a path-hungry SNR
  const std::size_t solved = loop.current()->paths;
  ASSERT_GT(solved, 4u) << "scenario needs headroom to halve";

  // Sustained pressure: halve, halve, drop to fp32, then the quantized
  // int16 tier, then swap families — the i16 rung sits between the fp32
  // drop and the zf-sic swap so the loop sheds precision twice before
  // abandoning tree search.
  std::vector<std::string> specs;
  for (int i = 0;
       i < 30 && loop.degrade_step() <= cfg.max_degrade_steps + 2; ++i) {
    if (auto d = loop.observe(load_obs(10.0, 4, 4))) {
      specs.push_back(d->detector);
    }
  }
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0], "flexcore-" + std::to_string(solved / 2));
  EXPECT_EQ(specs[1], "flexcore-" + std::to_string(solved / 4));
  EXPECT_EQ(specs[2], "flexcore-" + std::to_string(solved / 4) + ":fp32");
  EXPECT_EQ(specs[3], "flexcore-" + std::to_string(solved / 4) + ":i16");
  EXPECT_EQ(specs[4], "zf-sic");
  EXPECT_EQ(loop.decisions().back().reason, std::string("load-degrade"));

  // Sustained slack walks the ladder back up to the full solved budget.
  std::size_t restores = 0;
  for (int i = 0; i < 50; ++i) {
    if (auto d = loop.observe(load_obs(10.0, 0, 4))) {
      ++restores;
      EXPECT_EQ(d->reason, std::string("load-restore"));
    }
  }
  EXPECT_EQ(restores, 5u);
  EXPECT_EQ(loop.degrade_step(), 0u);
  EXPECT_EQ(loop.current()->detector,
            "flexcore-" + std::to_string(solved));
}

TEST(FeedbackLoop, PrecisionRungCanBeDisabled) {
  // shed_precision = false restores the legacy three-rung ladder: the
  // family swap follows the last halving directly.
  Constellation qam(16);
  ctl::ControlConfig cfg;
  cfg.policy.max_paths = 64;
  cfg.degrade_after = 2;
  cfg.restore_after = 3;
  cfg.max_degrade_steps = 1;
  cfg.shed_precision = false;
  ctl::FeedbackLoop loop(qam, 4, cfg);
  loop.observe(snr_obs(10.0));
  const std::size_t solved = loop.current()->paths;
  ASSERT_GT(solved, 2u);

  std::vector<std::string> specs;
  for (int i = 0;
       i < 20 && loop.degrade_step() <= cfg.max_degrade_steps; ++i) {
    if (auto d = loop.observe(load_obs(10.0, 4, 4))) {
      specs.push_back(d->detector);
    }
  }
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0], "flexcore-" + std::to_string(solved / 2));
  EXPECT_EQ(specs[1], "zf-sic");
}

TEST(FeedbackLoop, NoDecisionBeforeFirstSnrEstimate) {
  Constellation qam(16);
  ctl::FeedbackLoop loop(qam, 4, {});
  ctl::Observation blind;  // NaN SNR, no errors, no load signal
  blind.queue_depth = 4;
  blind.queue_capacity = 4;
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(loop.observe(blind).has_value());
  }
  EXPECT_TRUE(loop.observe(snr_obs(12.0)).has_value());
}

// -------------------------------------------------- runtime reconfiguration

TEST(Reconfigure, FifoSafeAcrossSpecBoundary) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 2;
  rcfg.dispatchers = 0;  // poll mode: fully deterministic interleaving
  fa::Runtime rt(rcfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-16", .qam_order = 16});

  const double nv = ch::noise_var_for_snr_db(12.0);
  const Frame fr = make_frame(cell.constellation(), 4, 3, 4, 4, nv, 77);
  const fa::FrameJob job = job_of(fr, nv);

  std::vector<fa::FrameTicket> before, after;
  for (int i = 0; i < 2; ++i) before.push_back(rt.submit(cell, job));
  fa::FrameTicket swap = rt.reconfigure(cell, {.detector = "zf-sic"});
  for (int i = 0; i < 2; ++i) after.push_back(rt.submit(cell, job));

  // Sequence numbers prove the swap's FIFO slot.
  EXPECT_EQ(swap.sequence(), 2u);
  EXPECT_EQ(after.front().sequence(), 3u);

  while (rt.run_one()) {
  }
  EXPECT_EQ(swap.wait(), fa::TicketStatus::kDone);

  const auto ref_old = sync_reference("flexcore-16", 16, fr, nv);
  const auto ref_new = sync_reference("zf-sic", 16, fr, nv);
  for (auto& t : before) {
    ASSERT_EQ(t.wait(), fa::TicketStatus::kDone);
    expect_bit_identical(t.try_get()->results, ref_old, "pre-swap");
  }
  for (auto& t : after) {
    ASSERT_EQ(t.wait(), fa::TicketStatus::kDone);
    expect_bit_identical(t.try_get()->results, ref_new, "post-swap");
  }
}

TEST(Reconfigure, Fp32TierSpecAppliesThroughRuntime) {
  // The degrade ladder's precision rung emits ":fp32" specs; they must
  // apply through the FIFO-safe reconfigure path like any family swap,
  // and the live spec in RuntimeStats must reflect the tier.
  fa::RuntimeConfig rcfg;
  rcfg.threads = 2;
  rcfg.dispatchers = 0;
  fa::Runtime rt(rcfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-16", .qam_order = 16});

  const double nv = ch::noise_var_for_snr_db(14.0);
  const Frame fr = make_frame(cell.constellation(), 3, 3, 4, 4, nv, 79);
  const fa::FrameJob job = job_of(fr, nv);

  fa::FrameTicket swap =
      rt.reconfigure(cell, {.detector = "flexcore-16:fp32"});
  fa::FrameTicket frame = rt.submit(cell, job);
  while (rt.run_one()) {
  }
  EXPECT_EQ(swap.wait(), fa::TicketStatus::kDone);
  ASSERT_EQ(frame.wait(), fa::TicketStatus::kDone);
  EXPECT_EQ(frame.try_get()->results.size(), fr.ys.size());
  EXPECT_EQ(rt.stats().cells[0].detector, "flexcore-16:fp32");

  // The fp32 grid stays close to the fp64 reference at this SNR (the
  // kernel suite quantifies the tolerance; here we only guard wiring).
  const auto ref = sync_reference("flexcore-16", 16, fr, nv);
  std::size_t mismatched = 0;
  for (std::size_t v = 0; v < ref.size(); ++v) {
    mismatched += frame.try_get()->results[v].symbols != ref[v].symbols;
  }
  EXPECT_LE(mismatched, ref.size() / 4);
}

TEST(Reconfigure, BypassesFullQueueAndShedding) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 2;
  rcfg.dispatchers = 0;
  rcfg.queue_capacity = 1;
  rcfg.policy = fa::QueuePolicy::kDropNewest;
  fa::Runtime rt(rcfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});

  const double nv = ch::noise_var_for_snr_db(12.0);
  const Frame fr = make_frame(cell.constellation(), 2, 2, 4, 4, nv, 78);
  const fa::FrameJob job = job_of(fr, nv);

  fa::FrameTicket first = rt.submit(cell, job);   // fills the queue
  fa::FrameTicket swap = rt.reconfigure(cell, {.detector = "zf-sic"});
  fa::FrameTicket dropped = rt.submit(cell, job);  // frame IS shed
  EXPECT_EQ(dropped.status(), fa::TicketStatus::kDropped);
  EXPECT_EQ(swap.status(), fa::TicketStatus::kPending);

  while (rt.run_one()) {
  }
  EXPECT_EQ(first.wait(), fa::TicketStatus::kDone);
  EXPECT_EQ(swap.wait(), fa::TicketStatus::kDone);

  const fa::RuntimeStats rs = rt.stats();
  EXPECT_EQ(rs.reconfigs, 1u);
  EXPECT_EQ(rs.cells[0].detector, "zf-sic");
  EXPECT_EQ(rs.frames_dropped, 1u);
}

TEST(Reconfigure, InvalidSpecThrowsSynchronouslyAndChangesNothing) {
  fa::Runtime rt({.threads = 2, .dispatchers = 0});
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  EXPECT_THROW(rt.reconfigure(cell, {.detector = "warp-fpga"}),
               std::invalid_argument);
  EXPECT_THROW(rt.reconfigure(cell, {.detector = ""}),
               std::invalid_argument);
  const fa::RuntimeStats rs = rt.stats();
  EXPECT_EQ(rs.reconfigs, 0u);
  EXPECT_EQ(rs.cells[0].detector, "flexcore-8");
  EXPECT_EQ(rs.queue_depth, 0u);
}

TEST(Reconfigure, ResetsCoherenceWarmup) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 2;
  rcfg.dispatchers = 0;
  fa::Runtime rt(rcfg);
  fa::CellConfig ccfg;
  ccfg.detector = "flexcore-8";
  ccfg.qam_order = 16;
  ccfg.reuse_preprocessing = true;
  fa::Cell& cell = rt.open_cell(ccfg);

  const double nv = ch::noise_var_for_snr_db(12.0);
  const Frame fr = make_frame(cell.constellation(), 3, 2, 4, 4, nv, 79);
  const fa::FrameJob job = job_of(fr, nv);

  auto run = [&](fa::FrameTicket t) {
    while (rt.run_one()) {
    }
    EXPECT_EQ(t.wait(), fa::TicketStatus::kDone);
    return t.take();
  };
  EXPECT_EQ(run(rt.submit(cell, job)).channels_installed, 3u);  // cold
  EXPECT_EQ(run(rt.submit(cell, job)).channels_installed, 0u);  // coherent
  rt.reconfigure(cell, {.detector = "flexcore-4"});
  // The swapped detector has no caches: reuse would walk stale state.
  EXPECT_EQ(run(rt.submit(cell, job)).channels_installed, 3u);
  EXPECT_EQ(run(rt.submit(cell, job)).channels_installed, 0u);
}

TEST(Reconfigure, StatsInvariantHoldsWithControlMessages) {
  fa::Runtime rt({.threads = 2, .dispatchers = 0});
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  const double nv = ch::noise_var_for_snr_db(12.0);
  const Frame fr = make_frame(cell.constellation(), 2, 2, 4, 4, nv, 80);
  const fa::FrameJob job = job_of(fr, nv);

  rt.submit(cell, job);
  rt.reconfigure(cell, {.detector = "flexcore-4"});
  rt.submit(cell, job);
  rt.reconfigure(cell, {.detector = "flexcore-2"});

  // Queued control messages must not appear as frames anywhere.
  fa::RuntimeStats rs = rt.stats();
  EXPECT_EQ(rs.frames_in, 2u);
  EXPECT_EQ(rs.queue_depth, 2u);
  EXPECT_EQ(rs.cells[0].queue_depth, 2u);
  EXPECT_EQ(rs.reconfigs, 0u);  // none applied yet

  rt.drain();
  rs = rt.stats();
  EXPECT_EQ(rs.frames_in, 2u);
  EXPECT_EQ(rs.frames_out, 2u);
  EXPECT_EQ(rs.reconfigs, 2u);
  EXPECT_EQ(rs.cells[0].reconfigs, 2u);
  EXPECT_EQ(rs.queue_depth, 0u);
  EXPECT_EQ(rs.latency_count, rs.frames_out)
      << "reconfigs must not enter the latency histogram";
  EXPECT_EQ(rs.cells[0].detector, "flexcore-2");
}

TEST(Reconfigure, TuningResolvedAtCallTimeNotApplyTime) {
  fa::Runtime rt({.threads = 2, .dispatchers = 0});
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  const std::size_t default_batch =
      cell.config().tuning.flexcore.batch_expand;

  // First swap changes the tuning; the second (tuning unset, still queued
  // behind the first) must keep the tuning in effect when IT was called —
  // the default — not inherit the first swap's, and must apply cleanly.
  fa::DetectorConfig custom = cell.config().tuning;
  custom.flexcore.batch_expand = default_batch + 2;
  fa::FrameTicket first =
      rt.reconfigure(cell, {.detector = "flexcore-8", .tuning = custom});
  fa::FrameTicket second = rt.reconfigure(cell, {.detector = "flexcore-4"});
  while (rt.run_one()) {
  }
  EXPECT_EQ(first.wait(), fa::TicketStatus::kDone);
  EXPECT_EQ(second.wait(), fa::TicketStatus::kDone);
  EXPECT_EQ(cell.config().detector, "flexcore-4");
  EXPECT_EQ(cell.config().tuning.flexcore.batch_expand, default_batch);
}

TEST(Reconfigure, AppliedByBackgroundDispatchers) {
  fa::RuntimeConfig rcfg;
  rcfg.threads = 2;
  rcfg.dispatchers = 2;
  fa::Runtime rt(rcfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-16", .qam_order = 16});
  const double nv = ch::noise_var_for_snr_db(12.0);
  const Frame fr = make_frame(cell.constellation(), 4, 2, 4, 4, nv, 81);
  const fa::FrameJob job = job_of(fr, nv);

  std::vector<fa::FrameTicket> before, after;
  for (int i = 0; i < 4; ++i) before.push_back(rt.submit(cell, job));
  fa::FrameTicket swap = rt.reconfigure(cell, {.detector = "flexcore-2"});
  for (int i = 0; i < 4; ++i) after.push_back(rt.submit(cell, job));
  rt.drain();

  EXPECT_EQ(swap.wait(), fa::TicketStatus::kDone);
  const auto ref_old = sync_reference("flexcore-16", 16, fr, nv);
  const auto ref_new = sync_reference("flexcore-2", 16, fr, nv);
  for (auto& t : before) {
    ASSERT_EQ(t.wait(), fa::TicketStatus::kDone);
    expect_bit_identical(t.try_get()->results, ref_old, "pre-swap async");
  }
  for (auto& t : after) {
    ASSERT_EQ(t.wait(), fa::TicketStatus::kDone);
    expect_bit_identical(t.try_get()->results, ref_new, "post-swap async");
  }
  EXPECT_EQ(rt.stats().cells[0].detector, "flexcore-2");
}

// ------------------------------------------------------- closed-loop pieces

TEST(Scenario, DriverIsDeterministicAndScriptsShape) {
  fs::ScenarioConfig sc;
  sc.trace = {.nr = 4, .nt = 2, .num_subcarriers = 4};
  sc.segments = {{.frames = 5, .snr_db_begin = 18.0, .snr_db_end = 10.0},
                 {.frames = 3, .snr_db_begin = 10.0, .snr_db_end = 10.0,
                  .rho = 0.9},
                 {.frames = 2, .snr_db_begin = 10.0, .snr_db_end = 16.0,
                  .load_burst = 2}};
  sc.seed = 11;
  fs::ScenarioDriver a(sc), b(sc);
  EXPECT_EQ(a.total_frames(), 10u);
  EXPECT_DOUBLE_EQ(a.min_snr_db(), 10.0);

  Constellation qam(4);
  fs::ScenarioStep sa, sb;
  std::size_t evolved = 0, bursts = 0;
  while (a.next(&sa)) {
    ASSERT_TRUE(b.next(&sb));
    EXPECT_DOUBLE_EQ(sa.snr_db, sb.snr_db);
    evolved += (sa.channel_changed && sa.index > 0);
    bursts += sa.load_burst;
    const fs::SynthFrame fa_ = a.synth_frame(qam, 4, 1);
    const fs::SynthFrame fb_ = b.synth_frame(qam, 4, 1);
    ASSERT_EQ(fa_.tx, fb_.tx);
    for (std::size_t v = 0; v < fa_.ys.size(); ++v) {
      for (std::size_t r = 0; r < fa_.ys[v].size(); ++r) {
        EXPECT_EQ(fa_.ys[v][r], fb_.ys[v][r]);
      }
    }
  }
  EXPECT_FALSE(b.next(&sb));
  EXPECT_EQ(evolved, 3u);  // only the rho < 1 segment evolves the trace
  EXPECT_EQ(bursts, 4u);
  // Ramp endpoints hit exactly.
  fs::ScenarioDriver c(sc);
  fs::ScenarioStep s0;
  c.next(&s0);
  EXPECT_DOUBLE_EQ(s0.snr_db, 18.0);
}

TEST(ClosedLoop, AdaptiveMeetsTargetWithFewerPathsThanWorstCase) {
  // Compact end-to-end: SNR ramp 16 -> 9 -> 16 dB; the adaptive cell must
  // stay at/below the target error while averaging measurably fewer paths
  // than the static worst-case solve.
  Constellation qam(16);
  const std::size_t nsc = 4, nv = 2, nt = 4;
  fs::ScenarioConfig sc;
  sc.trace = {.nr = 8, .nt = nt, .num_subcarriers = nsc};
  sc.segments = {{.frames = 12, .snr_db_begin = 16.0, .snr_db_end = 9.0},
                 {.frames = 12, .snr_db_begin = 9.0, .snr_db_end = 16.0}};
  sc.seed = 21;

  ctl::ControlConfig ccfg;
  ccfg.policy.target_error = 1e-2;
  ccfg.policy.max_paths = 64;
  ccfg.min_hold_frames = 2;
  const std::size_t worst =
      ctl::solve_path_count(qam, nt, 9.0, ccfg.policy).paths;

  double paths_static = 0.0, paths_adaptive = 0.0;
  std::size_t errors_adaptive = 0, symbols_adaptive = 0;
  for (const bool adaptive : {false, true}) {
    fs::ScenarioDriver drv(sc);
    fa::RuntimeConfig rcfg;
    rcfg.threads = 2;
    rcfg.dispatchers = 0;
    fa::Runtime rt(rcfg);
    fa::Cell& cell = rt.open_cell(
        {.detector = "flexcore-" + std::to_string(worst), .qam_order = 16});
    ctl::FeedbackLoop loop(qam, nt, ccfg);

    fs::ScenarioStep step;
    while (drv.next(&step)) {
      const fs::SynthFrame fr = drv.synth_frame(qam, nsc, nv);
      fa::FrameTicket t = rt.submit(cell, fs::frame_job_of(fr, step.noise_var));
      while (rt.run_one()) {
      }
      ASSERT_EQ(t.wait(), fa::TicketStatus::kDone);
      const fa::FrameResult* res = t.try_get();
      const std::size_t errs = fs::count_symbol_errors(fr, res->results);
      (adaptive ? paths_adaptive : paths_static) +=
          res->sum_active_paths / nsc;
      if (adaptive) {
        errors_adaptive += errs;
        symbols_adaptive += fr.tx.size();
        // True-SNR observable: this test isolates the policy from
        // estimator noise (channel_test covers the estimator).
        ctl::Observation obs = snr_obs(step.snr_db);
        obs.symbols = fr.tx.size();
        obs.symbol_errors = errs;
        if (auto d = loop.observe(obs)) {
          rt.reconfigure(cell, {.detector = d->detector});
        }
      }
    }
    rt.drain();
    if (adaptive) {
      EXPECT_GE(rt.stats().reconfigs, 2u);
    }
  }
  const double ser = static_cast<double>(errors_adaptive) /
                     static_cast<double>(symbols_adaptive);
  EXPECT_LE(ser, 2.0 * ccfg.policy.target_error);
  EXPECT_LT(paths_adaptive, 0.8 * paths_static)
      << "adaptive did not save compute over the static worst case";
}
