// Tests for the runtime hot-path guard (parallel/hot_path_guard.h) and the
// invariants it pins on the detection runtimes:
//
//  * the guard itself: allocation/lock counting, thread vs process scope;
//  * path_metric_block is allocation- and lock-free in every precision
//    tier (fp64 / fp32 / i16);
//  * a single-threaded ThreadPool runs jobs with ZERO lock traffic (the
//    inline short-circuit);
//  * UplinkPipeline::detect_frame steady state (reuse overload +
//    reuse_preprocessing, threads=1) performs ZERO heap allocations and
//    ZERO lock acquisitions;
//  * Runtime run_one and ShardedRuntime submit→complete cycles have an
//    O(1)-per-frame control-plane envelope: allocation and lock counts do
//    not grow with the grid's path count.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "api/runtime.h"
#include "api/uplink_pipeline.h"
#include "channel/channel.h"
#include "detect/path_kernels.h"
#include "frame_fixtures.h"
#include "linalg/qr.h"
#include "obs/obs.h"
#include "parallel/hot_path_guard.h"
#include "parallel/thread_pool.h"
#include "shard/sharded_runtime.h"

namespace fa = flexcore::api;
namespace fd = flexcore::detect;
namespace fp = flexcore::parallel;
namespace ch = flexcore::channel;
namespace fl = flexcore::linalg;

using flexcore::testing::Frame;
using flexcore::testing::job_of;
using flexcore::testing::make_frame;
using Scope = fp::HotPathScope::Scope;

namespace {

/// An allocation the optimizer cannot elide: new-EXPRESSIONS paired with an
/// immediate delete may legally be folded away (GCC does at -O2), but a
/// direct call of the replaceable operator function may not.
void heap_roundtrip(std::size_t bytes) {
  void* p = ::operator new(bytes);
  ::operator delete(p);
}

// ------------------------------------------------------------ guard basics

TEST(Guard, CountsThisThreadsAllocations) {
  if (!fp::hot_path_guard_enabled()) GTEST_SKIP() << "alloc guard disabled";
  fp::HotPathScope guard("alloc counting");
  EXPECT_TRUE(fp::HotPathScope::armed_on_this_thread());
  void* p = ::operator new(sizeof(int));
  const auto mid = guard.delta();
  EXPECT_GE(mid.allocations, 1u);
  EXPECT_GE(mid.alloc_bytes, sizeof(int));
  ::operator delete(p);
  EXPECT_GE(guard.delta().deallocations, 1u);
}

TEST(Guard, ScopesNestIndependently) {
  if (!fp::hot_path_guard_enabled()) GTEST_SKIP() << "alloc guard disabled";
  fp::HotPathScope outer("outer");
  heap_roundtrip(1);
  {
    fp::HotPathScope inner("inner");
    heap_roundtrip(32);
    EXPECT_GE(inner.delta().allocations, 1u);
    // The inner scope must not see the allocation made before it started.
    EXPECT_LT(inner.delta().allocations, outer.delta().allocations + 1u);
  }
  EXPECT_GE(outer.delta().allocations, 2u);
}

TEST(Guard, GuardedMutexCountsAcquisitions) {
  fp::GuardedMutex mu;
  fp::HotPathScope guard("lock counting");
  mu.lock();
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
  EXPECT_EQ(guard.delta().lock_acquisitions, 2u);
}

TEST(Guard, ThreadScopeIgnoresOtherThreads) {
  if (!fp::hot_path_guard_enabled()) GTEST_SKIP() << "alloc guard disabled";
  // A worker allocating on another thread must be invisible to a kThread
  // scope and visible to a kProcess scope.  The std::thread constructor
  // itself allocates its shared state on THIS thread, so the thread-scope
  // bound is "a few", not zero.
  constexpr std::uint64_t kWorkerAllocs = 512;
  fp::HotPathScope thread_scope("this thread", Scope::kThread);
  fp::HotPathScope process_scope("all threads", Scope::kProcess);
  std::thread worker([] {
    for (std::uint64_t i = 0; i < kWorkerAllocs; ++i) heap_roundtrip(8);
  });
  worker.join();
  EXPECT_LE(thread_scope.delta().allocations, 8u);
  EXPECT_GE(process_scope.delta().allocations, kWorkerAllocs);
}

// ------------------------------------------------- kernel tiers alloc-free

TEST(KernelTiers, PathMetricBlockAllocAndLockFreeAllTiers) {
  // Compile all three precision tiers on the same FCSD channel, then
  // assert a full sweep of path_metric_block touches neither the heap nor
  // any instrumented lock — the per-path contract of the kernel engine.
  flexcore::modulation::Constellation c(16);
  ch::Rng rng(29);
  const fl::CMat h = ch::rayleigh_iid(6, 6, rng);
  const fl::QrResult qr = fl::fcsd_sorted_qr(h, 1);

  fd::PathPlanT<double> plan64;
  fd::PathPlanT<float> plan32;
  fd::PathPlanI16 plan16;
  plan64.compile_fcsd(qr.R, 1, c);
  plan32.compile_fcsd(qr.R, 1, c);
  plan16.compile_fcsd(qr.R, 1, c);
  const std::size_t paths = plan64.num_paths();
  ASSERT_EQ(paths, 16u);

  std::vector<fl::cplx> ybar(qr.R.cols(), fl::cplx{0.3, -0.2});
  std::vector<double> metrics(paths);

  fp::HotPathScope guard("path_metric_block all tiers");
  plan64.path_metric_block(ybar, 0, paths, metrics.data());
  plan32.path_metric_block(ybar, 0, paths, metrics.data());
  plan16.path_metric_block(ybar, 0, paths, metrics.data());
  const auto d = guard.delta();
  if (fp::hot_path_guard_enabled()) {
    EXPECT_EQ(d.allocations, 0u);
  }
  EXPECT_EQ(d.lock_acquisitions, 0u);
}

// --------------------------------------------- single-threaded pool locks

TEST(PoolLocks, SingleThreadedPoolRunsJobsLockFree) {
  // num_threads == 1 short-circuits run_job onto the calling thread; the
  // guard pins that this path takes ZERO locks and (after the state vector
  // warmed in the constructor) performs zero allocations.
  fp::ThreadPool pool(1);
  std::vector<double> sink(64, 0.0);
  pool.parallel_for(sink.size(), [&](std::size_t i) { sink[i] = 1.0; });

  fp::HotPathScope guard("threads=1 run_job");
  for (int rep = 0; rep < 8; ++rep) {
    pool.parallel_for(sink.size(), [&](std::size_t i) { sink[i] += 1.0; });
  }
  const auto d = guard.delta();
  EXPECT_EQ(d.lock_acquisitions, 0u);
  if (fp::hot_path_guard_enabled()) {
    EXPECT_EQ(d.allocations, 0u);
  }
}

// ------------------------------------------- detect_frame steady state

TEST(FrameSteadyState, ZeroAllocZeroLockSingleThread) {
  // The full frame path — rotate, grid, winner reconstruction, unpermute —
  // on a threads=1 pipeline with warm buffers: no heap, no locks.
  fa::PipelineConfig cfg;
  cfg.detector = "flexcore-16";
  cfg.qam_order = 16;
  cfg.threads = 1;
  fa::UplinkPipeline pipe(cfg);
  const double nv = ch::noise_var_for_snr_db(14.0);
  const Frame fr = make_frame(pipe.constellation(), 6, 3, 4, 4, nv, 31);

  fa::FrameJob job = job_of(fr, nv);
  fa::FrameResult out;
  pipe.detect_frame(job, &out);  // cold: preprocess + buffer growth
  job.reuse_preprocessing = true;
  pipe.detect_frame(job, &out);  // warm-up reuse pass

  fp::HotPathScope guard("detect_frame steady state", Scope::kThread);
  pipe.detect_frame(job, &out);
  const auto d = guard.delta();
  if (fp::hot_path_guard_enabled()) {
    EXPECT_EQ(d.allocations, 0u) << "steady-state frame touched the heap";
  }
  EXPECT_EQ(d.lock_acquisitions, 0u)
      << "steady-state frame took a lock on a threads=1 pool";
  EXPECT_EQ(out.results.size(), fr.ys.size());
}

// ------------------------------------- runtime O(1)-per-frame envelope

/// Steady-state per-cycle guard counts of `cycles` submit → run_one → wait
/// rounds against an open cell (dispatchers == 0: everything runs on this
/// thread, so a kThread scope sees the whole frame).
fp::HotPathStats run_one_cycles(fa::Runtime& rt, fa::Cell& cell,
                                const fa::FrameJob& job, int cycles) {
  fp::HotPathScope guard("run_one cycles", Scope::kThread);
  for (int i = 0; i < cycles; ++i) {
    fa::FrameTicket t = rt.submit(cell, job);
    EXPECT_TRUE(rt.run_one()) << "nothing queued";
    EXPECT_EQ(t.wait(), fa::TicketStatus::kDone);
  }
  return guard.delta();
}

TEST(RuntimeEnvelope, RunOneCostIndependentOfPathCount) {
  // Same frame geometry through a 16-path and a 128-path cell: the
  // control-plane cost per frame (allocations and lock acquisitions) must
  // not grow with the grid's path count — per-path work never touches the
  // heap or a mutex.
  fa::RuntimeConfig rcfg;
  rcfg.threads = 1;
  rcfg.dispatchers = 0;
  fa::Runtime rt(rcfg);
  fa::CellConfig small_cfg{.detector = "flexcore-8", .qam_order = 16};
  small_cfg.reuse_preprocessing = true;
  fa::CellConfig big_cfg{.detector = "flexcore-128", .qam_order = 16};
  big_cfg.reuse_preprocessing = true;
  fa::Cell& small = rt.open_cell(small_cfg);
  fa::Cell& big = rt.open_cell(big_cfg);

  flexcore::modulation::Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(14.0);
  const Frame fr = make_frame(c, 4, 2, 4, 4, nv, 37);
  const fa::FrameJob job = job_of(fr, nv);

  // Warm both cells (preprocessing caches + warm buffers), then measure.
  (void)run_one_cycles(rt, small, job, 3);
  (void)run_one_cycles(rt, big, job, 3);
  constexpr int kCycles = 8;
  const fp::HotPathStats ds = run_one_cycles(rt, small, job, kCycles);
  const fp::HotPathStats db = run_one_cycles(rt, big, job, kCycles);

  // 16x the paths, identical control plane: dispatchers == 0 and
  // threads == 1 make the counts deterministic, so exact equality holds.
  EXPECT_EQ(db.lock_acquisitions, ds.lock_acquisitions);
  if (fp::hot_path_guard_enabled()) {
    EXPECT_EQ(db.allocations, ds.allocations);
  }
  // And the envelope itself is small: a handful of control-plane locks per
  // frame (queue, ticket, completion), nothing per task or per path.
  EXPECT_LE(ds.lock_acquisitions, 32u * kCycles);
}

TEST(ShardedEnvelope, SubmitCompleteCostIndependentOfPathCount) {
  // The decentralized front-end adds shard mailbox handoffs per frame —
  // still O(1): counts for a 128-path cell stay within a constant of the
  // 8-path cell's, nowhere near the 16x task-count ratio.  Process scope:
  // shard drivers and dispatchers do the work on their own threads.
  fa::ShardedRuntimeConfig scfg;
  scfg.shards = 2;
  scfg.threads_per_shard = 1;
  scfg.runtime.threads = 1;
  scfg.runtime.dispatchers = 1;
  fa::ShardedRuntime rt(scfg);
  fa::CellConfig small_cfg{.detector = "flexcore-8", .qam_order = 16};
  small_cfg.reuse_preprocessing = true;
  fa::CellConfig big_cfg{.detector = "flexcore-128", .qam_order = 16};
  big_cfg.reuse_preprocessing = true;
  fa::Cell& small = rt.open_cell(small_cfg);
  fa::Cell& big = rt.open_cell(big_cfg);

  flexcore::modulation::Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(14.0);
  const Frame fr = make_frame(c, 4, 2, 4, 4, nv, 41);
  const fa::FrameJob job = job_of(fr, nv);

  auto cycles = [&](fa::Cell& cell, int n) {
    fp::HotPathScope guard("sharded cycles", Scope::kProcess);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(rt.submit(cell, job).wait(), fa::TicketStatus::kDone);
    }
    return guard.delta();
  };
  (void)cycles(small, 3);
  (void)cycles(big, 3);
  constexpr int kCycles = 8;
  const fp::HotPathStats ds = cycles(small, kCycles);
  const fp::HotPathStats db = cycles(big, kCycles);

  // Background threads make exact counts nondeterministic (cv wakeups), so
  // the envelope is a slack bound: a 16x path-count ratio with ANY
  // per-path lock or allocation would blow hundreds past this.
  const auto slack_locks = ds.lock_acquisitions + 8u * kCycles;
  EXPECT_LE(db.lock_acquisitions, slack_locks);
  if (fp::hot_path_guard_enabled()) {
    EXPECT_LE(db.allocations, ds.allocations + 8u * kCycles);
  }
}

// --------------------------------------- tracing-enabled steady state

TEST(ObsSteadyState, TracingEnabledKeepsDetectFrameZeroAllocZeroLock) {
  // The observability contract: with spans compiled in (FLEXCORE_OBS=2)
  // and every frame sampled, the steady-state frame path STILL performs
  // zero heap allocations and zero lock acquisitions — span recording is a
  // wait-free seqlock write into this thread's pre-registered ring.  The
  // one cold-path allocation (ring registration at the thread's first
  // record) happens in the warm-up passes below, outside the guard.
  namespace obs = flexcore::obs;
  if constexpr (obs::kLevel < 2) {
    GTEST_SKIP() << "spans compiled out at FLEXCORE_OBS=" << obs::kLevel;
  }
  obs::ObsConfig ocfg;
  ocfg.sample_every = 1;  // sample EVERY frame: the worst case
  obs::reset_for_test(ocfg);

  fa::PipelineConfig cfg;
  cfg.detector = "flexcore-16";
  cfg.qam_order = 16;
  cfg.threads = 1;
  fa::UplinkPipeline pipe(cfg);
  const double nv = ch::noise_var_for_snr_db(14.0);
  const Frame fr = make_frame(pipe.constellation(), 6, 3, 4, 4, nv, 43);

  fa::FrameJob job = job_of(fr, nv);
  job.trace = obs::begin_frame(0);
  ASSERT_TRUE(obs::want_span(job.trace));
  fa::FrameResult out;
  pipe.detect_frame(job, &out);  // cold: preprocess, buffers, ring reg
  job.reuse_preprocessing = true;
  pipe.detect_frame(job, &out);  // warm reuse pass

  fp::HotPathScope guard("traced detect_frame steady state", Scope::kThread);
  pipe.detect_frame(job, &out);
  const auto d = guard.delta();
  if (fp::hot_path_guard_enabled()) {
    EXPECT_EQ(d.allocations, 0u)
        << "traced steady-state frame touched the heap";
  }
  EXPECT_EQ(d.lock_acquisitions, 0u)
      << "traced steady-state frame took a lock";
  EXPECT_EQ(out.results.size(), fr.ys.size());

  // The spans really were recorded — this was not a vacuous pass.
  const obs::MetricsSnapshot ms = obs::metrics_snapshot();
  EXPECT_GT(ms.spans_recorded, 0u);

  obs::reset_for_test();  // back to defaults for any later test
}

}  // namespace
