// Tests for channel models, noise generation and the trace generator.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/channel.h"
#include "channel/estimation.h"
#include "channel/trace.h"
#include "linalg/svd.h"

namespace ch = flexcore::channel;
using flexcore::linalg::CMat;
using flexcore::linalg::CVec;
using flexcore::linalg::cplx;

TEST(Rng, Deterministic) {
  ch::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.gaussian(), b.gaussian());
  }
}

TEST(Rng, CgaussianVariance) {
  ch::Rng rng(7);
  double sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum2 += flexcore::linalg::abs2(rng.cgaussian(2.0));
  EXPECT_NEAR(sum2 / n, 2.0, 0.05);
}

TEST(Rng, UniformIntInRange) {
  ch::Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_int(10), 10u);
  }
}

TEST(Channel, RayleighUnitVariancePerEntry) {
  ch::Rng rng(1);
  double sum2 = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const CMat h = ch::rayleigh_iid(8, 8, rng);
    sum2 += h.frobenius_norm() * h.frobenius_norm();
  }
  EXPECT_NEAR(sum2 / (trials * 64.0), 1.0, 0.03);
}

TEST(Channel, ExpCorrelationStructure) {
  const CMat r = ch::exp_correlation(4, 0.5);
  EXPECT_NEAR(r(0, 0).real(), 1.0, 1e-12);
  EXPECT_NEAR(r(0, 1).real(), 0.5, 1e-12);
  EXPECT_NEAR(r(0, 3).real(), 0.125, 1e-12);
  EXPECT_NEAR(r(2, 1).real(), 0.5, 1e-12);
  EXPECT_THROW(ch::exp_correlation(4, 1.0), std::invalid_argument);
  EXPECT_THROW(ch::exp_correlation(4, -0.1), std::invalid_argument);
}

TEST(Channel, KroneckerInducesReceiveCorrelation) {
  ch::Rng rng(2);
  const double rho = 0.7;
  const std::size_t nr = 4, nt = 4;
  CMat acc(nr, nr);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const CMat h = ch::kronecker_channel(nr, nt, rho,
                                         std::vector<double>(nt, 1.0), rng);
    acc += h * h.hermitian();
  }
  // E[H H^H] = Nt * Rr.
  const double scale = 1.0 / (trials * static_cast<double>(nt));
  EXPECT_NEAR(acc(0, 1).real() * scale, rho, 0.05);
  EXPECT_NEAR(acc(0, 2).real() * scale, rho * rho, 0.05);
  EXPECT_NEAR(acc(0, 0).real() * scale, 1.0, 0.05);
}

TEST(Channel, UserGainsScaleColumns) {
  ch::Rng rng(3);
  std::vector<double> gains{4.0, 1.0, 0.25, 1.0};
  double e0 = 0.0, e2 = 0.0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    const CMat h = ch::kronecker_channel(4, 4, 0.0, gains, rng);
    e0 += flexcore::linalg::norm2(h.col(0));
    e2 += flexcore::linalg::norm2(h.col(2));
  }
  EXPECT_NEAR(e0 / e2, 16.0, 1.2);  // 4.0 / 0.25
}

TEST(Channel, BoundedUserGainsRespectSpreadAndMean) {
  ch::Rng rng(4);
  for (int t = 0; t < 50; ++t) {
    const auto g = ch::bounded_user_gains(12, 3.0, rng);
    double mean = 0.0;
    for (double v : g) mean += v;
    mean /= 12.0;
    EXPECT_NEAR(mean, 1.0, 1e-9);
    const auto [mn, mx] = std::minmax_element(g.begin(), g.end());
    EXPECT_LE(10.0 * std::log10(*mx / *mn), 3.0 + 1e-9);
  }
}

TEST(Channel, SnrNoiseVarRoundTrip) {
  for (double snr : {0.0, 10.0, 21.6}) {
    const double nv = ch::noise_var_for_snr_db(snr);
    EXPECT_NEAR(ch::snr_db_for_noise_var(nv), snr, 1e-9);
  }
  // Per-user SNR convention: 20 dB per user = 0.01 noise variance at Es = 1.
  EXPECT_NEAR(ch::noise_var_for_snr_db(20.0), 0.01, 1e-12);
}

TEST(Channel, TransmitAddsCalibratedNoise) {
  ch::Rng rng(5);
  const CMat h = ch::rayleigh_iid(8, 8, rng);
  const CVec s(8, cplx{0.0, 0.0});  // zero signal isolates the noise
  double sum2 = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const CVec y = ch::transmit(h, s, 0.5, rng);
    sum2 += flexcore::linalg::norm2(y);
  }
  EXPECT_NEAR(sum2 / (trials * 8.0), 0.5, 0.02);
}

TEST(Trace, ShapeAndDeterminism) {
  ch::TraceConfig cfg;
  cfg.nr = 8;
  cfg.nt = 8;
  cfg.num_subcarriers = 64;
  ch::TraceGenerator g1(cfg, 99), g2(cfg, 99);
  const auto t1 = g1.next();
  const auto t2 = g2.next();
  ASSERT_EQ(t1.per_subcarrier.size(), 64u);
  EXPECT_EQ(t1.per_subcarrier[0].rows(), 8u);
  EXPECT_EQ(t1.per_subcarrier[0].cols(), 8u);
  for (std::size_t f = 0; f < 64; f += 13) {
    EXPECT_LT(CMat::max_abs_diff(t1.per_subcarrier[f], t2.per_subcarrier[f]),
              1e-15);
  }
}

TEST(Trace, UnitAverageEntryEnergy) {
  ch::TraceConfig cfg;
  cfg.nr = 4;
  cfg.nt = 4;
  ch::TraceGenerator gen(cfg, 17);
  double sum2 = 0.0;
  std::size_t count = 0;
  for (int p = 0; p < 40; ++p) {
    const auto trace = gen.next();
    for (const CMat& h : trace.per_subcarrier) {
      sum2 += h.frobenius_norm() * h.frobenius_norm();
      count += h.rows() * h.cols();
    }
  }
  EXPECT_NEAR(sum2 / static_cast<double>(count), 1.0, 0.08);
}

TEST(Trace, FrequencySelectivityFollowsDelaySpread) {
  // With one tap the channel is flat across subcarriers; with many taps
  // adjacent subcarriers decorrelate.
  ch::TraceConfig flat;
  flat.nr = flat.nt = 2;
  flat.num_taps = 1;
  ch::TraceGenerator gf(flat, 5);
  const auto tf = gf.next();
  EXPECT_LT(CMat::max_abs_diff(tf.per_subcarrier[0], tf.per_subcarrier[32]),
            1e-12);

  ch::TraceConfig sel;
  sel.nr = sel.nt = 2;
  sel.num_taps = 8;
  sel.delay_spread_taps = 4.0;
  ch::TraceGenerator gs(sel, 5);
  const auto ts = gs.next();
  EXPECT_GT(CMat::max_abs_diff(ts.per_subcarrier[0], ts.per_subcarrier[32]),
            0.05);
}

TEST(Trace, ConditionNumberImprovesWithFewerUsers) {
  // The paper's Fig. 10 premise: fewer users than AP antennas -> better
  // conditioned channels (lower condition number).
  ch::TraceConfig full;
  full.nr = 8;
  full.nt = 8;
  ch::TraceConfig light = full;
  light.nt = 4;

  double cond_full = 0.0, cond_light = 0.0;
  ch::TraceGenerator gfull(full, 3), glight(light, 3);
  for (int p = 0; p < 10; ++p) {
    cond_full += flexcore::linalg::condition_number(gfull.next().per_subcarrier[0]);
    cond_light += flexcore::linalg::condition_number(glight.next().per_subcarrier[0]);
  }
  EXPECT_LT(cond_light, cond_full);
}

// ------------------------------------------------- SNR estimation accuracy
// The control plane steers path budgets from channel::estimated_snr_db, so
// its bias and variance are load-bearing: a biased estimate mis-sizes every
// cell's detector.

TEST(Estimation, SnrEstimateBiasBoundedAcrossSweep) {
  // Average estimated SNR must track the true SNR within 0.7 dB from 0 to
  // 20 dB (i.i.d. unit-variance Rayleigh entries, the estimator's nominal
  // channel).
  ch::Rng rng(901);
  const std::size_t nr = 8, nt = 4, repeats = 4, trials = 200;
  for (const double snr_db : {0.0, 5.0, 10.0, 15.0, 20.0}) {
    const double nv = ch::noise_var_for_snr_db(snr_db);
    double sum = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      const CMat h = ch::rayleigh_iid(nr, nt, rng);
      sum += ch::estimated_snr_db(ch::estimate_channel(h, nv, repeats, rng));
    }
    EXPECT_NEAR(sum / trials, snr_db, 0.7) << "snr " << snr_db;
  }
}

TEST(Estimation, SnrEstimateVarianceShrinksWithRepeats) {
  ch::Rng rng(902);
  const std::size_t nr = 8, nt = 4, trials = 300;
  const double snr_db = 10.0;
  const double nv = ch::noise_var_for_snr_db(snr_db);
  // One fixed channel: the spread measured is estimator noise, not channel
  // hardening across realizations.
  const CMat h = ch::rayleigh_iid(nr, nt, rng);
  auto variance_at = [&](std::size_t repeats) {
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      const double e =
          ch::estimated_snr_db(ch::estimate_channel(h, nv, repeats, rng));
      sum += e;
      sum2 += e * e;
    }
    const double mean = sum / trials;
    return sum2 / trials - mean * mean;
  };
  const double var1 = variance_at(1);
  const double var8 = variance_at(8);
  EXPECT_LT(var8, var1);
  // ~1/repeats scaling with slack for Monte-Carlo noise.
  EXPECT_LT(var8, var1 / 3.0);
  // And the single-shot estimator is already usable as a control input.
  EXPECT_LT(std::sqrt(var1), 2.0);
}

TEST(Estimation, SnrEstimateTracksPerUserDefinition) {
  // Doubling the user count at fixed noise must NOT move the per-user SNR
  // estimate (the policy models per-user symbol energy, not the sum over
  // users reaching the antenna).
  ch::Rng rng(903);
  const double nv = ch::noise_var_for_snr_db(12.0);
  const std::size_t trials = 150;
  auto mean_est = [&](std::size_t nt) {
    double sum = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      const CMat h = ch::rayleigh_iid(8, nt, rng);
      sum += ch::estimated_snr_db(ch::estimate_channel(h, nv, 4, rng));
    }
    return sum / trials;
  };
  EXPECT_NEAR(mean_est(2), mean_est(4), 0.5);
}

TEST(Estimation, SnrEstimateDegenerateInputsClamp) {
  ch::Rng rng(904);
  const CMat h = ch::rayleigh_iid(4, 2, rng);
  // Noiseless sounding: noise_var_hat ~ 0 -> the +60 dB ceiling, not inf.
  const auto perfect = ch::estimate_channel(h, 0.0, 2, rng);
  EXPECT_EQ(ch::estimated_snr_db(perfect), 60.0);
  // Hand-built degenerate estimates (a sounded zero channel only lands in
  // these regimes by noise-draw luck, so construct them directly):
  // measured power at/below the estimation-noise bias -> the -30 dB floor
  // instead of a negative-log blowup.
  ch::ChannelEstimate blind;
  blind.h_hat = CMat(4, 2);  // zero: all "signal" is bias
  blind.noise_var_hat = 5.0;
  blind.pilots_used = 2;  // repeats = 1
  EXPECT_EQ(ch::estimated_snr_db(blind), -30.0);
  // And a barely-positive signal far below the noise still clamps.
  blind.h_hat(0, 0) = ch::cplx{1e-14, 0.0};
  EXPECT_EQ(ch::estimated_snr_db(blind), -30.0);
}
