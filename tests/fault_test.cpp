// Tests for the fault-injection chaos layer: fault::Injector determinism
// (seeded decisions, windows, target filters, probability), the frame
// mutations (non-finite / finite-garbage / rank-deficient), the shard-side
// fail/stall verdicts, and api::ShardedRuntime's retry-then-bypass ladder
// under an always-hostile probe (bypass is the identity merge, so detection
// stays bit-identical to the monolithic path even with the fabric down).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "api/runtime.h"
#include "api/uplink_pipeline.h"
#include "channel/channel.h"
#include "fault/injector.h"
#include "frame_fixtures.h"
#include "shard/sharded_runtime.h"

namespace fa = flexcore::api;
namespace fd = flexcore::detect;
namespace ch = flexcore::channel;
namespace ff = flexcore::fault;
using flexcore::linalg::cplx;
using flexcore::modulation::Constellation;
using flexcore::testing::expect_bit_identical;
using flexcore::testing::Frame;
using flexcore::testing::job_of;
using flexcore::testing::make_frame;

namespace {

bool frame_has_non_finite(const Frame& fr) {
  for (const auto& h : fr.channels) {
    const cplx* d = h.data();
    for (std::size_t e = 0; e < h.rows() * h.cols(); ++e) {
      if (!std::isfinite(d[e].real()) || !std::isfinite(d[e].imag())) {
        return true;
      }
    }
  }
  for (const auto& y : fr.ys) {
    for (const cplx& z : y) {
      if (!std::isfinite(z.real()) || !std::isfinite(z.imag())) return true;
    }
  }
  return false;
}

std::vector<fd::DetectionResult> sync_reference(const std::string& spec,
                                                int qam, const Frame& fr,
                                                double noise_var) {
  fa::PipelineConfig cfg;
  cfg.detector = spec;
  cfg.qam_order = qam;
  cfg.threads = 1;
  fa::UplinkPipeline pipe(cfg);
  return pipe.detect_frame(job_of(fr, noise_var)).results;
}

}  // namespace

// ----------------------------------------------------------- decisions

TEST(Injector, DecisionsReplayExactlyFromTheSeed) {
  ff::FaultPlan plan;
  plan.seed = 0xfeedbeef;
  plan.rules.push_back({.kind = ff::FaultKind::kNonFinitePayload,
                        .probability = 0.3});
  plan.rules.push_back({.kind = ff::FaultKind::kCorruptPayload,
                        .probability = 0.2});
  ff::Injector a(plan), b(plan);

  std::size_t fired = 0;
  for (std::size_t cell = 0; cell < 4; ++cell) {
    for (std::uint64_t frame = 0; frame < 64; ++frame) {
      const ff::FaultRule* ra = a.decide_frame(cell, frame);
      const ff::FaultRule* rb = b.decide_frame(cell, frame);
      ASSERT_EQ(ra == nullptr, rb == nullptr)
          << "cell " << cell << " frame " << frame;
      if (ra != nullptr) {
        EXPECT_EQ(ra->kind, rb->kind);
        ++fired;
      }
    }
  }
  // ~0.44 combined rate over 256 trials: must fire often but not always.
  EXPECT_GT(fired, 40u);
  EXPECT_LT(fired, 220u);

  // A different seed decides differently somewhere.
  plan.seed = 0xfeedbeef + 1;
  ff::Injector c(plan);
  bool differs = false;
  for (std::uint64_t frame = 0; frame < 64 && !differs; ++frame) {
    differs = (a.decide_frame(0, frame) == nullptr) !=
              (c.decide_frame(0, frame) == nullptr);
  }
  EXPECT_TRUE(differs) << "the seed must steer the decisions";
}

TEST(Injector, WindowsProbabilityAndTargetFiltersGate) {
  ff::FaultPlan plan;
  plan.rules.push_back({.kind = ff::FaultKind::kNonFinitePayload,
                        .cell = 2,
                        .from_frame = 10,
                        .until_frame = 20,
                        .probability = 1.0});
  plan.rules.push_back({.kind = ff::FaultKind::kCorruptPayload,
                        .probability = 0.0});
  const ff::Injector inj(plan);

  for (std::uint64_t frame = 0; frame < 32; ++frame) {
    const bool in_window = frame >= 10 && frame < 20;
    // Only cell 2, only inside [10, 20); the p=0 rule never fires.
    EXPECT_EQ(inj.decide_frame(2, frame) != nullptr, in_window) << frame;
    EXPECT_EQ(inj.decide_frame(1, frame), nullptr) << frame;
  }
}

TEST(Injector, RuleOrderIsPriorityOrder) {
  ff::FaultPlan plan;
  plan.rules.push_back({.kind = ff::FaultKind::kRankDeficientChannel,
                        .probability = 1.0});
  plan.rules.push_back({.kind = ff::FaultKind::kNonFinitePayload,
                        .probability = 1.0});
  const ff::Injector inj(plan);
  const ff::FaultRule* r = inj.decide_frame(0, 0);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->kind, ff::FaultKind::kRankDeficientChannel)
      << "first matching rule must win";
}

// ----------------------------------------------------------- mutations

TEST(Injector, NonFiniteMutationsTripTheFullScan) {
  const Constellation qam(16);
  const double nv = 0.05;
  for (const ff::FaultKind kind : {ff::FaultKind::kNonFinitePayload,
                                   ff::FaultKind::kNonFiniteChannel}) {
    SCOPED_TRACE(ff::to_string(kind));
    ff::Injector inj({.seed = 7, .rules = {{.kind = kind}}});
    Frame fr = make_frame(qam, 4, 2, 6, 4, nv, 90);
    ASSERT_FALSE(frame_has_non_finite(fr));
    inj.apply(inj.plan().rules[0], 0, 0, fr);
    EXPECT_TRUE(frame_has_non_finite(fr));
    EXPECT_THROW(fa::validate_frame_job(job_of(fr, nv)), fa::NonFiniteError);
    EXPECT_EQ(inj.injected(kind), 1u);
  }
}

TEST(Injector, CorruptPayloadStaysFiniteButChanges) {
  const Constellation qam(16);
  const double nv = 0.05;
  ff::Injector inj(
      {.seed = 7, .rules = {{.kind = ff::FaultKind::kCorruptPayload}}});
  Frame fr = make_frame(qam, 4, 2, 6, 4, nv, 91);
  const Frame before = fr;
  inj.apply(inj.plan().rules[0], 0, 0, fr);

  EXPECT_FALSE(frame_has_non_finite(fr))
      << "corrupt payload must NOT trip the numeric guards";
  bool changed = false;
  for (std::size_t i = 0; i < fr.ys.size() && !changed; ++i) {
    for (std::size_t e = 0; e < fr.ys[i].size() && !changed; ++e) {
      changed = fr.ys[i][e] != before.ys[i][e];
    }
  }
  EXPECT_TRUE(changed);
  // Garbage detects to completion: the CRC's problem, not the runtime's.
  EXPECT_NO_THROW(fa::validate_frame_job(job_of(fr, nv)));
}

TEST(Injector, RankDeficientBurstDuplicatesChannelColumns) {
  const Constellation qam(16);
  ff::Injector inj(
      {.seed = 7, .rules = {{.kind = ff::FaultKind::kRankDeficientChannel}}});
  Frame fr = make_frame(qam, 8, 2, 6, 4, 0.05, 92);
  inj.apply(inj.plan().rules[0], 0, 0, fr);

  std::size_t collapsed = 0;
  for (const auto& h : fr.channels) {
    bool equal = true;
    for (std::size_t r = 0; r < h.rows() && equal; ++r) {
      equal = h.data()[r * h.cols() + 1] == h.data()[r * h.cols() + 0];
    }
    collapsed += equal;
  }
  EXPECT_GE(collapsed, 1u) << "at least one subcarrier must lose rank";
  EXPECT_LE(collapsed, 4u) << "the burst is bounded";
  EXPECT_FALSE(frame_has_non_finite(fr));
}

TEST(Injector, MutationSitesReplayExactly) {
  const Constellation qam(16);
  ff::Injector inj(
      {.seed = 13, .rules = {{.kind = ff::FaultKind::kNonFinitePayload}}});
  Frame a = make_frame(qam, 4, 2, 6, 4, 0.05, 93);
  Frame b = a;
  inj.apply(inj.plan().rules[0], 3, 17, a);
  inj.apply(inj.plan().rules[0], 3, 17, b);
  for (std::size_t i = 0; i < a.ys.size(); ++i) {
    for (std::size_t e = 0; e < a.ys[i].size(); ++e) {
      const bool na = !std::isfinite(a.ys[i][e].real()) ||
                      !std::isfinite(a.ys[i][e].imag());
      const bool nb = !std::isfinite(b.ys[i][e].real()) ||
                      !std::isfinite(b.ys[i][e].imag());
      EXPECT_EQ(na, nb) << "ys[" << i << "][" << e << "]";
    }
  }
}

// --------------------------------------------------------- shard verdicts

TEST(Injector, ShardVerdictsHonorTargetFiltersAndCount) {
  ff::FaultPlan plan;
  plan.rules.push_back(
      {.kind = ff::FaultKind::kShardFail, .shard = 1, .probability = 1.0});
  plan.rules.push_back({.kind = ff::FaultKind::kShardStall,
                        .probability = 1.0,
                        .stall_us = 250});
  ff::Injector inj(plan);

  const fa::ShardFaultAction on0 = inj.shard_action(0, 5);
  EXPECT_FALSE(on0.fail) << "the fail rule targets shard 1 only";
  EXPECT_EQ(on0.stall_us, 250u);
  const fa::ShardFaultAction on1 = inj.shard_action(1, 5);
  EXPECT_TRUE(on1.fail);
  EXPECT_EQ(on1.stall_us, 250u);

  EXPECT_EQ(inj.injected(ff::FaultKind::kShardFail), 1u);
  EXPECT_EQ(inj.injected(ff::FaultKind::kShardStall), 2u);
  EXPECT_EQ(inj.injected_total(), 3u);

  // The bound probe is the same verdict function.
  const fa::ShardFaultProbe probe = inj.shard_probe();
  const fa::ShardFaultAction via_probe = probe(1, 5);
  EXPECT_TRUE(via_probe.fail);
  EXPECT_EQ(via_probe.stall_us, 250u);
}

TEST(Injector, KindNamesAndCorruptionClasses) {
  for (std::size_t k = 0; k < ff::kFaultKindCount; ++k) {
    const auto kind = static_cast<ff::FaultKind>(k);
    EXPECT_STRNE(ff::to_string(kind), "?") << k;
  }
  EXPECT_TRUE(ff::corrupts_frame(ff::FaultKind::kNonFinitePayload));
  EXPECT_TRUE(ff::corrupts_frame(ff::FaultKind::kCorruptPayload));
  EXPECT_TRUE(ff::corrupts_frame(ff::FaultKind::kRankDeficientChannel));
  EXPECT_FALSE(ff::corrupts_frame(ff::FaultKind::kShardStall));
  EXPECT_FALSE(ff::corrupts_frame(ff::FaultKind::kSubmitStorm));
  EXPECT_FALSE(ff::corrupts_frame(ff::FaultKind::kNone));
}

// ------------------------------------------- retry-then-bypass ladder

TEST(ShardedRuntimeFaults, AllShardsDownFallsBackBitIdentical) {
  // Every prep attempt fails on every cluster: after the retry the fabric
  // is bypassed with the identity merge, so every frame still completes
  // kDone with results bit-identical to the monolithic pipeline.
  ff::Injector inj({.seed = 3,
                    .rules = {{.kind = ff::FaultKind::kShardFail,
                               .probability = 1.0}}});

  constexpr std::size_t kFrames = 3;
  const double nv = ch::noise_var_for_snr_db(14.0);
  std::vector<Frame> frames;
  std::vector<fa::FrameTicket> tickets;
  fa::ShardedRuntimeConfig scfg;
  scfg.shards = 2;
  scfg.threads_per_shard = 1;
  scfg.runtime.threads = 2;
  scfg.runtime.dispatchers = 1;
  fa::ShardedRuntime rt(scfg);
  rt.set_fault_probe(inj.shard_probe());
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-16", .qam_order = 16});
  for (std::size_t i = 0; i < kFrames; ++i) {
    frames.push_back(make_frame(cell.constellation(), 4, 3, 12, 4, nv,
                                600 + i));
  }
  for (std::size_t i = 0; i < kFrames; ++i) {
    tickets.push_back(rt.submit(cell, job_of(frames[i], nv)));
  }
  rt.drain();

  for (std::size_t i = 0; i < kFrames; ++i) {
    ASSERT_EQ(tickets[i].wait(), fa::TicketStatus::kDone) << "frame " << i;
    expect_bit_identical(tickets[i].try_get()->results,
                         sync_reference("flexcore-16", 16, frames[i], nv),
                         "bypassed frame");
  }

  const fa::RuntimeStats rs = rt.stats();
  EXPECT_EQ(rs.frames_out, kFrames);
  EXPECT_EQ(rs.shard_retries, kFrames) << "one retry per frame";
  EXPECT_EQ(rs.shard_bypasses, kFrames) << "then the bypass";
  std::uint64_t faults = 0;
  for (const fa::ShardStats& ss : rs.shards) faults += ss.faults;
  EXPECT_GE(faults, 2 * kFrames) << "both attempts fault on some cluster";
  EXPECT_GT(inj.injected(ff::FaultKind::kShardFail), 0u);
}

TEST(ShardedRuntimeFaults, TransientFaultHealsViaRetry) {
  // A genuinely TRANSIENT fault (fails the first attempt only — an
  // Injector verdict is a pure hash of (shard, frame), so it would fail
  // the retry too): the re-fan succeeds, no bypass, and detection matches
  // the clean sharded run bit for bit.
  std::atomic<int> hostile_calls{0};
  const fa::ShardFaultProbe transient =
      [&hostile_calls](std::size_t shard, std::uint64_t frame) {
        fa::ShardFaultAction act;
        act.fail = shard == 0 && frame == 0 && hostile_calls.fetch_add(1) == 0;
        return act;
      };

  const double nv = ch::noise_var_for_snr_db(14.0);
  fa::ShardedRuntimeConfig scfg;
  scfg.shards = 2;
  scfg.threads_per_shard = 1;
  scfg.runtime.threads = 1;
  scfg.runtime.dispatchers = 1;

  std::vector<Frame> frames;
  {
    const Constellation qam(16);
    for (std::size_t i = 0; i < 2; ++i) {
      frames.push_back(make_frame(qam, 4, 2, 12, 4, nv, 700 + i));
    }
  }

  auto run = [&](bool hostile) {
    fa::ShardedRuntime rt(scfg);
    if (hostile) rt.set_fault_probe(transient);
    fa::Cell& cell =
        rt.open_cell({.detector = "flexcore-16", .qam_order = 16});
    std::vector<fa::FrameTicket> tickets;
    for (const Frame& fr : frames) {
      tickets.push_back(rt.submit(cell, job_of(fr, nv)));
    }
    rt.drain();
    std::vector<std::vector<fd::DetectionResult>> out;
    for (auto& t : tickets) {
      EXPECT_EQ(t.wait(), fa::TicketStatus::kDone);
      out.push_back(t.try_get()->results);
    }
    const fa::RuntimeStats rs = rt.stats();
    EXPECT_EQ(rs.shard_retries, hostile ? 1u : 0u);
    EXPECT_EQ(rs.shard_bypasses, 0u) << "the retry must heal the frame";
    return out;
  };

  const auto clean = run(false);
  const auto healed = run(true);
  ASSERT_EQ(clean.size(), healed.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    expect_bit_identical(healed[i], clean[i], "healed frame");
  }
}

TEST(ShardedRuntimeFaults, StallPastBudgetBypassesInsteadOfHanging) {
  // A cluster sleeping far past the stall budget: submit abandons the
  // fan-out, reroutes merged-monolithic, and the ticket terminates kDone
  // bit-identical to the reference — frames outlive the runtime so the
  // stalled driver's borrowed spans stay valid (the documented contract).
  ff::Injector inj({.seed = 9,
                    .rules = {{.kind = ff::FaultKind::kShardStall,
                               .shard = 0,
                               .probability = 1.0,
                               .stall_us = 30'000}}});

  const double nv = ch::noise_var_for_snr_db(14.0);
  std::vector<Frame> frames;
  {
    const Constellation qam(16);
    for (std::size_t i = 0; i < 2; ++i) {
      frames.push_back(make_frame(qam, 3, 2, 12, 4, nv, 800 + i));
    }
  }

  std::vector<fa::FrameTicket> tickets;
  std::uint64_t bypasses = 0, frames_out = 0;
  {
    fa::ShardedRuntimeConfig scfg;
    scfg.shards = 2;
    scfg.threads_per_shard = 1;
    scfg.runtime.threads = 1;
    scfg.runtime.dispatchers = 1;
    scfg.shard_stall_budget_us = 1'000;
    fa::ShardedRuntime rt(scfg);
    rt.set_fault_probe(inj.shard_probe());
    fa::Cell& cell =
        rt.open_cell({.detector = "flexcore-16", .qam_order = 16});
    for (const Frame& fr : frames) {
      tickets.push_back(rt.submit(cell, job_of(fr, nv)));
    }
    rt.drain();
    const fa::RuntimeStats rs = rt.stats();
    bypasses = rs.shard_bypasses;
    frames_out = rs.frames_out;
  }  // destructor joins the stalled drivers

  EXPECT_EQ(frames_out, frames.size());
  EXPECT_EQ(bypasses, frames.size())
      << "every stalled frame must reroute, none may hang";
  for (std::size_t i = 0; i < frames.size(); ++i) {
    ASSERT_EQ(tickets[i].wait(), fa::TicketStatus::kDone);
    expect_bit_identical(tickets[i].try_get()->results,
                         sync_reference("flexcore-16", 16, frames[i], nv),
                         "stall-bypassed frame");
  }
  EXPECT_GT(inj.injected(ff::FaultKind::kShardStall), 0u);
}
