// Tests for the decentralized baseband layer: shard::plan_shards /
// shard::compute_partial / the partial-QR feedforward merge, and
// api::ShardedRuntime — merge equivalence against the monolithic QR
// (property-tested over random channels for all three detector families),
// the C=1 bit-identity bypass, rank-deficient clusters, and the per-shard
// RuntimeStats counters.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "api/runtime.h"
#include "api/uplink_pipeline.h"
#include "channel/channel.h"
#include "channel/rng.h"
#include "frame_fixtures.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "shard/partial_qr.h"
#include "shard/sharded_runtime.h"

namespace fa = flexcore::api;
namespace fd = flexcore::detect;
namespace ch = flexcore::channel;
namespace sh = flexcore::shard;
namespace la = flexcore::linalg;
using flexcore::linalg::CMat;
using flexcore::linalg::CVec;
using flexcore::linalg::cplx;
using flexcore::modulation::Constellation;
using flexcore::testing::expect_bit_identical;
using flexcore::testing::Frame;
using flexcore::testing::job_of;
using flexcore::testing::make_frame;

namespace {

/// Documented merge tolerance: the stack preserves the Gram exactly in
/// exact arithmetic; in floating point the two factorization orders differ
/// by rounding accumulated over at most B=16 rows — comfortably inside
/// 1e-8 for unit-variance Rayleigh entries.
constexpr double kMergeTol = 1e-8;

double max_abs(const CMat& a, const CMat& b) {
  return CMat::max_abs_diff(a, b);
}

double max_abs(const CVec& a, const CVec& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

CVec random_cvec(std::size_t n, ch::Rng& rng) {
  CVec v(n);
  for (auto& z : v) z = rng.cgaussian();
  return v;
}

}  // namespace

// ------------------------------------------------------------- plan_shards

TEST(PlanShards, BalancedContiguousAndClamped) {
  // 10 rows over 4 shards: sizes {3,3,2,2}, contiguous, covering [0,10).
  const auto plan = sh::plan_shards(10, 4);
  ASSERT_EQ(plan.size(), 4u);
  std::size_t begin = 0;
  for (std::size_t s = 0; s < plan.size(); ++s) {
    EXPECT_EQ(plan[s].begin, begin);
    EXPECT_GE(plan[s].count, 2u);
    EXPECT_LE(plan[s].count, 3u);
    begin += plan[s].count;
  }
  EXPECT_EQ(begin, 10u);
  EXPECT_EQ(plan[0].count + plan[1].count + plan[2].count + plan[3].count,
            10u);
  // Sizes differ by at most one and are non-increasing (extras lead).
  EXPECT_GE(plan.front().count, plan.back().count);

  // More shards than rows: clamp to one row per cluster.
  const auto thin = sh::plan_shards(3, 8);
  ASSERT_EQ(thin.size(), 3u);
  for (const auto& r : thin) EXPECT_EQ(r.count, 1u);

  // One shard spans everything.
  const auto mono = sh::plan_shards(7, 1);
  ASSERT_EQ(mono.size(), 1u);
  EXPECT_EQ(mono[0].begin, 0u);
  EXPECT_EQ(mono[0].count, 7u);

  EXPECT_THROW(sh::plan_shards(0, 2), std::invalid_argument);
  EXPECT_THROW(sh::plan_shards(4, 0), std::invalid_argument);
}

// --------------------------------------------------- C=1 bit-identity core

TEST(PartialQr, SingleClusterIsBitIdenticalToPlainQr) {
  ch::Rng rng(901);
  const CMat h = ch::rayleigh_iid(8, 4, rng);
  const CVec y = random_cvec(8, rng);

  // One cluster spanning all rows IS qr_mgs (tolerant path, full rank).
  const la::QrResult want = la::qr_mgs(h);
  const sh::PartialQr partial = sh::compute_partial(h.row_range(0, 8));
  EXPECT_EQ(max_abs(partial.q, want.Q), 0.0) << "C=1 Q must be bit-identical";
  EXPECT_EQ(max_abs(partial.r, want.R), 0.0) << "C=1 R must be bit-identical";

  const auto plan = sh::plan_shards(8, 1);
  const sh::MergedChannel merged = sh::merge_channel(h, y, plan);
  EXPECT_EQ(max_abs(merged.s, want.R), 0.0);
  CVec ybar(4);
  la::hermitian_mul_into(want.Q, y, ybar);
  EXPECT_EQ(max_abs(merged.z, ybar), 0.0) << "C=1 ybar must be bit-identical";
}

// ------------------------------------------- merge equivalence (property)

namespace {

/// One random instance: random Rayleigh H (b x nt) + random y, merged
/// under a c-cluster plan; checks Gram preservation and that both sorted
/// QR families derive the same ordering / R / rotated receive vector from
/// the stack as from H.
void check_merge_equivalence(std::size_t nt, std::size_t b, std::size_t c,
                             std::uint64_t seed) {
  SCOPED_TRACE("nt=" + std::to_string(nt) + " b=" + std::to_string(b) +
               " c=" + std::to_string(c) + " seed=" + std::to_string(seed));
  ch::Rng rng(seed);
  const CMat h = ch::rayleigh_iid(b, nt, rng);
  const CVec y = random_cvec(b, rng);
  const auto plan = sh::plan_shards(b, c);
  const sh::MergedChannel merged = sh::merge_channel(h, y, plan);

  ASSERT_EQ(merged.s.cols(), nt);
  ASSERT_EQ(merged.s.rows(), sh::merged_rows(plan, nt));
  ASSERT_LE(merged.s.rows(), b);

  // (1) Exact invariants of the feedforward merge: S^H S = H^H H and
  // S^H z = H^H y.
  EXPECT_LE(max_abs(merged.s.hermitian() * merged.s, h.hermitian() * h),
            kMergeTol);
  CVec shz(nt), hhy(nt);
  la::hermitian_mul_into(merged.s, merged.z, shz);
  la::hermitian_mul_into(h, y, hhy);
  EXPECT_LE(max_abs(shz, hhy), kMergeTol);

  // (2) Wübben SQRD: ordering is Gram-determined, so the stack yields the
  // same permutation, the same R, and the same rotated ybar.
  const la::QrResult wh = la::sorted_qr_wubben(h);
  const la::QrResult ws = la::sorted_qr_wubben(merged.s);
  EXPECT_EQ(ws.perm, wh.perm) << "SQRD ordering must survive the merge";
  EXPECT_LE(max_abs(ws.R, wh.R), kMergeTol);
  CVec ybar_h(nt), ybar_s(nt);
  la::hermitian_mul_into(wh.Q, y, ybar_h);
  la::hermitian_mul_into(ws.Q, merged.z, ybar_s);
  EXPECT_LE(max_abs(ybar_s, ybar_h), kMergeTol)
      << "detector-side ybar must survive the merge";

  // (3) FCSD ordering: also Gram-determined (noise amplification comes
  // from the Gram inverse).
  const std::size_t full_levels = nt >= 4 ? 2 : 1;
  const la::QrResult fh = la::fcsd_sorted_qr(h, full_levels);
  const la::QrResult fs = la::fcsd_sorted_qr(merged.s, full_levels);
  EXPECT_EQ(fs.perm, fh.perm) << "FCSD ordering must survive the merge";
  EXPECT_LE(max_abs(fs.R, fh.R), kMergeTol);
  la::hermitian_mul_into(fh.Q, y, ybar_h);
  la::hermitian_mul_into(fs.Q, merged.z, ybar_s);
  EXPECT_LE(max_abs(ybar_s, ybar_h), kMergeTol);
}

}  // namespace

TEST(PartialQr, MergeEquivalencePropertyOverRandomChannels) {
  // Antenna counts 2..16, cluster counts 1..4, thin clusters (rows < Nt,
  // pass-through), square channels, tall channels — three random seeds
  // each.
  const struct {
    std::size_t nt, b, c;
  } cases[] = {
      {2, 2, 2},   // thin clusters: pure pass-through
      {2, 5, 2},   {3, 7, 2},  {4, 8, 2},  {4, 8, 3},
      {4, 12, 4},  {5, 11, 3}, {8, 16, 2}, {8, 16, 4},
      {12, 16, 3},  // ragged: 6/5/5 rows, mixed compress/pass-through
      {16, 16, 2},  // square: both clusters thin
      {16, 16, 1},  // degenerate plan: single cluster
  };
  for (const auto& cs : cases) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      check_merge_equivalence(cs.nt, cs.b, cs.c, 1000 * cs.nt + 10 * cs.b +
                                                     cs.c + seed * 7919);
    }
  }
}

TEST(PartialQr, RankDeficientClusterMergesExactly) {
  // A cluster whose antenna-row submatrix is singular (duplicated rows)
  // while the FULL channel keeps full column rank: qr_mgs would throw on
  // the submatrix; the tolerant partial QR zeroes the dead direction and
  // the merge invariants still hold exactly.
  ch::Rng rng(77);
  CMat h = ch::rayleigh_iid(8, 4, rng);
  for (std::size_t c = 0; c < 4; ++c) {
    h(1, c) = h(0, c);  // rows 0,1 identical -> cluster [0,4) is rank 3
    h(2, c) = h(0, c) * cplx{2.0, 0.0};
  }
  const CVec y = random_cvec(8, rng);

  EXPECT_THROW(la::qr_mgs(h.row_range(0, 4)), std::runtime_error);
  const sh::PartialQr partial = sh::compute_partial(h.row_range(0, 4));
  // H_c = Q_c R_c still holds with the zeroed direction.
  const CMat recon = partial.q * partial.r;
  EXPECT_LE(max_abs(recon, h.row_range(0, 4).materialize()), 1e-12);

  const auto plan = sh::plan_shards(8, 2);
  const sh::MergedChannel merged = sh::merge_channel(h, y, plan);
  EXPECT_LE(max_abs(merged.s.hermitian() * merged.s, h.hermitian() * h),
            kMergeTol);
  const la::QrResult wh = la::sorted_qr_wubben(h);
  const la::QrResult ws = la::sorted_qr_wubben(merged.s);
  EXPECT_EQ(ws.perm, wh.perm);
  EXPECT_LE(max_abs(ws.R, wh.R), kMergeTol);
}

// --------------------------------- detector families on merged channels

TEST(PartialQr, DetectorFamiliesMatchOnMergedChannel) {
  // End to end per family: detection on (S, z) must produce the same
  // symbols as on (H, y), with metrics within the merge tolerance.
  const char* specs[] = {"flexcore-16", "a-flexcore-12", "fcsd-L1"};
  const double noise_var = ch::noise_var_for_snr_db(14.0);
  ch::Rng rng(555);
  const Constellation qam(16);
  const CMat h = ch::rayleigh_iid(12, 4, rng);
  const auto plan = sh::plan_shards(12, 3);

  // A batch of transmissions over h.
  constexpr std::size_t kVecs = 6;
  std::vector<CVec> ys, zs;
  CVec s(4);
  for (std::size_t t = 0; t < kVecs; ++t) {
    for (std::size_t u = 0; u < 4; ++u) {
      s[u] = qam.point(
          static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(16))));
    }
    ys.push_back(ch::transmit(h, s, noise_var, rng));
  }
  CMat merged_h;
  for (std::size_t t = 0; t < kVecs; ++t) {
    sh::MergedChannel m = sh::merge_channel(h, ys[t], plan);
    merged_h = std::move(m.s);  // identical every iteration (same H)
    zs.push_back(std::move(m.z));
  }

  for (const char* spec : specs) {
    SCOPED_TRACE(spec);
    fa::PipelineConfig cfg;
    cfg.detector = spec;
    cfg.qam_order = 16;
    cfg.threads = 1;
    fa::UplinkPipeline mono(cfg), sharded(cfg);
    mono.set_channel(h, noise_var);
    sharded.set_channel(merged_h, noise_var);
    const fd::BatchResult rm = mono.detect(ys);
    const fd::BatchResult rs = sharded.detect(zs);
    ASSERT_EQ(rm.results.size(), rs.results.size());
    for (std::size_t t = 0; t < rm.results.size(); ++t) {
      EXPECT_EQ(rs.results[t].symbols, rm.results[t].symbols)
          << "vector " << t;
      EXPECT_NEAR(rs.results[t].metric, rm.results[t].metric, 1e-6)
          << "vector " << t;
    }
  }
}

// ----------------------------------------------------- validation guards

TEST(FrameJobValidation, RejectsUnderDeterminedAndMismatchedAntennas) {
  const Constellation qam(16);
  const double nv = 0.05;

  // B < Nt: rejected at validation with a message naming the geometry,
  // not deep inside QR on a dispatcher thread.
  Frame thin = make_frame(qam, 2, 2, 4, 4, nv, 31);
  for (auto& c : thin.channels) c = CMat(3, 4);
  for (auto& y : thin.ys) y.resize(3);
  try {
    fa::validate_frame_job(job_of(thin, nv));
    FAIL() << "B < Nt must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("receive antennas"),
              std::string::npos)
        << e.what();
  }

  // Subcarriers disagreeing on the antenna count: named as such.
  Frame ragged = make_frame(qam, 2, 2, 6, 4, nv, 32);
  ragged.channels[1] = CMat(5, 4);
  try {
    fa::validate_frame_job(job_of(ragged, nv));
    FAIL() << "mismatched antenna counts must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("antenna"), std::string::npos)
        << e.what();
  }
}

// -------------------------------------------------------- ShardedRuntime

namespace {

std::vector<fd::DetectionResult> sync_reference(const std::string& spec,
                                                int qam, const Frame& fr,
                                                double noise_var) {
  fa::PipelineConfig cfg;
  cfg.detector = spec;
  cfg.qam_order = qam;
  cfg.threads = 1;
  fa::UplinkPipeline pipe(cfg);
  return pipe.detect_frame(job_of(fr, noise_var)).results;
}

}  // namespace

TEST(ShardedRuntime, SingleShardIsBitIdenticalToMonolithicRuntime) {
  // The C=1 bypass: the multi-cell FIFO/stress scenario of runtime_test,
  // run on a ShardedRuntime with one shard — every result bit-identical to
  // the synchronous reference (hence to the monolithic runtime, whose own
  // bit-identity the runtime suite pins).
  constexpr std::size_t kCells = 3;
  constexpr std::size_t kFramesPerCell = 4;
  const char* specs[kCells] = {"flexcore-8", "a-flexcore-12", "fcsd-L1"};

  fa::ShardedRuntimeConfig scfg;
  scfg.shards = 1;
  scfg.threads_per_shard = 1;
  scfg.runtime.threads = 3;
  scfg.runtime.dispatchers = 2;
  scfg.runtime.queue_capacity = 8;
  fa::ShardedRuntime rt(scfg);

  const double nv = ch::noise_var_for_snr_db(12.0);
  std::vector<fa::Cell*> cells;
  std::vector<std::vector<Frame>> frames(kCells);
  for (std::size_t cidx = 0; cidx < kCells; ++cidx) {
    cells.push_back(&rt.open_cell({.detector = specs[cidx], .qam_order = 16}));
    for (std::size_t i = 0; i < kFramesPerCell; ++i) {
      frames[cidx].push_back(make_frame(cells[cidx]->constellation(), 4, 3, 6,
                                        4, nv, 300 + 13 * cidx + i));
    }
  }

  std::vector<std::vector<fa::FrameTicket>> tickets(kCells);
  for (std::size_t i = 0; i < kFramesPerCell; ++i) {
    for (std::size_t cidx = 0; cidx < kCells; ++cidx) {
      tickets[cidx].push_back(
          rt.submit(*cells[cidx], job_of(frames[cidx][i], nv)));
    }
  }
  rt.drain();

  for (std::size_t cidx = 0; cidx < kCells; ++cidx) {
    for (std::size_t i = 0; i < kFramesPerCell; ++i) {
      ASSERT_EQ(tickets[cidx][i].wait(), fa::TicketStatus::kDone);
      EXPECT_EQ(tickets[cidx][i].sequence(), i) << "per-cell FIFO order";
      const fa::FrameResult* r = tickets[cidx][i].try_get();
      ASSERT_NE(r, nullptr);
      expect_bit_identical(
          r->results, sync_reference(specs[cidx], 16, frames[cidx][i], nv),
          specs[cidx]);
    }
  }

  const fa::RuntimeStats rs = rt.stats();
  EXPECT_EQ(rs.frames_out, kCells * kFramesPerCell);
  ASSERT_EQ(rs.shards.size(), 1u);
  EXPECT_EQ(rs.shards[0].frames, 0u)
      << "the C=1 bypass must never reach the shard stage";
}

TEST(ShardedRuntime, MultiShardMatchesMonolithicSymbolsAndCounters) {
  // C in {2, 4} against the monolithic runtime on the same frames: same
  // detected symbols, metrics within the merge tolerance, and per-shard
  // counters consistent with the tickets.
  const double nv = ch::noise_var_for_snr_db(14.0);
  constexpr std::size_t kFrames = 4;
  constexpr std::size_t kSc = 5;   // subcarriers
  constexpr std::size_t kB = 12;   // receive antennas
  constexpr std::size_t kNt = 4;

  for (std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));

    fa::RuntimeConfig mono_cfg;
    mono_cfg.threads = 2;
    mono_cfg.dispatchers = 1;
    fa::Runtime mono(mono_cfg);
    fa::Cell& mono_cell =
        mono.open_cell({.detector = "flexcore-16", .qam_order = 16});

    fa::ShardedRuntimeConfig scfg;
    scfg.shards = shards;
    scfg.threads_per_shard = 2;
    scfg.runtime = mono_cfg;
    fa::ShardedRuntime rt(scfg);
    fa::Cell& cell = rt.open_cell({.detector = "flexcore-16", .qam_order = 16});

    std::vector<Frame> frames;
    std::vector<fa::FrameTicket> mono_t, shard_t;
    for (std::size_t i = 0; i < kFrames; ++i) {
      frames.push_back(
          make_frame(cell.constellation(), kSc, 3, kB, kNt, nv, 400 + i));
    }
    for (std::size_t i = 0; i < kFrames; ++i) {
      mono_t.push_back(mono.submit(mono_cell, job_of(frames[i], nv)));
      shard_t.push_back(rt.submit(cell, job_of(frames[i], nv)));
    }
    mono.drain();
    rt.drain();

    for (std::size_t i = 0; i < kFrames; ++i) {
      ASSERT_EQ(mono_t[i].wait(), fa::TicketStatus::kDone);
      ASSERT_EQ(shard_t[i].wait(), fa::TicketStatus::kDone);
      const auto& rm = mono_t[i].try_get()->results;
      const auto& rs = shard_t[i].try_get()->results;
      ASSERT_EQ(rm.size(), rs.size());
      for (std::size_t v = 0; v < rm.size(); ++v) {
        EXPECT_EQ(rs[v].symbols, rm[v].symbols)
            << "frame " << i << " vector " << v;
        EXPECT_NEAR(rs[v].metric, rm[v].metric, 1e-6)
            << "frame " << i << " vector " << v;
      }
    }

    // Per-shard counters: every shard saw every sharded frame once, all
    // subcarriers; the clusters partition the B antenna rows.
    const fa::RuntimeStats rs = rt.stats();
    ASSERT_EQ(rs.shards.size(), shards);
    std::uint64_t rows_total = 0;
    for (const fa::ShardStats& ss : rs.shards) {
      EXPECT_EQ(ss.frames, kFrames) << "shard " << ss.shard_id;
      EXPECT_EQ(ss.partials, kFrames * kSc) << "shard " << ss.shard_id;
      EXPECT_EQ(ss.threads, 2u);
      rows_total += ss.rows_processed;
    }
    EXPECT_EQ(rows_total, kFrames * kSc * kB)
        << "clusters must partition the antenna rows exactly";
    EXPECT_EQ(rs.frames_in, kFrames);
    EXPECT_EQ(rs.frames_out, kFrames);
  }
}

TEST(ShardedRuntime, PollModeAndDeadlinesComposeWithShardStage) {
  // dispatchers == 0: the shard stage runs in submit, detection is pumped
  // by run_one(); a generous deadline survives the shard-stage deduction.
  fa::ShardedRuntimeConfig scfg;
  scfg.shards = 2;
  scfg.threads_per_shard = 1;
  scfg.runtime.threads = 1;
  scfg.runtime.dispatchers = 0;
  scfg.runtime.queue_capacity = 4;
  scfg.runtime.policy = fa::QueuePolicy::kDeadlineExpire;
  fa::ShardedRuntime rt(scfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  const double nv = 0.05;
  const Frame fr = make_frame(cell.constellation(), 3, 2, 8, 4, nv, 510);

  fa::FrameTicket ok =
      rt.submit(cell, job_of(fr, nv), /*deadline_us=*/60'000'000);
  ASSERT_TRUE(rt.run_one());
  EXPECT_FALSE(rt.run_one());
  EXPECT_EQ(ok.wait(), fa::TicketStatus::kDone);

  const fa::RuntimeStats rs = rt.stats();
  ASSERT_EQ(rs.shards.size(), 2u);
  EXPECT_EQ(rs.shards[0].frames, 1u);
  EXPECT_EQ(rs.shards[1].frames, 1u);
  EXPECT_EQ(rs.frames_out, 1u);
}

TEST(ShardedRuntime, ValidatesJobsBeforeTheShardStage) {
  fa::ShardedRuntimeConfig scfg;
  scfg.shards = 2;
  scfg.runtime.dispatchers = 0;
  fa::ShardedRuntime rt(scfg);
  fa::Cell& cell = rt.open_cell({.detector = "flexcore-8", .qam_order = 16});
  const Frame fr = make_frame(cell.constellation(), 2, 2, 6, 4, 0.05, 520);

  fa::FrameJob bad = job_of(fr, 0.05);
  bad.vectors_per_channel = 3;
  EXPECT_THROW(rt.submit(cell, bad), std::invalid_argument);
  const fa::RuntimeStats rs = rt.stats();
  EXPECT_EQ(rs.frames_in, 0u);
  for (const fa::ShardStats& ss : rs.shards) {
    EXPECT_EQ(ss.frames, 0u) << "rejected jobs must not touch the fabric";
  }
}
