// Tests for the flight-recorder observability subsystem (src/obs/): span
// ring wraparound and ordering, frame sampling, counter snapshots, the
// Chrome trace export, the per-stage latency histograms of api::Runtime /
// api::ShardedRuntime (and their consistency with latency_count), the
// control-plane decision events and the LatencyHistogram extensions.
//
// The obs state is process-global; every test starts from reset_for_test.
// These tests require FLEXCORE_OBS=2 (the default) — at lower levels the
// span assertions would vacuously fail, so the whole file gates on kLevel.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/runtime.h"
#include "control/feedback.h"
#include "frame_fixtures.h"
#include "obs/obs.h"
#include "obs/trace_export.h"
#include "shard/sharded_runtime.h"

namespace fa = flexcore::api;
namespace fc = flexcore::control;
namespace obs = flexcore::obs;
using flexcore::modulation::Constellation;
using flexcore::testing::Frame;
using flexcore::testing::job_of;
using flexcore::testing::make_frame;

namespace {

#if FLEXCORE_OBS >= 2

obs::ObsConfig traced(std::uint32_t sample_every = 1,
                      std::size_t ring_capacity = 1024) {
  obs::ObsConfig cfg;
  cfg.sample_every = sample_every;
  cfg.ring_capacity = ring_capacity;
  return cfg;
}

std::vector<obs::SpanRecord> spans_of(const obs::TraceSnapshot& snap,
                                      obs::Stage stage) {
  std::vector<obs::SpanRecord> out;
  for (const obs::SpanRecord& s : snap.spans) {
    if (s.stage == stage) out.push_back(s);
  }
  return out;
}

TEST(ObsRing, RetainsMostRecentAcrossWraparoundSorted) {
  obs::reset_for_test(traced(1, 8));  // tiny ring: 8 slots
  obs::set_thread_track("writer");
  const obs::TraceCtx ctx = obs::begin_frame(0);
  ASSERT_TRUE(ctx.sampled);
  // 20 spans through an 8-slot ring: only the last 8 survive, in time
  // order after the drain's sort.
  for (std::uint64_t i = 0; i < 20; ++i) {
    obs::record_span(obs::Stage::kPathGrid, 1000 * i, 1000 * i + 500, ctx,
                     static_cast<std::uint32_t>(i));
  }
  const obs::TraceSnapshot snap = obs::drain_spans();
  ASSERT_EQ(snap.spans.size(), 8u);
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    EXPECT_EQ(snap.spans[i].aux, 12 + i) << "span " << i;
    EXPECT_EQ(snap.spans[i].t0_ns, 1000 * (12 + i));
    if (i > 0) {
      EXPECT_GE(snap.spans[i].t0_ns, snap.spans[i - 1].t0_ns);
    }
  }
  const obs::MetricsSnapshot ms = obs::metrics_snapshot();
  EXPECT_EQ(ms.spans_recorded, 20u);
  EXPECT_EQ(ms.spans_retained, 8u);
}

TEST(ObsRing, SamplingSelectsEveryNthFrame) {
  obs::reset_for_test(traced(3));
  std::size_t sampled = 0;
  std::uint64_t last_id = 0;
  for (int i = 0; i < 9; ++i) {
    const obs::TraceCtx ctx = obs::begin_frame(7);
    EXPECT_TRUE(ctx.decided);
    EXPECT_EQ(ctx.cell, 7u);
    EXPECT_GT(ctx.id, last_id);  // ids keep counting, sampled or not
    last_id = ctx.id;
    if (ctx.sampled) ++sampled;
  }
  EXPECT_EQ(sampled, 3u);
  // sample_every == 0 turns span recording off entirely.
  obs::reset_for_test(traced(0));
  EXPECT_FALSE(obs::tracing_enabled());
  EXPECT_FALSE(obs::begin_frame(0).sampled);
}

TEST(ObsRing, CrossThreadDrainCollectsEveryTrack) {
  obs::reset_for_test(traced(1, 64));
  obs::set_thread_track("main");
  const obs::TraceCtx ctx = obs::begin_frame(0);
  obs::record_span(obs::Stage::kSubmit, 10, 20, ctx);
  std::thread a([&] {
    obs::set_thread_track("aux0");
    obs::record_span(obs::Stage::kPreprocess, 30, 40, ctx);
  });
  std::thread b([&] {
    obs::set_thread_track("aux1");
    obs::record_span(obs::Stage::kPathGrid, 50, 60, ctx);
  });
  a.join();
  b.join();
  const obs::TraceSnapshot snap = obs::drain_spans();
  ASSERT_EQ(snap.spans.size(), 3u);
  std::set<std::string> seen;
  for (const obs::SpanRecord& s : snap.spans) {
    ASSERT_LT(s.track, snap.tracks.size());
    seen.insert(snap.tracks[s.track]);
  }
  EXPECT_EQ(seen, (std::set<std::string>{"main", "aux0", "aux1"}));
}

TEST(ObsMetrics, CountersAndTextJsonRendering) {
  obs::reset_for_test(traced(0));
  obs::counter_add(obs::Counter::kFramesSubmitted, 5);
  obs::counter_add(obs::Counter::kSicFallbacks, 2);
  obs::shed_ladder_rung(0);
  obs::shed_ladder_rung(1);
  obs::shed_ladder_rung(obs::kMaxLadderRungs + 100);  // folds to last rung
  const obs::MetricsSnapshot ms = obs::metrics_snapshot();
  EXPECT_EQ(
      ms.counters[static_cast<std::size_t>(obs::Counter::kFramesSubmitted)],
      5u);
  EXPECT_EQ(ms.counters[static_cast<std::size_t>(obs::Counter::kSicFallbacks)],
            2u);
  EXPECT_EQ(ms.shed_per_rung[0], 1u);
  EXPECT_EQ(ms.shed_per_rung[1], 1u);
  EXPECT_EQ(ms.shed_per_rung[obs::kMaxLadderRungs - 1], 1u);
  const std::string text = obs::metrics_to_text(ms);
  EXPECT_NE(text.find("obs_frames_submitted 5"), std::string::npos) << text;
  EXPECT_NE(text.find("obs_sic_fallbacks 2"), std::string::npos) << text;
  EXPECT_NE(text.find("rung=\"0\""), std::string::npos) << text;
  const std::string json = obs::metrics_to_json(ms);
  EXPECT_NE(json.find("\"frames_submitted\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shed_per_rung\""), std::string::npos) << json;
}

TEST(ObsMetrics, FaultAndDegradationCountersRender) {
  // The robustness counters (quarantine, shard degradation ladder,
  // watchdog, injector) flow through the same snapshot/JSON path as the
  // steady-state ones — scrapers see fault events without new plumbing.
  obs::reset_for_test(traced(0));
  obs::counter_add(obs::Counter::kFramesQuarantined, 3);
  obs::counter_add(obs::Counter::kShardRetries, 2);
  obs::counter_add(obs::Counter::kShardBypasses);
  obs::counter_add(obs::Counter::kWatchdogTransitions, 4);
  obs::counter_add(obs::Counter::kFaultsInjected, 7);

  const obs::MetricsSnapshot ms = obs::metrics_snapshot();
  EXPECT_EQ(
      ms.counters[static_cast<std::size_t>(obs::Counter::kFramesQuarantined)],
      3u);
  EXPECT_EQ(
      ms.counters[static_cast<std::size_t>(obs::Counter::kFaultsInjected)],
      7u);
  const std::string json = obs::metrics_to_json(ms);
  EXPECT_NE(json.find("\"frames_quarantined\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shard_retries\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shard_bypasses\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"watchdog_transitions\": 4"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"faults_injected\": 7"), std::string::npos) << json;
  const std::string text = obs::metrics_to_text(ms);
  EXPECT_NE(text.find("obs_frames_quarantined 3"), std::string::npos) << text;
  EXPECT_NE(text.find("obs_faults_injected 7"), std::string::npos) << text;
}

TEST(ObsExport, ChromeTraceIsWellFormed) {
  obs::reset_for_test(traced(1, 64));
  obs::set_thread_track("driver");
  const obs::TraceCtx ctx = obs::begin_frame(3);
  const std::uint64_t t0 = obs::now_ns();
  obs::record_span(obs::Stage::kPathGrid, t0, t0 + 1000, ctx, 9);
  obs::record_instant(obs::Stage::kControl, t0 + 100, ctx,
                      static_cast<std::uint32_t>(obs::ControlReason::kSnr));
  const std::string json = obs::chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"driver\""), std::string::npos);
  EXPECT_NE(json.find("\"path-grid\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"snr\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity; the deep
  // validation lives in trace_dump --self-test and the CI smoke job.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ObsRuntime, StageHistogramsMatchLatencyCountPollMode) {
  obs::reset_for_test(traced(1, 4096));
  Constellation qam(4);
  const Frame fr = make_frame(qam, 4, 2, 4, 4, 0.05, 77);

  fa::RuntimeConfig rcfg;
  rcfg.dispatchers = 0;  // poll mode: deterministic single-thread drain
  fa::Runtime rt(rcfg);
  fa::CellConfig ccfg;
  ccfg.detector = "flexcore-4";
  ccfg.qam_order = 4;
  fa::Cell& cell = rt.open_cell(ccfg);

  constexpr std::size_t kFrames = 6;
  std::vector<fa::FrameTicket> tickets;
  for (std::size_t i = 0; i < kFrames; ++i) {
    tickets.push_back(rt.submit(cell, job_of(fr, 0.05)));
    while (rt.run_one()) {
    }
  }
  rt.drain();
  for (auto& t : tickets) EXPECT_EQ(t.wait(), fa::TicketStatus::kDone);

  const fa::RuntimeStats rs = rt.stats();
  EXPECT_EQ(rs.latency_count, kFrames);
  // Every dispatch-side stage records exactly one sample per kDone frame.
  for (const obs::Stage stage :
       {obs::Stage::kQueueWait, obs::Stage::kPreprocess,
        obs::Stage::kPathGrid, obs::Stage::kReconstruct,
        obs::Stage::kComplete}) {
    EXPECT_EQ(rs.stage(stage).count(), rs.latency_count)
        << obs::to_string(stage);
  }
  // kComplete is the whole frame: its mean cannot undercut any sub-stage.
  EXPECT_GE(rs.stage(obs::Stage::kComplete).mean_us(),
            rs.stage(obs::Stage::kPathGrid).mean_us());

  // Counters: every frame submitted and completed, none shed.
  const obs::MetricsSnapshot ms = obs::metrics_snapshot();
  EXPECT_EQ(
      ms.counters[static_cast<std::size_t>(obs::Counter::kFramesSubmitted)],
      kFrames);
  EXPECT_EQ(
      ms.counters[static_cast<std::size_t>(obs::Counter::kFramesCompleted)],
      kFrames);
  const std::uint64_t hits = ms.counters[static_cast<std::size_t>(
      obs::Counter::kPreprocReuseHits)];
  const std::uint64_t misses = ms.counters[static_cast<std::size_t>(
      obs::Counter::kPreprocReuseMisses)];
  EXPECT_EQ(hits + misses, kFrames);

  // Every frame was sampled: the poll-mode drain must have recorded the
  // dispatch-side spans for all of them, deterministically.
  const obs::TraceSnapshot snap = obs::drain_spans();
  EXPECT_EQ(spans_of(snap, obs::Stage::kQueueWait).size(), kFrames);
  EXPECT_EQ(spans_of(snap, obs::Stage::kComplete).size(), kFrames);
  EXPECT_EQ(spans_of(snap, obs::Stage::kPathGrid).size(), kFrames);
  const auto submits = spans_of(snap, obs::Stage::kSubmit);
  EXPECT_EQ(submits.size(), kFrames);
  // Frame ids are the begin_frame sequence: distinct and increasing.
  std::set<std::uint64_t> ids;
  for (const obs::SpanRecord& s : submits) ids.insert(s.frame_id);
  EXPECT_EQ(ids.size(), kFrames);
}

TEST(ObsRuntime, ReusePolicyFeedsReuseCounters) {
  obs::reset_for_test(traced(0));
  Constellation qam(4);
  const Frame fr = make_frame(qam, 3, 2, 4, 4, 0.05, 78);

  fa::RuntimeConfig rcfg;
  rcfg.dispatchers = 0;
  fa::Runtime rt(rcfg);
  fa::CellConfig ccfg;
  ccfg.detector = "flexcore-4";
  ccfg.qam_order = 4;
  ccfg.reuse_preprocessing = true;  // coherence policy: reuse after warmup
  fa::Cell& cell = rt.open_cell(ccfg);

  for (int i = 0; i < 4; ++i) {
    fa::FrameTicket t = rt.submit(cell, job_of(fr, 0.05));
    while (rt.run_one()) {
    }
    EXPECT_EQ(t.wait(), fa::TicketStatus::kDone);
  }
  const obs::MetricsSnapshot ms = obs::metrics_snapshot();
  // First frame preprocesses (miss), the next three reuse (hits).
  EXPECT_EQ(ms.counters[static_cast<std::size_t>(
                obs::Counter::kPreprocReuseMisses)],
            1u);
  EXPECT_EQ(
      ms.counters[static_cast<std::size_t>(obs::Counter::kPreprocReuseHits)],
      3u);
  // Reuse hits still record (zero-cost) preprocess samples: stage counts
  // keep matching latency_count.
  const fa::RuntimeStats rs = rt.stats();
  EXPECT_EQ(rs.stage(obs::Stage::kPreprocess).count(), rs.latency_count);
}

TEST(ObsSharded, PerShardTracksAndMergeCounters) {
  obs::reset_for_test(traced(1, 4096));
  Constellation qam(4);
  // Tall frame: 8 antennas, 2 streams -> 2 effective shards.
  const Frame fr = make_frame(qam, 4, 2, 8, 2, 0.05, 79);

  constexpr std::size_t kShards = 2;
  constexpr std::size_t kFrames = 3;
  {
    fa::ShardedRuntimeConfig scfg;
    scfg.shards = kShards;
    scfg.threads_per_shard = 1;
    scfg.runtime.dispatchers = 1;
    fa::ShardedRuntime rt(scfg);
    fa::CellConfig ccfg;
    ccfg.detector = "flexcore-4";
    ccfg.qam_order = 4;
    fa::Cell& cell = rt.open_cell(ccfg);
    for (std::size_t i = 0; i < kFrames; ++i) {
      EXPECT_EQ(rt.submit(cell, job_of(fr, 0.05)).wait(),
                fa::TicketStatus::kDone);
    }
    const fa::RuntimeStats rs = rt.stats();
    // The submit-side shard-stage histogram is merged into the snapshot.
    EXPECT_EQ(rs.stage(obs::Stage::kShardPartialQr).count(), kFrames);
  }  // destroy the runtime: every recording thread has quiesced

  const obs::MetricsSnapshot ms = obs::metrics_snapshot();
  EXPECT_EQ(ms.counters[static_cast<std::size_t>(
                obs::Counter::kShardMergeFanins)],
            kFrames * kShards);

  const obs::TraceSnapshot snap = obs::drain_spans();
  const auto qr_spans = spans_of(snap, obs::Stage::kShardPartialQr);
  // Per frame: one whole-stage span (submitter track) + one per cluster.
  EXPECT_EQ(qr_spans.size(), kFrames * (1 + kShards));
  std::set<std::string> shard_tracks;
  for (const obs::SpanRecord& s : qr_spans) {
    ASSERT_LT(s.track, snap.tracks.size());
    const std::string& name = snap.tracks[s.track];
    if (name.rfind("shard", 0) == 0) shard_tracks.insert(name);
  }
  EXPECT_EQ(shard_tracks, (std::set<std::string>{"shard0", "shard1"}));
}

TEST(ObsControl, DecisionsBumpCountersAndShedRungs) {
  obs::reset_for_test(traced(1, 64));
  obs::set_thread_track("control");
  Constellation qam(16);
  fc::ControlConfig cfg;
  cfg.degrade_after = 2;
  fc::FeedbackLoop loop(qam, 4, cfg);

  fc::Observation good;
  good.snr_db_estimate = 18.0;
  ASSERT_TRUE(loop.observe(good).has_value());  // "init"

  // Saturated queue: occupancy 1.0 >= load_high.  A halving step whose
  // spec comes out unchanged emits nothing (and bumps nothing) — but the
  // ladder's precision/family rungs always change the spec, so walking the
  // whole ladder guarantees emitted load-degrade decisions.
  fc::Observation pressured = good;
  pressured.queue_depth = 8;
  pressured.queue_capacity = 8;
  std::vector<fc::Decision> degrades;
  for (int i = 0; i < 40 && degrades.size() < 2; ++i) {
    const auto d = loop.observe(pressured);
    if (d && std::string(d->reason) == "load-degrade") {
      degrades.push_back(*d);
    }
  }
  ASSERT_GE(degrades.size(), 2u);

  const obs::MetricsSnapshot ms = obs::metrics_snapshot();
  EXPECT_EQ(ms.counters[static_cast<std::size_t>(
                obs::Counter::kControlDecisions)],
            1 + degrades.size());
  // Each emitted degrade at ladder step s sheds on rung s-1.
  for (const fc::Decision& d : degrades) {
    const std::size_t rung =
        std::min(d.degrade_step - 1, obs::kMaxLadderRungs - 1);
    EXPECT_EQ(ms.shed_per_rung[rung], 1u) << "step " << d.degrade_step;
  }

  // Every decision is an instant kControl event with its trigger in aux.
  const obs::TraceSnapshot snap = obs::drain_spans();
  const auto events = spans_of(snap, obs::Stage::kControl);
  ASSERT_EQ(events.size(), 1 + degrades.size());
  EXPECT_TRUE(events.front().instant);
  EXPECT_EQ(events.front().aux,
            static_cast<std::uint32_t>(obs::ControlReason::kInit));
  EXPECT_EQ(events.back().aux,
            static_cast<std::uint32_t>(obs::ControlReason::kLoadDegrade));
}

#endif  // FLEXCORE_OBS >= 2

TEST(LatencyHistogramExt, MergeAddsBucketwise) {
  fa::LatencyHistogram a, b;
  a.record(3.0);
  a.record(100.0);
  b.record(3.5);
  b.record(1e12);  // far past every edge: lands in the open last bucket
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  const auto& buckets = a.buckets();
  EXPECT_EQ(buckets[fa::LatencyHistogram::bucket_of(3.0)], 2u);
  EXPECT_EQ(buckets[fa::LatencyHistogram::bucket_of(100.0)], 1u);
  EXPECT_EQ(buckets[fa::LatencyHistogram::kBuckets - 1], 1u);
  EXPECT_NEAR(a.mean_us(), (3.0 + 100.0 + 3.5 + 1e12) / 4.0, 1.0);
}

TEST(LatencyHistogramExt, InterpolatedQuantilesBracketConservative) {
  fa::LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(10.0);  // all in [8, 16)
  // Conservative answer pins the bucket's upper edge; the interpolated one
  // walks inside the bucket and never exceeds it.
  EXPECT_DOUBLE_EQ(h.quantile_us(0.5), 16.0);
  const double p50 = h.quantile_interp_us(0.5);
  EXPECT_GT(p50, 8.0);
  EXPECT_LE(p50, 16.0);
  EXPECT_LT(p50, h.quantile_interp_us(0.99));
  // Empty histogram: both report 0.
  fa::LatencyHistogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile_us(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile_interp_us(0.5), 0.0);
}

}  // namespace
