// Tests for the FPGA cost model, LTE timing model and fixed-point layer.
#include <gtest/gtest.h>

#include <cmath>

#include "perfmodel/fixed_point.h"
#include "perfmodel/fpga_model.h"
#include "perfmodel/lte_model.h"

namespace pm = flexcore::perfmodel;

// -------------------------------------------------------------- FPGA model

TEST(FpgaModel, Table3ValuesExposed) {
  const auto flex8 = pm::paper_pe_resource(pm::EngineKind::kFlexCore, 8);
  EXPECT_EQ(flex8.logic_luts, 3206);
  EXPECT_EQ(flex8.dsp48, 16);
  EXPECT_NEAR(flex8.fmax_mhz, 312.5, 1e-9);
  const auto fcsd12 = pm::paper_pe_resource(pm::EngineKind::kFcsd, 12);
  EXPECT_EQ(fcsd12.clb_slices, 10501);
  EXPECT_NEAR(fcsd12.power_w, 9.04, 1e-9);
  EXPECT_THROW(pm::paper_pe_resource(pm::EngineKind::kFlexCore, 16),
               std::invalid_argument);
}

TEST(FpgaModel, AreaDelayOverheadMatchesPaperRatios) {
  // Table 3 caption: FlexCore's path increases area-delay product by ~73.7%
  // (Nt=8) and ~57.8% (Nt=12) over the FCSD.
  const double r8 =
      pm::area_delay_product(pm::paper_pe_resource(pm::EngineKind::kFlexCore, 8)) /
      pm::area_delay_product(pm::paper_pe_resource(pm::EngineKind::kFcsd, 8));
  const double r12 =
      pm::area_delay_product(pm::paper_pe_resource(pm::EngineKind::kFlexCore, 12)) /
      pm::area_delay_product(pm::paper_pe_resource(pm::EngineKind::kFcsd, 12));
  EXPECT_NEAR(r8, 1.737, 0.05);
  EXPECT_NEAR(r12, 1.578, 0.05);
}

TEST(FpgaModel, ThroughputMatchesPaperSpotChecks) {
  // §5.3: at 5.5 ns (181.8 MHz) and M = 32 PEs, FlexCore reaches 13.09 Gbps
  // for 32 paths and 3.27 Gbps for 128 paths (12x12, 64-QAM).
  const double clock = 1000.0 / 5.5;  // MHz
  EXPECT_NEAR(pm::processing_throughput_bps(12, 64, clock, 32, 32) / 1e9,
              13.09, 0.02);
  EXPECT_NEAR(pm::processing_throughput_bps(12, 64, clock, 128, 32) / 1e9,
              3.27, 0.01);
}

TEST(FpgaModel, ThroughputScalesWithPes) {
  const double t1 = pm::processing_throughput_bps(8, 64, 300.0, 64, 1);
  const double t64 = pm::processing_throughput_bps(8, 64, 300.0, 64, 64);
  EXPECT_NEAR(t64 / t1, 64.0, 1e-9);
  EXPECT_EQ(pm::processing_throughput_bps(8, 64, 300.0, 64, 0), 0.0);
}

TEST(FpgaModel, EnergyPerBitFlatWhilePathsDivideEvenly) {
  // J/bit = M * P * ceil(paths/M) / (bits * f): constant when M divides the
  // path count, rising slightly on ragged splits.
  const auto pe = pm::paper_pe_resource(pm::EngineKind::kFlexCore, 12);
  const double clock = 1000.0 / 5.5;
  const double e1 = pm::energy_per_bit(pe, clock, 64, 128, 1);
  const double e2 = pm::energy_per_bit(pe, clock, 64, 128, 2);
  const double e128 = pm::energy_per_bit(pe, clock, 64, 128, 128);
  EXPECT_NEAR(e1, e2, 1e-12);
  EXPECT_NEAR(e1, e128, 1e-12);
  // Ragged: M = 96 -> ceil(128/96) = 2 cycles for 96 PEs -> worse J/bit.
  EXPECT_GT(pm::energy_per_bit(pe, clock, 64, 128, 96), e1);
}

TEST(FpgaModel, FcsdNeedsMoreEnergyForSameNetworkThroughput) {
  // Fig. 13's conclusion: under equal network-throughput requirements
  // (FlexCore 128 paths vs FCSD 4096 paths for 12x12 64-QAM at
  // PER_ML = 0.01), the FCSD spends far more J/bit.
  const auto flex = pm::paper_pe_resource(pm::EngineKind::kFlexCore, 12);
  const auto fcsd = pm::paper_pe_resource(pm::EngineKind::kFcsd, 12);
  const double clock = 1000.0 / 5.5;
  const double e_flex = pm::energy_per_bit(flex, clock, 64, 128, 32);
  const double e_fcsd = pm::energy_per_bit(fcsd, clock, 64, 4096, 32);
  EXPECT_GT(e_fcsd / e_flex, 10.0);
  EXPECT_LT(e_fcsd / e_flex, 40.0);  // paper reports up to 28.8x
}

TEST(FpgaModel, MaxInstantiablePesRespectsBudgets) {
  const auto pe = pm::paper_pe_resource(pm::EngineKind::kFlexCore, 12);
  const std::size_t m = pm::max_instantiable_pes(pe);
  EXPECT_GE(m, 1u);
  // LUT-bound: 0.75 * 1266720 / (5795 + 28810) ~ 27.
  EXPECT_NEAR(static_cast<double>(m), 27.0, 2.0);
  // A tiny device still yields at least one PE.
  pm::DeviceCaps tiny;
  tiny.luts = 100;
  tiny.dsp48 = 1;
  EXPECT_EQ(pm::max_instantiable_pes(pe, tiny), 1u);
}

// --------------------------------------------------------------- LTE model

TEST(LteModel, ModeTableSane) {
  EXPECT_EQ(pm::kLteModes.size(), 6u);
  EXPECT_EQ(pm::kLteModes.front().occupied_subcarriers, 76u);
  EXPECT_EQ(pm::kLteModes.back().occupied_subcarriers, 1200u);
  for (std::size_t i = 1; i < pm::kLteModes.size(); ++i) {
    EXPECT_GT(pm::kLteModes[i].occupied_subcarriers,
              pm::kLteModes[i - 1].occupied_subcarriers);
  }
}

TEST(LteModel, VectorsPerSlot) {
  EXPECT_EQ(pm::vectors_per_slot(pm::kLteModes[0]), 7u * 76u);
  EXPECT_EQ(pm::vectors_per_slot(pm::kLteModes[5]), 7u * 1200u);
}

TEST(LteModel, SupportedPathsShrinkWithBandwidth) {
  const double rate = 2e9;  // paths/second
  std::size_t prev = SIZE_MAX;
  for (const auto& mode : pm::kLteModes) {
    const std::size_t paths = pm::supported_paths(rate, mode);
    EXPECT_LT(paths, prev);
    prev = paths;
  }
  // Spot value: 2e9 * 500e-6 / (7 * 1200) = 119 paths at 20 MHz.
  EXPECT_EQ(pm::supported_paths(rate, pm::kLteModes[5]), 119u);
}

TEST(LteModel, FcsdFeasibilityLevels) {
  // Budget that affords 64..4095 paths at 1.25 MHz -> L = 1 only.
  const auto& narrow = pm::kLteModes[0];
  const double rate_l1 =
      65.0 * static_cast<double>(pm::vectors_per_slot(narrow)) / pm::kSlotSeconds;
  EXPECT_EQ(pm::fcsd_supported_level(rate_l1, narrow, 64), 1);
  // Tiny budget: not even L = 1.
  EXPECT_EQ(pm::fcsd_supported_level(1e3, narrow, 64), -1);
  // Huge budget: L = 2 (max_level caps the search).
  EXPECT_EQ(pm::fcsd_supported_level(1e12, narrow, 64), 2);
}

// ------------------------------------------------------------- fixed point

TEST(FixedPoint, RoundTripAccuracy) {
  using F = pm::Fixed<16, 11>;
  for (double v : {0.0, 1.0, -1.0, 0.123, -3.999, 7.5}) {
    EXPECT_NEAR(F::from_double(v).to_double(), v, 1.0 / F::kScale)
        << "v=" << v;
  }
}

TEST(FixedPoint, SaturatesInsteadOfWrapping) {
  using F = pm::Fixed<16, 11>;
  const F big = F::from_double(100.0);  // beyond the 16-bit Q-range
  EXPECT_NEAR(big.to_double(), static_cast<double>(F::kMax) / F::kScale, 1e-9);
  const F sum = big + big;
  EXPECT_NEAR(sum.to_double(), big.to_double(), 1e-3);
  const F neg = F::from_double(-100.0);
  EXPECT_NEAR(neg.to_double(), static_cast<double>(F::kMin) / F::kScale, 1e-9);
}

TEST(FixedPoint, ArithmeticMatchesDoubleWithinQuantum) {
  using F = pm::Fixed<16, 11>;
  const double a = 1.375, b = -2.25;
  EXPECT_NEAR((F::from_double(a) + F::from_double(b)).to_double(), a + b, 2.0 / F::kScale);
  EXPECT_NEAR((F::from_double(a) - F::from_double(b)).to_double(), a - b, 2.0 / F::kScale);
  EXPECT_NEAR((F::from_double(a) * F::from_double(b)).to_double(), a * b, 4.0 / F::kScale);
}

TEST(FixedPoint, ComplexPedMatchesDouble) {
  // The FPGA's l2-norm unit (Fig. 7) in 16-bit fixed point must track the
  // double-precision PED within quantization error.
  using FC = pm::FixedComplex<16, 11>;
  const flexcore::linalg::cplx b{0.83, -0.41}, rx{0.5, 0.25};
  const auto fb = FC::from_cplx(b), frx = FC::from_cplx(rx);
  const auto diff = fb - frx;
  const double got = diff.abs2().to_double();
  const double want = flexcore::linalg::abs2(b - rx);
  EXPECT_NEAR(got, want, 0.01);
}

TEST(FixedPoint, ComplexMultiplyMatchesDouble) {
  using FC = pm::FixedComplex<16, 11>;
  const flexcore::linalg::cplx a{1.2, -0.7}, b{-0.4, 0.9};
  const auto got = (FC::from_cplx(a) * FC::from_cplx(b)).to_cplx();
  const auto want = a * b;
  EXPECT_NEAR(got.real(), want.real(), 0.01);
  EXPECT_NEAR(got.imag(), want.imag(), 0.01);
}
