// Property-based sweeps: randomized invariants checked across many seeds
// and parameters (TEST_P / INSTANTIATE_TEST_SUITE_P style, per the project
// testing conventions).
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <set>

#include "api/detector_registry.h"
#include "channel/channel.h"
#include "channel/trace.h"
#include "coding/convolutional.h"
#include "core/flexcore_detector.h"
#include "core/preprocessing.h"
#include "detect/exhaustive.h"
#include "linalg/qr.h"
#include "linalg/solve.h"
#include "linalg/svd.h"
#include "perfmodel/fixed_point.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace fl = flexcore::linalg;
namespace pm = flexcore::perfmodel;
using flexcore::modulation::Constellation;

// ------------------------------------------------------------ linalg sweeps

class QrPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QrPropertySweep, AllDecompositionsReconstruct) {
  ch::Rng rng(GetParam());
  const std::size_t nt = 2 + GetParam() % 11;  // 2..12
  const fl::CMat h = ch::rayleigh_iid(nt + GetParam() % 3, nt, rng);

  struct Variant {
    const char* name;
    fl::QrResult qr;
  };
  const Variant variants[] = {
      {"mgs", fl::qr_mgs(h)},
      {"householder", fl::qr_householder(h)},
      {"wubben", fl::sorted_qr_wubben(h)},
      {"fcsd", fl::fcsd_sorted_qr(h, 1 + GetParam() % nt)},
  };
  for (const auto& v : variants) {
    // Q orthonormal.
    EXPECT_LT(fl::CMat::max_abs_diff(v.qr.Q.hermitian() * v.qr.Q,
                                     fl::CMat::identity(nt)),
              1e-9)
        << v.name;
    // Reconstruction of the permuted channel.
    fl::CMat hp(h.rows(), nt);
    for (std::size_t j = 0; j < nt; ++j) hp.set_col(j, h.col(v.qr.perm[j]));
    EXPECT_LT(fl::CMat::max_abs_diff(v.qr.Q * v.qr.R, hp), 1e-9) << v.name;
    // Permutation validity.
    std::set<std::size_t> seen(v.qr.perm.begin(), v.qr.perm.end());
    EXPECT_EQ(seen.size(), nt) << v.name;
    // Unitary invariance of singular values.
    const fl::RVec sh = fl::singular_values(h);
    const fl::RVec sr = fl::singular_values(v.qr.R);
    for (std::size_t i = 0; i < nt; ++i) {
      EXPECT_NEAR(sh[i], sr[i], 1e-7) << v.name;
    }
  }
}

TEST_P(QrPropertySweep, InverseSolvesRandomSystems) {
  ch::Rng rng(GetParam() * 7 + 1);
  const std::size_t n = 1 + GetParam() % 12;
  const fl::CMat a = ch::rayleigh_iid(n, n, rng);
  const fl::CVec b = ch::awgn(n, 1.0, rng);
  const fl::CVec x = fl::solve(a, b);
  const fl::CVec ax = a * x;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(ax[i] - b[i]), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QrPropertySweep, ::testing::Range<std::uint64_t>(0, 16));

// ----------------------------------------------- position-vector bijection

class BijectionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BijectionSweep, AllPositionVectorsWithExactOrderingAreML) {
  // For any channel and observation, the |Q|^Nt position vectors map
  // bijectively onto tree leaves, so exhaustive FlexCore == exhaustive ML.
  Constellation c(4);
  ch::Rng rng(GetParam() * 13 + 5);
  const std::size_t nt = 2 + GetParam() % 2;  // 2..3
  const fl::CMat h = ch::rayleigh_iid(nt, nt, rng);
  const double nv = 0.15;

  fa::DetectorConfig acfg{.constellation = &c};
  acfg.flexcore.num_pes = 1;
  while (static_cast<double>(acfg.flexcore.num_pes) <
         std::pow(4.0, static_cast<double>(nt))) {
    acfg.flexcore.num_pes *= 4;
  }
  acfg.flexcore.ordering = fc::OrderingMode::kExactSort;
  acfg.flexcore.candidate_list_cap = 1u << 20;
  const auto det = fa::make_detector("flexcore", acfg);
  det->set_channel(h, nv);

  fl::CVec s(nt);
  for (std::size_t u = 0; u < nt; ++u) {
    s[u] = c.point(static_cast<int>(rng.uniform_int(4)));
  }
  const fl::CVec y = ch::transmit(h, s, nv, rng);
  const auto flex = det->detect(y);
  const auto ml = fd::exhaustive_ml(c, h, y);
  EXPECT_EQ(flex.symbols, ml.symbols);
  EXPECT_NEAR(flex.metric, ml.metric, 1e-9);
}

TEST_P(BijectionSweep, PreprocessingCoversDistinctLeavesExactly) {
  // With exact ordering every selected position vector resolves to a
  // distinct symbol vector (ties have measure zero).
  Constellation c(16);
  ch::Rng rng(GetParam() * 31 + 2);
  const fl::CMat h = ch::rayleigh_iid(4, 4, rng);
  fa::DetectorConfig acfg{.constellation = &c};
  acfg.flexcore.num_pes = 32;
  acfg.flexcore.ordering = fc::OrderingMode::kExactSort;
  const auto det =
      fa::make_detector_as<fc::FlexCoreDetector>("flexcore", acfg);
  det->set_channel(h, 0.05);
  fl::CVec s(4, c.point(0));
  const fl::CVec y = ch::transmit(h, s, 0.05, rng);
  const fl::CVec ybar = det->rotate(y);

  std::set<std::vector<int>> leaves;
  for (std::size_t p = 0; p < det->active_paths(); ++p) {
    const auto ev = det->evaluate_path(ybar, p);
    ASSERT_TRUE(ev.valid);  // exact ordering never deactivates for k <= |Q|
    EXPECT_TRUE(leaves.insert(ev.symbols).second)
        << "two position vectors resolved to the same leaf";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BijectionSweep, ::testing::Range<std::uint64_t>(0, 10));

// --------------------------------------------------------------- model sums

class ModelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelSweep, PathProbabilitiesFormSubDistribution) {
  // Sum over any path subset is < 1, and the full-budget sum approaches
  // 1 - prod_l Pe(l)^|Q| from below.
  Constellation c(16);
  ch::Rng rng(GetParam() + 100);
  const fl::CMat h = ch::rayleigh_iid(6, 6, rng);
  const auto qr = fl::sorted_qr_wubben(h);
  fc::PreprocessingConfig cfg;
  cfg.num_paths = 256;
  const double nv = 0.02 + 0.2 * rng.uniform();
  const auto res = fc::find_most_promising_paths(qr.R, nv, c, cfg);
  EXPECT_GT(res.pc_sum, 0.0);
  EXPECT_LT(res.pc_sum, 1.0);
  for (const auto& rp : res.paths) {
    EXPECT_GT(rp.pc, 0.0);
    EXPECT_LE(rp.pc, res.paths.front().pc);
  }
}

TEST_P(ModelSweep, DedupRuleNeverProducesDuplicates) {
  Constellation c(64);
  ch::Rng rng(GetParam() + 200);
  const fl::CMat h = ch::rayleigh_iid(8, 8, rng);
  const auto qr = fl::sorted_qr_wubben(h);
  fc::PreprocessingConfig cfg;
  cfg.num_paths = 64 + GetParam() * 16;
  const auto res = fc::find_most_promising_paths(qr.R, 0.05, c, cfg);
  std::set<fc::PositionVector> seen;
  for (const auto& rp : res.paths) {
    EXPECT_TRUE(seen.insert(rp.p).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelSweep, ::testing::Range<std::uint64_t>(0, 8));

// -------------------------------------------------------------- LUT sweeps

class LutSweep : public ::testing::TestWithParam<int> {};

TEST_P(LutSweep, KOneAlwaysEqualsSlice) {
  Constellation c(GetParam());
  fc::OrderingLut lut(c);
  ch::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int t = 0; t < 500; ++t) {
    // Any point, including far outside the constellation.
    const fl::cplx z{rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)};
    const int k1 = lut.kth_symbol(z, 1);
    if (k1 >= 0) {
      EXPECT_EQ(k1, c.slice(z));
    } else {
      // Deactivation at k=1 only happens when the slicer center itself is
      // off-grid (point beyond the outermost row/column).
      const int ci = c.unbounded_axis_index(z.real());
      const int cq = c.unbounded_axis_index(z.imag());
      EXPECT_FALSE(c.axes_in_range(ci, cq));
    }
  }
}

TEST_P(LutSweep, SkipPolicyEnumeratesEverySymbolForInteriorPoints) {
  Constellation c(GetParam());
  fc::OrderingLut lut(c);
  const fl::cplx z{0.1 * c.scale(), -0.2 * c.scale()};  // central
  std::set<int> seen;
  for (int k = 1; k <= c.order(); ++k) {
    const int sym = lut.kth_symbol(z, k, fc::InvalidEntryPolicy::kSkipToValid);
    if (sym >= 0) seen.insert(sym);
  }
  // A central point sees (nearly) the whole constellation; allow the tail
  // entries beyond the LUT's |Q| window to be missed.
  EXPECT_GE(static_cast<int>(seen.size()), c.order() * 3 / 4);
}

INSTANTIATE_TEST_SUITE_P(Orders, LutSweep, ::testing::Values(4, 16, 64, 256));

// ------------------------------------------------------------ coding sweeps

class ViterbiSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ViterbiSweep, SingleBitErrorAnywhereIsAlwaysCorrected) {
  ch::Rng rng(GetParam() + 300);
  flexcore::coding::BitVec info(64);
  for (auto& b : info) b = rng.bit();
  const auto coded = flexcore::coding::conv_encode(info);
  // Flip one bit at a pseudo-random position per seed, all positions
  // covered across the sweep via stride sampling.
  for (std::size_t pos = GetParam(); pos < coded.size(); pos += 8) {
    auto corrupted = coded;
    corrupted[pos] ^= 1;
    EXPECT_EQ(flexcore::coding::viterbi_decode(corrupted), info)
        << "pos=" << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, ViterbiSweep, ::testing::Range<std::uint64_t>(0, 8));

// --------------------------------------------------------- fixed point sweep

class FixedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FixedSweep, QuantizationErrorBounded) {
  using F = pm::Fixed<16, 11>;
  std::mt19937_64 gen(GetParam());
  std::uniform_real_distribution<double> u(-15.0, 15.0);
  for (int t = 0; t < 200; ++t) {
    const double v = u(gen);
    EXPECT_NEAR(F::from_double(v).to_double(), v, 0.5 / F::kScale + 1e-12);
  }
}

TEST_P(FixedSweep, ComplexProductErrorBounded) {
  using FC = pm::FixedComplex<16, 11>;
  std::mt19937_64 gen(GetParam() + 50);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  for (int t = 0; t < 200; ++t) {
    const fl::cplx a{u(gen), u(gen)}, b{u(gen), u(gen)};
    const fl::cplx got = (FC::from_cplx(a) * FC::from_cplx(b)).to_cplx();
    const fl::cplx want = a * b;
    EXPECT_LT(std::abs(got - want), 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedSweep, ::testing::Range<std::uint64_t>(0, 6));

// -------------------------------------------------------- channel stationarity

class ChannelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelSweep, TraceEnergyIndependentOfConfigKnobs) {
  ch::TraceConfig cfg;
  cfg.nr = 4 + GetParam() % 4;
  cfg.nt = 4;
  cfg.num_taps = 1 + GetParam() % 8;
  cfg.rx_correlation = 0.1 * static_cast<double>(GetParam() % 8);
  ch::TraceGenerator gen(cfg, GetParam() + 400);
  double power = 0.0;
  std::size_t count = 0;
  for (int p = 0; p < 25; ++p) {
    const auto trace = gen.next();
    for (const auto& h : trace.per_subcarrier) {
      power += h.frobenius_norm() * h.frobenius_norm();
      count += h.rows() * h.cols();
    }
  }
  EXPECT_NEAR(power / static_cast<double>(count), 1.0, 0.15)
      << "taps=" << cfg.num_taps << " rho=" << cfg.rx_correlation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelSweep, ::testing::Range<std::uint64_t>(0, 8));
