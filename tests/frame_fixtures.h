// Shared fixtures for the frame-level and runtime test suites: the
// synthetic frame builders live in the library (src/sim/frame_synth.h, the
// same workload the benches measure); this header only aliases them into
// the test namespace and adds the gtest bit-identity assertion the frame
// contract is stated in.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "detect/detector.h"
#include "sim/frame_synth.h"

namespace flexcore::testing {

using Frame = sim::SynthFrame;

inline Frame make_frame(const modulation::Constellation& c, std::size_t nsc,
                        std::size_t nv, std::size_t nr, std::size_t nt,
                        double noise_var, std::uint64_t seed) {
  return sim::synth_frame(c, nsc, nv, nr, nt, noise_var, seed);
}

inline api::FrameJob job_of(const Frame& fr, double noise_var) {
  return sim::frame_job_of(fr, noise_var);
}

/// The frame contract's equality: same symbols AND bit-identical metrics.
inline void expect_bit_identical(
    const std::vector<detect::DetectionResult>& got,
    const std::vector<detect::DetectionResult>& want, const char* what = "") {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t v = 0; v < got.size(); ++v) {
    EXPECT_EQ(got[v].symbols, want[v].symbols) << what << " vector " << v;
    EXPECT_DOUBLE_EQ(got[v].metric, want[v].metric)
        << what << " vector " << v;
  }
}

}  // namespace flexcore::testing
