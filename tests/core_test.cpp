// Tests for FlexCore's pre-processing, ordering LUT and detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "api/detector_registry.h"
#include "channel/channel.h"
#include "core/flexcore_detector.h"
#include "core/ordering_lut.h"
#include "core/preprocessing.h"
#include "detect/exhaustive.h"
#include "detect/fcsd.h"
#include "detect/sic.h"
#include "linalg/qr.h"

namespace fa = flexcore::api;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace ch = flexcore::channel;
namespace fm = flexcore::modulation;
using flexcore::linalg::CMat;
using flexcore::linalg::CVec;
using flexcore::linalg::cplx;
using fm::Constellation;

namespace {

CMat random_channel(std::size_t nr, std::size_t nt, std::uint64_t seed) {
  ch::Rng rng(seed);
  return ch::rayleigh_iid(nr, nt, rng);
}

std::string key_of(const fc::PositionVector& p) {
  std::string k;
  for (int v : p) {
    k += std::to_string(v);
    k += ',';
  }
  return k;
}

}  // namespace

// ----------------------------------------------------------- preprocessing

TEST(Preprocessing, FirstPathIsAllOnes) {
  Constellation c(16);
  const CMat h = random_channel(8, 8, 1);
  const auto qr = flexcore::linalg::sorted_qr_wubben(h);
  fc::PreprocessingConfig cfg;
  cfg.num_paths = 32;
  const auto res = fc::find_most_promising_paths(qr.R, 0.1, c, cfg);
  ASSERT_FALSE(res.paths.empty());
  for (int v : res.paths.front().p) EXPECT_EQ(v, 1);
}

TEST(Preprocessing, PathsAreUniqueAndDescending) {
  Constellation c(64);
  const CMat h = random_channel(12, 12, 2);
  const auto qr = flexcore::linalg::sorted_qr_wubben(h);
  fc::PreprocessingConfig cfg;
  cfg.num_paths = 256;
  const auto res = fc::find_most_promising_paths(qr.R, 0.2, c, cfg);
  EXPECT_EQ(res.paths.size(), 256u);

  std::set<std::string> seen;
  double prev = 2.0;
  for (const auto& rp : res.paths) {
    EXPECT_TRUE(seen.insert(key_of(rp.p)).second) << "duplicate " << key_of(rp.p);
    EXPECT_LE(rp.pc, prev + 1e-15) << "not descending";
    prev = rp.pc;
    for (int v : rp.p) {
      EXPECT_GE(v, 1);
      EXPECT_LE(v, 64);
    }
  }
}

TEST(Preprocessing, PcValuesMatchModel) {
  Constellation c(16);
  const CMat h = random_channel(4, 4, 3);
  const auto qr = flexcore::linalg::sorted_qr_wubben(h);
  fc::PreprocessingConfig cfg;
  cfg.num_paths = 64;
  const auto res = fc::find_most_promising_paths(qr.R, 0.15, c, cfg);
  for (const auto& rp : res.paths) {
    double pc = 1.0;
    for (std::size_t l = 0; l < rp.p.size(); ++l) {
      pc *= (1.0 - res.pe[l]) * std::pow(res.pe[l], rp.p[l] - 1);
    }
    EXPECT_NEAR(rp.pc, pc, 1e-12 + 1e-9 * pc);
  }
}

class PreprocessingExhaustive
    : public ::testing::TestWithParam<fm::PeModel> {};

TEST_P(PreprocessingExhaustive, MatchesExhaustiveRanking) {
  Constellation c(4);
  const CMat h = random_channel(3, 3, 4);
  const auto qr = flexcore::linalg::sorted_qr_wubben(h);
  fc::PreprocessingConfig cfg;
  cfg.num_paths = 20;
  cfg.pe_model = GetParam();
  cfg.candidate_list_cap = 100000;  // unbounded frontier -> exact best-first
  const auto res = fc::find_most_promising_paths(qr.R, 0.3, c, cfg);
  const auto want = fc::rank_paths_exhaustive(res.pe, 4, 3, 20);
  ASSERT_EQ(res.paths.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(res.paths[i].pc, want[i].pc, 1e-12)
        << "rank " << i << ": got " << key_of(res.paths[i].p) << " want "
        << key_of(want[i].p);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPeModels, PreprocessingExhaustive,
                         ::testing::Values(fm::PeModel::kPaperErfc,
                                           fm::PeModel::kExactSer,
                                           fm::PeModel::kRayleighCalibrated));

TEST(Preprocessing, TrimmedFrontierCloseToExact) {
  // The paper's bounded candidate list (|L| <= N_PE) is a heuristic; verify
  // it stays close to the unbounded best-first search.
  Constellation c(16);
  const CMat h = random_channel(8, 8, 5);
  const auto qr = flexcore::linalg::sorted_qr_wubben(h);

  fc::PreprocessingConfig paper;
  paper.num_paths = 64;
  fc::PreprocessingConfig exact = paper;
  exact.candidate_list_cap = 1000000;

  const auto rp = fc::find_most_promising_paths(qr.R, 0.2, c, paper);
  const auto re = fc::find_most_promising_paths(qr.R, 0.2, c, exact);

  std::set<std::string> sp, se;
  for (const auto& x : rp.paths) sp.insert(key_of(x.p));
  for (const auto& x : re.paths) se.insert(key_of(x.p));
  std::size_t common = 0;
  for (const auto& k : sp) common += se.count(k);
  EXPECT_GE(common, 58u) << "bounded list diverged from exact best-first";
  EXPECT_GE(rp.pc_sum, 0.95 * re.pc_sum);
}

TEST(Preprocessing, StopThresholdLimitsPaths) {
  Constellation c(16);
  const CMat h = random_channel(8, 8, 6);
  const auto qr = flexcore::linalg::sorted_qr_wubben(h);
  // Clean channel: very few paths reach 95% cumulative probability.
  fc::PreprocessingConfig cfg;
  cfg.num_paths = 64;
  cfg.stop_threshold = 0.95;
  const auto clean = fc::find_most_promising_paths(qr.R, 1e-4, c, cfg);
  EXPECT_LT(clean.paths.size(), 8u);
  EXPECT_GE(clean.pc_sum, 0.95);

  const auto noisy = fc::find_most_promising_paths(qr.R, 0.5, c, cfg);
  EXPECT_GT(noisy.paths.size(), clean.paths.size());
}

TEST(Preprocessing, MultiplicationBudgetRespected) {
  // Worst case from §3.1.1: N_PE * Nt multiplications (+ Nt-1 for the root).
  Constellation c(64);
  const CMat h = random_channel(12, 12, 7);
  const auto qr = flexcore::linalg::sorted_qr_wubben(h);
  for (std::size_t npe : {32u, 128u, 512u}) {
    fc::PreprocessingConfig cfg;
    cfg.num_paths = npe;
    const auto res = fc::find_most_promising_paths(qr.R, 0.2, c, cfg);
    EXPECT_LE(res.real_mults, npe * 12 + 11) << "npe=" << npe;
    EXPECT_GT(res.real_mults, 0u);
  }
}

TEST(Preprocessing, SmallConstellationExhaustsAllPaths) {
  Constellation c(4);
  const CMat h = random_channel(2, 2, 8);
  const auto qr = flexcore::linalg::sorted_qr_wubben(h);
  fc::PreprocessingConfig cfg;
  cfg.num_paths = 1000;  // > 4^2 = 16 total paths
  const auto res = fc::find_most_promising_paths(qr.R, 0.3, c, cfg);
  EXPECT_EQ(res.paths.size(), 16u);
  EXPECT_NEAR(res.pc_sum, res.paths.size() ? res.pc_sum : 0.0, 0.0);
  // All 16 position vectors must be covered.
  std::set<std::string> seen;
  for (const auto& rp : res.paths) seen.insert(key_of(rp.p));
  EXPECT_EQ(seen.size(), 16u);
}

TEST(Preprocessing, BatchedExpansionMatchesSequentialClosely) {
  // §3.1.1: parallel expansion is loss-free while N_PE / batch >= 10.
  Constellation c(64);
  const CMat h = random_channel(12, 12, 9);
  const auto qr = flexcore::linalg::sorted_qr_wubben(h);
  fc::PreprocessingConfig seq;
  seq.num_paths = 128;
  fc::PreprocessingConfig par = seq;
  par.batch_expand = 12;  // 128 / 12 > 10

  const auto rs = fc::find_most_promising_paths(qr.R, 0.25, c, seq);
  const auto rp = fc::find_most_promising_paths(qr.R, 0.25, c, par);
  std::set<std::string> ss, sp;
  for (const auto& x : rs.paths) ss.insert(key_of(x.p));
  for (const auto& x : rp.paths) sp.insert(key_of(x.p));
  std::size_t common = 0;
  for (const auto& k : ss) common += sp.count(k);
  EXPECT_GE(common, 115u);  // ~90% overlap
  EXPECT_GE(rp.pc_sum, 0.95 * rs.pc_sum);
}

TEST(Preprocessing, ZeroPathsThrows) {
  Constellation c(4);
  const CMat h = random_channel(2, 2, 10);
  const auto qr = flexcore::linalg::sorted_qr_wubben(h);
  fc::PreprocessingConfig cfg;
  cfg.num_paths = 0;
  EXPECT_THROW(fc::find_most_promising_paths(qr.R, 0.1, c, cfg),
               std::invalid_argument);
}

// ------------------------------------------------------------ ordering LUT

class OrderingLutTest : public ::testing::TestWithParam<int> {};

TEST_P(OrderingLutTest, FirstEntryIsTheSlicerCenter) {
  Constellation c(GetParam());
  fc::OrderingLut lut(c);
  ASSERT_FALSE(lut.base_order().empty());
  EXPECT_EQ(lut.base_order()[0].di, 0);
  EXPECT_EQ(lut.base_order()[0].dq, 0);
}

TEST_P(OrderingLutTest, KOneMatchesSliceInsideGrid) {
  Constellation c(GetParam());
  fc::OrderingLut lut(c);
  ch::Rng rng(11);
  for (int t = 0; t < 300; ++t) {
    // Stay strictly inside the constellation hull so the slicer square
    // center is a real symbol.
    const double span = c.pam_level(c.side() - 1);
    const cplx z{rng.uniform(-span, span), rng.uniform(-span, span)};
    EXPECT_EQ(lut.kth_symbol(z, 1), c.slice(z));
  }
}

TEST_P(OrderingLutTest, ValidEntriesAreDistinct) {
  Constellation c(GetParam());
  fc::OrderingLut lut(c);
  ch::Rng rng(12);
  for (int t = 0; t < 50; ++t) {
    const double span = c.pam_level(c.side() - 1) * 1.4;  // partly outside
    const cplx z{rng.uniform(-span, span), rng.uniform(-span, span)};
    std::set<int> seen;
    for (int k = 1; k <= c.order(); ++k) {
      const int sym = lut.kth_symbol(z, k);
      if (sym >= 0) {
        EXPECT_TRUE(seen.insert(sym).second)
            << "k=" << k << " duplicated symbol " << sym;
      }
    }
  }
}

TEST_P(OrderingLutTest, SkipPolicyAlwaysYieldsValidDistinctSymbols) {
  Constellation c(GetParam());
  fc::OrderingLut lut(c);
  ch::Rng rng(13);
  for (int t = 0; t < 50; ++t) {
    const double span = c.pam_level(c.side() - 1) * 2.0;
    const cplx z{rng.uniform(-span, span), rng.uniform(-span, span)};
    std::set<int> seen;
    int k = 1;
    for (; k <= c.order(); ++k) {
      const int sym = lut.kth_symbol(z, k, fc::InvalidEntryPolicy::kSkipToValid);
      if (sym < 0) break;  // ran out of in-range entries
      EXPECT_TRUE(seen.insert(sym).second);
    }
    EXPECT_GE(static_cast<int>(seen.size()), 1);
  }
}

TEST_P(OrderingLutTest, ApproximatesExactOrderNearTheCenter) {
  // Sample residuals within the slicer square of an interior symbol, where
  // every LUT entry addresses a real symbol — a pure ordering comparison.
  Constellation c(GetParam());
  fc::OrderingLut lut(c);
  ch::Rng rng(14);
  const cplx center = c.point(c.index_from_axes(c.side() / 2, c.side() / 2));
  const double h = c.scale();
  int agree1 = 0, agree_top4 = 0, total = 0;
  for (int t = 0; t < 400; ++t) {
    const cplx z = center + cplx{rng.uniform(-h, h), rng.uniform(-h, h)};
    ++total;
    agree1 += (lut.kth_symbol(z, 1) == c.kth_nearest_exact(z, 1));
    // Top-4 set agreement (order within the set may differ slightly).
    std::set<int> lut4, exact4;
    for (int k = 1; k <= 4; ++k) {
      lut4.insert(lut.kth_symbol(z, k));
      exact4.insert(c.kth_nearest_exact(z, k));
    }
    agree_top4 += (lut4 == exact4);
  }
  EXPECT_EQ(agree1, total);  // k=1 is exact by construction
  // A single modal order per triangle is an approximation (paper §3.2); we
  // measured ~66% exact top-4 set agreement uniformly across all 8 octants.
  // Guard against regressions well below that level.
  EXPECT_GE(agree_top4, total * 55 / 100)
      << "top-4 sets diverged more than expected";
}

TEST_P(OrderingLutTest, PositionalAgreementUniformAcrossOctants) {
  // If the dihedral symmetry transform were wrong, agreement would collapse
  // in the reflected octants while staying high in the canonical one.
  Constellation c(GetParam());
  fc::OrderingLut lut(c);
  ch::Rng rng(15);
  const double h = c.scale();
  const cplx center = c.point(c.index_from_axes(c.side() / 2, c.side() / 2));
  std::vector<int> per_octant(8, 0);
  const int per_oct_trials = 250;
  for (int oct = 0; oct < 8; ++oct) {
    for (int t = 0; t < per_oct_trials; ++t) {
      double a = h * std::sqrt(rng.uniform());
      double b = a * rng.uniform();  // (a, b) uniform in triangle t1
      double u = a, v = b;
      if (oct & 4) std::swap(u, v);
      if (oct & 1) u = -u;
      if (oct & 2) v = -v;
      const cplx z = center + cplx{u, v};
      int agree = 0;
      for (int k = 1; k <= 8; ++k) {
        agree += lut.kth_symbol(z, k) == c.kth_nearest_exact(z, k);
      }
      per_octant[static_cast<std::size_t>(oct)] += agree;
    }
  }
  // All octants within a narrow band of each other.
  const auto [mn, mx] = std::minmax_element(per_octant.begin(), per_octant.end());
  EXPECT_GT(*mn, 0);
  EXPECT_LT(static_cast<double>(*mx - *mn),
            0.15 * static_cast<double>(8 * per_oct_trials))
      << "octant asymmetry suggests a broken symmetry transform";
  for (int oct = 0; oct < 8; ++oct) {
    EXPECT_GE(per_octant[static_cast<std::size_t>(oct)],
              per_oct_trials * 8 * 60 / 100)
        << "octant " << oct;
  }
}

TEST_P(OrderingLutTest, MonteCarloAndCentroidOrdersAgreeOnHead) {
  // Tail positions of the modal order are noisy near-ties; the entries that
  // dominate detection quality are the head of the order.  Both derivations
  // must agree there.
  Constellation c(GetParam());
  fc::OrderingLut centroid(c, fc::LutSource::kCentroid);
  fc::OrderingLut mc(c, fc::LutSource::kMonteCarlo, 4000, 77);
  const auto& a = centroid.base_order();
  const auto& b = mc.base_order();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].di, 0);
  EXPECT_EQ(b[0].di, 0);
  int same_head = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    same_head += (a[i].di == b[i].di && a[i].dq == b[i].dq);
  }
  EXPECT_GE(same_head, 4) << "head-of-order disagreement";
}

INSTANTIATE_TEST_SUITE_P(Orders, OrderingLutTest, ::testing::Values(16, 64));

TEST(OrderingLut, DeactivatesOutsideConstellation) {
  Constellation c(16);
  fc::OrderingLut lut(c);
  // Effective point far beyond the corner: the slicer square center is off
  // the grid, so some early entries must be invalid.
  const double far = c.pam_level(c.side() - 1) + 3 * c.min_distance();
  const cplx z{far, far};
  int invalid = 0;
  for (int k = 1; k <= c.order(); ++k) {
    if (lut.kth_symbol(z, k) < 0) ++invalid;
  }
  EXPECT_GT(invalid, 0);
}

// --------------------------------------------------------------- detector

TEST(FlexCore, SinglePathEqualsSic) {
  // FlexCore's best path is [1,1,...,1]; walking it with the LUT's k=1
  // (= slicing) is exactly ordered ZF-SIC.
  Constellation c(16);
  ch::Rng rng(21);
  const auto flex = fa::make_detector("flexcore-1", {.constellation = &c});
  const auto sic = fa::make_detector("zf-sic", {.constellation = &c});
  const double nv = ch::noise_var_for_snr_db(4.2);
  for (int t = 0; t < 40; ++t) {
    const CMat h = random_channel(6, 6, 1000 + static_cast<unsigned>(t));
    CVec s(6);
    std::vector<int> tx(6);
    for (int u = 0; u < 6; ++u) {
      tx[static_cast<std::size_t>(u)] =
          static_cast<int>(rng.uniform_int(16));
      s[static_cast<std::size_t>(u)] = c.point(tx[static_cast<std::size_t>(u)]);
    }
    const CVec y = ch::transmit(h, s, nv, rng);
    flex->set_channel(h, nv);
    sic->set_channel(h, nv);
    EXPECT_EQ(flex->detect(y).symbols, sic->detect(y).symbols);
  }
}

TEST(FlexCore, AllPathsWithExactOrderingIsML) {
  // Position vectors biject onto tree leaves, so selecting all |Q|^Nt paths
  // with exact per-level ordering makes FlexCore an exhaustive ML detector.
  Constellation c(4);
  ch::Rng rng(22);
  fa::DetectorConfig acfg{.constellation = &c};
  acfg.flexcore.num_pes = 64;  // 4^3
  acfg.flexcore.ordering = fc::OrderingMode::kExactSort;
  acfg.flexcore.candidate_list_cap = 100000;
  const auto flex =
      fa::make_detector_as<fc::FlexCoreDetector>("flexcore", acfg);
  const double nv = ch::noise_var_for_snr_db(1.2);
  for (int t = 0; t < 25; ++t) {
    const CMat h = random_channel(3, 3, 2000 + static_cast<unsigned>(t));
    CVec s(3);
    for (int u = 0; u < 3; ++u) {
      s[static_cast<std::size_t>(u)] = c.point(static_cast<int>(rng.uniform_int(4)));
    }
    const CVec y = ch::transmit(h, s, nv, rng);
    flex->set_channel(h, nv);
    EXPECT_EQ(flex->preprocessing().paths.size(), 64u);
    const auto got = flex->detect(y);
    const auto want = fd::exhaustive_ml(c, h, y);
    EXPECT_EQ(got.symbols, want.symbols);
    EXPECT_NEAR(got.metric, want.metric, 1e-9);
  }
}

TEST(FlexCore, RecoversNoiseless) {
  Constellation c(64);
  ch::Rng rng(23);
  const auto flex = fa::make_detector("flexcore-8", {.constellation = &c});
  for (int t = 0; t < 15; ++t) {
    const CMat h = random_channel(8, 8, 3000 + static_cast<unsigned>(t));
    CVec s(8);
    std::vector<int> tx(8);
    for (int u = 0; u < 8; ++u) {
      tx[static_cast<std::size_t>(u)] = static_cast<int>(rng.uniform_int(64));
      s[static_cast<std::size_t>(u)] = c.point(tx[static_cast<std::size_t>(u)]);
    }
    const CVec y = ch::transmit(h, s, 0.0, rng);
    flex->set_channel(h, 1e-6);
    EXPECT_EQ(flex->detect(y).symbols, tx);
  }
}

TEST(FlexCore, MorePesNeverHurtStatistically) {
  Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(4.0);
  auto run = [&](std::size_t pes) {
    ch::Rng rng(24);
    fa::DetectorConfig acfg{.constellation = &c};
    acfg.flexcore.num_pes = pes;
    const auto flex = fa::make_detector("flexcore", acfg);
    std::size_t errors = 0;
    for (int t = 0; t < 150; ++t) {
      const CMat h = random_channel(8, 8, 4000 + static_cast<unsigned>(t));
      CVec s(8);
      std::vector<int> tx(8);
      for (int u = 0; u < 8; ++u) {
        tx[static_cast<std::size_t>(u)] = static_cast<int>(rng.uniform_int(16));
        s[static_cast<std::size_t>(u)] = c.point(tx[static_cast<std::size_t>(u)]);
      }
      const CVec y = ch::transmit(h, s, nv, rng);
      flex->set_channel(h, nv);
      const auto res = flex->detect(y);
      for (int u = 0; u < 8; ++u) {
        errors += res.symbols[static_cast<std::size_t>(u)] !=
                  tx[static_cast<std::size_t>(u)];
      }
    }
    return errors;
  };
  const auto e1 = run(1);
  const auto e16 = run(16);
  const auto e64 = run(64);
  EXPECT_LT(e16, e1);
  EXPECT_LE(e64, e16);
}

TEST(FlexCore, BeatsFcsdAtEqualBudgetInOperatingRegime) {
  // Fig. 9's headline claim at its operating regime: 64-QAM on correlated
  // channels with a <= 3 dB user spread (the paper's scheduling rule) at an
  // SNR near the PER_ML = 0.01 operating point.  At the FCSD's only
  // affordable budget (|Q|^1 = 64 paths; the next step is 4096) FlexCore's
  // channel-aware allocation wins, and FlexCore-128 — a budget the FCSD
  // cannot express — improves further toward ML.
  Constellation c(64);
  const double nv = ch::noise_var_for_snr_db(17.0);

  auto run = [&](fd::Detector& det) {
    ch::Rng rng(25);
    std::size_t err = 0;
    for (int t = 0; t < 300; ++t) {
      ch::Rng hrng(5000 + static_cast<unsigned>(t));
      const auto gains = ch::bounded_user_gains(8, 3.0, hrng);
      const CMat h = ch::kronecker_channel(8, 8, 0.4, gains, hrng);
      CVec s(8);
      std::vector<int> tx(8);
      for (int u = 0; u < 8; ++u) {
        tx[static_cast<std::size_t>(u)] = static_cast<int>(rng.uniform_int(64));
        s[static_cast<std::size_t>(u)] = c.point(tx[static_cast<std::size_t>(u)]);
      }
      const CVec y = ch::transmit(h, s, nv, rng);
      det.set_channel(h, nv);
      const auto res = det.detect(y);
      for (int u = 0; u < 8; ++u) {
        err += res.symbols[static_cast<std::size_t>(u)] !=
               tx[static_cast<std::size_t>(u)];
      }
    }
    return err;
  };

  const auto flex64 = fa::make_detector("flexcore-64", {.constellation = &c});
  const auto flex128 =
      fa::make_detector("flexcore-128", {.constellation = &c});
  const auto fcsd =
      fa::make_detector("fcsd-L1", {.constellation = &c});  // 64 paths

  const std::size_t e_flex64 = run(*flex64);
  const std::size_t e_flex128 = run(*flex128);
  const std::size_t e_fcsd = run(*fcsd);

  EXPECT_LT(e_flex64, e_fcsd) << "flex64=" << e_flex64 << " fcsd64=" << e_fcsd;
  EXPECT_LE(e_flex128, e_flex64);
  EXPECT_LT(e_flex128, e_fcsd);
}

TEST(FlexCore, PathMetricMatchesEvaluatePath) {
  Constellation c(16);
  ch::Rng rng(26);
  const auto flex = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-32", {.constellation = &c});
  const CMat h = random_channel(6, 6, 27);
  const double nv = 0.05;
  flex->set_channel(h, nv);
  CVec s(6);
  for (int u = 0; u < 6; ++u) s[static_cast<std::size_t>(u)] = c.point(3);
  const CVec y = ch::transmit(h, s, nv, rng);
  const CVec ybar = flex->rotate(y);
  for (std::size_t p = 0; p < flex->active_paths(); ++p) {
    const auto ev = flex->evaluate_path(ybar, p);
    const double m = flex->path_metric(ybar, p);
    if (ev.valid) {
      EXPECT_NEAR(m, ev.metric, 1e-12);
    } else {
      EXPECT_TRUE(std::isinf(m));
    }
  }
}

TEST(FlexCore, AdaptiveUsesFewerPesOnCleanChannels) {
  Constellation c(16);
  const auto flex = fa::make_detector_as<fc::FlexCoreDetector>(
      "a-flexcore-64", {.constellation = &c});

  const CMat h = random_channel(8, 8, 28);
  flex->set_channel(h, 1e-5);  // nearly noiseless
  const std::size_t clean_paths = flex->active_paths();
  EXPECT_LE(clean_paths, 4u);
  EXPECT_GE(flex->active_pc_sum(), 0.95);

  flex->set_channel(h, 0.6);  // very noisy
  EXPECT_GT(flex->active_paths(), clean_paths);
  EXPECT_LE(flex->active_paths(), 64u);
}

TEST(FlexCore, AdaptiveMatchesPlainWhenBudgetExhausted) {
  // On a bad channel a-FlexCore saturates at num_pes and behaves like the
  // plain detector.
  Constellation c(64);
  const auto plain =
      fa::make_detector("flexcore-16", {.constellation = &c});
  fa::DetectorConfig ad_cfg{.constellation = &c};
  ad_cfg.adaptive_threshold = 0.9999;  // unreachable on a noisy channel
  const auto adaptive = fa::make_detector_as<fc::FlexCoreDetector>(
      "a-flexcore-16", ad_cfg);
  const CMat h = random_channel(8, 8, 29);
  plain->set_channel(h, 0.8);
  adaptive->set_channel(h, 0.8);
  EXPECT_EQ(adaptive->active_paths(), plain->parallel_tasks());

  ch::Rng rng(30);
  CVec s(8);
  for (int u = 0; u < 8; ++u) s[static_cast<std::size_t>(u)] = c.point(10);
  const CVec y = ch::transmit(h, s, 0.8, rng);
  EXPECT_EQ(adaptive->detect(y).symbols, plain->detect(y).symbols);
}

TEST(FlexCore, StatsAccumulateAcrossPaths) {
  Constellation c(16);
  const auto flex = fa::make_detector("flexcore-8", {.constellation = &c});
  const CMat h = random_channel(6, 6, 31);
  flex->set_channel(h, 0.05);
  ch::Rng rng(32);
  CVec s(6, c.point(0));
  const CVec y = ch::transmit(h, s, 0.05, rng);
  const auto res = flex->detect(y);
  EXPECT_EQ(res.stats.paths_evaluated, 8u);
  EXPECT_GT(res.stats.real_mults, 0u);
  // Table 2 accounting: a full path costs 2*Nt*(Nt+1) real multiplications.
  EXPECT_LE(res.stats.real_mults, 8u * 2u * 6u * 7u);
}

TEST(FlexCore, NameReflectsConfiguration) {
  Constellation c(16);
  const fa::DetectorConfig acfg{.constellation = &c};
  EXPECT_EQ(fa::make_detector("flexcore-12", acfg)->name(), "flexcore-12");
  EXPECT_EQ(fa::make_detector("a-flexcore-12", acfg)->name(),
            "a-flexcore-12");
}

TEST(FlexCore, ZeroPesThrows) {
  Constellation c(16);
  EXPECT_THROW(fa::make_detector("flexcore-0", {.constellation = &c}),
               std::invalid_argument);
}

TEST(FlexCore, SoftOutputSignsMatchHardDecision) {
  Constellation c(16);
  const auto flex = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-32", {.constellation = &c});
  ch::Rng rng(33);
  const CMat h = random_channel(6, 6, 34);
  const double nv = 0.02;
  flex->set_channel(h, nv);
  CVec s(6);
  std::vector<int> tx(6);
  for (int u = 0; u < 6; ++u) {
    tx[static_cast<std::size_t>(u)] = static_cast<int>(rng.uniform_int(16));
    s[static_cast<std::size_t>(u)] = c.point(tx[static_cast<std::size_t>(u)]);
  }
  const CVec y = ch::transmit(h, s, nv, rng);
  const auto soft = flex->detect_soft(y);
  EXPECT_EQ(soft.hard.symbols.size(), 6u);
  for (std::size_t a = 0; a < 6; ++a) {
    std::vector<std::uint8_t> bits;
    c.unmap_bits(soft.hard.symbols[a], bits);
    for (std::size_t b = 0; b < bits.size(); ++b) {
      const double llr = soft.llrs[a][b];
      if (bits[b] == 0) {
        EXPECT_GE(llr, 0.0) << "a=" << a << " b=" << b;
      } else {
        EXPECT_LE(llr, 0.0) << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST(FlexCore, LutOrderingErrorRateCloseToExactSort) {
  // What matters is not decision-by-decision equality (the approximate
  // order legitimately picks different — similar-quality — candidates) but
  // that the error *rate* stays close to the exact-sort upper bound.
  Constellation c(16);
  const double nv = ch::noise_var_for_snr_db(5.2);
  const auto lut_det =
      fa::make_detector("flexcore-16", {.constellation = &c});
  fa::DetectorConfig exact_acfg{.constellation = &c};
  exact_acfg.flexcore.ordering = fc::OrderingMode::kExactSort;
  exact_acfg.flexcore.invalid_policy = fc::InvalidEntryPolicy::kSkipToValid;
  const auto exact_det = fa::make_detector("flexcore-16", exact_acfg);

  ch::Rng rng(35);
  std::size_t lut_err = 0, exact_err = 0;
  for (int t = 0; t < 300; ++t) {
    const CMat h = random_channel(6, 6, 6000 + static_cast<unsigned>(t));
    CVec s(6);
    std::vector<int> tx(6);
    for (int u = 0; u < 6; ++u) {
      tx[static_cast<std::size_t>(u)] = static_cast<int>(rng.uniform_int(16));
      s[static_cast<std::size_t>(u)] = c.point(tx[static_cast<std::size_t>(u)]);
    }
    const CVec y = ch::transmit(h, s, nv, rng);
    lut_det->set_channel(h, nv);
    exact_det->set_channel(h, nv);
    const auto rl = lut_det->detect(y).symbols;
    const auto re = exact_det->detect(y).symbols;
    for (int u = 0; u < 6; ++u) {
      lut_err += rl[static_cast<std::size_t>(u)] != tx[static_cast<std::size_t>(u)];
      exact_err += re[static_cast<std::size_t>(u)] != tx[static_cast<std::size_t>(u)];
    }
  }
  // LUT must stay within 40% relative of exact-sort (paper: "negligible").
  EXPECT_LE(static_cast<double>(lut_err),
            1.4 * static_cast<double>(exact_err) + 10.0)
      << "lut_err=" << lut_err << " exact_err=" << exact_err;
}
