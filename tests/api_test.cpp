// Tests for the api subsystem: the detector registry (string-driven
// construction, name round-trips, error paths), the batch-detection
// contract (default sequential loop vs the thread-pool grid overrides) and
// the UplinkPipeline facade.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "api/detector_registry.h"
#include "api/uplink_pipeline.h"
#include "channel/channel.h"
#include "core/flexcore_detector.h"
#include "detect/fcsd.h"
#include "frame_fixtures.h"
#include "parallel/thread_pool.h"

namespace fa = flexcore::api;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace ch = flexcore::channel;
using flexcore::linalg::CMat;
using flexcore::linalg::CVec;
using flexcore::modulation::Constellation;

namespace {

std::vector<CVec> random_batch(const Constellation& c, const CMat& h,
                               std::size_t n, double nv, ch::Rng& rng) {
  std::vector<CVec> ys;
  ys.reserve(n);
  CVec s(h.cols());
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t u = 0; u < h.cols(); ++u) {
      s[u] = c.point(static_cast<int>(
          rng.uniform_int(static_cast<std::uint64_t>(c.order()))));
    }
    ys.push_back(ch::transmit(h, s, nv, rng));
  }
  return ys;
}

}  // namespace

// ---------------------------------------------------------------- registry

TEST(Registry, EveryCanonicalNameRoundTrips) {
  Constellation c(64);
  const fa::DetectorConfig cfg{.constellation = &c};
  const auto names = fa::list_specs();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names, fa::DetectorRegistry::global().canonical_names());
  for (const std::string& name : names) {
    const auto det = fa::make_detector(name, cfg);
    ASSERT_NE(det, nullptr) << name;
    EXPECT_EQ(det->name(), name) << "spec must round-trip through name()";
  }
}

TEST(Registry, ParametricSpecsRoundTrip) {
  Constellation c(16);
  const fa::DetectorConfig cfg{.constellation = &c};
  for (const char* spec : {"flexcore-7", "flexcore-128", "a-flexcore-24",
                           "fcsd-L2", "kbest-3", "kbest-64", "akbest-40"}) {
    EXPECT_EQ(fa::make_detector(spec, cfg)->name(), spec);
  }
}

TEST(Registry, AliasesConstructCanonicalDetectors) {
  Constellation c(16);
  const fa::DetectorConfig cfg{.constellation = &c};
  EXPECT_EQ(fa::make_detector("sic", cfg)->name(), "zf-sic");
  EXPECT_EQ(fa::make_detector("trellis", cfg)->name(), "trellis50");
  EXPECT_EQ(fa::make_detector("ml", cfg)->name(), "ml-sd");
  EXPECT_EQ(fa::make_detector("fcsd", cfg)->name(), "fcsd-L1");
  EXPECT_EQ(fa::make_detector("kbest", cfg)->name(), "kbest-8");
  EXPECT_EQ(fa::make_detector("akbest", cfg)->name(), "akbest-16");
}

TEST(Registry, BareFlexcoreUsesConfigValues) {
  Constellation c(16);
  fa::DetectorConfig cfg{.constellation = &c};
  cfg.flexcore.num_pes = 48;
  EXPECT_EQ(fa::make_detector("flexcore", cfg)->name(), "flexcore-48");
  // The spec family always decides adaptive vs plain, regardless of the
  // base config's threshold.
  cfg.flexcore.adaptive_threshold = 0.9;
  EXPECT_EQ(fa::make_detector("flexcore", cfg)->name(), "flexcore-48");
  EXPECT_EQ(fa::make_detector("a-flexcore", cfg)->name(), "a-flexcore-48");
}

TEST(Registry, UnknownNameThrowsListingFamilies) {
  Constellation c(16);
  const fa::DetectorConfig cfg{.constellation = &c};
  for (const char* bad : {"", "no-such-detector", "flexcoreX", "flexcore-",
                          "flexcore-12x", "fcsd-L", "kbest-"}) {
    EXPECT_THROW(fa::make_detector(bad, cfg), std::invalid_argument) << bad;
  }
  try {
    fa::make_detector("no-such-detector", cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no detector \"no-such-detector\""), std::string::npos);
    // The message lists every registered spec family after "known:".
    const auto known = msg.find("known:");
    ASSERT_NE(known, std::string::npos);
    for (const char* family :
         {"flexcore", "a-flexcore", "fcsd-L", "kbest", "akbest", "zf", "mmse",
          "zf-sic", "trellis50", "ml-sd"}) {
      EXPECT_NE(msg.find(family, known), std::string::npos) << family;
    }
  }
}

TEST(Registry, NullConstellationThrows) {
  EXPECT_THROW(fa::make_detector("zf", fa::DetectorConfig{}),
               std::invalid_argument);
}

TEST(Registry, InvalidParametersThrow) {
  Constellation c(16);
  const fa::DetectorConfig cfg{.constellation = &c};
  EXPECT_THROW(fa::make_detector("flexcore-0", cfg), std::invalid_argument);
  EXPECT_THROW(fa::make_detector("kbest-0", cfg), std::invalid_argument);
  EXPECT_THROW(fa::make_detector("akbest-0", cfg), std::invalid_argument);
}

TEST(Registry, MakeDetectorAsChecksType) {
  Constellation c(16);
  const fa::DetectorConfig cfg{.constellation = &c};
  const auto flex =
      fa::make_detector_as<fc::FlexCoreDetector>("flexcore-8", cfg);
  EXPECT_EQ(flex->config().num_pes, 8u);
  EXPECT_THROW(fa::make_detector_as<fc::FlexCoreDetector>("zf", cfg),
               std::invalid_argument);
}

// ------------------------------------------------------------ detect_batch

TEST(Batch, DefaultLoopMatchesPerVectorDetect) {
  Constellation c(16);
  const fa::DetectorConfig cfg{.constellation = &c};
  ch::Rng rng(7);
  const CMat h = ch::rayleigh_iid(6, 6, rng);
  const double nv = 0.05;
  auto batch_rng = rng;  // detection draws nothing; keep draws aligned

  for (const char* spec : {"zf-sic", "mmse", "kbest-8", "trellis50"}) {
    const auto det = fa::make_detector(spec, cfg);
    det->set_channel(h, nv);
    const auto ys = random_batch(c, h, 12, nv, batch_rng);
    fd::BatchResult out;
    det->detect_batch(ys, &out);
    ASSERT_EQ(out.results.size(), ys.size()) << spec;
    EXPECT_EQ(out.tasks, ys.size()) << spec;
    fd::DetectionStats want_stats;
    for (std::size_t v = 0; v < ys.size(); ++v) {
      const auto want = det->detect(ys[v]);
      EXPECT_EQ(out.results[v].symbols, want.symbols) << spec;
      EXPECT_EQ(out.results[v].metric, want.metric) << spec;
      want_stats += want.stats;
    }
    EXPECT_EQ(out.stats.nodes_visited, want_stats.nodes_visited) << spec;
    EXPECT_EQ(out.stats.flops, want_stats.flops) << spec;
  }
}

TEST(Batch, FlexCoreThreadedOverrideMatchesDefaultLoop) {
  Constellation c(64);
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-32", {.constellation = &c});
  ch::Rng rng(8);
  const CMat h = ch::rayleigh_iid(8, 8, rng);
  const double nv = ch::noise_var_for_snr_db(16.0);
  det->set_channel(h, nv);
  const auto ys = random_batch(c, h, 24, nv, rng);

  // Without a pool: the sequential base-class loop.
  fd::BatchResult seq;
  det->detect_batch(ys, &seq);
  EXPECT_EQ(seq.tasks, ys.size());

  // With a pool: the vector x path task grid.
  flexcore::parallel::ThreadPool pool(3);
  det->set_thread_pool(&pool);
  fd::BatchResult grid;
  det->detect_batch(ys, &grid);
  EXPECT_EQ(grid.tasks, ys.size() * det->active_paths());

  ASSERT_EQ(grid.results.size(), seq.results.size());
  for (std::size_t v = 0; v < ys.size(); ++v) {
    EXPECT_EQ(grid.results[v].symbols, seq.results[v].symbols)
        << "vector " << v;
    EXPECT_NEAR(grid.results[v].metric, seq.results[v].metric, 1e-12);
    EXPECT_EQ(grid.results[v].stats.paths_evaluated, det->active_paths());
  }

  // Detaching the pool restores the sequential loop.
  det->set_thread_pool(nullptr);
  fd::BatchResult seq2;
  det->detect_batch(ys, &seq2);
  EXPECT_EQ(seq2.tasks, ys.size());
}

TEST(Batch, FlexCoreSicFallbackAppliedInBatch) {
  // A tiny path budget at extreme noise deactivates every PE for some
  // vectors; detect_batch must apply the same SIC fallback detect() does
  // and report the count.
  Constellation c(64);
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-2", {.constellation = &c});
  ch::Rng rng(9);
  const CMat h = ch::rayleigh_iid(8, 8, rng);
  const double nv = 4.0;  // brutal noise
  det->set_channel(h, nv);
  const auto ys = random_batch(c, h, 200, nv, rng);

  flexcore::parallel::ThreadPool pool(2);
  det->set_thread_pool(&pool);
  fd::BatchResult out;
  det->detect_batch(ys, &out);

  std::size_t fallbacks = 0;
  for (std::size_t v = 0; v < ys.size(); ++v) {
    const auto want = det->detect(ys[v]);
    EXPECT_EQ(out.results[v].symbols, want.symbols) << "vector " << v;
    EXPECT_NEAR(out.results[v].metric, want.metric, 1e-12);
    const auto ybar = det->rotate(ys[v]);
    bool any_valid = false;
    for (std::size_t pth = 0; pth < det->active_paths(); ++pth) {
      any_valid = any_valid || det->evaluate_path(ybar, pth).valid;
    }
    fallbacks += !any_valid;
  }
  EXPECT_EQ(out.sic_fallbacks, fallbacks);
  EXPECT_GT(out.sic_fallbacks, 0u)
      << "scenario no longer exercises the fallback; lower the budget";
}

TEST(Batch, FcsdThreadedOverrideMatchesDefaultLoop) {
  Constellation c(16);
  const auto det =
      fa::make_detector_as<fd::FcsdDetector>("fcsd-L1", {.constellation = &c});
  ch::Rng rng(10);
  const CMat h = ch::rayleigh_iid(6, 6, rng);
  const double nv = 0.05;
  det->set_channel(h, nv);
  const auto ys = random_batch(c, h, 20, nv, rng);

  fd::BatchResult seq;
  det->detect_batch(ys, &seq);

  flexcore::parallel::ThreadPool pool(3);
  det->set_thread_pool(&pool);
  fd::BatchResult grid;
  det->detect_batch(ys, &grid);
  EXPECT_EQ(grid.tasks, ys.size() * det->num_paths());
  EXPECT_EQ(grid.sic_fallbacks, 0u);

  for (std::size_t v = 0; v < ys.size(); ++v) {
    EXPECT_EQ(grid.results[v].symbols, seq.results[v].symbols);
    EXPECT_NEAR(grid.results[v].metric, seq.results[v].metric, 1e-12);
  }
}

// ---------------------------------------------------------------- pipeline

TEST(Pipeline, DetectRequiresChannel) {
  fa::PipelineConfig cfg;
  cfg.detector = "flexcore-8";
  cfg.qam_order = 16;
  cfg.threads = 2;
  fa::UplinkPipeline pipe(cfg);
  const std::vector<CVec> ys(3, CVec(4));
  EXPECT_THROW(pipe.detect(ys), std::logic_error);
  EXPECT_THROW(pipe.detect_one(CVec(4)), std::logic_error);
}

TEST(Pipeline, BatchedDetectMatchesDetectorAndAggregates) {
  fa::PipelineConfig cfg;
  cfg.detector = "flexcore-16";
  cfg.qam_order = 16;
  cfg.threads = 2;
  fa::UplinkPipeline pipe(cfg);
  EXPECT_EQ(pipe.detector().name(), "flexcore-16");
  EXPECT_TRUE(pipe.supports_soft());

  ch::Rng rng(11);
  const Constellation& c = pipe.constellation();
  const double nv = ch::noise_var_for_snr_db(14.0);
  std::size_t vectors = 0;
  for (int channel = 0; channel < 3; ++channel) {
    const CMat h = ch::rayleigh_iid(6, 6, rng);
    pipe.set_channel(h, nv);
    const auto ys = random_batch(c, h, 10, nv, rng);
    const auto out = pipe.detect(ys);
    ASSERT_EQ(out.results.size(), ys.size());
    for (std::size_t v = 0; v < ys.size(); ++v) {
      EXPECT_EQ(out.results[v].symbols, pipe.detect_one(ys[v]).symbols);
    }
    vectors += 2 * ys.size();  // detect() batch + one detect_one() each
  }
  EXPECT_EQ(pipe.channel_installs(), 3u);
  EXPECT_EQ(pipe.vectors_detected(), vectors);
  EXPECT_GT(pipe.total_stats().paths_evaluated, 0u);
}

TEST(Pipeline, SoftOutputGatedByDetectorKind) {
  fa::PipelineConfig cfg;
  cfg.detector = "zf-sic";
  cfg.qam_order = 16;
  cfg.threads = 1;
  fa::UplinkPipeline pipe(cfg);
  EXPECT_FALSE(pipe.supports_soft());

  ch::Rng rng(12);
  const CMat h = ch::rayleigh_iid(4, 4, rng);
  pipe.set_channel(h, 0.05);
  const std::vector<CVec> ys(2, CVec(4));
  EXPECT_THROW(pipe.detect_soft(ys), std::logic_error);

  fa::PipelineConfig soft_cfg;
  soft_cfg.detector = "flexcore-8";
  soft_cfg.qam_order = 16;
  soft_cfg.threads = 1;
  fa::UplinkPipeline soft_pipe(soft_cfg);
  soft_pipe.set_channel(h, 0.05);
  const auto ys2 =
      random_batch(soft_pipe.constellation(), h, 4, 0.05, rng);
  const auto soft = soft_pipe.detect_soft(ys2);
  ASSERT_EQ(soft.size(), ys2.size());
  for (std::size_t v = 0; v < ys2.size(); ++v) {
    EXPECT_EQ(soft[v].hard.symbols, soft_pipe.detect_one(ys2[v]).symbols);
  }
}

TEST(Pipeline, UnknownDetectorSpecThrowsAtConstruction) {
  fa::PipelineConfig cfg;
  cfg.detector = "warp-drive";
  EXPECT_THROW(fa::UplinkPipeline pipe(cfg), std::invalid_argument);
}

// ------------------------------------------------- non-finite frame scan

TEST(FrameJobScan, NamesTheExactChannelCoordinateOfTheFirstOffender) {
  const Constellation qam(16);
  const double nv = 0.05;
  flexcore::testing::Frame fr =
      flexcore::testing::make_frame(qam, 4, 2, 6, 4, nv, 200);
  fr.channels[1](0, 2) =
      flexcore::linalg::cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);

  try {
    fa::validate_frame_job(flexcore::testing::job_of(fr, nv));
    FAIL() << "a NaN channel entry must be rejected by the full scan";
  } catch (const fa::NonFiniteError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("channel of subcarrier 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(0, 2)"), std::string::npos) << msg;
  }
}

TEST(FrameJobScan, NamesTheExactPayloadIndexOfTheFirstOffender) {
  const Constellation qam(16);
  const double nv = 0.05;
  // 2 vectors per channel: ys[5] is subcarrier 2, symbol 1.
  flexcore::testing::Frame fr =
      flexcore::testing::make_frame(qam, 4, 2, 6, 4, nv, 201);
  fr.ys[5][3] =
      flexcore::linalg::cplx(0.0, std::numeric_limits<double>::infinity());

  try {
    fa::validate_frame_job(flexcore::testing::job_of(fr, nv));
    FAIL() << "an Inf payload entry must be rejected by the full scan";
  } catch (const fa::NonFiniteError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("ys[5]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("subcarrier 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("symbol 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("index 3"), std::string::npos) << msg;
  }
  // NonFiniteError IS an invalid_argument: legacy catch sites keep working.
  EXPECT_THROW(fa::validate_frame_job(flexcore::testing::job_of(fr, nv)),
               std::invalid_argument);
}

TEST(FrameJobScan, ShapeCheckSkipsTheEntryScanButKeepsGeometry) {
  const Constellation qam(16);
  const double nv = 0.05;
  flexcore::testing::Frame fr =
      flexcore::testing::make_frame(qam, 3, 2, 6, 4, nv, 202);
  fr.ys[0][0] =
      flexcore::linalg::cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);

  // kShape admits the non-finite entry (chaos harnesses rely on this to
  // exercise the dispatch-side quarantine)...
  EXPECT_NO_THROW(fa::validate_frame_job(flexcore::testing::job_of(fr, nv),
                                         fa::FrameCheck::kShape));
  // ...but still rejects structural breakage.
  flexcore::testing::Frame ragged =
      flexcore::testing::make_frame(qam, 3, 2, 6, 4, nv, 203);
  ragged.channels[1] = CMat(5, 4);
  EXPECT_THROW(fa::validate_frame_job(flexcore::testing::job_of(ragged, nv),
                                      fa::FrameCheck::kShape),
               std::invalid_argument);
}
