// Cross-module integration tests: full coded links, engine consistency,
// paper-level claims at the system level.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "channel/estimation.h"
#include "channel/trace.h"
#include "core/adaptive_kbest.h"
#include "core/flexcore_detector.h"
#include "detect/fcsd.h"
#include "detect/kbest.h"
#include "detect/linear.h"
#include "detect/ml_sphere.h"
#include "detect/sic.h"
#include "detect/trellis.h"
#include "sim/engine.h"
#include "sim/montecarlo.h"

namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace fs = flexcore::sim;
using flexcore::modulation::Constellation;

namespace {

fs::LinkConfig tiny_link(int qam) {
  fs::LinkConfig cfg;
  cfg.qam_order = qam;
  cfg.info_bits_per_user = 200;
  return cfg;
}

ch::TraceConfig trace_cfg(std::size_t nr, std::size_t nt) {
  ch::TraceConfig cfg;
  cfg.nr = nr;
  cfg.nt = nt;
  return cfg;
}

}  // namespace

TEST(Integration, EveryDetectorDeliversCleanPacketsAtHighSnr) {
  Constellation qam(16);
  const fs::LinkConfig lcfg = tiny_link(16);
  const ch::TraceConfig tcfg = trace_cfg(6, 4);
  const double nv = ch::noise_var_for_snr_db(30.0);

  std::vector<std::unique_ptr<fd::Detector>> dets;
  dets.push_back(std::make_unique<fd::LinearDetector>(qam, fd::LinearKind::kZeroForcing));
  dets.push_back(std::make_unique<fd::LinearDetector>(qam, fd::LinearKind::kMmse));
  dets.push_back(std::make_unique<fd::SicDetector>(qam));
  dets.push_back(std::make_unique<fd::MlSphereDecoder>(qam));
  dets.push_back(std::make_unique<fd::FcsdDetector>(qam, 1));
  dets.push_back(std::make_unique<fd::KBestDetector>(qam, 8));
  dets.push_back(std::make_unique<fd::TrellisDetector>(qam));
  dets.push_back(std::make_unique<fc::AdaptiveKBestDetector>(qam, 16));
  {
    fc::FlexCoreConfig cfg;
    cfg.num_pes = 16;
    dets.push_back(std::make_unique<fc::FlexCoreDetector>(qam, cfg));
  }

  for (auto& det : dets) {
    const auto r = fs::measure_throughput(*det, lcfg, tcfg, nv, 3, 42);
    EXPECT_EQ(r.avg_per, 0.0) << det->name();
  }
}

TEST(Integration, ThroughputMonotoneInSnr) {
  Constellation qam(16);
  const fs::LinkConfig lcfg = tiny_link(16);
  const ch::TraceConfig tcfg = trace_cfg(6, 6);
  fc::FlexCoreConfig cfg;
  cfg.num_pes = 32;
  fc::FlexCoreDetector det(qam, cfg);

  double prev = -1.0;
  for (double snr : {4.0, 8.0, 12.0, 20.0}) {
    const double nv = ch::noise_var_for_snr_db(snr);
    const auto r = fs::measure_throughput(det, lcfg, tcfg, nv, 8, 42);
    EXPECT_GE(r.throughput_mbps + 6.0, prev) << "snr=" << snr;  // small MC slack
    prev = r.throughput_mbps;
  }
}

TEST(Integration, MeasurementsAreDeterministicForFixedSeed) {
  Constellation qam(16);
  const fs::LinkConfig lcfg = tiny_link(16);
  const ch::TraceConfig tcfg = trace_cfg(6, 6);
  fd::SicDetector det(qam);
  const double nv = ch::noise_var_for_snr_db(10.0);
  const auto a = fs::measure_throughput(det, lcfg, tcfg, nv, 5, 99);
  const auto b = fs::measure_throughput(det, lcfg, tcfg, nv, 5, 99);
  EXPECT_EQ(a.throughput_mbps, b.throughput_mbps);
  EXPECT_EQ(a.per_user_per, b.per_user_per);
}

TEST(Integration, FlexCoreBeatsFcsdOnCodedLinkAtOperatingPoint) {
  // The Fig. 9 claim at the coded-link level, in the 64-QAM operating
  // regime: FlexCore-128 achieves at least FCSD-64's throughput.
  Constellation qam(64);
  const fs::LinkConfig lcfg = tiny_link(64);
  const ch::TraceConfig tcfg = trace_cfg(8, 8);
  const double nv = ch::noise_var_for_snr_db(15.5);

  fc::FlexCoreConfig cfg;
  cfg.num_pes = 128;
  fc::FlexCoreDetector flex(qam, cfg);
  fd::FcsdDetector fcsd(qam, 1);

  const auto rf = fs::measure_throughput(flex, lcfg, tcfg, nv, 10, 7);
  const auto rc = fs::measure_throughput(fcsd, lcfg, tcfg, nv, 10, 7);
  EXPECT_GE(rf.throughput_mbps + 1e-9, rc.throughput_mbps)
      << "flex128=" << rf.throughput_mbps << " fcsd64=" << rc.throughput_mbps;
}

TEST(Integration, AdaptiveFlexCoreSavesWorkOnCleanChannels) {
  Constellation qam(16);
  const fs::LinkConfig lcfg = tiny_link(16);
  const ch::TraceConfig tcfg = trace_cfg(8, 4);  // under-loaded AP
  fc::FlexCoreConfig cfg;
  cfg.num_pes = 64;
  cfg.adaptive_threshold = 0.95;
  fc::FlexCoreDetector det(qam, cfg);

  const double nv = ch::noise_var_for_snr_db(22.0);
  const auto r = fs::measure_throughput(det, lcfg, tcfg, nv, 4, 3);
  EXPECT_EQ(r.avg_per, 0.0);
  EXPECT_LT(r.avg_active_pes, 4.0) << "expected near-SIC complexity";
}

TEST(Integration, SoftLinkNeverLosesPacketsVsHard) {
  Constellation qam(16);
  const fs::LinkConfig lcfg = tiny_link(16);
  const ch::TraceConfig tcfg = trace_cfg(6, 6);
  fc::FlexCoreConfig cfg;
  cfg.num_pes = 32;
  fc::FlexCoreDetector det(qam, cfg);

  // Near the PER cliff the soft extension should deliver at least as much.
  const double nv = ch::noise_var_for_snr_db(8.0);
  const auto hard = fs::measure_throughput(det, lcfg, tcfg, nv, 10, 5);
  const auto soft = fs::measure_throughput_soft(det, lcfg, tcfg, nv, 10, 5);
  EXPECT_GE(soft.throughput_mbps + 6.0, hard.throughput_mbps);
}

TEST(Integration, BatchEngineMatchesSequentialAcrossATrace) {
  Constellation qam(64);
  fc::FlexCoreConfig cfg;
  cfg.num_pes = 32;
  fc::FlexCoreDetector det(qam, cfg);

  ch::TraceConfig tcfg = trace_cfg(12, 12);
  tcfg.num_subcarriers = 8;
  ch::TraceGenerator gen(tcfg, 21);
  ch::Rng rng(22);
  const auto trace = gen.next();
  flexcore::parallel::ThreadPool pool(2);
  const double nv = ch::noise_var_for_snr_db(18.0);

  for (const auto& h : trace.per_subcarrier) {
    det.set_channel(h, nv);
    std::vector<flexcore::linalg::CVec> ys;
    flexcore::linalg::CVec s(12);
    for (int v = 0; v < 6; ++v) {
      for (int u = 0; u < 12; ++u) {
        s[static_cast<std::size_t>(u)] = qam.point(static_cast<int>(rng.uniform_int(64)));
      }
      ys.push_back(ch::transmit(h, s, nv, rng));
    }
    const auto batch = fs::batch_detect(det, det.active_paths(), ys, pool);
    for (std::size_t v = 0; v < ys.size(); ++v) {
      if (std::isinf(batch.best_metric[v])) {
        // Every PE deactivated for this vector: detect() falls back to SIC
        // (a caller-level policy the raw task grid does not replicate).
        // Verify the engine's verdict is genuine.
        const auto ybar = det.rotate(ys[v]);
        for (std::size_t p = 0; p < det.active_paths(); ++p) {
          EXPECT_FALSE(det.evaluate_path(ybar, p).valid);
        }
      } else {
        EXPECT_NEAR(batch.best_metric[v], det.detect(ys[v]).metric, 1e-9);
      }
    }
  }
}

TEST(Integration, EstimatedCsiLinkConvergesToGenie) {
  Constellation qam(16);
  fc::FlexCoreConfig cfg;
  cfg.num_pes = 32;
  fc::FlexCoreDetector det(qam, cfg);
  ch::Rng rng(23);
  const auto h = ch::rayleigh_iid(6, 6, rng);
  const double nv = ch::noise_var_for_snr_db(12.0);

  auto count_errors = [&](bool genie, std::size_t repeats) {
    ch::Rng data_rng(24);
    if (genie) {
      det.set_channel(h, nv);
    } else {
      ch::Rng pilot_rng(25);
      const auto est = ch::estimate_channel(h, nv, repeats, pilot_rng);
      det.set_channel(est.h_hat, est.noise_var_hat);
    }
    std::size_t err = 0;
    for (int v = 0; v < 200; ++v) {
      flexcore::linalg::CVec s(6);
      std::vector<int> tx(6);
      for (int u = 0; u < 6; ++u) {
        tx[static_cast<std::size_t>(u)] = static_cast<int>(data_rng.uniform_int(16));
        s[static_cast<std::size_t>(u)] = qam.point(tx[static_cast<std::size_t>(u)]);
      }
      const auto y = ch::transmit(h, s, nv, data_rng);
      const auto res = det.detect(y);
      for (int u = 0; u < 6; ++u) {
        err += res.symbols[static_cast<std::size_t>(u)] !=
               tx[static_cast<std::size_t>(u)];
      }
    }
    return err;
  };

  const auto genie = count_errors(true, 0);
  const auto est64 = count_errors(false, 64);
  const auto est1 = count_errors(false, 1);
  EXPECT_LE(est64, est1);
  EXPECT_LE(genie, est1);
  // 64 pilot repeats should be within a small additive band of genie.
  EXPECT_LE(est64, genie + 40);
}
