// Cross-module integration tests: full coded links, engine consistency,
// paper-level claims at the system level.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "api/detector_registry.h"
#include "api/uplink_pipeline.h"
#include "channel/estimation.h"
#include "channel/trace.h"
#include "core/adaptive_kbest.h"
#include "core/flexcore_detector.h"
#include "detect/fcsd.h"
#include "detect/kbest.h"
#include "detect/linear.h"
#include "detect/ml_sphere.h"
#include "detect/sic.h"
#include "detect/trellis.h"
#include "sim/montecarlo.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace fs = flexcore::sim;
using flexcore::modulation::Constellation;

namespace {

fs::LinkConfig tiny_link(int qam) {
  fs::LinkConfig cfg;
  cfg.qam_order = qam;
  cfg.info_bits_per_user = 200;
  return cfg;
}

ch::TraceConfig trace_cfg(std::size_t nr, std::size_t nt) {
  ch::TraceConfig cfg;
  cfg.nr = nr;
  cfg.nt = nt;
  return cfg;
}

}  // namespace

TEST(Integration, EveryDetectorDeliversCleanPacketsAtHighSnr) {
  Constellation qam(16);
  const fs::LinkConfig lcfg = tiny_link(16);
  const ch::TraceConfig tcfg = trace_cfg(6, 4);
  const double nv = ch::noise_var_for_snr_db(30.0);

  std::vector<std::unique_ptr<fd::Detector>> dets;
  for (const char* spec : {"zf", "mmse", "zf-sic", "ml-sd", "fcsd-L1",
                           "kbest-8", "trellis50", "akbest-16",
                           "flexcore-16"}) {
    dets.push_back(fa::make_detector(spec, {.constellation = &qam}));
  }

  for (auto& det : dets) {
    const auto r = fs::measure_throughput(*det, lcfg, tcfg, nv, 3, 42);
    EXPECT_EQ(r.avg_per, 0.0) << det->name();
  }
}

TEST(Integration, ThroughputMonotoneInSnr) {
  Constellation qam(16);
  const fs::LinkConfig lcfg = tiny_link(16);
  const ch::TraceConfig tcfg = trace_cfg(6, 6);
  const auto det = fa::make_detector("flexcore-32", {.constellation = &qam});

  double prev = -1.0;
  for (double snr : {4.0, 8.0, 12.0, 20.0}) {
    const double nv = ch::noise_var_for_snr_db(snr);
    const auto r = fs::measure_throughput(*det, lcfg, tcfg, nv, 8, 42);
    EXPECT_GE(r.throughput_mbps + 6.0, prev) << "snr=" << snr;  // small MC slack
    prev = r.throughput_mbps;
  }
}

TEST(Integration, MeasurementsAreDeterministicForFixedSeed) {
  Constellation qam(16);
  const fs::LinkConfig lcfg = tiny_link(16);
  const ch::TraceConfig tcfg = trace_cfg(6, 6);
  const auto det = fa::make_detector("zf-sic", {.constellation = &qam});
  const double nv = ch::noise_var_for_snr_db(10.0);
  const auto a = fs::measure_throughput(*det, lcfg, tcfg, nv, 5, 99);
  const auto b = fs::measure_throughput(*det, lcfg, tcfg, nv, 5, 99);
  EXPECT_EQ(a.throughput_mbps, b.throughput_mbps);
  EXPECT_EQ(a.per_user_per, b.per_user_per);
}

TEST(Integration, FlexCoreBeatsFcsdOnCodedLinkAtOperatingPoint) {
  // The Fig. 9 claim at the coded-link level, in the 64-QAM operating
  // regime: FlexCore-128 achieves at least FCSD-64's throughput.
  Constellation qam(64);
  const fs::LinkConfig lcfg = tiny_link(64);
  const ch::TraceConfig tcfg = trace_cfg(8, 8);
  const double nv = ch::noise_var_for_snr_db(15.5);

  const auto flex = fa::make_detector("flexcore-128", {.constellation = &qam});
  const auto fcsd = fa::make_detector("fcsd-L1", {.constellation = &qam});

  const auto rf = fs::measure_throughput(*flex, lcfg, tcfg, nv, 10, 7);
  const auto rc = fs::measure_throughput(*fcsd, lcfg, tcfg, nv, 10, 7);
  EXPECT_GE(rf.throughput_mbps + 1e-9, rc.throughput_mbps)
      << "flex128=" << rf.throughput_mbps << " fcsd64=" << rc.throughput_mbps;
}

TEST(Integration, AdaptiveFlexCoreSavesWorkOnCleanChannels) {
  Constellation qam(16);
  const fs::LinkConfig lcfg = tiny_link(16);
  const ch::TraceConfig tcfg = trace_cfg(8, 4);  // under-loaded AP
  const auto det =
      fa::make_detector("a-flexcore-64", {.constellation = &qam});

  const double nv = ch::noise_var_for_snr_db(22.0);
  const auto r = fs::measure_throughput(*det, lcfg, tcfg, nv, 4, 3);
  EXPECT_EQ(r.avg_per, 0.0);
  EXPECT_LT(r.avg_active_pes, 4.0) << "expected near-SIC complexity";
}

TEST(Integration, SoftLinkNeverLosesPacketsVsHard) {
  Constellation qam(16);
  const fs::LinkConfig lcfg = tiny_link(16);
  const ch::TraceConfig tcfg = trace_cfg(6, 6);
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-32", {.constellation = &qam});

  // Near the PER cliff the soft extension should deliver at least as much.
  const double nv = ch::noise_var_for_snr_db(8.0);
  const auto hard = fs::measure_throughput(*det, lcfg, tcfg, nv, 10, 5);
  const auto soft = fs::measure_throughput_soft(*det, lcfg, tcfg, nv, 10, 5);
  EXPECT_GE(soft.throughput_mbps + 6.0, hard.throughput_mbps);
}

TEST(Integration, BatchDetectMatchesSequentialAcrossATrace) {
  // detect_batch (thread-pool task grid + built-in SIC fallback) must match
  // per-vector detect() symbol-for-symbol across a whole trace.
  Constellation qam(64);
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-32", {.constellation = &qam});

  ch::TraceConfig tcfg = trace_cfg(12, 12);
  tcfg.num_subcarriers = 8;
  ch::TraceGenerator gen(tcfg, 21);
  ch::Rng rng(22);
  const auto trace = gen.next();
  flexcore::parallel::ThreadPool pool(2);
  det->set_thread_pool(&pool);
  const double nv = ch::noise_var_for_snr_db(18.0);

  for (const auto& h : trace.per_subcarrier) {
    det->set_channel(h, nv);
    std::vector<flexcore::linalg::CVec> ys;
    flexcore::linalg::CVec s(12);
    for (int v = 0; v < 6; ++v) {
      for (int u = 0; u < 12; ++u) {
        s[static_cast<std::size_t>(u)] = qam.point(static_cast<int>(rng.uniform_int(64)));
      }
      ys.push_back(ch::transmit(h, s, nv, rng));
    }
    flexcore::detect::BatchResult batch;
    det->detect_batch(ys, &batch);
    ASSERT_EQ(batch.results.size(), ys.size());
    EXPECT_EQ(batch.tasks, ys.size() * det->active_paths());
    for (std::size_t v = 0; v < ys.size(); ++v) {
      const auto want = det->detect(ys[v]);
      EXPECT_EQ(batch.results[v].symbols, want.symbols) << "vector " << v;
      EXPECT_NEAR(batch.results[v].metric, want.metric, 1e-9);
    }
  }
}

TEST(Integration, PipelineFacadeMatchesDirectDetectorUse) {
  // The UplinkPipeline facade must be an exact stand-in for hand-rolled
  // set_channel + detect loops on the coded link.
  Constellation qam(16);
  const fs::LinkConfig lcfg = tiny_link(16);
  const ch::TraceConfig tcfg = trace_cfg(6, 6);
  const double nv = ch::noise_var_for_snr_db(12.0);

  const auto det = fa::make_detector("flexcore-16", {.constellation = &qam});
  const auto direct = fs::measure_throughput(*det, lcfg, tcfg, nv, 4, 31);

  fa::PipelineConfig pcfg;
  pcfg.detector = "flexcore-16";
  pcfg.qam_order = 16;
  pcfg.threads = 2;
  fa::UplinkPipeline pipe(pcfg);
  const auto faced = fs::measure_throughput(pipe, lcfg, tcfg, nv, 4, 31);

  EXPECT_EQ(faced.throughput_mbps, direct.throughput_mbps);
  EXPECT_EQ(faced.per_user_per, direct.per_user_per);
  EXPECT_GT(pipe.channel_installs(), 0u);
  EXPECT_GT(pipe.vectors_detected(), 0u);
}

TEST(Integration, EstimatedCsiLinkConvergesToGenie) {
  Constellation qam(16);
  const auto det = fa::make_detector("flexcore-32", {.constellation = &qam});
  ch::Rng rng(23);
  const auto h = ch::rayleigh_iid(6, 6, rng);
  const double nv = ch::noise_var_for_snr_db(12.0);

  auto count_errors = [&](bool genie, std::size_t repeats) {
    ch::Rng data_rng(24);
    if (genie) {
      det->set_channel(h, nv);
    } else {
      ch::Rng pilot_rng(25);
      const auto est = ch::estimate_channel(h, nv, repeats, pilot_rng);
      det->set_channel(est.h_hat, est.noise_var_hat);
    }
    std::size_t err = 0;
    for (int v = 0; v < 200; ++v) {
      flexcore::linalg::CVec s(6);
      std::vector<int> tx(6);
      for (int u = 0; u < 6; ++u) {
        tx[static_cast<std::size_t>(u)] = static_cast<int>(data_rng.uniform_int(16));
        s[static_cast<std::size_t>(u)] = qam.point(tx[static_cast<std::size_t>(u)]);
      }
      const auto y = ch::transmit(h, s, nv, data_rng);
      const auto res = det->detect(y);
      for (int u = 0; u < 6; ++u) {
        err += res.symbols[static_cast<std::size_t>(u)] !=
               tx[static_cast<std::size_t>(u)];
      }
    }
    return err;
  };

  const auto genie = count_errors(true, 0);
  const auto est64 = count_errors(false, 64);
  const auto est1 = count_errors(false, 1);
  EXPECT_LE(est64, est1);
  EXPECT_LE(genie, est1);
  // 64 pilot repeats should be within a small additive band of genie.
  EXPECT_LE(est64, genie + 40);
}
