#!/usr/bin/env python3
"""CI checks for the flight-recorder observability subsystem.

Two subcommands:

  validate <trace.json> [--min-events N] [--expect-track NAME ...]
      Structural validation of a Chrome trace-event file exported by
      obs::export_chrome_trace: traceEvents array, known phases only,
      complete events with non-negative durations, thread_name metadata
      covering every tid that carries events, per-tid timestamps sorted
      (the exporter emits them sorted), and stage names drawn from the
      obs::Stage taxonomy.  --expect-track asserts a named track exists
      (e.g. shard0/shard1 for the sharded bench).

  compare --baseline a1.json [a2.json ...] --candidate b1.json [...]
      Throughput gate between BENCH_*.json files (same bench, same
      sweep): the candidate's best geomean vectors_per_sec must not fall
      more than --max-regress below the baseline's best.  Used by CI to
      pin the overhead of tracing-enabled builds against FLEXCORE_OBS=0
      builds.  Accepting several files per side and taking the best of
      each is deliberate: single runs on shared CI runners swing far
      more than any real tracing overhead, and best-of-N only damps
      noise — it cannot hide a systematic regression.

Exit code 0 on success, 1 on any failed check.
"""
import argparse
import json
import math
import sys

STAGES = {
    "submit", "queue-wait", "shard-partial-qr", "preprocess", "path-grid",
    "reconstruct", "complete", "control",
}


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(args):
    with open(args.trace) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail("top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail('missing "traceEvents" array')

    tracks = {}     # tid -> name
    last_ts = {}    # tid -> last seen ts
    counts = {"M": 0, "X": 0, "i": 0}
    for ev in events:
        ph = ev.get("ph")
        if ph not in counts:
            fail(f"unexpected phase {ph!r} in {ev}")
        counts[ph] += 1
        if ph == "M":
            if ev.get("name") == "thread_name":
                tracks[ev.get("tid")] = ev.get("args", {}).get("name")
            continue
        name, ts, tid = ev.get("name"), ev.get("ts"), ev.get("tid")
        if not isinstance(name, str) or not isinstance(ts, (int, float)):
            fail(f"X/i event missing name or ts: {ev}")
        if name not in STAGES:
            fail(f"unknown stage name {name!r}")
        if tid in last_ts and ts < last_ts[tid]:
            fail(f"timestamps not sorted on tid {tid}")
        last_ts[tid] = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"X event with bad dur: {ev}")
        if tid not in tracks:
            # Metadata is emitted before events; a tid seen first in an
            # event was never named.
            fail(f"tid {tid} carries events but has no thread_name")

    total = counts["X"] + counts["i"]
    if total < args.min_events:
        fail(f"only {total} span events (expected >= {args.min_events})")
    names = set(tracks.values())
    for want in args.expect_track or []:
        if want not in names:
            fail(f"expected track {want!r}; have {sorted(names)}")
    print(f"OK: {total} span events on {len(tracks)} tracks "
          f"({counts['X']} complete, {counts['i']} instant)")


def geomean_vps(path, field):
    with open(path) as f:
        doc = json.load(f)
    vals = [row[field] for row in doc.get("rows", [])
            if isinstance(row.get(field), (int, float)) and row[field] > 0]
    if not vals:
        fail(f"{path}: no positive {field!r} values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals)), len(vals)


def best_geomean(paths, field):
    runs = [geomean_vps(p, field) for p in paths]
    rows = {n for _, n in runs}
    if len(rows) != 1:
        fail(f"row count differs across {paths}: {sorted(rows)}")
    return max(g for g, _ in runs), rows.pop()


def compare(args):
    base, nb = best_geomean(args.baseline, args.field)
    cand, nc = best_geomean(args.candidate, args.field)
    if nb != nc:
        fail(f"row count mismatch: baseline {nb} vs candidate {nc}")
    ratio = cand / base
    verdict = "OK" if ratio >= 1.0 - args.max_regress else "FAIL"
    print(f"{verdict}: best geomean {args.field} baseline {base:.0f} "
          f"(of {len(args.baseline)} runs) vs candidate {cand:.0f} "
          f"(of {len(args.candidate)} runs) over {nb} rows -> "
          f"ratio {ratio:.4f} (gate {1.0 - args.max_regress:.4f})")
    if verdict == "FAIL":
        sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    v = sub.add_parser("validate")
    v.add_argument("trace")
    v.add_argument("--min-events", type=int, default=1)
    v.add_argument("--expect-track", action="append", default=[])
    v.set_defaults(func=validate)

    c = sub.add_parser("compare")
    c.add_argument("--baseline", nargs="+", required=True)
    c.add_argument("--candidate", nargs="+", required=True)
    c.add_argument("--max-regress", type=float, default=0.03)
    c.add_argument("--field", default="vectors_per_sec")
    c.set_defaults(func=compare)

    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
