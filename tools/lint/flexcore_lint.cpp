// flexcore_lint — repo-specific static checker for the hot-path contract.
//
// The paper's line-rate claim rests on datapath invariants the generic
// toolchain cannot express: annotated hot regions must not allocate or
// build std::function objects, kernel translation units must not touch
// mutexes, the int16 integer datapath must not smuggle floating point back
// in, and kernel code must stay on the SplitVec SoA convention instead of
// materializing std::complex.  clang-tidy covers the generic hygiene
// (.clang-tidy at the repo root); this tool enforces the repo rules.
//
// Usage:
//   flexcore_lint -p <build-dir> [--root <repo-root>]
//       Lints every src/ translation unit listed in the build dir's
//       compile_commands.json plus every header/.inc under src/.  Exits 1
//       if any violation is reported.
//   flexcore_lint --self-test <fixture.cpp>...
//       Negative test: lints the fixture(s) and compares the reported
//       (line, rule) set against the fixture's own
//       `// expect-violation(HPnnn)` markers.  Exits 0 iff they match
//       exactly and at least one violation fired — proving the pass
//       actually fails on seeded violations.
//   flexcore_lint --list-rules
//       Prints the rule catalog.
//
// Rule catalog (ids are stable; see tools/lint/README.md):
//   HP001 hot-path-alloc      heap allocation / container growth in a hot
//                             region (FLEXCORE_HOT_PATH function or
//                             FLEXCORE_HOT_PATH_FILE file)
//   HP002 hot-path-function   std::function in a hot region or kernel TU
//   HP003 kernel-lock         mutex / condition-variable / lock
//                             acquisition in a kernel TU
//   HP004 i16-float           floating-point type in the int16 integer
//                             datapath
//   HP005 kernel-soa          std::complex materialization / AoS complex
//                             container in kernel code (SplitVec SoA only)
//   LNT000 bad-directive      malformed `// flexcore-lint:` directive
//   LNT001 dangling-hot-path  FLEXCORE_HOT_PATH with no function body
//
// Suppressions (require a rule id; a justification after the `)` is the
// expected style):
//   code;  // flexcore-lint: allow(HP001) warm-capacity reuse
//   // flexcore-lint: allow-next-line(HP003) control-plane wakeup
//   // flexcore-lint: off   ... // flexcore-lint: on     (region)
// File classification overrides (for fixtures and new kernel files whose
// paths do not match the built-in patterns):
//   // flexcore-lint: kernel-tu
//   // flexcore-lint: i16-datapath
//
// Scanning is comment/string-aware (a `malloc` in a comment never fires)
// but deliberately token-based, not a full parse: the rules are designed
// so that textual occurrence IS the violation (type names, call tokens),
// which keeps the checker dependency-free and fast enough to run as a
// ctest.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ----------------------------------------------------------------- catalog

struct Rule {
  const char* id;
  const char* name;
  const char* what;
};

constexpr Rule kRules[] = {
    {"HP001", "hot-path-alloc",
     "heap allocation or container growth in a hot region"},
    {"HP002", "hot-path-function",
     "std::function in a hot region or kernel TU"},
    {"HP003", "kernel-lock",
     "mutex/condition-variable acquisition in a kernel translation unit"},
    {"HP004", "i16-float",
     "floating-point type in the int16 integer datapath"},
    {"HP005", "kernel-soa",
     "std::complex materialization in kernel code (SplitVec SoA only)"},
    {"LNT000", "bad-directive", "malformed flexcore-lint directive"},
    {"LNT001", "dangling-hot-path",
     "FLEXCORE_HOT_PATH annotation with no function body"},
};

bool known_rule(const std::string& id) {
  for (const Rule& r : kRules) {
    if (id == r.id) return true;
  }
  return false;
}

// ---------------------------------------------------------------- findings

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    return std::tie(file, line, rule, message) <
           std::tie(o.file, o.line, o.rule, o.message);
  }
};

// ------------------------------------------------------------ file scanner

/// One parsed source file: raw lines (directives live in comments), a
/// comment/string-stripped copy of the full text (rule tokens are matched
/// here, so commented-out code never fires), and per-line offsets into it.
struct SourceFile {
  std::string path;          // as reported in findings
  std::string text;          // raw
  std::string stripped;      // comments/strings blanked, same length
  std::vector<std::size_t> line_start;  // offset of each line in text

  std::size_t line_of(std::size_t offset) const {
    const auto it =
        std::upper_bound(line_start.begin(), line_start.end(), offset);
    return static_cast<std::size_t>(it - line_start.begin());
  }
};

/// Blanks comments and string/char literal CONTENTS (newlines survive so
/// line numbers stay aligned).  Handles raw strings with empty delimiters
/// and escapes; that covers the repo.
std::string strip_comments_and_strings(const std::string& s) {
  std::string out = s;
  enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw } st = St::kCode;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char n = i + 1 < s.size() ? s[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && n == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   s[i - 1])) &&
                               s[i - 1] != '_'))) {
          st = St::kRaw;
          out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::kStr;
        } else if (c == '\'') {
          st = St::kChar;
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && n == '/') {
          st = St::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\' && n != '\0') {
          out[i] = ' ';
          if (n != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\' && n != '\0') {
          out[i] = ' ';
          if (n != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRaw:
        // Only the empty-delimiter form R"(...)" is recognized.
        if (c == ')' && n == '"') {
          st = St::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

SourceFile load_file(const std::string& path) {
  SourceFile f;
  f.path = path;
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  f.text = ss.str();
  f.stripped = strip_comments_and_strings(f.text);
  f.line_start.push_back(0);
  for (std::size_t i = 0; i < f.text.size(); ++i) {
    if (f.text[i] == '\n') f.line_start.push_back(i + 1);
  }
  return f;
}

// -------------------------------------------------------------- directives

struct Directives {
  /// rule id -> set of suppressed 1-based lines.
  std::map<std::string, std::set<std::size_t>> allow;
  /// lines inside an off/on region (all rules suppressed).
  std::set<std::size_t> off_lines;
  bool kernel_tu = false;
  bool i16_datapath = false;
  std::vector<Finding> errors;  // LNT000
};

Directives parse_directives(const SourceFile& f) {
  Directives d;
  static const std::regex kDirective(R"(flexcore-lint:\s*([a-z0-9\-]+))");
  static const std::regex kAllow(
      R"(flexcore-lint:\s*(allow|allow-next-line)\(([A-Z]+[0-9]+)\))");
  std::istringstream in(f.text);
  std::string line;
  std::size_t lineno = 0;
  bool off = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (off) d.off_lines.insert(lineno);
    if (line.find("flexcore-lint:") == std::string::npos) continue;
    std::smatch m;
    if (std::regex_search(line, m, kAllow)) {
      const std::string rule = m[2];
      if (!known_rule(rule)) {
        d.errors.push_back({f.path, lineno, "LNT000",
                            "unknown rule '" + rule + "' in suppression"});
        continue;
      }
      d.allow[rule].insert(m[1] == "allow" ? lineno : lineno + 1);
      continue;
    }
    if (!std::regex_search(line, m, kDirective)) {
      d.errors.push_back(
          {f.path, lineno, "LNT000", "unparsable flexcore-lint directive"});
      continue;
    }
    const std::string kind = m[1];
    if (kind == "off") {
      off = true;
      d.off_lines.insert(lineno);
    } else if (kind == "on") {
      off = false;
    } else if (kind == "kernel-tu") {
      d.kernel_tu = true;
    } else if (kind == "i16-datapath") {
      d.i16_datapath = true;
    } else if (kind == "expect-violation") {
      // self-test marker, handled separately
    } else if (kind == "allow" || kind == "allow-next-line") {
      d.errors.push_back({f.path, lineno, "LNT000",
                          "suppression must name a rule: allow(HPnnn)"});
    } else {
      d.errors.push_back(
          {f.path, lineno, "LNT000", "unknown directive '" + kind + "'"});
    }
  }
  return d;
}

bool suppressed(const Directives& d, const std::string& rule,
                std::size_t line) {
  if (d.off_lines.count(line) > 0) return true;
  const auto it = d.allow.find(rule);
  return it != d.allow.end() && it->second.count(line) > 0;
}

// ------------------------------------------------------------- hot regions

/// 1-based [first, last] line ranges that are hot.
struct HotRegions {
  bool whole_file = false;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  std::vector<Finding> errors;  // LNT001

  bool contains(std::size_t line) const {
    if (whole_file) return true;
    for (const auto& [a, b] : ranges) {
      if (line >= a && line <= b) return true;
    }
    return false;
  }
  bool any() const { return whole_file || !ranges.empty(); }
};

bool ident_boundary(const std::string& s, std::size_t pos, std::size_t len) {
  const auto word = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  if (pos > 0 && word(s[pos - 1])) return false;
  if (pos + len < s.size() && word(s[pos + len])) return false;
  return true;
}

HotRegions find_hot_regions(const SourceFile& f) {
  HotRegions hr;
  const std::string& s = f.stripped;
  static const std::string kFileMarker = "FLEXCORE_HOT_PATH_FILE";
  static const std::string kFnMarker = "FLEXCORE_HOT_PATH";
  for (std::size_t pos = s.find(kFnMarker); pos != std::string::npos;
       pos = s.find(kFnMarker, pos + 1)) {
    if (!ident_boundary(s, pos, kFnMarker.size())) {
      // FLEXCORE_HOT_PATH_FILE starts with the function marker; check it
      // on its own boundary below.
      if (s.compare(pos, kFileMarker.size(), kFileMarker) == 0 &&
          ident_boundary(s, pos, kFileMarker.size())) {
        // Ignore the macro's own #define line in hot_path.h.
        const std::size_t line = f.line_of(pos);
        const std::size_t ls = f.line_start[line - 1];
        const std::size_t first = s.find_first_not_of(" \t", ls);
        if (first != std::string::npos && s[first] == '#') continue;
        hr.whole_file = true;
      }
      continue;
    }
    const std::size_t line = f.line_of(pos);
    // Ignore the macro definition itself (a preprocessor line).
    {
      const std::size_t ls = f.line_start[line - 1];
      const std::size_t first = s.find_first_not_of(" \t", ls);
      if (first != std::string::npos && s[first] == '#') continue;
    }
    // Find the annotated function's body: the next '{' at paren depth 0,
    // then its matching '}'.
    std::size_t i = pos + kFnMarker.size();
    int paren = 0;
    std::size_t open = std::string::npos;
    for (; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '(') {
        ++paren;
      } else if (c == ')') {
        --paren;
      } else if (c == '{' && paren == 0) {
        open = i;
        break;
      } else if (c == ';' && paren == 0) {
        break;  // declaration, not a definition
      }
    }
    if (open == std::string::npos) {
      hr.errors.push_back({f.path, line, "LNT001",
                           "FLEXCORE_HOT_PATH is not followed by a function "
                           "definition"});
      continue;
    }
    int depth = 0;
    std::size_t close = std::string::npos;
    for (i = open; i < s.size(); ++i) {
      if (s[i] == '{') ++depth;
      if (s[i] == '}' && --depth == 0) {
        close = i;
        break;
      }
    }
    if (close == std::string::npos) {
      hr.errors.push_back(
          {f.path, line, "LNT001", "unbalanced braces after FLEXCORE_HOT_PATH"});
      continue;
    }
    hr.ranges.emplace_back(line, f.line_of(close));
  }
  return hr;
}

// ------------------------------------------------------------ rule matching

struct TokenRule {
  const char* rule;
  std::regex pattern;
  const char* what;
};

const std::vector<TokenRule>& alloc_rules() {
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> r;
    r.push_back({"HP001",
                 std::regex(R"(\b(?:new|delete|malloc|calloc|realloc|strdup|)"
                            R"(aligned_alloc|posix_memalign|make_unique|)"
                            R"(make_shared|to_string)\b)"),
                 "allocating call"});
    r.push_back({"HP001",
                 std::regex(R"(\.\s*(?:push_back|emplace_back|resize|reserve|)"
                            R"(insert|emplace|emplace_hint|assign|append|)"
                            R"(shrink_to_fit)\s*\()"),
                 "container growth"});
    r.push_back({"HP002", std::regex(R"(\bstd\s*::\s*function\b)"),
                 "std::function"});
    return r;
  }();
  return rules;
}

const std::vector<TokenRule>& kernel_rules() {
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> r;
    r.push_back({"HP003",
                 std::regex(R"(\b(?:mutex|condition_variable|lock_guard|)"
                            R"(unique_lock|scoped_lock|shared_lock|)"
                            R"(condition_variable_any|pthread_mutex_\w+)\b)"),
                 "lock primitive"});
    r.push_back({"HP003", std::regex(R"(\.\s*(?:lock|try_lock)\s*\()"),
                 "lock acquisition"});
    r.push_back({"HP002", std::regex(R"(\bstd\s*::\s*function\b)"),
                 "std::function"});
    r.push_back({"HP005", std::regex(R"(\bstd\s*::\s*complex\s*<)"),
                 "std::complex materialization"});
    r.push_back({"HP005", std::regex(R"(\bcplx\s*\{)"),
                 "cplx aggregate construction"});
    r.push_back({"HP005",
                 std::regex(R"(\bstd\s*::\s*vector\s*<\s*(?:linalg\s*::\s*)?)"
                            R"(cplx\s*>)"),
                 "AoS complex container"});
    return r;
  }();
  return rules;
}

const std::vector<TokenRule>& i16_rules() {
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> r;
    r.push_back({"HP004",
                 std::regex(R"(\b(?:double|float)\b)"),
                 "floating-point type"});
    return r;
  }();
  return rules;
}

/// Matches `rules` against every line of `f` inside `line_filter` (a
/// predicate on 1-based line numbers), honouring suppressions.
template <typename Filter>
void match_rules(const SourceFile& f, const Directives& d,
                 const std::vector<TokenRule>& rules, Filter line_filter,
                 std::vector<Finding>* out) {
  std::istringstream in(f.stripped);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line_filter(lineno)) continue;
    // Preprocessor lines (#include <mutex>, macro definitions) name tokens
    // without using them; rules target code.
    const std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '#') continue;
    for (const TokenRule& tr : rules) {
      std::smatch m;
      if (!std::regex_search(line, m, tr.pattern)) continue;
      if (suppressed(d, tr.rule, lineno)) continue;
      std::string token = m[0];
      // Trim the token for the message.
      token.erase(std::remove_if(token.begin(), token.end(),
                                 [](char c) { return c == ' ' || c == '\t'; }),
                  token.end());
      out->push_back({f.path, lineno, tr.rule,
                      std::string(tr.what) + " `" + token + "`"});
    }
  }
}

// ---------------------------------------------------------- classification

bool path_contains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

bool is_kernel_tu(const std::string& path, const Directives& d) {
  if (d.kernel_tu) return true;
  return path_contains(path, "detect/path_kernels") ||
         path_contains(path, "detect/path_grid.h") ||
         (path.size() > 4 && path.compare(path.size() - 4, 4, ".inc") == 0 &&
          path_contains(path, "src/"));
}

bool is_i16_datapath(const std::string& path, const Directives& d) {
  if (d.i16_datapath) return true;
  return path_contains(path, "path_kernels_i16");
}

// ----------------------------------------------------------------- driver

std::vector<Finding> lint_file(const std::string& path) {
  std::vector<Finding> out;
  const SourceFile f = load_file(path);
  if (f.text.empty()) return out;
  const Directives d = parse_directives(f);
  for (const Finding& e : d.errors) out.push_back(e);
  const HotRegions hr = find_hot_regions(f);
  for (const Finding& e : hr.errors) out.push_back(e);

  if (hr.any()) {
    match_rules(f, d, alloc_rules(),
                [&](std::size_t line) { return hr.contains(line); }, &out);
  }
  if (is_kernel_tu(path, d)) {
    match_rules(f, d, kernel_rules(), [](std::size_t) { return true; }, &out);
  }
  if (is_i16_datapath(path, d)) {
    match_rules(f, d, i16_rules(), [](std::size_t) { return true; }, &out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
  return out;
}

/// Files to lint in tree mode: every src/ TU named by compile_commands.json
/// plus every .h/.inc under src/ (headers are not TUs but carry kernel and
/// hot-region code).
std::vector<std::string> collect_tree(const std::string& build_dir,
                                      const std::string& root,
                                      std::string* error) {
  std::vector<std::string> files;
  const fs::path ccj = fs::path(build_dir) / "compile_commands.json";
  std::ifstream in(ccj);
  if (!in) {
    *error = "cannot open " + ccj.string() +
             " (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)";
    return files;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  // Minimal extraction of "file": "..." values — the schema is stable.
  static const std::regex kFile("\"file\"\\s*:\\s*\"([^\"]+)\"");
  const fs::path src_root = fs::weakly_canonical(fs::path(root) / "src");
  std::set<std::string> seen;
  for (auto it = std::sregex_iterator(json.begin(), json.end(), kFile);
       it != std::sregex_iterator(); ++it) {
    const fs::path p = fs::weakly_canonical((*it)[1].str());
    const std::string ps = p.string();
    if (ps.rfind(src_root.string(), 0) == 0 && seen.insert(ps).second) {
      files.push_back(ps);
    }
  }
  if (files.empty()) {
    *error = "no src/ translation units in " + ccj.string();
    return files;
  }
  std::error_code ec;
  for (fs::recursive_directory_iterator it(src_root, ec), end;
       it != end && !ec; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if ((ext == ".h" || ext == ".inc") &&
        seen.insert(it->path().string()).second) {
      files.push_back(it->path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int run_self_test(const std::vector<std::string>& fixtures) {
  bool ok = true;
  std::size_t total = 0;
  for (const std::string& path : fixtures) {
    const SourceFile f = load_file(path);
    if (f.text.empty()) {
      std::fprintf(stderr, "flexcore_lint: cannot read fixture %s\n",
                   path.c_str());
      return 2;
    }
    // Expected (line, rule) pairs from the fixture's own markers.
    static const std::regex kExpect(
        R"(expect-violation\(([A-Z]+[0-9]+)\))");
    std::set<std::pair<std::size_t, std::string>> expected;
    {
      std::istringstream in(f.text);
      std::string line;
      std::size_t lineno = 0;
      while (std::getline(in, line)) {
        ++lineno;
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            kExpect);
             it != std::sregex_iterator(); ++it) {
          expected.emplace(lineno, (*it)[1].str());
        }
      }
    }
    std::set<std::pair<std::size_t, std::string>> got;
    for (const Finding& v : lint_file(path)) {
      got.emplace(v.line, v.rule);
      ++total;
    }
    for (const auto& [line, rule] : expected) {
      if (got.count({line, rule}) == 0) {
        std::fprintf(stderr,
                     "self-test FAIL %s:%zu: expected %s did not fire\n",
                     path.c_str(), line, rule.c_str());
        ok = false;
      }
    }
    for (const auto& [line, rule] : got) {
      if (expected.count({line, rule}) == 0) {
        std::fprintf(stderr,
                     "self-test FAIL %s:%zu: unexpected %s fired\n",
                     path.c_str(), line, rule.c_str());
        ok = false;
      }
    }
  }
  if (total == 0) {
    std::fprintf(stderr,
                 "self-test FAIL: no violation fired on any fixture — the "
                 "pass would not catch seeded violations\n");
    ok = false;
  }
  if (ok) {
    std::printf("flexcore_lint self-test OK: %zu seeded violations caught\n",
                total);
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string build_dir = "build";
  std::string root = ".";
  std::vector<std::string> fixtures;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const Rule& r : kRules) {
        std::printf("%s  %-18s %s\n", r.id, r.name, r.what);
      }
      return 0;
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "-p" && i + 1 < argc) {
      build_dir = argv[++i];
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: flexcore_lint [-p build-dir] [--root repo-root] "
                   "| --self-test fixture... | --list-rules\n");
      return 2;
    } else {
      fixtures.push_back(arg);
    }
  }

  if (self_test) return run_self_test(fixtures);

  std::string error;
  const std::vector<std::string> files =
      fixtures.empty() ? collect_tree(build_dir, root, &error) : fixtures;
  if (files.empty()) {
    std::fprintf(stderr, "flexcore_lint: %s\n", error.c_str());
    return 2;
  }
  std::size_t violations = 0;
  for (const std::string& path : files) {
    for (const Finding& v : lint_file(path)) {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                   v.rule.c_str(), v.message.c_str());
      ++violations;
    }
  }
  if (violations > 0) {
    std::fprintf(stderr, "flexcore_lint: %zu violation(s) in %zu file(s)\n",
                 violations, files.size());
    return 1;
  }
  std::printf("flexcore_lint: %zu files clean\n", files.size());
  return 0;
}
