// Seeded-violation fixture for flexcore_lint --self-test.
//
// NEVER compiled and NEVER linted as part of the tree — it exists so the
// lint ctest can prove the pass FAILS when the rules are broken.  Every
// line that must be reported carries an `expect-violation(RULE)` marker;
// the self-test fails if any marked violation is missed OR any unmarked
// line fires (so false positives in the checker are caught too).
//
// flexcore-lint: kernel-tu
// (the directive classifies this file as a kernel translation unit, the
// strictest category: lock, std::function, and SoA rules apply file-wide.)

#include <complex>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <vector>

namespace fixture {

using cplx = std::complex<double>;  // expect-violation(HP005)

// --- hot-region rules: HP001 / HP002 -------------------------------------

#define FLEXCORE_HOT_PATH

FLEXCORE_HOT_PATH
inline int hot_function(std::vector<int>& v) {
  int* leak = new int[8];                    // expect-violation(HP001)
  void* raw = std::malloc(64);               // expect-violation(HP001)
  v.push_back(1);                            // expect-violation(HP001)
  v.resize(32);                              // expect-violation(HP001)
  std::function<int(int)> f = [](int x) {    // expect-violation(HP002)
    return x + 1;
  };
  std::free(raw);
  delete[] leak;                             // expect-violation(HP001)
  return f(static_cast<int>(v.size()));
}

// A justified suppression must NOT be reported: warm-capacity reuse is the
// repo's sanctioned pattern.
FLEXCORE_HOT_PATH
inline void hot_function_with_allow(std::vector<int>& v) {
  v.resize(16);  // flexcore-lint: allow(HP001) warm-capacity reuse, fixture
}

// Outside any hot region, allocation is fine (cold setup code) — this must
// NOT be reported even though the file is a kernel TU.
inline void cold_setup(std::vector<int>& v) { v.reserve(1024); }

// An annotation with no function body is itself an error.
FLEXCORE_HOT_PATH             // expect-violation(LNT001)
void declared_only(int rank);

// --- kernel-TU-wide rules: HP003 / HP005 ---------------------------------

std::mutex g_mu;                             // expect-violation(HP003)

inline void kernel_takes_lock() {
  g_mu.lock();                               // expect-violation(HP003)
  g_mu.unlock();
}

inline cplx materialize(double re, double im) {
  return cplx{re, im};                       // expect-violation(HP005)
}

std::vector<cplx> g_aos_buffer;              // expect-violation(HP005)

// Words that merely CONTAIN rule tokens must not fire: `block`, `clock`,
// `newton` contain `lock`/`new` but are not violations.
inline int eval_block(int clock_ticks, int newton_iters) {
  return clock_ticks + newton_iters;
}

// flexcore-lint: off
// Inside an off region nothing fires, even in a kernel TU:
inline void suppressed_region() { g_mu.lock(); }
// flexcore-lint: on

}  // namespace fixture
