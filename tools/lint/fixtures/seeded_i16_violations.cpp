// Seeded-violation fixture for the HP004 i16-datapath rule.
//
// Kept separate from seeded_violations.cpp because the i16-datapath
// directive makes EVERY floating-point type in the file a violation — the
// other fixture needs double/float freely for its HP005 cases.
//
// flexcore-lint: i16-datapath

#include <cstdint>

namespace fixture_i16 {

// Integer-only code is fine: the whole point of the i16 tier is that the
// inner product, slicing, and metric accumulation stay in int16/int32.
inline std::int32_t accumulate(const std::int16_t* re, const std::int16_t* im,
                               int n) {
  std::int32_t acc = 0;
  for (int i = 0; i < n; ++i) {
    acc += static_cast<std::int32_t>(re[i]) * im[i];
  }
  return acc;
}

inline double unscale_metric(std::int32_t acc) {   // expect-violation(HP004)
  return static_cast<double>(acc) * 0.5;           // expect-violation(HP004)
}

inline float creeping_float = 1.0f;                // expect-violation(HP004)

// The sanctioned boundary pattern: the fp conversion at the kernel exit is
// suppressed with a justification, exactly like the real
// path_kernels_i16_kernel.inc unscale epilogue.
// flexcore-lint: allow-next-line(HP004) i16->fp metric boundary, fixture
inline double sanctioned_unscale(std::int32_t acc) {
  // flexcore-lint: allow-next-line(HP004) i16->fp metric boundary, fixture
  return static_cast<double>(acc);
}

}  // namespace fixture_i16
