// trace_dump: inspect / validate Chrome trace-event JSON written by
// obs::export_chrome_trace (fig15/fig18 FLEXCORE_TRACE_OUT, tests).
//
//   trace_dump <trace.json>            per-stage & per-track summary table
//   trace_dump --validate <trace.json> structural checks only, exit 0/1
//   trace_dump --self-test             record a synthetic trace through the
//                                      obs API, export, re-parse, validate
//
// Validation (what CI's obs-smoke job relies on):
//   * top level is an object with a "traceEvents" array
//   * every event is an object with a string "ph"
//   * ph:"X" events carry name/ts/dur (numbers, dur >= 0) and pid/tid
//   * ph:"M" thread_name metadata names every tid used by an X/i event
//   * per tid, X events sorted by ts (the exporter emits them sorted)
//
// The JSON parser below is deliberately minimal (objects, arrays, strings
// with escapes, numbers, true/false/null) — enough for the trace format,
// zero dependencies.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "obs/trace_export.h"

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* find(const char* key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue* out, std::string* error) {
    skip_ws();
    if (!value(out)) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "parse error near offset %zu", pos_);
      *error = buf;
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      *error = "trailing characters after the top-level value";
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return string(&out->str);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return literal("null");
      default: return number(out);
    }
  }

  bool object(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      JsonValue v;
      if (!value(&v)) return false;
      out->members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool array(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue v;
      if (!value(&v)) return false;
      out->items.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          // Keep it simple: \uXXXX outside ASCII becomes '?'.
          if (pos_ + 4 > s_.size()) return false;
          const unsigned long cp = std::strtoul(s_.substr(pos_, 4).c_str(),
                                                nullptr, 16);
          pos_ += 4;
          out->push_back(cp < 0x80 ? static_cast<char>(cp) : '?');
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool number(JsonValue* out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return false;
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Validation + summary
// ---------------------------------------------------------------------------

struct TraceReport {
  std::size_t events = 0;
  std::size_t complete = 0;  ///< ph:"X"
  std::size_t instants = 0;  ///< ph:"i"
  std::map<std::string, std::string> track_names;  ///< tid -> thread_name
  struct StageAgg {
    std::size_t count = 0;
    double total_us = 0.0;
    double min_us = 1e300;
    double max_us = 0.0;
  };
  std::map<std::string, StageAgg> stages;
  std::map<std::string, std::size_t> per_track;  ///< tid -> event count
};

std::string tid_key(const JsonValue& ev) {
  const JsonValue* tid = ev.find("tid");
  if (tid == nullptr) return "?";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", tid->number);
  return buf;
}

bool analyze(const JsonValue& root, TraceReport* report, std::string* error) {
  if (root.type != JsonValue::Type::kObject) {
    *error = "top level is not an object";
    return false;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    *error = "missing \"traceEvents\" array";
    return false;
  }
  std::map<std::string, double> last_ts;  // per-tid sortedness check
  for (const JsonValue& ev : events->items) {
    if (ev.type != JsonValue::Type::kObject) {
      *error = "event is not an object";
      return false;
    }
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr || ph->type != JsonValue::Type::kString) {
      *error = "event without a string \"ph\"";
      return false;
    }
    ++report->events;
    const std::string tid = tid_key(ev);
    if (ph->str == "M") {
      const JsonValue* name = ev.find("name");
      const JsonValue* args = ev.find("args");
      if (name != nullptr && name->str == "thread_name" && args != nullptr) {
        if (const JsonValue* n = args->find("name")) {
          report->track_names[tid] = n->str;
        }
      }
      continue;
    }
    if (ph->str != "X" && ph->str != "i") {
      *error = "unexpected event phase \"" + ph->str + "\"";
      return false;
    }
    const JsonValue* name = ev.find("name");
    const JsonValue* ts = ev.find("ts");
    if (name == nullptr || name->type != JsonValue::Type::kString ||
        ts == nullptr || ts->type != JsonValue::Type::kNumber) {
      *error = "X/i event missing name or ts";
      return false;
    }
    ++report->per_track[tid];
    auto [it, inserted] = last_ts.try_emplace(tid, ts->number);
    if (!inserted) {
      if (ts->number < it->second) {
        *error = "timestamps not sorted on tid " + tid;
        return false;
      }
      it->second = ts->number;
    }
    if (ph->str == "i") {
      ++report->instants;
      continue;
    }
    const JsonValue* dur = ev.find("dur");
    if (dur == nullptr || dur->type != JsonValue::Type::kNumber ||
        dur->number < 0.0) {
      *error = "X event with missing or negative dur";
      return false;
    }
    ++report->complete;
    auto& agg = report->stages[name->str];
    ++agg.count;
    agg.total_us += dur->number;
    agg.min_us = std::min(agg.min_us, dur->number);
    agg.max_us = std::max(agg.max_us, dur->number);
  }
  // Every tid that carries events must be named by thread_name metadata.
  for (const auto& [tid, count] : report->per_track) {
    if (report->track_names.find(tid) == report->track_names.end()) {
      *error = "tid " + tid + " has events but no thread_name metadata";
      return false;
    }
  }
  return true;
}

void print_summary(const TraceReport& report) {
  std::printf("events: %zu  (complete %zu, instant %zu, tracks %zu)\n\n",
              report.events, report.complete, report.instants,
              report.track_names.size());
  std::printf("%-18s %-8s %-12s %-12s %-12s %-12s\n", "stage", "count",
              "total us", "mean us", "min us", "max us");
  for (const auto& [stage, agg] : report.stages) {
    std::printf("%-18s %-8zu %-12.1f %-12.1f %-12.1f %-12.1f\n",
                stage.c_str(), agg.count, agg.total_us,
                agg.total_us / static_cast<double>(agg.count), agg.min_us,
                agg.max_us);
  }
  std::printf("\n%-8s %-16s %-8s\n", "tid", "track", "events");
  for (const auto& [tid, count] : report.per_track) {
    const auto it = report.track_names.find(tid);
    std::printf("%-8s %-16s %-8zu\n", tid.c_str(),
                it != report.track_names.end() ? it->second.c_str() : "?",
                count);
  }
}

bool validate_text(const std::string& text, TraceReport* report,
                   std::string* error) {
  JsonValue root;
  JsonParser parser(text);
  return parser.parse(&root, error) && analyze(root, report, error);
}

// ---------------------------------------------------------------------------
// Self test: synthesize a trace through the real recorder, round-trip it.
// ---------------------------------------------------------------------------

int self_test() {
  namespace obs = flexcore::obs;
  obs::ObsConfig cfg;
  cfg.sample_every = 1;
  cfg.ring_capacity = 64;
  obs::reset_for_test(cfg);

  obs::set_thread_track("driver");
  const obs::TraceCtx a = obs::begin_frame(/*cell=*/0);
  const obs::TraceCtx b = obs::begin_frame(/*cell=*/1);
  const std::uint64_t t0 = obs::now_ns();
  obs::record_span(obs::Stage::kSubmit, t0, t0 + 1500, a);
  obs::record_span(obs::Stage::kPathGrid, t0 + 2000, t0 + 9000, a);
  obs::record_instant(obs::Stage::kControl, t0 + 500, a,
                      static_cast<std::uint32_t>(
                          obs::ControlReason::kLoadDegrade));
  std::thread worker([&] {
    obs::set_thread_track("worker");
    obs::record_span(obs::Stage::kPreprocess, t0 + 100, t0 + 1100, b, 3);
  });
  worker.join();

  const std::string json = obs::chrome_trace_json();
  TraceReport report;
  std::string error;
  if (!validate_text(json, &report, &error)) {
    std::fprintf(stderr, "self-test: invalid trace: %s\n", error.c_str());
    return 1;
  }
  bool ok = report.complete == 3 && report.instants == 1 &&
            report.track_names.size() == 2;
  for (const auto& [tid, name] : report.track_names) {
    if (name != "driver" && name != "worker") ok = false;
  }
  if (report.stages.find("path-grid") == report.stages.end() ||
      report.stages.find("preprocess") == report.stages.end()) {
    ok = false;
  }
  if (!ok) {
    std::fprintf(stderr, "self-test: unexpected trace contents:\n%s\n",
                 json.c_str());
    return 1;
  }
  print_summary(report);
  std::printf("\nself-test: PASS\n");
  return 0;
}

bool read_file(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool validate_only = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-test") == 0) return self_test();
    if (std::strcmp(argv[i], "--validate") == 0) {
      validate_only = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: trace_dump [--validate] <trace.json>\n"
                 "       trace_dump --self-test\n");
    return 2;
  }
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }
  TraceReport report;
  std::string error;
  if (!validate_text(text, &report, &error)) {
    std::fprintf(stderr, "%s: INVALID: %s\n", path, error.c_str());
    return 1;
  }
  if (validate_only) {
    std::printf("%s: OK (%zu events, %zu tracks)\n", path, report.events,
                report.track_names.size());
  } else {
    print_summary(report);
  }
  return 0;
}
