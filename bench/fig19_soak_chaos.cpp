// Fig. 19 (new, beyond the paper): long-horizon chaos soak of the serving
// stack.  Four scenario campaigns (sim::default_soak_corpus — mobility,
// churn, interference, diurnal) drive a ShardedRuntime through thousands of
// frames and >= 1000 detector reconfigurations while fault::Injector
// corrupts payloads/channels, fails and stalls antenna clusters, squeezes
// deadlines and fires submit storms — all from one fixed seed, so any
// failure replays exactly.  The harness asserts the robustness contract
// (zero ticket loss, per-cell FIFO, fault containment, accounting identity,
// bounded SER vs a synchronous oracle, and a still-clean steady-state hot
// path afterwards) and exits non-zero on ANY violation.  Emits
// BENCH_soak.json as the per-scenario scorecard.
//
// Knobs: FLEXCORE_SOAK_ROUNDS (default 128; the >= 1000-reconfiguration
// gate is enforced at >= 128) and FLEXCORE_SOAK_SEED.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "channel/channel.h"
#include "parallel/hot_path_guard.h"
#include "sim/frame_synth.h"
#include "sim/soak.h"

namespace fa = flexcore::api;
namespace fb = flexcore::bench;
namespace fp = flexcore::parallel;
namespace fs = flexcore::sim;
namespace ch = flexcore::channel;

namespace {

/// The "no alloc/lock regressions on the clean hot path" invariant: after
/// every chaos campaign ran in this process, a warmed steady-state
/// detect_frame must still be heap- and lock-free on a threads=1 pipeline.
bool clean_hot_path_ok() {
  fa::PipelineConfig cfg;
  cfg.detector = "flexcore-16";
  cfg.qam_order = 16;
  cfg.threads = 1;
  fa::UplinkPipeline pipe(cfg);
  const double noise_var = ch::noise_var_for_snr_db(14.0);
  const fs::SynthFrame fr =
      fs::synth_frame(pipe.constellation(), 6, 3, 4, 4, noise_var, 31);
  fa::FrameJob job = fs::frame_job_of(fr, noise_var);
  fa::FrameResult out;
  pipe.detect_frame(job, &out);  // cold: preprocess + buffer growth
  job.reuse_preprocessing = true;
  pipe.detect_frame(job, &out);  // warm-up reuse pass

  fp::HotPathScope guard("post-soak steady state",
                         fp::HotPathScope::Scope::kThread);
  pipe.detect_frame(job, &out);
  const auto d = guard.delta();
  const bool alloc_ok = !fp::hot_path_guard_enabled() || d.allocations == 0;
  const bool lock_ok = d.lock_acquisitions == 0;
  std::printf("clean hot path: allocations=%llu locks=%llu  %s\n",
              static_cast<unsigned long long>(d.allocations),
              static_cast<unsigned long long>(d.lock_acquisitions),
              alloc_ok && lock_ok ? "OK" : "VIOLATION");
  return alloc_ok && lock_ok;
}

}  // namespace

int main() {
  const std::size_t rounds = fb::env_size("FLEXCORE_SOAK_ROUNDS", 128);
  const auto seed =
      static_cast<std::uint64_t>(fb::env_size("FLEXCORE_SOAK_SEED", 20170327));

  fb::banner("fig19: fault-injection chaos soak");
  std::printf("rounds/scenario: %zu  seed: %llu\n", rounds,
              static_cast<unsigned long long>(seed));

  fb::BenchJson json("soak");
  std::size_t total_reconfigs = 0;
  std::size_t total_violations = 0;
  std::size_t scenarios_run = 0;

  std::printf("%-20s %8s %6s %6s %6s %6s %6s %9s %7s %7s %6s\n", "scenario",
              "frames", "done", "quar", "fail", "drop", "expd", "reconfigs",
              "faults", "bypass", "ok");
  fb::rule();

  for (const fs::SoakScenarioConfig& cfg :
       fs::default_soak_corpus(rounds, seed)) {
    const fs::SoakScenarioReport rep = fs::run_soak_scenario(cfg);
    ++scenarios_run;
    total_reconfigs += rep.reconfigs;
    total_violations += rep.violations.size();

    std::printf("%-20s %8zu %6zu %6zu %6zu %6zu %6zu %9zu %7llu %7llu %6s\n",
                rep.name.c_str(), rep.frames_submitted, rep.frames_done,
                rep.frames_quarantined, rep.frames_failed, rep.frames_dropped,
                rep.frames_expired, rep.reconfigs,
                static_cast<unsigned long long>(rep.faults_injected),
                static_cast<unsigned long long>(rep.shard_bypasses),
                rep.ok() ? "yes" : "NO");
    for (const std::string& v : rep.violations) {
      std::printf("    VIOLATION: %s\n", v.c_str());
    }

    json.row()
        .field("scenario", rep.name)
        .field("rounds", rounds)
        .field("frames_submitted", rep.frames_submitted)
        .field("frames_done", rep.frames_done)
        .field("frames_quarantined", rep.frames_quarantined)
        .field("frames_failed", rep.frames_failed)
        .field("frames_dropped", rep.frames_dropped)
        .field("frames_expired", rep.frames_expired)
        .field("reconfigs", rep.reconfigs)
        .field("faults_injected",
               static_cast<std::size_t>(rep.faults_injected))
        .field("injected_bad", rep.injected_bad)
        .field("injected_bad_done", rep.injected_bad_done)
        .field("tickets_lost", rep.tickets_lost)
        .field("fifo_violations", rep.fifo_violations)
        .field("spot_checks", rep.spot_checks)
        .field("bit_mismatches", rep.bit_mismatches)
        .field("clean_symbols", rep.clean_symbols)
        .field("clean_errors", rep.clean_errors)
        .field("oracle_errors", rep.oracle_errors)
        .field("shard_retries", static_cast<std::size_t>(rep.shard_retries))
        .field("shard_bypasses",
               static_cast<std::size_t>(rep.shard_bypasses))
        .field("watchdog_transitions",
               static_cast<std::size_t>(rep.watchdog_transitions))
        .field("worst_health", rep.worst_health)
        .field("violations", rep.violations.size())
        .field("seconds", rep.seconds)
        .field("ok", rep.ok() ? "true" : "false");
  }

  fb::rule();
  const bool hot_ok = clean_hot_path_ok();
  total_violations += !hot_ok;

  // The acceptance gate of the default budget: >= 1000 reconfigurations
  // across >= 4 scenarios.  Shorter budgets (CI smoke with a reduced
  // FLEXCORE_SOAK_ROUNDS) keep every other invariant.
  const bool reconfig_goal =
      scenarios_run >= 4 && (rounds < 128 || total_reconfigs >= 1000);
  if (!reconfig_goal) {
    std::printf("VIOLATION: reconfiguration goal missed (%zu scenarios, "
                "%zu reconfigs)\n",
                scenarios_run, total_reconfigs);
  }

  std::printf("total: %zu scenarios, %zu reconfigurations, %zu violations\n",
              scenarios_run, total_reconfigs, total_violations);
  json.write();
  return total_violations == 0 && reconfig_goal ? 0 : 1;
}
