// Fig. 14 reproduction: the per-level probability model P_Nt(k) (Appendix
// Eq. 11 — geometric in the closeness rank k) against Monte-Carlo
// simulation, at SNR = 1 dB and 15 dB.
//
// The experiment: transmit a 16-QAM symbol over AWGN, rank all
// constellation points by distance to the received sample, and histogram
// the rank of the *transmitted* point.  The model predicts
// P(k) = (1 - Pe) * Pe^(k-1) with Pe anchored to the k = 1 probability
// (the exact AWGN SER).  The paper's Fig. 14 additionally overlays WARP
// measurements; our substitution (DESIGN.md) is the synthetic AWGN channel,
// which is exactly what the model describes.
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "channel/rng.h"
#include "modulation/constellation.h"
#include "modulation/error_rates.h"

namespace ch = flexcore::channel;
namespace fm = flexcore::modulation;
namespace fb = flexcore::bench;

int main() {
  const std::size_t trials = fb::env_size("FLEXCORE_TRIALS", 200000);
  fm::Constellation qam(16);
  const int kmax = 10;

  fb::banner("Fig. 14: per-level probability P(k) — model vs simulation");

  for (double snr_db : {1.0, 15.0}) {
    const double nv = std::pow(10.0, -snr_db / 10.0);  // Es = 1

    // Monte-Carlo rank histogram.
    std::vector<double> hist(static_cast<std::size_t>(qam.order()), 0.0);
    ch::Rng rng(31337);
    for (std::size_t t = 0; t < trials; ++t) {
      const int tx = static_cast<int>(rng.uniform_int(16));
      const auto y = qam.point(tx) + rng.cgaussian(nv);
      // Rank of the transmitted symbol among all by distance.
      const double d_tx = std::abs(qam.point(tx) - y);
      int rank = 1;
      for (int s = 0; s < qam.order(); ++s) {
        if (s == tx) continue;
        const double d = std::abs(qam.point(s) - y);
        if (d < d_tx || (d == d_tx && s < tx)) ++rank;
      }
      hist[static_cast<std::size_t>(rank - 1)] += 1.0;
    }
    for (double& hcount : hist) hcount /= static_cast<double>(trials);

    // Geometric model anchored at the exact SER (Eq. 10/11).
    const double pe = fm::qam_symbol_error(qam, 1.0, nv);
    // Literal Eq. 4 variant for contrast.
    const double pe_paper = fm::level_error_probability(
        fm::PeModel::kPaperErfc, qam, 1.0, nv);

    std::printf("\nSNR = %.0f dB (Pe model: exact-SER %.4f, literal Eq.4 "
                "%.4g)\n", snr_db, pe, pe_paper);
    std::printf("%-5s %-14s %-14s %-12s\n", "k", "model P(k)", "simulated",
                "ratio");
    fb::rule();
    for (int k = 1; k <= kmax; ++k) {
      const double model = (1.0 - pe) * std::pow(pe, k - 1);
      const double sim = hist[static_cast<std::size_t>(k - 1)];
      std::printf("%-5d %-14.5g %-14.5g %-12.3f\n", k, model, sim,
                  sim > 0 ? model / sim : 0.0);
    }
  }

  std::printf("\nShape check vs the paper: the model tracks simulation "
              "across all SNR regimes\n(Fig. 14 shows agreement over "
              "k = 1..10 at both 1 dB and 15 dB).\n");
  return 0;
}
