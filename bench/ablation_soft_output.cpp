// Extension evaluation (§7's "promising next step"): list-based soft output.
//
// FlexCore's parallel path evaluation produces a candidate list for free,
// from which max-log LLRs fall out (core::FlexCoreDetector::detect_soft).
// This bench measures what the extension buys over hard-decision Viterbi
// at the packet level, across SNRs and PE budgets.
#include <cstdio>

#include "api/detector_registry.h"
#include "bench_util.h"
#include "channel/trace.h"
#include "core/flexcore_detector.h"
#include "sim/montecarlo.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fs = flexcore::sim;
namespace fb = flexcore::bench;
using flexcore::modulation::Constellation;

int main() {
  const std::size_t packets = fb::env_size("FLEXCORE_PACKETS", 12);
  Constellation qam(64);

  fs::LinkConfig lcfg;
  lcfg.qam_order = 64;
  lcfg.info_bits_per_user = 1152;
  ch::TraceConfig tcfg;
  tcfg.nr = 8;
  tcfg.nt = 8;

  fb::banner("Extension: list-based soft output vs hard decisions "
             "(8x8 64-QAM)");
  std::printf("%-8s %-6s %-22s %-22s %-12s\n", "SNR dB", "PEs",
              "hard: PER / Mbit/s", "soft: PER / Mbit/s", "gain (Mb/s)");
  fb::rule();

  for (double snr : {14.0, 15.0, 16.0, 17.0}) {
    const double nv = ch::noise_var_for_snr_db(snr);
    for (std::size_t pes : {16u, 64u}) {
      const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
          "flexcore-" + std::to_string(pes), {.constellation = &qam});

      const auto hard =
          fs::measure_throughput(*det, lcfg, tcfg, nv, packets, 11);
      const auto soft =
          fs::measure_throughput_soft(*det, lcfg, tcfg, nv, packets, 11);
      std::printf("%-8.1f %-6zu %6.3f / %-13.1f %6.3f / %-13.1f %-+12.1f\n",
                  snr, pes, hard.avg_per, hard.throughput_mbps, soft.avg_per,
                  soft.throughput_mbps,
                  soft.throughput_mbps - hard.throughput_mbps);
    }
  }

  std::printf("\nReading: the soft extension converts the already-computed "
              "path list into coding\ngain, largest near the PER cliff and "
              "with richer lists (more PEs).\n");
  return 0;
}
