// Extension evaluation (§6): K-best with per-level widths chosen by
// FlexCore's probability model vs classic constant-K K-best.
//
// §6's criticism of K-best is that one constant K must cover the weakest
// level, so dense constellations force K (and the per-level sort) up.
// The adaptive variant reads the per-level widths straight from the
// pre-processing model.  Compared at matched *work* (sum of survivor
// widths across levels ~ equal), the adaptive allocation should achieve
// lower SER — or equivalently, equal SER at less work.
#include <cstdio>
#include <numeric>
#include <vector>

#include "api/detector_registry.h"
#include "bench_util.h"
#include "channel/channel.h"
#include "core/adaptive_kbest.h"
#include "detect/kbest.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace fb = flexcore::bench;
using flexcore::modulation::Constellation;

namespace {

template <typename D>
std::pair<double, double> run(D& det, const Constellation& c, std::size_t nt,
                              double nv, std::size_t trials) {
  ch::Rng rng(25);
  std::size_t errors = 0, symbols = 0;
  double avg_width = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    ch::Rng hrng(5000 + t);
    const auto gains = ch::bounded_user_gains(nt, 3.0, hrng);
    const auto h = ch::kronecker_channel(nt, nt, 0.4, gains, hrng);
    det.set_channel(h, nv);
    avg_width += static_cast<double>(det.parallel_tasks());
    flexcore::linalg::CVec s(nt);
    std::vector<int> tx(nt);
    for (std::size_t u = 0; u < nt; ++u) {
      tx[u] = static_cast<int>(rng.uniform_int(
          static_cast<std::uint64_t>(c.order())));
      s[u] = c.point(tx[u]);
    }
    const auto y = ch::transmit(h, s, nv, rng);
    const auto res = det.detect(y);
    for (std::size_t u = 0; u < nt; ++u) {
      ++symbols;
      errors += res.symbols[u] != tx[u];
    }
  }
  return {static_cast<double>(errors) / static_cast<double>(symbols),
          avg_width / static_cast<double>(trials)};
}

}  // namespace

int main() {
  const std::size_t trials = fb::env_size("FLEXCORE_TRIALS", 300);
  Constellation qam(64);
  const std::size_t nt = 8;
  const double nv = ch::noise_var_for_snr_db(17.0);

  fb::banner("Extension: model-adaptive K-best vs constant-K (8x8 64-QAM)");
  std::printf("%-22s %-12s %-18s\n", "detector", "SER", "widest level K");
  fb::rule();

  for (std::size_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const auto kbest = fa::make_detector("kbest-" + std::to_string(k),
                                         {.constellation = &qam});
    const auto [ser, width] = run(*kbest, qam, nt, nv, trials);
    std::printf("%-22s %-12.4f %-18.1f\n",
                ("kbest-" + std::to_string(k)).c_str(), ser, width);
  }
  for (std::size_t budget : {16u, 64u, 128u}) {
    const auto akbest = fa::make_detector("akbest-" + std::to_string(budget),
                                          {.constellation = &qam});
    const auto [ser, width] = run(*akbest, qam, nt, nv, trials);
    std::printf("%-22s %-12.4f %-18.1f\n",
                ("akbest-" + std::to_string(budget)).c_str(), ser, width);
  }

  // Show a typical adaptive width profile.
  const auto sample = fa::make_detector_as<fc::AdaptiveKBestDetector>(
      "akbest-64", {.constellation = &qam});
  ch::Rng hrng(5001);
  const auto gains = ch::bounded_user_gains(nt, 3.0, hrng);
  const auto h = ch::kronecker_channel(nt, nt, 0.4, gains, hrng);
  sample->set_channel(h, nv);
  std::printf("\nper-level widths for one channel (budget 64): [");
  const auto& widths = sample->level_widths();
  for (std::size_t l = 0; l < widths.size(); ++l) {
    std::printf("%zu%s", widths[l], l + 1 < widths.size() ? "," : "");
  }
  std::printf("]\n");

  std::printf(
      "\nReading: the model turns a path budget into a per-level width "
      "profile that tapers\ntoward the reliable levels (see the sample "
      "profile), matching the SER of the\nconstant-K detector at its widest "
      "width while trimming the sorted lists everywhere\nelse — §6's "
      "\"adaptively select the value of K ... per Sphere decoding tree "
      "level\".\n");
  return 0;
}
