// Validation of the 16-bit premise, model and shipped kernel together:
//
//  * Panel 1 — the FPGA cost model's Q(16,11) reference walk
//    (perfmodel/fixed_path.h): how often does a FlexCore engine whose
//    datapath is quantized to the shared Q-format make the same decision
//    as the double-precision engine?  Table 3 / Fig. 13 adopt the paper's
//    16-bit synthesis numbers on this premise.
//  * Panel 2 — the shipped ":i16" kernel tier (detect/PathPlanI16), which
//    derives per-channel scale factors but caps fractional resolution at
//    the SAME perfmodel::I16Format::kFracBits, so the model and the kernel
//    can never quietly use different number formats.  Its end-to-end SER
//    may exceed fp64's by at most detect::kI16SerTolerance — the bench
//    exits non-zero if it does.
//
// Results land in BENCH_fixed_point.json for cross-PR tracking.
#include <cstdio>
#include <vector>

#include "api/detector_registry.h"
#include "bench_json.h"
#include "bench_util.h"
#include "channel/channel.h"
#include "core/flexcore_detector.h"
#include "detect/path_kernels.h"
#include "parallel/thread_pool.h"
#include "perfmodel/fixed_path.h"
#include "perfmodel/fixed_point.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace pm = flexcore::perfmodel;
namespace fb = flexcore::bench;
using flexcore::modulation::Constellation;

namespace {

struct Case {
  int qam;
  double snr;
};
constexpr Case kCases[] = {{16, 11.0}, {16, 15.0}, {64, 15.0},
                           {64, 18.0}, {64, 22.0}};

}  // namespace

int main() {
  const std::size_t channels = fb::env_size("FLEXCORE_TRIALS", 40);
  const std::size_t vectors_per_channel = 10;
  const std::size_t nt = 8;
  fb::BenchJson json("fixed_point");

  fb::banner("16-bit fixed point: Q-format model walk + shipped :i16 tier");
  std::printf("shared Q-format: Q(%d,%d) (perfmodel::I16Format)\n\n",
              pm::I16Format::kTotalBits - pm::I16Format::kFracBits,
              pm::I16Format::kFracBits);
  std::printf("%-10s %-8s %-20s %-12s %-12s %-10s\n", "QAM", "SNR dB",
              "model agreement", "SER fp64", "SER i16", "gap");
  fb::rule();

  flexcore::parallel::ThreadPool pool(2);
  double worst_gap = 0.0;
  for (const Case& cs : kCases) {
    Constellation qam(cs.qam);
    const fa::DetectorConfig dcfg{.constellation = &qam};
    const auto det64 =
        fa::make_detector_as<fc::FlexCoreDetector>("flexcore-64", dcfg);
    const auto det16 =
        fa::make_detector_as<fc::FlexCoreDetector>("flexcore-64:i16", dcfg);
    det64->set_thread_pool(&pool);
    det16->set_thread_pool(&pool);
    const double nv = ch::noise_var_for_snr_db(cs.snr);

    double agreement = 0.0;
    std::size_t symbols = 0, err64 = 0, err16 = 0;
    ch::Rng rng(7);
    std::vector<std::vector<int>> tx(vectors_per_channel,
                                     std::vector<int>(nt));
    std::vector<flexcore::linalg::CVec> ys(vectors_per_channel);
    flexcore::linalg::CVec s(nt);
    fd::BatchResult out64, out16;
    for (std::size_t c = 0; c < channels; ++c) {
      const auto h = ch::rayleigh_iid(nt, nt, rng);
      det64->set_channel(h, nv);
      det16->set_channel(h, nv);
      for (std::size_t v = 0; v < vectors_per_channel; ++v) {
        for (std::size_t u = 0; u < nt; ++u) {
          tx[v][u] = static_cast<int>(
              rng.uniform_int(static_cast<std::uint64_t>(cs.qam)));
          s[u] = qam.point(tx[v][u]);
        }
        ys[v] = ch::transmit(h, s, nv, rng);
      }
      agreement += pm::fixed_vs_double_agreement(*det64, ys);
      det64->detect_batch(ys, &out64);
      det16->detect_batch(ys, &out16);
      for (std::size_t v = 0; v < vectors_per_channel; ++v) {
        for (std::size_t u = 0; u < nt; ++u) {
          ++symbols;
          err64 += out64.results[v].symbols[u] != tx[v][u];
          err16 += out16.results[v].symbols[u] != tx[v][u];
        }
      }
    }
    agreement /= static_cast<double>(channels);
    const double ser64 = static_cast<double>(err64) / static_cast<double>(symbols);
    const double ser16 = static_cast<double>(err16) / static_cast<double>(symbols);
    const double gap = ser16 - ser64;
    worst_gap = std::max(worst_gap, gap);
    std::printf("%-10d %-8.1f %-20.4f %-12.5f %-12.5f %+-10.5f\n", cs.qam,
                cs.snr, agreement, ser64, ser16, gap);
    json.row()
        .field("qam", cs.qam)
        .field("snr_db", cs.snr)
        .field("mimo", nt)
        .field("frac_bits", pm::I16Format::kFracBits)
        .field("model_agreement", agreement)
        .field("ser_fp64", ser64)
        .field("ser_i16", ser16)
        .field("ser_gap", gap)
        .field("kernel_frac_bits", det16->plan_i16().frac_bits())
        .field("kernel_point_bits", det16->plan_i16().point_bits());
  }

  std::printf("\nReading: the Q4.11 model walk tracks double-precision "
              "decisions closely AND the\nshipped :i16 kernel tier (same "
              "fractional cap) holds its end-to-end SER within\n%.3f of "
              "fp64 — the premise behind Table 3 / Fig. 13 and the "
              "quantized tier's\naccuracy contract, verified together.\n",
              fd::kI16SerTolerance);
  if (worst_gap > fd::kI16SerTolerance) {
    std::printf("\nFAIL: worst i16 SER gap %+.5f above tolerance %.3f\n",
                worst_gap, fd::kI16SerTolerance);
    return 1;
  }
  return 0;
}
