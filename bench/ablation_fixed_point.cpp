// Validation of the FPGA cost model's 16-bit premise: how often does a
// FlexCore engine whose datapath is quantized to Q(16,11) fixed point make
// the same decision as the double-precision engine?
//
// Table 3 / Fig. 13 adopt the paper's 16-bit synthesis numbers; this bench
// closes the loop by measuring decision agreement and SER of the quantized
// engine across constellations and SNRs.
#include <cstdio>
#include <vector>

#include "api/detector_registry.h"
#include "bench_util.h"
#include "channel/channel.h"
#include "core/flexcore_detector.h"
#include "perfmodel/fixed_path.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace pm = flexcore::perfmodel;
namespace fb = flexcore::bench;
using flexcore::modulation::Constellation;

int main() {
  const std::size_t channels = fb::env_size("FLEXCORE_TRIALS", 40);
  const std::size_t vectors_per_channel = 10;

  fb::banner("16-bit fixed-point engine vs double (Q4.11, 64 PEs)");
  std::printf("%-10s %-8s %-16s\n", "QAM", "SNR dB", "decision agreement");
  fb::rule();

  struct Case {
    int qam;
    double snr;
  };
  for (const Case& cs : {Case{16, 11.0}, Case{16, 15.0}, Case{64, 15.0},
                         Case{64, 18.0}, Case{64, 22.0}}) {
    Constellation qam(cs.qam);
    const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
        "flexcore-64", {.constellation = &qam});
    const double nv = ch::noise_var_for_snr_db(cs.snr);

    double agreement = 0.0;
    ch::Rng rng(7);
    for (std::size_t c = 0; c < channels; ++c) {
      const auto h = ch::rayleigh_iid(8, 8, rng);
      det->set_channel(h, nv);
      std::vector<flexcore::linalg::CVec> ys;
      flexcore::linalg::CVec s(8);
      for (std::size_t v = 0; v < vectors_per_channel; ++v) {
        for (std::size_t u = 0; u < 8; ++u) {
          s[u] = qam.point(static_cast<int>(rng.uniform_int(
              static_cast<std::uint64_t>(cs.qam))));
        }
        ys.push_back(ch::transmit(h, s, nv, rng));
      }
      agreement += pm::fixed_vs_double_agreement(*det, ys);
    }
    std::printf("%-10d %-8.1f %-16.4f\n", cs.qam, cs.snr,
                agreement / static_cast<double>(channels));
  }

  std::printf("\nReading: Q4.11 decisions track double precision closely — "
              "the premise under which\nTable 3 / Fig. 13 use the paper's "
              "16-bit synthesis numbers holds in this reproduction.\n");
  return 0;
}
