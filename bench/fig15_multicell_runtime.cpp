// Multi-cell runtime sweep (new figure, beyond the paper): aggregate
// detection throughput and frame latency of the asynchronous api::Runtime
// as the number of concurrently-served cells, the admission-queue depth and
// the backpressure policy vary.  Each cell is a flexcore-16 / 16-QAM / 6x6
// session; a producer thread per cell submits OFDM frames back-to-back, so
// small queues under DropNewest/DeadlineExpire visibly shed load while
// Block holds every frame.  Emits BENCH_runtime.json for the perf
// trajectory.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "api/runtime.h"
#include "bench_json.h"
#include "bench_util.h"
#include "channel/channel.h"
#include "obs/trace_export.h"
#include "sim/frame_synth.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fb = flexcore::bench;
namespace fs = flexcore::sim;
using flexcore::modulation::Constellation;

namespace {

struct SweepResult {
  double seconds = 0.0;
  fa::RuntimeStats stats;
};

SweepResult run_sweep(std::size_t cells, std::size_t queue_depth,
                      fa::QueuePolicy policy, std::size_t frames_per_cell,
                      const std::vector<fs::SynthFrame>& frames,
                      double noise_var, std::uint64_t deadline_us) {
  fa::RuntimeConfig rcfg;
  rcfg.dispatchers = std::min<std::size_t>(cells, 4);
  rcfg.queue_capacity = queue_depth;
  rcfg.policy = policy;
  fa::Runtime rt(rcfg);

  std::vector<fa::Cell*> handles;
  for (std::size_t cidx = 0; cidx < cells; ++cidx) {
    fa::CellConfig ccfg;
    ccfg.detector = "flexcore-16";
    ccfg.qam_order = 16;
    // Static channel over the burst: frames after the first reuse QR +
    // path selection, the coherence amortization of Fig. 10's stream mode.
    ccfg.reuse_preprocessing = true;
    handles.push_back(&rt.open_cell(ccfg));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(cells);
  for (std::size_t cidx = 0; cidx < cells; ++cidx) {
    producers.emplace_back([&, cidx] {
      const fa::FrameJob job = fs::frame_job_of(frames[cidx], noise_var);
      std::vector<fa::FrameTicket> tickets;
      tickets.reserve(frames_per_cell);
      for (std::size_t i = 0; i < frames_per_cell; ++i) {
        tickets.push_back(rt.submit(*handles[cidx], job, deadline_us));
      }
      for (auto& t : tickets) t.wait();  // spans stay valid until terminal
    });
  }
  for (auto& t : producers) t.join();
  rt.drain();

  SweepResult out;
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.stats = rt.stats();
  return out;
}

}  // namespace

int main() {
  const std::size_t frames_per_cell = fb::env_size("FLEXCORE_FRAMES", 24);
  const std::size_t nsc = 16, nsym = 4, n = 6;
  const double noise_var = ch::noise_var_for_snr_db(14.0);
  Constellation qam(16);

  fb::banner("Multi-cell runtime: cells x queue depth x policy");
  fb::BenchJson json("runtime");

  std::vector<fs::SynthFrame> frames;
  for (std::size_t cidx = 0; cidx < 4; ++cidx) {
    frames.push_back(
        fs::synth_frame(qam, nsc, nsym, n, n, noise_var, 1000 + cidx));
  }
  const std::size_t vectors_per_frame = nsc * nsym;

  std::printf("%-6s %-7s %-17s %-11s %-6s %-6s %-6s %-10s %-10s\n", "cells",
              "queue", "policy", "vec/s", "out", "drop", "expire", "p50 us",
              "p99 us");
  fb::rule();

  for (const std::size_t cells : {1u, 2u, 4u}) {
    for (const std::size_t queue_depth : {1u, 4u, 16u}) {
      for (const fa::QueuePolicy policy :
           {fa::QueuePolicy::kBlock, fa::QueuePolicy::kDropNewest,
            fa::QueuePolicy::kDeadlineExpire}) {
        // A tight deadline under DeadlineExpire sheds the tail; other
        // policies ignore it.
        const std::uint64_t deadline_us =
            policy == fa::QueuePolicy::kDeadlineExpire ? 20000 : 0;
        const SweepResult r =
            run_sweep(cells, queue_depth, policy, frames_per_cell, frames,
                      noise_var, deadline_us);
        const double vps =
            static_cast<double>(r.stats.frames_out * vectors_per_frame) /
            r.seconds;
        std::printf("%-6zu %-7zu %-17s %-11.0f %-6llu %-6llu %-6llu %-10.0f "
                    "%-10.0f\n",
                    cells, queue_depth, fa::to_string(policy), vps,
                    static_cast<unsigned long long>(r.stats.frames_out),
                    static_cast<unsigned long long>(r.stats.frames_dropped),
                    static_cast<unsigned long long>(r.stats.frames_expired),
                    r.stats.latency_p50_us, r.stats.latency_p99_us);
        json.row()
            .field("cells", cells)
            .field("queue_depth", queue_depth)
            .field("policy", fa::to_string(policy))
            .field("frames_per_cell", frames_per_cell)
            .field("vectors_per_sec", vps)
            .field("frames_in", r.stats.frames_in)
            .field("frames_out", r.stats.frames_out)
            .field("frames_dropped", r.stats.frames_dropped)
            .field("frames_expired", r.stats.frames_expired)
            .field("latency_p50_us", r.stats.latency_p50_us)
            .field("latency_p99_us", r.stats.latency_p99_us)
            .field("latency_mean_us", r.stats.latency_mean_us);
        // Full distribution, not just the two quantiles: one field per
        // power-of-two histogram bucket, plus the per-stage breakdown.
        fb::append_latency_buckets(json, r.stats);
        fb::append_stage_latency(json, r.stats);
      }
    }
  }

  std::printf("\nShape checks:\n");
  std::printf("  * Block never sheds: out == cells * frames_per_cell at "
              "every depth.\n");
  std::printf("  * DropNewest/DeadlineExpire shed load at queue depth 1 and "
              "stop shedding as the queue deepens.\n");
  std::printf("  * Aggregate vec/s grows with cells until the shared PE "
              "pool saturates.\n");

  // With tracing live (FLEXCORE_OBS_TRACE=1), FLEXCORE_TRACE_OUT=<path>
  // exports everything the span rings retained as a Chrome/Perfetto trace.
  if (const char* trace_out = std::getenv("FLEXCORE_TRACE_OUT");
      trace_out && *trace_out) {
    const bool ok = flexcore::obs::export_chrome_trace(trace_out);
    std::printf("\ntrace: %s %s\n", ok ? "wrote" : "FAILED to write",
                trace_out);
  }
  return 0;
}
