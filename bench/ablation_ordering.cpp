// Ablation: the triangle ordering LUT (§3.2) vs exhaustive per-level
// sorting, and the two out-of-constellation policies.
//
// Quantifies two design choices DESIGN.md calls out:
//  * LUT (no sort, the paper's contribution) vs exact sort (upper bound);
//  * deactivate-on-invalid (the paper's FPGA behaviour) vs skip-to-valid.
// Reported: uncoded symbol error rate and per-vector detection time.
#include <chrono>
#include <cstdio>
#include <vector>

#include "api/detector_registry.h"
#include "bench_util.h"
#include "channel/channel.h"
#include "core/flexcore_detector.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fb = flexcore::bench;
using flexcore::modulation::Constellation;

namespace {

struct Variant {
  const char* label;
  fc::OrderingMode ordering;
  fc::InvalidEntryPolicy policy;
};

}  // namespace

int main() {
  const std::size_t trials = fb::env_size("FLEXCORE_TRIALS", 400);
  Constellation qam(64);
  const std::size_t nt = 8;
  const double nv = ch::noise_var_for_snr_db(17.0);

  const std::vector<Variant> variants{
      {"LUT + deactivate (paper)", fc::OrderingMode::kLut,
       fc::InvalidEntryPolicy::kDeactivate},
      {"LUT + skip-to-valid", fc::OrderingMode::kLut,
       fc::InvalidEntryPolicy::kSkipToValid},
      {"exact sort + deactivate", fc::OrderingMode::kExactSort,
       fc::InvalidEntryPolicy::kDeactivate},
      {"exact sort + skip", fc::OrderingMode::kExactSort,
       fc::InvalidEntryPolicy::kSkipToValid},
  };

  fb::banner("Ablation: k-th closest symbol ordering (8x8 64-QAM, 64 PEs)");
  std::printf("%-28s %-12s %-14s %-16s\n", "variant", "SER", "us/vector",
              "relative SER");
  fb::rule();

  double baseline_ser = 0.0;
  for (const auto& v : variants) {
    fa::DetectorConfig acfg{.constellation = &qam};
    acfg.flexcore.ordering = v.ordering;
    acfg.flexcore.invalid_policy = v.policy;
    const auto det = fa::make_detector("flexcore-64", acfg);

    ch::Rng rng(25);
    std::size_t errors = 0, symbols = 0;
    double seconds = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      ch::Rng hrng(5000 + t);
      const auto gains = ch::bounded_user_gains(nt, 3.0, hrng);
      const auto h = ch::kronecker_channel(nt, nt, 0.4, gains, hrng);
      flexcore::linalg::CVec s(nt);
      std::vector<int> tx(nt);
      for (std::size_t u = 0; u < nt; ++u) {
        tx[u] = static_cast<int>(rng.uniform_int(64));
        s[u] = qam.point(tx[u]);
      }
      const auto y = ch::transmit(h, s, nv, rng);
      det->set_channel(h, nv);
      const auto t0 = std::chrono::steady_clock::now();
      const auto res = det->detect(y);
      seconds += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
      for (std::size_t u = 0; u < nt; ++u) {
        ++symbols;
        errors += res.symbols[u] != tx[u];
      }
    }
    const double ser = static_cast<double>(errors) / static_cast<double>(symbols);
    if (baseline_ser == 0.0) baseline_ser = ser > 0 ? ser : 1e-12;
    std::printf("%-28s %-12.4f %-14.2f %-16.2f\n", v.label, ser,
                seconds / static_cast<double>(trials) * 1e6,
                ser / baseline_ser);
  }

  std::printf("\nReading: the LUT trades a small SER increase for removing "
              "the per-level sort;\nskip-to-valid recovers part of the "
              "deactivation loss at no hardware cost in software.\n");
  return 0;
}
