// Shared helpers for the table/figure reproduction harnesses.
//
// Every bench binary prints the rows/series of one paper table or figure.
// Monte-Carlo sizes default to values that keep each binary's runtime in
// the tens of seconds; set FLEXCORE_PACKETS / FLEXCORE_TRIALS to larger
// values (or FLEXCORE_FULL=1 for the full sweeps) to tighten confidence —
// EXPERIMENTS.md records which settings produced the committed numbers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace flexcore::bench {

/// Integer environment knob with default.
inline std::size_t env_size(const char* name, std::size_t def) {
  const char* v = std::getenv(name);
  if (!v || !*v) return def;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : def;
}

/// Boolean environment flag (set to any non-empty, non-"0" value).
inline bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v && *v && std::string(v) != "0";
}

/// Section banner.
inline void banner(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// Horizontal rule sized for typical rows.
inline void rule() {
  std::printf("-------------------------------------------------------------"
              "-----------------\n");
}

}  // namespace flexcore::bench
