// Shared helpers for the table/figure reproduction harnesses.
//
// Every bench binary prints the rows/series of one paper table or figure.
// Monte-Carlo sizes default to values that keep each binary's runtime in
// the tens of seconds; set FLEXCORE_PACKETS / FLEXCORE_TRIALS to larger
// values (or FLEXCORE_FULL=1 for the full sweeps) to tighten confidence —
// EXPERIMENTS.md records which settings produced the committed numbers.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "api/runtime.h"
#include "api/uplink_pipeline.h"
#include "bench_json.h"
#include "channel/rng.h"
#include "channel/trace.h"

namespace flexcore::bench {

/// Appends the full latency distribution of a RuntimeStats snapshot to the
/// current BenchJson row: one "lat_us_le_<edge>" field per histogram
/// bucket (the last, open-ended bucket is "lat_us_inf"), plus the sample
/// count.  Keys are emitted for every bucket — zeros included — so the
/// row schema is stable across runs and diffs cleanly.
inline void append_latency_buckets(BenchJson& json,
                                   const api::RuntimeStats& rs) {
  json.field("lat_count", rs.latency_count);
  for (std::size_t i = 0; i < api::LatencyHistogram::kBuckets; ++i) {
    std::string key;
    if (i + 1 < api::LatencyHistogram::kBuckets) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "lat_us_le_%.0f",
                    api::LatencyHistogram::upper_edge_us(i));
      key = buf;
    } else {
      key = "lat_us_inf";
    }
    json.field(key.c_str(), rs.latency_buckets[i]);
  }
}

/// Appends the per-stage latency breakdown (obs::Stage taxonomy) to the
/// current BenchJson row: stage_<name>_count / _p50_us / _p99_us per
/// serving stage, interpolated quantiles.  Stage names use '_' where the
/// taxonomy uses '-' ("queue-wait" -> stage_queue_wait_p50_us).  Keys are
/// emitted even for empty stages (count 0, null quantiles) so the row
/// schema stays stable.
inline void append_stage_latency(BenchJson& json,
                                 const api::RuntimeStats& rs) {
  static constexpr obs::Stage kStages[] = {
      obs::Stage::kQueueWait,   obs::Stage::kShardPartialQr,
      obs::Stage::kPreprocess,  obs::Stage::kPathGrid,
      obs::Stage::kReconstruct,
  };
  for (const obs::Stage stage : kStages) {
    std::string name = obs::to_string(stage);
    for (char& c : name) {
      if (c == '-') c = '_';
    }
    const api::LatencyHistogram& h = rs.stage(stage);
    json.field(("stage_" + name + "_count").c_str(), h.count());
    const bool empty = h.count() == 0;
    json.field(("stage_" + name + "_p50_us").c_str(),
               empty ? std::numeric_limits<double>::quiet_NaN()
                     : h.quantile_interp_us(0.50));
    json.field(("stage_" + name + "_p99_us").c_str(),
               empty ? std::numeric_limits<double>::quiet_NaN()
                     : h.quantile_interp_us(0.99));
  }
}

/// Integer environment knob with default.
inline std::size_t env_size(const char* name, std::size_t def) {
  const char* v = std::getenv(name);
  if (!v || !*v) return def;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : def;
}

/// Boolean environment flag (set to any non-empty, non-"0" value).
inline bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v && *v && std::string(v) != "0";
}

/// Section banner.
inline void banner(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// Horizontal rule sized for typical rows.
inline void rule() {
  std::printf("-------------------------------------------------------------"
              "-----------------\n");
}

/// Result of one frame-mode vs per-subcarrier-loop detection comparison.
struct FrameLoopResult {
  double loop_vps = 0.0;    ///< vectors/sec, sequential set_channel+detect
  double frame_vps = 0.0;   ///< vectors/sec, one detect_frame job per frame
  double stream_vps = 0.0;  ///< vectors/sec, coherence-interval streaming
  bool identical = true;    ///< hard decisions bit-identical across modes
  std::size_t vectors = 0;  ///< nsc * nsym per frame
};

/// Times the same frame of detection work three ways on one pipeline:
/// (a) the per-subcarrier loop (set_channel + detect per subcarrier),
/// (b) one detect_frame job per frame (full preprocessing every frame) and
/// (c) streaming frames through a static-channel coherence interval with
///     FrameJob::reuse_preprocessing — the amortization the loop cannot
///     express because set_channel overwrites the single-channel state.
/// Decisions are cross-checked for bit-identity across all three.
inline FrameLoopResult compare_frame_vs_loop(api::UplinkPipeline& pipe,
                                             std::size_t nsc, std::size_t nsym,
                                             std::size_t nr, std::size_t nt,
                                             double noise_var,
                                             std::uint64_t seed,
                                             std::size_t repeats = 3) {
  using clock = std::chrono::steady_clock;
  channel::TraceConfig tcfg;
  tcfg.nr = nr;
  tcfg.nt = nt;
  tcfg.num_subcarriers = nsc;
  channel::TraceGenerator gen(tcfg, seed);
  const channel::ChannelTrace trace = gen.next();
  channel::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);

  const modulation::Constellation& c = pipe.constellation();
  std::vector<linalg::CVec> ys(nsc * nsym);
  linalg::CVec s(nt);
  for (std::size_t f = 0; f < nsc; ++f) {
    for (std::size_t t = 0; t < nsym; ++t) {
      for (std::size_t u = 0; u < nt; ++u) {
        s[u] = c.point(static_cast<int>(
            rng.uniform_int(static_cast<std::uint64_t>(c.order()))));
      }
      ys[f * nsym + t] =
          channel::transmit(trace.per_subcarrier[f], s, noise_var, rng);
    }
  }

  FrameLoopResult out;
  out.vectors = nsc * nsym;
  const std::span<const linalg::CVec> yspan(ys);

  // Mode (a): the per-subcarrier set_channel + detect loop.
  std::vector<detect::DetectionResult> loop_results(ys.size());
  double loop_seconds = 0.0;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    const auto t0 = clock::now();
    for (std::size_t f = 0; f < nsc; ++f) {
      pipe.set_channel(trace.per_subcarrier[f], noise_var);
      detect::BatchResult batch = pipe.detect(yspan.subspan(f * nsym, nsym));
      for (std::size_t t = 0; t < nsym; ++t) {
        loop_results[f * nsym + t] = std::move(batch.results[t]);
      }
    }
    loop_seconds += std::chrono::duration<double>(clock::now() - t0).count();
  }

  // Mode (b): one frame job per frame (first call warms the per-subcarrier
  // clones and grid buffers; repeats measure the steady state).
  api::FrameJob job;
  job.channels =
      std::span<const linalg::CMat>(trace.per_subcarrier.data(), nsc);
  job.ys = yspan;
  job.vectors_per_channel = nsym;
  job.noise_var = noise_var;
  api::FrameResult fr = pipe.detect_frame(job);
  double frame_seconds = 0.0;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    const auto t0 = clock::now();
    fr = pipe.detect_frame(job);
    frame_seconds += std::chrono::duration<double>(clock::now() - t0).count();
  }

  // Mode (c): streaming — first frame of the coherence interval pays the
  // preprocessing, the following frames reuse it.
  api::FrameJob streaming = job;
  api::FrameResult sr = pipe.detect_frame(streaming);  // interval start
  streaming.reuse_preprocessing = true;
  double stream_seconds = 0.0;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    const auto t0 = clock::now();
    sr = pipe.detect_frame(streaming);
    stream_seconds += std::chrono::duration<double>(clock::now() - t0).count();
  }

  for (std::size_t v = 0; v < ys.size(); ++v) {
    if (fr.results[v].symbols != loop_results[v].symbols ||
        sr.results[v].symbols != loop_results[v].symbols) {
      out.identical = false;
      break;
    }
  }
  const double reps = static_cast<double>(repeats);
  out.loop_vps = static_cast<double>(out.vectors) * reps / loop_seconds;
  out.frame_vps = static_cast<double>(out.vectors) * reps / frame_seconds;
  out.stream_vps = static_cast<double>(out.vectors) * reps / stream_seconds;
  return out;
}

}  // namespace flexcore::bench
