// Sharded-runtime sweep (new figure, beyond the paper): monolithic
// api::Runtime vs api::ShardedRuntime as the antenna-cluster count C and
// the served-cell count vary.  Each cell is a flexcore-16 / 16-QAM large-
// aperture uplink (B=16 receive antennas, Nt=4 streams — the tall-channel
// regime decentralized baseband processing targets); producer threads
// submit OFDM frames back-to-back.  shards=0 rows are the monolithic
// baseline; C=1 exercises the bit-identical bypass; C in {2,4,8} run the
// per-cluster partial-QR fronthaul with its own thread pools.  Emits
// BENCH_sharded.json (per-shard counters included) for the perf
// trajectory.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "channel/channel.h"
#include "obs/trace_export.h"
#include "shard/sharded_runtime.h"
#include "sim/frame_synth.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fb = flexcore::bench;
namespace fs = flexcore::sim;
using flexcore::modulation::Constellation;

namespace {

struct SweepResult {
  double seconds = 0.0;
  fa::RuntimeStats stats;
};

/// One run: `cells` producers x `frames_per_cell` frames through either a
/// monolithic runtime (shards == 0) or a C-shard decentralized front-end.
template <typename RuntimeT>
SweepResult drive(RuntimeT& rt, std::size_t cells,
                  std::size_t frames_per_cell,
                  const std::vector<fs::SynthFrame>& frames,
                  double noise_var) {
  std::vector<fa::Cell*> handles;
  for (std::size_t cidx = 0; cidx < cells; ++cidx) {
    fa::CellConfig ccfg;
    ccfg.detector = "flexcore-16";
    ccfg.qam_order = 16;
    handles.push_back(&rt.open_cell(ccfg));
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(cells);
  for (std::size_t cidx = 0; cidx < cells; ++cidx) {
    producers.emplace_back([&, cidx] {
      const fa::FrameJob job = fs::frame_job_of(frames[cidx], noise_var);
      std::vector<fa::FrameTicket> tickets;
      tickets.reserve(frames_per_cell);
      for (std::size_t i = 0; i < frames_per_cell; ++i) {
        tickets.push_back(rt.submit(*handles[cidx], job));
      }
      for (auto& t : tickets) t.wait();
    });
  }
  for (auto& t : producers) t.join();
  rt.drain();
  SweepResult out;
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.stats = rt.stats();
  return out;
}

}  // namespace

int main() {
  const std::size_t frames_per_cell = fb::env_size("FLEXCORE_FRAMES", 16);
  const std::size_t nsc = 12, nsym = 4;
  const std::size_t b = 16, nt = 4;  // tall channel: 16 antennas, 4 streams
  const double noise_var = ch::noise_var_for_snr_db(14.0);
  Constellation qam(16);

  fb::banner("Sharded runtime: cells x antenna clusters vs monolithic");
  fb::BenchJson json("sharded");

  std::vector<fs::SynthFrame> frames;
  for (std::size_t cidx = 0; cidx < 4; ++cidx) {
    frames.push_back(
        fs::synth_frame(qam, nsc, nsym, b, nt, noise_var, 1800 + cidx));
  }
  const std::size_t vectors_per_frame = nsc * nsym;

  std::printf("%-6s %-8s %-11s %-6s %-10s %-10s %-14s\n", "cells", "shards",
              "vec/s", "out", "p50 us", "p99 us", "shard busy s");
  fb::rule();

  for (const std::size_t cells : {1u, 2u, 4u}) {
    for (const std::size_t shards : {0u, 1u, 2u, 4u, 8u}) {
      SweepResult r;
      if (shards == 0) {
        fa::RuntimeConfig rcfg;
        rcfg.dispatchers = std::min<std::size_t>(cells, 4);
        rcfg.queue_capacity = 16;
        fa::Runtime rt(rcfg);
        r = drive(rt, cells, frames_per_cell, frames, noise_var);
      } else {
        fa::ShardedRuntimeConfig scfg;
        scfg.shards = shards;
        scfg.threads_per_shard = 0;  // split hardware threads across shards
        scfg.runtime.dispatchers = std::min<std::size_t>(cells, 4);
        scfg.runtime.queue_capacity = 16;
        fa::ShardedRuntime rt(scfg);
        r = drive(rt, cells, frames_per_cell, frames, noise_var);
      }

      const double vps =
          static_cast<double>(r.stats.frames_out * vectors_per_frame) /
          r.seconds;
      double shard_busy = 0.0;
      for (const fa::ShardStats& ss : r.stats.shards) {
        shard_busy += ss.busy_seconds;
      }
      std::printf("%-6zu %-8s %-11.0f %-6llu %-10.0f %-10.0f %-14.3f\n",
                  cells, shards == 0 ? "mono" : std::to_string(shards).c_str(),
                  vps, static_cast<unsigned long long>(r.stats.frames_out),
                  r.stats.latency_p50_us, r.stats.latency_p99_us, shard_busy);

      json.row()
          .field("cells", cells)
          .field("shards", shards)  // 0 = monolithic baseline
          .field("frames_per_cell", frames_per_cell)
          .field("antennas", b)
          .field("streams", nt)
          .field("vectors_per_sec", vps)
          .field("frames_in", r.stats.frames_in)
          .field("frames_out", r.stats.frames_out)
          .field("latency_p50_us", r.stats.latency_p50_us)
          .field("latency_p99_us", r.stats.latency_p99_us)
          .field("latency_mean_us", r.stats.latency_mean_us)
          .field("seconds", r.seconds);
      fb::append_stage_latency(json, r.stats);
      // Per-shard counters, flattened: the consistency the tests pin
      // (frames identical across shards, rows partitioning B) stays
      // visible in the trajectory.
      for (const fa::ShardStats& ss : r.stats.shards) {
        const std::string p = "shard" + std::to_string(ss.shard_id) + "_";
        json.field((p + "frames").c_str(), ss.frames)
            .field((p + "partials").c_str(), ss.partials)
            .field((p + "rows").c_str(), ss.rows_processed)
            .field((p + "busy_s").c_str(), ss.busy_seconds)
            .field((p + "threads").c_str(), ss.threads)
            .field((p + "pinned").c_str(), ss.pinned_workers);
      }
    }
  }

  std::printf("\nShape checks:\n");
  std::printf("  * shards=1 tracks mono closely (pure bypass, one extra "
              "hop).\n");
  std::printf("  * For B >> C*Nt the merged stack shrinks detection-side "
              "preprocessing (16 rows -> 8 at C=2).\n");
  std::printf("  * Per-shard frames are identical across shards; rows sum "
              "to B per subcarrier.\n");

  // With tracing live (FLEXCORE_OBS_TRACE=1), FLEXCORE_TRACE_OUT=<path>
  // exports the retained spans — per-shard tracks included — as a
  // Chrome/Perfetto trace.
  if (const char* trace_out = std::getenv("FLEXCORE_TRACE_OUT");
      trace_out && *trace_out) {
    const bool ok = flexcore::obs::export_chrome_trace(trace_out);
    std::printf("\ntrace: %s %s\n", ok ? "wrote" : "FAILED to write",
                trace_out);
  }
  return 0;
}
