// Machine-readable bench results: every harness that wants its numbers
// tracked across PRs appends rows to a BenchJson and the collected rows are
// written to BENCH_<name>.json in the working directory on destruction.
//
// Schema (one object per file):
//   { "bench": "<name>", "hardware_concurrency": <threads>,
//     "git_sha": "<short sha|unknown>", "generated_utc": "<ISO-8601 Z>",
//     "rows": [ { "<field>": <value>, ... }, ... ] }
//
// hardware_concurrency records the machine the numbers came from — thread
// sweeps (runtime, sharded runtime) are meaningless to diff across hosts
// with different core counts.
//
// Rows are flat key -> (string|number) maps, e.g. one row per (panel,
// detector) with a throughput field.  Keep field names stable: the perf
// trajectory is diffed across commits.
#pragma once

#include <cmath>
#include <cstdio>
#include <ctime>
#include <string>
#include <thread>
#include <utility>
#include <vector>

// Stamped by CMake from `git rev-parse --short HEAD` at configure time so
// committed BENCH_*.json files say which code produced them.
#ifndef FLEXCORE_GIT_SHA
#define FLEXCORE_GIT_SHA "unknown"
#endif

namespace flexcore::bench {

class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;
  ~BenchJson() { write(); }

  /// Starts a new result row; field(...) calls fill it.
  BenchJson& row() {
    rows_.emplace_back();
    return *this;
  }

  BenchJson& field(const char* key, const std::string& value) {
    rows_.back().emplace_back(key, quote(value));
    return *this;
  }
  BenchJson& field(const char* key, const char* value) {
    return field(key, std::string(value));
  }
  BenchJson& field(const char* key, double value) {
    if (!std::isfinite(value)) {  // JSON has no inf/nan tokens
      rows_.back().emplace_back(key, "null");
      return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    rows_.back().emplace_back(key, buf);
    return *this;
  }
  BenchJson& field(const char* key, std::size_t value) {
    rows_.back().emplace_back(key, std::to_string(value));
    return *this;
  }
  BenchJson& field(const char* key, int value) {
    rows_.back().emplace_back(key, std::to_string(value));
    return *this;
  }

  /// Writes BENCH_<name>.json now (also runs at destruction).  Safe to call
  /// repeatedly; later rows overwrite the file with the full set.
  void write() const {
    if (rows_.empty()) return;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (std::tm* utc = std::gmtime(&now)) {
      std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", utc);
    }
    std::fprintf(f, "{\"bench\": %s, \"hardware_concurrency\": %u, "
                    "\"git_sha\": %s, \"generated_utc\": \"%s\", "
                    "\"rows\": [\n",
                 quote(name_).c_str(), std::thread::hardware_concurrency(),
                 quote(FLEXCORE_GIT_SHA).c_str(), stamp);
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "  {");
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        std::fprintf(f, "%s%s: %s", i ? ", " : "",
                     quote(rows_[r][i].first).c_str(),
                     rows_[r][i].second.c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  std::string name_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

}  // namespace flexcore::bench
