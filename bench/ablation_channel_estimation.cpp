// Substrate evaluation: FlexCore under estimated (rather than genie) CSI.
//
// The paper's testbed performs real channel estimation (§5.1), and §3.1
// stresses that FlexCore's pre-processing consumes channel *estimates*.
// This bench quantifies the end-to-end cost of LS pilot estimation: the
// detector sees H-hat and sigma-hat^2 from channel::estimate_channel while
// the data still propagates through the true channel.
#include <cstdio>
#include <vector>

#include "api/detector_registry.h"
#include "bench_util.h"
#include "channel/estimation.h"
#include "core/flexcore_detector.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fb = flexcore::bench;
using flexcore::modulation::Constellation;

int main() {
  const std::size_t trials = fb::env_size("FLEXCORE_TRIALS", 300);
  Constellation qam(64);
  const std::size_t nt = 8;
  const double snr = 17.0;
  const double nv = ch::noise_var_for_snr_db(snr);

  fb::banner("FlexCore with estimated CSI (8x8 64-QAM, 64 PEs, 17 dB)");
  std::printf("%-18s %-12s %-16s %-18s\n", "CSI", "SER",
              "est. MSE/entry", "noise-var bias");
  fb::rule();

  // repeats = 0 encodes the genie (perfect CSI) row.
  for (std::size_t repeats : {0u, 1u, 4u, 16u, 64u, 256u}) {
    const auto det = fa::make_detector("flexcore-64", {.constellation = &qam});

    ch::Rng rng(25);
    std::size_t errors = 0, symbols = 0;
    double mse = 0.0, nv_bias = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      ch::Rng hrng(5000 + t);
      const auto gains = ch::bounded_user_gains(nt, 3.0, hrng);
      const auto h = ch::kronecker_channel(nt, nt, 0.4, gains, hrng);

      if (repeats == 0) {
        det->set_channel(h, nv);
      } else {
        // Dedicated pilot RNG keeps the payload noise realizations
        // identical across rows, so SER differences are purely CSI quality.
        ch::Rng pilot_rng(9000 + t);
        const auto est = ch::estimate_channel(h, nv, repeats, pilot_rng);
        det->set_channel(est.h_hat, est.noise_var_hat);
        mse += ch::estimation_mse(h, est.h_hat);
        nv_bias += est.noise_var_hat / nv - 1.0;
      }

      flexcore::linalg::CVec s(nt);
      std::vector<int> tx(nt);
      for (std::size_t u = 0; u < nt; ++u) {
        tx[u] = static_cast<int>(rng.uniform_int(64));
        s[u] = qam.point(tx[u]);
      }
      const auto y = ch::transmit(h, s, nv, rng);
      const auto res = det->detect(y);
      for (std::size_t u = 0; u < nt; ++u) {
        ++symbols;
        errors += res.symbols[u] != tx[u];
      }
    }

    if (repeats == 0) {
      std::printf("%-18s %-12.4f %-16s %-18s\n", "perfect (genie)",
                  static_cast<double>(errors) / static_cast<double>(symbols),
                  "-", "-");
    } else {
      std::printf("LS, %zu repeat(s)%-2s %-12.4f %-16.5f %-+18.3f\n", repeats,
                  "", static_cast<double>(errors) / static_cast<double>(symbols),
                  mse / static_cast<double>(trials),
                  nv_bias / static_cast<double>(trials));
    }
  }

  std::printf(
      "\nReading: LS MSE ~ sigma^2/repeats, but detection sees the error "
      "summed over all Nt\nusers' columns, so near-genie 64-QAM detection "
      "needs per-entry MSE << sigma^2/Nt —\ni.e. pilot repetitions well "
      "beyond Nt.  This quantifies §3.1's dependence on\n\"reliable channel "
      "estimates ... to preserve the gains of spatial multiplexing\" [17].\n");
  return 0;
}
