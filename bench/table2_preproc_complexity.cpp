// Table 2 reproduction: real-multiplication complexity and parallelizability
// of FlexCore's pre-processing vs the QR decomposition / channel inversion,
// and of FlexCore detection, for 8x8 and 12x12 MIMO with N_PE in {32, 128}.
//
// Pre-processing counts are *measured* (instrumented) on random channels;
// QR/ZF uses the paper's 4*Nt^3 real-multiplication model; detection uses
// the paper's per-path accounting of 2*Nt*(Nt+1) multiplications.
#include <cstdio>

#include "bench_util.h"
#include "channel/channel.h"
#include "core/preprocessing.h"
#include "linalg/qr.h"
#include "modulation/constellation.h"

namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fb = flexcore::bench;

int main() {
  const std::size_t trials = fb::env_size("FLEXCORE_TRIALS", 200);
  flexcore::modulation::Constellation qam(64);
  const double nv = ch::noise_var_for_snr_db(18.0);

  fb::banner("Table 2: pre-processing & detection complexity (real mults)");
  std::printf("%-8s %-12s %-22s %-22s %-20s\n", "System", "QR/ZF",
              "Pre-proc (N_PE=32)", "Pre-proc (N_PE=128)", "Detection 32/128");
  fb::rule();

  for (std::size_t nt : {8u, 12u}) {
    double pre32 = 0.0, pre128 = 0.0;
    ch::Rng rng(77 + nt);
    for (std::size_t t = 0; t < trials; ++t) {
      const auto h = ch::rayleigh_iid(nt, nt, rng);
      const auto qr = flexcore::linalg::sorted_qr_wubben(h);
      fc::PreprocessingConfig cfg;
      cfg.num_paths = 32;
      pre32 += static_cast<double>(
          fc::find_most_promising_paths(qr.R, nv, qam, cfg).real_mults);
      cfg.num_paths = 128;
      pre128 += static_cast<double>(
          fc::find_most_promising_paths(qr.R, nv, qam, cfg).real_mults);
    }
    pre32 /= static_cast<double>(trials);
    pre128 /= static_cast<double>(trials);

    const double dnt = static_cast<double>(nt);
    const double qr_mults = 4.0 * dnt * dnt * dnt;  // paper's approximation
    const double det32 = 2.0 * dnt * (dnt + 1) * 32;
    const double det128 = 2.0 * dnt * (dnt + 1) * 128;

    std::printf("%zux%zu    ~%-11.0f %-22.1f %-22.1f %.0f / %.0f\n", nt, nt,
                qr_mults, pre32, pre128, det32, det128);
  }

  std::printf("\nParallelizability (tasks executable concurrently):\n");
  std::printf("  Pre-processing: N_PE/10 nodes per round with negligible loss "
              "(paper's ratio-10 rule)\n");
  std::printf("    N_PE=32 -> ~3 parallel expansions, N_PE=128 -> ~12\n");
  std::printf("  Detection: one PE per path -> 32 / 128\n");

  std::printf("\nPaper's Table 2 (for comparison):\n");
  std::printf("  8x8:   QR ~2048,  preproc 102/301,  detection 4608/18432\n");
  std::printf("  12x12: QR ~6912,  preproc 136/391,  detection 9984/39936\n");
  std::printf("  Parallelizability: - / 3 / 12 / 32 / 128\n");
  return 0;
}
