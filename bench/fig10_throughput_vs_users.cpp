// Fig. 10 reproduction: network throughput of FlexCore (64 PEs), a-FlexCore
// (adaptive, threshold 0.95), Geosphere (ML sphere decoder) and MMSE as the
// number of simultaneous users at a 12-antenna AP grows from 6 to 12
// (64-QAM, SNR at the 12-user PER_ML = 0.01 operating point), plus
// a-FlexCore's average number of activated PEs — the line plot of Fig. 10.
#include <cstdio>
#include <vector>

#include "api/detector_registry.h"
#include "api/uplink_pipeline.h"
#include "bench_json.h"
#include "bench_util.h"
#include "channel/trace.h"
#include "sim/montecarlo.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace fs = flexcore::sim;
namespace fb = flexcore::bench;
using flexcore::modulation::Constellation;

int main() {
  const std::size_t packets = fb::env_size("FLEXCORE_PACKETS", 12);
  const std::uint64_t seed = 77;
  Constellation qam(64);

  fs::LinkConfig lcfg;
  lcfg.qam_order = 64;
  lcfg.info_bits_per_user = 1152;

  fb::banner("Fig. 10: throughput vs number of users (12-antenna AP, 64-QAM)");
  fb::BenchJson json("fig10");

  // Calibrate at the fully-loaded 12-user point, as the paper does, then
  // hold the SNR fixed while the user count drops.
  ch::TraceConfig cal_cfg;
  cal_cfg.nr = 12;
  cal_cfg.nt = 12;
  fa::DetectorConfig acfg{.constellation = &qam};
  acfg.ml_sphere.max_nodes = 20000;
  const auto ml = fa::make_detector("ml-sd", acfg);
  const double snr = fs::find_snr_for_per(
      *ml, lcfg, cal_cfg, 0.01, 2.0, 26.0, 7,
      std::max<std::size_t>(packets / 2, 6), seed);
  const double nv = ch::noise_var_for_snr_db(snr);
  std::printf("calibrated SNR (PER_ML=0.01 at 12 users): %.2f dB\n\n", snr);

  std::printf("%-7s %-14s %-14s %-16s %-14s %-12s\n", "users",
              "Geosphere", "MMSE", "FlexCore-64", "a-FlexCore", "avg PEs");
  fb::rule();

  for (std::size_t users = 6; users <= 12; ++users) {
    ch::TraceConfig tcfg = cal_cfg;
    tcfg.nt = users;

    const auto mmse = fa::make_detector("mmse", acfg);
    const auto flex = fa::make_detector("flexcore-64", acfg);
    const auto aflex = fa::make_detector("a-flexcore-64", acfg);

    const auto r_ml =
        fs::measure_throughput(*ml, lcfg, tcfg, nv, packets, seed);
    const auto r_mmse =
        fs::measure_throughput(*mmse, lcfg, tcfg, nv, packets, seed);
    const auto r_flex =
        fs::measure_throughput(*flex, lcfg, tcfg, nv, packets, seed);
    const auto r_aflex =
        fs::measure_throughput(*aflex, lcfg, tcfg, nv, packets, seed);

    std::printf("%-7zu %-14.1f %-14.1f %-16.1f %-14.1f %-12.2f\n", users,
                r_ml.throughput_mbps, r_mmse.throughput_mbps,
                r_flex.throughput_mbps, r_aflex.throughput_mbps,
                r_aflex.avg_active_pes);
    json.row()
        .field("users", users)
        .field("snr_db", snr)
        .field("geosphere_mbps", r_ml.throughput_mbps)
        .field("mmse_mbps", r_mmse.throughput_mbps)
        .field("flexcore64_mbps", r_flex.throughput_mbps)
        .field("aflexcore_mbps", r_aflex.throughput_mbps)
        .field("aflexcore_avg_pes", r_aflex.avg_active_pes);
  }

  // Frame mode: a-FlexCore's whole-frame job vs the per-subcarrier loop at
  // full load (12 users), the Fig. 10 operating point.
  fb::banner("Frame mode (12 users): detect_frame vs per-subcarrier loop");
  for (const char* spec : {"flexcore-64", "a-flexcore-64"}) {
    fa::PipelineConfig pcfg;
    pcfg.detector = spec;
    pcfg.qam_order = 64;
    fa::UplinkPipeline pipe(pcfg);
    const auto r =
        fb::compare_frame_vs_loop(pipe, 64, 14, 12, 12, nv, /*seed=*/6);
    std::printf("%-14s loop %-11.0f frame %-11.0f stream %-11.0f vec/s  "
                "speedup %.2fx%s\n",
                spec, r.loop_vps, r.frame_vps, r.stream_vps,
                r.stream_vps / r.loop_vps,
                r.identical ? "" : "  !! MODES DISAGREE");
    json.row()
        .field("mode", "frame-vs-loop")
        .field("detector", spec)
        .field("loop_vps", r.loop_vps)
        .field("frame_vps", r.frame_vps)
        .field("stream_vps", r.stream_vps)
        .field("identical", r.identical ? "yes" : "no");
  }

  std::printf("\nShape checks vs the paper:\n");
  std::printf("  * MMSE near-optimal only when users << antennas; collapses "
              "toward Nt = Nr.\n");
  std::printf("  * FlexCore / a-FlexCore track Geosphere across the sweep.\n");
  std::printf("  * a-FlexCore's active PEs shrink toward ~1 for few users "
              "and grow as the channel hardens.\n");
  return 0;
}
