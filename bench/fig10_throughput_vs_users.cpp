// Fig. 10 reproduction: network throughput of FlexCore (64 PEs), a-FlexCore
// (adaptive, threshold 0.95), Geosphere (ML sphere decoder) and MMSE as the
// number of simultaneous users at a 12-antenna AP grows from 6 to 12
// (64-QAM, SNR at the 12-user PER_ML = 0.01 operating point), plus
// a-FlexCore's average number of activated PEs — the line plot of Fig. 10.
//
// The frame-mode sections run on the api::Runtime serving layer: packets
// are submitted as asynchronous frame jobs to per-detector cells sharing
// one PE pool, the shape fig15 sweeps at scale.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "api/detector_registry.h"
#include "api/runtime.h"
#include "api/uplink_pipeline.h"
#include "bench_json.h"
#include "bench_util.h"
#include "channel/trace.h"
#include "sim/link.h"
#include "sim/montecarlo.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace fs = flexcore::sim;
namespace fb = flexcore::bench;
using flexcore::modulation::Constellation;

int main() {
  const std::size_t packets = fb::env_size("FLEXCORE_PACKETS", 12);
  const std::uint64_t seed = 77;
  Constellation qam(64);

  fs::LinkConfig lcfg;
  lcfg.qam_order = 64;
  lcfg.info_bits_per_user = 1152;

  fb::banner("Fig. 10: throughput vs number of users (12-antenna AP, 64-QAM)");
  fb::BenchJson json("fig10");

  // Calibrate at the fully-loaded 12-user point, as the paper does, then
  // hold the SNR fixed while the user count drops.
  ch::TraceConfig cal_cfg;
  cal_cfg.nr = 12;
  cal_cfg.nt = 12;
  fa::DetectorConfig acfg{.constellation = &qam};
  acfg.ml_sphere.max_nodes = 20000;
  const auto ml = fa::make_detector("ml-sd", acfg);
  const double snr = fs::find_snr_for_per(
      *ml, lcfg, cal_cfg, 0.01, 2.0, 26.0, 7,
      std::max<std::size_t>(packets / 2, 6), seed);
  const double nv = ch::noise_var_for_snr_db(snr);
  std::printf("calibrated SNR (PER_ML=0.01 at 12 users): %.2f dB\n\n", snr);

  std::printf("%-7s %-14s %-14s %-16s %-14s %-12s\n", "users",
              "Geosphere", "MMSE", "FlexCore-64", "a-FlexCore", "avg PEs");
  fb::rule();

  for (std::size_t users = 6; users <= 12; ++users) {
    ch::TraceConfig tcfg = cal_cfg;
    tcfg.nt = users;

    const auto mmse = fa::make_detector("mmse", acfg);
    const auto flex = fa::make_detector("flexcore-64", acfg);
    const auto aflex = fa::make_detector("a-flexcore-64", acfg);

    const auto r_ml =
        fs::measure_throughput(*ml, lcfg, tcfg, nv, packets, seed);
    const auto r_mmse =
        fs::measure_throughput(*mmse, lcfg, tcfg, nv, packets, seed);
    const auto r_flex =
        fs::measure_throughput(*flex, lcfg, tcfg, nv, packets, seed);
    const auto r_aflex =
        fs::measure_throughput(*aflex, lcfg, tcfg, nv, packets, seed);

    std::printf("%-7zu %-14.1f %-14.1f %-16.1f %-14.1f %-12.2f\n", users,
                r_ml.throughput_mbps, r_mmse.throughput_mbps,
                r_flex.throughput_mbps, r_aflex.throughput_mbps,
                r_aflex.avg_active_pes);
    json.row()
        .field("users", users)
        .field("snr_db", snr)
        .field("geosphere_mbps", r_ml.throughput_mbps)
        .field("mmse_mbps", r_mmse.throughput_mbps)
        .field("flexcore64_mbps", r_flex.throughput_mbps)
        .field("aflexcore_mbps", r_aflex.throughput_mbps)
        .field("aflexcore_avg_pes", r_aflex.avg_active_pes);
  }

  // Frame mode: a-FlexCore's whole-frame job vs the per-subcarrier loop at
  // full load (12 users), the Fig. 10 operating point.
  fb::banner("Frame mode (12 users): detect_frame vs per-subcarrier loop");
  for (const char* spec : {"flexcore-64", "a-flexcore-64"}) {
    fa::PipelineConfig pcfg;
    pcfg.detector = spec;
    pcfg.qam_order = 64;
    fa::UplinkPipeline pipe(pcfg);
    const auto r =
        fb::compare_frame_vs_loop(pipe, 64, 14, 12, 12, nv, /*seed=*/6);
    std::printf("%-14s loop %-11.0f frame %-11.0f stream %-11.0f vec/s  "
                "speedup %.2fx%s\n",
                spec, r.loop_vps, r.frame_vps, r.stream_vps,
                r.stream_vps / r.loop_vps,
                r.identical ? "" : "  !! MODES DISAGREE");
    json.row()
        .field("mode", "frame-vs-loop")
        .field("detector", spec)
        .field("loop_vps", r.loop_vps)
        .field("frame_vps", r.frame_vps)
        .field("stream_vps", r.stream_vps)
        .field("identical", r.identical ? "yes" : "no");
  }

  // Runtime mode: both detectors as cells of ONE api::Runtime sharing one
  // PE pool, packets submitted asynchronously from one thread per cell —
  // the serving-layer shape the paper's AP needs at scale.
  fb::banner("Runtime mode (12 users): two concurrent cells, one PE pool");
  {
    fa::RuntimeConfig rcfg;
    rcfg.dispatchers = 2;
    rcfg.queue_capacity = 8;
    fa::Runtime rt(rcfg);
    fa::Cell& flex_cell = rt.open_cell({.detector = "flexcore-64"});
    fa::Cell& aflex_cell = rt.open_cell({.detector = "a-flexcore-64"});

    const fs::UplinkPacketLink link(lcfg);
    ch::TraceConfig tcfg = cal_cfg;
    const std::size_t rt_packets = std::max<std::size_t>(packets / 2, 4);

    const auto t0 = std::chrono::steady_clock::now();
    std::size_t flex_vectors = 0, aflex_vectors = 0;
    std::thread aflex_thread([&] {
      ch::TraceGenerator gen(tcfg, seed + 1);
      ch::Rng rng(seed ^ 0xabcdef);
      for (std::size_t p = 0; p < rt_packets; ++p) {
        const auto out = link.run_packet(rt, aflex_cell, gen.next(), nv, rng);
        aflex_vectors += out.vectors_detected;
      }
    });
    {
      ch::TraceGenerator gen(tcfg, seed + 1);
      ch::Rng rng(seed ^ 0x123456);
      for (std::size_t p = 0; p < rt_packets; ++p) {
        const auto out = link.run_packet(rt, flex_cell, gen.next(), nv, rng);
        flex_vectors += out.vectors_detected;
      }
    }
    aflex_thread.join();
    rt.drain();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const fa::RuntimeStats rs = rt.stats();
    std::printf("%zu packets/cell: %.0f vec/s aggregate, frame latency "
                "p50 %.0f us / p99 %.0f us\n",
                rt_packets,
                static_cast<double>(flex_vectors + aflex_vectors) / seconds,
                rs.latency_p50_us, rs.latency_p99_us);
    for (const fa::CellStats& cs : rs.cells) {
      std::printf("  %-12s %-14s in %-4llu out %-4llu dropped %-3llu\n",
                  cs.name.c_str(), cs.detector.c_str(),
                  static_cast<unsigned long long>(cs.frames_in),
                  static_cast<unsigned long long>(cs.frames_out),
                  static_cast<unsigned long long>(cs.frames_dropped));
    }
    json.row()
        .field("mode", "runtime-2cell")
        .field("packets_per_cell", rt_packets)
        .field("aggregate_vps",
               static_cast<double>(flex_vectors + aflex_vectors) / seconds)
        .field("frames_out", rs.frames_out)
        .field("latency_p50_us", rs.latency_p50_us)
        .field("latency_p99_us", rs.latency_p99_us);
  }

  std::printf("\nShape checks vs the paper:\n");
  std::printf("  * MMSE near-optimal only when users << antennas; collapses "
              "toward Nt = Nr.\n");
  std::printf("  * FlexCore / a-FlexCore track Geosphere across the sweep.\n");
  std::printf("  * a-FlexCore's active PEs shrink toward ~1 for few users "
              "and grow as the channel hardens.\n");
  return 0;
}
