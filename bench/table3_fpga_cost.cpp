// Table 3 reproduction: single-processing-element FPGA implementation cost
// for FlexCore and FCSD engines at 64-QAM on the XCVU440 (paper synthesis
// numbers drive the model; see DESIGN.md's substitution table), plus the
// derived area-delay products and the caption's overhead ratios.
#include <cstdio>

#include "bench_util.h"
#include "perfmodel/fpga_model.h"

namespace pm = flexcore::perfmodel;
namespace fb = flexcore::bench;

int main() {
  fb::banner("Table 3: single PE on XCVU440-flga2892-3-e, 64-QAM, 16-bit");
  std::printf("%-8s %-10s %-10s %-9s %-9s %-7s %-6s %-10s %-8s\n", "System",
              "Engine", "LogicLUT", "MemLUT", "FF-pairs", "CLB", "DSP48",
              "fmax(MHz)", "Power(W)");
  fb::rule();

  for (std::size_t nt : {8u, 12u}) {
    for (auto kind : {pm::EngineKind::kFlexCore, pm::EngineKind::kFcsd}) {
      const auto pe = pm::paper_pe_resource(kind, nt);
      std::printf("%zux%zu    %-10s %-10d %-9d %-9d %-7d %-6d %-10.1f %-8.3f\n",
                  nt, nt, pm::to_string(kind).c_str(), pe.logic_luts,
                  pe.mem_luts, pe.ff_pairs, pe.clb_slices, pe.dsp48,
                  pe.fmax_mhz, pe.power_w);
    }
  }

  fb::banner("Derived metrics");
  for (std::size_t nt : {8u, 12u}) {
    const auto flex = pm::paper_pe_resource(pm::EngineKind::kFlexCore, nt);
    const auto fcsd = pm::paper_pe_resource(pm::EngineKind::kFcsd, nt);
    const double ratio =
        pm::area_delay_product(flex) / pm::area_delay_product(fcsd);
    std::printf("  %zux%zu: area-delay FlexCore/FCSD = %.3f  (paper: %s)\n",
                nt, nt, ratio, nt == 8 ? "1.737" : "1.578");
    std::printf("         max PEs at 75%% utilization: FlexCore %zu, FCSD %zu\n",
                pm::max_instantiable_pes(flex), pm::max_instantiable_pes(fcsd));
  }

  std::printf("\nSpot-check of §5.3 processing throughput at 5.5 ns, M=32:\n");
  const double clock = 1000.0 / 5.5;
  std::printf("  FlexCore 12x12, 32 paths : %.2f Gbps (paper: 13.09)\n",
              pm::processing_throughput_bps(12, 64, clock, 32, 32) / 1e9);
  std::printf("  FlexCore 12x12, 128 paths: %.2f Gbps (paper: 3.27)\n",
              pm::processing_throughput_bps(12, 64, clock, 128, 32) / 1e9);
  return 0;
}
