// Fig. 11 reproduction: FlexCore's detection speedup over the FCSD when both
// run on the same parallel engine, for 12x12 64-QAM, L in {1,2}, as a
// function of the number of Sphere-decoder paths |E| FlexCore considers and
// of the subcarrier batch size Nsc.
//
// Platform substitution (DESIGN.md): the paper times CUDA kernels on a GTX
// 970; we time the identical flat (vector x path) task grid on a CPU thread
// pool — both detectors on the same infrastructure, which is the paper's
// stated methodology for a fair algorithmic comparison.  The "OpenMP-N"
// rows reproduce the CPU-thread scaling curves (bounded by this machine's
// core count).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "api/detector_registry.h"
#include "bench_util.h"
#include "channel/channel.h"
#include "detect/detector.h"
#include "parallel/thread_pool.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace fb = flexcore::bench;
using flexcore::modulation::Constellation;

namespace {

std::vector<flexcore::linalg::CVec> make_batch(const flexcore::linalg::CMat& h,
                                               const Constellation& c,
                                               std::size_t nsc, double nv,
                                               ch::Rng& rng) {
  std::vector<flexcore::linalg::CVec> ys;
  ys.reserve(nsc);
  const std::size_t nt = h.cols();
  flexcore::linalg::CVec s(nt);
  for (std::size_t v = 0; v < nsc; ++v) {
    for (std::size_t u = 0; u < nt; ++u) {
      s[u] = c.point(static_cast<int>(rng.uniform_int(
          static_cast<std::uint64_t>(c.order()))));
    }
    ys.push_back(ch::transmit(h, s, nv, rng));
  }
  return ys;
}

/// Best-of-`reps` per-vector wall-clock of detect_batch's task grid on
/// `pool` (elapsed_seconds covers rotation + path grid + min-reduction,
/// exactly what the old free-function engine timed).
double time_per_vector(flexcore::detect::Detector& det,
                       const std::vector<flexcore::linalg::CVec>& ys,
                       flexcore::parallel::ThreadPool& pool, int reps) {
  det.set_thread_pool(&pool);
  flexcore::detect::BatchResult out;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    det.detect_batch(ys, &out);
    best = std::min(best, out.elapsed_seconds / static_cast<double>(ys.size()));
  }
  det.set_thread_pool(nullptr);  // pools may be loop-local; don't dangle
  return best;
}

}  // namespace

int main() {
  const std::size_t nt = 12;
  Constellation qam(64);
  const double nv = ch::noise_var_for_snr_db(17.0);
  ch::Rng rng(4242);
  const auto h = ch::rayleigh_iid(nt, nt, rng);
  const int reps = static_cast<int>(fb::env_size("FLEXCORE_TRIALS", 3));

  const std::size_t hw = flexcore::parallel::default_thread_count();
  flexcore::parallel::ThreadPool pool(hw);

  fb::banner("Fig. 11: FlexCore speedup vs FCSD on the same parallel engine");
  std::printf("(12x12, 64-QAM; pool = %zu hardware threads)\n\n", hw);

  // --- Baselines: FCSD L = 1 (64 paths) and L = 2 (4096 paths).
  const fa::DetectorConfig acfg{.constellation = &qam};
  const auto fcsd1 = fa::make_detector("fcsd-L1", acfg);
  const auto fcsd2 = fa::make_detector("fcsd-L2", acfg);
  fcsd1->set_channel(h, nv);
  fcsd2->set_channel(h, nv);
  const std::size_t base_nsc = 1024;
  const auto ys_base = make_batch(h, qam, base_nsc, nv, rng);
  const double t_fcsd1 = time_per_vector(*fcsd1, ys_base, pool, reps);
  const double t_fcsd2 = time_per_vector(*fcsd2, ys_base, pool, reps);
  std::printf("baseline FCSD (full pool, Nsc=%zu): L=1 %.3f us/vec, L=2 %.3f us/vec\n",
              base_nsc, t_fcsd1 * 1e6, t_fcsd2 * 1e6);

  // --- CPU thread-scaling rows (OpenMP-N analogue).
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    if (threads > 2 * hw) break;
    flexcore::parallel::ThreadPool p(threads);
    const double t = time_per_vector(*fcsd1, ys_base, p, reps);
    std::printf("  FCSD L=1 on %zu thread(s): %.3f us/vec (%.2fx vs 1 thread "
                "pool)\n",
                threads, t * 1e6, t_fcsd1 > 0 ? t / t_fcsd1 : 0.0);
  }

  // --- FlexCore speedup sweep.
  std::printf("\n%-8s %-10s %-16s %-16s %-16s\n", "|E|", "Nsc",
              "us/vector", "speedup vs L=1", "speedup vs L=2");
  fb::rule();
  double t_flex128_1024 = 0.0;
  for (std::size_t nsc : {64u, 1024u, 16384u}) {
    const auto ys = make_batch(h, qam, nsc, nv, rng);
    for (std::size_t e : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
      const auto flex =
          fa::make_detector("flexcore-" + std::to_string(e), acfg);
      flex->set_channel(h, nv);
      const double t = time_per_vector(*flex, ys, pool, reps);
      if (e == 128 && nsc == 1024) t_flex128_1024 = t;
      std::printf("%-8zu %-10zu %-16.3f %-16.2f %-16.2f\n", e, nsc, t * 1e6,
                  t_fcsd1 / t, t_fcsd2 / t);
    }
  }

  // Equal-power energy estimate (energy ratio == time ratio on identical
  // hardware): the paper reports FlexCore's 128 paths reaching the FCSD
  // L=2 (4096 path) throughput, with a ~97.5% energy advantage.
  if (t_flex128_1024 > 0.0) {
    std::printf("\nEqual-power energy estimate at |E|=128, Nsc=1024:\n"
                "  FlexCore uses %.1f%% less energy per vector than FCSD L=2 "
                "(paper: ~97.5%%)\n",
                100.0 * (1.0 - t_flex128_1024 / t_fcsd2));
  }
  return 0;
}
