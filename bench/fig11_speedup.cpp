// Fig. 11 reproduction: FlexCore's detection speedup over the FCSD when both
// run on the same parallel engine, for 12x12 64-QAM, L in {1,2}, as a
// function of the number of Sphere-decoder paths |E| FlexCore considers and
// of the subcarrier batch size Nsc.
//
// Platform substitution (DESIGN.md): the paper times CUDA kernels on a GTX
// 970; we time the identical flat (vector x path) task grid on a CPU thread
// pool — both detectors on the same infrastructure, which is the paper's
// stated methodology for a fair algorithmic comparison.  The "OpenMP-N"
// rows reproduce the CPU-thread scaling curves (bounded by this machine's
// core count).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "channel/channel.h"
#include "core/flexcore_detector.h"
#include "detect/fcsd.h"
#include "parallel/thread_pool.h"
#include "sim/engine.h"

namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace fs = flexcore::sim;
namespace fb = flexcore::bench;
using flexcore::modulation::Constellation;

namespace {

std::vector<flexcore::linalg::CVec> make_batch(const flexcore::linalg::CMat& h,
                                               const Constellation& c,
                                               std::size_t nsc, double nv,
                                               ch::Rng& rng) {
  std::vector<flexcore::linalg::CVec> ys;
  ys.reserve(nsc);
  const std::size_t nt = h.cols();
  flexcore::linalg::CVec s(nt);
  for (std::size_t v = 0; v < nsc; ++v) {
    for (std::size_t u = 0; u < nt; ++u) {
      s[u] = c.point(static_cast<int>(rng.uniform_int(
          static_cast<std::uint64_t>(c.order()))));
    }
    ys.push_back(ch::transmit(h, s, nv, rng));
  }
  return ys;
}

template <typename D>
double time_per_vector(const D& det, std::size_t paths,
                       const std::vector<flexcore::linalg::CVec>& ys,
                       flexcore::parallel::ThreadPool& pool, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto out = fs::batch_detect(det, paths, ys, pool);
    best = std::min(best, out.elapsed_seconds / static_cast<double>(ys.size()));
  }
  return best;
}

}  // namespace

int main() {
  const std::size_t nt = 12;
  Constellation qam(64);
  const double nv = ch::noise_var_for_snr_db(17.0);
  ch::Rng rng(4242);
  const auto h = ch::rayleigh_iid(nt, nt, rng);
  const int reps = static_cast<int>(fb::env_size("FLEXCORE_TRIALS", 3));

  const std::size_t hw = flexcore::parallel::default_thread_count();
  flexcore::parallel::ThreadPool pool(hw);

  fb::banner("Fig. 11: FlexCore speedup vs FCSD on the same parallel engine");
  std::printf("(12x12, 64-QAM; pool = %zu hardware threads)\n\n", hw);

  // --- Baselines: FCSD L = 1 (64 paths) and L = 2 (4096 paths).
  fd::FcsdDetector fcsd1(qam, 1), fcsd2(qam, 2);
  fcsd1.set_channel(h, nv);
  fcsd2.set_channel(h, nv);
  const std::size_t base_nsc = 1024;
  const auto ys_base = make_batch(h, qam, base_nsc, nv, rng);
  const double t_fcsd1 =
      time_per_vector(fcsd1, fcsd1.num_paths(), ys_base, pool, reps);
  const double t_fcsd2 =
      time_per_vector(fcsd2, fcsd2.num_paths(), ys_base, pool, reps);
  std::printf("baseline FCSD (full pool, Nsc=%zu): L=1 %.3f us/vec, L=2 %.3f us/vec\n",
              base_nsc, t_fcsd1 * 1e6, t_fcsd2 * 1e6);

  // --- CPU thread-scaling rows (OpenMP-N analogue).
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    if (threads > 2 * hw) break;
    flexcore::parallel::ThreadPool p(threads);
    const double t = time_per_vector(fcsd1, fcsd1.num_paths(), ys_base, p, reps);
    std::printf("  FCSD L=1 on %zu thread(s): %.3f us/vec (%.2fx vs 1 thread "
                "pool)\n",
                threads, t * 1e6, t_fcsd1 > 0 ? t / t_fcsd1 : 0.0);
  }

  // --- FlexCore speedup sweep.
  std::printf("\n%-8s %-10s %-16s %-16s %-16s\n", "|E|", "Nsc",
              "us/vector", "speedup vs L=1", "speedup vs L=2");
  fb::rule();
  double t_flex128_1024 = 0.0;
  for (std::size_t nsc : {64u, 1024u, 16384u}) {
    const auto ys = make_batch(h, qam, nsc, nv, rng);
    for (std::size_t e : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
      fc::FlexCoreConfig cfg;
      cfg.num_pes = e;
      fc::FlexCoreDetector flex(qam, cfg);
      flex.set_channel(h, nv);
      const double t = time_per_vector(flex, flex.active_paths(), ys, pool, reps);
      if (e == 128 && nsc == 1024) t_flex128_1024 = t;
      std::printf("%-8zu %-10zu %-16.3f %-16.2f %-16.2f\n", e, nsc, t * 1e6,
                  t_fcsd1 / t, t_fcsd2 / t);
    }
  }

  // Equal-power energy estimate (energy ratio == time ratio on identical
  // hardware): the paper reports FlexCore's 128 paths reaching the FCSD
  // L=2 (4096 path) throughput, with a ~97.5% energy advantage.
  if (t_flex128_1024 > 0.0) {
    std::printf("\nEqual-power energy estimate at |E|=128, Nsc=1024:\n"
                "  FlexCore uses %.1f%% less energy per vector than FCSD L=2 "
                "(paper: ~97.5%%)\n",
                100.0 * (1.0 - t_flex128_1024 / t_fcsd2));
  }
  return 0;
}
