// Ablation: the per-level error-probability model feeding pre-processing.
//
// DESIGN.md documents why the printed Eq. 4 ("PaperErfc": no minimum-
// distance factor, prefactor > 2) cannot be the model the paper actually
// validated in Fig. 14.  This bench quantifies the impact: at dense
// constellations the literal formula collapses the Pe profile and the path
// allocation degenerates to a single level, costing real SER.
#include <cstdio>
#include <vector>

#include "api/detector_registry.h"
#include "bench_util.h"
#include "channel/channel.h"
#include "core/flexcore_detector.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fm = flexcore::modulation;
namespace fb = flexcore::bench;
using fm::Constellation;

int main() {
  const std::size_t trials = fb::env_size("FLEXCORE_TRIALS", 400);

  fb::banner("Ablation: Pe model for pre-processing (64 PEs)");
  std::printf("%-12s %-8s %-22s %-12s %-14s\n", "system", "SNR dB",
              "model", "SER", "max-rank profile");
  fb::rule();

  struct Case {
    std::size_t nt;
    int qam;
    double snr;
  };
  for (const Case& cs : {Case{8, 16, 11.0}, Case{8, 64, 17.0}}) {
    Constellation qam(cs.qam);
    const double nv = ch::noise_var_for_snr_db(cs.snr);
    for (auto model : {fm::PeModel::kExactSer, fm::PeModel::kPaperErfc,
                       fm::PeModel::kRayleighCalibrated}) {
      fa::DetectorConfig acfg{.constellation = &qam};
      acfg.flexcore.pe_model = model;
      const auto det =
          fa::make_detector_as<fc::FlexCoreDetector>("flexcore-64", acfg);

      ch::Rng rng(25);
      std::size_t errors = 0, symbols = 0;
      std::vector<int> max_rank(cs.nt, 0);
      for (std::size_t t = 0; t < trials; ++t) {
        ch::Rng hrng(5000 + t);
        const auto gains = ch::bounded_user_gains(cs.nt, 3.0, hrng);
        const auto h = ch::kronecker_channel(cs.nt, cs.nt, 0.4, gains, hrng);
        det->set_channel(h, nv);
        if (t == 0) {
          for (const auto& rp : det->preprocessing().paths) {
            for (std::size_t l = 0; l < cs.nt; ++l) {
              max_rank[l] = std::max(max_rank[l], rp.p[l]);
            }
          }
        }
        flexcore::linalg::CVec s(cs.nt);
        std::vector<int> tx(cs.nt);
        for (std::size_t u = 0; u < cs.nt; ++u) {
          tx[u] = static_cast<int>(rng.uniform_int(
              static_cast<std::uint64_t>(cs.qam)));
          s[u] = qam.point(tx[u]);
        }
        const auto y = ch::transmit(h, s, nv, rng);
        const auto res = det->detect(y);
        for (std::size_t u = 0; u < cs.nt; ++u) {
          ++symbols;
          errors += res.symbols[u] != tx[u];
        }
      }

      const char* name = model == fm::PeModel::kExactSer ? "ExactSer (default)"
                         : model == fm::PeModel::kPaperErfc
                             ? "PaperErfc (literal)"
                             : "RayleighCalibrated";
      std::printf("%zux%zu %d-QAM %-6.1f %-22s %-12.4f [", cs.nt, cs.nt,
                  cs.qam, cs.snr, name,
                  static_cast<double>(errors) / static_cast<double>(symbols));
      for (std::size_t l = 0; l < cs.nt; ++l) {
        std::printf("%d%s", max_rank[l], l + 1 < cs.nt ? "," : "");
      }
      std::printf("]\n");
    }
  }

  std::printf("\nReading: the literal Eq. 4 concentrates all alternate ranks "
              "on one level for dense\nconstellations (see the max-rank "
              "profile) and costs SER; the SER-calibrated model\nspreads "
              "them according to true per-level reliability.\n");
  return 0;
}
