// Substrate evaluation: stale pre-processing under channel aging.
//
// §3.1: "In MIMO systems with dynamic channels and user mobility, the most
// promising paths will vary in time... FlexCore will then leverage these
// estimates to recalculate the most promising paths."  This bench ages the
// channel with a Gauss-Markov process and compares three receivers:
//   * fresh:   re-run QR + pre-processing on the current channel (ideal);
//   * stale:   keep using the QR/paths computed for the original channel;
//   * refresh: re-run QR but keep the original path set (isolates how much
//              of the loss is the *path choice* vs the channel factor).
#include <cstdio>
#include <vector>

#include "api/detector_registry.h"
#include "bench_util.h"
#include "channel/trace.h"
#include "core/flexcore_detector.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fb = flexcore::bench;
using flexcore::modulation::Constellation;

int main() {
  const std::size_t trials = fb::env_size("FLEXCORE_TRIALS", 150);
  Constellation qam(64);
  const std::size_t nt = 8;
  const double nv = ch::noise_var_for_snr_db(17.0);

  fb::banner("Channel aging: stale vs fresh pre-processing "
             "(8x8 64-QAM, 64 PEs)");
  std::printf("%-14s %-14s %-14s\n", "temporal rho", "SER fresh", "SER stale");
  fb::rule();

  for (double rho : {1.0, 0.999, 0.99, 0.95, 0.9, 0.8}) {
    const auto fresh = fa::make_detector("flexcore-64", {.constellation = &qam});
    const auto stale = fa::make_detector("flexcore-64", {.constellation = &qam});

    ch::Rng rng(25);
    std::size_t err_fresh = 0, err_stale = 0, symbols = 0;
    ch::TraceConfig tcfg;
    tcfg.nr = nt;
    tcfg.nt = nt;
    tcfg.num_subcarriers = 1;  // one channel per step is all we need here

    for (std::size_t t = 0; t < trials; ++t) {
      ch::TraceGenerator gen(tcfg, 5000 + t);
      ch::ChannelTrace trace = gen.next();
      // The stale receiver installs the channel once, at age zero.
      stale->set_channel(trace.per_subcarrier[0], nv);

      for (int step = 0; step < 4; ++step) {
        trace = ch::evolve_trace(trace, rho, rng);
        const auto& h = trace.per_subcarrier[0];
        fresh->set_channel(h, nv);

        flexcore::linalg::CVec s(nt);
        std::vector<int> tx(nt);
        for (std::size_t u = 0; u < nt; ++u) {
          tx[u] = static_cast<int>(rng.uniform_int(64));
          s[u] = qam.point(tx[u]);
        }
        const auto y = ch::transmit(h, s, nv, rng);
        const auto rf = fresh->detect(y);
        const auto rs = stale->detect(y);
        for (std::size_t u = 0; u < nt; ++u) {
          ++symbols;
          err_fresh += rf.symbols[u] != tx[u];
          err_stale += rs.symbols[u] != tx[u];
        }
      }
    }

    std::printf("%-14.3f %-14.4f %-14.4f\n", rho,
                static_cast<double>(err_fresh) / static_cast<double>(symbols),
                static_cast<double>(err_stale) / static_cast<double>(symbols));
  }

  std::printf("\nReading: at rho ~ 1 (the paper's static-over-a-packet "
              "assumption) staleness is free;\nunder mobility the stale "
              "receiver collapses quickly — the quantitative case for\n"
              "re-running the (cheap) pre-processing with every channel "
              "estimate, as §3.1 argues.\n");
  return 0;
}
