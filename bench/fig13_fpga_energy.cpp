// Fig. 13 reproduction: FPGA energy efficiency (Joules/bit) of FlexCore and
// FCSD engines vs the number of instantiated processing elements M, under
// equal network-throughput requirements.
//
// Path-count pairs follow §5.3: for 12x12 64-QAM, FlexCore needs 32 / 128
// paths to match the network throughput the FCSD reaches with 64 / 4096
// (L=1 / L=2); for 8x8, FlexCore-32 matches FCSD L=1 (64).  Per-PE power
// and fmax come from the Table 3 model at a common 5.5 ns clock; PE counts
// beyond the physical device are extrapolated at 75% utilization exactly as
// the paper does.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "perfmodel/fpga_model.h"

namespace pm = flexcore::perfmodel;
namespace fb = flexcore::bench;

namespace {

struct Config {
  const char* label;
  pm::EngineKind kind;
  std::size_t nt;
  std::size_t paths;
};

}  // namespace

int main() {
  const double clock_mhz = 1000.0 / 5.5;  // the paper's 5.5 ns exploration

  const std::vector<Config> configs{
      {"FCSD,     Nt=8,  L=1 (64 paths)  ", pm::EngineKind::kFcsd, 8, 64},
      {"FlexCore, Nt=8,  L=1-equiv (32)  ", pm::EngineKind::kFlexCore, 8, 32},
      {"FCSD,     Nt=12, L=1 (64 paths)  ", pm::EngineKind::kFcsd, 12, 64},
      {"FCSD,     Nt=12, L=2 (4096 paths)", pm::EngineKind::kFcsd, 12, 4096},
      {"FlexCore, Nt=12, L=1-equiv (32)  ", pm::EngineKind::kFlexCore, 12, 32},
      {"FlexCore, Nt=12, L=2-equiv (128) ", pm::EngineKind::kFlexCore, 12, 128},
  };

  fb::banner("Fig. 13: FPGA energy efficiency vs instantiated PEs (J/bit)");
  std::printf("%-36s", "config \\ M");
  const std::vector<std::size_t> ms{1, 2, 4, 8, 16, 32, 64, 128};
  for (std::size_t m : ms) std::printf(" %-10zu", m);
  std::printf("\n");
  fb::rule();

  for (const auto& cfg : configs) {
    const auto pe = pm::paper_pe_resource(cfg.kind, cfg.nt);
    const std::size_t phys = pm::max_instantiable_pes(pe);
    std::printf("%-36s", cfg.label);
    for (std::size_t m : ms) {
      if (m > cfg.paths) {
        std::printf(" %-10s", "-");  // more PEs than paths is pointless
        continue;
      }
      const double e = pm::energy_per_bit(pe, clock_mhz, 64, cfg.paths, m);
      std::printf(" %-10.2e", e);
    }
    std::printf("  (device fits ~%zu PEs)\n", phys);
  }

  fb::banner("Equal-network-throughput energy ratios (FCSD / FlexCore)");
  const auto flex8 = pm::paper_pe_resource(pm::EngineKind::kFlexCore, 8);
  const auto fcsd8 = pm::paper_pe_resource(pm::EngineKind::kFcsd, 8);
  const auto flex12 = pm::paper_pe_resource(pm::EngineKind::kFlexCore, 12);
  const auto fcsd12 = pm::paper_pe_resource(pm::EngineKind::kFcsd, 12);
  const double r8 = pm::energy_per_bit(fcsd8, clock_mhz, 64, 64, 16) /
                    pm::energy_per_bit(flex8, clock_mhz, 64, 32, 16);
  const double r12a = pm::energy_per_bit(fcsd12, clock_mhz, 64, 64, 16) /
                      pm::energy_per_bit(flex12, clock_mhz, 64, 32, 16);
  const double r12b = pm::energy_per_bit(fcsd12, clock_mhz, 64, 4096, 32) /
                      pm::energy_per_bit(flex12, clock_mhz, 64, 128, 32);
  std::printf("  Nt=8,  L=1: FCSD needs %.2fx the J/bit (paper: ~1.54x)\n", r8);
  std::printf("  Nt=12, L=1: FCSD needs %.2fx the J/bit\n", r12a);
  std::printf("  Nt=12, L=2: FCSD needs %.2fx the J/bit (paper: up to 28.8x)\n",
              r12b);
  return 0;
}
