// Fig. 17 (extension): the lane-parallel kernel engine vs the scalar
// per-path loop, across precision tiers and MIMO sizes.
//
// The paper's substrate evaluates thousands of identical per-path programs
// in lockstep (§4); detect/path_kernels.h maps that SIMT grid onto CPU
// SIMD lanes.  This harness times exactly the kernel — rotated vectors in,
// per-vector minimum metric out, single thread, no pool — so the numbers
// isolate the engine from scheduling:
//
//   * scalar  — FlexCoreDetector::path_metric per path (the pre-engine hot
//     loop: interleaved std::complex<double>, one libcall-heavy walk per
//     path);
//   * block   — path_metric_block over the compiled PathPlan (split-SoA,
//     lane-parallel), in the fp64 tier (bit-identical), the fp32 tier
//     (reduced precision) and the int16 quantized tier (":i16", 16 lanes
//     per block, LUT-compiled slicing — the paper's Table 3 fixed-point
//     datapath).
//
// Emits BENCH_kernels.json and EXITS NON-ZERO when any gate fails:
//   * fp64 block >= 1.5x over the scalar loop at 12x12 / 64-QAM;
//   * i16 block faster than fp32 block at 12x12 and 16x16;
//   * i16 block >= 1.4x over the fp64 scalar loop at 16x16;
//   * end-to-end 64-QAM SER of the i16 tier within
//     detect::kI16SerTolerance of the fp64 tier.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "api/detector_registry.h"
#include "bench_json.h"
#include "bench_util.h"
#include "channel/channel.h"
#include "core/flexcore_detector.h"
#include "detect/fcsd.h"
#include "detect/path_grid.h"
#include "parallel/thread_pool.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace fb = flexcore::bench;
namespace fl = flexcore::linalg;
using flexcore::modulation::Constellation;

namespace {

struct Timing {
  double ns_per_path = 0.0;
  double checksum = 0.0;  ///< sum of per-vector minima (anti-DCE + sanity)
};

/// Best-of-`reps` wall clock of `eval` (which scans every path of every
/// vector and returns the checksum), normalized per path walk.
template <typename Eval>
Timing time_kernel(std::size_t total_walks, int reps, Eval&& eval) {
  Timing t;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    t.checksum = eval();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::min(best, secs);
  }
  t.ns_per_path = best * 1e9 / static_cast<double>(total_walks);
  return t;
}

/// Sum over vectors of the minimum path metric, via the scalar kernel.
template <typename D>
double scan_scalar(const D& det, const std::vector<fl::CVec>& ybars,
                   std::size_t paths) {
  double sum = 0.0;
  for (const fl::CVec& ybar : ybars) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < paths; ++p) {
      best = std::min(best, det.path_metric(ybar, p));
    }
    sum += best;
  }
  return sum;
}

/// Same reduction through the block kernel — via detect::scan_paths, the
/// exact loop the production grids run, so the gate times the real path.
template <typename D>
double scan_block(const D& det, const std::vector<fl::CVec>& ybars,
                  std::size_t paths) {
  double sum = 0.0;
  for (const fl::CVec& ybar : ybars) {
    std::size_t best_p = 0;
    double best = 0.0;
    fd::scan_paths(det, ybar, paths, &best_p, &best);
    sum += best;
  }
  return sum;
}

/// One scalar + three block rows for a (detector, MIMO size) sweep point —
/// the single place that defines the BENCH_kernels.json timing-row schema.
void emit_rows(fb::BenchJson& json, const char* detector, std::size_t mimo,
               std::size_t paths, const Timing& scalar, const Timing& blk64,
               const Timing& blk32, const Timing& blk16) {
  const struct {
    const char* kernel;
    const char* precision;
    double ns;
  } rows[] = {{"scalar", "fp64", scalar.ns_per_path},
              {"block", "fp64", blk64.ns_per_path},
              {"block", "fp32", blk32.ns_per_path},
              {"block", "i16", blk16.ns_per_path}};
  for (const auto& r : rows) {
    json.row()
        .field("detector", detector)
        .field("mimo", mimo)
        .field("qam", 64)
        .field("paths", paths)
        .field("kernel", r.kernel)
        .field("precision", r.precision)
        .field("ns_per_path", r.ns)
        .field("speedup_vs_scalar", scalar.ns_per_path / r.ns);
  }
}

std::vector<fl::CVec> rotated_batch(const fc::FlexCoreDetector& det,
                                    const fl::CMat& h,
                                    const Constellation& c, double nv,
                                    std::size_t count, ch::Rng& rng) {
  std::vector<fl::CVec> ybars;
  ybars.reserve(count);
  fl::CVec s(h.cols());
  for (std::size_t v = 0; v < count; ++v) {
    for (auto& z : s) {
      z = c.point(static_cast<int>(
          rng.uniform_int(static_cast<std::uint64_t>(c.order()))));
    }
    ybars.push_back(det.rotate(ch::transmit(h, s, nv, rng)));
  }
  return ybars;
}

}  // namespace

int main() {
  const int reps = static_cast<int>(fb::env_size("FLEXCORE_TRIALS", 3));
  const std::size_t nvec = fb::env_size("FLEXCORE_VECTORS", 192);
  constexpr double kSpeedupGate = 1.5;  // fp64 block vs scalar, 12x12/64-QAM
  constexpr double kI16Gate = 1.4;      // i16 block vs fp64 scalar, 16x16

  Constellation qam(64);
  fb::BenchJson json("kernels");
  fb::banner("Fig. 17: lane-parallel kernel engine vs scalar path loop");
  std::printf("(64-QAM, flexcore-128, %zu vectors, best of %d, single "
              "thread)\n\n",
              nvec, reps);
  std::printf("%-6s %-8s %-15s %-12s %-12s %-12s %-10s\n", "MIMO", "paths",
              "scalar ns/path", "block fp64", "block fp32", "block i16",
              "speedup");
  fb::rule();

  bool gate_seen = false;
  bool gate_ok = false;
  bool i16_gates_ok = true;
  for (std::size_t nt : {4u, 8u, 12u, 16u}) {
    ch::Rng rng(900 + nt);
    const auto h = ch::rayleigh_iid(nt, nt, rng);
    const double noise = ch::noise_var_for_snr_db(18.0);

    const fa::DetectorConfig dcfg{.constellation = &qam};
    const auto det64 =
        fa::make_detector_as<fc::FlexCoreDetector>("flexcore-128", dcfg);
    det64->set_channel(h, noise);
    const auto det32 =
        fa::make_detector_as<fc::FlexCoreDetector>("flexcore-128:fp32", dcfg);
    det32->set_channel(h, noise);
    const auto det16 =
        fa::make_detector_as<fc::FlexCoreDetector>("flexcore-128:i16", dcfg);
    det16->set_channel(h, noise);
    const std::size_t paths = det64->active_paths();
    const auto ybars = rotated_batch(*det64, h, qam, noise, nvec, rng);
    const std::size_t walks = nvec * paths;

    const Timing scalar = time_kernel(
        walks, reps, [&] { return scan_scalar(*det64, ybars, paths); });
    const Timing blk64 = time_kernel(
        walks, reps, [&] { return scan_block(*det64, ybars, paths); });
    const Timing blk32 = time_kernel(
        walks, reps, [&] { return scan_block(*det32, ybars, paths); });
    const Timing blk16 = time_kernel(
        walks, reps, [&] { return scan_block(*det16, ybars, paths); });
    // Relative tolerance, not bit equality: tests/kernel_test.cpp proves
    // bitwise identity at the portable default flags; under
    // FLEXCORE_NATIVE_ARCH, FMA contraction may legitimately move the
    // split kernels by ULPs relative to the scalar libcall path.
    const double drift = std::fabs(blk64.checksum - scalar.checksum);
    if (drift > 1e-9 * std::fabs(scalar.checksum)) {
      std::fprintf(stderr,
                   "FAIL: fp64 block checksum %.17g vs scalar %.17g at "
                   "%zux%zu\n",
                   blk64.checksum, scalar.checksum, nt, nt);
      return 1;
    }
    // The quantized checksum only sanity-checks magnitude (its metrics are
    // rounded): it must be finite and in the ballpark of the exact sum.
    if (!std::isfinite(blk16.checksum) ||
        std::fabs(blk16.checksum - scalar.checksum) >
            0.25 * std::fabs(scalar.checksum) + 1.0) {
      std::fprintf(stderr,
                   "FAIL: i16 block checksum %.17g vs scalar %.17g at "
                   "%zux%zu\n",
                   blk16.checksum, scalar.checksum, nt, nt);
      return 1;
    }

    const double speedup64 = scalar.ns_per_path / blk64.ns_per_path;
    const double speedup16 = scalar.ns_per_path / blk16.ns_per_path;
    std::printf("%zux%-4zu %-8zu %-15.2f %-12.2f %-12.2f %-12.2f "
                "%.2fx/%.2fx\n",
                nt, nt, paths, scalar.ns_per_path, blk64.ns_per_path,
                blk32.ns_per_path, blk16.ns_per_path, speedup64, speedup16);
    emit_rows(json, "flexcore-128", nt, paths, scalar, blk64, blk32, blk16);

    if (nt == 12) {
      gate_seen = true;
      gate_ok = speedup64 >= kSpeedupGate;
    }
    // i16 gates: faster than fp32 at the large sizes, and >= kI16Gate over
    // the fp64 scalar loop at 16x16.
    if (nt == 12 || nt == 16) {
      if (blk16.ns_per_path >= blk32.ns_per_path) {
        std::fprintf(stderr,
                     "FAIL: i16 block (%.2f ns) not faster than fp32 "
                     "(%.2f ns) at %zux%zu\n",
                     blk16.ns_per_path, blk32.ns_per_path, nt, nt);
        i16_gates_ok = false;
      }
    }
    if (nt == 16 && speedup16 < kI16Gate) {
      std::fprintf(stderr,
                   "FAIL: i16 block %.2fx below the %.1fx gate over the "
                   "fp64 scalar loop at 16x16\n",
                   speedup16, kI16Gate);
      i16_gates_ok = false;
    }
  }

  // FCSD context rows: the same engine accelerates the competitor too
  // (both graphs run the identical grid infrastructure, the paper's
  // fairness methodology).
  {
    const std::size_t nt = 12;
    ch::Rng rng(77);
    const auto h = ch::rayleigh_iid(nt, nt, rng);
    const double noise = ch::noise_var_for_snr_db(18.0);
    fd::FcsdDetector fcsd64(qam, 1);
    fcsd64.set_channel(h, noise);
    fd::FcsdDetector fcsd32(qam, 1, fd::Precision::kFloat32);
    fcsd32.set_channel(h, noise);
    fd::FcsdDetector fcsd16(qam, 1, fd::Precision::kInt16);
    fcsd16.set_channel(h, noise);
    const std::size_t paths = fcsd64.num_paths();

    const auto flex =
        fa::make_detector_as<fc::FlexCoreDetector>("flexcore-128",
                                                   {.constellation = &qam});
    flex->set_channel(h, noise);  // only for identical rotation geometry
    std::vector<fl::CVec> ybars;
    {
      fl::CVec s(nt);
      ybars.reserve(nvec);
      for (std::size_t v = 0; v < nvec; ++v) {
        for (auto& z : s) {
          z = qam.point(static_cast<int>(
              rng.uniform_int(static_cast<std::uint64_t>(qam.order()))));
        }
        ybars.push_back(fcsd64.rotate(ch::transmit(h, s, noise, rng)));
      }
    }
    const std::size_t walks = nvec * paths;
    const Timing scalar = time_kernel(
        walks, reps, [&] { return scan_scalar(fcsd64, ybars, paths); });
    const Timing blk64 = time_kernel(
        walks, reps, [&] { return scan_block(fcsd64, ybars, paths); });
    const Timing blk32 = time_kernel(
        walks, reps, [&] { return scan_block(fcsd32, ybars, paths); });
    const Timing blk16 = time_kernel(
        walks, reps, [&] { return scan_block(fcsd16, ybars, paths); });
    std::printf("\nfcsd-L1 12x12: scalar %.2f ns/path, block fp64 %.2f "
                "(%.2fx), block fp32 %.2f, block i16 %.2f\n",
                scalar.ns_per_path, blk64.ns_per_path,
                scalar.ns_per_path / blk64.ns_per_path, blk32.ns_per_path,
                blk16.ns_per_path);
    emit_rows(json, "fcsd-L1", nt, paths, scalar, blk64, blk32, blk16);
  }

  // --- end-to-end SER gate of the quantized tier ---------------------------
  // Full detect_batch runs (grid + winner reconstruction + SIC fallback)
  // at fp64 vs :i16 over the same transmissions: the quantized kernel may
  // only move the 64-QAM symbol-error rate within kI16SerTolerance of the
  // exact tier (the documented accuracy contract of detect::PathPlanI16).
  double ser_gap = 0.0;
  {
    const std::size_t nt = 12;
    const std::size_t channels = fb::env_size("FLEXCORE_SER_CHANNELS", 6);
    const double noise = ch::noise_var_for_snr_db(22.0);
    flexcore::parallel::ThreadPool pool(2);

    const fa::DetectorConfig dcfg{.constellation = &qam};
    const auto det64 =
        fa::make_detector_as<fc::FlexCoreDetector>("flexcore-128", dcfg);
    const auto det16 =
        fa::make_detector_as<fc::FlexCoreDetector>("flexcore-128:i16", dcfg);
    det64->set_thread_pool(&pool);
    det16->set_thread_pool(&pool);

    std::size_t symbols = 0, err64 = 0, err16 = 0;
    ch::Rng rng(4242);
    std::vector<std::vector<int>> tx(nvec, std::vector<int>(nt));
    std::vector<fl::CVec> ys(nvec, fl::CVec(nt));
    fl::CVec s(nt);
    fd::BatchResult out64, out16;
    for (std::size_t cidx = 0; cidx < channels; ++cidx) {
      const auto h = ch::rayleigh_iid(nt, nt, rng);
      det64->set_channel(h, noise);
      det16->set_channel(h, noise);
      for (std::size_t v = 0; v < nvec; ++v) {
        for (std::size_t u = 0; u < nt; ++u) {
          tx[v][u] = static_cast<int>(
              rng.uniform_int(static_cast<std::uint64_t>(qam.order())));
          s[u] = qam.point(tx[v][u]);
        }
        ys[v] = ch::transmit(h, s, noise, rng);
      }
      det64->detect_batch(ys, &out64);
      det16->detect_batch(ys, &out16);
      for (std::size_t v = 0; v < nvec; ++v) {
        for (std::size_t u = 0; u < nt; ++u) {
          ++symbols;
          if (out64.results[v].symbols[u] != tx[v][u]) ++err64;
          if (out16.results[v].symbols[u] != tx[v][u]) ++err16;
        }
      }
    }
    const double ser64 = static_cast<double>(err64) / static_cast<double>(symbols);
    const double ser16 = static_cast<double>(err16) / static_cast<double>(symbols);
    ser_gap = ser16 - ser64;
    std::printf("\nSER (12x12, 64-QAM, 22 dB, %zu symbols): fp64 %.5f, "
                "i16 %.5f, gap %+.5f (tolerance %.3f)\n",
                symbols, ser64, ser16, ser_gap, fd::kI16SerTolerance);
    json.row()
        .field("detector", "flexcore-128")
        .field("mimo", nt)
        .field("qam", 64)
        .field("kernel", "ser")
        .field("precision", "fp64")
        .field("snr_db", 22.0)
        .field("ser", ser64);
    json.row()
        .field("detector", "flexcore-128")
        .field("mimo", nt)
        .field("qam", 64)
        .field("kernel", "ser")
        .field("precision", "i16")
        .field("snr_db", 22.0)
        .field("ser", ser16)
        .field("ser_gap_vs_fp64", ser_gap);
  }

  json.write();
  bool fail = false;
  if (!gate_seen || !gate_ok) {
    std::fprintf(stderr,
                 "\nFAIL: fp64 block kernel below the %.1fx speedup gate at "
                 "12x12/64-QAM\n",
                 kSpeedupGate);
    fail = true;
  }
  if (!i16_gates_ok) fail = true;
  if (ser_gap > fd::kI16SerTolerance) {
    std::fprintf(stderr,
                 "\nFAIL: i16 SER gap %+.5f above tolerance %.3f\n", ser_gap,
                 fd::kI16SerTolerance);
    fail = true;
  }
  if (fail) return 1;
  std::printf("\nPASS: fp64 block >= %.1fx at 12x12; i16 block < fp32 at "
              "12x12/16x16, >= %.1fx at 16x16; i16 SER gap within %.3f\n",
              kSpeedupGate, kI16Gate, fd::kI16SerTolerance);
  return 0;
}
