// Fig. 17 (extension): the lane-parallel kernel engine vs the scalar
// per-path loop, across precision tiers and MIMO sizes.
//
// The paper's substrate evaluates thousands of identical per-path programs
// in lockstep (§4); detect/path_kernels.h maps that SIMT grid onto CPU
// SIMD lanes.  This harness times exactly the kernel — rotated vectors in,
// per-vector minimum metric out, single thread, no pool — so the numbers
// isolate the engine from scheduling:
//
//   * scalar  — FlexCoreDetector::path_metric per path (the pre-engine hot
//     loop: interleaved std::complex<double>, one libcall-heavy walk per
//     path);
//   * block   — path_metric_block over the compiled PathPlan (split-SoA,
//     kSimdLanes paths per call), in the fp64 tier (bit-identical) and the
//     fp32 tier (reduced precision).
//
// Emits BENCH_kernels.json and EXITS NON-ZERO when the fp64 block kernel
// fails the >= 1.5x speedup gate over the scalar loop at 12x12 / 64-QAM —
// the acceptance criterion CI smoke-checks.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "api/detector_registry.h"
#include "bench_json.h"
#include "bench_util.h"
#include "channel/channel.h"
#include "core/flexcore_detector.h"
#include "detect/fcsd.h"
#include "detect/path_grid.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace fb = flexcore::bench;
namespace fl = flexcore::linalg;
using flexcore::modulation::Constellation;

namespace {

struct Timing {
  double ns_per_path = 0.0;
  double checksum = 0.0;  ///< sum of per-vector minima (anti-DCE + sanity)
};

/// Best-of-`reps` wall clock of `eval` (which scans every path of every
/// vector and returns the checksum), normalized per path walk.
template <typename Eval>
Timing time_kernel(std::size_t total_walks, int reps, Eval&& eval) {
  Timing t;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    t.checksum = eval();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::min(best, secs);
  }
  t.ns_per_path = best * 1e9 / static_cast<double>(total_walks);
  return t;
}

/// Sum over vectors of the minimum path metric, via the scalar kernel.
template <typename D>
double scan_scalar(const D& det, const std::vector<fl::CVec>& ybars,
                   std::size_t paths) {
  double sum = 0.0;
  for (const fl::CVec& ybar : ybars) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < paths; ++p) {
      best = std::min(best, det.path_metric(ybar, p));
    }
    sum += best;
  }
  return sum;
}

/// Same reduction through the block kernel — via detect::scan_paths, the
/// exact loop the production grids run, so the gate times the real path.
template <typename D>
double scan_block(const D& det, const std::vector<fl::CVec>& ybars,
                  std::size_t paths) {
  double sum = 0.0;
  for (const fl::CVec& ybar : ybars) {
    std::size_t best_p = 0;
    double best = 0.0;
    fd::scan_paths(det, ybar, paths, &best_p, &best);
    sum += best;
  }
  return sum;
}

/// One scalar + two block rows for a (detector, MIMO size) sweep point —
/// the single place that defines the BENCH_kernels.json row schema.
void emit_rows(fb::BenchJson& json, const char* detector, std::size_t mimo,
               std::size_t paths, const Timing& scalar, const Timing& blk64,
               const Timing& blk32) {
  const struct {
    const char* kernel;
    const char* precision;
    double ns;
  } rows[] = {{"scalar", "fp64", scalar.ns_per_path},
              {"block", "fp64", blk64.ns_per_path},
              {"block", "fp32", blk32.ns_per_path}};
  for (const auto& r : rows) {
    json.row()
        .field("detector", detector)
        .field("mimo", mimo)
        .field("qam", 64)
        .field("paths", paths)
        .field("kernel", r.kernel)
        .field("precision", r.precision)
        .field("ns_per_path", r.ns)
        .field("speedup_vs_scalar", scalar.ns_per_path / r.ns);
  }
}

std::vector<fl::CVec> rotated_batch(const fc::FlexCoreDetector& det,
                                    const fl::CMat& h,
                                    const Constellation& c, double nv,
                                    std::size_t count, ch::Rng& rng) {
  std::vector<fl::CVec> ybars;
  ybars.reserve(count);
  fl::CVec s(h.cols());
  for (std::size_t v = 0; v < count; ++v) {
    for (auto& z : s) {
      z = c.point(static_cast<int>(
          rng.uniform_int(static_cast<std::uint64_t>(c.order()))));
    }
    ybars.push_back(det.rotate(ch::transmit(h, s, nv, rng)));
  }
  return ybars;
}

}  // namespace

int main() {
  const int reps = static_cast<int>(fb::env_size("FLEXCORE_TRIALS", 3));
  const std::size_t nvec = fb::env_size("FLEXCORE_VECTORS", 192);
  constexpr double kSpeedupGate = 1.5;  // fp64 block vs scalar, 12x12/64-QAM

  Constellation qam(64);
  fb::BenchJson json("kernels");
  fb::banner("Fig. 17: lane-parallel kernel engine vs scalar path loop");
  std::printf("(64-QAM, flexcore-128, %zu vectors, best of %d, single "
              "thread)\n\n",
              nvec, reps);
  std::printf("%-6s %-8s %-18s %-18s %-18s %-10s\n", "MIMO", "paths",
              "scalar ns/path", "block fp64", "block fp32", "speedup");
  fb::rule();

  bool gate_seen = false;
  bool gate_ok = false;
  for (std::size_t nt : {4u, 8u, 12u, 16u}) {
    ch::Rng rng(900 + nt);
    const auto h = ch::rayleigh_iid(nt, nt, rng);
    const double noise = ch::noise_var_for_snr_db(18.0);

    const fa::DetectorConfig dcfg{.constellation = &qam};
    const auto det64 =
        fa::make_detector_as<fc::FlexCoreDetector>("flexcore-128", dcfg);
    det64->set_channel(h, noise);
    const auto det32 =
        fa::make_detector_as<fc::FlexCoreDetector>("flexcore-128:fp32", dcfg);
    det32->set_channel(h, noise);
    const std::size_t paths = det64->active_paths();
    const auto ybars = rotated_batch(*det64, h, qam, noise, nvec, rng);
    const std::size_t walks = nvec * paths;

    const Timing scalar = time_kernel(
        walks, reps, [&] { return scan_scalar(*det64, ybars, paths); });
    const Timing blk64 = time_kernel(
        walks, reps, [&] { return scan_block(*det64, ybars, paths); });
    const Timing blk32 = time_kernel(
        walks, reps, [&] { return scan_block(*det32, ybars, paths); });
    // Relative tolerance, not bit equality: tests/kernel_test.cpp proves
    // bitwise identity at the portable default flags; under
    // FLEXCORE_NATIVE_ARCH, FMA contraction may legitimately move the
    // split kernels by ULPs relative to the scalar libcall path.
    const double drift = std::fabs(blk64.checksum - scalar.checksum);
    if (drift > 1e-9 * std::fabs(scalar.checksum)) {
      std::fprintf(stderr,
                   "FAIL: fp64 block checksum %.17g vs scalar %.17g at "
                   "%zux%zu\n",
                   blk64.checksum, scalar.checksum, nt, nt);
      return 1;
    }

    const double speedup64 = scalar.ns_per_path / blk64.ns_per_path;
    std::printf("%zux%-4zu %-8zu %-18.2f %-18.2f %-18.2f %.2fx\n", nt, nt,
                paths, scalar.ns_per_path, blk64.ns_per_path,
                blk32.ns_per_path, speedup64);
    emit_rows(json, "flexcore-128", nt, paths, scalar, blk64, blk32);

    if (nt == 12) {
      gate_seen = true;
      gate_ok = speedup64 >= kSpeedupGate;
    }
  }

  // FCSD context rows: the same engine accelerates the competitor too
  // (both graphs run the identical grid infrastructure, the paper's
  // fairness methodology).
  {
    const std::size_t nt = 12;
    ch::Rng rng(77);
    const auto h = ch::rayleigh_iid(nt, nt, rng);
    const double noise = ch::noise_var_for_snr_db(18.0);
    fd::FcsdDetector fcsd64(qam, 1);
    fcsd64.set_channel(h, noise);
    fd::FcsdDetector fcsd32(qam, 1, fd::Precision::kFloat32);
    fcsd32.set_channel(h, noise);
    const std::size_t paths = fcsd64.num_paths();

    const auto flex =
        fa::make_detector_as<fc::FlexCoreDetector>("flexcore-128",
                                                   {.constellation = &qam});
    flex->set_channel(h, noise);  // only for identical rotation geometry
    std::vector<fl::CVec> ybars;
    {
      fl::CVec s(nt);
      ybars.reserve(nvec);
      for (std::size_t v = 0; v < nvec; ++v) {
        for (auto& z : s) {
          z = qam.point(static_cast<int>(
              rng.uniform_int(static_cast<std::uint64_t>(qam.order()))));
        }
        ybars.push_back(fcsd64.rotate(ch::transmit(h, s, noise, rng)));
      }
    }
    const std::size_t walks = nvec * paths;
    const Timing scalar = time_kernel(
        walks, reps, [&] { return scan_scalar(fcsd64, ybars, paths); });
    const Timing blk64 = time_kernel(
        walks, reps, [&] { return scan_block(fcsd64, ybars, paths); });
    const Timing blk32 = time_kernel(
        walks, reps, [&] { return scan_block(fcsd32, ybars, paths); });
    std::printf("\nfcsd-L1 12x12: scalar %.2f ns/path, block fp64 %.2f "
                "(%.2fx), block fp32 %.2f\n",
                scalar.ns_per_path, blk64.ns_per_path,
                scalar.ns_per_path / blk64.ns_per_path, blk32.ns_per_path);
    emit_rows(json, "fcsd-L1", nt, paths, scalar, blk64, blk32);
  }

  json.write();
  if (!gate_seen || !gate_ok) {
    std::fprintf(stderr,
                 "\nFAIL: fp64 block kernel below the %.1fx speedup gate at "
                 "12x12/64-QAM\n",
                 kSpeedupGate);
    return 1;
  }
  std::printf("\nPASS: fp64 block kernel >= %.1fx over scalar at "
              "12x12/64-QAM\n",
              kSpeedupGate);
  return 0;
}
