// Fig. 9 reproduction: achievable network throughput vs number of available
// processing elements for FlexCore, FCSD and the trellis decoder [50],
// against ML and MMSE bounds — {8x8, 12x12} x {16-, 64-QAM} at SNRs where
// the ML detector reaches PER ~ 0.1 and ~ 0.01 (the paper's operating
// points, re-calibrated on our synthetic traces per DESIGN.md).
//
// Default run covers the two headline panels (8x8 16-QAM, 12x12 64-QAM);
// FLEXCORE_FULL=1 adds the other two panels and the FCSD's |Q|^2 = 4096
// point for 64-QAM.  FLEXCORE_PACKETS controls Monte-Carlo depth.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/detector_registry.h"
#include "api/uplink_pipeline.h"
#include "bench_json.h"
#include "bench_util.h"
#include "channel/trace.h"
#include "detect/fcsd.h"
#include "sim/montecarlo.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace fs = flexcore::sim;
namespace fb = flexcore::bench;
using flexcore::modulation::Constellation;

namespace {

struct Panel {
  std::size_t n;       // Nt = Nr
  int qam;
  double target_per;   // PER_ML operating point
};

fs::LinkConfig link_config(int qam) {
  fs::LinkConfig cfg;
  cfg.qam_order = qam;
  cfg.info_bits_per_user = 1152;
  return cfg;
}

ch::TraceConfig trace_config(std::size_t n) {
  ch::TraceConfig cfg;
  cfg.nr = n;
  cfg.nt = n;
  return cfg;
}

void run_panel(const Panel& p, std::size_t packets, bool full,
               fb::BenchJson& json) {
  Constellation qam(p.qam);
  const fs::LinkConfig lcfg = link_config(p.qam);
  const ch::TraceConfig tcfg = trace_config(p.n);
  const std::uint64_t seed = 42;

  // --- Calibrate the operating SNR on the ML detector (paper methodology).
  fa::DetectorConfig acfg{.constellation = &qam};
  acfg.ml_sphere.max_nodes = 20000;
  const auto ml = fa::make_detector("ml-sd", acfg);
  const std::size_t cal_packets = std::max<std::size_t>(packets / 2, 6);
  const double snr = fs::find_snr_for_per(*ml, lcfg, tcfg, p.target_per, 2.0,
                                          26.0, 7, cal_packets, seed);
  const double nv = ch::noise_var_for_snr_db(snr);

  std::printf("\n--- %zux%zu, %d-QAM, PER_ML target %.2f: calibrated SNR = "
              "%.2f dB ---\n",
              p.n, p.n, p.qam, p.target_per, snr);
  std::printf("%-16s %-8s %-18s %-10s %-12s\n", "detector", "PEs",
              "throughput(Mb/s)", "avg PER", "notes");
  fb::rule();

  auto report = [&](fd::Detector& det, std::size_t pes, const char* note) {
    const auto r = fs::measure_throughput(det, lcfg, tcfg, nv, packets, seed);
    std::printf("%-16s %-8zu %-18.1f %-10.3f %-12s\n", det.name().c_str(), pes,
                r.throughput_mbps, r.avg_per, note);
    json.row()
        .field("panel", std::to_string(p.n) + "x" + std::to_string(p.n) + "-" +
                            std::to_string(p.qam) + "qam")
        .field("target_per", p.target_per)
        .field("snr_db", snr)
        .field("detector", det.name())
        .field("pes", pes)
        .field("throughput_mbps", r.throughput_mbps)
        .field("avg_per", r.avg_per);
  };

  report(*ml, 1, "ML bound");
  const auto mmse = fa::make_detector("mmse", acfg);
  report(*mmse, 1, "linear");
  const auto trellis = fa::make_detector("trellis50", acfg);
  report(*trellis, static_cast<std::size_t>(p.qam), "fixed |Q| PEs");

  // FlexCore PE sweep.
  std::vector<std::size_t> pes{1, 2, 4, 8, 16, 32, 64, 128, 196, 256};
  if (full) pes.push_back(512);
  for (std::size_t n_pe : pes) {
    const auto flex =
        fa::make_detector("flexcore-" + std::to_string(n_pe), acfg);
    report(*flex, n_pe, "");
  }

  // FCSD: only |Q|^L budgets exist.
  const auto fcsd1 = fa::make_detector_as<fd::FcsdDetector>("fcsd-L1", acfg);
  report(*fcsd1, fcsd1->num_paths(), "L=1");
  if (p.qam == 16 || full) {
    const auto fcsd2 = fa::make_detector_as<fd::FcsdDetector>("fcsd-L2", acfg);
    const std::size_t fcsd_packets = p.qam == 64 ? std::max<std::size_t>(packets / 2, 4) : packets;
    const auto r =
        fs::measure_throughput(*fcsd2, lcfg, tcfg, nv, fcsd_packets, seed);
    std::printf("%-16s %-8zu %-18.1f %-10.3f %-12s\n", fcsd2->name().c_str(),
                fcsd2->num_paths(), r.throughput_mbps, r.avg_per, "L=2");
  }
}

/// Frame mode: the same detection work submitted as one
/// subcarrier x vector x path frame job vs the per-subcarrier loop.
void run_frame_mode(fb::BenchJson& json) {
  fb::banner("Frame mode: detect_frame vs per-subcarrier set_channel+detect");
  std::printf("(stream = static-channel coherence interval: preprocessing "
              "amortized across frames)\n");
  std::printf("%-14s %-9s %-13s %-13s %-14s %-9s\n", "detector", "frame",
              "loop (vec/s)", "frame (vec/s)", "stream (vec/s)", "speedup");
  fb::rule();
  const std::size_t nsc = 64, nsym = 14;
  for (const char* spec : {"flexcore-64", "flexcore-128", "fcsd-L1"}) {
    fa::PipelineConfig pcfg;
    pcfg.detector = spec;
    pcfg.qam_order = 64;
    fa::UplinkPipeline pipe(pcfg);
    const double nv = ch::noise_var_for_snr_db(18.0);
    const auto r =
        fb::compare_frame_vs_loop(pipe, nsc, nsym, 12, 12, nv, /*seed=*/5);
    std::printf("%-14s %zux%-6zu %-13.0f %-13.0f %-14.0f %-9.2fx%s\n", spec,
                nsc, nsym, r.loop_vps, r.frame_vps, r.stream_vps,
                r.stream_vps / r.loop_vps,
                r.identical ? "" : "  !! MODES DISAGREE");
    json.row()
        .field("mode", "frame-vs-loop")
        .field("detector", spec)
        .field("subcarriers", nsc)
        .field("symbols", nsym)
        .field("loop_vps", r.loop_vps)
        .field("frame_vps", r.frame_vps)
        .field("stream_vps", r.stream_vps)
        .field("identical", r.identical ? "yes" : "no");
  }
}

}  // namespace

int main() {
  const std::size_t packets = fb::env_size("FLEXCORE_PACKETS", 12);
  const bool full = fb::env_flag("FLEXCORE_FULL");

  fb::banner("Fig. 9: network throughput vs available processing elements");
  std::printf("(packets per point: %zu; set FLEXCORE_PACKETS to deepen, "
              "FLEXCORE_FULL=1 for all panels)\n", packets);

  fb::BenchJson json("fig9");
  std::vector<Panel> panels{
      {8, 16, 0.1},
      {8, 16, 0.01},
      {12, 64, 0.1},
      {12, 64, 0.01},
  };
  if (full) {
    panels.push_back({8, 64, 0.1});
    panels.push_back({8, 64, 0.01});
    panels.push_back({12, 16, 0.1});
    panels.push_back({12, 16, 0.01});
  }
  for (const auto& p : panels) run_panel(p, packets, full, json);
  run_frame_mode(json);

  std::printf("\nShape checks vs the paper:\n");
  std::printf("  * MMSE far below ML at Nt = Nr; trellis [50] between MMSE "
              "and FCSD/FlexCore.\n");
  std::printf("  * FlexCore throughput rises monotonically with PEs and "
              "exists at EVERY budget.\n");
  std::printf("  * FCSD exists only at |Q|^L; FlexCore needs far fewer PEs "
              "for the same throughput.\n");
  return 0;
}
