// Ablation: sequential vs batched ("parallel") pre-processing expansion.
//
// §3.1.1 claims the pre-processing tree nodes can be expanded in parallel
// "with negligible throughput loss ... provided that the ratio of available
// processing elements N_PE to the number of nodes expanded in parallel is
// greater than ten".  This bench sweeps the batch size for N_PE = 128 and
// reports (a) the overlap of the selected path set with the sequential
// reference, (b) the cumulative path probability, and (c) the uncoded SER
// of the resulting detector — quantifying exactly where the ratio-10 rule
// starts to bite.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "api/detector_registry.h"
#include "bench_util.h"
#include "channel/channel.h"
#include "core/flexcore_detector.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fb = flexcore::bench;
using flexcore::modulation::Constellation;

namespace {
std::string key_of(const fc::PositionVector& p) {
  std::string k;
  for (int v : p) {
    k += std::to_string(v);
    k += ',';
  }
  return k;
}
}  // namespace

int main() {
  const std::size_t trials = fb::env_size("FLEXCORE_TRIALS", 300);
  Constellation qam(64);
  const std::size_t nt = 12;
  const std::size_t npe = 128;
  const double nv = ch::noise_var_for_snr_db(17.0);

  fb::banner("Ablation: batched pre-processing expansion (12x12 64-QAM, "
             "N_PE=128)");
  std::printf("%-8s %-10s %-16s %-14s %-10s\n", "batch", "NPE/batch",
              "overlap vs seq", "pc_sum ratio", "SER");
  fb::rule();

  // Sequential reference path sets per channel (for overlap) computed on
  // the fly; SER measured end to end.
  for (std::size_t batch : {1u, 4u, 8u, 12u, 16u, 32u, 64u, 128u}) {
    double overlap_sum = 0.0, pc_ratio_sum = 0.0;
    std::size_t errors = 0, symbols = 0;

    fa::DetectorConfig acfg{.constellation = &qam};
    acfg.flexcore.num_pes = npe;
    acfg.flexcore.batch_expand = batch;
    const auto det =
        fa::make_detector_as<fc::FlexCoreDetector>("flexcore", acfg);

    ch::Rng rng(25);
    for (std::size_t t = 0; t < trials; ++t) {
      ch::Rng hrng(7000 + t);
      const auto gains = ch::bounded_user_gains(nt, 3.0, hrng);
      const auto h = ch::kronecker_channel(nt, nt, 0.4, gains, hrng);

      det->set_channel(h, nv);
      if (t < 40) {  // overlap metric on a subsample (it needs a 2nd preproc)
        const auto qr = flexcore::linalg::sorted_qr_wubben(h);
        fc::PreprocessingConfig seq;
        seq.num_paths = npe;
        const auto ref = fc::find_most_promising_paths(qr.R, nv, qam, seq);
        std::set<std::string> ref_keys;
        for (const auto& rp : ref.paths) ref_keys.insert(key_of(rp.p));
        std::size_t common = 0;
        for (const auto& rp : det->preprocessing().paths) {
          common += ref_keys.count(key_of(rp.p));
        }
        overlap_sum += static_cast<double>(common) /
                       static_cast<double>(ref.paths.size());
        pc_ratio_sum += det->preprocessing().pc_sum / ref.pc_sum;
      }

      flexcore::linalg::CVec s(nt);
      std::vector<int> tx(nt);
      for (std::size_t u = 0; u < nt; ++u) {
        tx[u] = static_cast<int>(rng.uniform_int(64));
        s[u] = qam.point(tx[u]);
      }
      const auto y = ch::transmit(h, s, nv, rng);
      const auto res = det->detect(y);
      for (std::size_t u = 0; u < nt; ++u) {
        ++symbols;
        errors += res.symbols[u] != tx[u];
      }
    }

    std::printf("%-8zu %-10.1f %-16.3f %-14.4f %-10.4f\n", batch,
                static_cast<double>(npe) / static_cast<double>(batch),
                overlap_sum / 40.0, pc_ratio_sum / 40.0,
                static_cast<double>(errors) / static_cast<double>(symbols));
  }

  std::printf(
      "\nReading: mean path-set overlap and captured probability stay ~flat "
      "while NPE/batch >= 10\n(the paper's ratio-10 rule). A nuance the mean "
      "hides: the overlap *tail* is on the\nhardest channels, exactly where "
      "the symbol errors live, so raw SER moves earlier than\nthe overlap "
      "suggests — at the coded-throughput level (the paper's metric) the "
      "loss is\nabsorbed by the FEC until batching gets aggressive.\n");
  return 0;
}
