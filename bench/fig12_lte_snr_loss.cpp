// Fig. 12 reproduction: SNR loss relative to ML across the LTE bandwidth
// modes for FlexCore, the FCSD and SIC at 64-QAM, 8x8 and 12x12.
//
// Two-step methodology, exactly as in §5.2 of the paper:
//  (a) measure this platform's sustained path-evaluation rate, convert the
//      500 us LTE slot budget into a per-vector path budget for each mode
//      (perfmodel/lte_model);
//  (b) measure the algorithmic SNR loss of each detector *at that path
//      budget*: the extra SNR needed to match the ML detector's uncoded
//      vector error rate at the reference operating point.
//
// Absolute path budgets depend on our CPU's speed (the paper's on a GTX
// 970); the reproduced shape is the widening loss toward wide modes, SIC as
// the single-path worst case, and FCSD's infeasibility ("x") in every mode
// whose budget is below |Q|^L.
#include <cstdio>
#include <map>
#include <vector>

#include "api/detector_registry.h"
#include "bench_util.h"
#include "channel/channel.h"
#include "parallel/thread_pool.h"
#include "perfmodel/lte_model.h"
#include "sim/montecarlo.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fd = flexcore::detect;
namespace fs = flexcore::sim;
namespace pm = flexcore::perfmodel;
namespace fb = flexcore::bench;
using flexcore::modulation::Constellation;

namespace {

/// Measured sustained path-evaluation rate (paths/second) of the engine.
double measure_path_rate(std::size_t nt, const Constellation& qam) {
  ch::Rng rng(99);
  const auto h = ch::rayleigh_iid(nt, nt, rng);
  const double nv = ch::noise_var_for_snr_db(17.0);
  const auto flex = fa::make_detector("flexcore-128", {.constellation = &qam});
  flex->set_channel(h, nv);

  std::vector<flexcore::linalg::CVec> ys;
  flexcore::linalg::CVec s(nt);
  for (int v = 0; v < 2048; ++v) {
    for (std::size_t u = 0; u < nt; ++u) {
      s[u] = qam.point(static_cast<int>(rng.uniform_int(64)));
    }
    ys.push_back(ch::transmit(h, s, nv, rng));
  }
  flexcore::parallel::ThreadPool pool(flexcore::parallel::default_thread_count());
  flex->set_thread_pool(&pool);
  flexcore::detect::BatchResult out;
  flex->detect_batch(ys, &out);
  return static_cast<double>(out.tasks) / out.elapsed_seconds;
}

/// SNR (dB) at which `det` reaches the target uncoded VER (bisection).
double find_snr_for_ver(fd::Detector& det, const fs::VerScenario& sc,
                        double target_ver, double lo, double hi, int iters,
                        std::size_t channels, std::size_t vectors,
                        std::uint64_t seed) {
  for (int i = 0; i < iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    const auto r =
        fs::measure_vector_error_rate(det, sc, mid, channels, vectors, seed);
    if (r.ver > target_ver) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

int main() {
  Constellation qam(64);
  const std::size_t channels = fb::env_size("FLEXCORE_TRIALS", 40);
  const std::size_t vectors = 20;
  const bool full = fb::env_flag("FLEXCORE_FULL");

  fb::banner("Fig. 12: SNR loss vs ML across LTE modes (64-QAM)");

  const std::vector<std::size_t> nts = full ? std::vector<std::size_t>{8, 12}
                                            : std::vector<std::size_t>{12};
  for (std::size_t nt : nts) {
    const double path_rate = measure_path_rate(nt, qam);
    std::printf("\n--- %zu users x %zu-antenna AP; measured path rate %.2f "
                "Mpaths/s ---\n", nt, nt, path_rate / 1e6);

    // Reference: ML VER at the operating SNR (PER_ML ~ 0.01 regime).
    const double ref_snr = 17.0;
    fs::VerScenario sc;
    sc.nr = nt;
    sc.nt = nt;
    sc.qam_order = 64;
    fa::DetectorConfig ml_cfg{.constellation = &qam};
    ml_cfg.ml_sphere.max_nodes = 50000;
    const auto ml = fa::make_detector("ml-sd", ml_cfg);
    const auto ml_ref =
        fs::measure_vector_error_rate(*ml, sc, ref_snr, channels, vectors, 5);
    const double target_ver = std::max(ml_ref.ver, 0.02);
    std::printf("reference: ML VER %.3f at %.1f dB; target VER %.3f\n",
                ml_ref.ver, ref_snr, target_ver);
    const double ml_snr = find_snr_for_ver(*ml, sc, target_ver, 8.0, 26.0, 6,
                                           channels, vectors, 5);

    // SNR-loss cache per path budget (modes share budgets after capping).
    std::map<std::size_t, double> flex_loss;
    auto loss_for_paths = [&](std::size_t paths) {
      paths = std::min<std::size_t>(std::max<std::size_t>(paths, 1), 1024);
      auto it = flex_loss.find(paths);
      if (it != flex_loss.end()) return it->second;
      const auto flex = fa::make_detector(
          "flexcore-" + std::to_string(paths), {.constellation = &qam});
      const double snr = find_snr_for_ver(*flex, sc, target_ver, 8.0, 34.0, 6,
                                          channels, vectors, 5);
      const double loss = snr - ml_snr;
      flex_loss[paths] = loss;
      return loss;
    };

    // SIC = single-path reference.
    const auto sic = fa::make_detector("zf-sic", {.constellation = &qam});
    const double sic_snr = find_snr_for_ver(*sic, sc, target_ver, 8.0, 40.0, 6,
                                            channels, vectors, 5);
    const double sic_loss = sic_snr - ml_snr;

    // FCSD losses at its realizable levels.
    std::map<int, double> fcsd_loss;
    for (int level = 1; level <= 2; ++level) {
      if (level == 2 && nt == 12 && !full) break;  // keep default runtime low
      const auto fcsd = fa::make_detector("fcsd-L" + std::to_string(level),
                                          {.constellation = &qam});
      const double snr = find_snr_for_ver(*fcsd, sc, target_ver, 8.0, 34.0, 6,
                                          channels, vectors, 5);
      fcsd_loss[level] = snr - ml_snr;
    }

    // The paper's platform is a GTX 970; this machine's CPU path rate is
    // orders of magnitude lower, which would collapse every mode to the
    // single-path (SIC) budget.  Print the honest CPU table and a table at
    // a GPU-class rate (default 100x, override with FLEXCORE_PATH_RATE in
    // paths/second) whose budgets land in the paper's regime.
    const double gpu_rate = static_cast<double>(fb::env_size(
        "FLEXCORE_PATH_RATE", static_cast<std::size_t>(path_rate * 100.0)));
    for (const double rate : {path_rate, gpu_rate}) {
      std::printf("\n[engine rate %.2f Mpaths/s%s]\n", rate / 1e6,
                  rate == path_rate ? " — measured on this CPU"
                                    : " — GPU-class (scaled; see DESIGN.md)");
      std::printf("%-10s %-14s %-18s %-22s %-14s\n", "LTE mode", "budget/vec",
                  "FlexCore loss(dB)", "FCSD loss(dB)", "SIC loss(dB)");
      fb::rule();
      for (const auto& mode : pm::kLteModes) {
        const std::size_t budget = pm::supported_paths(rate, mode);
        const int fcsd_level = pm::fcsd_supported_level(rate, mode, 64);
        char fcsd_cell[64];
        if (fcsd_level >= 1 && fcsd_loss.count(fcsd_level)) {
          std::snprintf(fcsd_cell, sizeof(fcsd_cell), "%.2f (L=%d)",
                        fcsd_loss[fcsd_level], fcsd_level);
        } else {
          std::snprintf(fcsd_cell, sizeof(fcsd_cell), "x (not supported)");
        }
        std::printf("%-10s %-14zu %-18.2f %-22s %-14.2f\n", mode.name, budget,
                    budget >= 1 ? loss_for_paths(budget) : sic_loss, fcsd_cell,
                    sic_loss);
      }
    }
  }

  std::printf("\nShape checks vs the paper:\n");
  std::printf("  * Loss grows toward wide LTE modes as the per-vector path "
              "budget shrinks.\n");
  std::printf("  * SIC (single path) is the worst case; FlexCore always "
              "meets the deadline.\n");
  std::printf("  * FCSD is marked 'x' in modes whose budget is below "
              "|Q|^L.\n");
  return 0;
}
