// Closed-loop adaptive control (new figure, beyond the paper): the
// control plane of src/control driving api::Runtime::reconfigure against
// time-varying scenarios, vs the static worst-case provisioning a
// fixed-spec deployment needs.
//
// Per scenario the same scripted conditions (sim::ScenarioDriver — SNR
// ramps, a fading burst, an offered-load spike) are served twice:
//   * static-worst: flexcore-N with N solved once at the script's minimum
//     SNR — the fixed config that meets the target everywhere;
//   * adaptive: a control::FeedbackLoop observing estimated SNR (pilot
//     sounding + channel::estimated_snr_db), post-detection symbol errors
//     and runtime queue depth, reconfiguring the cell's path budget at
//     frame boundaries.
// The adaptive policy must meet the same target error rate with
// measurably fewer average paths (= less compute, more cells per PE
// pool).  Emits BENCH_control.json; exits non-zero when the adaptive
// policy fails to converge (or misses the target) in the fixed-SNR
// scenario — the CI smoke gate.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "api/runtime.h"
#include "bench_json.h"
#include "bench_util.h"
#include "channel/channel.h"
#include "channel/estimation.h"
#include "channel/rng.h"
#include "control/feedback.h"
#include "control/path_policy.h"
#include "sim/frame_synth.h"
#include "sim/scenario.h"

namespace fa = flexcore::api;
namespace fb = flexcore::bench;
namespace ch = flexcore::channel;
namespace ctl = flexcore::control;
namespace fs = flexcore::sim;
using flexcore::modulation::Constellation;

namespace {

constexpr std::size_t kNsc = 8;      // data subcarriers per frame
constexpr std::size_t kNv = 2;       // OFDM symbols per frame
constexpr std::size_t kQueueCap = 4;
constexpr std::size_t kPilotRepeats = 4;
constexpr std::size_t kSoundedSubcarriers = 4;

struct ModeResult {
  std::size_t frames = 0;
  std::size_t symbols = 0;
  std::size_t errors = 0;
  double paths_sum = 0.0;  ///< sum over frames of avg paths per subcarrier
  double seconds = 0.0;
  std::uint64_t reconfigs = 0;
  std::uint64_t dropped = 0;
  std::size_t decisions = 0;
  std::size_t decisions_late_half = 0;
  std::string final_spec;
  fa::RuntimeStats stats;

  double ser() const {
    return symbols > 0 ? static_cast<double>(errors) /
                             static_cast<double>(symbols)
                       : 0.0;
  }
  double avg_paths() const {
    return frames > 0 ? paths_sum / static_cast<double>(frames) : 0.0;
  }
};

ModeResult run_mode(const fs::ScenarioConfig& scfg, const Constellation& qam,
                    bool adaptive, std::size_t static_paths,
                    const ctl::ControlConfig& ccfg) {
  fs::ScenarioDriver drv(scfg);

  fa::RuntimeConfig rcfg;
  rcfg.dispatchers = 0;  // poll mode: the run is a pure function of the seed
  rcfg.queue_capacity = kQueueCap;
  rcfg.policy = fa::QueuePolicy::kDropNewest;
  fa::Runtime rt(rcfg);

  fa::CellConfig cell_cfg;
  cell_cfg.detector = "flexcore-" + std::to_string(static_paths);
  cell_cfg.qam_order = qam.order();
  fa::Cell& cell = rt.open_cell(cell_cfg);

  ctl::FeedbackLoop loop(qam, scfg.trace.nt, ccfg);
  ch::Rng pilot_rng(scfg.seed ^ 0x9e3779b97f4a7c15ull);

  ModeResult mr;
  mr.final_spec = cell_cfg.detector;
  fs::ScenarioStep step;
  const auto t0 = std::chrono::steady_clock::now();
  while (drv.next(&step)) {
    const fs::SynthFrame fr = drv.synth_frame(qam, kNsc, kNv);
    const fa::FrameJob job = fs::frame_job_of(fr, step.noise_var);

    // Offered load: the primary frame plus the segment's burst duplicates
    // against the bounded admission queue (DropNewest sheds the excess).
    fa::FrameTicket primary = rt.submit(cell, job);
    std::vector<fa::FrameTicket> extras;
    extras.reserve(step.load_burst);
    for (std::size_t b = 0; b < step.load_burst; ++b) {
      extras.push_back(rt.submit(cell, job));
    }
    const std::size_t queue_depth = rt.stats().queue_depth;
    while (rt.run_one()) {
    }
    std::size_t errors = 0;
    if (const fa::FrameResult* res = primary.try_get()) {
      errors = fs::count_symbol_errors(fr, res->results);
      mr.paths_sum += res->sum_active_paths / static_cast<double>(kNsc);
      mr.symbols += fr.tx.size();
      mr.errors += errors;
      ++mr.frames;
    }

    if (adaptive) {
      // The controller sees what a real AP would: pilot-sounded SNR
      // estimates (never the true H) averaged over a few subcarriers, its
      // own link's error feedback, and the admission-queue pressure at
      // submit time.
      double snr_sum = 0.0;
      for (std::size_t f = 0; f < kSoundedSubcarriers; ++f) {
        const ch::ChannelEstimate est =
            ch::estimate_channel(drv.trace().per_subcarrier[f],
                                 step.noise_var, kPilotRepeats, pilot_rng);
        snr_sum += ch::estimated_snr_db(est);
      }
      ctl::Observation obs;
      obs.snr_db_estimate = snr_sum / kSoundedSubcarriers;
      obs.symbols = fr.tx.size();
      obs.symbol_errors = errors;
      obs.queue_depth = queue_depth;
      obs.queue_capacity = kQueueCap;
      if (auto d = loop.observe(obs)) {
        // FIFO-safe swap; applied by the pump before the next frame.
        rt.reconfigure(cell, {.detector = d->detector, .tuning = {}});
        ++mr.decisions;
        if (d->frame_index >= drv.total_frames() / 2) {
          ++mr.decisions_late_half;
        }
        mr.final_spec = d->detector;
      }
    }
  }
  rt.drain();
  mr.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  mr.stats = rt.stats();
  mr.reconfigs = mr.stats.reconfigs;
  mr.dropped = mr.stats.frames_dropped;
  return mr;
}

}  // namespace

int main() {
  const std::size_t seg_frames = fb::env_size("FLEXCORE_FRAMES", 40);
  const std::size_t nr = 8, nt = 4;
  Constellation qam(16);

  ctl::ControlConfig ccfg;
  ccfg.policy.target_error = 1e-2;
  ccfg.policy.max_paths = 64;
  const double target = ccfg.policy.target_error;

  ch::TraceConfig tcfg;
  tcfg.nr = nr;
  tcfg.nt = nt;
  tcfg.num_subcarriers = kNsc;

  struct Scenario {
    const char* name;
    fs::ScenarioConfig cfg;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      {"fixed-snr",
       {tcfg, {{seg_frames * 2, 12.0, 12.0, 1.0, 0}}, 71}});
  scenarios.push_back({"snr-ramp",
                       {tcfg,
                        {{seg_frames, 18.0, 8.0, 1.0, 0},
                         {seg_frames, 8.0, 8.0, 1.0, 0},
                         {seg_frames, 8.0, 18.0, 1.0, 0}},
                        72}});
  scenarios.push_back({"fading-burst",
                       {tcfg,
                        {{seg_frames, 14.0, 14.0, 1.0, 0},
                         {seg_frames, 14.0, 10.0, 0.95, 0},
                         {seg_frames, 14.0, 14.0, 1.0, 0}},
                        73}});
  scenarios.push_back({"load-spike",
                       {tcfg,
                        {{seg_frames, 12.0, 12.0, 1.0, 0},
                         {seg_frames, 12.0, 12.0, 1.0, 4},
                         {seg_frames, 12.0, 12.0, 1.0, 0}},
                        74}});

  fb::banner("Fig. 16: closed-loop adaptive control vs static worst-case");
  std::printf("target error %.3g, %zu users, %d-QAM, %zu subcarriers x %zu "
              "symbols per frame\n",
              target, nt, qam.order(), kNsc, kNv);
  fb::BenchJson json("control");

  std::printf("\n%-13s %-13s %-9s %-10s %-7s %-6s %-6s %-14s\n", "scenario",
              "mode", "paths/sc", "ser", "reconf", "drop", "conv",
              "final spec");
  fb::rule();

  bool ci_ok = true;
  for (const Scenario& sc : scenarios) {
    fs::ScenarioDriver probe(sc.cfg);
    // Static worst case: the smallest fixed budget meeting the target at
    // the lowest SNR the script ever reaches.
    const ctl::PathDecision worst = ctl::solve_path_count(
        qam, nt, probe.min_snr_db(), ccfg.policy);

    for (const bool adaptive : {false, true}) {
      const ModeResult mr =
          run_mode(sc.cfg, qam, adaptive, worst.paths, ccfg);
      // Converged = the policy settled: no reconfiguration in the second
      // half of the run.  Only meaningful for the statically-conditioned
      // scenarios; the gate below uses fixed-snr.
      const bool converged = !adaptive || mr.decisions_late_half == 0;
      const bool met_target = mr.ser() <= 2.0 * target;
      std::printf("%-13s %-13s %-9.2f %-10.3g %-7llu %-6llu %-6s %-14s\n",
                  sc.name, adaptive ? "adaptive" : "static-worst",
                  mr.avg_paths(), mr.ser(),
                  static_cast<unsigned long long>(mr.reconfigs),
                  static_cast<unsigned long long>(mr.dropped),
                  converged ? "yes" : "NO", mr.final_spec.c_str());
      json.row()
          .field("scenario", sc.name)
          .field("mode", adaptive ? "adaptive" : "static-worst")
          .field("target_error", target)
          .field("min_snr_db", probe.min_snr_db())
          .field("worst_case_paths", worst.paths)
          .field("frames", mr.frames)
          .field("avg_paths_per_subcarrier", mr.avg_paths())
          .field("ser", mr.ser())
          .field("reconfigs", mr.reconfigs)
          .field("frames_dropped", mr.dropped)
          .field("decisions", mr.decisions)
          .field("converged", converged ? 1 : 0)
          .field("met_target", met_target ? 1 : 0)
          .field("final_spec", mr.final_spec)
          .field("seconds", mr.seconds);
      fb::append_latency_buckets(json, mr.stats);

      if (adaptive && std::string(sc.name) == "fixed-snr" &&
          (!converged || !met_target)) {
        ci_ok = false;
      }
    }
  }

  std::printf("\nShape checks:\n");
  std::printf("  * time-varying scenarios: adaptive meets the target error "
              "with measurably fewer\n    average paths than static-worst "
              "(solved at the script's minimum SNR).\n");
  std::printf("  * fixed-snr: the policy converges to ~the worst-case "
              "solve and reconfigurations\n    stop in the first half "
              "(the CI gate).\n");
  std::printf("  * load-spike: queue pressure degrades the path budget "
              "(cheaper frames) while the\n    bounded queue sheds the "
              "same open-loop excess in both modes.\n");
  if (!ci_ok) {
    std::printf("\nFAIL: adaptive policy did not converge/meet target in "
                "the fixed-SNR scenario\n");
    return 1;
  }
  return 0;
}
