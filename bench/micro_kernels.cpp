// Micro-benchmarks (google-benchmark) of the kernels on the critical path:
// QR decompositions, pre-processing, LUT lookup, single-path walk, Viterbi.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>

#include "api/detector_registry.h"
#include "channel/channel.h"
#include "coding/convolutional.h"
#include "core/flexcore_detector.h"
#include "core/ordering_lut.h"
#include "core/preprocessing.h"
#include "linalg/qr.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fc = flexcore::core;
namespace fl = flexcore::linalg;
using flexcore::modulation::Constellation;

namespace {

fl::CMat channel_12x12() {
  ch::Rng rng(1);
  return ch::rayleigh_iid(12, 12, rng);
}

void BM_QrMgs(benchmark::State& state) {
  const auto h = channel_12x12();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fl::qr_mgs(h));
  }
}
BENCHMARK(BM_QrMgs);

void BM_SortedQrWubben(benchmark::State& state) {
  const auto h = channel_12x12();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fl::sorted_qr_wubben(h));
  }
}
BENCHMARK(BM_SortedQrWubben);

void BM_FcsdSortedQr(benchmark::State& state) {
  const auto h = channel_12x12();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fl::fcsd_sorted_qr(h, 1));
  }
}
BENCHMARK(BM_FcsdSortedQr);

void BM_Preprocessing(benchmark::State& state) {
  Constellation qam(64);
  const auto h = channel_12x12();
  const auto qr = fl::sorted_qr_wubben(h);
  fc::PreprocessingConfig cfg;
  cfg.num_paths = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fc::find_most_promising_paths(qr.R, 0.02, qam, cfg));
  }
  state.SetLabel("N_PE=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Preprocessing)->Arg(32)->Arg(128)->Arg(512);

void BM_LutLookup(benchmark::State& state) {
  Constellation qam(64);
  fc::OrderingLut lut(qam);
  ch::Rng rng(2);
  const fl::cplx z{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  int k = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut.kth_symbol(z, 1 + (k++ % 8)));
  }
}
BENCHMARK(BM_LutLookup);

void BM_ExactKthNearest(benchmark::State& state) {
  Constellation qam(64);
  ch::Rng rng(2);
  const fl::cplx z{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  int k = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qam.kth_nearest_exact(z, 1 + (k++ % 8)));
  }
}
BENCHMARK(BM_ExactKthNearest);

void BM_FlexCorePathWalk(benchmark::State& state) {
  Constellation qam(64);
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-128", {.constellation = &qam});
  const auto h = channel_12x12();
  const double nv = 0.02;
  det->set_channel(h, nv);
  ch::Rng rng(3);
  fl::CVec s(12, qam.point(0));
  const auto y = ch::transmit(h, s, nv, rng);
  const auto ybar = det->rotate(y);
  std::size_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det->path_metric(ybar, p));
    p = (p + 1) % det->active_paths();
  }
}
BENCHMARK(BM_FlexCorePathWalk);

// ---- the lane-parallel kernel engine (detect/path_kernels.h) ----
// BM_PathMetricScalar and BM_PathMetricBlock walk the SAME full path set
// per iteration (all active paths of one rotated vector), so their ratio
// is the block-kernel speedup fig17 gates on.

struct KernelFixture {
  Constellation qam{64};
  std::unique_ptr<fc::FlexCoreDetector> det;
  fl::CVec ybar;

  explicit KernelFixture(const char* spec) {
    det = fa::make_detector_as<fc::FlexCoreDetector>(
        spec, {.constellation = &qam});
    const auto h = channel_12x12();
    const double nv = 0.02;
    det->set_channel(h, nv);
    // Random transmitted symbols: a corner-only vector would deactivate
    // most paths at the top level, flattering the early-exit scalar walk.
    ch::Rng rng(3);
    fl::CVec s(12);
    for (auto& z : s) {
      z = qam.point(static_cast<int>(
          rng.uniform_int(static_cast<std::uint64_t>(qam.order()))));
    }
    ybar = det->rotate(ch::transmit(h, s, nv, rng));
  }
};

void BM_PathMetricScalar(benchmark::State& state) {
  KernelFixture fx("flexcore-128");
  const std::size_t paths = fx.det->active_paths();
  for (auto _ : state) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < paths; ++p) {
      best = std::min(best, fx.det->path_metric(fx.ybar, p));
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(paths));
}
BENCHMARK(BM_PathMetricScalar);

void BM_PathMetricBlock(benchmark::State& state) {
  KernelFixture fx(state.range(0) == 32 ? "flexcore-128:fp32"
                                        : "flexcore-128");
  const std::size_t paths = fx.det->active_paths();
  for (auto _ : state) {
    // detect::scan_paths is the exact block-scan loop the grids run.
    std::size_t best_p = 0;
    double best = 0.0;
    flexcore::detect::scan_paths(*fx.det, fx.ybar, paths, &best_p, &best);
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(paths));
  state.SetLabel(state.range(0) == 32 ? "fp32" : "fp64");
}
BENCHMARK(BM_PathMetricBlock)->Arg(64)->Arg(32);

void BM_PathMetricBlockI16(benchmark::State& state) {
  KernelFixture fx("flexcore-128:i16");
  const std::size_t paths = fx.det->active_paths();
  for (auto _ : state) {
    std::size_t best_p = 0;
    double best = 0.0;
    flexcore::detect::scan_paths(*fx.det, fx.ybar, paths, &best_p, &best);
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(paths));
  // Label carries the compiled plan footprint next to fp64/fp32 below, so
  // one run shows both halvings (bytes and time) of the quantized tier.
  state.SetLabel("i16 plan_bytes=" +
                 std::to_string(fx.det->plan_footprint_bytes()));
}
BENCHMARK(BM_PathMetricBlockI16);

void BM_PlanFootprint(benchmark::State& state) {
  // Not a timing benchmark so much as a tracked-number report: compiled
  // plan heap bytes per precision tier for the fig17 fixture (12x12,
  // 64-QAM, 128 paths).  The i16 tier's SoA storage should come in under
  // half of fp64's.
  const char* spec = state.range(0) == 16   ? "flexcore-128:i16"
                     : state.range(0) == 32 ? "flexcore-128:fp32"
                                            : "flexcore-128";
  KernelFixture fx(spec);
  std::size_t bytes = 0;
  for (auto _ : state) {
    bytes = fx.det->plan_footprint_bytes();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["plan_bytes"] = static_cast<double>(bytes);
  state.SetLabel(state.range(0) == 16   ? "i16"
                 : state.range(0) == 32 ? "fp32"
                                        : "fp64");
}
BENCHMARK(BM_PlanFootprint)->Arg(64)->Arg(32)->Arg(16);

void BM_RotateInto(benchmark::State& state) {
  KernelFixture fx("flexcore-128");
  ch::Rng rng(5);
  fl::CVec s(12, fx.qam.point(1));
  const auto y = ch::transmit(channel_12x12(), s, 0.02, rng);
  fl::CVec out(12);
  for (auto _ : state) {
    fx.det->rotate_into(y, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RotateInto);

void BM_FlexCoreSetChannel(benchmark::State& state) {
  Constellation qam(64);
  const auto det = fa::make_detector_as<fc::FlexCoreDetector>(
      "flexcore-128", {.constellation = &qam});
  const auto h = channel_12x12();
  for (auto _ : state) {
    det->set_channel(h, 0.02);
    benchmark::DoNotOptimize(det->active_paths());
  }
}
BENCHMARK(BM_FlexCoreSetChannel);

void BM_ViterbiDecode(benchmark::State& state) {
  ch::Rng rng(4);
  flexcore::coding::BitVec info(1152);
  for (auto& b : info) b = rng.bit();
  const auto coded = flexcore::coding::conv_encode(info);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flexcore::coding::viterbi_decode(coded));
  }
}
BENCHMARK(BM_ViterbiDecode);

}  // namespace

BENCHMARK_MAIN();
