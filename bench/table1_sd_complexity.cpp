// Table 1 reproduction: computational rate a single core must sustain to run
// the depth-first ML sphere decoder at the Wi-Fi arrival rate, vs achieved
// throughput, for 2x2 .. 8x8 MIMO with 16-QAM at 13 dB SNR over Rayleigh
// channels (the paper's Table 1 parameters).
//
// Absolute GFLOP/s differ from [32]'s counts (different per-node accounting,
// different hardware) — the reproduced *shape* is the exponential growth of
// required compute with linearly-growing antenna count, against the linear
// growth of achieved throughput.
#include <cstdio>
#include <vector>

#include "api/detector_registry.h"
#include "bench_util.h"
#include "channel/channel.h"
#include "modulation/constellation.h"
#include "ofdm/ofdm.h"

namespace fa = flexcore::api;
namespace ch = flexcore::channel;
namespace fb = flexcore::bench;

int main() {
  const std::size_t trials = fb::env_size("FLEXCORE_TRIALS", 400);
  const double snr_db = 13.0;  // per-user, as in Table 1's footnote
  const double nv = ch::noise_var_for_snr_db(snr_db);
  flexcore::modulation::Constellation qam(16);
  flexcore::ofdm::OfdmConfig ofdm;  // 20 MHz Wi-Fi numerology

  fb::banner("Table 1: depth-first ML sphere decoder, 16-QAM, 13 dB, Rayleigh");
  std::printf("%-10s %-22s %-18s %-18s %-12s\n", "Antennas",
              "Throughput (Mbit/s)", "GFLOP/s required", "flops/vector",
              "nodes/vector");
  fb::rule();

  for (std::size_t nt : {2u, 4u, 6u, 8u}) {
    const auto sd = fa::make_detector("ml-sd", {.constellation = &qam});
    ch::Rng rng(1000 + nt);
    std::uint64_t flops = 0, nodes = 0;
    std::size_t vec_errors = 0;

    for (std::size_t t = 0; t < trials; ++t) {
      const auto h = ch::rayleigh_iid(nt, nt, rng);
      sd->set_channel(h, nv);
      flexcore::linalg::CVec s(nt);
      std::vector<int> tx(nt);
      for (std::size_t u = 0; u < nt; ++u) {
        tx[u] = static_cast<int>(rng.uniform_int(16));
        s[u] = qam.point(tx[u]);
      }
      const auto y = ch::transmit(h, s, nv, rng);
      const auto res = sd->detect(y);
      flops += res.stats.flops;
      nodes += res.stats.nodes_visited;
      for (std::size_t u = 0; u < nt; ++u) {
        if (res.symbols[u] != tx[u]) {
          ++vec_errors;
          break;
        }
      }
    }

    const double flops_per_vector = static_cast<double>(flops) / static_cast<double>(trials);
    const double gflops =
        flops_per_vector * flexcore::ofdm::vectors_per_second(ofdm) / 1e9;
    const double ver = static_cast<double>(vec_errors) / static_cast<double>(trials);
    // Achieved sum throughput ~ Nt streams of 16-QAM rate-1/2 scaled by the
    // vector success rate (uncoded proxy for the paper's measured column).
    const double tput = static_cast<double>(nt) *
                        flexcore::ofdm::per_user_rate_mbps(ofdm, 4) *
                        (1.0 - ver);

    std::printf("%zux%zu        %-22.1f %-18.2f %-18.0f %-12.1f\n", nt, nt,
                tput, gflops, flops_per_vector,
                static_cast<double>(nodes) / static_cast<double>(trials));
  }

  std::printf("\nPaper's Table 1 (for shape comparison):\n");
  std::printf("  2x2:  45 Mbit/s,   1.2 GFLOPS\n");
  std::printf("  4x4: 100 Mbit/s,    13 GFLOPS\n");
  std::printf("  6x6: 162 Mbit/s,   105 GFLOPS\n");
  std::printf("  8x8: 223 Mbit/s,   837 GFLOPS\n");
  return 0;
}
