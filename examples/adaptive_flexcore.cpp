// a-FlexCore demo: complexity that adapts to channel conditions.
//
// The adaptive variant activates only as many processing elements as needed
// for the cumulative path probability to reach a threshold (0.95 in the
// paper's Fig. 10).  This example sweeps AP load (number of simultaneous
// users) and SNR, showing how the active-PE count shrinks to ~1 on easy
// channels — linear-detector complexity — and grows automatically as the
// channel hardens.
#include <cstdio>

#include "api/detector_registry.h"
#include "channel/trace.h"
#include "core/flexcore_detector.h"

using namespace flexcore;

namespace {

double average_active_pes(std::size_t users, std::size_t antennas,
                          double snr_db, std::size_t num_channels) {
  modulation::Constellation qam(64);
  // "a-flexcore" defaults to the paper's 0.95 activation threshold.
  const auto det = api::make_detector_as<core::FlexCoreDetector>(
      "a-flexcore-64", {.constellation = &qam});

  channel::TraceConfig tcfg;
  tcfg.nr = antennas;
  tcfg.nt = users;
  channel::TraceGenerator gen(tcfg, 1234);
  const double nv = channel::noise_var_for_snr_db(snr_db);

  double total = 0.0;
  std::size_t installs = 0;
  for (std::size_t c = 0; c < num_channels; ++c) {
    const auto trace = gen.next();
    for (std::size_t f = 0; f < trace.per_subcarrier.size(); f += 8) {
      det->set_channel(trace.per_subcarrier[f], nv);
      total += static_cast<double>(det->active_paths());
      ++installs;
    }
  }
  return total / static_cast<double>(installs);
}

}  // namespace

int main() {
  std::printf("a-FlexCore: average activated PEs (of 64 available, threshold "
              "0.95)\n12-antenna AP, 64-QAM, averaged over synthetic "
              "traces\n\n");

  std::printf("%-18s", "users \\ SNR (dB)");
  for (double snr : {14.0, 17.0, 20.0, 24.0}) std::printf(" %-9.0f", snr);
  std::printf("\n--------------------------------------------------------\n");

  for (std::size_t users = 6; users <= 12; users += 2) {
    std::printf("%-18zu", users);
    for (double snr : {14.0, 17.0, 20.0, 24.0}) {
      std::printf(" %-9.2f", average_active_pes(users, 12, snr, 4));
    }
    std::printf("\n");
  }

  std::printf("\nReading (paper Fig. 10): with few users or high SNR the "
              "channel is well-conditioned\nand a-FlexCore runs with ~1 PE "
              "(SIC-like complexity); at full load / low SNR it\nspends the "
              "whole budget.  Complexity follows the channel, not the worst "
              "case.\n");
  return 0;
}
