// Full coded MIMO-OFDM uplink demo: eight users transmit convolutionally
// coded 64-QAM packets over a frequency-selective synthetic channel to an
// 8-antenna AP; the AP decodes them with a range of detectors and reports
// packet error rate and network throughput — the paper's §5.1 methodology
// end to end.
//
// Every receiver is an api::UplinkPipeline built from a registry spec, so
// adding a detector to the comparison is one string.
#include <cstdio>
#include <vector>

#include "api/uplink_pipeline.h"
#include "channel/trace.h"
#include "sim/montecarlo.h"

using namespace flexcore;

int main() {
  const std::size_t users = 8, antennas = 8;
  const double snr_db = 16.0;
  const std::size_t packets = 8;

  sim::LinkConfig link;
  link.qam_order = 64;
  link.info_bits_per_user = 1152;

  channel::TraceConfig trace;
  trace.nr = antennas;
  trace.nt = users;

  const double noise_var = channel::noise_var_for_snr_db(snr_db);

  std::printf("Uplink: %zu users -> %zu-antenna AP, 64-QAM, rate-1/2 coded, "
              "%.1f dB per-user SNR, %zu packets\n\n",
              users, antennas, snr_db, packets);
  std::printf("%-16s %-8s %-12s %-20s %-14s\n", "detector", "PEs", "avg PER",
              "throughput (Mbit/s)", "tree nodes");

  std::vector<const char*> specs{"mmse",     "zf-sic",      "trellis50",
                                 "kbest-16", "fcsd-L1",     "flexcore-16",
                                 "flexcore-64", "flexcore-128", "ml-sd"};

  for (const char* spec : specs) {
    api::PipelineConfig pcfg;
    pcfg.detector = spec;
    pcfg.qam_order = link.qam_order;
    pcfg.tuning.ml_sphere.max_nodes = 100000;  // cap the ml-sd reference
    api::UplinkPipeline pipe(pcfg);

    const auto r =
        sim::measure_throughput(pipe, link, trace, noise_var, packets, 7);
    std::printf("%-16s %-8zu %-12.3f %-20.1f %llu\n",
                pipe.detector().name().c_str(),
                pipe.detector().parallel_tasks(), r.avg_per,
                r.throughput_mbps,
                static_cast<unsigned long long>(r.stats.nodes_visited));
  }

  std::printf("\nNotes: FlexCore spans arbitrary PE budgets; the FCSD only "
              "exists at 64/4096 paths;\nK-best and the trellis detector "
              "carry fixed parallelism; MMSE collapses at Nt = Nr.\n");
  return 0;
}
