// Full coded MIMO-OFDM uplink demo: eight users transmit convolutionally
// coded 64-QAM packets over a frequency-selective synthetic channel to an
// 8-antenna AP; the AP decodes them with a range of detectors and reports
// packet error rate and network throughput — the paper's §5.1 methodology
// end to end.
#include <cstdio>
#include <memory>
#include <vector>

#include "channel/trace.h"
#include "core/flexcore_detector.h"
#include "detect/fcsd.h"
#include "detect/kbest.h"
#include "detect/linear.h"
#include "detect/ml_sphere.h"
#include "detect/sic.h"
#include "detect/trellis.h"
#include "sim/montecarlo.h"

using namespace flexcore;

int main() {
  const std::size_t users = 8, antennas = 8;
  const double snr_db = 16.0;
  const std::size_t packets = 8;

  sim::LinkConfig link;
  link.qam_order = 64;
  link.info_bits_per_user = 1152;

  channel::TraceConfig trace;
  trace.nr = antennas;
  trace.nt = users;

  const double noise_var = channel::noise_var_for_snr_db(snr_db);
  modulation::Constellation qam(link.qam_order);

  std::printf("Uplink: %zu users -> %zu-antenna AP, 64-QAM, rate-1/2 coded, "
              "%.1f dB per-user SNR, %zu packets\n\n",
              users, antennas, snr_db, packets);
  std::printf("%-16s %-8s %-12s %-20s %-14s\n", "detector", "PEs", "avg PER",
              "throughput (Mbit/s)", "tree nodes");

  std::vector<std::unique_ptr<detect::Detector>> detectors;
  detectors.push_back(
      std::make_unique<detect::LinearDetector>(qam, detect::LinearKind::kMmse));
  detectors.push_back(std::make_unique<detect::SicDetector>(qam));
  detectors.push_back(std::make_unique<detect::TrellisDetector>(qam));
  detectors.push_back(std::make_unique<detect::KBestDetector>(qam, 16));
  detectors.push_back(std::make_unique<detect::FcsdDetector>(qam, 1));
  for (std::size_t pes : {16u, 64u, 128u}) {
    core::FlexCoreConfig cfg;
    cfg.num_pes = pes;
    detectors.push_back(std::make_unique<core::FlexCoreDetector>(qam, cfg));
  }
  detect::MlSphereDecoder::Options mlo;
  mlo.max_nodes = 100000;
  detectors.push_back(std::make_unique<detect::MlSphereDecoder>(qam, mlo));

  for (auto& det : detectors) {
    const auto r =
        sim::measure_throughput(*det, link, trace, noise_var, packets, 7);
    std::printf("%-16s %-8zu %-12.3f %-20.1f %llu\n", det->name().c_str(),
                det->parallel_tasks(), r.avg_per, r.throughput_mbps,
                static_cast<unsigned long long>(r.stats.nodes_visited));
  }

  std::printf("\nNotes: FlexCore spans arbitrary PE budgets; the FCSD only "
              "exists at 64/4096 paths;\nK-best and the trellis detector "
              "carry fixed parallelism; MMSE collapses at Nt = Nr.\n");
  return 0;
}
