// Quickstart: detect a batch of 12x12 64-QAM MIMO vectors with FlexCore
// through the public API.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/quickstart
//
// The flow below is the whole public API surface a basic user needs:
//   1. configure an UplinkPipeline with a registry spec ("flexcore-64",
//      "fcsd-L2", "kbest-8", "mmse", ...),
//   2. install the channel (runs QR + pre-processing),
//   3. hand it batches of received vectors until the channel changes.
// The pipeline owns the constellation and the thread pool, and routes the
// batch through the detector's vector x path task grid.
#include <cstdio>

#include "api/uplink_pipeline.h"
#include "channel/channel.h"

using namespace flexcore;

int main() {
  const std::size_t num_users = 12;   // single-antenna uplink users
  const std::size_t ap_antennas = 12; // receive antennas at the AP

  // FlexCore with 64 processing elements behind the session facade.
  api::PipelineConfig pcfg;
  pcfg.detector = "flexcore-64";
  pcfg.qam_order = 64;
  api::UplinkPipeline pipe(pcfg);
  const modulation::Constellation& qam = pipe.constellation();

  // A random uplink channel realization and a batch of transmissions.
  channel::Rng rng(2017);  // NSDI'17 :-)
  const double noise_var = channel::noise_var_for_snr_db(18.0);
  const linalg::CMat h = channel::rayleigh_iid(ap_antennas, num_users, rng);

  const std::size_t batch_size = 8;  // e.g. OFDM symbols of one subcarrier
  std::vector<std::vector<int>> tx(batch_size, std::vector<int>(num_users));
  std::vector<linalg::CVec> ys;
  linalg::CVec s(num_users);
  for (std::size_t v = 0; v < batch_size; ++v) {
    for (std::size_t u = 0; u < num_users; ++u) {
      tx[v][u] = static_cast<int>(rng.uniform_int(64));
      s[u] = qam.point(tx[v][u]);
    }
    ys.push_back(channel::transmit(h, s, noise_var, rng));
  }

  pipe.set_channel(h, noise_var);              // QR + pre-processing
  const detect::BatchResult batch = pipe.detect(ys);  // task grid over pool

  std::printf("%s over %zu threads: %zu vectors x %zu paths = %zu tasks\n\n",
              pipe.detector().name().c_str(), pipe.pool().size(), ys.size(),
              pipe.detector().parallel_tasks(), batch.tasks);
  std::printf("%-8s %-10s %-10s\n", "vector", "correct", "metric");
  std::size_t correct = 0, total = 0;
  for (std::size_t v = 0; v < batch_size; ++v) {
    std::size_t ok = 0;
    for (std::size_t u = 0; u < num_users; ++u) {
      ok += batch.results[v].symbols[u] == tx[v][u];
    }
    correct += ok;
    total += num_users;
    std::printf("%-8zu %zu/%-8zu %-10.4f\n", v, ok, num_users,
                batch.results[v].metric);
  }
  std::printf("\n%zu / %zu symbols correct; %llu tree nodes walked; "
              "%zu SIC fallbacks\n",
              correct, total,
              static_cast<unsigned long long>(batch.stats.nodes_visited),
              batch.sic_fallbacks);

  // Single-vector detection remains available for latency-critical paths.
  const auto one = pipe.detect_one(ys.front());
  std::printf("single-vector path agrees: %s\n",
              one.symbols == batch.results.front().symbols ? "yes" : "NO");
  return 0;
}
