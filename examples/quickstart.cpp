// Quickstart: detect one 12x12 64-QAM MIMO vector with FlexCore.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The flow below is the whole public API surface a basic user needs:
//   1. pick a constellation,
//   2. configure FlexCore with however many processing elements you have,
//   3. install the channel (runs QR + pre-processing),
//   4. detect received vectors until the channel changes.
#include <cstdio>

#include "channel/channel.h"
#include "core/flexcore_detector.h"

using namespace flexcore;

int main() {
  const std::size_t num_users = 12;   // single-antenna uplink users
  const std::size_t ap_antennas = 12; // receive antennas at the AP
  modulation::Constellation qam(64);

  // A random uplink channel realization and a transmitted symbol vector.
  channel::Rng rng(2017);  // NSDI'17 :-)
  const double noise_var = channel::noise_var_for_snr_db(18.0);
  const linalg::CMat h = channel::rayleigh_iid(ap_antennas, num_users, rng);

  std::vector<int> tx_symbols(num_users);
  linalg::CVec s(num_users);
  for (std::size_t u = 0; u < num_users; ++u) {
    tx_symbols[u] = static_cast<int>(rng.uniform_int(64));
    s[u] = qam.point(tx_symbols[u]);
  }
  const linalg::CVec y = channel::transmit(h, s, noise_var, rng);

  // FlexCore with 64 processing elements.
  core::FlexCoreConfig cfg;
  cfg.num_pes = 64;
  core::FlexCoreDetector detector(qam, cfg);

  detector.set_channel(h, noise_var);    // QR + pre-processing (per channel)
  const auto result = detector.detect(y);  // per received vector

  std::printf("FlexCore (%zu PEs, %zu paths selected, sum Pc = %.4f)\n",
              cfg.num_pes, detector.active_paths(), detector.active_pc_sum());
  std::printf("%-6s %-12s %-12s %-8s\n", "user", "transmitted", "detected",
              "ok?");
  int correct = 0;
  for (std::size_t u = 0; u < num_users; ++u) {
    const bool ok = result.symbols[u] == tx_symbols[u];
    correct += ok;
    std::printf("%-6zu %-12d %-12d %-8s\n", u, tx_symbols[u],
                result.symbols[u], ok ? "yes" : "NO");
  }
  std::printf("\n%d / %zu symbols correct; Euclidean metric %.4f; "
              "%llu tree nodes walked across %llu parallel paths\n",
              correct, num_users, result.metric,
              static_cast<unsigned long long>(result.stats.nodes_visited),
              static_cast<unsigned long long>(result.stats.paths_evaluated));
  return 0;
}
