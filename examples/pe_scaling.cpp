// Sub-subcarrier parallel scaling demo: FlexCore's path-level task grid on
// a thread pool.
//
// BigStation-style systems parallelize at whole-subcarrier granularity; the
// paper's point is that near-ML detection needs parallelism *below* the
// subcarrier.  This example detects the same OFDM-symbol batch three ways —
// sequential, one-task-per-subcarrier, and FlexCore's full vector x path
// grid via detect_batch — and prints wall-clock for each, plus the
// per-vector soft output of the list extension.
#include <chrono>
#include <cstdio>
#include <vector>

#include "api/detector_registry.h"
#include "channel/channel.h"
#include "core/flexcore_detector.h"
#include "parallel/thread_pool.h"

using namespace flexcore;
using Clock = std::chrono::steady_clock;

int main() {
  const std::size_t nt = 12;
  const std::size_t nsc = 2048;  // subcarrier-vectors in flight
  modulation::Constellation qam(64);
  const double nv = channel::noise_var_for_snr_db(18.0);

  channel::Rng rng(99);
  const auto h = channel::rayleigh_iid(nt, nt, rng);

  const auto det = api::make_detector_as<core::FlexCoreDetector>(
      "flexcore-128", {.constellation = &qam});
  det->set_channel(h, nv);

  std::vector<linalg::CVec> ys;
  linalg::CVec s(nt);
  for (std::size_t v = 0; v < nsc; ++v) {
    for (std::size_t u = 0; u < nt; ++u) {
      s[u] = qam.point(static_cast<int>(rng.uniform_int(64)));
    }
    ys.push_back(channel::transmit(h, s, nv, rng));
  }

  std::printf("Batch: %zu vectors, %zu paths each (%zu tasks total), "
              "%zu hardware threads\n\n",
              nsc, det->active_paths(), nsc * det->active_paths(),
              parallel::default_thread_count());

  // 1. Fully sequential.
  auto t0 = Clock::now();
  double checksum = 0.0;
  for (const auto& y : ys) checksum += det->detect(y).metric;
  const double t_seq = std::chrono::duration<double>(Clock::now() - t0).count();
  std::printf("sequential:              %8.1f ms  (checksum %.3f)\n",
              t_seq * 1e3, checksum);

  // 2. Subcarrier-level parallelism (BigStation granularity).
  parallel::ThreadPool pool(parallel::default_thread_count());
  std::vector<double> metrics(nsc);
  t0 = Clock::now();
  pool.parallel_for(nsc, [&](std::size_t v) {
    metrics[v] = det->detect(ys[v]).metric;
  });
  const double t_sc = std::chrono::duration<double>(Clock::now() - t0).count();
  double checksum2 = 0.0;
  for (double m : metrics) checksum2 += m;
  std::printf("per-subcarrier tasks:    %8.1f ms  (checksum %.3f)\n",
              t_sc * 1e3, checksum2);

  // 3. FlexCore's native granularity: the flat vector x path grid, now the
  // detector's own batched entry point.
  det->set_thread_pool(&pool);
  detect::BatchResult batch;
  t0 = Clock::now();
  det->detect_batch(ys, &batch);
  const double t_grid = std::chrono::duration<double>(Clock::now() - t0).count();
  double checksum3 = 0.0;
  for (const auto& r : batch.results) checksum3 += r.metric;
  std::printf("vector x path grid:      %8.1f ms  (checksum %.3f, "
              "grid kernel %.1f ms)\n\n",
              t_grid * 1e3, checksum3, batch.elapsed_seconds * 1e3);

  std::printf("speedup vs sequential: subcarrier %.2fx, path grid %.2fx\n",
              t_seq / t_sc, t_seq / t_grid);
  std::printf("\nWith only %zu cores both parallel variants converge; on a "
              "many-core device the path\ngrid exposes %zux more tasks than "
              "subcarrier-level parallelism — that headroom is\nexactly "
              "FlexCore's contribution.\n",
              parallel::default_thread_count(), det->active_paths());

  // Bonus: the soft-output extension on one vector.
  const auto soft = det->detect_soft(ys.front());
  std::printf("\nSoft output (user 0, 6 bits): ");
  for (double llr : soft.llrs[0]) std::printf("%+.1f ", llr);
  std::printf("\n");
  return 0;
}
