// HotPathScope counters and the operator new/delete interposition.
//
// The replacement operators live in THIS translation unit, inside the
// static library: any binary that pulls in this object (everything using
// ThreadPool does — the pool's lock sites call note_lock() defined here)
// gets the counting allocator.  The replacements route through
// malloc/aligned_alloc and count through note_alloc — a relaxed atomic /
// thread-local bump, unmeasurable next to the allocation itself.  The
// nothrow forms are replaced too: libstdc++'s stable_sort temporary buffer
// allocates through operator new(size, nothrow), and leaving it on the
// default allocator while delete routes to free() is an alloc/dealloc
// family mismatch under ASan.
//
// FLEXCORE_NO_ALLOC_GUARD compiles the interposition out (the scope then
// counts only locks; hot_path_guard_enabled() reports false so tests can
// skip their allocation assertions).

#include "parallel/hot_path_guard.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

namespace flexcore::parallel {

namespace {

/// Per-thread event counts plus the per-thread arming depth.
struct ThreadCounters {
  std::uint64_t allocations = 0;
  std::uint64_t deallocations = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t lock_acquisitions = 0;
  int armed_depth = 0;  ///< live kThread scopes on this thread
};

thread_local ThreadCounters t_counters;

/// Process-wide counters, touched only while a kProcess scope is live (or
/// for the abort diagnostic).  Relaxed: counts are read after the scope's
/// region quiesced, not used for synchronization.
std::atomic<int> g_process_armed{0};
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_deallocations{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_lock_acquisitions{0};

std::atomic<bool> g_abort_on_violation{false};

bool abort_env_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("FLEXCORE_HOT_PATH_ABORT");
    return v != nullptr && v[0] == '1';
  }();
  return enabled;
}

HotPathStats thread_snapshot() noexcept {
  return {t_counters.allocations, t_counters.deallocations,
          t_counters.alloc_bytes, t_counters.lock_acquisitions};
}

HotPathStats process_snapshot() noexcept {
  return {g_allocations.load(std::memory_order_relaxed),
          g_deallocations.load(std::memory_order_relaxed),
          g_alloc_bytes.load(std::memory_order_relaxed),
          g_lock_acquisitions.load(std::memory_order_relaxed)};
}

}  // namespace

bool hot_path_guard_enabled() noexcept {
#ifdef FLEXCORE_NO_ALLOC_GUARD
  return false;
#else
  return true;
#endif
}

namespace guard_detail {

void note_alloc(std::size_t bytes) noexcept {
  const bool thread_armed = t_counters.armed_depth > 0;
  const bool process_armed =
      g_process_armed.load(std::memory_order_relaxed) > 0;
  if (!thread_armed && !process_armed) return;
  if (thread_armed) {
    ++t_counters.allocations;
    t_counters.alloc_bytes += bytes;
  }
  if (process_armed) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  if (g_abort_on_violation.load(std::memory_order_relaxed) ||
      abort_env_enabled()) {
    std::fprintf(stderr,
                 "flexcore hot-path guard: heap allocation of %zu bytes "
                 "inside an armed HotPathScope\n",
                 bytes);
    std::abort();
  }
}

void note_dealloc() noexcept {
  if (t_counters.armed_depth > 0) ++t_counters.deallocations;
  if (g_process_armed.load(std::memory_order_relaxed) > 0) {
    g_deallocations.fetch_add(1, std::memory_order_relaxed);
  }
}

void note_lock() noexcept {
  if (t_counters.armed_depth > 0) ++t_counters.lock_acquisitions;
  if (g_process_armed.load(std::memory_order_relaxed) > 0) {
    g_lock_acquisitions.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace guard_detail

HotPathScope::HotPathScope(const char* label, Scope scope) noexcept
    : label_(label), scope_(scope) {
  if (scope_ == Scope::kThread) {
    ++t_counters.armed_depth;
    start_ = thread_snapshot();
  } else {
    g_process_armed.fetch_add(1, std::memory_order_relaxed);
    start_ = process_snapshot();
  }
}

HotPathScope::~HotPathScope() {
  if (scope_ == Scope::kThread) {
    --t_counters.armed_depth;
  } else {
    g_process_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

HotPathStats HotPathScope::delta() const noexcept {
  const HotPathStats now =
      scope_ == Scope::kThread ? thread_snapshot() : process_snapshot();
  return {now.allocations - start_.allocations,
          now.deallocations - start_.deallocations,
          now.alloc_bytes - start_.alloc_bytes,
          now.lock_acquisitions - start_.lock_acquisitions};
}

bool HotPathScope::armed_on_this_thread() noexcept {
  return t_counters.armed_depth > 0 ||
         g_process_armed.load(std::memory_order_relaxed) > 0;
}

void HotPathScope::set_abort_on_violation(bool on) noexcept {
  g_abort_on_violation.store(on, std::memory_order_relaxed);
}

}  // namespace flexcore::parallel

// ------------------------------------------------- allocator interposition

#ifndef FLEXCORE_NO_ALLOC_GUARD

namespace {
namespace fpg = flexcore::parallel::guard_detail;
}  // namespace

void* operator new(std::size_t sz) {
  fpg::note_alloc(sz);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void* operator new(std::size_t sz, std::align_val_t al) {
  fpg::note_alloc(sz);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (sz + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz, std::align_val_t al) {
  return ::operator new(sz, al);
}
void* operator new(std::size_t sz, const std::nothrow_t&) noexcept {
  fpg::note_alloc(sz);
  return std::malloc(sz ? sz : 1);
}
void* operator new[](std::size_t sz, const std::nothrow_t& t) noexcept {
  return ::operator new(sz, t);
}
void* operator new(std::size_t sz, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  fpg::note_alloc(sz);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (sz + a - 1) / a * a;
  return std::aligned_alloc(a, rounded ? rounded : a);
}
void* operator new[](std::size_t sz, std::align_val_t al,
                     const std::nothrow_t& t) noexcept {
  return ::operator new(sz, al, t);
}

void operator delete(void* p) noexcept {
  fpg::note_dealloc();
  std::free(p);
}
void operator delete[](void* p) noexcept {
  fpg::note_dealloc();
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept {
  ::operator delete[](p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  fpg::note_dealloc();
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  fpg::note_dealloc();
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  fpg::note_dealloc();
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  fpg::note_dealloc();
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  fpg::note_dealloc();
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  fpg::note_dealloc();
  std::free(p);
}

#endif  // FLEXCORE_NO_ALLOC_GUARD
