// Hot-path annotation macros — the static half of the hot-path contract.
//
// FlexCore's line-rate claim rests on datapath invariants (no allocation,
// no locks, no std::function, integer-only i16 kernels, SoA layout) that
// used to live in comments and one operator-new-counting test.  These
// macros turn them into machine-checked rules: `tools/lint/flexcore_lint`
// scans the tree, treats every annotated region as a hot region, and
// enforces the rule catalog (HP001..HP005 — see tools/lint/README.md and
// the README "Correctness tooling" section).
//
// Usage:
//   * FLEXCORE_HOT_PATH — placed on its own line immediately before a
//     function definition; the function's body becomes a hot region.  The
//     macro expands to nothing: annotations cost nothing at runtime and
//     never change codegen.
//   * FLEXCORE_HOT_PATH_FILE; — placed once at namespace scope near the
//     top of a file; the WHOLE file becomes a hot region.  Reserve it for
//     files that are kernel code end-to-end.
//   * Violations that are deliberate (e.g. a resize() that reuses warm
//     capacity by design) are suppressed line-by-line with a justification:
//       buf.resize(n);  // flexcore-lint: allow(HP001) warm capacity reuse
//     A bare suppression without a rule id is invalid; the lint pass
//     reports it.
//
// The dynamic half of the contract is parallel/hot_path_guard.h: a
// HotPathScope armed around a steady-state region asserts at runtime that
// the annotated code really did allocate nothing and took no locks.
#pragma once

/// Marks the NEXT function definition as a hot region for flexcore_lint.
/// Expands to nothing — purely a static-analysis annotation.
#define FLEXCORE_HOT_PATH

/// Marks the whole file as a hot region for flexcore_lint.  Invoke once at
/// namespace scope: `FLEXCORE_HOT_PATH_FILE;`.
#define FLEXCORE_HOT_PATH_FILE \
  static_assert(true, "flexcore hot-path file marker")
