// Runtime hot-path guard — the dynamic half of the hot-path contract.
//
// parallel/hot_path.h annotates hot regions for the static lint pass; this
// header verifies the same invariants at runtime: a HotPathScope armed
// around a steady-state region counts every heap allocation and every
// instrumented lock acquisition that happens while it is live, so tests
// can assert the region really is allocation-free and (per task) lock-free
// instead of trusting the annotation.
//
//   parallel::HotPathScope guard("detect_frame steady state");
//   pipe.detect_frame(job, &result);            // warm buffers, reused
//   const auto d = guard.delta();
//   EXPECT_EQ(d.allocations, 0u);
//   EXPECT_EQ(d.lock_acquisitions, 0u);
//
// Two scopes:
//   * Scope::kThread (default) — counts only this thread's events.  Use it
//     with single-threaded pools / run_one() poll mode, where the whole
//     hot path executes on the calling thread.
//   * Scope::kProcess — counts events on EVERY thread while the scope is
//     live.  Use it when workers/dispatchers do the hot work.  The caller
//     owns quiescing unrelated threads (test binaries do).
//
// Allocation events come from operator new/delete interposition compiled
// into the library (parallel/hot_path_guard.cpp) in every build type —
// a relaxed-atomic counter bump per allocation, unmeasurable next to the
// allocation itself.  Builds can opt out with -DFLEXCORE_NO_ALLOC_GUARD
// (hot_path_guard_enabled() then reports false and tests skip their
// allocation assertions).  Lock events come from the explicit
// guard_detail::note_lock() calls at every ThreadPool / Runtime /
// ShardedRuntime lock-acquisition site and from the GuardedMutex wrapper.
//
// The counters answer "how many", not "is it contended": the invariant the
// repo enforces is that lock acquisitions on the dispatch path are O(1)
// per frame (submission/wakeup control plane) and exactly ZERO per path
// task — kernels and grid bodies never touch a mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

#include "parallel/hot_path.h"

namespace flexcore::parallel {

/// Event counts observed by a HotPathScope (see delta()).
struct HotPathStats {
  std::uint64_t allocations = 0;       ///< operator new calls
  std::uint64_t deallocations = 0;     ///< operator delete calls
  std::uint64_t alloc_bytes = 0;       ///< bytes requested from operator new
  std::uint64_t lock_acquisitions = 0; ///< instrumented mutex acquisitions
};

/// True when the allocator interposition is compiled into this binary
/// (i.e. the library was built without FLEXCORE_NO_ALLOC_GUARD).  Lock
/// counting is always available.
bool hot_path_guard_enabled() noexcept;

namespace guard_detail {
// Hooks called by the interposed allocator and the instrumented lock
// sites.  Cheap when no scope is armed: one thread-local flag test and one
// relaxed atomic load.
void note_alloc(std::size_t bytes) noexcept;
void note_dealloc() noexcept;
void note_lock() noexcept;
}  // namespace guard_detail

/// RAII region over which hot-path events are counted.  Scopes may nest;
/// each sees every event inside its own lifetime.  Construction and
/// destruction themselves allocate nothing.
class HotPathScope {
 public:
  enum class Scope {
    kThread,   ///< count this thread's events only
    kProcess,  ///< count every thread's events while live
  };

  explicit HotPathScope(const char* label = "",
                        Scope scope = Scope::kThread) noexcept;
  ~HotPathScope();

  HotPathScope(const HotPathScope&) = delete;
  HotPathScope& operator=(const HotPathScope&) = delete;

  /// Events observed since this scope was constructed.
  HotPathStats delta() const noexcept;

  const char* label() const noexcept { return label_; }
  Scope scope() const noexcept { return scope_; }

  /// True when the CALLING thread is inside any kThread scope (or any
  /// kProcess scope is live anywhere).
  static bool armed_on_this_thread() noexcept;

  /// Debug escape hatch: when set (or the FLEXCORE_HOT_PATH_ABORT=1
  /// environment variable is present at first use), an allocation observed
  /// while any scope is armed aborts with a diagnostic instead of merely
  /// counting — turning a violated invariant into a stack trace at the
  /// offending call site.  Off by default; tests assert via delta().
  static void set_abort_on_violation(bool on) noexcept;

 private:
  const char* label_;
  Scope scope_;
  HotPathStats start_;
};

/// A std::mutex wrapper whose acquisitions are visible to HotPathScope.
/// Meets Lockable, so it drops into std::lock_guard / std::unique_lock /
/// std::condition_variable_any unchanged.  Prefer it for NEW control-plane
/// state; existing std::mutex sites instead call
/// guard_detail::note_lock() right after acquiring (the
/// condition_variable-heavy loops keep their plain std::mutex waits).
class GuardedMutex {
 public:
  void lock() {
    mu_.lock();
    guard_detail::note_lock();
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    guard_detail::note_lock();
    return true;
  }
  void unlock() { mu_.unlock(); }

  /// The wrapped mutex, for condition_variable wait sites that need the
  /// raw type (note_lock() manually after re-acquisition where it
  /// matters).
  std::mutex& inner() noexcept { return mu_; }

 private:
  std::mutex mu_;
};

}  // namespace flexcore::parallel
