// Minimal blocking thread pool used to emulate pools of processing elements.
//
// FlexCore's detection is "nearly embarrassingly parallel": each selected
// sphere-decoder path is an independent task.  On GPUs/FPGAs the paper maps
// one path to one processing element; on this CPU reproduction a ThreadPool
// plays the role of the PE pool, and the benchmarks measure how wall-clock
// scales with the number of paths exactly as the paper's Fig. 11 does.
//
// The pool intentionally supports only the fork-join `parallel_for` pattern
// (no futures, no nesting): that is the paper's computation shape, and the
// simple shape keeps the scheduler overhead negligible next to the
// Euclidean-distance math.  Dispatch is a raw function pointer + context
// invoked once per CHUNK of iterations — no std::function is constructed or
// copied anywhere on the hot path, so even tiny per-index bodies stay cheap.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace flexcore::parallel {

/// Number of worker threads to use by default (>= 1).
std::size_t default_thread_count();

/// Fixed-size fork-join thread pool.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (including the caller as a participant:
  /// with num_threads == 1 no extra thread is spawned and parallel_for runs
  /// inline, which makes single-threaded baselines exact).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return num_threads_; }

  /// Raw job shape: process iterations [begin, end) on behalf of `worker`.
  /// `worker` is a stable index in [0, size()); the calling thread always
  /// participates as worker 0, spawned threads are 1..size()-1.
  using RawJob = void (*)(void* ctx, std::size_t worker, std::size_t begin,
                          std::size_t end);

  /// Core dispatch: chunks [0, n) dynamically across the workers and blocks
  /// until every iteration finished.  One indirect call per chunk.  Must not
  /// be called re-entrantly from inside a job.  A chunk of 0 picks a
  /// heuristic (~8 chunks per worker); with one thread the whole range is
  /// delivered as a single chunk to worker 0.
  void run_job(RawJob job, void* ctx, std::size_t n, std::size_t chunk);

  /// Runs fn(i) for every i in [0, n); blocks until all iterations finish.
  template <typename F>
  void parallel_for(std::size_t n, F&& fn, std::size_t chunk = 0) {
    using Fn = std::remove_reference_t<F>;
    run_job(
        [](void* ctx, std::size_t, std::size_t begin, std::size_t end) {
          Fn& f = *static_cast<Fn*>(ctx);
          for (std::size_t i = begin; i < end; ++i) f(i);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))), n,
        chunk);
  }

  /// Runs fn(worker, i) for every i in [0, n).  The worker index lets tasks
  /// address per-worker scratch (e.g. detect::WorkspaceBank) without
  /// synchronization: no two concurrent iterations share a worker index.
  template <typename F>
  void parallel_for_worker(std::size_t n, F&& fn, std::size_t chunk = 0) {
    using Fn = std::remove_reference_t<F>;
    run_job(
        [](void* ctx, std::size_t worker, std::size_t begin, std::size_t end) {
          Fn& f = *static_cast<Fn*>(ctx);
          for (std::size_t i = begin; i < end; ++i) f(worker, i);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))), n,
        chunk);
  }

  /// Runs fn(worker, begin, end) once per chunk — the cheapest shape for
  /// tiny per-index bodies (one call amortized over the whole chunk).
  /// Chunks may be coalesced (a single-thread pool delivers one chunk).
  template <typename F>
  void parallel_for_chunks(std::size_t n, F&& fn, std::size_t chunk = 0) {
    using Fn = std::remove_reference_t<F>;
    run_job(
        [](void* ctx, std::size_t worker, std::size_t begin, std::size_t end) {
          (*static_cast<Fn*>(ctx))(worker, begin, end);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))), n,
        chunk);
  }

 private:
  void worker_loop(std::size_t worker);
  void run_chunks(std::size_t worker);

  std::size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;

  // Current job.
  RawJob job_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t n_ = 0;
  std::size_t chunk_ = 1;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> completed_{0};
  // Workers currently inside run_chunks.  run_job drains this to zero
  // before mutating job state, so a worker that raced past the completion
  // check can never observe a half-written next job.
  std::atomic<int> active_{0};
};

}  // namespace flexcore::parallel
