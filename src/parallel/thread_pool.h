// Blocking thread pool used to emulate pools of processing elements.
//
// FlexCore's detection is "nearly embarrassingly parallel": each selected
// sphere-decoder path is an independent task.  On GPUs/FPGAs the paper maps
// one path to one processing element; on this CPU reproduction a ThreadPool
// plays the role of the PE pool, and the benchmarks measure how wall-clock
// scales with the number of paths exactly as the paper's Fig. 11 does.
//
// The pool supports the fork-join `parallel_for` pattern, and — new for the
// multi-cell runtime — MULTIPLE INDEPENDENT task grids in flight at once:
// each run_job call carries its own job-scoped claim/completion counters
// (no global barrier), so several external threads (e.g. api::Runtime
// dispatchers decoding different cells' frames) can each submit a grid and
// the workers interleave chunks from all of them.  Each submitter blocks
// only on ITS job's completion.  Dispatch is a raw function pointer +
// context invoked once per CHUNK of iterations — no std::function is
// constructed or copied anywhere on the hot path, and a steady-state
// run_job performs no heap allocation (job state lives on the submitter's
// stack; the active-job list reuses its capacity).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace flexcore::parallel {

/// Number of worker threads to use by default (>= 1).
std::size_t default_thread_count();

/// Pins the CALLING thread to one CPU.  Returns false when the platform
/// has no affinity API or the kernel rejected the cpu id (out of range,
/// not in the allowed set); the thread keeps its previous affinity either
/// way — pinning is strictly best-effort.
bool pin_current_thread(int cpu);

/// Construction options for ThreadPool.  The plain size_t constructor is
/// the common case; this struct adds the optional worker CPU-affinity
/// pinning the sharded runtime uses to keep each shard's pool on its own
/// cores (off by default: `pin_cpus` empty means no pinning anywhere).
struct PoolOptions {
  std::size_t threads = 0;  ///< 0 = default_thread_count()
  /// CPU ids to pin SPAWNED workers to, round-robin: spawned worker w
  /// (w in 1..threads-1, i.e. everyone but the submitting caller — the
  /// pool never touches the caller's affinity) is pinned to
  /// pin_cpus[w % pin_cpus.size()].  Invalid ids are ignored per worker
  /// (best-effort); see ThreadPool::pinned_workers for how many stuck.
  std::vector<int> pin_cpus;
};

/// Fixed-size thread pool supporting concurrent fork-join jobs.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (including the caller as a participant:
  /// with num_threads == 1 no extra thread is spawned and parallel_for runs
  /// inline, which makes single-threaded baselines exact).
  explicit ThreadPool(std::size_t num_threads);
  /// As above, plus optional worker CPU pinning (PoolOptions::pin_cpus).
  explicit ThreadPool(const PoolOptions& options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return num_threads_; }

  /// Number of spawned workers whose affinity pin took effect (0 when
  /// PoolOptions::pin_cpus was empty or the platform has no affinity API;
  /// at most size() - 1, since the caller is never pinned).  Settled
  /// before the constructor returns.
  std::size_t pinned_workers() const noexcept { return pinned_workers_; }

  /// Raw job shape: process iterations [begin, end) on behalf of `worker`.
  /// `worker` is a stable index in [0, size()); a submitting thread always
  /// participates in its own job as worker 0, spawned threads are
  /// 1..size()-1.  Within ONE job no two concurrent chunks share a worker
  /// index; chunks of DIFFERENT concurrent jobs may (two submitters are
  /// each worker 0 of their own job), so per-worker scratch must not be
  /// shared across jobs that can overlap.
  using RawJob = void (*)(void* ctx, std::size_t worker, std::size_t begin,
                          std::size_t end);

  /// Core dispatch: chunks [0, n) dynamically across the workers and blocks
  /// until every iteration of THIS job finished.  One indirect call per
  /// chunk.  May be called from multiple threads concurrently — each call
  /// is an independent job and only waits for itself.  Must not be called
  /// re-entrantly from inside a job body.  A chunk of 0 picks a heuristic
  /// (~8 chunks per worker); with one thread the whole range runs inline as
  /// a single chunk on worker 0.
  void run_job(RawJob job, void* ctx, std::size_t n, std::size_t chunk);

  /// Runs fn(i) for every i in [0, n); blocks until all iterations finish.
  template <typename F>
  void parallel_for(std::size_t n, F&& fn, std::size_t chunk = 0) {
    using Fn = std::remove_reference_t<F>;
    run_job(
        [](void* ctx, std::size_t, std::size_t begin, std::size_t end) {
          Fn& f = *static_cast<Fn*>(ctx);
          for (std::size_t i = begin; i < end; ++i) f(i);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))), n,
        chunk);
  }

  /// Runs fn(worker, i) for every i in [0, n).  The worker index lets tasks
  /// address per-worker scratch (e.g. detect::WorkspaceBank) without
  /// synchronization: no two concurrent iterations of the SAME job share a
  /// worker index (see RawJob for the cross-job caveat).
  template <typename F>
  void parallel_for_worker(std::size_t n, F&& fn, std::size_t chunk = 0) {
    using Fn = std::remove_reference_t<F>;
    run_job(
        [](void* ctx, std::size_t worker, std::size_t begin, std::size_t end) {
          Fn& f = *static_cast<Fn*>(ctx);
          for (std::size_t i = begin; i < end; ++i) f(worker, i);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))), n,
        chunk);
  }

  /// Runs fn(worker, begin, end) once per chunk — the cheapest shape for
  /// tiny per-index bodies (one call amortized over the whole chunk).
  /// Chunks may be coalesced (a single-thread pool delivers one chunk).
  template <typename F>
  void parallel_for_chunks(std::size_t n, F&& fn, std::size_t chunk = 0) {
    using Fn = std::remove_reference_t<F>;
    run_job(
        [](void* ctx, std::size_t worker, std::size_t begin, std::size_t end) {
          (*static_cast<Fn*>(ctx))(worker, begin, end);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))), n,
        chunk);
  }

 private:
  /// One in-flight job.  Lives on the submitting thread's stack for the
  /// duration of its run_job call; the submitter only returns (and the
  /// frame unwinds) once `completed == n` and no worker is inside
  /// run_chunks for it (`workers == 0`), so the raw pointers in `active_`
  /// never dangle.
  struct JobState {
    JobState(RawJob f, void* c, std::size_t total, std::size_t chunk_size)
        : fn(f), ctx(c), n(total), chunk(chunk_size) {}
    RawJob fn;
    void* ctx;
    std::size_t n;
    std::size_t chunk;
    std::atomic<std::size_t> next{0};       ///< next unclaimed iteration
    std::atomic<std::size_t> completed{0};  ///< iterations finished
    int workers = 0;  ///< threads inside run_chunks (guarded by mu_)
  };

  void worker_loop(std::size_t worker);
  void run_chunks(JobState& job, std::size_t worker);

  std::size_t num_threads_;
  std::size_t pinned_workers_ = 0;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for jobs
  std::condition_variable done_cv_;  ///< submitters wait for completion
  bool shutdown_ = false;
  /// Jobs that may still have unclaimed chunks, in submission order.
  /// Exhausted entries are pruned by whoever scans the list.
  std::vector<JobState*> active_;
};

}  // namespace flexcore::parallel
