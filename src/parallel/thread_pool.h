// Minimal blocking thread pool used to emulate pools of processing elements.
//
// FlexCore's detection is "nearly embarrassingly parallel": each selected
// sphere-decoder path is an independent task.  On GPUs/FPGAs the paper maps
// one path to one processing element; on this CPU reproduction a ThreadPool
// plays the role of the PE pool, and the benchmarks measure how wall-clock
// scales with the number of paths exactly as the paper's Fig. 11 does.
//
// The pool intentionally supports only the fork-join `parallel_for` pattern
// (no futures, no nesting): that is the paper's computation shape, and the
// simple shape keeps the scheduler overhead negligible next to the
// Euclidean-distance math.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flexcore::parallel {

/// Number of worker threads to use by default (>= 1).
std::size_t default_thread_count();

/// Fixed-size fork-join thread pool.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (including the caller as a participant:
  /// with num_threads == 1 no extra thread is spawned and parallel_for runs
  /// inline, which makes single-threaded baselines exact).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return num_threads_; }

  /// Runs fn(i) for every i in [0, n), distributing work dynamically in
  /// chunks; blocks until all iterations finish.  Must not be called
  /// re-entrantly from inside fn.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t chunk = 0);

 private:
  void worker_loop();
  void run_chunks();

  std::size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;

  // Current job.
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::size_t chunk_ = 1;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> completed_{0};
  // Workers currently inside run_chunks.  parallel_for drains this to zero
  // before mutating job state, so a worker that raced past the completion
  // check can never observe a half-written next job.
  std::atomic<int> active_{0};
};

}  // namespace flexcore::parallel
