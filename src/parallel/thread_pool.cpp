#include "parallel/thread_pool.h"

#include <algorithm>

#include "parallel/hot_path.h"
#include "parallel/hot_path_guard.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace flexcore::parallel {

namespace {

/// Best-effort affinity pin of one native thread handle; false when the
/// platform has no API or the kernel rejects the cpu id.
bool pin_native_thread(std::thread::native_handle_type handle, int cpu) {
#ifdef __linux__
  if (cpu < 0 || static_cast<unsigned>(cpu) >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(handle, sizeof set, &set) == 0;
#else
  (void)handle;
  (void)cpu;
  return false;
#endif
}

}  // namespace

std::size_t default_thread_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

bool pin_current_thread(int cpu) {
#ifdef __linux__
  return pin_native_thread(pthread_self(), cpu);
#else
  (void)cpu;
  return false;
#endif
}

ThreadPool::ThreadPool(std::size_t num_threads)
    : ThreadPool(PoolOptions{num_threads, {}}) {}

ThreadPool::ThreadPool(const PoolOptions& options)
    : num_threads_(std::max<std::size_t>(
          1, options.threads > 0 ? options.threads : default_thread_count())) {
  active_.reserve(16);  // steady-state run_job must not allocate
  workers_.reserve(num_threads_ - 1);
  for (std::size_t i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
    if (!options.pin_cpus.empty()) {
      // Pin from here with the spawned thread's handle: synchronous (the
      // count is final when the constructor returns) and never touching
      // the CALLER's affinity — the submitting thread stays wherever the
      // application put it.
      const int cpu = options.pin_cpus[i % options.pin_cpus.size()];
      pinned_workers_ += pin_native_thread(workers_.back().native_handle(), cpu);
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    guard_detail::note_lock();
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

FLEXCORE_HOT_PATH
void ThreadPool::run_chunks(JobState& job, std::size_t worker) {
  for (;;) {
    const std::size_t begin =
        job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.n) return;
    const std::size_t end = std::min(begin + job.chunk, job.n);
    job.fn(job.ctx, worker, begin, end);
    // acq_rel: the submitter's acquire load of `completed` must see every
    // side effect of the chunk bodies.
    job.completed.fetch_add(end - begin, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::unique_lock lock(mu_);
  guard_detail::note_lock();
  for (;;) {
    // Scan the active list: prune fully-claimed jobs, grab the first one
    // with unclaimed chunks.  Several jobs can be live at once; workers
    // drain them in submission order, submitters each wait on their own.
    JobState* job = nullptr;
    for (auto it = active_.begin(); it != active_.end();) {
      if ((*it)->next.load(std::memory_order_relaxed) >= (*it)->n) {
        it = active_.erase(it);
      } else {
        job = *it;
        break;
      }
    }
    if (job == nullptr) {
      if (shutdown_) return;
      work_cv_.wait(lock);
      guard_detail::note_lock();  // cv wait re-acquired mu_
      continue;
    }

    ++job->workers;  // pins the submitter's stack frame (see JobState)
    lock.unlock();
    run_chunks(*job, worker);
    lock.lock();
    guard_detail::note_lock();
    --job->workers;
    if (job->workers == 0 &&
        job->completed.load(std::memory_order_acquire) >= job->n) {
      done_cv_.notify_all();  // all submitters re-check their own job
    }
  }
}

FLEXCORE_HOT_PATH
void ThreadPool::run_job(RawJob job, void* ctx, std::size_t n,
                         std::size_t chunk) {
  if (n == 0) return;
  if (chunk == 0) {
    // Aim for ~8 chunks per thread to balance load vs scheduling overhead.
    chunk = std::max<std::size_t>(1, n / (num_threads_ * 8));
  }
  if (num_threads_ == 1) {
    // Inline short-circuit: a single-threaded pool runs the job on the
    // calling thread with ZERO lock traffic — the invariant the
    // hot_path_guard tests pin down.
    job(ctx, 0, 0, n);
    return;
  }

  JobState state(job, ctx, n, chunk);
  {
    std::lock_guard lock(mu_);
    guard_detail::note_lock();
    // flexcore-lint: allow-next-line(HP001) capacity reserved in constructor
    active_.push_back(&state);
  }
  work_cv_.notify_all();
  run_chunks(state, /*worker=*/0);  // caller participates in its own job

  std::unique_lock lock(mu_);
  guard_detail::note_lock();
  // `workers == 0` (not just completion) before unwinding: a worker that
  // claimed nothing may still be inside run_chunks touching the counters.
  done_cv_.wait(lock, [&] {
    return state.workers == 0 &&
           state.completed.load(std::memory_order_acquire) >= state.n;
  });
  active_.erase(std::remove(active_.begin(), active_.end(), &state),
                active_.end());
}

}  // namespace flexcore::parallel
