#include "parallel/thread_pool.h"

#include <algorithm>

namespace flexcore::parallel {

std::size_t default_thread_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t num_threads)
    : num_threads_(std::max<std::size_t>(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (std::size_t i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_chunks(std::size_t worker) {
  // Caller-side variant: the job fields are owned by this thread.
  for (;;) {
    const std::size_t begin = next_.fetch_add(chunk_, std::memory_order_relaxed);
    if (begin >= n_) break;
    const std::size_t end = std::min(begin + chunk_, n_);
    job_(ctx_, worker, begin, end);
    completed_.fetch_add(end - begin, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    // Snapshot the job under the mutex: run_job writes job fields under the
    // same mutex and never reuses them until active_ drains, so the
    // snapshot is always coherent.
    RawJob job;
    void* ctx;
    std::size_t n, chunk;
    {
      std::unique_lock lock(mu_);
      start_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
      ctx = ctx_;
      n = n_;
      chunk = chunk_;
      active_.fetch_add(1, std::memory_order_acq_rel);
    }

    for (;;) {
      const std::size_t begin = next_.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(begin + chunk, n);
      job(ctx, worker, begin, end);
      completed_.fetch_add(end - begin, std::memory_order_acq_rel);
    }

    active_.fetch_sub(1, std::memory_order_acq_rel);
    if (completed_.load(std::memory_order_acquire) >= n) {
      done_cv_.notify_one();
    }
  }
}

void ThreadPool::run_job(RawJob job, void* ctx, std::size_t n,
                         std::size_t chunk) {
  if (n == 0) return;
  if (chunk == 0) {
    // Aim for ~8 chunks per thread to balance load vs scheduling overhead.
    chunk = std::max<std::size_t>(1, n / (num_threads_ * 8));
  }
  if (num_threads_ == 1) {
    job(ctx, 0, 0, n);
    return;
  }
  // Drain stragglers from the previous job before mutating job state (a
  // worker holds active_ while it may still read next_/completed_).
  while (active_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  {
    std::lock_guard lock(mu_);
    job_ = job;
    ctx_ = ctx;
    n_ = n;
    chunk_ = chunk;
    next_.store(0, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunks(/*worker=*/0);  // caller participates
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [&] {
    return completed_.load(std::memory_order_acquire) >= n_;
  });
  job_ = nullptr;
  ctx_ = nullptr;
}

}  // namespace flexcore::parallel
