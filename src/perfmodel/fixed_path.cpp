#include "perfmodel/fixed_path.h"

#include <limits>

namespace flexcore::perfmodel {

namespace {
using FC = FixedComplex<16, 11>;
using F = Fixed<16, 11>;
}  // namespace

FixedPathEval fixed_path_walk(const modulation::Constellation& c,
                              const core::OrderingLut& lut,
                              const linalg::CMat& r,
                              const core::PositionVector& p,
                              core::InvalidEntryPolicy policy,
                              const linalg::CVec& ybar) {
  const std::size_t nt = r.cols();

  // Quantize the channel factors (a per-channel cost in hardware; done here
  // per call for simplicity — the quantization, not the caching, is what
  // the verification targets).
  std::vector<std::vector<FC>> rq(nt, std::vector<FC>(nt));
  std::vector<FC> rinv(nt);
  for (std::size_t i = 0; i < nt; ++i) {
    for (std::size_t j = i; j < nt; ++j) rq[i][j] = FC::from_cplx(r(i, j));
    rinv[i] = FC::from_cplx(linalg::cplx{1.0, 0.0} / r(i, i));
  }

  FixedPathEval ev;
  ev.symbols.assign(nt, 0);
  std::vector<FC> s(nt);
  F metric = F::from_double(0.0);

  for (std::size_t ii = 0; ii < nt; ++ii) {
    const std::size_t i = nt - 1 - ii;
    FC b = FC::from_cplx(ybar[i]);
    for (std::size_t j = i + 1; j < nt; ++j) b = b - rq[i][j] * s[j];
    const FC eff = b * rinv[i];
    const int x = lut.kth_symbol(eff.to_cplx(), p[i], policy);
    if (x < 0) return ev;
    ev.symbols[i] = x;
    s[i] = FC::from_cplx(c.point(x));
    const FC diff = b - rq[i][i] * s[i];
    metric = metric + diff.abs2();
  }
  ev.valid = true;
  ev.metric = metric.to_double();
  return ev;
}

double fixed_vs_double_agreement(const core::FlexCoreDetector& det,
                                 const std::vector<linalg::CVec>& ys) {
  if (ys.empty()) return 1.0;
  std::size_t same = 0;
  for (const auto& y : ys) {
    const auto dbl = det.detect(y);
    const linalg::CVec ybar = det.rotate(y);

    double best = std::numeric_limits<double>::infinity();
    std::vector<int> best_sym;
    for (std::size_t pidx = 0; pidx < det.active_paths(); ++pidx) {
      const auto ev = fixed_path_walk(
          det.constellation(), det.lut(), det.qr().R,
          det.preprocessing().paths[pidx].p, det.config().invalid_policy, ybar);
      if (ev.valid && ev.metric < best) {
        best = ev.metric;
        best_sym = ev.symbols;
      }
    }
    if (!best_sym.empty()) {
      const auto orig = linalg::unpermute(best_sym, det.qr().perm);
      same += (orig == dbl.symbols);
    }
  }
  return static_cast<double>(same) / static_cast<double>(ys.size());
}

}  // namespace flexcore::perfmodel
