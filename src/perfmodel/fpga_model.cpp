#include "perfmodel/fpga_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace flexcore::perfmodel {

PeResource paper_pe_resource(EngineKind kind, std::size_t nt) {
  // Table 3 (XCVU440-flga2892-3-e, 64-QAM, 16-bit fixed point, minimum
  // pipeline level).
  if (kind == EngineKind::kFlexCore && nt == 8) {
    return {kind, nt, 3206, 15276, 1187, 5363, 16, 312.5, 6.82};
  }
  if (kind == EngineKind::kFcsd && nt == 8) {
    return {kind, nt, 2187, 11320, 713, 4717, 16, 370.4, 6.54};
  }
  if (kind == EngineKind::kFlexCore && nt == 12) {
    return {kind, nt, 5795, 28810, 2497, 11415, 24, 312.5, 9.157};
  }
  if (kind == EngineKind::kFcsd && nt == 12) {
    return {kind, nt, 4364, 23252, 1537, 10501, 24, 370.4, 9.04};
  }
  throw std::invalid_argument("paper_pe_resource: unsupported (kind, nt)");
}

double area_delay_product(const PeResource& pe) {
  // Logic LUTs / fmax reproduces the paper's quoted overheads (73.7% at
  // Nt = 8, 57.8% at Nt = 12); memory LUTs are excluded from its metric.
  return static_cast<double>(pe.logic_luts) / pe.fmax_mhz;
}

std::size_t max_instantiable_pes(const PeResource& pe, const DeviceCaps& caps) {
  const double lut_budget = caps.max_utilization * caps.luts;
  const double dsp_budget = caps.max_utilization * caps.dsp48;
  const std::size_t by_lut = static_cast<std::size_t>(
      lut_budget / static_cast<double>(pe.logic_luts + pe.mem_luts));
  const std::size_t by_dsp =
      static_cast<std::size_t>(dsp_budget / static_cast<double>(pe.dsp48));
  return std::max<std::size_t>(1, std::min(by_lut, by_dsp));
}

double processing_throughput_bps(std::size_t nt, int qam_order,
                                 double clock_mhz, std::size_t paths,
                                 std::size_t m) {
  if (m == 0 || paths == 0) return 0.0;
  const double bits_per_vector =
      std::log2(static_cast<double>(qam_order)) * static_cast<double>(nt);
  const double cycles_per_vector =
      std::ceil(static_cast<double>(paths) / static_cast<double>(m));
  return bits_per_vector * clock_mhz * 1e6 / cycles_per_vector;
}

double energy_per_bit(const PeResource& pe, double clock_mhz, int qam_order,
                      std::size_t paths, std::size_t m) {
  const double tput =
      processing_throughput_bps(pe.nt, qam_order, clock_mhz, paths, m);
  if (tput <= 0.0) return std::numeric_limits<double>::infinity();
  const double power = pe.power_w * static_cast<double>(m);
  return power / tput;
}

std::string to_string(EngineKind k) {
  return k == EngineKind::kFlexCore ? "FlexCore" : "FCSD";
}

}  // namespace flexcore::perfmodel
