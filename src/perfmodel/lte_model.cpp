#include "perfmodel/lte_model.h"

#include <cmath>

namespace flexcore::perfmodel {

std::size_t supported_paths(double paths_per_second, const LteMode& mode) {
  const double budget_paths = paths_per_second * kSlotSeconds;
  const double per_vector =
      budget_paths / static_cast<double>(vectors_per_slot(mode));
  return static_cast<std::size_t>(std::floor(per_vector));
}

int fcsd_supported_level(double paths_per_second, const LteMode& mode,
                         int qam_order, int max_level) {
  const std::size_t budget = supported_paths(paths_per_second, mode);
  int best = -1;
  std::size_t need = 1;
  for (int level = 1; level <= max_level; ++level) {
    need *= static_cast<std::size_t>(qam_order);
    if (need <= budget) best = level;
  }
  return best;
}

}  // namespace flexcore::perfmodel
