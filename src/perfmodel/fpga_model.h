// FPGA implementation cost model (Table 3 / Fig. 13 reproduction).
//
// We cannot synthesize for the Xilinx Virtex UltraScale XCVU440 in this
// environment, so — per DESIGN.md §3 — the model is parameterized with the
// paper's published single-PE synthesis results (Table 3) and evaluates the
// same derived quantities the paper reports: area-delay products, pipelined
// processing throughput (the paper's formula log2|Q|*Nt*fmax / (paths/M)),
// power at 100% utilization, energy per bit, and the extrapolated PE count
// at 75% device utilization.
#pragma once

#include <cstddef>
#include <string>

namespace flexcore::perfmodel {

/// Which detection engine a processing element implements.
enum class EngineKind { kFlexCore, kFcsd };

/// Single-PE implementation cost (Table 3 of the paper, 64-QAM, 16-bit).
struct PeResource {
  EngineKind kind;
  std::size_t nt;        ///< MIMO size (8 or 12)
  int logic_luts;        ///< CLB LUTs as logic
  int mem_luts;          ///< CLB LUTs as memory
  int ff_pairs;          ///< LUT flip-flop pairs
  int clb_slices;
  int dsp48;
  double fmax_mhz;       ///< maximum clock after place & route
  double power_w;        ///< worst-case static+dynamic at 100% utilization
};

/// The paper's Table 3 numbers for a single processing element.
/// Throws std::invalid_argument for unsupported (kind, nt) pairs.
PeResource paper_pe_resource(EngineKind kind, std::size_t nt);

/// Area-delay product: logic LUTs / fmax — the metric reproducing the
/// paper's quoted single-path overheads ("73.7 to 57.8%").
double area_delay_product(const PeResource& pe);

/// XCVU440 device capacity relevant to extrapolation.
struct DeviceCaps {
  int luts = 1266720;
  int dsp48 = 2880;
  double max_utilization = 0.75;  ///< paper's routing-congestion guard [3]
};

/// Largest number of PEs instantiable on the device at max_utilization.
std::size_t max_instantiable_pes(const PeResource& pe,
                                 const DeviceCaps& caps = {});

/// Pipelined processing throughput in bit/s when `paths` Sphere-decoder
/// paths must be evaluated per received vector on `m` instantiated PEs
/// clocked at `clock_mhz`:  each PE retires one path per cycle once the
/// pipeline is full, so a vector takes ceil(paths/m) cycles and carries
/// log2(|Q|) * Nt bits.
double processing_throughput_bps(std::size_t nt, int qam_order,
                                 double clock_mhz, std::size_t paths,
                                 std::size_t m);

/// Energy efficiency in Joules per bit for `m` PEs (power scales linearly
/// with the instantiated PEs, as in the paper's 100%-utilization estimate).
double energy_per_bit(const PeResource& pe, double clock_mhz,
                      int qam_order, std::size_t paths, std::size_t m);

std::string to_string(EngineKind k);

}  // namespace flexcore::perfmodel
