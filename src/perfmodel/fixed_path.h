// FlexCore path evaluation on the 16-bit fixed-point datapath of the FPGA
// design (Fig. 7 / Table 3).
//
// The FPGA engines compute interference cancellation, the slicer-square
// lookup and the l2-norm in 16-bit fixed point.  This module mirrors that
// datapath in software so the repository can *verify* (rather than assume)
// that 16-bit quantization preserves FlexCore's decisions — the premise
// under which the Table 3 / Fig. 13 cost models adopt the paper's 16-bit
// synthesis numbers.
#pragma once

#include <vector>

#include "core/flexcore_detector.h"
#include "perfmodel/fixed_point.h"

namespace flexcore::perfmodel {

/// Result of one fixed-point path walk.
struct FixedPathEval {
  bool valid = false;
  double metric = 0.0;       ///< PED accumulated in fixed point
  std::vector<int> symbols;  ///< tree (permuted) order
};

/// Walks one position-vector path with every arithmetic operation quantized
/// to Q(16, kFracBits): quantized R, quantized 1/R(l,l) (the per-channel
/// reciprocal the hardware precomputes to avoid dividers, §4), quantized
/// interference cancellation and l2-norm.
FixedPathEval fixed_path_walk(const modulation::Constellation& c,
                              const core::OrderingLut& lut,
                              const linalg::CMat& r,
                              const core::PositionVector& p,
                              core::InvalidEntryPolicy policy,
                              const linalg::CVec& ybar);

/// Fraction of detection decisions over `ys` where a full fixed-point
/// FlexCore (all active paths + min select) picks the same symbol vector as
/// the double-precision engine in `det`.  Used by tests and the
/// fixed-point ablation bench.
double fixed_vs_double_agreement(const core::FlexCoreDetector& det,
                                 const std::vector<linalg::CVec>& ys);

}  // namespace flexcore::perfmodel
