// Q-format fixed-point arithmetic mirroring the FPGA's 16-bit datapath.
//
// The paper's FPGA engines use 16-bit fixed-point words (§5.3, Table 3).
// This header provides a small saturating Q-format type so tests can verify
// that FlexCore's path metrics survive 16-bit quantization — the sanity
// check behind trusting the cost model's use of the paper's 16-bit numbers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <complex>

#include "linalg/types.h"

namespace flexcore::perfmodel {

/// Signed fixed-point value with `kFracBits` fractional bits stored in
/// `kTotalBits` bits, saturating on overflow.
template <int kTotalBits = 16, int kFracBits = 11>
class Fixed {
  static_assert(kTotalBits > kFracBits + 1, "need at least one integer bit");

 public:
  static constexpr std::int32_t kScale = 1 << kFracBits;
  static constexpr std::int32_t kMax = (1 << (kTotalBits - 1)) - 1;
  static constexpr std::int32_t kMin = -(1 << (kTotalBits - 1));

  constexpr Fixed() = default;

  static constexpr Fixed from_double(double v) {
    Fixed f;
    const double scaled = v * kScale;
    const double clamped =
        std::clamp(scaled, static_cast<double>(kMin), static_cast<double>(kMax));
    f.raw_ = static_cast<std::int32_t>(clamped >= 0 ? clamped + 0.5 : clamped - 0.5);
    return f;
  }
  static constexpr Fixed from_raw(std::int32_t raw) {
    Fixed f;
    f.raw_ = saturate(raw);
    return f;
  }

  constexpr double to_double() const {
    return static_cast<double>(raw_) / kScale;
  }
  constexpr std::int32_t raw() const { return raw_; }

  friend constexpr Fixed operator+(Fixed a, Fixed b) {
    return from_raw(a.raw_ + b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) {
    return from_raw(a.raw_ - b.raw_);
  }
  friend constexpr Fixed operator*(Fixed a, Fixed b) {
    const std::int64_t p = static_cast<std::int64_t>(a.raw_) * b.raw_;
    return from_raw(static_cast<std::int32_t>(
        std::clamp<std::int64_t>(p >> kFracBits, kMin, kMax)));
  }
  friend constexpr bool operator<(Fixed a, Fixed b) { return a.raw_ < b.raw_; }
  friend constexpr bool operator==(Fixed a, Fixed b) { return a.raw_ == b.raw_; }

 private:
  static constexpr std::int32_t saturate(std::int64_t v) {
    return static_cast<std::int32_t>(std::clamp<std::int64_t>(v, kMin, kMax));
  }
  std::int32_t raw_ = 0;
};

/// Complex fixed-point sample.
template <int kTotalBits = 16, int kFracBits = 11>
struct FixedComplex {
  using F = Fixed<kTotalBits, kFracBits>;
  F re, im;

  static FixedComplex from_cplx(linalg::cplx z) {
    return {F::from_double(z.real()), F::from_double(z.imag())};
  }
  linalg::cplx to_cplx() const { return {re.to_double(), im.to_double()}; }

  friend FixedComplex operator+(FixedComplex a, FixedComplex b) {
    return {a.re + b.re, a.im + b.im};
  }
  friend FixedComplex operator-(FixedComplex a, FixedComplex b) {
    return {a.re - b.re, a.im - b.im};
  }
  friend FixedComplex operator*(FixedComplex a, FixedComplex b) {
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
  }
  /// |z|^2 as fixed point (the l2-norm unit of Fig. 7).
  F abs2() const { return re * re + im * im; }
};

}  // namespace flexcore::perfmodel
