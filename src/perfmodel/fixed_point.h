// Q-format fixed-point arithmetic mirroring the FPGA's 16-bit datapath.
//
// The paper's FPGA engines use 16-bit fixed-point words (§5.3, Table 3).
// This header provides a small saturating Q-format type so tests can verify
// that FlexCore's path metrics survive 16-bit quantization — the sanity
// check behind trusting the cost model's use of the paper's 16-bit numbers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <complex>

#include "linalg/types.h"

namespace flexcore::perfmodel {

/// The ONE 16-bit Q-format shared by the Fixed<> reference model below, the
/// fixed-point ablation bench, and the quantized kernel tier
/// (detect::PathPlanI16): Q4.11 — 1 sign bit, 4 integer bits, 11 fractional
/// bits, matching the paper's FPGA word width (§5.3, Table 3).  The kernel
/// tier derives its own per-plan scale factors from the channel (it has to:
/// R entries are not bounded by the constellation), but its storage width
/// and saturation bounds come from here and its fractional resolution is
/// capped at kFracBits, so the model, the bench gate, and the shipped
/// kernel can never quietly use different number formats.
struct I16Format {
  static constexpr int kTotalBits = 16;
  static constexpr int kFracBits = 11;
  static constexpr std::int32_t kScale = 1 << kFracBits;
  static constexpr std::int32_t kMax = (1 << (kTotalBits - 1)) - 1;
  static constexpr std::int32_t kMin = -(1 << (kTotalBits - 1));
};

/// Signed fixed-point value with `kFracBits` fractional bits stored in
/// `kTotalBits` bits, saturating on overflow.
template <int kTotalBits = I16Format::kTotalBits,
          int kFracBits = I16Format::kFracBits>
class Fixed {
  static_assert(kTotalBits > kFracBits + 1, "need at least one integer bit");

 public:
  static constexpr std::int32_t kScale = 1 << kFracBits;
  static constexpr std::int32_t kMax = (1 << (kTotalBits - 1)) - 1;
  static constexpr std::int32_t kMin = -(1 << (kTotalBits - 1));

  constexpr Fixed() = default;

  static constexpr Fixed from_double(double v) {
    Fixed f;
    const double scaled = v * kScale;
    const double clamped =
        std::clamp(scaled, static_cast<double>(kMin), static_cast<double>(kMax));
    f.raw_ = static_cast<std::int32_t>(clamped >= 0 ? clamped + 0.5 : clamped - 0.5);
    return f;
  }
  static constexpr Fixed from_raw(std::int32_t raw) {
    Fixed f;
    f.raw_ = saturate(raw);
    return f;
  }

  constexpr double to_double() const {
    return static_cast<double>(raw_) / kScale;
  }
  constexpr std::int32_t raw() const { return raw_; }

  friend constexpr Fixed operator+(Fixed a, Fixed b) {
    return from_raw(a.raw_ + b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) {
    return from_raw(a.raw_ - b.raw_);
  }
  friend constexpr Fixed operator*(Fixed a, Fixed b) {
    const std::int64_t p = static_cast<std::int64_t>(a.raw_) * b.raw_;
    return from_raw(static_cast<std::int32_t>(
        std::clamp<std::int64_t>(p >> kFracBits, kMin, kMax)));
  }
  friend constexpr bool operator<(Fixed a, Fixed b) { return a.raw_ < b.raw_; }
  friend constexpr bool operator==(Fixed a, Fixed b) { return a.raw_ == b.raw_; }

 private:
  static constexpr std::int32_t saturate(std::int64_t v) {
    return static_cast<std::int32_t>(std::clamp<std::int64_t>(v, kMin, kMax));
  }
  std::int32_t raw_ = 0;
};

/// Complex fixed-point sample.
template <int kTotalBits = 16, int kFracBits = 11>
struct FixedComplex {
  using F = Fixed<kTotalBits, kFracBits>;
  F re, im;

  static FixedComplex from_cplx(linalg::cplx z) {
    return {F::from_double(z.real()), F::from_double(z.imag())};
  }
  linalg::cplx to_cplx() const { return {re.to_double(), im.to_double()}; }

  friend FixedComplex operator+(FixedComplex a, FixedComplex b) {
    return {a.re + b.re, a.im + b.im};
  }
  friend FixedComplex operator-(FixedComplex a, FixedComplex b) {
    return {a.re - b.re, a.im - b.im};
  }
  friend FixedComplex operator*(FixedComplex a, FixedComplex b) {
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
  }
  /// |z|^2 as fixed point (the l2-norm unit of Fig. 7).
  F abs2() const { return re * re + im * im; }
};

}  // namespace flexcore::perfmodel
