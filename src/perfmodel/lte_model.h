// LTE latency budget model (Fig. 12 reproduction).
//
// §5.2 of the paper: an LTE 10 ms frame has 20 slots of 500 us, and a frame
// carries 140 OFDM symbols per occupied subcarrier (14 per 1 ms subframe).
// A detector therefore must process 7 * N_occupied MIMO vectors within each
// 500 us slot.  Given a platform's measured path-evaluation rate, this
// model computes how many Sphere-decoder paths per vector fit in the
// budget for every LTE bandwidth mode — step (a) of the paper's two-step
// methodology; step (b) (the SNR loss such a path budget costs) is
// measured algorithmically by the fig12 benchmark.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace flexcore::perfmodel {

struct LteMode {
  const char* name;
  double bandwidth_mhz;
  std::size_t occupied_subcarriers;
};

/// The six LTE bandwidth modes of Fig. 12.
inline constexpr std::array<LteMode, 6> kLteModes{{
    {"1.25 MHz", 1.25, 76},
    {"2.5 MHz", 2.5, 150},
    {"5 MHz", 5.0, 300},
    {"10 MHz", 10.0, 600},
    {"15 MHz", 15.0, 900},
    {"20 MHz", 20.0, 1200},
}};

inline constexpr double kSlotSeconds = 500e-6;
inline constexpr std::size_t kSymbolsPerSlot = 7;

/// MIMO vectors that must be detected per slot in a given mode.
inline std::size_t vectors_per_slot(const LteMode& mode) {
  return kSymbolsPerSlot * mode.occupied_subcarriers;
}

/// Maximum Sphere-decoder paths per vector a platform sustaining
/// `paths_per_second` can afford in this mode's slot budget (0 = the mode's
/// deadline cannot be met even with one path).
std::size_t supported_paths(double paths_per_second, const LteMode& mode);

/// For the FCSD only |Q|^L path counts are realizable; returns the largest
/// feasible L (or -1 if even L = 1 misses the deadline) — the "FCSD not
/// supported" crosses of Fig. 12.
int fcsd_supported_level(double paths_per_second, const LteMode& mode,
                         int qam_order, int max_level = 2);

}  // namespace flexcore::perfmodel
