// 802.11a/g-style two-permutation block interleaver.
//
// Interleaving operates on one OFDM symbol's worth of coded bits per spatial
// stream (N_cbps bits).  The first permutation spreads adjacent coded bits
// across non-adjacent subcarriers; the second alternates them between more-
// and less-significant modulation bits (802.11-2012 §18.3.5.7).
#pragma once

#include <cstddef>
#include <vector>

#include "coding/convolutional.h"

namespace flexcore::coding {

/// Block interleaver for N_cbps coded bits with N_bpsc bits per subcarrier.
class Interleaver {
 public:
  /// `n_cbps` must be a multiple of 16 (the 802.11 row count) and of
  /// `n_bpsc`; throws std::invalid_argument otherwise.
  Interleaver(std::size_t n_cbps, std::size_t n_bpsc);

  std::size_t block_size() const noexcept { return n_cbps_; }

  /// Interleaves exactly block_size() bits.
  BitVec interleave(const BitVec& in) const;
  /// Inverse permutation.
  BitVec deinterleave(const BitVec& in) const;

  /// Interleaves a longer stream block by block (length must be a multiple
  /// of block_size()).
  BitVec interleave_stream(const BitVec& in) const;
  BitVec deinterleave_stream(const BitVec& in) const;

  /// Deinterleaves a stream of soft values with the same permutation.
  std::vector<double> deinterleave_stream(const std::vector<double>& in) const;

  /// The forward permutation: output position of input bit k.
  const std::vector<std::size_t>& permutation() const noexcept { return fwd_; }

 private:
  std::size_t n_cbps_;
  std::vector<std::size_t> fwd_;  // fwd_[k] = output index of input bit k
  std::vector<std::size_t> inv_;
};

}  // namespace flexcore::coding
