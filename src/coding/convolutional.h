// 802.11 rate-1/2 convolutional code (K = 7, generators 133/171 octal).
//
// The paper's throughput evaluation (§5.1) transmits packets "with the 1/2
// rate convolutional coding of the 802.11 standard"; this module provides
// that encoder and a Viterbi decoder (hard- and soft-input).
#pragma once

#include <cstdint>
#include <vector>

namespace flexcore::coding {

using BitVec = std::vector<std::uint8_t>;

/// Code parameters of the 802.11 mandatory convolutional code.
struct ConvCode {
  static constexpr int kConstraint = 7;          ///< K
  static constexpr int kNumStates = 1 << (kConstraint - 1);
  static constexpr std::uint32_t kG0 = 0133;     ///< generator A (octal)
  static constexpr std::uint32_t kG1 = 0171;     ///< generator B (octal)
};

/// Encodes `info` at rate 1/2, appending K-1 = 6 tail zeros to terminate the
/// trellis.  Output length = 2 * (info.size() + 6).
BitVec conv_encode(const BitVec& info);

/// Hard-decision Viterbi decoding (Hamming branch metric).  `coded` must
/// come from conv_encode (terminated trellis); returns the info bits
/// (tail removed).  Throws std::invalid_argument on odd-length input.
BitVec viterbi_decode(const BitVec& coded);

/// Soft-decision Viterbi decoding.  `llrs` holds one log-likelihood ratio
/// per coded bit, positive meaning "bit = 0 more likely" (the usual LLR sign
/// convention); metric is correlation-based.
BitVec viterbi_decode_soft(const std::vector<double>& llrs);

}  // namespace flexcore::coding
