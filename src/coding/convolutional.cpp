#include "coding/convolutional.h"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <stdexcept>

namespace flexcore::coding {

namespace {

// Output pair for (state, input-bit). State = most recent K-1 bits, newest
// bit in the MSB position (bit K-2), matching the shift-register convention
// where the register holds [newest ... oldest].
struct Branch {
  std::uint8_t out0;  // generator kG0 output
  std::uint8_t out1;  // generator kG1 output
  int next_state;
};

struct Trellis {
  std::array<std::array<Branch, 2>, ConvCode::kNumStates> branch;
  Trellis() {
    for (int s = 0; s < ConvCode::kNumStates; ++s) {
      for (int b = 0; b < 2; ++b) {
        // Full register contents: input bit + state bits (7 bits total).
        const std::uint32_t reg =
            (static_cast<std::uint32_t>(b) << (ConvCode::kConstraint - 1)) |
            static_cast<std::uint32_t>(s);
        const auto parity = [](std::uint32_t v) {
          return static_cast<std::uint8_t>(std::popcount(v) & 1);
        };
        branch[static_cast<std::size_t>(s)][static_cast<std::size_t>(b)] = Branch{
            parity(reg & ConvCode::kG0), parity(reg & ConvCode::kG1),
            static_cast<int>(reg >> 1)};
      }
    }
  }
};

const Trellis& trellis() {
  static const Trellis t;
  return t;
}

constexpr int kTail = ConvCode::kConstraint - 1;

// Generic Viterbi over a terminated trellis.  branch_metric(step, out0, out1)
// returns the metric contribution (lower is better) of emitting (out0,out1)
// at trellis step `step`.
template <typename MetricFn>
BitVec viterbi_core(std::size_t num_steps, MetricFn branch_metric) {
  constexpr int n_states = ConvCode::kNumStates;
  constexpr double inf = std::numeric_limits<double>::infinity();
  const Trellis& t = trellis();

  std::vector<double> metric(n_states, inf), next_metric(n_states, inf);
  metric[0] = 0.0;  // encoder starts in the all-zero state
  // survivor[step][state] = (prev_state << 1) | input_bit
  std::vector<std::vector<std::uint16_t>> survivor(
      num_steps, std::vector<std::uint16_t>(n_states, 0));

  for (std::size_t step = 0; step < num_steps; ++step) {
    std::fill(next_metric.begin(), next_metric.end(), inf);
    for (int s = 0; s < n_states; ++s) {
      if (metric[static_cast<std::size_t>(s)] == inf) continue;
      for (int b = 0; b < 2; ++b) {
        const Branch& br =
            t.branch[static_cast<std::size_t>(s)][static_cast<std::size_t>(b)];
        const double m = metric[static_cast<std::size_t>(s)] +
                         branch_metric(step, br.out0, br.out1);
        if (m < next_metric[static_cast<std::size_t>(br.next_state)]) {
          next_metric[static_cast<std::size_t>(br.next_state)] = m;
          survivor[step][static_cast<std::size_t>(br.next_state)] =
              static_cast<std::uint16_t>((s << 1) | b);
        }
      }
    }
    metric.swap(next_metric);
  }

  // Terminated trellis: trace back from state 0.
  BitVec decoded(num_steps);
  int state = 0;
  for (std::size_t step = num_steps; step-- > 0;) {
    const std::uint16_t sv = survivor[step][static_cast<std::size_t>(state)];
    decoded[step] = static_cast<std::uint8_t>(sv & 1u);
    state = sv >> 1;
  }
  if (decoded.size() < static_cast<std::size_t>(kTail)) return {};
  decoded.resize(decoded.size() - static_cast<std::size_t>(kTail));
  return decoded;
}

}  // namespace

BitVec conv_encode(const BitVec& info) {
  const Trellis& t = trellis();
  BitVec out;
  out.reserve(2 * (info.size() + kTail));
  int state = 0;
  auto push = [&](std::uint8_t bit) {
    const Branch& br =
        t.branch[static_cast<std::size_t>(state)][static_cast<std::size_t>(bit)];
    out.push_back(br.out0);
    out.push_back(br.out1);
    state = br.next_state;
  };
  for (std::uint8_t b : info) push(b & 1u);
  for (int i = 0; i < kTail; ++i) push(0);
  return out;
}

BitVec viterbi_decode(const BitVec& coded) {
  if (coded.size() % 2 != 0) {
    throw std::invalid_argument("viterbi_decode: coded length must be even");
  }
  const std::size_t steps = coded.size() / 2;
  return viterbi_core(steps, [&](std::size_t step, std::uint8_t o0,
                                 std::uint8_t o1) {
    return static_cast<double>((coded[2 * step] != o0) + (coded[2 * step + 1] != o1));
  });
}

BitVec viterbi_decode_soft(const std::vector<double>& llrs) {
  if (llrs.size() % 2 != 0) {
    throw std::invalid_argument("viterbi_decode_soft: LLR length must be even");
  }
  const std::size_t steps = llrs.size() / 2;
  // LLR > 0 favors bit 0.  Metric = sum over bits of llr if the hypothesized
  // bit is 1, -llr if 0, shifted to be non-negative via max(|llr|) bound is
  // unnecessary for Viterbi; any affine shift per step cancels.
  return viterbi_core(steps, [&](std::size_t step, std::uint8_t o0,
                                 std::uint8_t o1) {
    const double l0 = llrs[2 * step], l1 = llrs[2 * step + 1];
    return (o0 ? l0 : -l0) + (o1 ? l1 : -l1);
  });
}

}  // namespace flexcore::coding
