#include "coding/interleaver.h"

#include <algorithm>
#include <stdexcept>

namespace flexcore::coding {

Interleaver::Interleaver(std::size_t n_cbps, std::size_t n_bpsc)
    : n_cbps_(n_cbps) {
  if (n_cbps == 0 || n_cbps % 16 != 0 || n_bpsc == 0 || n_cbps % n_bpsc != 0) {
    throw std::invalid_argument(
        "Interleaver: n_cbps must be a nonzero multiple of 16 and of n_bpsc");
  }
  const std::size_t s = std::max<std::size_t>(n_bpsc / 2, 1);
  fwd_.resize(n_cbps);
  inv_.resize(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k) {
    // First permutation (802.11-2012 Eq. 18-18).
    const std::size_t i = (n_cbps / 16) * (k % 16) + k / 16;
    // Second permutation (Eq. 18-19).
    const std::size_t j =
        s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
    fwd_[k] = j;
    inv_[j] = k;
  }
}

BitVec Interleaver::interleave(const BitVec& in) const {
  if (in.size() != n_cbps_) throw std::invalid_argument("interleave: bad size");
  BitVec out(n_cbps_);
  for (std::size_t k = 0; k < n_cbps_; ++k) out[fwd_[k]] = in[k];
  return out;
}

BitVec Interleaver::deinterleave(const BitVec& in) const {
  if (in.size() != n_cbps_) throw std::invalid_argument("deinterleave: bad size");
  BitVec out(n_cbps_);
  for (std::size_t k = 0; k < n_cbps_; ++k) out[inv_[k]] = in[k];
  return out;
}

BitVec Interleaver::interleave_stream(const BitVec& in) const {
  if (in.size() % n_cbps_ != 0) {
    throw std::invalid_argument("interleave_stream: length not a block multiple");
  }
  BitVec out(in.size());
  for (std::size_t base = 0; base < in.size(); base += n_cbps_) {
    for (std::size_t k = 0; k < n_cbps_; ++k) out[base + fwd_[k]] = in[base + k];
  }
  return out;
}

BitVec Interleaver::deinterleave_stream(const BitVec& in) const {
  if (in.size() % n_cbps_ != 0) {
    throw std::invalid_argument("deinterleave_stream: length not a block multiple");
  }
  BitVec out(in.size());
  for (std::size_t base = 0; base < in.size(); base += n_cbps_) {
    for (std::size_t k = 0; k < n_cbps_; ++k) out[base + inv_[k]] = in[base + k];
  }
  return out;
}

std::vector<double> Interleaver::deinterleave_stream(
    const std::vector<double>& in) const {
  if (in.size() % n_cbps_ != 0) {
    throw std::invalid_argument("deinterleave_stream: length not a block multiple");
  }
  std::vector<double> out(in.size());
  for (std::size_t base = 0; base < in.size(); base += n_cbps_) {
    for (std::size_t k = 0; k < n_cbps_; ++k) out[base + inv_[k]] = in[base + k];
  }
  return out;
}

}  // namespace flexcore::coding
