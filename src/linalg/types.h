// Basic scalar/vector types shared by the whole library.
//
// Two complex-number representations coexist, by deliberate convention:
//
//  * std::complex<double> (`cplx`, interleaved re/im) is the default for
//    everything off the per-path hot loop — matrices, QR, preprocessing,
//    channel models, detector plumbing.  Dimensions are tiny (MIMO sizes
//    up to 16x16), so clarity and numerical robustness win there.
//  * Split-complex structure-of-arrays (linalg/simd.h: two contiguous
//    scalar arrays re[], im[], in double or float) is the layout of the
//    lane-parallel kernel engine (detect/path_kernels.h), where thousands
//    of identical per-path programs run per received vector and the
//    auto-vectorizer needs branch-light split arithmetic to fill SIMD
//    lanes.
//
// Use cplx until a loop is hot enough to block over paths; then compile
// the state into a PathPlan once per channel and evaluate split.  The
// split double tier is bit-identical to the cplx formulas on finite
// values (same naive multiply std::complex evaluates to), which is what
// lets the kernels swap in without changing any result.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace flexcore::linalg {

using cplx = std::complex<double>;

/// Dense complex column vector.
using CVec = std::vector<cplx>;

/// Dense real vector.
using RVec = std::vector<double>;

/// Squared magnitude |z|^2 (cheaper than std::abs which takes a sqrt).
inline double abs2(cplx z) noexcept {
  return z.real() * z.real() + z.imag() * z.imag();
}

/// Squared Euclidean norm of a complex vector.
inline double norm2(const CVec& v) noexcept {
  double s = 0.0;
  for (cplx z : v) s += abs2(z);
  return s;
}

/// Hermitian inner product <a, b> = a^H b.
inline cplx dot(const CVec& a, const CVec& b) {
  cplx s{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) s += std::conj(a[i]) * b[i];
  return s;
}

/// y += alpha * x
inline void axpy(cplx alpha, const CVec& x, CVec& y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// Element-wise difference a - b.
inline CVec sub(const CVec& a, const CVec& b) {
  CVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

}  // namespace flexcore::linalg
