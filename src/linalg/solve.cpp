#include "linalg/solve.h"

#include <cmath>
#include <stdexcept>

namespace flexcore::linalg {

namespace {
constexpr double kPivotTol = 1e-13;

// Gauss-Jordan with partial pivoting, reducing [a | rhs] in place to
// [I | a^-1 rhs]. rhs may have any number of columns.
void gauss_jordan(CMat& a, CMat& rhs) {
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |a(i,k)| for i >= k.
    std::size_t piv = k;
    double pmax = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(a(i, k));
      if (v > pmax) {
        piv = i;
        pmax = v;
      }
    }
    if (pmax < kPivotTol) throw std::runtime_error("gauss_jordan: singular matrix");
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(piv, j));
      for (std::size_t j = 0; j < rhs.cols(); ++j) std::swap(rhs(k, j), rhs(piv, j));
    }
    const cplx inv_p = cplx{1.0, 0.0} / a(k, k);
    for (std::size_t j = 0; j < n; ++j) a(k, j) *= inv_p;
    for (std::size_t j = 0; j < rhs.cols(); ++j) rhs(k, j) *= inv_p;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == k) continue;
      const cplx f = a(i, k);
      if (f == cplx{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < n; ++j) a(i, j) -= f * a(k, j);
      for (std::size_t j = 0; j < rhs.cols(); ++j) rhs(i, j) -= f * rhs(k, j);
    }
  }
}
}  // namespace

CMat inverse(const CMat& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("inverse: non-square");
  CMat work = a;
  CMat rhs = CMat::identity(a.rows());
  gauss_jordan(work, rhs);
  return rhs;
}

CVec solve(const CMat& a, const CVec& b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    throw std::invalid_argument("solve: shape mismatch");
  }
  CMat work = a;
  CMat rhs(b.size(), 1);
  for (std::size_t i = 0; i < b.size(); ++i) rhs(i, 0) = b[i];
  gauss_jordan(work, rhs);
  CVec x(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) x[i] = rhs(i, 0);
  return x;
}

CMat cholesky(const CMat& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("cholesky: non-square");
  const std::size_t n = a.rows();
  CMat l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j).real();
    for (std::size_t k = 0; k < j; ++k) d -= abs2(l(j, k));
    if (d <= 0.0) throw std::runtime_error("cholesky: matrix not positive definite");
    const double ljj = std::sqrt(d);
    l(j, j) = cplx{ljj, 0.0};
    for (std::size_t i = j + 1; i < n; ++i) {
      cplx s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * std::conj(l(j, k));
      l(i, j) = s / ljj;
    }
  }
  return l;
}

CMat zf_filter(const CMat& h) {
  const CMat hh = h.hermitian();
  return inverse(hh * h) * hh;
}

CMat mmse_filter(const CMat& h, double noise_var) {
  const CMat hh = h.hermitian();
  CMat gram = hh * h;
  for (std::size_t i = 0; i < gram.rows(); ++i) {
    gram(i, i) += cplx{noise_var, 0.0};
  }
  return inverse(gram) * hh;
}

}  // namespace flexcore::linalg
