#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace flexcore::linalg {

CMat::CMat(std::initializer_list<std::initializer_list<cplx>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) {
      throw std::invalid_argument("CMat: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

CMat CMat::identity(std::size_t n) {
  CMat m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = cplx{1.0, 0.0};
  return m;
}

CMat CMat::diag(const CVec& d) {
  CMat m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

CVec CMat::col(std::size_t c) const {
  assert(c < cols_);
  CVec v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

CVec CMat::row(std::size_t r) const {
  assert(r < rows_);
  CVec v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

void CMat::set_col(std::size_t c, const CVec& v) {
  assert(c < cols_ && v.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

void CMat::swap_cols(std::size_t a, std::size_t b) {
  assert(a < cols_ && b < cols_);
  if (a == b) return;
  for (std::size_t r = 0; r < rows_; ++r) {
    std::swap((*this)(r, a), (*this)(r, b));
  }
}

CMat CMat::hermitian() const {
  CMat m(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) m(c, r) = std::conj((*this)(r, c));
  return m;
}

CMat CMat::transpose() const {
  CMat m(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) m(c, r) = (*this)(r, c);
  return m;
}

CMat CMat::operator+(const CMat& o) const {
  assert(same_shape(o));
  CMat m = *this;
  m += o;
  return m;
}

CMat CMat::operator-(const CMat& o) const {
  assert(same_shape(o));
  CMat m = *this;
  m -= o;
  return m;
}

CMat& CMat::operator+=(const CMat& o) {
  assert(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

CMat& CMat::operator-=(const CMat& o) {
  assert(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

CMat CMat::operator*(const CMat& o) const {
  assert(cols_ == o.rows_);
  CMat m(rows_, o.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cplx a = (*this)(r, k);
      if (a == cplx{0.0, 0.0}) continue;
      for (std::size_t c = 0; c < o.cols_; ++c) {
        m(r, c) += a * o(k, c);
      }
    }
  }
  return m;
}

CVec CMat::operator*(const CVec& v) const {
  assert(cols_ == v.size());
  CVec out(rows_, cplx{0.0, 0.0});
  for (std::size_t r = 0; r < rows_; ++r) {
    cplx s{0.0, 0.0};
    const cplx* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * v[c];
    out[r] = s;
  }
  return out;
}

CMat CMat::operator*(cplx s) const {
  CMat m = *this;
  for (auto& z : m.data_) z *= s;
  return m;
}

double CMat::frobenius_norm() const {
  double s = 0.0;
  for (cplx z : data_) s += abs2(z);
  return std::sqrt(s);
}

double CMat::max_abs_diff(const CMat& a, const CMat& b) {
  assert(a.same_shape(b));
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

void accumulate_gram(CMatView h, CMat* gram) {
  const std::size_t rows = h.rows();
  const std::size_t cols = h.cols();
  assert(gram != nullptr && gram->rows() == cols && gram->cols() == cols);
  const cplx* data = h.data();
  cplx* g = gram->data();
  // Row-by-row rank-1 updates, row-major walk on both sides.  The summation
  // order over rows matches CMat::operator* (inner dimension ascending), so
  // a one-shot full-matrix Gram here is bit-identical to h.hermitian() * h.
  for (std::size_t r = 0; r < rows; ++r) {
    const cplx* row = data + r * cols;
    for (std::size_t j = 0; j < cols; ++j) {
      const cplx hj = std::conj(row[j]);
      cplx* grow = g + j * cols;
      for (std::size_t k = 0; k < cols; ++k) grow[k] += hj * row[k];
    }
  }
}

std::string CMat::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      cplx z = (*this)(r, c);
      os << z.real() << (z.imag() >= 0 ? "+" : "") << z.imag() << "j";
      if (c + 1 < cols_) os << ", ";
    }
    os << (r + 1 == rows_ ? "]" : ";\n");
  }
  return os.str();
}

}  // namespace flexcore::linalg
