#include "linalg/qr.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "linalg/solve.h"

namespace flexcore::linalg {

namespace {

constexpr double kRankTol = 1e-12;

// Shared MGS core: orthogonalizes the columns of `a` in the order chosen by
// `pick_next`, which receives the current residual column norms (squared,
// NaN for already-processed columns) and returns the column to process.
// With Tolerant set, a pivot below the rank tolerance produces a zero Q
// column / zero R row instead of throwing (the shard-partial contract of
// qr_mgs_tolerant); the branch is compile-time, so the full-rank code path
// is the same instructions either way.
template <bool Tolerant = false, typename PickFn>
QrResult mgs_core(CMatView h, PickFn pick_next) {
  const std::size_t nr = h.rows();
  const std::size_t nt = h.cols();
  if (nr < nt) throw std::runtime_error("qr: requires rows >= cols");

  CMat a = h.materialize();  // residual columns get overwritten in place
  CMat q(nr, nt);
  CMat r(nt, nt);
  std::vector<std::size_t> perm(nt);
  std::iota(perm.begin(), perm.end(), 0);

  // norms2[j] tracks the squared residual norm of (current) column j.
  std::vector<double> norms2(nt);
  for (std::size_t j = 0; j < nt; ++j) norms2[j] = norm2(a.col(j));

  for (std::size_t k = 0; k < nt; ++k) {
    const std::size_t pick = pick_next(k, norms2);
    if (pick != k) {
      a.swap_cols(k, pick);
      r.swap_cols(k, pick);  // swap already-computed rows' columns
      std::swap(perm[k], perm[pick]);
      std::swap(norms2[k], norms2[pick]);
    }

    CVec qk = a.col(k);
    const double nrm = std::sqrt(norm2(qk));
    if (!std::isfinite(nrm)) {
      // NaN/Inf entries would otherwise sail PAST the rank tolerance (NaN
      // comparisons are false) and poison Q/R silently.  Thrown in the
      // tolerant path too: zeroing a non-finite column would corrupt the
      // shard-partial stack rather than degrade it.
      throw std::runtime_error("qr: non-finite matrix entries");
    }
    if (nrm < kRankTol) {
      if constexpr (Tolerant) {
        // Residual column k lies in the span of the processed ones: leave
        // q's column k and r's row k zero.  H = Q R still holds (column k
        // of H reconstructs from the r(0..k-1, k) entries already stored),
        // and the dead level contributes nothing to R^H R.
        norms2[k] = std::numeric_limits<double>::quiet_NaN();
        continue;
      }
      throw std::runtime_error("qr: rank-deficient matrix");
    }
    r(k, k) = cplx{nrm, 0.0};
    for (auto& z : qk) z /= nrm;
    q.set_col(k, qk);

    for (std::size_t j = k + 1; j < nt; ++j) {
      CVec aj = a.col(j);
      const cplx proj = dot(qk, aj);
      r(k, j) = proj;
      axpy(-proj, qk, aj);
      a.set_col(j, aj);
      // Cheap norm downdate (standard SQRD trick); re-deriving from the
      // updated column avoids negative drift.
      norms2[j] = std::max(0.0, norms2[j] - abs2(proj));
    }
    norms2[k] = std::numeric_limits<double>::quiet_NaN();
  }
  return QrResult{std::move(q), std::move(r), std::move(perm)};
}

constexpr auto kNaturalOrder = [](std::size_t k, const std::vector<double>&) {
  return k;
};

}  // namespace

QrResult qr_mgs(CMatView h) { return mgs_core(h, kNaturalOrder); }

QrResult qr_mgs_tolerant(CMatView h) {
  return mgs_core<true>(h, kNaturalOrder);
}

QrResult sorted_qr_wubben(CMatView h) {
  return mgs_core(h, [](std::size_t k, const std::vector<double>& norms2) {
    std::size_t best = k;
    for (std::size_t j = k + 1; j < norms2.size(); ++j) {
      if (norms2[j] < norms2[best]) best = j;
    }
    return best;
  });
}

QrResult qr_householder(CMatView h) {
  const std::size_t nr = h.rows();
  const std::size_t nt = h.cols();
  if (nr < nt) throw std::runtime_error("qr: requires rows >= cols");

  CMat a = h.materialize();
  CMat qfull = CMat::identity(nr);

  for (std::size_t k = 0; k < nt; ++k) {
    // Build Householder vector for column k, rows k..nr-1.
    CVec x(nr - k);
    for (std::size_t i = k; i < nr; ++i) x[i - k] = a(i, k);
    const double xnorm = std::sqrt(norm2(x));
    if (!std::isfinite(xnorm)) {
      throw std::runtime_error("qr: non-finite matrix entries");
    }
    if (xnorm < kRankTol) throw std::runtime_error("qr: rank-deficient matrix");

    // alpha = -e^{i arg(x0)} * ||x||  makes the pivot real and positive
    // after reflection with the conventional sign choice.
    const cplx x0 = x[0];
    const double x0abs = std::abs(x0);
    const cplx phase = (x0abs > 0) ? x0 / x0abs : cplx{1.0, 0.0};
    const cplx alpha = -phase * xnorm;

    CVec v = x;
    v[0] -= alpha;
    const double vnorm2 = norm2(v);
    if (vnorm2 < kRankTol * kRankTol) continue;  // already triangular here

    // Apply P = I - 2 v v^H / (v^H v) to A (rows k..) and accumulate into Q.
    for (std::size_t j = k; j < nt; ++j) {
      cplx s{0.0, 0.0};
      for (std::size_t i = k; i < nr; ++i) s += std::conj(v[i - k]) * a(i, j);
      s *= 2.0 / vnorm2;
      for (std::size_t i = k; i < nr; ++i) a(i, j) -= s * v[i - k];
    }
    for (std::size_t j = 0; j < nr; ++j) {
      cplx s{0.0, 0.0};
      for (std::size_t i = k; i < nr; ++i) s += std::conj(v[i - k]) * qfull(i, j);
      s *= 2.0 / vnorm2;
      for (std::size_t i = k; i < nr; ++i) qfull(i, j) -= s * v[i - k];
    }
  }

  // qfull currently holds P_{nt-1}...P_0, i.e. Q^H. Extract thin factors and
  // normalize signs so that diag(R) is real positive (matches MGS).
  CMat q(nr, nt);
  CMat r(nt, nt);
  for (std::size_t i = 0; i < nt; ++i)
    for (std::size_t j = i; j < nt; ++j) r(i, j) = a(i, j);
  for (std::size_t i = 0; i < nr; ++i)
    for (std::size_t j = 0; j < nt; ++j) q(i, j) = std::conj(qfull(j, i));

  for (std::size_t i = 0; i < nt; ++i) {
    const cplx d = r(i, i);
    const double dabs = std::abs(d);
    if (dabs < kRankTol) throw std::runtime_error("qr: rank-deficient matrix");
    const cplx ph = d / dabs;  // rotate row i of R and column i of Q
    for (std::size_t j = i; j < nt; ++j) r(i, j) *= std::conj(ph);
    for (std::size_t i2 = 0; i2 < nr; ++i2) q(i2, i) *= ph;
  }

  std::vector<std::size_t> perm(nt);
  std::iota(perm.begin(), perm.end(), 0);
  return QrResult{std::move(q), std::move(r), std::move(perm)};
}

QrResult fcsd_sorted_qr(CMatView h, std::size_t full_levels) {
  const std::size_t nt = h.cols();
  if (full_levels > nt) {
    throw std::invalid_argument("fcsd_sorted_qr: full_levels > Nt");
  }

  // One Gram accumulation up front: the Gram of any column subset is a
  // principal submatrix of H^H H, so the per-iteration pseudo-inverses
  // below never have to re-touch the (potentially many-antenna-row) H.
  // Entry-wise this matches the old per-iteration hr^H hr bit for bit
  // (same row-ascending summation), so the ordering is unchanged.
  CMat full_gram(nt, nt);
  accumulate_gram(h, &full_gram);

  // Iteratively pick detection order. Iteration i selects the stream
  // detected at tree level Nt-i (i.e. column nt-1-i of the permuted H).
  std::vector<std::size_t> remaining(nt);
  std::iota(remaining.begin(), remaining.end(), 0);
  std::vector<std::size_t> order(nt);  // order[i] = original col detected i-th

  for (std::size_t i = 0; i < nt; ++i) {
    // Pseudo-inverse of the remaining channel: G = (Hr^H Hr)^-1 Hr^H.
    // Noise amplification of stream j is the squared norm of G's row j.
    CMat gram(remaining.size(), remaining.size());
    for (std::size_t j = 0; j < remaining.size(); ++j) {
      for (std::size_t k = 0; k < remaining.size(); ++k) {
        gram(j, k) = full_gram(remaining[j], remaining[k]);
      }
    }
    const CMat ginv = inverse(gram);
    // row j of G = (ginv * Hr^H) has squared norm = (ginv * gram * ginv^H)_jj
    // = ginv_jj for Hermitian gram; use the direct identity to avoid forming G.
    std::size_t best = 0;
    double best_amp = ginv(0, 0).real();
    for (std::size_t j = 1; j < remaining.size(); ++j) {
      const double amp = ginv(j, j).real();
      const bool want_max = i < full_levels;
      if (want_max ? (amp > best_amp) : (amp < best_amp)) {
        best = j;
        best_amp = amp;
      }
    }
    order[i] = remaining[best];
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best));
  }

  // Column nt-1-i of the permuted matrix is detected i-th.
  std::vector<std::size_t> perm(nt);
  for (std::size_t i = 0; i < nt; ++i) perm[nt - 1 - i] = order[i];

  CMat hp(h.rows(), nt);
  for (std::size_t j = 0; j < nt; ++j) hp.set_col(j, h.col(perm[j]));
  QrResult qr = qr_mgs(hp);
  qr.perm = perm;
  return qr;
}

CVec solve_upper(const CMat& r, const CVec& y) {
  const std::size_t n = r.cols();
  assert(r.rows() == n && y.size() == n);
  CVec x(n);
  for (std::size_t ii = 0; ii < n; ++ii) {
    const std::size_t i = n - 1 - ii;
    cplx s = y[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= r(i, j) * x[j];
    const cplx d = r(i, i);
    if (std::abs(d) < kRankTol) {
      throw std::runtime_error("solve_upper: singular diagonal");
    }
    x[i] = s / d;
  }
  return x;
}

}  // namespace flexcore::linalg
