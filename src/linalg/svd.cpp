#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace flexcore::linalg {

namespace {
constexpr double kTol = 1e-14;
constexpr int kMaxSweeps = 64;
}  // namespace

RVec singular_values(const CMat& a) {
  // One-sided Jacobi: rotate column pairs of a working copy until all pairs
  // are orthogonal; singular values are then the column norms.
  CMat w = (a.rows() >= a.cols()) ? a : a.hermitian();
  const std::size_t n = w.cols();
  const std::size_t m = w.rows();

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Gram entries of the (p,q) column pair.
        double app = 0.0, aqq = 0.0;
        cplx apq{0.0, 0.0};
        for (std::size_t i = 0; i < m; ++i) {
          const cplx u = w(i, p), v = w(i, q);
          app += abs2(u);
          aqq += abs2(v);
          apq += std::conj(u) * v;
        }
        const double offmag = std::abs(apq);
        if (offmag <= kTol * std::sqrt(app * aqq) || offmag == 0.0) continue;
        converged = false;

        // Complex Jacobi rotation zeroing u^H v (see tests for the
        // orthogonality property this enforces).
        const cplx alpha = apq / offmag;
        const double zeta = (aqq - app) / (2.0 * offmag);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        const cplx alpha_conj = std::conj(alpha);
        for (std::size_t i = 0; i < m; ++i) {
          const cplx u = w(i, p), v = w(i, q);
          w(i, p) = c * u - s * alpha_conj * v;
          w(i, q) = s * alpha * u + c * v;
        }
      }
    }
    if (converged) break;
  }

  RVec sv(n);
  for (std::size_t j = 0; j < n; ++j) {
    double s2 = 0.0;
    for (std::size_t i = 0; i < m; ++i) s2 += abs2(w(i, j));
    sv[j] = std::sqrt(s2);
  }
  std::sort(sv.begin(), sv.end(), std::greater<>());
  return sv;
}

double condition_number(const CMat& a) {
  const RVec sv = singular_values(a);
  if (sv.empty()) return 0.0;
  const double smin = sv.back();
  if (smin <= std::numeric_limits<double>::min()) {
    return std::numeric_limits<double>::infinity();
  }
  return sv.front() / smin;
}

}  // namespace flexcore::linalg
