// QR decompositions used by sphere-decoder-based MIMO detection.
//
// Three variants are provided:
//  * qr_mgs / qr_householder : plain (unsorted) thin QR, H = Q R.
//  * sorted_qr_wubben        : SQRD column ordering of Wübben et al. [13],
//                              the standard ordering for SIC and FlexCore.
//  * fcsd_sorted_qr          : the FCSD ordering of Barbero & Thompson [4],
//                              which places the streams with the largest
//                              noise amplification on the fully-expanded
//                              (top) tree levels.
//
// Column permutations are reported so callers can map detected symbols back
// to the original transmit-antenna order.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace flexcore::linalg {

/// Result of a (possibly column-sorted) QR decomposition.
///
/// The factorization satisfies  H(:, perm) = Q * R, i.e. column j of the
/// permuted channel is the channel of the symbol detected at tree level j+1
/// (levels are processed from Nt down to 1, so perm.back() is detected
/// first).  For the plain decompositions perm is the identity.
struct QrResult {
  CMat Q;                         ///< Nr x Nt, orthonormal columns.
  CMat R;                         ///< Nt x Nt, upper triangular.
  std::vector<std::size_t> perm;  ///< permuted-col -> original-col map.
};

/// Thin QR via modified Gram-Schmidt.  Requires rows >= cols and full
/// column rank; throws std::runtime_error on rank deficiency.
///
/// All decompositions here take a CMatView, so they run equally on a whole
/// channel matrix or on an antenna-row submatrix of it
/// (CMat::row_range) — the per-cluster preprocessing of the sharded
/// baseband layer factorizes each cluster's rows in place, no copies of H.
QrResult qr_mgs(CMatView h);

/// qr_mgs without the full-rank requirement: a (numerically) rank-deficient
/// pivot yields a zero Q column and a zero R row instead of throwing, so
/// H = Q R still holds exactly and R^H R == H^H H is preserved.  This is
/// the per-cluster factorization of src/shard/ — a cluster's antenna-row
/// submatrix may be singular even when the full channel is not, and the
/// partial-QR merge stays exact either way.  For full-column-rank input it
/// is bit-identical to qr_mgs (same code path).
QrResult qr_mgs_tolerant(CMatView h);

/// Thin QR via Householder reflections (numerically more robust; used to
/// cross-validate MGS in tests).
QrResult qr_householder(CMatView h);

/// Sorted QR decomposition (SQRD) of Wübben et al.: at each Gram-Schmidt
/// step pick the not-yet-processed column of minimum residual norm.  The
/// resulting R tends to have ascending diagonal magnitudes, so detection
/// (which walks levels Nt..1) sees the most reliable streams first.
QrResult sorted_qr_wubben(CMatView h);

/// FCSD ordering of Barbero & Thompson: the `full_levels` streams with the
/// *largest* post-detection noise amplification are assigned to the top
/// (fully-expanded) tree levels; the remaining levels use the V-BLAST
/// best-first rule (smallest noise amplification detected first).
QrResult fcsd_sorted_qr(CMatView h, std::size_t full_levels);

/// Applies a permutation produced by a sorted QR to recover symbols in the
/// original antenna order: out[perm[i]] = detected[i].
template <typename T>
std::vector<T> unpermute(const std::vector<T>& detected,
                         const std::vector<std::size_t>& perm) {
  std::vector<T> out(detected.size());
  for (std::size_t i = 0; i < detected.size(); ++i) out[perm[i]] = detected[i];
  return out;
}

/// Buffer-reusing variant for the per-vector hot path: writes into `out`
/// (resized, warm capacity reused — zero allocations in steady state).
/// `detected` and `out` must be distinct objects.
template <typename T>
void unpermute_into(const std::vector<T>& detected,
                    const std::vector<std::size_t>& perm,
                    std::vector<T>* out) {
  out->resize(detected.size());
  for (std::size_t i = 0; i < detected.size(); ++i) {
    (*out)[perm[i]] = detected[i];
  }
}

/// Solves R x = y for upper-triangular R by back substitution.
CVec solve_upper(const CMat& r, const CVec& y);

}  // namespace flexcore::linalg
