// Direct solvers and matrix inverses for small dense complex systems.
#pragma once

#include "linalg/matrix.h"

namespace flexcore::linalg {

/// Inverse of a square matrix by Gauss-Jordan elimination with partial
/// pivoting.  Throws std::runtime_error if the matrix is (numerically)
/// singular.
CMat inverse(const CMat& a);

/// Cholesky factor L (lower triangular, real positive diagonal) of a
/// Hermitian positive-definite matrix: a = L L^H.  Throws if not PD.
CMat cholesky(const CMat& a);

/// Solves A x = b via Gauss elimination with partial pivoting.
CVec solve(const CMat& a, const CVec& b);

/// Zero-forcing (pseudo-inverse) receive filter:  W = (H^H H)^-1 H^H.
CMat zf_filter(const CMat& h);

/// MMSE receive filter:  W = (H^H H + noise_var I)^-1 H^H.
/// `noise_var` is the per-receive-antenna complex noise variance, assuming
/// unit average symbol energy.
CMat mmse_filter(const CMat& h, double noise_var);

}  // namespace flexcore::linalg
