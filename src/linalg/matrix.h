// Dense row-major complex matrix for small MIMO dimensions.
#pragma once

#include <cassert>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>

#include "linalg/types.h"

namespace flexcore::linalg {

class CMatView;

/// Dense complex matrix (row-major).
///
/// Designed for the small, dense problems of MIMO baseband processing
/// (channel matrices up to ~16x16).  All operations are bounds-asserted in
/// debug builds; none allocate except where a new matrix is returned.
class CMat {
 public:
  CMat() = default;

  /// rows x cols matrix, zero-initialized.
  CMat(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0}) {}

  /// Build from a nested initializer list: CMat{{a,b},{c,d}}.
  CMat(std::initializer_list<std::initializer_list<cplx>> init);

  /// Identity matrix of size n.
  static CMat identity(std::size_t n);

  /// Matrix whose diagonal is d and off-diagonal entries are zero.
  static CMat diag(const CVec& d);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  cplx& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  cplx operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw storage access (row-major), for tight inner loops.
  const cplx* data() const noexcept { return data_.data(); }
  cplx* data() noexcept { return data_.data(); }

  /// Non-owning view of rows [row_begin, row_begin + row_count) — the
  /// antenna-row submatrix the sharded baseband layer hands each cluster.
  /// No copy: rows are full-width and contiguous in the row-major storage.
  /// Defined after CMatView below.
  CMatView row_range(std::size_t row_begin, std::size_t row_count) const;

  /// Extract column c as a vector.
  CVec col(std::size_t c) const;
  /// Extract row r as a vector.
  CVec row(std::size_t r) const;
  /// Overwrite column c.
  void set_col(std::size_t c, const CVec& v);
  /// Swap columns a and b in place.
  void swap_cols(std::size_t a, std::size_t b);

  /// Conjugate (Hermitian) transpose.
  CMat hermitian() const;
  /// Plain transpose (no conjugation).
  CMat transpose() const;

  CMat operator+(const CMat& o) const;
  CMat operator-(const CMat& o) const;
  CMat operator*(const CMat& o) const;
  CVec operator*(const CVec& v) const;
  CMat operator*(cplx s) const;

  CMat& operator+=(const CMat& o);
  CMat& operator-=(const CMat& o);

  bool same_shape(const CMat& o) const noexcept {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Max |a_ij - b_ij| between two same-shape matrices.
  static double max_abs_diff(const CMat& a, const CMat& b);

  /// Human-readable dump (for diagnostics and test failure messages).
  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  CVec data_;
};

/// Non-owning, read-only view of a contiguous row range of a CMat — the
/// "antenna-row submatrix" currency of the decentralized baseband layer
/// (src/shard/): shard c sees rows [begin, begin + count) of H with zero
/// copies, because CMat is row-major with full-width rows.  A whole CMat
/// converts implicitly, so every view-taking routine (QR, Gram
/// accumulation, preprocessing) keeps accepting plain matrices at call
/// sites unchanged.  The viewed matrix must outlive the view.
class CMatView {
 public:
  CMatView() = default;
  /* implicit */ CMatView(const CMat& m)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}
  CMatView(const cplx* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  cplx operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw row-major storage of the viewed rows (contiguous).
  const cplx* data() const noexcept { return data_; }

  /// Extract column c as a vector (copies — columns are strided).
  CVec col(std::size_t c) const {
    assert(c < cols_);
    CVec out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
    return out;
  }

  /// Materialize the view as an owning matrix (the working copy QR makes).
  CMat materialize() const;

 private:
  const cplx* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

inline CMatView CMat::row_range(std::size_t row_begin,
                                std::size_t row_count) const {
  assert(row_begin + row_count <= rows_);
  return CMatView(data() + row_begin * cols_, row_count, cols_);
}

inline CMat CMatView::materialize() const {
  CMat out(rows_, cols_);
  for (std::size_t i = 0; i < rows_ * cols_; ++i) out.data()[i] = data_[i];
  return out;
}

/// gram += h^H h, accumulated row by row — the decentralized Gram update:
/// each antenna row of H contributes an independent rank-1 term, so
/// per-cluster partial Grams over disjoint row ranges sum to the full
/// H^H H.  `gram` must be cols x cols (zero it first for a fresh Gram).
void accumulate_gram(CMatView h, CMat* gram);

/// out = m^H v without materializing the Hermitian transpose or any
/// temporary (out.size() must equal m.cols()).  This is the rotation
/// kernel (ybar = Q^H y) of the zero-allocation detection grids; the
/// span-in/span-out shape also serves the shard layer, which rotates the
/// row slice of y that its antenna cluster observed.
inline void hermitian_mul_into(CMatView m, std::span<const cplx> v,
                               std::span<cplx> out) {
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  assert(out.size() == cols && v.size() == rows);
  for (std::size_t i = 0; i < cols; ++i) out[i] = cplx{0.0, 0.0};
  const cplx* data = m.data();
  for (std::size_t j = 0; j < rows; ++j) {
    const cplx vj = v[j];
    const cplx* row = data + j * cols;
    for (std::size_t i = 0; i < cols; ++i) out[i] += std::conj(row[i]) * vj;
  }
}

}  // namespace flexcore::linalg
