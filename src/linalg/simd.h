// Split-complex structure-of-arrays helpers for the lane-parallel kernel
// engine (detect/path_kernels.h).
//
// The convention: a sequence of complex numbers that a hot kernel walks
// lane-parallel is stored as two contiguous scalar arrays (re[], im[])
// instead of interleaved std::complex — the layout CPU SIMD units want
// (every lane loads from the same array at consecutive offsets) and the
// CPU analogue of the paper's SIMT registers.  Split arithmetic also
// sidesteps libstdc++'s Annex-G complex multiply/divide helpers
// (__muldc3 and friends): a split multiply is four independent scalar
// multiplies the auto-vectorizer can fuse across lanes, with the exact
// same finite-value results as std::complex.
//
// `kSimdLanes` is the block width the path kernels evaluate per call:
// wide enough to fill an AVX-512 register of doubles (16 lanes would gain
// little and double the tail waste), and a multiple of every narrower
// vector width so the tail handling stays in one place.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/types.h"

namespace flexcore::linalg {

/// Paths evaluated per path_metric_block call (lanes per block).
inline constexpr std::size_t kSimdLanes = 8;

/// Lanes per block of the int16 quantized tier: the same register budget
/// holds twice as many 32-bit accumulator lanes as doubles, so the i16
/// plans block their paths twice as wide (detect::PathPlanI16::kLanes).
inline constexpr std::size_t kSimdLanesI16 = 2 * kSimdLanes;

/// Rounds a count up to whole blocks of kSimdLanes.
inline constexpr std::size_t simd_blocks(std::size_t n) noexcept {
  return (n + kSimdLanes - 1) / kSimdLanes;
}

/// Rounds a count up to whole blocks of `lanes` (i16 tier: kSimdLanesI16).
inline constexpr std::size_t simd_blocks_of(std::size_t n,
                                            std::size_t lanes) noexcept {
  return (n + lanes - 1) / lanes;
}

/// A complex sequence stored as two parallel scalar arrays, in precision T
/// (double for the exact tier, float for the reduced-precision tier).
template <typename T>
struct SplitVec {
  std::vector<T> re, im;

  std::size_t size() const noexcept { return re.size(); }

  void resize(std::size_t n) {
    re.resize(n);
    im.resize(n);
  }

  void clear() {
    re.clear();
    im.clear();
  }

  /// Narrowing element store (exact for T = double).
  void set(std::size_t i, cplx z) {
    re[i] = static_cast<T>(z.real());
    im[i] = static_cast<T>(z.imag());
  }

  cplx get(std::size_t i) const {
    return cplx{static_cast<double>(re[i]), static_cast<double>(im[i])};
  }

  /// Packs an interleaved complex sequence into the split layout.
  void assign(std::span<const cplx> src) {
    resize(src.size());
    for (std::size_t i = 0; i < src.size(); ++i) set(i, src[i]);
  }
};

}  // namespace flexcore::linalg
