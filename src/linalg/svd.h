// Singular values and condition numbers of small complex matrices.
//
// The paper repeatedly reasons about channel conditioning ("a low condition
// number is an indicator of a favorable channel", §5.1); the trace generator
// and several tests use these routines to quantify that.
#pragma once

#include "linalg/matrix.h"

namespace flexcore::linalg {

/// All singular values of `a` (descending), via one-sided Jacobi rotations.
/// Accurate to ~1e-10 for the small matrices used here.
RVec singular_values(const CMat& a);

/// 2-norm condition number sigma_max / sigma_min.  Returns +inf when the
/// smallest singular value underflows.
double condition_number(const CMat& a);

}  // namespace flexcore::linalg
