#include "api/cell.h"

namespace flexcore::api {

namespace {

PipelineConfig pipeline_config_of(const CellConfig& cfg,
                                  parallel::ThreadPool* pool) {
  PipelineConfig pcfg;
  pcfg.detector = cfg.detector;
  pcfg.qam_order = cfg.qam_order;
  pcfg.shared_pool = pool;  // all cells multiplex the runtime's PE pool
  pcfg.tuning = cfg.tuning;
  return pcfg;
}

}  // namespace

Cell::Cell(std::size_t id, const CellConfig& cfg, parallel::ThreadPool* pool)
    : id_(id), cfg_(cfg), pipe_(pipeline_config_of(cfg, pool)) {
  if (cfg_.name.empty()) cfg_.name = "cell" + std::to_string(id);
}

}  // namespace flexcore::api
