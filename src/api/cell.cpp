#include "api/cell.h"

namespace flexcore::api {

namespace {

// Folds the cell-level precision knob into the tuning ONCE, up front:
// everything downstream — the pipeline's detector construction and
// Runtime::reconfigure resolving swaps against cfg_.tuning — then reads
// the tier from one place.
CellConfig normalized(CellConfig cfg) {
  if (cfg.precision != detect::Precision::kFloat64) {
    cfg.tuning.precision = cfg.precision;
  }
  return cfg;
}

PipelineConfig pipeline_config_of(const CellConfig& cfg,
                                  parallel::ThreadPool* pool) {
  PipelineConfig pcfg;
  pcfg.detector = cfg.detector;
  pcfg.qam_order = cfg.qam_order;
  pcfg.shared_pool = pool;  // all cells multiplex the runtime's PE pool
  pcfg.tuning = cfg.tuning;  // carries the folded precision tier
  return pcfg;
}

}  // namespace

Cell::Cell(std::size_t id, const CellConfig& cfg, parallel::ThreadPool* pool)
    : id_(id), cfg_(normalized(cfg)), pipe_(pipeline_config_of(cfg_, pool)) {
  if (cfg_.name.empty()) cfg_.name = "cell" + std::to_string(id);
}

bool Cell::note_outcome(Outcome outcome) {
  health_ring_[health_idx_] = outcome;
  health_idx_ = (health_idx_ + 1) % kHealthWindow;
  if (health_len_ < kHealthWindow) ++health_len_;

  std::size_t shed = 0, bad = 0;
  for (std::size_t i = 0; i < health_len_; ++i) {
    shed += health_ring_[i] == Outcome::kShed;
    bad += health_ring_[i] == Outcome::kBad;
  }
  // Verdict ladder (values mirror api::CellHealth):
  //   * a BURST of bad frames (>= 4 of the last 16) means the cell's input
  //     is broken, not merely noisy — quarantining;
  //   * any bad frame, or sustained shedding (>= 4), degrades;
  //   * a full window of clean completions restores health (the old
  //     outcomes age out of the ring — built-in hysteresis).
  int verdict = 0;  // kHealthy
  if (bad >= 4) {
    verdict = 2;  // kQuarantining
  } else if (bad >= 1 || shed >= 4) {
    verdict = 1;  // kDegraded
  }
  if (verdict == health_) return false;
  health_ = verdict;
  ++health_transitions_;
  return true;
}

}  // namespace flexcore::api
