#include "api/cell.h"

namespace flexcore::api {

namespace {

// Folds the cell-level precision knob into the tuning ONCE, up front:
// everything downstream — the pipeline's detector construction and
// Runtime::reconfigure resolving swaps against cfg_.tuning — then reads
// the tier from one place.
CellConfig normalized(CellConfig cfg) {
  if (cfg.precision != detect::Precision::kFloat64) {
    cfg.tuning.precision = cfg.precision;
  }
  return cfg;
}

PipelineConfig pipeline_config_of(const CellConfig& cfg,
                                  parallel::ThreadPool* pool) {
  PipelineConfig pcfg;
  pcfg.detector = cfg.detector;
  pcfg.qam_order = cfg.qam_order;
  pcfg.shared_pool = pool;  // all cells multiplex the runtime's PE pool
  pcfg.tuning = cfg.tuning;  // carries the folded precision tier
  return pcfg;
}

}  // namespace

Cell::Cell(std::size_t id, const CellConfig& cfg, parallel::ThreadPool* pool)
    : id_(id), cfg_(normalized(cfg)), pipe_(pipeline_config_of(cfg_, pool)) {
  if (cfg_.name.empty()) cfg_.name = "cell" + std::to_string(id);
}

}  // namespace flexcore::api
