// Asynchronous multi-cell access-point runtime: submit/poll detection.
//
// FlexCore's premise is that a large-MIMO access point keeps many
// independent detection problems in flight at once across a sea of
// processing elements.  UplinkPipeline::detect_frame is the single-cell
// building block — one blocking call per frame; api::Runtime is the
// serving layer on top of it:
//
//   api::RuntimeConfig rcfg;
//   rcfg.threads = 8;            // ONE shared PE pool for every cell
//   rcfg.dispatchers = 2;        // frames decoded concurrently
//   rcfg.queue_capacity = 16;    // bounded admission queue
//   rcfg.policy = api::QueuePolicy::kDeadlineExpire;
//   api::Runtime rt(rcfg);
//
//   api::Cell& a = rt.open_cell({.detector = "flexcore-64"});
//   api::Cell& b = rt.open_cell({.detector = "fcsd-L1", .qam_order = 16});
//
//   api::FrameTicket t = rt.submit(a, job, /*deadline_us=*/500);
//   ...                                    // do other work
//   if (const api::FrameResult* r = t.try_get()) consume(*r);   // poll
//   t.wait();                              // or block; or on_complete(cb)
//
// Guarantees:
//   * Per-cell FIFO — frames of one cell are detected strictly in
//     submission order, never concurrently with each other, so results are
//     bit-identical to calling detect_frame synchronously on that cell.
//     (Frames shed at admission — drops, queue-side expiries — complete
//     immediately rather than in dispatch order.)
//   * Cross-cell concurrency — up to `dispatchers` cells decode at once,
//     each frame's task grid multiplexed onto the shared pool (the
//     ThreadPool's job-scoped counters let independent grids overlap).
//   * Backpressure — the admission queue is bounded by `queue_capacity`;
//     when full, `policy` decides: kBlock (submit waits for space),
//     kDropNewest (the incoming frame completes instantly with kDropped),
//     kDeadlineExpire (stale queued frames complete with kExpired to make
//     room; submit blocks only if nothing is stale).
//   * Deadlines — under kDeadlineExpire a frame whose deadline passed
//     before dispatch completes with kExpired and never occupies workers;
//     its result is never partially written (try_get() stays null).  A
//     frame already being detected always runs to completion.  Other
//     policies ignore deadlines.
#pragma once

#include <array>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/cell.h"
#include "api/uplink_pipeline.h"
#include "obs/obs.h"
#include "parallel/thread_pool.h"

namespace flexcore::api {

/// Admission-queue behaviour when the bounded queue is full.
enum class QueuePolicy {
  /// submit() blocks until a slot frees.  With dispatchers == 0 a slot
  /// only frees when SOME thread calls run_one(): a single-threaded
  /// poll-mode caller must pump before over-filling the queue, or the
  /// blocking submit deadlocks (nothing else can drain it).
  kBlock,
  kDropNewest,  ///< the incoming frame is rejected (ticket -> kDropped)
  /// Expire stale queued frames to make room (and honour per-frame
  /// deadlines at dispatch time).  A full queue of frames WITHOUT
  /// deadlines (deadline_us == 0) can never go stale, so submit then
  /// degrades to kBlock semantics — including kBlock's poll-mode caveat
  /// above: arm deadlines or pump run_one() when dispatchers == 0.
  kDeadlineExpire
};

const char* to_string(QueuePolicy policy);

/// Terminal (and initial) states of a submitted frame.
enum class TicketStatus {
  kPending,  ///< queued or currently being detected
  kDone,     ///< detected; result available
  kDropped,  ///< rejected by kDropNewest admission
  kExpired,  ///< deadline passed before dispatch (kDeadlineExpire)
  kFailed,   ///< detection threw; see FrameTicket::error()
  /// Dispatch-side numeric quarantine: the frame carried non-finite data
  /// or a channel QR could not factorize (api::NonFiniteError /
  /// api::NumericError).  A quarantined frame terminates cleanly — no
  /// partial result, the cell's preprocessing caches are invalidated, and
  /// the next frame of the cell is detected from scratch.  See
  /// FrameTicket::error() for the offending coordinates.
  kQuarantined
};

const char* to_string(TicketStatus status);

/// Watchdog verdict on one cell's recent terminal outcomes (CellStats::
/// health).  Computed over a fixed ring of the cell's last completions:
///   kHealthy      — completing normally.
///   kDegraded     — shedding load (drops/expiries) but detection works.
///   kQuarantining — repeated numeric quarantines / failures: the cell's
///                   input is suspect (corrupt fronthaul, broken channel
///                   estimates), not merely overloaded.
enum class CellHealth { kHealthy, kDegraded, kQuarantining };

const char* to_string(CellHealth health);

struct RuntimeConfig {
  /// Worker threads of the ONE pool shared by every cell's task grids
  /// (0 = all hardware threads) — the PE pool of the paper, serving all
  /// cells at once.
  std::size_t threads = 0;
  /// Dispatcher threads = frames decoded concurrently (each drives one
  /// cell's detect_frame at a time).  0 disables background dispatch: the
  /// caller pumps frames explicitly with run_one() — the deterministic
  /// mode tests and single-threaded embeddings use.
  std::size_t dispatchers = 2;
  /// Bound on frames queued across all cells (in-flight frames excluded).
  /// Must be >= 1.
  std::size_t queue_capacity = 16;
  QueuePolicy policy = QueuePolicy::kBlock;
  /// Depth of the synchronous validation submit() runs: true (default)
  /// scans every channel/payload entry for NaN/Inf at the call site
  /// (FrameCheck::kFull — malformed jobs throw in the submitter);
  /// false checks shapes only, letting non-finite frames reach the
  /// dispatch path where they complete as kQuarantined.  Fault-injection
  /// harnesses run with false so corruption exercises the quarantine
  /// machinery end to end; detect_frame itself ALWAYS runs the full scan.
  bool admission_scan = true;
};

/// Fixed-bucket latency histogram: bucket 0 counts [0, 1) us, bucket i
/// counts [2^(i-1), 2^i) us, the last bucket is open-ended.  Quantiles
/// report the upper bucket edge, i.e. a conservative power-of-two estimate
/// — deterministic, allocation-free, and cheap enough for the submit path.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(double us) {
    ++buckets_[bucket_of(us)];
    ++count_;
    sum_us_ += us;
  }

  std::uint64_t count() const noexcept { return count_; }
  double mean_us() const noexcept {
    return count_ > 0 ? sum_us_ / static_cast<double>(count_) : 0.0;
  }

  /// Upper edge of the bucket containing the q-quantile sample (q in
  /// [0, 1]); 0 when empty.
  double quantile_us(double q) const noexcept {
    if (count_ == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // 1-based rank of the q-quantile sample: ceil(q * count), min 1.
    auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (target == 0) target = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= target) return upper_edge_us(i);
    }
    return upper_edge_us(kBuckets - 1);
  }

  /// Linearly-interpolated quantile: instead of the conservative upper
  /// edge, the estimate walks into the winning bucket proportionally to
  /// the target rank's position among that bucket's samples — a smoother
  /// estimator for the per-stage breakdowns.  quantile_us stays the
  /// conservative power-of-two answer tests pin exact values against.
  double quantile_interp_us(double q) const noexcept {
    if (count_ == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (target == 0) target = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (buckets_[i] == 0) continue;
      if (seen + buckets_[i] >= target) {
        // Bucket i spans [lower, upper); bucket 0 starts at 0 and the last
        // bucket is open-ended, so its "upper" is twice its lower edge.
        const double lower = i == 0 ? 0.0 : upper_edge_us(i - 1);
        const double upper = i + 1 < kBuckets ? upper_edge_us(i)
                                              : 2.0 * upper_edge_us(i - 1);
        const double frac = static_cast<double>(target - seen) /
                            static_cast<double>(buckets_[i]);
        return lower + (upper - lower) * frac;
      }
      seen += buckets_[i];
    }
    return upper_edge_us(kBuckets - 1);
  }

  /// Accumulates another histogram into this one (bucket-wise; counts and
  /// sums add) — how ShardedRuntime folds its shard-stage distribution
  /// into the inner runtime's per-stage snapshot, and how bench harnesses
  /// aggregate across sweeps.
  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_us_ += other.sum_us_;
  }

  static std::size_t bucket_of(double us) noexcept {
    if (!(us >= 1.0)) return 0;  // also catches NaN / negatives
    std::size_t i = 1;
    double edge = 2.0;  // bucket i spans [2^(i-1), 2^i)
    while (i + 1 < kBuckets && us >= edge) {
      ++i;
      edge *= 2.0;
    }
    return i;
  }

  static double upper_edge_us(std::size_t bucket) noexcept {
    double edge = 1.0;
    for (std::size_t i = 0; i < bucket; ++i) edge *= 2.0;
    return edge;
  }

  const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_us_ = 0.0;
};

/// Per-antenna-cluster counters of a decentralized (sharded) runtime.
/// Populated only by api::ShardedRuntime::stats() — a monolithic Runtime
/// reports an empty `shards` vector.  Consistency invariant (checked by
/// tests): every shard preprocesses every sharded-path frame exactly once,
/// so `frames` is identical across shards and equals the number of frames
/// submitted through the decentralized path — the C=1 bypass never reaches
/// the shard stage, while frames later shed by the inner admission queue
/// were still preprocessed first (the fronthaul runs before admission).
struct ShardStats {
  std::size_t shard_id = 0;
  std::size_t threads = 0;         ///< workers of this shard's pool
  std::size_t pinned_workers = 0;  ///< workers whose CPU pin took effect
  std::uint64_t frames = 0;        ///< frames this shard preprocessed
  std::uint64_t partials = 0;      ///< per-subcarrier partial QRs computed
  std::uint64_t rows_processed = 0;  ///< antenna rows factorized, summed
  double busy_seconds = 0.0;       ///< wall time inside the shard stage
  /// Prep attempts this shard failed (numeric faults in the partial QR or
  /// injected shard failures) — each triggers the submit-side
  /// retry-then-bypass ladder.
  std::uint64_t faults = 0;
};

/// Point-in-time snapshot of the runtime's counters (Runtime::stats()).
struct RuntimeStats {
  std::vector<CellStats> cells;
  /// Per-antenna-cluster preprocessing counters; empty unless the stats
  /// came from a ShardedRuntime (see ShardStats).
  std::vector<ShardStats> shards;
  std::uint64_t frames_in = 0;  ///< sums of the per-cell counters
  std::uint64_t frames_out = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_expired = 0;
  std::uint64_t frames_failed = 0;
  std::uint64_t frames_quarantined = 0;  ///< completed kQuarantined
  /// Sharded-runtime degradation counters (0 on a monolithic Runtime):
  /// shard-stage fan-outs re-run after a shard fault, and frames rerouted
  /// merged-monolithic because the fabric failed twice or stalled past the
  /// budget.
  std::uint64_t shard_retries = 0;
  std::uint64_t shard_bypasses = 0;
  std::uint64_t reconfigs = 0;  ///< reconfigurations applied, all cells
  std::size_t queue_depth = 0;  ///< queued across all cells (not in flight)
  std::size_t in_flight = 0;    ///< frames currently being detected
  /// submit -> completion latency of kDone frames (queue wait included).
  std::uint64_t latency_count = 0;
  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
  /// The full latency distribution: bucket i counts frames in
  /// [LatencyHistogram::upper_edge_us(i-1), upper_edge_us(i)) — see
  /// LatencyHistogram for the exact edges.  Sums to latency_count.
  std::array<std::uint64_t, LatencyHistogram::kBuckets> latency_buckets{};
  /// Per-stage latency breakdown of kDone frames, indexed by obs::Stage.
  /// Always on (independent of the FLEXCORE_OBS span gating — recording is
  /// an O(1) array bump inside sections the runtime already locks).  The
  /// dispatch-side stages (kQueueWait, kPreprocess, kPathGrid,
  /// kReconstruct, kComplete) each count exactly latency_count samples —
  /// a reuse-preprocessing hit records a 0 us preprocess sample rather
  /// than skipping it, so the breakdown always sums consistently.
  /// kShardPartialQr is populated only by ShardedRuntime and counts every
  /// sharded-path frame (measured at submit, before admission can shed
  /// the frame, so its count can exceed latency_count under shedding).
  std::array<LatencyHistogram, obs::kStageCount> stage_latency{};
  const LatencyHistogram& stage(obs::Stage s) const noexcept {
    return stage_latency[static_cast<std::size_t>(s)];
  }
};

/// Future-like handle to one submitted frame.  Cheap to copy (shared
/// state); safe to poll/wait from any thread.  The FrameResult lives in the
/// shared state: pointers from try_get() stay valid while any handle to
/// this ticket exists.
class FrameTicket {
 public:
  FrameTicket() = default;  // empty handle; valid() == false
  ~FrameTicket();
  FrameTicket(const FrameTicket&) = default;
  FrameTicket(FrameTicket&&) noexcept = default;
  FrameTicket& operator=(const FrameTicket&) = default;
  FrameTicket& operator=(FrameTicket&&) noexcept = default;

  bool valid() const noexcept { return st_ != nullptr; }

  /// Current status (kPending until the frame reaches a terminal state).
  TicketStatus status() const;

  /// Blocks until the frame reaches a terminal state; returns it.
  TicketStatus wait() const;

  /// Bounded wait: blocks at most `timeout`, returning the status observed
  /// at the end — kPending iff the wait timed out.  The bound a caller
  /// puts on a wedged runtime: soak harnesses assert zero ticket loss with
  /// it instead of hanging on wait().
  TicketStatus wait_for(std::chrono::steady_clock::duration timeout) const;

  /// Poll: the result when status() == kDone and it has not been take()n,
  /// nullptr otherwise (pending, dropped, expired and failed frames never
  /// expose a partial result; a consumed one is gone, not empty).
  const FrameResult* try_get() const;

  /// Moves the result out (requires status kDone — call wait() first —
  /// and that it was not already taken; throws std::logic_error
  /// otherwise).  Single-consumer: afterwards try_get()/late callbacks
  /// observe nullptr.  Briefly waits out any late-registered callback
  /// still reading the result, so the move never races a reader.
  FrameResult take();

  /// Failure message when status() is kFailed or kQuarantined (for a
  /// quarantine: the offending coordinates from the numeric scan), ""
  /// otherwise.
  std::string error() const;

  /// Registers a callback fired exactly once when the frame reaches a
  /// terminal state, with the final status and the result (non-null only
  /// for kDone).  Runs on the thread that completes the frame — a
  /// dispatcher, the run_one() caller, or (for drops/expiries decided at
  /// admission) the submitting thread; if the ticket is already terminal it
  /// runs immediately on the calling thread.  Callbacks of one cell's
  /// DISPATCHED frames fire in FIFO submission order (the cell is not
  /// released to its next frame until the callbacks return — keep them
  /// light); frames shed at ADMISSION (kDropNewest rejections, queue-side
  /// kDeadlineExpire expiries) complete immediately on the shedding
  /// thread, out of band with the cell's dispatch order.  Do not submit
  /// with a kBlock runtime from inside a callback (it can deadlock a
  /// dispatcher), and do not call take() on the same ticket from inside
  /// its own callback.  Callbacks should not throw: an exception on the
  /// completion path is swallowed (it cannot be delivered anywhere
  /// useful); one thrown from an immediate fire propagates to the
  /// registering caller.
  void on_complete(std::function<void(TicketStatus, const FrameResult*)> fn);

  /// Submission sequence number within the ticket's cell (0-based).
  std::uint64_t sequence() const;
  std::size_t cell_id() const;

 private:
  friend class Runtime;
  explicit FrameTicket(std::shared_ptr<TicketState> st);
  void release_late_reader();
  std::shared_ptr<TicketState> st_;
};

/// The asynchronous multi-cell runtime.  Thread-safe:
/// submit/reconfigure/stats/drain may be called from any thread; open_cell
/// must not race with submit.
class Runtime {
 public:
  explicit Runtime(const RuntimeConfig& cfg = {});
  /// Drains every admitted frame (see drain()), then joins the dispatchers.
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Opens a per-cell session.  The reference stays valid for the
  /// runtime's lifetime.
  Cell& open_cell(const CellConfig& cfg);

  /// Submits one frame for the cell.  Validates the job synchronously
  /// (throws std::invalid_argument on degenerate shapes, std::logic_error
  /// after shutdown began) and returns a ticket immediately — unless the
  /// queue is full and the policy blocks.  `deadline_us` > 0 arms a
  /// deadline that many microseconds from now (kDeadlineExpire only;
  /// 0 = none).  The job's channel/ys spans are BORROWED: they must stay
  /// valid until the ticket reaches a terminal state.
  FrameTicket submit(Cell& cell, const FrameJob& job,
                     std::uint64_t deadline_us = 0);

  /// Enqueues an atomic detector swap for the cell, in FIFO position:
  /// every frame submitted before this call is detected with the old spec,
  /// every frame submitted after with the new one — on any dispatcher
  /// count, bit-deterministically.  The swap's detector is BUILT by this
  /// call (off the dispatch path, outside the runtime lock) — construction
  /// is the validation (std::invalid_argument on unknown/invalid specs,
  /// std::logic_error after shutdown began), and an unset rc.tuning
  /// resolves to the tuning in effect NOW, not at apply time, so queued
  /// earlier tuning changes cannot alter what was validated.  The finished
  /// detector is adopted by the dispatch machinery once the cell's earlier
  /// frames completed, and the returned ticket completes kDone (empty
  /// FrameResult) at that moment.
  /// Reconfigurations are control messages: they bypass the admission
  /// capacity and every shedding policy (never dropped, never expired), do
  /// not count as frames in RuntimeStats, and reset the cell's coherence
  /// warmup (the first frame after a swap re-preprocesses even under
  /// reuse_preprocessing).
  FrameTicket reconfigure(Cell& cell, const CellReconfig& rc);

  /// Manual pump: dispatches ONE queued frame on the calling thread
  /// (detection runs here, its grid still fans across the shared pool).
  /// Returns false when nothing is queued.  This is the poll-mode driver
  /// for dispatchers == 0, and composes with background dispatchers.
  bool run_one();

  /// Blocks until no frame is queued or in flight.  With dispatchers == 0
  /// the calling thread pumps the queue itself.
  void drain();

  RuntimeStats stats() const;

  parallel::ThreadPool& pool() noexcept { return pool_; }
  const RuntimeConfig& config() const noexcept { return cfg_; }
  std::size_t cell_count() const;

 private:
  void dispatcher_loop();
  /// Pops the next runnable cell's front entry and runs/expires/applies
  /// it.  Pre: lock held, runnable_ non-empty.  Unlocks while detecting.
  void process_next(std::unique_lock<std::mutex>& lock);
  /// Applies a popped reconfig entry (cell already marked busy).  Unlocks
  /// while swapping the detector; returns with the lock held again.
  void apply_reconfig(std::unique_lock<std::mutex>& lock, Cell* cell,
                      Cell::Pending& pf);
  /// Releases a busy cell after its entry completed: requeues it when more
  /// entries wait, wakes drain() waiters.  Pre: lock held.
  void release_cell_locked(Cell* cell);
  /// Earliest deadline among all queued frames (time_point::max() when
  /// none is armed).  Pre: lock held.
  std::chrono::steady_clock::time_point earliest_deadline_locked() const;
  /// Removes queued frames whose deadline passed (kDeadlineExpire helper);
  /// completes their tickets after dropping the lock.  Returns whether any
  /// slot was freed.
  bool expire_stale(std::unique_lock<std::mutex>& lock);
  /// Records one dispatch-stage latency sample.  Pre: mu_ held.
  void stage_record(obs::Stage stage, double us) {
    stage_latency_[static_cast<std::size_t>(stage)].record(us);
  }

  RuntimeConfig cfg_;
  parallel::ThreadPool pool_;

  mutable std::mutex mu_;
  std::condition_variable runnable_cv_;      ///< dispatchers wait for work
  std::condition_variable space_cv_;         ///< blocked submitters
  mutable std::condition_variable drain_cv_; ///< drain() waiters
  std::vector<std::unique_ptr<Cell>> cells_;
  std::deque<Cell*> runnable_;  ///< cells with queued entries, none in flight
  std::size_t queued_total_ = 0;      ///< queued FRAMES (capacity bound)
  std::size_t queued_reconfigs_ = 0;  ///< queued reconfigs (uncapped)
  std::size_t in_flight_ = 0;         ///< frames being detected
  std::size_t in_flight_reconfigs_ = 0;  ///< reconfigs being applied
  bool shutdown_ = false;
  LatencyHistogram latency_;
  /// Per-stage breakdown behind mu_ (see RuntimeStats::stage_latency).
  std::array<LatencyHistogram, obs::kStageCount> stage_latency_{};

  std::vector<std::thread> dispatchers_;
};

}  // namespace flexcore::api
