#include "api/detector_registry.h"

#include <charconv>
#include <optional>
#include <utility>

#include "core/adaptive_kbest.h"
#include "detect/fcsd.h"
#include "detect/kbest.h"
#include "detect/linear.h"
#include "detect/sic.h"
#include "detect/trellis.h"

namespace flexcore::api {

namespace {

using modulation::Constellation;

const Constellation& require_constellation(const DetectorConfig& cfg,
                                           std::string_view spec) {
  if (cfg.constellation == nullptr) {
    throw std::invalid_argument("api::make_detector(\"" + std::string(spec) +
                                "\"): DetectorConfig.constellation is null");
  }
  return *cfg.constellation;
}

/// Strips a trailing precision-tier suffix (":fp32" / ":fp64" / ":i16")
/// off a spec, recording the tier in *precision (left untouched when no
/// suffix is present, so DetectorConfig::precision stays the default).
/// Only the path-parallel factories call this — "zf:fp32" and "zf:i16"
/// stay unknown specs.
std::string_view strip_precision(std::string_view spec,
                                 detect::Precision* precision) {
  if (spec.ends_with(":fp32")) {
    *precision = detect::Precision::kFloat32;
    return spec.substr(0, spec.size() - 5);
  }
  if (spec.ends_with(":fp64")) {
    *precision = detect::Precision::kFloat64;
    return spec.substr(0, spec.size() - 5);
  }
  if (spec.ends_with(":i16")) {
    *precision = detect::Precision::kInt16;
    return spec.substr(0, spec.size() - 4);
  }
  return spec;
}

/// Tier resolution for the FlexCore families, one rule in one place:
/// flexcore.precision < DetectorConfig.precision < spec suffix.  Returns
/// the spec with any suffix stripped, with the resolved tier in
/// fcfg->precision.
std::string_view resolve_flexcore_tier(std::string_view spec,
                                       const DetectorConfig& cfg,
                                       core::FlexCoreConfig* fcfg) {
  if (cfg.precision != detect::Precision::kFloat64) {
    fcfg->precision = cfg.precision;
  }
  return strip_precision(spec, &fcfg->precision);
}

/// Parses "<family>" (returns nullopt in *value) or "<family>-<digits>"
/// (returns the parsed number).  Returns false when spec is neither.
bool match_family(std::string_view spec, std::string_view family,
                  std::optional<std::size_t>* value) {
  if (spec == family) {
    value->reset();
    return true;
  }
  if (spec.size() <= family.size() + 1 ||
      spec.substr(0, family.size()) != family ||
      spec[family.size()] != '-') {
    return false;
  }
  const std::string_view digits = spec.substr(family.size() + 1);
  std::size_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), parsed);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) return false;
  *value = parsed;
  return true;
}

/// Exact-name factory for parameterless detectors, with optional alias.
template <typename Make>
DetectorRegistry::Factory exact(std::string name, std::string alias,
                                Make make) {
  return [name = std::move(name), alias = std::move(alias),
          make](std::string_view spec, const DetectorConfig& cfg)
             -> std::unique_ptr<detect::Detector> {
    if (spec != name && (alias.empty() || spec != alias)) return nullptr;
    return make(require_constellation(cfg, spec), cfg);
  };
}

void register_builtins(DetectorRegistry& r) {
  r.add({"zf", "zf", "zf",
         exact("zf", "", [](const Constellation& c, const DetectorConfig&) {
           return std::make_unique<detect::LinearDetector>(
               c, detect::LinearKind::kZeroForcing);
         })});
  r.add({"mmse", "mmse", "mmse",
         exact("mmse", "", [](const Constellation& c, const DetectorConfig&) {
           return std::make_unique<detect::LinearDetector>(
               c, detect::LinearKind::kMmse);
         })});
  r.add({"zf-sic", "zf-sic", "zf-sic (alias: sic)",
         exact("zf-sic", "sic",
               [](const Constellation& c, const DetectorConfig&) {
                 return std::make_unique<detect::SicDetector>(c);
               })});
  r.add({"trellis50", "trellis50", "trellis50 (alias: trellis)",
         exact("trellis50", "trellis",
               [](const Constellation& c, const DetectorConfig&) {
                 return std::make_unique<detect::TrellisDetector>(c);
               })});
  r.add({"ml-sd", "ml-sd", "ml-sd (alias: ml; options: cfg.ml_sphere)",
         exact("ml-sd", "ml",
               [](const Constellation& c, const DetectorConfig& cfg) {
                 return std::make_unique<detect::MlSphereDecoder>(
                     c, cfg.ml_sphere);
               })});

  r.add({"fcsd", "fcsd-L1", "fcsd-L<L>[:fp32|:i16] (bare = L1)",
         [](std::string_view spec, const DetectorConfig& cfg)
             -> std::unique_ptr<detect::Detector> {
           detect::Precision precision = cfg.precision;
           const std::string_view stem = strip_precision(spec, &precision);
           std::size_t levels = 1;
           if (stem != "fcsd") {
             constexpr std::string_view kPrefix = "fcsd-L";
             if (stem.size() <= kPrefix.size() ||
                 stem.substr(0, kPrefix.size()) != kPrefix) {
               return nullptr;
             }
             const std::string_view digits = stem.substr(kPrefix.size());
             const auto [ptr, ec] = std::from_chars(
                 digits.data(), digits.data() + digits.size(), levels);
             if (ec != std::errc() ||
                 ptr != digits.data() + digits.size()) {
               return nullptr;
             }
           }
           return std::make_unique<detect::FcsdDetector>(
               require_constellation(cfg, spec), levels, precision);
         }});

  r.add({"kbest", "kbest-8", "kbest-<K> (bare = K8)",
         [](std::string_view spec, const DetectorConfig& cfg)
             -> std::unique_ptr<detect::Detector> {
           std::optional<std::size_t> k;
           if (!match_family(spec, "kbest", &k)) return nullptr;
           if (k.has_value() && *k == 0) {
             throw std::invalid_argument(
                 "api::make_detector: kbest needs K >= 1");
           }
           return std::make_unique<detect::KBestDetector>(
               require_constellation(cfg, spec), k.value_or(8));
         }});

  r.add({"akbest", "akbest-16",
         "akbest-<budget> (bare = 16; Pe model: cfg.flexcore.pe_model)",
         [](std::string_view spec, const DetectorConfig& cfg)
             -> std::unique_ptr<detect::Detector> {
           std::optional<std::size_t> budget;
           if (!match_family(spec, "akbest", &budget)) return nullptr;
           if (budget.has_value() && *budget == 0) {
             throw std::invalid_argument(
                 "api::make_detector: akbest needs a budget >= 1");
           }
           return std::make_unique<core::AdaptiveKBestDetector>(
               require_constellation(cfg, spec), budget.value_or(16),
               cfg.flexcore.pe_model);
         }});

  r.add({"flexcore", "flexcore-64",
         "flexcore[-<PEs>][:fp32|:i16] (base config: cfg.flexcore)",
         [](std::string_view spec, const DetectorConfig& cfg)
             -> std::unique_ptr<detect::Detector> {
           core::FlexCoreConfig fcfg = cfg.flexcore;
           const std::string_view stem =
               resolve_flexcore_tier(spec, cfg, &fcfg);
           std::optional<std::size_t> pes;
           if (!match_family(stem, "flexcore", &pes)) return nullptr;
           fcfg.adaptive_threshold = 0.0;  // the spec family decides
           if (pes.has_value()) fcfg.num_pes = *pes;
           return std::make_unique<core::FlexCoreDetector>(
               require_constellation(cfg, spec), fcfg);
         }});

  r.add({"a-flexcore", "a-flexcore-64",
         "a-flexcore[-<PEs>][:fp32|:i16] (threshold: "
         "cfg.flexcore.adaptive_threshold or cfg.adaptive_threshold)",
         [](std::string_view spec, const DetectorConfig& cfg)
             -> std::unique_ptr<detect::Detector> {
           core::FlexCoreConfig fcfg = cfg.flexcore;
           const std::string_view stem =
               resolve_flexcore_tier(spec, cfg, &fcfg);
           std::optional<std::size_t> pes;
           if (!match_family(stem, "a-flexcore", &pes)) return nullptr;
           if (fcfg.adaptive_threshold <= 0.0) {
             fcfg.adaptive_threshold =
                 cfg.adaptive_threshold > 0.0 ? cfg.adaptive_threshold : 0.95;
           }
           if (pes.has_value()) fcfg.num_pes = *pes;
           return std::make_unique<core::FlexCoreDetector>(
               require_constellation(cfg, spec), fcfg);
         }});

  // Surfaces the int16 quantized tier in list_specs()/canonical_names() as
  // its own entry, so drivers that iterate canonical specs exercise it.
  // Construction is handled by the "flexcore" factory above (which strips
  // the ":i16" suffix), so this factory never matches anything itself.
  r.add({"flexcore:i16", "flexcore-64:i16",
         "<path-parallel spec>:i16 (int16 quantized block kernels, "
         "LUT-compiled slicing)",
         [](std::string_view, const DetectorConfig&)
             -> std::unique_ptr<detect::Detector> { return nullptr; }});
}

}  // namespace

void DetectorRegistry::add(Entry entry) {
  entries_.push_back(std::move(entry));
}

std::unique_ptr<detect::Detector> DetectorRegistry::make(
    std::string_view spec, const DetectorConfig& cfg) const {
  for (const Entry& e : entries_) {
    if (auto det = e.factory(spec, cfg)) return det;
  }
  std::string msg =
      "api::make_detector: no detector \"" + std::string(spec) + "\"; known:";
  for (const Entry& e : entries_) {
    msg += ' ';
    msg += e.pattern;
    msg += ',';
  }
  if (!entries_.empty()) msg.pop_back();
  throw std::invalid_argument(msg);
}

std::vector<std::string> DetectorRegistry::canonical_names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.canonical);
  return names;
}

std::vector<std::string> DetectorRegistry::patterns() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.pattern);
  return out;
}

DetectorRegistry& DetectorRegistry::global() {
  static DetectorRegistry* registry = [] {
    auto* r = new DetectorRegistry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

std::unique_ptr<detect::Detector> make_detector(std::string_view spec,
                                                const DetectorConfig& cfg) {
  return DetectorRegistry::global().make(spec, cfg);
}

std::vector<std::string> list_specs() {
  return DetectorRegistry::global().canonical_names();
}

}  // namespace flexcore::api
