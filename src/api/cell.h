// One cell's session inside the asynchronous access-point runtime.
//
// A Cell is the per-cell building block api::Runtime composes: it owns the
// cell's detector spec, constellation and antenna geometry (via an
// UplinkPipeline running on the runtime's SHARED thread pool), the cell's
// FIFO queue of pending frames, and the per-cell counters surfaced in
// RuntimeStats.  Cells are created by Runtime::open_cell and live as long
// as the runtime; the runtime serializes all detection on one cell (frames
// of the same cell never run concurrently, which is what makes the
// bit-identical-to-synchronous guarantee and the FIFO completion order
// hold), while frames of DIFFERENT cells decode concurrently.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "api/uplink_pipeline.h"

namespace flexcore::api {

struct TicketState;  // defined in runtime.cpp; shared with FrameTicket

/// Configuration of one cell session.  Each cell owns its detector spec,
/// constellation and antenna geometry (implied by the jobs it receives);
/// `reuse_preprocessing` is the cell's channel-coherence policy.
struct CellConfig {
  /// Label reported in RuntimeStats (default: "cell<id>").
  std::string name;
  /// Registry spec for the cell's detector ("flexcore-64", "fcsd-L2", ...).
  std::string detector = "flexcore-64";
  int qam_order = 64;
  /// Detector tuning forwarded to api::make_detector (constellation field
  /// is ignored — the cell owns its constellation).
  DetectorConfig tuning;
  /// Static-channel coherence policy: when true, every frame after the
  /// cell's first reuses the per-subcarrier preprocessing (QR + path
  /// selection) of the previous frame — the caller asserts the channels are
  /// unchanged within the coherence interval.  A frame with a different
  /// subcarrier count re-preprocesses automatically (the pipeline guards
  /// the mismatch).  Independent of this policy, a submitted FrameJob with
  /// reuse_preprocessing = true keeps that request.
  bool reuse_preprocessing = false;
};

/// Per-cell counter snapshot inside RuntimeStats.  Consistency invariant
/// (checked by tests): frames_in == frames_out + frames_dropped +
/// frames_expired + frames_failed + queue_depth + in-flight (0 or 1).
struct CellStats {
  std::size_t cell_id = 0;
  std::string name;
  std::string detector;
  std::uint64_t frames_in = 0;       ///< submit() calls (incl. dropped)
  std::uint64_t frames_out = 0;      ///< completed Done
  std::uint64_t frames_dropped = 0;  ///< rejected by DropNewest admission
  std::uint64_t frames_expired = 0;  ///< completed Expired (DeadlineExpire)
  std::uint64_t frames_failed = 0;   ///< detection threw (status Failed)
  std::size_t queue_depth = 0;       ///< currently queued, not in flight
  std::size_t in_flight = 0;         ///< 0 or 1 (cells are serialized)
};

class Runtime;

/// A per-cell session handle.  Thread-safe to pass around; all mutation
/// happens through the owning Runtime (submit/dispatch), which guards the
/// queue and counters with its own lock.
class Cell {
 public:
  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  std::size_t id() const noexcept { return id_; }
  const CellConfig& config() const noexcept { return cfg_; }
  const modulation::Constellation& constellation() const noexcept {
    return pipe_.constellation();
  }

  /// The cell's pipeline.  The runtime serializes its own use of it; only
  /// touch it when no frames of this cell are queued or in flight (e.g.
  /// for set_channel-style warmup before submitting, or in tests).
  UplinkPipeline& pipeline() noexcept { return pipe_; }

 private:
  friend class Runtime;

  Cell(std::size_t id, const CellConfig& cfg, parallel::ThreadPool* pool);

  /// One admitted frame waiting for dispatch.  Everything below is guarded
  /// by the owning Runtime's mutex.
  struct Pending {
    FrameJob job;
    std::shared_ptr<TicketState> ticket;
    std::chrono::steady_clock::time_point submitted;
    /// time_point::max() when the frame carries no deadline.
    std::chrono::steady_clock::time_point deadline;
  };

  std::size_t id_;
  CellConfig cfg_;
  UplinkPipeline pipe_;
  std::deque<Pending> queue_;
  bool busy_ = false;       ///< a dispatcher is running this cell's frame
  bool scheduled_ = false;  ///< busy_ or sitting in the runnable list
  bool warm_ = false;       ///< a frame has run; coherence reuse is valid
  std::uint64_t next_seq_ = 0;
  std::uint64_t frames_in_ = 0;
  std::uint64_t frames_out_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_expired_ = 0;
  std::uint64_t frames_failed_ = 0;
};

}  // namespace flexcore::api
