// One cell's session inside the asynchronous access-point runtime.
//
// A Cell is the per-cell building block api::Runtime composes: it owns the
// cell's detector spec, constellation and antenna geometry (via an
// UplinkPipeline running on the runtime's SHARED thread pool), the cell's
// FIFO queue of pending frames, and the per-cell counters surfaced in
// RuntimeStats.  Cells are created by Runtime::open_cell and live as long
// as the runtime; the runtime serializes all detection on one cell (frames
// of the same cell never run concurrently, which is what makes the
// bit-identical-to-synchronous guarantee and the FIFO completion order
// hold), while frames of DIFFERENT cells decode concurrently.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "api/uplink_pipeline.h"

namespace flexcore::api {

struct TicketState;  // defined in runtime.cpp; shared with FrameTicket

/// Configuration of one cell session.  Each cell owns its detector spec,
/// constellation and antenna geometry (implied by the jobs it receives);
/// `reuse_preprocessing` is the cell's channel-coherence policy.
struct CellConfig {
  /// Label reported in RuntimeStats (default: "cell<id>").
  std::string name;
  /// Registry spec for the cell's detector ("flexcore-64", "fcsd-L2", ...).
  std::string detector = "flexcore-64";
  int qam_order = 64;
  /// Detector tuning forwarded to api::make_detector (constellation field
  /// is ignored — the cell owns its constellation).
  DetectorConfig tuning;
  /// Compute tier of the cell's path grids: kFloat32 runs the
  /// single-precision kernel tier and kInt16 the quantized int16 tier
  /// (forwarded to the cell's pipeline; a detector-spec suffix
  /// ":fp32"/":fp64"/":i16" still overrides).  The control plane's
  /// degrade ladder also reaches these tiers by emitting ":fp32" and then
  /// ":i16" specs under sustained load.
  detect::Precision precision = detect::Precision::kFloat64;
  /// Static-channel coherence policy: when true, every frame after the
  /// cell's first reuses the per-subcarrier preprocessing (QR + path
  /// selection) of the previous frame — the caller asserts the channels are
  /// unchanged within the coherence interval.  A frame with a different
  /// subcarrier count re-preprocesses automatically (the pipeline guards
  /// the mismatch).  Independent of this policy, a submitted FrameJob with
  /// reuse_preprocessing = true keeps that request.
  bool reuse_preprocessing = false;
};

/// An atomic detector swap for a live cell, applied by Runtime::reconfigure
/// in FIFO position: every frame submitted before it is detected with the
/// old spec, every frame after with the new one.  The constellation and
/// antenna geometry are NOT reconfigurable — a cell's QAM order is part of
/// its air interface, not its compute budget; open a new cell for that.
struct CellReconfig {
  /// Registry spec to switch to ("flexcore-32", "zf-sic", ...).
  std::string detector;
  /// When set, replaces the cell's detector tuning as well (the
  /// constellation field is ignored, as everywhere in the api layer).
  /// When unset, the swap keeps the tuning in effect when reconfigure was
  /// CALLED — not when it applies — so a queued earlier tuning change can
  /// never alter what this call validated.
  std::optional<DetectorConfig> tuning;
};

/// Per-cell counter snapshot inside RuntimeStats.  Consistency invariant
/// (checked by tests): frames_in == frames_out + frames_dropped +
/// frames_expired + frames_failed + frames_quarantined + queue_depth +
/// in-flight (0 or 1).
/// Reconfigurations are control messages, not frames: they appear only in
/// `reconfigs` and never in the frame counters or queue_depth.
struct CellStats {
  std::size_t cell_id = 0;
  std::string name;
  /// The LIVE detector spec — reflects applied reconfigurations.
  std::string detector;
  std::uint64_t reconfigs = 0;       ///< reconfigurations applied
  std::uint64_t frames_in = 0;       ///< submit() calls (incl. dropped)
  std::uint64_t frames_out = 0;      ///< completed Done
  std::uint64_t frames_dropped = 0;  ///< rejected by DropNewest admission
  std::uint64_t frames_expired = 0;  ///< completed Expired (DeadlineExpire)
  std::uint64_t frames_failed = 0;   ///< detection threw (status Failed)
  std::uint64_t frames_quarantined = 0;  ///< numeric quarantine (see
                                         ///< TicketStatus::kQuarantined)
  std::size_t queue_depth = 0;       ///< currently queued, not in flight
  std::size_t in_flight = 0;         ///< 0 or 1 (cells are serialized)
  /// Watchdog verdict over the cell's recent terminal outcomes (the enum
  /// lives in runtime.h; 0 == kHealthy).  Cheap: maintained inline by the
  /// completion bookkeeping, no extra thread.
  int health = 0;
  std::uint64_t health_transitions = 0;  ///< state changes since open
};

class Runtime;

/// A per-cell session handle.  Thread-safe to pass around; all mutation
/// happens through the owning Runtime (submit/dispatch), which guards the
/// queue and counters with its own lock.
class Cell {
 public:
  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  std::size_t id() const noexcept { return id_; }
  const CellConfig& config() const noexcept { return cfg_; }
  const modulation::Constellation& constellation() const noexcept {
    return pipe_.constellation();
  }

  /// The cell's pipeline.  The runtime serializes its own use of it; only
  /// touch it when no frames of this cell are queued or in flight (e.g.
  /// for set_channel-style warmup before submitting, or in tests).
  UplinkPipeline& pipeline() noexcept { return pipe_; }

 private:
  friend class Runtime;

  Cell(std::size_t id, const CellConfig& cfg, parallel::ThreadPool* pool);

  /// One admitted queue entry waiting for dispatch: a frame, or (when
  /// `reconfig` is set) a detector swap holding the frame's FIFO slot.
  /// Everything below is guarded by the owning Runtime's mutex.
  struct Pending {
    FrameJob job;
    /// Control message: apply this spec instead of detecting.  Exempt from
    /// admission capacity, deadlines and load shedding (deadline stays
    /// time_point::max(), so expire_stale never touches it).  The tuning
    /// is RESOLVED (always set) at enqueue time.
    std::optional<CellReconfig> reconfig;
    /// The swap's detector, constructed by Runtime::reconfigure at call
    /// time (validation == the one construction, off the dispatch path);
    /// adopted by the pipeline when the entry reaches the queue front.
    std::unique_ptr<detect::Detector> prebuilt;
    std::shared_ptr<TicketState> ticket;
    std::chrono::steady_clock::time_point submitted;
    /// time_point::max() when the frame carries no deadline.
    std::chrono::steady_clock::time_point deadline;
  };

  /// Watchdog outcome classes fed into the health ring (note_outcome).
  enum class Outcome : std::uint8_t {
    kOk = 0,   ///< completed kDone
    kShed,     ///< dropped or expired — load, not input, is the problem
    kBad,      ///< quarantined or failed — the input itself is suspect
  };

  /// Records one terminal outcome into the fixed health ring and
  /// recomputes the cell's health verdict.  Returns true when the verdict
  /// CHANGED (the caller bumps the watchdog-transition counter).  Pre: the
  /// owning Runtime's mutex is held.
  bool note_outcome(Outcome outcome);

  std::size_t id_;
  CellConfig cfg_;
  UplinkPipeline pipe_;
  std::deque<Pending> queue_;
  bool busy_ = false;       ///< a dispatcher is running this cell's entry
  bool busy_reconfig_ = false;  ///< ... and that entry is a reconfig
  bool scheduled_ = false;  ///< busy_ or sitting in the runnable list
  bool warm_ = false;       ///< a frame has run; coherence reuse is valid
  std::uint64_t next_seq_ = 0;
  std::uint64_t frames_in_ = 0;
  std::uint64_t frames_out_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_expired_ = 0;
  std::uint64_t frames_failed_ = 0;
  std::uint64_t frames_quarantined_ = 0;
  std::uint64_t reconfigs_ = 0;        ///< reconfigurations applied
  std::size_t queued_reconfigs_ = 0;   ///< reconfig entries in queue_

  /// Health watchdog: fixed ring of the last kHealthWindow terminal
  /// outcomes (frames only), plus the current verdict.  All guarded by the
  /// owning Runtime's mutex like every other counter here.
  static constexpr std::size_t kHealthWindow = 16;
  std::array<Outcome, kHealthWindow> health_ring_{};
  std::size_t health_idx_ = 0;   ///< next slot to overwrite
  std::size_t health_len_ = 0;   ///< outcomes recorded, capped at window
  int health_ = 0;               ///< CellHealth as int (header layering)
  std::uint64_t health_transitions_ = 0;
};

}  // namespace flexcore::api
