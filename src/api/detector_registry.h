// String/config-driven detector construction — the library's front door.
//
// Every detector in the library is registered in a DetectorRegistry under
// the same spelling its name() method reports, so specs round-trip:
//
//   modulation::Constellation qam(64);
//   api::DetectorConfig cfg;
//   cfg.constellation = &qam;
//   auto det = api::make_detector("flexcore-128", cfg);  // name() == spec
//   auto fcsd = api::make_detector("fcsd-L2", cfg);
//   auto kbest = api::make_detector("kbest-8", cfg);
//
// Parametric families parse their parameter out of the spec suffix
// (flexcore-<PEs>, a-flexcore-<PEs>, fcsd-L<L>, kbest-<K>, akbest-<B>);
// bare family names fall back to the values in DetectorConfig.  The
// path-parallel families additionally accept a precision-tier suffix
// (":fp32" / ":fp64" / ":i16", e.g. "flexcore-128:fp32" or
// "fcsd-L1:i16") selecting the compute tier of their block kernels; it
// overrides DetectorConfig::precision.  Unknown specs — including a tier
// suffix on a family without block kernels, e.g. "zf:i16" — throw
// std::invalid_argument listing the registered families.
//
// This registry is the seam later scaling work plugs into: alternative
// backends register additional factories and every driver picks them up by
// name, with no construction-site changes.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/flexcore_detector.h"
#include "detect/detector.h"
#include "detect/ml_sphere.h"

namespace flexcore::api {

/// Tuning knobs consumed by the registered factories.  `constellation` is
/// required (detectors keep a non-owning pointer to it, so it must outlive
/// them); everything else has library defaults.
struct DetectorConfig {
  const modulation::Constellation* constellation = nullptr;

  /// Base configuration for the "flexcore"/"a-flexcore" families (a spec
  /// suffix overrides num_pes; the spec family decides adaptive vs plain).
  /// Its pe_model also feeds the "akbest" family.
  core::FlexCoreConfig flexcore;

  /// Options for the "ml-sd" family.
  detect::MlSphereDecoder::Options ml_sphere;

  /// a-FlexCore activation threshold used when flexcore.adaptive_threshold
  /// is unset (0); 0.95 is the paper's Fig. 10 operating point.
  double adaptive_threshold = 0.95;

  /// Compute tier for the path-parallel families (flexcore / a-flexcore /
  /// fcsd); a ":fp32"/":fp64"/":i16" spec suffix overrides it.  Other
  /// families ignore it (they have no reduced-precision kernels).
  detect::Precision precision = detect::Precision::kFloat64;
};

/// Registry of detector factories.  A factory inspects the spec and returns
/// nullptr when the spec does not belong to its family; the first factory
/// that accepts wins.  A factory that accepts a spec but finds it invalid
/// (e.g. "flexcore-0") throws std::invalid_argument.
class DetectorRegistry {
 public:
  using Factory = std::function<std::unique_ptr<detect::Detector>(
      std::string_view spec, const DetectorConfig& cfg)>;

  struct Entry {
    std::string family;     ///< e.g. "kbest"
    std::string canonical;  ///< e.g. "kbest-8" — round-trips through name()
    std::string pattern;    ///< e.g. "kbest[-<K>]" (for error messages)
    Factory factory;
  };

  void add(Entry entry);

  /// Constructs the detector `spec` names.  Throws std::invalid_argument
  /// for unknown specs (listing the registered families) and when
  /// cfg.constellation is null.
  std::unique_ptr<detect::Detector> make(std::string_view spec,
                                         const DetectorConfig& cfg) const;

  /// One canonical, fully-parameterized spelling per family; every entry
  /// satisfies make(n, cfg)->name() == n.
  std::vector<std::string> canonical_names() const;

  /// Accepted spec patterns, for help/error text.
  std::vector<std::string> patterns() const;

  /// The process-wide registry, pre-populated with all built-in detectors.
  static DetectorRegistry& global();

 private:
  std::vector<Entry> entries_;
};

/// Constructs a detector by name from the global registry.
std::unique_ptr<detect::Detector> make_detector(std::string_view spec,
                                                const DetectorConfig& cfg);

/// One canonical, fully-parameterized spec per registered family (e.g.
/// "flexcore-64", "fcsd-L1", "kbest-8", ...), in registration order.  Every
/// returned spec constructs via make_detector and round-trips through
/// name().  Benches/tests should iterate this instead of hard-coding the
/// name table, so new backends are picked up automatically.
std::vector<std::string> list_specs();

/// Same, but returns the concrete detector type for callers that need
/// subtype-specific API (e.g. FlexCoreDetector::detect_soft).  Throws
/// std::invalid_argument when the spec constructs a different type.
template <typename D>
std::unique_ptr<D> make_detector_as(std::string_view spec,
                                    const DetectorConfig& cfg) {
  std::unique_ptr<detect::Detector> base = make_detector(spec, cfg);
  if (auto* typed = dynamic_cast<D*>(base.get())) {
    base.release();
    return std::unique_ptr<D>(typed);
  }
  throw std::invalid_argument("api::make_detector_as: \"" +
                              std::string(spec) +
                              "\" does not construct the requested type");
}

}  // namespace flexcore::api
