// Session facade for uplink detection: owns the constellation, the thread
// pool and a registry-constructed detector, and drives the per-channel
// lifecycle the paper's receiver runs per subcarrier —
//
//   set_channel (QR + pre-processing)  →  batched detect  →  optional LLRs
//
// so OFDM / Monte-Carlo drivers stop hand-rolling it:
//
//   api::PipelineConfig pcfg;
//   pcfg.detector = "flexcore-128";
//   pcfg.qam_order = 64;
//   api::UplinkPipeline pipe(pcfg);
//   pipe.set_channel(h, noise_var);
//   detect::BatchResult batch = pipe.detect(ys);   // thread-pool task grid
//
// The pipeline attaches its pool to the detector, so detect() routes
// through the path-parallel detect_batch overrides where they exist and
// the sequential loop otherwise.
//
// For whole OFDM frames the per-channel lifecycle is superseded by frame
// jobs: detect_frame(FrameJob) preprocesses every subcarrier channel in
// parallel and then runs ONE flat subcarrier x vector x path task grid
// over the pool — the paper's §4 "all of a subframe's work at once" shape —
// with per-worker scratch arenas so steady-state tasks allocate nothing:
//
//   api::FrameJob job;
//   job.channels = trace.per_subcarrier;          // one CMat per subcarrier
//   job.ys = ys;                                  // subcarrier-major vectors
//   job.vectors_per_channel = n_ofdm_symbols;
//   job.noise_var = nv;
//   api::FrameResult fr = pipe.detect_frame(job); // one grid, whole frame
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/detector_registry.h"
#include "core/flexcore_detector.h"
#include "detect/detector.h"
#include "detect/path_grid.h"
#include "detect/workspace.h"
#include "modulation/constellation.h"
#include "obs/obs.h"
#include "parallel/thread_pool.h"

namespace flexcore::api {

struct PipelineConfig {
  /// Registry spec for the detector ("flexcore-64", "fcsd-L2", ...).
  std::string detector = "flexcore-64";
  int qam_order = 64;
  /// Worker threads for the batch task grid (0 = all hardware threads).
  /// Ignored when `shared_pool` is set.
  std::size_t threads = 0;
  /// Non-owning: when set, the pipeline runs its grids on this pool instead
  /// of owning one — api::Runtime uses this to share ONE PE pool across all
  /// cells.  The pool must outlive the pipeline.  Concurrent detect calls
  /// on the SAME pipeline remain unsupported; distinct pipelines may share
  /// a pool and run concurrently (the pool multiplexes their grids).
  parallel::ThreadPool* shared_pool = nullptr;
  /// Detector tuning forwarded to api::make_detector.  Its `constellation`
  /// field is ignored — the pipeline owns the constellation.
  DetectorConfig tuning;
  /// Compute tier of the session's path grids (detect/path_kernels.h).
  /// kFloat32 selects the single-precision kernel tier and kInt16 the
  /// quantized int16 tier end-to-end (the knob is folded into
  /// `tuning.precision` at construction, so it also covers frame-detector
  /// clones and later reconfigure calls); a spec suffix
  /// (":fp32"/":fp64"/":i16") still overrides per detector.
  detect::Precision precision = detect::Precision::kFloat64;
};

/// One frame's worth of detection work: every data subcarrier's channel
/// plus all received vectors of the frame's OFDM symbols.
///
/// Lifetime contract: both spans are BORROWED — they must stay valid until
/// detect_frame returns (nothing is retained afterwards).  `ys` is
/// subcarrier-major: ys[f * vectors_per_channel + t] is OFDM symbol t of
/// subcarrier f, and ys.size() must equal
/// channels.size() * vectors_per_channel.  All channels must share the same
/// dimensions.
struct FrameJob {
  std::span<const linalg::CMat> channels;
  std::span<const linalg::CVec> ys;
  std::size_t vectors_per_channel = 0;
  double noise_var = 1.0;
  /// When true, reuses the per-subcarrier preprocessing (QR + path
  /// selection) installed by the PREVIOUS detect_frame call — the paper's
  /// static-channel coherence interval, where consecutive frames share
  /// channels.  The caller asserts `channels` is unchanged since that
  /// call; only detection runs.  Ignored (full preprocessing) when the
  /// previous frame had a different subcarrier count or antenna geometry,
  /// or none ran yet.
  /// The per-subcarrier loop cannot amortize this: set_channel overwrites
  /// the single-channel state on every subcarrier.
  bool reuse_preprocessing = false;
  /// Flight-recorder identity of this frame (obs/obs.h), decided once at
  /// the OUTERMOST submit — ShardedRuntime::submit, else Runtime::submit —
  /// so the shard fabric and the pipeline agree on the sampling verdict
  /// and frame id.  Callers driving detect_frame directly may leave it
  /// default-initialized (undecided frames record no spans) or stamp it
  /// with obs::begin_frame themselves.
  obs::TraceCtx trace;
};

/// Output of one UplinkPipeline::detect_frame call.  `results` follows the
/// FrameJob::ys layout; per-vector symbols and metrics are bit-identical to
/// the sequential set_channel + detect lifecycle over the same data.
struct FrameResult {
  std::vector<detect::DetectionResult> results;
  detect::DetectionStats stats;        ///< sum of per-vector stats
  std::size_t sic_fallbacks = 0;       ///< vectors rescued by plain SIC
  std::size_t tasks = 0;               ///< sum over subcarriers of nv*paths
  std::size_t channels_installed = 0;  ///< channels preprocessed this call
                                       ///< (0 on a reuse_preprocessing hit)
  double sum_active_paths = 0.0;       ///< sum of per-subcarrier path counts
  double preprocess_seconds = 0.0;     ///< parallel QR + path selection
  double detect_seconds = 0.0;         ///< the frame task grid
  /// Winner reconstruction + SIC rescue, separated from detect_seconds on
  /// the fused typed path (0 on the generic per-subcarrier fallback, whose
  /// batch timing folds reconstruction into detect_seconds).
  double reconstruct_seconds = 0.0;
};

/// Thrown on NaN/Inf channel or payload entries (validate_frame_job's
/// kFull scan).  A corrupt frame is an AIR-INTERFACE fault, not a caller
/// bug: api::Runtime catches it on the dispatch path and completes the
/// ticket as TicketStatus::kQuarantined instead of kFailed.
class NonFiniteError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown by detect_frame when per-subcarrier preprocessing fails
/// numerically (non-finite or rank-deficient QR).  The pipeline invalidates
/// its preprocessing caches FIRST, so the next frame re-preprocesses from
/// scratch — a quarantined frame never poisons its successor.  Also
/// quarantined by api::Runtime.
class NumericError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Validation depth of validate_frame_job.
enum class FrameCheck {
  kShape,  ///< structural checks only (sizes, antenna geometry)
  kFull,   ///< kShape plus a non-finite scan of every channel/ys entry
};

/// Validates a FrameJob's shape without running it; throws
/// std::invalid_argument on degenerate jobs:
///   * ys.size() != channels.size() * vectors_per_channel (mismatched
///     per-subcarrier batch sizes),
///   * channels that do not share dimensions (subcarriers disagreeing on
///     the receive-antenna count B get a message naming the antennas —
///     one frame is received on ONE physical array),
///   * empty channel matrices (zero rows or columns),
///   * under-determined channels (B < Nt — detection QR needs rows >= cols;
///     rejected here, at the submit call site, instead of failing deep in a
///     dispatcher thread),
///   * received vectors whose length differs from the channel row count.
/// Zero subcarriers and zero vectors_per_channel are NOT errors: the former
/// yields an empty FrameResult, the latter a preprocessing-only call.
/// With FrameCheck::kFull (the default) every channel and received-vector
/// entry is additionally scanned for NaN/Inf; the first offender throws
/// NonFiniteError with its exact (subcarrier, row, col) / (vector, index)
/// coordinates.  detect_frame always runs the full check (its
/// never-poisons-the-next-frame guarantee depends on it);
/// api::Runtime::submit runs the depth configured by
/// RuntimeConfig::admission_scan — chaos/fault-injection harnesses disable
/// the submit-side scan so corrupt frames exercise the dispatch-side
/// quarantine instead of throwing at the call site.
void validate_frame_job(const FrameJob& job,
                        FrameCheck check = FrameCheck::kFull);

/// Folds one subcarrier's BatchResult into a FrameResult at vector offset
/// `offset` (results are moved out of `batch`; counters and timing
/// accumulate).  Shared by UplinkPipeline's generic frame fallback and the
/// raw-detector frame emulation in sim::UplinkPacketLink.
void fold_batch_into_frame(detect::BatchResult& batch, std::size_t offset,
                           FrameResult* out);

class UplinkPipeline {
 public:
  explicit UplinkPipeline(const PipelineConfig& cfg);

  /// Installs a new channel (runs the detector's per-channel
  /// pre-processing).  Must be called before detect()/detect_soft().
  void set_channel(const linalg::CMat& h, double noise_var);

  /// Batched detection of vectors sharing the installed channel, through
  /// the pipeline's thread pool.  Throws std::logic_error before the first
  /// set_channel.
  detect::BatchResult detect(std::span<const linalg::CVec> ys);

  /// Convenience single-vector path (same contract as Detector::detect).
  /// Counts toward the session lifecycle counters like detect().
  detect::DetectionResult detect_one(const linalg::CVec& y);

  /// Frame-level detection: preprocesses every subcarrier channel in
  /// parallel (QR + path selection, cached in per-subcarrier detector
  /// clones that are reused across frames), then runs one flat
  /// subcarrier x vector x path grid over the pool with per-worker
  /// workspaces — zero heap allocations per steady-state path task.
  /// Results are bit-identical to looping set_channel + detect over the
  /// same data.  Independent of set_channel (the single-channel state is
  /// untouched); counts channels/vectors toward the session counters.
  /// Path-parallel detectors (flexcore / a-flexcore / fcsd families) run
  /// the fused grid; other detectors fall back to per-subcarrier
  /// detect_batch after the parallel preprocessing.
  FrameResult detect_frame(const FrameJob& job);

  /// Buffer-reusing overload: writes into `*out`, whose buffers are resized
  /// but never shrunk — reusing the same FrameResult across frames of equal
  /// shape (with reuse_preprocessing set) makes the whole call perform ZERO
  /// heap allocations in steady state, verified by
  /// tests/hot_path_guard_test.cpp.  Previous contents of `*out` are
  /// overwritten.  The by-value overload delegates here.
  void detect_frame(const FrameJob& job, FrameResult* out);

  /// Swaps the session's detector for `detector_spec` (same constellation
  /// and pool), atomically from the caller's perspective: the new detector
  /// is fully constructed before any state changes, so a throwing spec
  /// leaves the pipeline exactly as it was (strong guarantee).  Resets the
  /// per-channel state (set_channel must run again) and the frame-job
  /// caches (the next detect_frame re-preprocesses even under
  /// reuse_preprocessing).  Lifecycle counters survive — it is the same
  /// session, reconfigured.  The overload taking a DetectorConfig also
  /// replaces the tuning (its constellation field is ignored, as at
  /// construction).  Not thread-safe against concurrent detect calls: the
  /// caller serializes, as with everything else on a pipeline —
  /// api::Runtime::reconfigure is the FIFO-safe wrapper.
  void reconfigure(const std::string& detector_spec);
  void reconfigure(const std::string& detector_spec,
                   const DetectorConfig& tuning);

  /// Installs an already-constructed detector (the non-throwing tail of
  /// reconfigure): `det` MUST have been built against constellation() with
  /// the given spec/tuning — api::Runtime pre-builds swaps off the
  /// dispatch path and adopts them here at the FIFO boundary.
  void adopt_detector(std::unique_ptr<detect::Detector> det,
                      const std::string& detector_spec,
                      const DetectorConfig& tuning);

  /// List-based max-log LLRs per vector (the soft-output extension).
  /// Only available when the configured detector supports soft output
  /// (currently the flexcore/a-flexcore families); throws
  /// std::logic_error otherwise — check supports_soft() first.
  std::vector<core::SoftOutput> detect_soft(std::span<const linalg::CVec> ys);
  bool supports_soft() const noexcept { return flex_ != nullptr; }

  detect::Detector& detector() noexcept { return *det_; }
  const detect::Detector& detector() const noexcept { return *det_; }
  const modulation::Constellation& constellation() const noexcept {
    return constellation_;
  }
  parallel::ThreadPool& pool() noexcept { return *pool_; }
  /// True when the pipeline runs on a caller-provided pool
  /// (PipelineConfig::shared_pool) rather than one it owns.
  bool uses_shared_pool() const noexcept { return owned_pool_ == nullptr; }
  const PipelineConfig& config() const noexcept { return cfg_; }

  /// Lifecycle counters aggregated across the session.
  std::size_t channel_installs() const noexcept { return channel_installs_; }
  std::size_t vectors_detected() const noexcept { return vectors_detected_; }
  const detect::DetectionStats& total_stats() const noexcept {
    return total_stats_;
  }

 private:
  void require_channel(const char* where) const;
  void ensure_frame_detectors(std::size_t count);
  template <typename D>
  bool try_typed_frame(const FrameJob& job, FrameResult* out);
  void generic_frame(const FrameJob& job, FrameResult* out);

  PipelineConfig cfg_;
  modulation::Constellation constellation_;
  std::unique_ptr<parallel::ThreadPool> owned_pool_;  // null iff shared
  parallel::ThreadPool* pool_;                        // never null
  std::unique_ptr<detect::Detector> det_;
  core::FlexCoreDetector* flex_ = nullptr;  // non-null iff soft-capable
  bool channel_set_ = false;
  std::size_t channel_installs_ = 0;
  std::size_t vectors_detected_ = 0;
  detect::DetectionStats total_stats_;

  // Frame-job state, reused across detect_frame calls: per-subcarrier
  // detector clones (each caches its channel's QR + path selection), the
  // flat grid buffers and the per-worker scratch arenas.
  std::vector<std::unique_ptr<detect::Detector>> frame_dets_;
  std::size_t frame_ready_channels_ = 0;  // clones with installed channels
  std::size_t frame_ready_rows_ = 0;      // geometry those installs used —
  std::size_t frame_ready_cols_ = 0;      // reuse only on an exact match
  detect::FrameGridOutput frame_grid_;
  detect::WorkspaceBank workspaces_;
  std::vector<std::uint8_t> frame_fell_;
  // Per-call scratch of try_typed_frame, hoisted so steady-state frames
  // reuse its capacity: the typed clone pointers (stored type-erased; the
  // template reads them back as the D* it stored) and per-subcarrier path
  // counts.
  std::vector<const void*> frame_typed_;
  std::vector<std::size_t> frame_paths_;
};

}  // namespace flexcore::api
