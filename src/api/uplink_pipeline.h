// Session facade for uplink detection: owns the constellation, the thread
// pool and a registry-constructed detector, and drives the per-channel
// lifecycle the paper's receiver runs per subcarrier —
//
//   set_channel (QR + pre-processing)  →  batched detect  →  optional LLRs
//
// so OFDM / Monte-Carlo drivers stop hand-rolling it:
//
//   api::PipelineConfig pcfg;
//   pcfg.detector = "flexcore-128";
//   pcfg.qam_order = 64;
//   api::UplinkPipeline pipe(pcfg);
//   pipe.set_channel(h, noise_var);
//   detect::BatchResult batch = pipe.detect(ys);   // thread-pool task grid
//
// The pipeline attaches its pool to the detector, so detect() routes
// through the path-parallel detect_batch overrides where they exist and
// the sequential loop otherwise.  This is the seam multi-channel sharding
// and async submission plug into later.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/detector_registry.h"
#include "core/flexcore_detector.h"
#include "detect/detector.h"
#include "modulation/constellation.h"
#include "parallel/thread_pool.h"

namespace flexcore::api {

struct PipelineConfig {
  /// Registry spec for the detector ("flexcore-64", "fcsd-L2", ...).
  std::string detector = "flexcore-64";
  int qam_order = 64;
  /// Worker threads for the batch task grid (0 = all hardware threads).
  std::size_t threads = 0;
  /// Detector tuning forwarded to api::make_detector.  Its `constellation`
  /// field is ignored — the pipeline owns the constellation.
  DetectorConfig tuning;
};

class UplinkPipeline {
 public:
  explicit UplinkPipeline(const PipelineConfig& cfg);

  /// Installs a new channel (runs the detector's per-channel
  /// pre-processing).  Must be called before detect()/detect_soft().
  void set_channel(const linalg::CMat& h, double noise_var);

  /// Batched detection of vectors sharing the installed channel, through
  /// the pipeline's thread pool.  Throws std::logic_error before the first
  /// set_channel.
  detect::BatchResult detect(std::span<const linalg::CVec> ys);

  /// Convenience single-vector path (same contract as Detector::detect).
  /// Counts toward the session lifecycle counters like detect().
  detect::DetectionResult detect_one(const linalg::CVec& y);

  /// List-based max-log LLRs per vector (the soft-output extension).
  /// Only available when the configured detector supports soft output
  /// (currently the flexcore/a-flexcore families); throws
  /// std::logic_error otherwise — check supports_soft() first.
  std::vector<core::SoftOutput> detect_soft(std::span<const linalg::CVec> ys);
  bool supports_soft() const noexcept { return flex_ != nullptr; }

  detect::Detector& detector() noexcept { return *det_; }
  const detect::Detector& detector() const noexcept { return *det_; }
  const modulation::Constellation& constellation() const noexcept {
    return constellation_;
  }
  parallel::ThreadPool& pool() noexcept { return pool_; }
  const PipelineConfig& config() const noexcept { return cfg_; }

  /// Lifecycle counters aggregated across the session.
  std::size_t channel_installs() const noexcept { return channel_installs_; }
  std::size_t vectors_detected() const noexcept { return vectors_detected_; }
  const detect::DetectionStats& total_stats() const noexcept {
    return total_stats_;
  }

 private:
  void require_channel(const char* where) const;

  PipelineConfig cfg_;
  modulation::Constellation constellation_;
  parallel::ThreadPool pool_;
  std::unique_ptr<detect::Detector> det_;
  core::FlexCoreDetector* flex_ = nullptr;  // non-null iff soft-capable
  bool channel_set_ = false;
  std::size_t channel_installs_ = 0;
  std::size_t vectors_detected_ = 0;
  detect::DetectionStats total_stats_;
};

}  // namespace flexcore::api
