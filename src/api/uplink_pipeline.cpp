#include "api/uplink_pipeline.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "detect/fcsd.h"
#include "obs/obs.h"
#include "parallel/hot_path.h"

namespace flexcore::api {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool non_finite(const linalg::cplx& z) {
  return !std::isfinite(z.real()) || !std::isfinite(z.imag());
}

/// Sentinel of the preprocessing failure index: "every subcarrier
/// installed cleanly".
constexpr std::size_t kNoBadSubcarrier = static_cast<std::size_t>(-1);

/// Cold failure tail of detect_frame's preprocessing stage, hoisted out of
/// the FLEXCORE_HOT_PATH function so its message construction never counts
/// against the hot-path contract.
[[noreturn]] void throw_preprocess_failure(std::size_t f) {
  throw NumericError(
      "detect_frame: preprocessing failed at subcarrier " +
      std::to_string(f) +
      " (non-finite or rank-deficient channel); caches invalidated");
}

}  // namespace

void fold_batch_into_frame(detect::BatchResult& batch, std::size_t offset,
                           FrameResult* out) {
  for (std::size_t t = 0; t < batch.results.size(); ++t) {
    out->results[offset + t] = std::move(batch.results[t]);
  }
  out->stats += batch.stats;
  out->sic_fallbacks += batch.sic_fallbacks;
  out->tasks += batch.tasks;
  out->detect_seconds += batch.elapsed_seconds;
}

void validate_frame_job(const FrameJob& job, FrameCheck check) {
  const std::size_t nsc = job.channels.size();
  const std::size_t nv = job.vectors_per_channel;
  if (job.ys.size() != nsc * nv) {
    throw std::invalid_argument(
        "FrameJob: ys.size() = " + std::to_string(job.ys.size()) +
        " != channels.size() * vectors_per_channel = " +
        std::to_string(nsc) + " * " + std::to_string(nv) + " = " +
        std::to_string(nsc * nv));
  }
  if (nsc == 0) return;
  const linalg::CMat& front = job.channels.front();
  if (front.rows() == 0 || front.cols() == 0) {
    throw std::invalid_argument(
        "FrameJob: channel of subcarrier 0 is empty (" +
        std::to_string(front.rows()) + "x" + std::to_string(front.cols()) +
        ")");
  }
  // B >= Nt up front: an under-determined channel would otherwise fail deep
  // inside the detector's QR ("qr: requires rows >= cols"), asynchronously
  // on a dispatcher thread when submitted through api::Runtime.
  if (front.rows() < front.cols()) {
    throw std::invalid_argument(
        "FrameJob: " + std::to_string(front.rows()) + " receive antennas < " +
        std::to_string(front.cols()) +
        " streams (detection needs B >= Nt)");
  }
  for (std::size_t f = 0; f < nsc; ++f) {
    const linalg::CMat& h = job.channels[f];
    if (h.rows() != front.rows()) {
      // Name the antenna count specifically: every subcarrier of one frame
      // is received on the SAME physical array, and the sharded runtime's
      // antenna-cluster plan is computed once per frame from B.
      throw std::invalid_argument(
          "FrameJob: subcarrier " + std::to_string(f) + " has " +
          std::to_string(h.rows()) + " receive antennas, subcarrier 0 has " +
          std::to_string(front.rows()) +
          " (all subcarriers share one antenna array)");
    }
    if (!h.same_shape(front)) {
      throw std::invalid_argument(
          "FrameJob: channel of subcarrier " + std::to_string(f) + " is " +
          std::to_string(h.rows()) + "x" + std::to_string(h.cols()) +
          ", subcarrier 0 is " + std::to_string(front.rows()) + "x" +
          std::to_string(front.cols()) + " (channels must share dimensions)");
    }
  }
  for (std::size_t i = 0; i < job.ys.size(); ++i) {
    if (job.ys[i].size() != front.rows()) {
      // ys is subcarrier-major: name the offending (subcarrier, symbol)
      // so degenerate jobs point straight at the bad vector.
      throw std::invalid_argument(
          "FrameJob: ys[" + std::to_string(i) + "] (subcarrier " +
          std::to_string(i / nv) + ", symbol " + std::to_string(i % nv) +
          ") has length " + std::to_string(job.ys[i].size()) +
          " != channel rows " + std::to_string(front.rows()));
    }
  }
  if (check != FrameCheck::kFull) return;
  // Non-finite scan: a NaN/Inf entry anywhere would otherwise sail through
  // QR (NaN comparisons are false at every tolerance gate) and surface as
  // garbage symbols.  The first offender is named with its exact
  // coordinates so a corrupt fronthaul points at the bad antenna/stream.
  for (std::size_t f = 0; f < nsc; ++f) {
    const linalg::CMat& h = job.channels[f];
    const linalg::cplx* d = h.data();
    const std::size_t n = h.rows() * h.cols();
    for (std::size_t e = 0; e < n; ++e) {
      if (non_finite(d[e])) {
        throw NonFiniteError(
            "FrameJob: channel of subcarrier " + std::to_string(f) +
            " has a non-finite entry at (" + std::to_string(e / h.cols()) +
            ", " + std::to_string(e % h.cols()) + ")");
      }
    }
  }
  for (std::size_t i = 0; i < job.ys.size(); ++i) {
    const linalg::CVec& y = job.ys[i];
    for (std::size_t e = 0; e < y.size(); ++e) {
      if (non_finite(y[e])) {
        throw NonFiniteError(
            "FrameJob: ys[" + std::to_string(i) + "] (subcarrier " +
            std::to_string(i / nv) + ", symbol " + std::to_string(i % nv) +
            ") has a non-finite entry at index " + std::to_string(e));
      }
    }
  }
}

UplinkPipeline::UplinkPipeline(const PipelineConfig& cfg)
    : cfg_(cfg), constellation_(cfg.qam_order) {
  // Fold the session-level precision knob into the tuning every detector
  // construction (including clones and reconfigure swaps) flows through.
  if (cfg_.precision != detect::Precision::kFloat64) {
    cfg_.tuning.precision = cfg_.precision;
  }
  if (cfg.shared_pool != nullptr) {
    pool_ = cfg.shared_pool;
  } else {
    owned_pool_ = std::make_unique<parallel::ThreadPool>(
        cfg.threads > 0 ? cfg.threads : parallel::default_thread_count());
    pool_ = owned_pool_.get();
  }
  DetectorConfig dcfg = cfg_.tuning;
  dcfg.constellation = &constellation_;
  det_ = make_detector(cfg.detector, dcfg);
  det_->set_thread_pool(pool_);
  flex_ = dynamic_cast<core::FlexCoreDetector*>(det_.get());
}

void UplinkPipeline::require_channel(const char* where) const {
  if (!channel_set_) {
    throw std::logic_error(std::string("UplinkPipeline::") + where +
                           ": set_channel has not been called");
  }
}

void UplinkPipeline::set_channel(const linalg::CMat& h, double noise_var) {
  det_->set_channel(h, noise_var);
  channel_set_ = true;
  ++channel_installs_;
}

detect::BatchResult UplinkPipeline::detect(
    std::span<const linalg::CVec> ys) {
  require_channel("detect");
  detect::BatchResult out;
  det_->detect_batch(ys, &out);
  vectors_detected_ += ys.size();
  total_stats_ += out.stats;
  return out;
}

detect::DetectionResult UplinkPipeline::detect_one(const linalg::CVec& y) {
  require_channel("detect_one");
  detect::DetectionResult res = det_->detect(y);
  ++vectors_detected_;
  total_stats_ += res.stats;
  return res;
}

void UplinkPipeline::reconfigure(const std::string& detector_spec) {
  reconfigure(detector_spec, cfg_.tuning);
}

void UplinkPipeline::reconfigure(const std::string& detector_spec,
                                 const DetectorConfig& tuning) {
  DetectorConfig dcfg = tuning;
  dcfg.constellation = &constellation_;
  // Build first, mutate second: a bad spec/tuning throws here and the
  // session keeps its old detector untouched.
  adopt_detector(make_detector(detector_spec, dcfg), detector_spec, tuning);
}

void UplinkPipeline::adopt_detector(std::unique_ptr<detect::Detector> det,
                                    const std::string& detector_spec,
                                    const DetectorConfig& tuning) {
  det->set_thread_pool(pool_);
  det_ = std::move(det);
  flex_ = dynamic_cast<core::FlexCoreDetector*>(det_.get());
  cfg_.detector = detector_spec;
  cfg_.tuning = tuning;
  channel_set_ = false;
  frame_dets_.clear();
  frame_ready_channels_ = 0;
  frame_ready_rows_ = 0;
  frame_ready_cols_ = 0;
}

void UplinkPipeline::ensure_frame_detectors(std::size_t count) {
  while (frame_dets_.size() < count) {
    DetectorConfig dcfg = cfg_.tuning;
    dcfg.constellation = &constellation_;
    frame_dets_.push_back(make_detector(cfg_.detector, dcfg));
    frame_dets_.back()->set_thread_pool(pool_);
  }
}

/// Fused grid for path-parallel detector families: returns false when the
/// clones are not of type D (the caller tries the next family).
template <typename D>
FLEXCORE_HOT_PATH
bool UplinkPipeline::try_typed_frame(const FrameJob& job, FrameResult* out) {
  // Clones are homogeneous (same registry spec), so one cast decides the
  // whole family — non-matching pipelines pay a single failed cast here.
  if (dynamic_cast<const D*>(frame_dets_.front().get()) == nullptr) {
    return false;
  }
  const std::size_t nsc = job.channels.size();
  const std::size_t nv = job.vectors_per_channel;
  // flexcore-lint: allow-next-line(HP001) warm-capacity reuse, never shrunk
  frame_typed_.resize(nsc);
  // flexcore-lint: allow-next-line(HP001) warm-capacity reuse, never shrunk
  frame_paths_.resize(nsc);
  for (std::size_t f = 0; f < nsc; ++f) {
    const D* d = static_cast<const D*>(frame_dets_[f].get());
    frame_typed_[f] = d;
    frame_paths_[f] = d->parallel_tasks();
  }
  // Read back exactly the pointer type stored above; the void* detour only
  // type-erases the member so ONE scratch vector serves every family.
  const D* const* typed = reinterpret_cast<const D* const*>(frame_typed_.data());
  const std::size_t nt = job.channels.front().cols();

  const bool spans = obs::want_span(job.trace);
  const std::uint64_t grid_t0 = spans ? obs::now_ns() : 0;
  detect::run_frame_grid<D>(std::span<const D* const>(typed, nsc),
                            frame_paths_, job.ys, nv, nt, *pool_,
                            &frame_grid_);
  if (spans) {
    obs::record_span(obs::Stage::kPathGrid, grid_t0, obs::now_ns(),
                     job.trace);
  }
  out->tasks = frame_grid_.tasks;
  out->detect_seconds = frame_grid_.elapsed_seconds;

  // Winner reconstruction: one instrumented walk per vector, SIC fallback
  // where every path was deactivated — same policy as detect_batch.  Timed
  // separately from the grid (FrameResult::reconstruct_seconds feeds the
  // runtime's per-stage latency breakdown).
  const auto rec_t0 = std::chrono::steady_clock::now();
  const std::uint64_t rec_t0_ns = spans ? obs::now_ns() : 0;
  const std::size_t units = nsc * nv;
  workspaces_.ensure(pool_->size());
  // flexcore-lint: allow-next-line(HP001) warm-capacity reuse, never shrunk
  frame_fell_.assign(units, 0);
  pool_->parallel_for_worker(units, [&](std::size_t w, std::size_t u) {
    frame_fell_[u] = typed[u / nv]->reconstruct_winner(
        frame_grid_.ybar(u), frame_grid_.best_path[u],
        frame_grid_.best_metric[u], workspaces_.at(w), &out->results[u]);
  });
  for (std::size_t u = 0; u < units; ++u) {
    out->stats += out->results[u].stats;
    out->sic_fallbacks += frame_fell_[u];
  }
  out->reconstruct_seconds = seconds_since(rec_t0);
  if (spans) {
    obs::record_span(obs::Stage::kReconstruct, rec_t0_ns, obs::now_ns(),
                     job.trace);
  }
  return true;
}

/// Fallback for detectors without span kernels: per-subcarrier batches
/// (still behind the parallel preprocessing and the pool-routed
/// detect_batch overrides where they exist).
void UplinkPipeline::generic_frame(const FrameJob& job, FrameResult* out) {
  const bool spans = obs::want_span(job.trace);
  const std::uint64_t t0_ns = spans ? obs::now_ns() : 0;
  const std::size_t nv = job.vectors_per_channel;
  detect::BatchResult batch;
  for (std::size_t f = 0; f < job.channels.size(); ++f) {
    frame_dets_[f]->detect_batch(job.ys.subspan(f * nv, nv), &batch);
    fold_batch_into_frame(batch, f * nv, out);
  }
  // Reconstruction is folded into the batch timing here, so the generic
  // path reports the whole detection as one path-grid span.
  if (spans) {
    obs::record_span(obs::Stage::kPathGrid, t0_ns, obs::now_ns(), job.trace);
  }
}

FrameResult UplinkPipeline::detect_frame(const FrameJob& job) {
  FrameResult out;
  detect_frame(job, &out);
  return out;
}

FLEXCORE_HOT_PATH
void UplinkPipeline::detect_frame(const FrameJob& job, FrameResult* out_ptr) {
  const std::size_t nsc = job.channels.size();
  const std::size_t nv = job.vectors_per_channel;
  validate_frame_job(job);

  FrameResult& out = *out_ptr;
  // Reset scalars but keep the result buffers: resized, never shrunk, so a
  // reused FrameResult of equal shape costs no allocation.
  out.stats = detect::DetectionStats{};
  out.sic_fallbacks = 0;
  out.tasks = 0;
  out.channels_installed = 0;
  out.sum_active_paths = 0.0;
  out.preprocess_seconds = 0.0;
  out.detect_seconds = 0.0;
  out.reconstruct_seconds = 0.0;
  // flexcore-lint: allow-next-line(HP001) warm-capacity reuse, never shrunk
  out.results.resize(job.ys.size());
  if (nsc == 0) return;

  // Per-subcarrier preprocessing (QR + path selection), one task per
  // subcarrier: independent detector clones, so no synchronization.
  // Within a static-channel coherence interval the caller can assert the
  // channels are unchanged and skip it entirely.
  ensure_frame_detectors(nsc);
  // Reuse demands the SAME workload shape as the cached installs — count
  // AND antenna geometry.  A same-count frame with different dimensions
  // would walk mismatched QR state, so it re-preprocesses instead.
  const bool reuse_hit = job.reuse_preprocessing &&
                         frame_ready_channels_ == nsc &&
                         frame_ready_rows_ == job.channels.front().rows() &&
                         frame_ready_cols_ == job.channels.front().cols();
  obs::counter_add(reuse_hit ? obs::Counter::kPreprocReuseHits
                             : obs::Counter::kPreprocReuseMisses);
  if (!reuse_hit) {
    const std::uint64_t pre_t0_ns =
        obs::want_span(job.trace) ? obs::now_ns() : 0;
    const auto t0 = std::chrono::steady_clock::now();
    // Numeric guard: an exception must NOT escape a pool task (a throw on
    // a spawned worker is std::terminate), so each task catches its own
    // QR failure and the lowest failing subcarrier is reported through an
    // atomic min instead.  The channel was already scanned for NaN/Inf by
    // validate_frame_job, so this catches the finite-but-degenerate cases
    // (rank-deficient H) that only QR can detect.
    std::atomic<std::size_t> first_bad{kNoBadSubcarrier};
    pool_->parallel_for(nsc, [&](std::size_t f) {
      try {
        frame_dets_[f]->set_channel(job.channels[f], job.noise_var);
      } catch (const std::exception&) {
        std::size_t seen = first_bad.load(std::memory_order_relaxed);
        while (f < seen &&
               !first_bad.compare_exchange_weak(seen, f,
                                                std::memory_order_relaxed)) {
        }
      }
    });
    if (first_bad.load(std::memory_order_relaxed) != kNoBadSubcarrier) {
      // The failing clone holds stale per-channel state; clean subcarriers
      // installed fine but the FRAME is unusable.  Drop the reuse cache so
      // no later frame can walk the mixed state, then fail this one.
      frame_ready_channels_ = 0;
      frame_ready_rows_ = 0;
      frame_ready_cols_ = 0;
      throw_preprocess_failure(first_bad.load(std::memory_order_relaxed));
    }
    out.preprocess_seconds = seconds_since(t0);
    if (obs::want_span(job.trace)) {
      obs::record_span(obs::Stage::kPreprocess, pre_t0_ns, obs::now_ns(),
                       job.trace);
    }
    out.channels_installed = nsc;
    channel_installs_ += nsc;
    frame_ready_channels_ = nsc;
    frame_ready_rows_ = job.channels.front().rows();
    frame_ready_cols_ = job.channels.front().cols();
  }
  for (std::size_t f = 0; f < nsc; ++f) {
    out.sum_active_paths += static_cast<double>(frame_dets_[f]->parallel_tasks());
  }

  if (nv > 0 && !try_typed_frame<core::FlexCoreDetector>(job, &out) &&
      !try_typed_frame<detect::FcsdDetector>(job, &out)) {
    generic_frame(job, &out);
  }

  if (out.sic_fallbacks > 0) {
    obs::counter_add(obs::Counter::kSicFallbacks, out.sic_fallbacks);
  }
  vectors_detected_ += job.ys.size();
  total_stats_ += out.stats;
}

std::vector<core::SoftOutput> UplinkPipeline::detect_soft(
    std::span<const linalg::CVec> ys) {
  require_channel("detect_soft");
  if (flex_ == nullptr) {
    throw std::logic_error("UplinkPipeline::detect_soft: detector \"" +
                           cfg_.detector + "\" has no soft output");
  }
  std::vector<core::SoftOutput> out;
  out.reserve(ys.size());
  for (const linalg::CVec& y : ys) {
    out.push_back(flex_->detect_soft(y));
    ++vectors_detected_;
    total_stats_ += out.back().hard.stats;
  }
  return out;
}

}  // namespace flexcore::api
