#include "api/uplink_pipeline.h"

#include <stdexcept>

namespace flexcore::api {

UplinkPipeline::UplinkPipeline(const PipelineConfig& cfg)
    : cfg_(cfg),
      constellation_(cfg.qam_order),
      pool_(cfg.threads > 0 ? cfg.threads : parallel::default_thread_count()) {
  DetectorConfig dcfg = cfg.tuning;
  dcfg.constellation = &constellation_;
  det_ = make_detector(cfg.detector, dcfg);
  det_->set_thread_pool(&pool_);
  flex_ = dynamic_cast<core::FlexCoreDetector*>(det_.get());
}

void UplinkPipeline::require_channel(const char* where) const {
  if (!channel_set_) {
    throw std::logic_error(std::string("UplinkPipeline::") + where +
                           ": set_channel has not been called");
  }
}

void UplinkPipeline::set_channel(const linalg::CMat& h, double noise_var) {
  det_->set_channel(h, noise_var);
  channel_set_ = true;
  ++channel_installs_;
}

detect::BatchResult UplinkPipeline::detect(
    std::span<const linalg::CVec> ys) {
  require_channel("detect");
  detect::BatchResult out;
  det_->detect_batch(ys, &out);
  vectors_detected_ += ys.size();
  total_stats_ += out.stats;
  return out;
}

detect::DetectionResult UplinkPipeline::detect_one(const linalg::CVec& y) {
  require_channel("detect_one");
  detect::DetectionResult res = det_->detect(y);
  ++vectors_detected_;
  total_stats_ += res.stats;
  return res;
}

std::vector<core::SoftOutput> UplinkPipeline::detect_soft(
    std::span<const linalg::CVec> ys) {
  require_channel("detect_soft");
  if (flex_ == nullptr) {
    throw std::logic_error("UplinkPipeline::detect_soft: detector \"" +
                           cfg_.detector + "\" has no soft output");
  }
  std::vector<core::SoftOutput> out;
  out.reserve(ys.size());
  for (const linalg::CVec& y : ys) {
    out.push_back(flex_->detect_soft(y));
    ++vectors_detected_;
    total_stats_ += out.back().hard.stats;
  }
  return out;
}

}  // namespace flexcore::api
