#include "api/runtime.h"

#include "parallel/hot_path_guard.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace flexcore::api {

using Clock = std::chrono::steady_clock;

const char* to_string(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kBlock: return "block";
    case QueuePolicy::kDropNewest: return "drop-newest";
    case QueuePolicy::kDeadlineExpire: return "deadline-expire";
  }
  return "?";
}

const char* to_string(TicketStatus status) {
  switch (status) {
    case TicketStatus::kPending: return "pending";
    case TicketStatus::kDone: return "done";
    case TicketStatus::kDropped: return "dropped";
    case TicketStatus::kExpired: return "expired";
    case TicketStatus::kFailed: return "failed";
    case TicketStatus::kQuarantined: return "quarantined";
  }
  return "?";
}

const char* to_string(CellHealth health) {
  switch (health) {
    case CellHealth::kHealthy: return "healthy";
    case CellHealth::kDegraded: return "degraded";
    case CellHealth::kQuarantining: return "quarantining";
  }
  return "?";
}

// ------------------------------------------------------------- FrameTicket

/// Shared between the submitting thread, the completing thread and every
/// FrameTicket copy.  Guarded by its own mutex so ticket polling never
/// contends with the runtime lock.
struct TicketState {
  std::mutex mu;
  std::condition_variable cv;
  /// Published state: what wait()/try_get()/take() observe.  Stays
  /// kPending until the registered callbacks have RETURNED, so a waiter
  /// can never move the result out (take) while a callback still reads it.
  TicketStatus status = TicketStatus::kPending;
  /// Decided outcome, set when completion begins (callbacks may still be
  /// running).  != kPending means late on_complete registrations fire
  /// immediately instead of queueing (the queue was already drained).
  TicketStatus final_status = TicketStatus::kPending;
  FrameResult result;
  std::string error;
  std::vector<std::function<void(TicketStatus, const FrameResult*)>>
      callbacks;
  /// take() consumed the result: late callbacks observe nullptr instead of
  /// the moved-from shell.
  bool taken = false;
  /// Callbacks registered after completion, currently running unlocked
  /// with a pointer into `result`; take() waits for them to finish so the
  /// move can never race a reader.
  int late_readers = 0;
  std::uint64_t seq = 0;
  std::size_t cell_id = 0;
};

namespace {

/// Transitions a ticket to its terminal state: stores the outcome, fires
/// the registered callbacks (outside the ticket lock), and only THEN
/// publishes the status and wakes waiters — callbacks read the result in
/// place, so nothing may be able to take() it concurrently.
void complete_ticket(TicketState& st, TicketStatus status,
                     FrameResult&& result, std::string&& error) {
  std::vector<std::function<void(TicketStatus, const FrameResult*)>> cbs;
  {
    std::lock_guard lock(st.mu);
    parallel::guard_detail::note_lock();
    st.final_status = status;
    st.result = std::move(result);
    st.error = std::move(error);
    cbs.swap(st.callbacks);
  }
  const FrameResult* r =
      status == TicketStatus::kDone ? &st.result : nullptr;
  for (auto& cb : cbs) {
    // Callbacks must not throw.  One that does must not be allowed to
    // derail the completion protocol (status unpublished -> waiters hang,
    // exception escaping a dispatcher -> std::terminate), so it is
    // swallowed here.
    try {
      cb(status, r);
    } catch (...) {
    }
  }
  {
    std::lock_guard lock(st.mu);
    parallel::guard_detail::note_lock();
    st.status = status;
  }
  st.cv.notify_all();
}

}  // namespace

FrameTicket::FrameTicket(std::shared_ptr<TicketState> st)
    : st_(std::move(st)) {}

FrameTicket::~FrameTicket() = default;

TicketStatus FrameTicket::status() const {
  std::lock_guard lock(st_->mu);
  parallel::guard_detail::note_lock();
  return st_->status;
}

TicketStatus FrameTicket::wait() const {
  std::unique_lock lock(st_->mu);
  parallel::guard_detail::note_lock();
  st_->cv.wait(lock, [&] { return st_->status != TicketStatus::kPending; });
  return st_->status;
}

TicketStatus FrameTicket::wait_for(
    std::chrono::steady_clock::duration timeout) const {
  std::unique_lock lock(st_->mu);
  parallel::guard_detail::note_lock();
  st_->cv.wait_for(lock, timeout,
                   [&] { return st_->status != TicketStatus::kPending; });
  return st_->status;  // kPending iff the wait timed out
}

const FrameResult* FrameTicket::try_get() const {
  std::lock_guard lock(st_->mu);
  parallel::guard_detail::note_lock();
  // A taken result is gone: expose "no result", never the moved-from shell.
  return st_->status == TicketStatus::kDone && !st_->taken ? &st_->result
                                                           : nullptr;
}

FrameResult FrameTicket::take() {
  std::unique_lock lock(st_->mu);
  parallel::guard_detail::note_lock();
  if (st_->status != TicketStatus::kDone) {
    throw std::logic_error(std::string("FrameTicket::take: status is ") +
                           to_string(st_->status));
  }
  if (st_->taken) {
    throw std::logic_error("FrameTicket::take: result already taken");
  }
  // A late-registered callback may be reading the result unlocked right
  // now; moving it out from under the read would be a data race.
  st_->cv.wait(lock, [&] { return st_->late_readers == 0; });
  if (st_->taken) {  // a concurrent take() won the race while we waited
    throw std::logic_error("FrameTicket::take: result already taken");
  }
  st_->taken = true;
  return std::move(st_->result);
}

std::string FrameTicket::error() const {
  std::lock_guard lock(st_->mu);
  parallel::guard_detail::note_lock();
  return st_->error;
}

void FrameTicket::on_complete(
    std::function<void(TicketStatus, const FrameResult*)> fn) {
  TicketStatus now;
  const FrameResult* r = nullptr;
  {
    std::lock_guard lock(st_->mu);
    parallel::guard_detail::note_lock();
    // final_status (not status): once completion began the callback list
    // was drained, so queueing here would silently lose the callback.
    if (st_->final_status == TicketStatus::kPending) {
      st_->callbacks.push_back(std::move(fn));
      return;
    }
    now = st_->final_status;
    // Late fire: pin the result against take() while the callback reads it
    // (a result already taken is gone — the callback gets nullptr).
    if (now == TicketStatus::kDone && !st_->taken) {
      r = &st_->result;
      ++st_->late_readers;
    }
  }
  if (r == nullptr) {
    fn(now, r);  // nothing pinned; a throw is the caller's own problem
    return;
  }
  try {
    fn(now, r);
  } catch (...) {
    release_late_reader();
    throw;  // rethrown on the registering thread with the pin released
  }
  release_late_reader();
}

void FrameTicket::release_late_reader() {
  {
    std::lock_guard lock(st_->mu);
    parallel::guard_detail::note_lock();
    --st_->late_readers;
  }
  st_->cv.notify_all();
}

std::uint64_t FrameTicket::sequence() const { return st_->seq; }
std::size_t FrameTicket::cell_id() const { return st_->cell_id; }

// ----------------------------------------------------------------- Runtime

Runtime::Runtime(const RuntimeConfig& cfg)
    : cfg_(cfg),
      pool_(cfg.threads > 0 ? cfg.threads : parallel::default_thread_count()) {
  if (cfg_.queue_capacity == 0) {
    throw std::invalid_argument("Runtime: queue_capacity must be >= 1");
  }
  dispatchers_.reserve(cfg_.dispatchers);
  for (std::size_t d = 0; d < cfg_.dispatchers; ++d) {
    dispatchers_.emplace_back([this, d] {
      char track[32];
      std::snprintf(track, sizeof(track), "dispatcher%zu", d);
      obs::set_thread_track(track);
      dispatcher_loop();
    });
  }
}

Runtime::~Runtime() {
  {
    std::lock_guard lock(mu_);
    parallel::guard_detail::note_lock();
    shutdown_ = true;
  }
  runnable_cv_.notify_all();
  space_cv_.notify_all();  // blocked submitters throw on wake
  if (dispatchers_.empty()) {
    while (run_one()) {  // poll mode: pump the remaining frames here
    }
  }
  for (auto& t : dispatchers_) t.join();
}

Cell& Runtime::open_cell(const CellConfig& cfg) {
  std::lock_guard lock(mu_);
  parallel::guard_detail::note_lock();
  cells_.emplace_back(new Cell(cells_.size(), cfg, &pool_));
  return *cells_.back();
}

std::size_t Runtime::cell_count() const {
  std::lock_guard lock(mu_);
  parallel::guard_detail::note_lock();
  return cells_.size();
}

FrameTicket Runtime::submit(Cell& cell, const FrameJob& job,
                            std::uint64_t deadline_us) {
  // Shape checks always; the per-entry non-finite scan only when the
  // admission knob asks for it (see RuntimeConfig::admission_scan) —
  // detect_frame re-runs the full check on the dispatch path either way,
  // quarantining instead of throwing.
  validate_frame_job(job, cfg_.admission_scan ? FrameCheck::kFull
                                              : FrameCheck::kShape);
  const std::uint64_t sub_t0_ns = obs::tracing_enabled() ? obs::now_ns() : 0;
  auto st = std::make_shared<TicketState>();
  st->cell_id = cell.id_;

  std::unique_lock lock(mu_);
  parallel::guard_detail::note_lock();
  while (true) {
    if (shutdown_) {
      throw std::logic_error("Runtime::submit: runtime is shutting down");
    }
    if (queued_total_ < cfg_.queue_capacity) break;
    switch (cfg_.policy) {
      case QueuePolicy::kDropNewest: {
        st->seq = cell.next_seq_++;
        ++cell.frames_in_;
        ++cell.frames_dropped_;
        obs::counter_add(obs::Counter::kFramesDropped);
        if (cell.note_outcome(Cell::Outcome::kShed)) {
          obs::counter_add(obs::Counter::kWatchdogTransitions);
        }
        lock.unlock();
        FrameTicket ticket(st);
        complete_ticket(*st, TicketStatus::kDropped, FrameResult{}, "");
        return ticket;
      }
      case QueuePolicy::kDeadlineExpire: {
        if (expire_stale(lock)) continue;  // re-check capacity
        // Nothing stale yet: sleep until the earliest queued deadline (or
        // a slot frees), then loop — expire_stale will catch whatever went
        // stale in the meantime.  An untimed wait here would never expire
        // anything in poll mode (nobody else wakes this thread).
        const auto wake = earliest_deadline_locked();
        const auto have_space = [&] {
          return shutdown_ || queued_total_ < cfg_.queue_capacity;
        };
        if (wake == Clock::time_point::max()) {
          space_cv_.wait(lock, have_space);
        } else {
          space_cv_.wait_until(lock, wake, have_space);
        }
        continue;
      }
      case QueuePolicy::kBlock:
        space_cv_.wait(lock, [&] {
          return shutdown_ || queued_total_ < cfg_.queue_capacity;
        });
        break;
    }
  }

  // Sequence numbers are assigned at ENQUEUE time, so per-cell queue order,
  // sequence order and completion order all coincide.
  st->seq = cell.next_seq_++;
  ++cell.frames_in_;
  Cell::Pending pf;
  pf.job = job;
  // Decide the frame's trace identity exactly once: a ShardedRuntime (or a
  // caller stamping jobs itself) already decided, the monolithic path
  // decides here — under the runtime lock, so the id sequence follows
  // admission order.
  if (!pf.job.trace.decided) {
    pf.job.trace = obs::begin_frame(static_cast<std::uint32_t>(cell.id_));
  }
  const obs::TraceCtx trace = pf.job.trace;
  pf.ticket = st;
  pf.submitted = Clock::now();
  pf.deadline = deadline_us > 0
                    ? pf.submitted + std::chrono::microseconds(deadline_us)
                    : Clock::time_point::max();
  cell.queue_.push_back(std::move(pf));
  ++queued_total_;
  obs::counter_add(obs::Counter::kFramesSubmitted);
  if (!cell.scheduled_) {
    cell.scheduled_ = true;
    runnable_.push_back(&cell);
    runnable_cv_.notify_one();
  }
  if (obs::want_span(trace) && sub_t0_ns != 0) {
    // Admission span: submit() entry to enqueue — the blocking wait under
    // backpressure is exactly this span's duration.
    obs::record_span(obs::Stage::kSubmit, sub_t0_ns, obs::now_ns(), trace);
  }
  return FrameTicket(std::move(st));
}

FrameTicket Runtime::reconfigure(Cell& cell, const CellReconfig& rc) {
  if (rc.detector.empty()) {
    throw std::invalid_argument("Runtime::reconfigure: empty detector spec");
  }
  // Resolve the effective tuning at CALL time (cfg_.tuning is
  // runtime-guarded state), so a queued earlier tuning change can never
  // alter what this call validated.
  DetectorConfig tuning;
  {
    std::lock_guard lock(mu_);
    parallel::guard_detail::note_lock();
    if (shutdown_) {
      throw std::logic_error("Runtime::reconfigure: runtime is shutting down");
    }
    tuning = rc.tuning ? *rc.tuning : cell.cfg_.tuning;
  }
  // Build the swap's detector HERE, outside the lock: construction is the
  // validation (a typo throws at the call site), the apply step merely
  // adopts the finished object, and dispatchers never stall behind a
  // control-plane build.
  DetectorConfig dcfg = tuning;
  dcfg.constellation = &cell.constellation();
  std::unique_ptr<detect::Detector> prebuilt = make_detector(rc.detector, dcfg);

  auto st = std::make_shared<TicketState>();
  st->cell_id = cell.id_;

  std::unique_lock lock(mu_);
  parallel::guard_detail::note_lock();
  if (shutdown_) {
    throw std::logic_error("Runtime::reconfigure: runtime is shutting down");
  }
  // FIFO slot: same sequence counter as frames, so ordering is provable
  // from tickets alone.  No capacity check — control messages must get
  // through exactly when the data plane is saturated.
  st->seq = cell.next_seq_++;
  Cell::Pending pf;
  pf.reconfig = CellReconfig{rc.detector, tuning};
  pf.prebuilt = std::move(prebuilt);
  pf.ticket = st;
  pf.submitted = Clock::now();
  pf.deadline = Clock::time_point::max();
  cell.queue_.push_back(std::move(pf));
  ++cell.queued_reconfigs_;
  ++queued_reconfigs_;
  if (!cell.scheduled_) {
    cell.scheduled_ = true;
    runnable_.push_back(&cell);
    runnable_cv_.notify_one();
  }
  return FrameTicket(std::move(st));
}

Clock::time_point Runtime::earliest_deadline_locked() const {
  auto earliest = Clock::time_point::max();
  for (const auto& cell : cells_) {
    for (const auto& pf : cell->queue_) {
      if (pf.deadline < earliest) earliest = pf.deadline;
    }
  }
  return earliest;
}

bool Runtime::expire_stale(std::unique_lock<std::mutex>& lock) {
  const auto now = Clock::now();
  std::vector<std::shared_ptr<TicketState>> expired;
  for (auto& cell : cells_) {
    auto& q = cell->queue_;
    for (auto it = q.begin(); it != q.end();) {
      if (it->deadline < now) {
        expired.push_back(std::move(it->ticket));
        it = q.erase(it);
        --queued_total_;
        ++cell->frames_expired_;
        if (cell->note_outcome(Cell::Outcome::kShed)) {
          obs::counter_add(obs::Counter::kWatchdogTransitions);
        }
      } else {
        ++it;
      }
    }
    if (q.empty() && cell->scheduled_ && !cell->busy_) {
      runnable_.erase(
          std::remove(runnable_.begin(), runnable_.end(), cell.get()),
          runnable_.end());
      cell->scheduled_ = false;
    }
  }
  if (expired.empty()) return false;
  obs::counter_add(obs::Counter::kFramesExpired, expired.size());
  space_cv_.notify_all();
  drain_cv_.notify_all();
  lock.unlock();
  for (auto& st : expired) {
    complete_ticket(*st, TicketStatus::kExpired, FrameResult{}, "");
  }
  lock.lock();
  parallel::guard_detail::note_lock();  // re-acquired after unlocked section
  return true;
}

void Runtime::process_next(std::unique_lock<std::mutex>& lock) {
  Cell* cell = runnable_.front();
  runnable_.pop_front();
  cell->busy_ = true;  // scheduled_ stays true while busy
  Cell::Pending pf = std::move(cell->queue_.front());
  cell->queue_.pop_front();
  if (pf.reconfig) {
    apply_reconfig(lock, cell, pf);
    return;
  }
  --queued_total_;
  ++in_flight_;
  space_cv_.notify_one();
  // The cell's coherence policy ORs with the job's own flag; only valid
  // once a first frame warmed the per-subcarrier preprocessing caches.
  const bool reuse = pf.job.reuse_preprocessing ||
                     (cell->cfg_.reuse_preprocessing && cell->warm_);
  const auto dispatch_start = Clock::now();
  lock.unlock();

  TicketStatus status;
  FrameResult result;
  std::string error;
  // Stage timings of this frame, captured before the result is moved into
  // the ticket; recorded into the per-stage histograms under the re-taken
  // lock below (kDone only).
  double pre_us = 0.0, grid_us = 0.0, rec_us = 0.0;
  if (cfg_.policy == QueuePolicy::kDeadlineExpire &&
      Clock::now() > pf.deadline) {
    status = TicketStatus::kExpired;  // never occupies the PE pool
  } else {
    FrameJob job = pf.job;
    job.reuse_preprocessing = reuse;
    try {
      result = cell->pipe_.detect_frame(job);
      status = TicketStatus::kDone;
      pre_us = result.preprocess_seconds * 1e6;
      grid_us = result.detect_seconds * 1e6;
      rec_us = result.reconstruct_seconds * 1e6;
    } catch (const NonFiniteError& e) {
      // Corrupt payload/channel caught by the pipeline's full scan: an
      // input fault, not a detection failure — quarantine the frame so
      // callers can tell "your data was bad" from "detection broke".
      status = TicketStatus::kQuarantined;
      error = e.what();
    } catch (const NumericError& e) {
      // Finite but numerically unusable channel (rank-deficient QR): the
      // pipeline already invalidated its preprocessing caches.
      status = TicketStatus::kQuarantined;
      error = e.what();
    } catch (const std::exception& e) {
      status = TicketStatus::kFailed;
      error = e.what();
    }
  }
  const auto done = Clock::now();
  const double latency_us =
      std::chrono::duration<double, std::micro>(done - pf.submitted).count();
  const double queue_wait_us =
      std::chrono::duration<double, std::micro>(dispatch_start - pf.submitted)
          .count();
  if (obs::want_span(pf.job.trace) && status == TicketStatus::kDone) {
    obs::record_span(obs::Stage::kQueueWait, obs::to_ns(pf.submitted),
                     obs::to_ns(dispatch_start), pf.job.trace);
    obs::record_span(obs::Stage::kComplete, obs::to_ns(pf.submitted),
                     obs::to_ns(done), pf.job.trace);
  }

  // Ticket first (callbacks run without any lock), bookkeeping second.
  // The cell is NOT released until the callbacks return: that is what
  // makes per-dispatch callback order strictly FIFO per cell — the cell's
  // next frame cannot complete (or even start) while this frame's
  // callbacks run.
  complete_ticket(*pf.ticket, status, std::move(result), std::move(error));

  // One critical section for outcome counters AND the in-flight/busy
  // release, so stats() never observes a frame double-counted as both
  // completed and in flight (an observer woken by the ticket may briefly
  // still see it as in flight — the consistent direction).
  lock.lock();
  parallel::guard_detail::note_lock();  // re-acquired after unlocked section
  bool transitioned = false;
  switch (status) {
    case TicketStatus::kDone:
      ++cell->frames_out_;
      cell->warm_ = true;
      latency_.record(latency_us);
      // Per-stage breakdown, one sample per stage per kDone frame (reuse
      // hits record a 0 us preprocess sample), so every dispatch-side
      // stage count equals latency_count.
      stage_record(obs::Stage::kQueueWait, queue_wait_us);
      stage_record(obs::Stage::kPreprocess, pre_us);
      stage_record(obs::Stage::kPathGrid, grid_us);
      stage_record(obs::Stage::kReconstruct, rec_us);
      stage_record(obs::Stage::kComplete, latency_us);
      obs::counter_add(obs::Counter::kFramesCompleted);
      transitioned = cell->note_outcome(Cell::Outcome::kOk);
      break;
    case TicketStatus::kExpired:
      ++cell->frames_expired_;
      obs::counter_add(obs::Counter::kFramesExpired);
      transitioned = cell->note_outcome(Cell::Outcome::kShed);
      break;
    case TicketStatus::kFailed:
      ++cell->frames_failed_;
      // Whatever threw may have left the frame detectors' per-channel
      // state partially updated: force the next frame to re-preprocess.
      cell->warm_ = false;
      obs::counter_add(obs::Counter::kFramesFailed);
      transitioned = cell->note_outcome(Cell::Outcome::kBad);
      break;
    case TicketStatus::kQuarantined:
      ++cell->frames_quarantined_;
      // The pipeline invalidated its preprocessing caches; drop the
      // cell-level warmup too so coherence reuse restarts cleanly.
      cell->warm_ = false;
      obs::counter_add(obs::Counter::kFramesQuarantined);
      transitioned = cell->note_outcome(Cell::Outcome::kBad);
      break;
    default: break;
  }
  if (transitioned) {
    obs::counter_add(obs::Counter::kWatchdogTransitions);
  }
  --in_flight_;
  release_cell_locked(cell);
}

void Runtime::apply_reconfig(std::unique_lock<std::mutex>& lock, Cell* cell,
                             Cell::Pending& pf) {
  --cell->queued_reconfigs_;
  --queued_reconfigs_;
  ++in_flight_reconfigs_;
  cell->busy_reconfig_ = true;
  const CellReconfig rc = std::move(*pf.reconfig);
  std::unique_ptr<detect::Detector> prebuilt = std::move(pf.prebuilt);
  // The swap runs unlocked — the cell is serialized by busy_, so the
  // pipeline is exclusively ours, and other cells keep dispatching.  The
  // detector was built (and thereby validated) at reconfigure() time with
  // the tuning carried in the entry; adoption cannot fail.
  lock.unlock();

  TicketStatus status = TicketStatus::kDone;
  std::string error;
  try {
    cell->pipe_.adopt_detector(std::move(prebuilt), rc.detector, *rc.tuning);
  } catch (const std::exception& e) {
    status = TicketStatus::kFailed;  // defensive; adoption does not throw
    error = e.what();
  }
  // Same FIFO-callback contract as frames: the cell is not released (so
  // its next frame cannot start) until the ticket's callbacks returned.
  complete_ticket(*pf.ticket, status, FrameResult{}, std::move(error));

  lock.lock();
  parallel::guard_detail::note_lock();  // re-acquired after unlocked section
  if (status == TicketStatus::kDone) {
    cell->cfg_.detector = rc.detector;
    if (rc.tuning) cell->cfg_.tuning = *rc.tuning;
    // The swapped detector has no preprocessing caches: the next frame
    // re-preprocesses even under the cell's coherence policy.
    cell->warm_ = false;
    ++cell->reconfigs_;
    obs::counter_add(obs::Counter::kReconfigsApplied);
  }
  cell->busy_reconfig_ = false;
  --in_flight_reconfigs_;
  release_cell_locked(cell);
}

void Runtime::release_cell_locked(Cell* cell) {
  cell->busy_ = false;
  if (!cell->queue_.empty()) {
    runnable_.push_back(cell);  // round-robin across cells
    runnable_cv_.notify_one();
  } else {
    cell->scheduled_ = false;
  }
  drain_cv_.notify_all();
}

bool Runtime::run_one() {
  std::unique_lock lock(mu_);
  parallel::guard_detail::note_lock();
  if (runnable_.empty()) return false;
  process_next(lock);
  return true;
}

void Runtime::dispatcher_loop() {
  std::unique_lock lock(mu_);
  parallel::guard_detail::note_lock();
  for (;;) {
    runnable_cv_.wait(lock,
                      [&] { return shutdown_ || !runnable_.empty(); });
    if (!runnable_.empty()) {
      process_next(lock);
      continue;  // drain everything before honouring shutdown
    }
    if (shutdown_) return;
  }
}

void Runtime::drain() {
  const auto idle = [&] {
    return queued_total_ == 0 && queued_reconfigs_ == 0 &&
           in_flight_ == 0 && in_flight_reconfigs_ == 0;
  };
  if (cfg_.dispatchers == 0) {
    // Poll mode: pump the queue on this thread; if another thread is
    // mid-frame, wait for its completion notification and re-check.
    for (;;) {
      while (run_one()) {
      }
      std::unique_lock lock(mu_);
      parallel::guard_detail::note_lock();
      if (idle()) return;
      drain_cv_.wait(lock);
    }
  }
  std::unique_lock lock(mu_);
  parallel::guard_detail::note_lock();
  drain_cv_.wait(lock, idle);
}

RuntimeStats Runtime::stats() const {
  std::lock_guard lock(mu_);
  parallel::guard_detail::note_lock();
  RuntimeStats out;
  out.cells.reserve(cells_.size());
  for (const auto& cell : cells_) {
    CellStats cs;
    cs.cell_id = cell->id_;
    cs.name = cell->cfg_.name;
    cs.detector = cell->cfg_.detector;
    cs.frames_in = cell->frames_in_;
    cs.frames_out = cell->frames_out_;
    cs.frames_dropped = cell->frames_dropped_;
    cs.frames_expired = cell->frames_expired_;
    cs.frames_failed = cell->frames_failed_;
    cs.frames_quarantined = cell->frames_quarantined_;
    cs.health = cell->health_;
    cs.health_transitions = cell->health_transitions_;
    cs.reconfigs = cell->reconfigs_;
    // Control messages are not frames: queue_depth/in_flight stay
    // frame-only so the stats invariant holds across reconfigurations.
    cs.queue_depth = cell->queue_.size() - cell->queued_reconfigs_;
    cs.in_flight = (cell->busy_ && !cell->busy_reconfig_) ? 1 : 0;
    out.frames_in += cs.frames_in;
    out.frames_out += cs.frames_out;
    out.frames_dropped += cs.frames_dropped;
    out.frames_expired += cs.frames_expired;
    out.frames_failed += cs.frames_failed;
    out.frames_quarantined += cs.frames_quarantined;
    out.reconfigs += cs.reconfigs;
    out.cells.push_back(std::move(cs));
  }
  out.queue_depth = queued_total_;
  out.in_flight = in_flight_;
  out.latency_count = latency_.count();
  out.latency_mean_us = latency_.mean_us();
  out.latency_p50_us = latency_.quantile_us(0.50);
  out.latency_p99_us = latency_.quantile_us(0.99);
  out.latency_buckets = latency_.buckets();
  out.stage_latency = stage_latency_;
  return out;
}

}  // namespace flexcore::api
