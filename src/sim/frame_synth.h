// Synthetic frame workloads: random Rayleigh channels per subcarrier plus
// random QAM transmissions over them, in the subcarrier-major FrameJob
// layout — one frame of uplink detection work without a full coded link.
// Shared by the frame/runtime test suites and the runtime benches so the
// workload they measure and the workload the bit-identity tests verify can
// never drift apart.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "api/uplink_pipeline.h"
#include "detect/detector.h"
#include "channel/channel.h"
#include "channel/rng.h"
#include "linalg/matrix.h"
#include "modulation/constellation.h"

namespace flexcore::sim {

/// One synthetic frame.  ys[f * nv + t] is OFDM symbol t of subcarrier f.
struct SynthFrame {
  std::vector<linalg::CMat> channels;
  std::vector<linalg::CVec> ys;
  /// Transmitted symbol indices, vector-major: tx[(f * nv + t) * nt + u]
  /// is user u of vector (f, t) — the ground truth closed-loop drivers
  /// score detection against.
  std::vector<int> tx;
  std::size_t nv = 0;  ///< vectors (OFDM symbols) per channel
};

/// Random QAM transmissions over the given per-subcarrier channels
/// (recording the transmitted indices); `channels` is copied into the
/// frame.
inline SynthFrame synth_frame_over(
    const modulation::Constellation& c,
    std::span<const linalg::CMat> channels, std::size_t nv,
    double noise_var, channel::Rng& rng) {
  SynthFrame fr;
  fr.nv = nv;
  fr.channels.assign(channels.begin(), channels.end());
  const std::size_t nsc = fr.channels.size();
  const std::size_t nt = nsc > 0 ? fr.channels.front().cols() : 0;
  linalg::CVec s(nt);
  fr.ys.reserve(nsc * nv);
  fr.tx.reserve(nsc * nv * nt);
  for (std::size_t f = 0; f < nsc; ++f) {
    for (std::size_t t = 0; t < nv; ++t) {
      for (std::size_t u = 0; u < nt; ++u) {
        const int x = static_cast<int>(
            rng.uniform_int(static_cast<std::uint64_t>(c.order())));
        fr.tx.push_back(x);
        s[u] = c.point(x);
      }
      fr.ys.push_back(channel::transmit(fr.channels[f], s, noise_var, rng));
    }
  }
  return fr;
}

inline SynthFrame synth_frame(const modulation::Constellation& c,
                              std::size_t nsc, std::size_t nv, std::size_t nr,
                              std::size_t nt, double noise_var,
                              std::uint64_t seed) {
  channel::Rng rng(seed);
  std::vector<linalg::CMat> channels;
  channels.reserve(nsc);
  for (std::size_t f = 0; f < nsc; ++f) {
    channels.push_back(channel::rayleigh_iid(nr, nt, rng));
  }
  return synth_frame_over(c, channels, nv, noise_var, rng);
}

/// Symbol errors of a detection run against the frame's recorded ground
/// truth.  `results` follows the frame's ys layout.
inline std::size_t count_symbol_errors(
    const SynthFrame& fr, std::span<const detect::DetectionResult> results) {
  std::size_t errors = 0;
  for (std::size_t v = 0; v < results.size(); ++v) {
    const auto& symbols = results[v].symbols;
    for (std::size_t u = 0; u < symbols.size(); ++u) {
      errors += symbols[u] != fr.tx[v * symbols.size() + u];
    }
  }
  return errors;
}

/// The frame viewed as a FrameJob (spans BORROW fr — keep it alive).
inline api::FrameJob frame_job_of(const SynthFrame& fr, double noise_var) {
  api::FrameJob job;
  job.channels = fr.channels;
  job.ys = fr.ys;
  job.vectors_per_channel = fr.nv;
  job.noise_var = noise_var;
  return job;
}

}  // namespace flexcore::sim
