// Synthetic frame workloads: random Rayleigh channels per subcarrier plus
// random QAM transmissions over them, in the subcarrier-major FrameJob
// layout — one frame of uplink detection work without a full coded link.
// Shared by the frame/runtime test suites and the runtime benches so the
// workload they measure and the workload the bit-identity tests verify can
// never drift apart.
#pragma once

#include <cstdint>
#include <vector>

#include "api/uplink_pipeline.h"
#include "channel/channel.h"
#include "channel/rng.h"
#include "linalg/matrix.h"
#include "modulation/constellation.h"

namespace flexcore::sim {

/// One synthetic frame.  ys[f * nv + t] is OFDM symbol t of subcarrier f.
struct SynthFrame {
  std::vector<linalg::CMat> channels;
  std::vector<linalg::CVec> ys;
  std::size_t nv = 0;  ///< vectors (OFDM symbols) per channel
};

inline SynthFrame synth_frame(const modulation::Constellation& c,
                              std::size_t nsc, std::size_t nv, std::size_t nr,
                              std::size_t nt, double noise_var,
                              std::uint64_t seed) {
  channel::Rng rng(seed);
  SynthFrame fr;
  fr.nv = nv;
  fr.channels.reserve(nsc);
  for (std::size_t f = 0; f < nsc; ++f) {
    fr.channels.push_back(channel::rayleigh_iid(nr, nt, rng));
  }
  linalg::CVec s(nt);
  fr.ys.reserve(nsc * nv);
  for (std::size_t f = 0; f < nsc; ++f) {
    for (std::size_t t = 0; t < nv; ++t) {
      for (std::size_t u = 0; u < nt; ++u) {
        s[u] = c.point(static_cast<int>(
            rng.uniform_int(static_cast<std::uint64_t>(c.order()))));
      }
      fr.ys.push_back(channel::transmit(fr.channels[f], s, noise_var, rng));
    }
  }
  return fr;
}

/// The frame viewed as a FrameJob (spans BORROW fr — keep it alive).
inline api::FrameJob frame_job_of(const SynthFrame& fr, double noise_var) {
  api::FrameJob job;
  job.channels = fr.channels;
  job.ys = fr.ys;
  job.vectors_per_channel = fr.nv;
  job.noise_var = noise_var;
  return job;
}

}  // namespace flexcore::sim
