// DEPRECATED shim.  The (vector x path) task grid moved to
// detect/path_grid.h, and batching is now part of the Detector interface
// itself: prefer Detector::detect_batch (with a pool attached via
// set_thread_pool, or through api::UplinkPipeline), which also applies the
// SIC-fallback policy this free-function grid punts to callers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "detect/path_grid.h"

namespace flexcore::sim {

using detect::PathParallelDetector;

/// Deprecated alias of detect::PathGridOutput (kept for source compat).
using BatchDetectOutput = detect::PathGridOutput;

/// Deprecated: use Detector::detect_batch or detect::run_path_grid.
template <PathParallelDetector D>
BatchDetectOutput batch_detect(const D& det, std::size_t num_paths,
                               const std::vector<linalg::CVec>& ys,
                               parallel::ThreadPool& pool) {
  return detect::run_path_grid(
      det, num_paths, std::span<const linalg::CVec>(ys.data(), ys.size()),
      pool);
}

}  // namespace flexcore::sim
