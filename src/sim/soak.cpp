#include "sim/soak.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "channel/channel.h"
#include "channel/rng.h"
#include "channel/trace.h"
#include "sim/frame_synth.h"

namespace flexcore::sim {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// One terminal completion, recorded from the ticket callback (any thread).
struct CompletionEvent {
  std::size_t cell_id = 0;
  std::uint64_t seq = 0;
  api::TicketStatus status = api::TicketStatus::kPending;
};

struct CompletionLog {
  std::mutex mu;
  std::vector<CompletionEvent> events;
  void note(std::size_t cell, std::uint64_t seq, api::TicketStatus st) {
    std::lock_guard lock(mu);
    events.push_back({cell, seq, st});
  }
};

/// One submitted frame kept alive until the campaign ends (the runtime
/// borrows the SynthFrame's spans until the ticket is terminal; a stalled
/// shard driver may read them a little longer still).
struct PendingFrame {
  api::FrameTicket ticket;
  std::shared_ptr<SynthFrame> frame;
  std::size_t cell_id = 0;
  fault::FaultKind kind = fault::FaultKind::kNone;
  bool corrupted = false;  ///< fault::corrupts_frame(kind)
  bool storm_dup = false;  ///< duplicate submit of a storm burst
  std::string spec;        ///< detector live when this frame dispatches
};

struct CellCtx {
  api::Cell* cell = nullptr;  ///< null until the cell opens
  channel::ChannelTrace trace;
  channel::Rng rng{0};
  std::string spec;
  std::uint64_t frame_index = 0;  ///< per-cell fault-decision clock
};

/// Churn schedule: whole 16-round outage windows rotating across cells,
/// plus the last cell only opening a quarter of the way into the campaign.
bool participates(const SoakScenarioConfig& cfg, std::size_t j,
                  std::size_t r) {
  if (!cfg.churn) return true;
  if (j + 1 == cfg.cells && r < cfg.rounds / 4) return false;
  return ((r / 16) + j) % 4 != 3;
}

bool nonfinite_kind(fault::FaultKind kind) {
  return kind == fault::FaultKind::kNonFinitePayload ||
         kind == fault::FaultKind::kNonFiniteChannel;
}

/// Per-cell counter identity of one stats snapshot; append a violation per
/// broken cell.  Valid at ANY instant (the runtime snapshots under its
/// lock), which is what makes it a continuous soak invariant.
void check_accounting(const api::RuntimeStats& rs, const std::string& when,
                      std::vector<std::string>& violations) {
  for (const api::CellStats& cs : rs.cells) {
    const std::uint64_t accounted = cs.frames_out + cs.frames_dropped +
                                    cs.frames_expired + cs.frames_failed +
                                    cs.frames_quarantined;
    if (cs.frames_in != accounted + cs.queue_depth + cs.in_flight) {
      violations.push_back(when + ": counter identity broken for " + cs.name +
                           " (in=" + std::to_string(cs.frames_in) +
                           " accounted=" + std::to_string(accounted) + ")");
    }
  }
}

}  // namespace

SoakScenarioReport run_soak_scenario(const SoakScenarioConfig& cfg) {
  SoakScenarioReport rep;
  rep.name = cfg.name;
  const auto t_start = std::chrono::steady_clock::now();

  // Declaration order is lifetime order: the injector (probe), completion
  // log (callbacks) and pending frames (borrowed spans) must all outlive
  // the runtime — a stalled shard driver can still be winding down inside
  // the runtime's destructor.
  fault::Injector injector(cfg.faults);
  CompletionLog log;
  std::vector<PendingFrame> pending;
  std::vector<api::FrameTicket> control;  // reconfigure tickets
  pending.reserve(cfg.rounds * cfg.cells * (cfg.frames_per_cell + 2));

  api::ShardedRuntimeConfig scfg;
  scfg.shards = std::max<std::size_t>(1, cfg.shards);
  scfg.shard_stall_budget_us = cfg.shard_stall_budget_us;
  scfg.runtime = cfg.runtime;
  api::ShardedRuntime rt(scfg);
  rt.set_fault_probe(injector.shard_probe());

  const double noise_var = channel::noise_var_for_snr_db(cfg.snr_db);

  channel::TraceConfig tcfg;
  tcfg.nr = cfg.nr;
  tcfg.nt = cfg.nt;
  tcfg.num_subcarriers = cfg.nsc;

  std::vector<CellCtx> cells(cfg.cells);
  const auto ensure_open = [&](std::size_t j) {
    CellCtx& cc = cells[j];
    if (cc.cell != nullptr) return;
    api::CellConfig ccfg;
    ccfg.name = cfg.name + "-cell" + std::to_string(j);
    ccfg.detector = cfg.detector;
    ccfg.qam_order = cfg.qam;
    cc.cell = &rt.open_cell(ccfg);
    cc.spec = cfg.detector;
    cc.rng = channel::Rng(cfg.seed * 7919 + j + 1);
    channel::TraceGenerator gen(tcfg, cfg.seed * 104729 + j + 1);
    cc.trace = gen.next();
  };

  for (std::size_t r = 0; r < cfg.rounds; ++r) {
    // Diurnal load curve: how many frames each open cell offers this round.
    const double load =
        1.0 + cfg.diurnal_amplitude *
                  std::sin(2.0 * kPi * static_cast<double>(r) /
                           std::max(1.0, cfg.diurnal_period));
    const auto frames_this_round = static_cast<std::size_t>(std::max(
        1.0, std::round(static_cast<double>(cfg.frames_per_cell) * load)));

    for (std::size_t j = 0; j < cfg.cells; ++j) {
      if (!participates(cfg, j, r)) continue;
      ensure_open(j);
      CellCtx& cc = cells[j];

      // Gauss-Markov channel aging, one coherence step per round.
      cc.trace = channel::evolve_trace(cc.trace, cfg.rho, cc.rng);

      if (!cfg.reconfig_cycle.empty()) {
        const std::string& next =
            cfg.reconfig_cycle[(r + j) % cfg.reconfig_cycle.size()];
        control.push_back(rt.reconfigure(*cc.cell, {.detector = next}));
        cc.spec = next;
        ++rep.reconfigs;
      }

      // Inter-cell interference: the neighbour's channel leaks in (a
      // closed neighbour's last trace is fine — leakage, not truth).
      std::vector<linalg::CMat> chans = cc.trace.per_subcarrier;
      if (cfg.interference_coupling > 0.0 && cfg.cells > 1) {
        const CellCtx& other = cells[(j + 1) % cfg.cells];
        if (other.cell != nullptr) {
          for (std::size_t f = 0; f < chans.size(); ++f) {
            const linalg::CMat& o = other.trace.per_subcarrier[f];
            const std::size_t n = chans[f].rows() * chans[f].cols();
            for (std::size_t i = 0; i < n; ++i) {
              chans[f].data()[i] += cfg.interference_coupling * o.data()[i];
            }
          }
        }
      }

      for (std::size_t q = 0; q < frames_this_round; ++q) {
        auto fr = std::make_shared<SynthFrame>(synth_frame_over(
            cc.cell->constellation(), chans, cfg.nv, noise_var, cc.rng));
        const std::uint64_t fidx = cc.frame_index++;
        const fault::FaultRule* rule =
            injector.decide_frame(cc.cell->id(), fidx);
        std::uint64_t deadline = cfg.deadline_us;
        std::size_t copies = 1;
        fault::FaultKind kind = fault::FaultKind::kNone;
        if (rule != nullptr) {
          kind = rule->kind;
          injector.apply(*rule, cc.cell->id(), fidx, *fr);
          if (kind == fault::FaultKind::kDeadlinePressure) deadline = 25;
          if (kind == fault::FaultKind::kSubmitStorm) {
            copies += rule->storm_copies;
          }
        }
        const bool corrupted = fault::corrupts_frame(kind);
        rep.injected_bad += corrupted;
        const api::FrameJob job = frame_job_of(*fr, noise_var);
        for (std::size_t dup = 0; dup < copies; ++dup) {
          PendingFrame pf;
          pf.frame = fr;
          pf.cell_id = cc.cell->id();
          pf.kind = kind;
          pf.corrupted = corrupted;
          pf.storm_dup = dup > 0;
          pf.spec = cc.spec;
          try {
            pf.ticket = rt.submit(*cc.cell, job, deadline);
          } catch (const api::NonFiniteError&) {
            // admission_scan on: the corrupted job was refused at the call
            // site — containment by rejection rather than quarantine.
            continue;
          }
          ++rep.frames_submitted;
          const std::size_t cid = pf.cell_id;
          const std::uint64_t seq = pf.ticket.sequence();
          pf.ticket.on_complete([&log, cid, seq](api::TicketStatus st,
                                                 const api::FrameResult*) {
            log.note(cid, seq, st);
          });
          pending.push_back(std::move(pf));
        }
      }
    }

    // Continuous invariant: the accounting identity holds mid-flight too.
    if ((r & 15u) == 15u) {
      check_accounting(rt.stats(), cfg.name + " (round " + std::to_string(r) +
                                       ")",
                       rep.violations);
    }
  }

  rt.drain();

  using namespace std::chrono_literals;
  for (api::FrameTicket& ct : control) {
    const api::TicketStatus st = ct.wait_for(5s);
    if (st != api::TicketStatus::kDone) {
      if (st == api::TicketStatus::kPending) ++rep.tickets_lost;
      rep.violations.push_back(cfg.name + ": reconfigure ticket ended " +
                               std::string(api::to_string(st)));
    }
  }

  for (PendingFrame& pf : pending) {
    const api::TicketStatus st = pf.ticket.wait_for(5s);
    switch (st) {
      case api::TicketStatus::kDone: ++rep.frames_done; break;
      case api::TicketStatus::kQuarantined: ++rep.frames_quarantined; break;
      case api::TicketStatus::kFailed: ++rep.frames_failed; break;
      case api::TicketStatus::kDropped: ++rep.frames_dropped; break;
      case api::TicketStatus::kExpired: ++rep.frames_expired; break;
      case api::TicketStatus::kPending:
        ++rep.tickets_lost;
        rep.violations.push_back(cfg.name + ": ticket stuck pending (cell " +
                                 std::to_string(pf.cell_id) + ", seq " +
                                 std::to_string(pf.ticket.sequence()) + ")");
        continue;
    }
    if (!pf.corrupted && (st == api::TicketStatus::kQuarantined ||
                          st == api::TicketStatus::kFailed)) {
      rep.violations.push_back(
          cfg.name + ": CLEAN frame ended " +
          std::string(api::to_string(st)) + " (cell " +
          std::to_string(pf.cell_id) + ", seq " +
          std::to_string(pf.ticket.sequence()) +
          ") — an injected fault leaked across frames");
    }
    if (pf.corrupted && st == api::TicketStatus::kDone) {
      ++rep.injected_bad_done;
      if (nonfinite_kind(pf.kind)) {
        rep.violations.push_back(cfg.name +
                                 ": non-finite frame completed kDone (cell " +
                                 std::to_string(pf.cell_id) + ", seq " +
                                 std::to_string(pf.ticket.sequence()) + ")");
      }
    }
  }

  // Per-cell FIFO over DISPATCHED completions: done/failed/quarantined
  // frames of one cell must complete in strictly increasing sequence order
  // (admission-shed drops/expiries legitimately complete out of band).
  {
    std::map<std::size_t, std::uint64_t> last;
    std::lock_guard lock(log.mu);
    for (const CompletionEvent& ev : log.events) {
      if (ev.status != api::TicketStatus::kDone &&
          ev.status != api::TicketStatus::kFailed &&
          ev.status != api::TicketStatus::kQuarantined) {
        continue;
      }
      const auto [it, fresh] = last.try_emplace(ev.cell_id, ev.seq);
      if (!fresh) {
        if (ev.seq <= it->second) {
          ++rep.fifo_violations;
          rep.violations.push_back(
              cfg.name + ": FIFO inversion on cell " +
              std::to_string(ev.cell_id) + " (seq " + std::to_string(ev.seq) +
              " after " + std::to_string(it->second) + ")");
        }
        it->second = ev.seq;
      }
    }
  }

  // Accuracy spot checks on sampled clean done-frames: re-detect on a
  // fresh synchronous pipeline with the spec that was live.  shards <= 1
  // must be bit-identical; any shard count must hold the SER margin.
  if (cfg.spot_check_every > 0) {
    std::map<std::string, std::unique_ptr<api::UplinkPipeline>> oracles;
    std::size_t idx = 0;
    for (PendingFrame& pf : pending) {
      ++idx;
      if (pf.corrupted || pf.storm_dup) continue;
      if (idx % cfg.spot_check_every != 0) continue;
      if (pf.ticket.status() != api::TicketStatus::kDone) continue;
      const api::FrameResult* res = pf.ticket.try_get();
      if (res == nullptr) continue;
      auto it = oracles.find(pf.spec);
      if (it == oracles.end()) {
        api::PipelineConfig pcfg;
        pcfg.detector = pf.spec;
        pcfg.qam_order = cfg.qam;
        pcfg.threads = 1;
        it = oracles
                 .emplace(pf.spec, std::make_unique<api::UplinkPipeline>(pcfg))
                 .first;
      }
      const api::FrameResult ref =
          it->second->detect_frame(frame_job_of(*pf.frame, noise_var));
      ++rep.spot_checks;
      rep.clean_errors += count_symbol_errors(*pf.frame, res->results);
      rep.oracle_errors += count_symbol_errors(*pf.frame, ref.results);
      rep.clean_symbols += pf.frame->tx.size();
      if (cfg.shards <= 1) {
        bool same = res->results.size() == ref.results.size();
        for (std::size_t v = 0; same && v < ref.results.size(); ++v) {
          same = res->results[v].symbols == ref.results[v].symbols;
        }
        if (!same) {
          ++rep.bit_mismatches;
          rep.violations.push_back(
              cfg.name + ": bit-identity mismatch vs synchronous pipeline "
              "(cell " + std::to_string(pf.cell_id) + ", seq " +
              std::to_string(pf.ticket.sequence()) + ")");
        }
      }
    }
    if (rep.clean_symbols >= 200) {
      const double ser = static_cast<double>(rep.clean_errors) /
                         static_cast<double>(rep.clean_symbols);
      const double oracle_ser = static_cast<double>(rep.oracle_errors) /
                                static_cast<double>(rep.clean_symbols);
      if (ser > oracle_ser + cfg.ser_margin) {
        rep.violations.push_back(cfg.name + ": clean-frame SER " +
                                 std::to_string(ser) + " exceeds oracle " +
                                 std::to_string(oracle_ser) + " + margin " +
                                 std::to_string(cfg.ser_margin));
      }
    }
  }

  const api::RuntimeStats rs = rt.stats();
  check_accounting(rs, cfg.name + " (final)", rep.violations);
  for (const api::CellStats& cs : rs.cells) {
    rep.worst_health = std::max(rep.worst_health, cs.health);
    rep.watchdog_transitions += cs.health_transitions;
  }
  rep.shard_retries = rs.shard_retries;
  rep.shard_bypasses = rs.shard_bypasses;
  rep.faults_injected = injector.injected_total();
  rep.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t_start)
                    .count();
  return rep;
}

std::vector<SoakScenarioConfig> default_soak_corpus(std::size_t rounds,
                                                    std::uint64_t seed) {
  std::vector<SoakScenarioConfig> corpus;

  {
    // Fast-aging channels on the monolithic path while payloads and
    // channel estimates corrupt — quarantine + bit-identity under churn of
    // the numeric guards.
    SoakScenarioConfig c;
    c.name = "mobility-chaos";
    c.cells = 2;
    c.rounds = rounds;
    c.rho = 0.90;
    c.shards = 1;
    c.seed = seed + 1;
    c.spot_check_every = 8;
    c.runtime.dispatchers = 2;
    c.runtime.queue_capacity = 8;
    c.runtime.policy = api::QueuePolicy::kBlock;
    c.runtime.admission_scan = false;  // corruption must reach dispatch
    c.faults.seed = seed + 11;
    c.faults.rules = {
        {.kind = fault::FaultKind::kNonFinitePayload, .probability = 0.05},
        {.kind = fault::FaultKind::kNonFiniteChannel, .probability = 0.04},
        {.kind = fault::FaultKind::kCorruptPayload, .probability = 0.04},
        {.kind = fault::FaultKind::kRankDeficientChannel,
         .probability = 0.03},
        {.kind = fault::FaultKind::kSubmitStorm, .probability = 0.03,
         .storm_copies = 2},
    };
    corpus.push_back(std::move(c));
  }

  {
    // Cells opening/closing on a sharded fabric whose clusters fail and
    // stall — the retry-then-bypass ladder under churn, including stalls
    // that blow the budget.
    SoakScenarioConfig c;
    c.name = "churn-chaos";
    c.cells = 3;
    c.rounds = rounds;
    c.churn = true;
    c.rho = 0.97;
    c.shards = 2;
    c.shard_stall_budget_us = 4000;
    c.seed = seed + 2;
    c.spot_check_every = 12;
    c.runtime.dispatchers = 2;
    c.runtime.queue_capacity = 8;
    c.runtime.policy = api::QueuePolicy::kBlock;
    c.runtime.admission_scan = false;
    c.faults.seed = seed + 22;
    c.faults.rules = {
        {.kind = fault::FaultKind::kShardFail, .probability = 0.05},
        {.kind = fault::FaultKind::kShardStall, .probability = 0.04,
         .stall_us = 300},
        {.kind = fault::FaultKind::kShardStall, .probability = 0.008,
         .stall_us = 20000},  // exceeds the budget: forces a bypass
        {.kind = fault::FaultKind::kNonFinitePayload, .probability = 0.03},
    };
    corpus.push_back(std::move(c));
  }

  {
    // Neighbouring cells leaking into each other under real deadlines,
    // with deadline squeezes and cluster failures on top.
    SoakScenarioConfig c;
    c.name = "interference-chaos";
    c.cells = 3;
    c.rounds = rounds;
    c.rho = 0.95;
    c.interference_coupling = 0.15;
    c.shards = 2;
    c.seed = seed + 3;
    c.spot_check_every = 12;
    c.deadline_us = 20000;
    c.runtime.dispatchers = 2;
    c.runtime.queue_capacity = 8;
    c.runtime.policy = api::QueuePolicy::kDeadlineExpire;
    c.runtime.admission_scan = false;
    c.faults.seed = seed + 33;
    c.faults.rules = {
        {.kind = fault::FaultKind::kDeadlinePressure, .probability = 0.05},
        {.kind = fault::FaultKind::kShardFail, .probability = 0.04},
        {.kind = fault::FaultKind::kRankDeficientChannel,
         .probability = 0.03},
    };
    corpus.push_back(std::move(c));
  }

  {
    // Diurnal load swinging into overload on a small kDropNewest queue,
    // with submit storms amplifying the peaks — shedding and watchdog
    // degradation without a single lost ticket.
    SoakScenarioConfig c;
    c.name = "diurnal-chaos";
    c.cells = 2;
    c.rounds = rounds;
    c.rho = 0.98;
    c.diurnal_amplitude = 0.9;
    c.diurnal_period = 16.0;
    c.shards = 1;
    c.seed = seed + 4;
    c.spot_check_every = 8;
    c.runtime.dispatchers = 1;
    c.runtime.queue_capacity = 4;
    c.runtime.policy = api::QueuePolicy::kDropNewest;
    c.runtime.admission_scan = false;
    c.faults.seed = seed + 44;
    c.faults.rules = {
        {.kind = fault::FaultKind::kSubmitStorm, .probability = 0.08,
         .storm_copies = 3},
        {.kind = fault::FaultKind::kCorruptPayload, .probability = 0.04},
        {.kind = fault::FaultKind::kRankDeficientChannel,
         .probability = 0.04},
    };
    corpus.push_back(std::move(c));
  }

  return corpus;
}

}  // namespace flexcore::sim
