// Coded MIMO-OFDM uplink packet simulation (the paper's §5.1 methodology).
//
// Each of the Nt users independently: draws random info bits, encodes them
// with the 802.11 rate-1/2 convolutional code, interleaves per OFDM symbol,
// and Gray-maps onto QAM subcarrier symbols.  The AP detects every
// (subcarrier, OFDM-symbol) MIMO vector with the detector under test,
// then per user: demaps, deinterleaves, Viterbi-decodes and checks the
// packet.  Channels are static over a packet (paper §5) — one ChannelTrace
// per packet, one set_channel per data subcarrier.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "api/runtime.h"
#include "api/uplink_pipeline.h"
#include "channel/rng.h"
#include "channel/trace.h"
#include "coding/interleaver.h"
#include "core/flexcore_detector.h"
#include "detect/detector.h"
#include "modulation/constellation.h"
#include "ofdm/ofdm.h"

namespace flexcore::sim {

struct LinkConfig {
  ofdm::OfdmConfig ofdm;
  int qam_order = 64;
  /// Requested info bits per user per packet (rounded up via
  /// ofdm::padded_info_bits so coded bits fill whole OFDM symbols).
  std::size_t info_bits_per_user = 1152;
};

/// Result of transporting one packet per user through the link.
struct PacketOutcome {
  std::vector<bool> user_ok;          ///< per-user packet CRC-equivalent
  std::size_t vectors_detected = 0;   ///< MIMO vectors processed
  std::size_t symbol_errors = 0;      ///< raw (pre-FEC) symbol errors
  std::size_t symbols_sent = 0;
  detect::DetectionStats stats;       ///< accumulated detector counters
  double sum_active_pes = 0.0;        ///< sum over subcarriers of PE count
  std::size_t channel_installs = 0;   ///< number of set_channel calls
};

class UplinkPacketLink {
 public:
  explicit UplinkPacketLink(const LinkConfig& cfg);

  /// Simulates one packet burst with hard-decision detection.  The whole
  /// frame (all data subcarriers x all OFDM symbols) is detected as one
  /// job: raw detectors run the per-subcarrier set_channel + detect_batch
  /// lifecycle over it.
  PacketOutcome run_packet(detect::Detector& det,
                           const channel::ChannelTrace& trace,
                           double noise_var, channel::Rng& rng) const;

  /// Same, but driven through an api::UplinkPipeline: the frame is
  /// submitted as ONE api::FrameJob (parallel per-subcarrier preprocessing
  /// + a single subcarrier x vector x path grid), and the facade's
  /// lifecycle counters see every channel and vector.
  PacketOutcome run_packet(api::UplinkPipeline& pipe,
                           const channel::ChannelTrace& trace,
                           double noise_var, channel::Rng& rng) const;

  /// Same, but through the asynchronous multi-cell runtime: the frame is
  /// submitted to `cell` as one job and awaited.  Results are bit-identical
  /// to the pipeline overload (the runtime serializes each cell).  Several
  /// threads can run packets on DIFFERENT cells of one runtime
  /// concurrently — the multi-cell serving shape of fig15.  Throws
  /// std::runtime_error when the ticket completes without a result
  /// (dropped/expired under a saturated queue).
  PacketOutcome run_packet(api::Runtime& rt, api::Cell& cell,
                           const channel::ChannelTrace& trace,
                           double noise_var, channel::Rng& rng) const;

  /// Same, but uses FlexCore's list-based soft output (max-log LLRs) and
  /// soft Viterbi decoding — the paper's "soft detector" future-work
  /// extension.
  PacketOutcome run_packet_soft(core::FlexCoreDetector& det,
                                const channel::ChannelTrace& trace,
                                double noise_var, channel::Rng& rng) const;

  const LinkConfig& config() const noexcept { return cfg_; }
  std::size_t info_bits() const noexcept { return info_bits_; }
  std::size_t ofdm_symbols_per_packet() const noexcept { return n_ofdm_symbols_; }
  const modulation::Constellation& constellation() const noexcept { return c_; }

 private:
  /// Shared packet body: `detect_frame_fn` consumes the whole frame
  /// (channels per subcarrier + subcarrier-major received vectors) and
  /// returns the frame verdicts + lifecycle counters.
  PacketOutcome run_packet_impl(
      const std::function<api::FrameResult(std::span<const linalg::CMat>,
                                           std::span<const linalg::CVec>,
                                           std::size_t)>& detect_frame_fn,
      const channel::ChannelTrace& trace, double noise_var,
      channel::Rng& rng) const;

  LinkConfig cfg_;
  modulation::Constellation c_;
  coding::Interleaver interleaver_;
  std::size_t info_bits_;
  std::size_t n_ofdm_symbols_;
};

}  // namespace flexcore::sim
