// Time-varying scenario driver for closed-loop experiments.
//
// A production access point never sees the static channel of the paper's
// §5 evaluation: SNR ramps as users move, fading bursts break coherence,
// and offered load spikes.  A Scenario scripts those dynamics as a list of
// segments — each a frame count with a linear SNR ramp, a Gauss-Markov
// channel-coherence factor rho (1 = static, the paper's assumption;
// < 1 evolves the trace every frame via channel::evolve_trace) and an
// optional load burst (extra duplicate frames the driver tells the caller
// to submit, pressuring the runtime's admission queue).
//
// ScenarioDriver walks the script frame by frame, owning the channel
// trace and the randomness, so the control-plane bench and tests replay
// identical conditions from a seed:
//
//   sim::ScenarioConfig sc;
//   sc.trace = {.nr = 8, .nt = 4};
//   sc.segments = {{.frames = 50, .snr_db_begin = 18, .snr_db_end = 8},
//                  {.frames = 50, .snr_db_begin = 8, .snr_db_end = 18}};
//   sim::ScenarioDriver drv(sc);
//   sim::ScenarioStep step;
//   while (drv.next(&step)) {
//     sim::SynthFrame fr = drv.synth_frame(qam, nsc, nv);
//     ...  // detect fr at step.noise_var, feed the controller
//   }
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "channel/rng.h"
#include "channel/trace.h"
#include "modulation/constellation.h"
#include "sim/frame_synth.h"

namespace flexcore::sim {

struct ScenarioSegment {
  std::size_t frames = 0;
  /// True channel SNR ramps linearly from begin to end across the segment
  /// (equal values = flat).
  double snr_db_begin = 15.0;
  double snr_db_end = 15.0;
  /// Per-frame Gauss-Markov coherence: 1 keeps the trace static, < 1
  /// evolves it every frame (fading; pre-processing reuse is invalid).
  double rho = 1.0;
  /// Extra copies of each frame the caller should submit, modelling an
  /// offered-load spike against a fixed compute budget.
  std::size_t load_burst = 0;
};

struct ScenarioConfig {
  channel::TraceConfig trace;
  std::vector<ScenarioSegment> segments;
  std::uint64_t seed = 1;
};

/// One frame's scripted conditions.
struct ScenarioStep {
  std::size_t index = 0;  ///< global frame index across segments
  std::size_t segment = 0;
  double snr_db = 0.0;  ///< true channel SNR this frame
  double noise_var = 1.0;
  bool channel_changed = false;  ///< trace evolved (always true at frame 0)
  std::size_t load_burst = 0;
};

class ScenarioDriver {
 public:
  explicit ScenarioDriver(const ScenarioConfig& cfg);

  std::size_t total_frames() const noexcept { return total_frames_; }

  /// Advances one frame; false when the script is exhausted.
  bool next(ScenarioStep* step);

  /// Channel trace of the CURRENT step (valid after a true next()).
  const channel::ChannelTrace& trace() const noexcept { return trace_; }

  /// Synthesizes the current step's uplink workload over the first `nsc`
  /// subcarriers of the trace, at the step's noise variance, with the
  /// transmitted symbols recorded for error scoring.
  SynthFrame synth_frame(const modulation::Constellation& c, std::size_t nsc,
                         std::size_t nv);

  /// Lowest true SNR the script ever reaches — the static worst case an
  /// adaptive policy is judged against.
  double min_snr_db() const noexcept { return min_snr_db_; }

  const ScenarioConfig& config() const noexcept { return cfg_; }

 private:
  ScenarioConfig cfg_;
  channel::Rng rng_;
  channel::ChannelTrace trace_;
  std::size_t total_frames_ = 0;
  double min_snr_db_ = 0.0;
  std::size_t segment_ = 0;
  std::size_t frame_in_segment_ = 0;
  std::size_t frame_ = 0;
  ScenarioStep current_;
  bool started_ = false;
};

}  // namespace flexcore::sim
