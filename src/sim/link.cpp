#include "sim/link.h"

#include <stdexcept>

#include "api/uplink_pipeline.h"
#include "coding/convolutional.h"

namespace flexcore::sim {

UplinkPacketLink::UplinkPacketLink(const LinkConfig& cfg)
    : cfg_(cfg),
      c_(cfg.qam_order),
      interleaver_(ofdm::coded_bits_per_ofdm_symbol(cfg.ofdm, c_.bits_per_symbol()),
                   static_cast<std::size_t>(c_.bits_per_symbol())),
      info_bits_(ofdm::padded_info_bits(cfg.info_bits_per_user, cfg.ofdm,
                                        c_.bits_per_symbol())) {
  const std::size_t ncbps =
      ofdm::coded_bits_per_ofdm_symbol(cfg_.ofdm, c_.bits_per_symbol());
  n_ofdm_symbols_ = 2 * (info_bits_ + 6) / ncbps;
}

namespace {

/// Per-user transmit pipeline: info bits -> coded/interleaved -> symbols.
struct UserTx {
  coding::BitVec info;
  std::vector<int> symbols;  // length = n_ofdm_symbols * data_subcarriers
};

UserTx make_user_tx(const modulation::Constellation& c,
                    const coding::Interleaver& ilv, std::size_t info_bits,
                    channel::Rng& rng) {
  UserTx tx;
  tx.info.resize(info_bits);
  for (auto& b : tx.info) b = rng.bit();
  coding::BitVec coded = coding::conv_encode(tx.info);
  coded = ilv.interleave_stream(coded);
  const int bps = c.bits_per_symbol();
  tx.symbols.resize(coded.size() / static_cast<std::size_t>(bps));
  for (std::size_t s = 0; s < tx.symbols.size(); ++s) {
    tx.symbols[s] = c.map_bits(coded, s * static_cast<std::size_t>(bps));
  }
  return tx;
}

}  // namespace

PacketOutcome UplinkPacketLink::run_packet(detect::Detector& det,
                                           const channel::ChannelTrace& trace,
                                           double noise_var,
                                           channel::Rng& rng) const {
  return run_packet_impl(
      [&](const linalg::CMat& h) {
        det.set_channel(h, noise_var);
        return det.parallel_tasks();
      },
      [&](std::span<const linalg::CVec> ys, detect::BatchResult* out) {
        det.detect_batch(ys, out);
      },
      trace, noise_var, rng);
}

PacketOutcome UplinkPacketLink::run_packet(api::UplinkPipeline& pipe,
                                           const channel::ChannelTrace& trace,
                                           double noise_var,
                                           channel::Rng& rng) const {
  if (pipe.constellation().order() != cfg_.qam_order) {
    throw std::invalid_argument(
        "run_packet: pipeline constellation does not match "
        "LinkConfig.qam_order");
  }
  return run_packet_impl(
      [&](const linalg::CMat& h) {
        pipe.set_channel(h, noise_var);
        return pipe.detector().parallel_tasks();
      },
      [&](std::span<const linalg::CVec> ys, detect::BatchResult* out) {
        *out = pipe.detect(ys);
      },
      trace, noise_var, rng);
}

PacketOutcome UplinkPacketLink::run_packet_impl(
    const std::function<std::size_t(const linalg::CMat&)>& install,
    const std::function<void(std::span<const linalg::CVec>,
                             detect::BatchResult*)>& detect_fn,
    const channel::ChannelTrace& trace, double noise_var,
    channel::Rng& rng) const {
  const std::size_t nt = trace.per_subcarrier.front().cols();
  const std::size_t nsc = cfg_.ofdm.data_subcarriers;
  if (trace.per_subcarrier.size() < nsc) {
    throw std::invalid_argument("run_packet: trace has fewer subcarriers than needed");
  }

  // Transmit side.
  std::vector<UserTx> users(nt);
  for (auto& u : users) u = make_user_tx(c_, interleaver_, info_bits_, rng);

  PacketOutcome out;
  out.user_ok.assign(nt, false);

  // Detected symbol index per user, time-major like UserTx::symbols:
  // slot = t * nsc + f.
  std::vector<std::vector<int>> detected(nt,
                                         std::vector<int>(users[0].symbols.size()));

  // Detection: channels are per-subcarrier; symbol t of subcarrier f uses
  // trace.per_subcarrier[f] (static channel over the packet).  All OFDM
  // symbols of a subcarrier share its channel, so they form one batch —
  // the per-channel lifecycle (set_channel → detect_batch) the paper's
  // receiver runs, routed through whatever parallel substrate the detector
  // has attached.
  linalg::CVec s(nt);
  std::vector<linalg::CVec> ys(n_ofdm_symbols_);
  detect::BatchResult batch;
  for (std::size_t f = 0; f < nsc; ++f) {
    out.sum_active_pes +=
        static_cast<double>(install(trace.per_subcarrier[f]));
    ++out.channel_installs;
    for (std::size_t t = 0; t < n_ofdm_symbols_; ++t) {
      const std::size_t slot = t * nsc + f;
      for (std::size_t u = 0; u < nt; ++u) {
        s[u] = c_.point(users[u].symbols[slot]);
      }
      ys[t] = channel::transmit(trace.per_subcarrier[f], s, noise_var, rng);
    }
    detect_fn(ys, &batch);
    out.stats += batch.stats;
    out.vectors_detected += ys.size();
    for (std::size_t t = 0; t < n_ofdm_symbols_; ++t) {
      const std::size_t slot = t * nsc + f;
      const detect::DetectionResult& res = batch.results[t];
      for (std::size_t u = 0; u < nt; ++u) {
        detected[u][slot] = res.symbols[u];
        ++out.symbols_sent;
        if (res.symbols[u] != users[u].symbols[slot]) ++out.symbol_errors;
      }
    }
  }

  // Receive side per user: demap -> deinterleave -> Viterbi -> compare.
  for (std::size_t u = 0; u < nt; ++u) {
    coding::BitVec bits;
    bits.reserve(detected[u].size() *
                 static_cast<std::size_t>(c_.bits_per_symbol()));
    for (int sym : detected[u]) c_.unmap_bits(sym, bits);
    bits = interleaver_.deinterleave_stream(bits);
    const coding::BitVec decoded = coding::viterbi_decode(bits);
    out.user_ok[u] = (decoded == users[u].info);
  }
  return out;
}

PacketOutcome UplinkPacketLink::run_packet_soft(core::FlexCoreDetector& det,
                                                const channel::ChannelTrace& trace,
                                                double noise_var,
                                                channel::Rng& rng) const {
  const std::size_t nt = trace.per_subcarrier.front().cols();
  const std::size_t nsc = cfg_.ofdm.data_subcarriers;
  const int bps = c_.bits_per_symbol();

  std::vector<UserTx> users(nt);
  for (auto& u : users) u = make_user_tx(c_, interleaver_, info_bits_, rng);

  PacketOutcome out;
  out.user_ok.assign(nt, false);

  // Per-user LLR stream aligned with the interleaved coded bits.
  std::vector<std::vector<double>> llr(
      nt, std::vector<double>(users[0].symbols.size() *
                              static_cast<std::size_t>(bps)));

  linalg::CVec s(nt);
  for (std::size_t f = 0; f < nsc; ++f) {
    det.set_channel(trace.per_subcarrier[f], noise_var);
    out.sum_active_pes += static_cast<double>(det.parallel_tasks());
    ++out.channel_installs;
    for (std::size_t t = 0; t < n_ofdm_symbols_; ++t) {
      const std::size_t slot = t * nsc + f;
      for (std::size_t u = 0; u < nt; ++u) {
        s[u] = c_.point(users[u].symbols[slot]);
      }
      const linalg::CVec y =
          channel::transmit(trace.per_subcarrier[f], s, noise_var, rng);
      const core::SoftOutput soft = det.detect_soft(y);
      out.stats += soft.hard.stats;
      ++out.vectors_detected;
      for (std::size_t u = 0; u < nt; ++u) {
        ++out.symbols_sent;
        if (soft.hard.symbols[u] != users[u].symbols[slot]) ++out.symbol_errors;
        for (int b = 0; b < bps; ++b) {
          llr[u][slot * static_cast<std::size_t>(bps) +
                 static_cast<std::size_t>(b)] =
              soft.llrs[u][static_cast<std::size_t>(b)];
        }
      }
    }
  }

  for (std::size_t u = 0; u < nt; ++u) {
    const std::vector<double> dllr = interleaver_.deinterleave_stream(llr[u]);
    const coding::BitVec decoded = coding::viterbi_decode_soft(dllr);
    out.user_ok[u] = (decoded == users[u].info);
  }
  return out;
}

}  // namespace flexcore::sim
