#include "sim/link.h"

#include <stdexcept>

#include "api/uplink_pipeline.h"
#include "coding/convolutional.h"

namespace flexcore::sim {

UplinkPacketLink::UplinkPacketLink(const LinkConfig& cfg)
    : cfg_(cfg),
      c_(cfg.qam_order),
      interleaver_(ofdm::coded_bits_per_ofdm_symbol(cfg.ofdm, c_.bits_per_symbol()),
                   static_cast<std::size_t>(c_.bits_per_symbol())),
      info_bits_(ofdm::padded_info_bits(cfg.info_bits_per_user, cfg.ofdm,
                                        c_.bits_per_symbol())) {
  const std::size_t ncbps =
      ofdm::coded_bits_per_ofdm_symbol(cfg_.ofdm, c_.bits_per_symbol());
  n_ofdm_symbols_ = 2 * (info_bits_ + 6) / ncbps;
}

namespace {

/// Per-user transmit pipeline: info bits -> coded/interleaved -> symbols.
struct UserTx {
  coding::BitVec info;
  std::vector<int> symbols;  // length = n_ofdm_symbols * data_subcarriers
};

UserTx make_user_tx(const modulation::Constellation& c,
                    const coding::Interleaver& ilv, std::size_t info_bits,
                    channel::Rng& rng) {
  UserTx tx;
  tx.info.resize(info_bits);
  for (auto& b : tx.info) b = rng.bit();
  coding::BitVec coded = coding::conv_encode(tx.info);
  coded = ilv.interleave_stream(coded);
  const int bps = c.bits_per_symbol();
  tx.symbols.resize(coded.size() / static_cast<std::size_t>(bps));
  for (std::size_t s = 0; s < tx.symbols.size(); ++s) {
    tx.symbols[s] = c.map_bits(coded, s * static_cast<std::size_t>(bps));
  }
  return tx;
}

}  // namespace

PacketOutcome UplinkPacketLink::run_packet(detect::Detector& det,
                                           const channel::ChannelTrace& trace,
                                           double noise_var,
                                           channel::Rng& rng) const {
  return run_packet_impl(
      [&](std::span<const linalg::CMat> channels,
          std::span<const linalg::CVec> ys, std::size_t nv) {
        // Per-subcarrier lifecycle over the frame: set_channel, then one
        // batch of all OFDM symbols sharing that channel.
        api::FrameResult fr;
        fr.results.resize(ys.size());
        detect::BatchResult batch;
        for (std::size_t f = 0; f < channels.size(); ++f) {
          det.set_channel(channels[f], noise_var);
          fr.sum_active_paths += static_cast<double>(det.parallel_tasks());
          ++fr.channels_installed;
          det.detect_batch(ys.subspan(f * nv, nv), &batch);
          api::fold_batch_into_frame(batch, f * nv, &fr);
        }
        return fr;
      },
      trace, noise_var, rng);
}

PacketOutcome UplinkPacketLink::run_packet(api::UplinkPipeline& pipe,
                                           const channel::ChannelTrace& trace,
                                           double noise_var,
                                           channel::Rng& rng) const {
  if (pipe.constellation().order() != cfg_.qam_order) {
    throw std::invalid_argument(
        "run_packet: pipeline constellation does not match "
        "LinkConfig.qam_order");
  }
  return run_packet_impl(
      [&](std::span<const linalg::CMat> channels,
          std::span<const linalg::CVec> ys, std::size_t nv) {
        api::FrameJob job;
        job.channels = channels;
        job.ys = ys;
        job.vectors_per_channel = nv;
        job.noise_var = noise_var;
        return pipe.detect_frame(job);
      },
      trace, noise_var, rng);
}

PacketOutcome UplinkPacketLink::run_packet(api::Runtime& rt, api::Cell& cell,
                                           const channel::ChannelTrace& trace,
                                           double noise_var,
                                           channel::Rng& rng) const {
  if (cell.constellation().order() != cfg_.qam_order) {
    throw std::invalid_argument(
        "run_packet: cell constellation does not match LinkConfig.qam_order");
  }
  return run_packet_impl(
      [&](std::span<const linalg::CMat> channels,
          std::span<const linalg::CVec> ys, std::size_t nv) {
        api::FrameJob job;
        job.channels = channels;
        job.ys = ys;
        job.vectors_per_channel = nv;
        job.noise_var = noise_var;
        api::FrameTicket ticket = rt.submit(cell, job);
        const api::TicketStatus status = ticket.wait();
        if (status != api::TicketStatus::kDone) {
          throw std::runtime_error(
              std::string("run_packet: frame completed as ") +
              api::to_string(status) +
              (ticket.error().empty() ? "" : ": " + ticket.error()));
        }
        return ticket.take();
      },
      trace, noise_var, rng);
}

PacketOutcome UplinkPacketLink::run_packet_impl(
    const std::function<api::FrameResult(std::span<const linalg::CMat>,
                                         std::span<const linalg::CVec>,
                                         std::size_t)>& detect_frame_fn,
    const channel::ChannelTrace& trace, double noise_var,
    channel::Rng& rng) const {
  const std::size_t nt = trace.per_subcarrier.front().cols();
  const std::size_t nsc = cfg_.ofdm.data_subcarriers;
  if (trace.per_subcarrier.size() < nsc) {
    throw std::invalid_argument("run_packet: trace has fewer subcarriers than needed");
  }

  // Transmit side.
  std::vector<UserTx> users(nt);
  for (auto& u : users) u = make_user_tx(c_, interleaver_, info_bits_, rng);

  PacketOutcome out;
  out.user_ok.assign(nt, false);

  // Detected symbol index per user, time-major like UserTx::symbols:
  // slot = t * nsc + f.
  std::vector<std::vector<int>> detected(nt,
                                         std::vector<int>(users[0].symbols.size()));

  // Build the whole frame: channels are per-subcarrier (static over the
  // packet) and symbol t of subcarrier f uses trace.per_subcarrier[f].
  // All (subcarrier, OFDM symbol) received vectors are generated up front,
  // subcarrier-major, and submitted as ONE frame job — the paper's
  // flattened subframe workload.
  linalg::CVec s(nt);
  std::vector<linalg::CVec> ys(nsc * n_ofdm_symbols_);
  for (std::size_t f = 0; f < nsc; ++f) {
    for (std::size_t t = 0; t < n_ofdm_symbols_; ++t) {
      const std::size_t slot = t * nsc + f;
      for (std::size_t u = 0; u < nt; ++u) {
        s[u] = c_.point(users[u].symbols[slot]);
      }
      ys[f * n_ofdm_symbols_ + t] =
          channel::transmit(trace.per_subcarrier[f], s, noise_var, rng);
    }
  }

  const api::FrameResult fr = detect_frame_fn(
      std::span<const linalg::CMat>(trace.per_subcarrier.data(), nsc), ys,
      n_ofdm_symbols_);
  out.stats += fr.stats;
  out.vectors_detected += ys.size();
  out.sum_active_pes += fr.sum_active_paths;
  out.channel_installs += fr.channels_installed;
  for (std::size_t f = 0; f < nsc; ++f) {
    for (std::size_t t = 0; t < n_ofdm_symbols_; ++t) {
      const std::size_t slot = t * nsc + f;
      const detect::DetectionResult& res = fr.results[f * n_ofdm_symbols_ + t];
      for (std::size_t u = 0; u < nt; ++u) {
        detected[u][slot] = res.symbols[u];
        ++out.symbols_sent;
        if (res.symbols[u] != users[u].symbols[slot]) ++out.symbol_errors;
      }
    }
  }

  // Receive side per user: demap -> deinterleave -> Viterbi -> compare.
  for (std::size_t u = 0; u < nt; ++u) {
    coding::BitVec bits;
    bits.reserve(detected[u].size() *
                 static_cast<std::size_t>(c_.bits_per_symbol()));
    for (int sym : detected[u]) c_.unmap_bits(sym, bits);
    bits = interleaver_.deinterleave_stream(bits);
    const coding::BitVec decoded = coding::viterbi_decode(bits);
    out.user_ok[u] = (decoded == users[u].info);
  }
  return out;
}

PacketOutcome UplinkPacketLink::run_packet_soft(core::FlexCoreDetector& det,
                                                const channel::ChannelTrace& trace,
                                                double noise_var,
                                                channel::Rng& rng) const {
  const std::size_t nt = trace.per_subcarrier.front().cols();
  const std::size_t nsc = cfg_.ofdm.data_subcarriers;
  const int bps = c_.bits_per_symbol();

  std::vector<UserTx> users(nt);
  for (auto& u : users) u = make_user_tx(c_, interleaver_, info_bits_, rng);

  PacketOutcome out;
  out.user_ok.assign(nt, false);

  // Per-user LLR stream aligned with the interleaved coded bits.
  std::vector<std::vector<double>> llr(
      nt, std::vector<double>(users[0].symbols.size() *
                              static_cast<std::size_t>(bps)));

  linalg::CVec s(nt);
  for (std::size_t f = 0; f < nsc; ++f) {
    det.set_channel(trace.per_subcarrier[f], noise_var);
    out.sum_active_pes += static_cast<double>(det.parallel_tasks());
    ++out.channel_installs;
    for (std::size_t t = 0; t < n_ofdm_symbols_; ++t) {
      const std::size_t slot = t * nsc + f;
      for (std::size_t u = 0; u < nt; ++u) {
        s[u] = c_.point(users[u].symbols[slot]);
      }
      const linalg::CVec y =
          channel::transmit(trace.per_subcarrier[f], s, noise_var, rng);
      const core::SoftOutput soft = det.detect_soft(y);
      out.stats += soft.hard.stats;
      ++out.vectors_detected;
      for (std::size_t u = 0; u < nt; ++u) {
        ++out.symbols_sent;
        if (soft.hard.symbols[u] != users[u].symbols[slot]) ++out.symbol_errors;
        for (int b = 0; b < bps; ++b) {
          llr[u][slot * static_cast<std::size_t>(bps) +
                 static_cast<std::size_t>(b)] =
              soft.llrs[u][static_cast<std::size_t>(b)];
        }
      }
    }
  }

  for (std::size_t u = 0; u < nt; ++u) {
    const std::vector<double> dllr = interleaver_.deinterleave_stream(llr[u]);
    const coding::BitVec decoded = coding::viterbi_decode_soft(dllr);
    out.user_ok[u] = (decoded == users[u].info);
  }
  return out;
}

}  // namespace flexcore::sim
