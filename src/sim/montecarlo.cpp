#include "sim/montecarlo.h"

#include <cmath>
#include <stdexcept>

#include "api/uplink_pipeline.h"

namespace flexcore::sim {

VerResult measure_vector_error_rate(detect::Detector& det,
                                    const VerScenario& sc, double snr_db,
                                    std::size_t num_channels,
                                    std::size_t vectors_per_channel,
                                    std::uint64_t seed) {
  modulation::Constellation c(sc.qam_order);
  channel::Rng rng(seed);
  const double noise_var = channel::noise_var_for_snr_db(snr_db);

  VerResult out;
  std::size_t vec_errors = 0, sym_errors = 0, sym_total = 0;

  for (std::size_t ch = 0; ch < num_channels; ++ch) {
    const auto gains =
        channel::bounded_user_gains(sc.nt, sc.user_power_spread_db, rng);
    const linalg::CMat h = channel::kronecker_channel(
        sc.nr, sc.nt, sc.rx_correlation, gains, rng);
    det.set_channel(h, noise_var);

    linalg::CVec s(sc.nt);
    std::vector<int> tx(sc.nt);
    for (std::size_t v = 0; v < vectors_per_channel; ++v) {
      for (std::size_t u = 0; u < sc.nt; ++u) {
        tx[u] = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(sc.qam_order)));
        s[u] = c.point(tx[u]);
      }
      const linalg::CVec y = channel::transmit(h, s, noise_var, rng);
      const detect::DetectionResult res = det.detect(y);
      out.stats += res.stats;
      ++out.vectors;
      bool any = false;
      for (std::size_t u = 0; u < sc.nt; ++u) {
        ++sym_total;
        if (res.symbols[u] != tx[u]) {
          ++sym_errors;
          any = true;
        }
      }
      if (any) ++vec_errors;
    }
  }
  out.ver = static_cast<double>(vec_errors) / static_cast<double>(out.vectors);
  out.ser = static_cast<double>(sym_errors) / static_cast<double>(sym_total);
  return out;
}

namespace {

template <typename RunPacket>
ThroughputResult measure_impl(const LinkConfig& lcfg,
                              const channel::TraceConfig& tcfg,
                              std::size_t packets, std::uint64_t seed,
                              RunPacket run_packet) {
  UplinkPacketLink link(lcfg);
  channel::TraceGenerator gen(tcfg, seed);
  channel::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);

  ThroughputResult out;
  out.packets = packets;
  out.per_user_per.assign(tcfg.nt, 0.0);
  double sum_active = 0.0;
  std::size_t installs = 0;

  for (std::size_t p = 0; p < packets; ++p) {
    const channel::ChannelTrace trace = gen.next();
    const PacketOutcome pkt = run_packet(link, trace, rng);
    for (std::size_t u = 0; u < tcfg.nt; ++u) {
      if (!pkt.user_ok[u]) out.per_user_per[u] += 1.0;
    }
    out.stats += pkt.stats;
    sum_active += pkt.sum_active_pes;
    installs += pkt.channel_installs;
  }

  for (double& per : out.per_user_per) per /= static_cast<double>(packets);
  double acc = 0.0;
  for (double per : out.per_user_per) acc += per;
  out.avg_per = acc / static_cast<double>(tcfg.nt);
  out.avg_active_pes =
      installs ? sum_active / static_cast<double>(installs) : 0.0;

  modulation::Constellation c(lcfg.qam_order);
  out.throughput_mbps = ofdm::network_throughput_mbps(
      lcfg.ofdm, c.bits_per_symbol(), out.per_user_per.data(), tcfg.nt);
  return out;
}

}  // namespace

ThroughputResult measure_throughput(detect::Detector& det,
                                    const LinkConfig& lcfg,
                                    const channel::TraceConfig& tcfg,
                                    double noise_var, std::size_t packets,
                                    std::uint64_t seed) {
  return measure_impl(lcfg, tcfg, packets, seed,
                      [&](UplinkPacketLink& link,
                          const channel::ChannelTrace& trace,
                          channel::Rng& rng) {
                        return link.run_packet(det, trace, noise_var, rng);
                      });
}

ThroughputResult measure_throughput(api::UplinkPipeline& pipe,
                                    const LinkConfig& lcfg,
                                    const channel::TraceConfig& tcfg,
                                    double noise_var, std::size_t packets,
                                    std::uint64_t seed) {
  if (pipe.constellation().order() != lcfg.qam_order) {
    throw std::invalid_argument(
        "measure_throughput: pipeline constellation does not match "
        "LinkConfig.qam_order");
  }
  return measure_impl(lcfg, tcfg, packets, seed,
                      [&](UplinkPacketLink& link,
                          const channel::ChannelTrace& trace,
                          channel::Rng& rng) {
                        return link.run_packet(pipe, trace, noise_var, rng);
                      });
}

ThroughputResult measure_throughput_soft(core::FlexCoreDetector& det,
                                         const LinkConfig& lcfg,
                                         const channel::TraceConfig& tcfg,
                                         double noise_var, std::size_t packets,
                                         std::uint64_t seed) {
  return measure_impl(lcfg, tcfg, packets, seed,
                      [&](UplinkPacketLink& link,
                          const channel::ChannelTrace& trace,
                          channel::Rng& rng) {
                        return link.run_packet_soft(det, trace, noise_var, rng);
                      });
}

double find_snr_for_per(detect::Detector& det, const LinkConfig& lcfg,
                        const channel::TraceConfig& tcfg, double target_per,
                        double lo_db, double hi_db, int iterations,
                        std::size_t packets, std::uint64_t seed) {
  double lo = lo_db, hi = hi_db;
  for (int it = 0; it < iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double noise_var = channel::noise_var_for_snr_db(mid);
    const ThroughputResult r =
        measure_throughput(det, lcfg, tcfg, noise_var, packets, seed);
    if (r.avg_per > target_per) {
      lo = mid;  // need more SNR
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace flexcore::sim
