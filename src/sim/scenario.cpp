#include "sim/scenario.h"

#include <algorithm>
#include <stdexcept>

#include "channel/channel.h"

namespace flexcore::sim {

ScenarioDriver::ScenarioDriver(const ScenarioConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.segments.empty()) {
    throw std::invalid_argument("ScenarioDriver: no segments");
  }
  min_snr_db_ = cfg_.segments.front().snr_db_begin;
  for (const ScenarioSegment& seg : cfg_.segments) {
    if (seg.frames == 0) {
      throw std::invalid_argument("ScenarioDriver: segment with 0 frames");
    }
    total_frames_ += seg.frames;
    min_snr_db_ = std::min({min_snr_db_, seg.snr_db_begin, seg.snr_db_end});
  }
  // One generator draw seeds the whole run; evolution reuses rng_ so the
  // entire trajectory is a pure function of cfg.seed.
  channel::TraceGenerator gen(cfg_.trace, cfg_.seed);
  trace_ = gen.next();
}

bool ScenarioDriver::next(ScenarioStep* step) {
  while (segment_ < cfg_.segments.size() &&
         frame_in_segment_ >= cfg_.segments[segment_].frames) {
    ++segment_;
    frame_in_segment_ = 0;
  }
  if (segment_ >= cfg_.segments.size()) return false;
  const ScenarioSegment& seg = cfg_.segments[segment_];

  bool channel_changed = !started_;
  if (started_ && seg.rho < 1.0) {
    trace_ = channel::evolve_trace(trace_, seg.rho, rng_);
    channel_changed = true;
  }
  started_ = true;

  // Linear ramp; a 1-frame segment sits at its begin SNR.
  const double frac =
      seg.frames > 1 ? static_cast<double>(frame_in_segment_) /
                           static_cast<double>(seg.frames - 1)
                     : 0.0;
  current_.index = frame_++;
  current_.segment = segment_;
  current_.snr_db = seg.snr_db_begin + frac * (seg.snr_db_end - seg.snr_db_begin);
  current_.noise_var = channel::noise_var_for_snr_db(current_.snr_db);
  current_.channel_changed = channel_changed;
  current_.load_burst = seg.load_burst;
  ++frame_in_segment_;
  *step = current_;
  return true;
}

SynthFrame ScenarioDriver::synth_frame(const modulation::Constellation& c,
                                       std::size_t nsc, std::size_t nv) {
  if (!started_) {
    throw std::logic_error("ScenarioDriver::synth_frame before next()");
  }
  if (nsc > trace_.per_subcarrier.size()) {
    throw std::invalid_argument(
        "ScenarioDriver::synth_frame: nsc exceeds the trace's subcarriers");
  }
  return synth_frame_over(
      c, std::span<const linalg::CMat>(trace_.per_subcarrier).first(nsc), nv,
      current_.noise_var, rng_);
}

}  // namespace flexcore::sim
