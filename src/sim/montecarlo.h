// Monte-Carlo measurement harnesses shared by tests and benchmarks.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "channel/trace.h"
#include "detect/detector.h"
#include "sim/link.h"

namespace flexcore::sim {

/// Scenario for uncoded vector-error-rate measurements.
struct VerScenario {
  std::size_t nr = 12;
  std::size_t nt = 12;
  int qam_order = 64;
  double rx_correlation = 0.4;
  double user_power_spread_db = 3.0;
};

struct VerResult {
  double ver = 0.0;            ///< fraction of vectors with >= 1 symbol error
  double ser = 0.0;            ///< per-symbol error rate
  std::size_t vectors = 0;
  detect::DetectionStats stats;
};

/// Uncoded Monte-Carlo: `num_channels` independent channel draws, each with
/// `vectors_per_channel` random transmissions.
VerResult measure_vector_error_rate(detect::Detector& det,
                                    const VerScenario& sc, double snr_db,
                                    std::size_t num_channels,
                                    std::size_t vectors_per_channel,
                                    std::uint64_t seed);

/// Coded packet-level measurement output.
struct ThroughputResult {
  double throughput_mbps = 0.0;
  double avg_per = 0.0;               ///< mean per-user packet error rate
  std::vector<double> per_user_per;
  double avg_active_pes = 0.0;        ///< mean PEs per channel (a-FlexCore)
  std::size_t packets = 0;
  detect::DetectionStats stats;
};

/// Runs `packets` coded packets through the uplink and aggregates PER and
/// network throughput.  A fresh ChannelTrace is drawn per packet.
ThroughputResult measure_throughput(detect::Detector& det,
                                    const LinkConfig& lcfg,
                                    const channel::TraceConfig& tcfg,
                                    double noise_var, std::size_t packets,
                                    std::uint64_t seed);

/// Facade-driven variant: detection runs through the pipeline (its thread
/// pool and lifecycle counters see every subcarrier batch).  `lcfg.qam_order`
/// must match the pipeline's constellation.
ThroughputResult measure_throughput(api::UplinkPipeline& pipe,
                                    const LinkConfig& lcfg,
                                    const channel::TraceConfig& tcfg,
                                    double noise_var, std::size_t packets,
                                    std::uint64_t seed);

/// Same but using FlexCore's soft-output extension + soft Viterbi.
ThroughputResult measure_throughput_soft(core::FlexCoreDetector& det,
                                         const LinkConfig& lcfg,
                                         const channel::TraceConfig& tcfg,
                                         double noise_var, std::size_t packets,
                                         std::uint64_t seed);

/// Bisection search for the SNR at which `det` reaches `target_per` on the
/// coded link (PER decreases monotonically with SNR; tolerance is limited
/// by `packets`).  Used to calibrate the PER_ML = 0.1 / 0.01 operating
/// points of the paper's methodology.
double find_snr_for_per(detect::Detector& det, const LinkConfig& lcfg,
                        const channel::TraceConfig& tcfg, double target_per,
                        double lo_db, double hi_db, int iterations,
                        std::size_t packets, std::uint64_t seed);

}  // namespace flexcore::sim
