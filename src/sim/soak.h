// Long-horizon scenario soak harness: chaos campaigns over the serving
// runtime with invariants checked continuously.
//
// A soak scenario drives an api::ShardedRuntime (shards == 1 degenerates to
// the monolithic runtime, bit-identical) through many coherence rounds of a
// living deployment — Gauss-Markov channel aging, per-round detector
// reconfigurations, user churn with cells opening and closing mid-run,
// inter-cell interference coupling, diurnal load curves — while a
// fault::Injector corrupts payloads/channels, fails and stalls antenna
// clusters, squeezes deadlines and fires submit storms.  Throughout, the
// harness asserts the runtime's robustness contract:
//
//   * zero ticket loss — every submitted ticket reaches a terminal state
//     within a bounded wait, storms, stalls and quarantines included;
//   * per-cell FIFO — dispatched completions (done/failed/quarantined) of
//     one cell arrive in strictly increasing sequence order;
//   * fault containment — a clean frame is NEVER quarantined or failed
//     (an injected fault must not poison a later frame), and a frame with
//     injected non-finite data is NEVER reported done;
//   * accounting — the per-cell counter identity of RuntimeStats holds at
//     the end of the campaign;
//   * accuracy — on sampled clean done-frames, detection matches a fresh
//     synchronous pipeline bit-for-bit (shards <= 1) and the clean-frame
//     SER stays within ser_margin of that oracle (any shard count).
//
// Violations are collected as human-readable strings in the report, not
// thrown: one soak run reports every broken invariant at once, and the
// whole campaign replays from the config seeds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/injector.h"
#include "shard/sharded_runtime.h"

namespace flexcore::sim {

/// One chaos scenario: workload shape + dynamics + fault plan.
struct SoakScenarioConfig {
  std::string name = "soak";
  std::size_t cells = 2;   ///< cell sessions (churn may add one mid-run)
  std::size_t rounds = 64; ///< coherence rounds (one reconfig per open cell)
  std::size_t frames_per_cell = 2;  ///< base frames per open cell per round
  std::size_t nsc = 8;              ///< subcarriers
  std::size_t nr = 8;               ///< AP antennas
  std::size_t nt = 4;               ///< users
  std::size_t nv = 2;               ///< OFDM symbols per subcarrier
  int qam = 16;
  /// Detector of freshly opened cells.
  std::string detector = "flexcore-8";
  /// Per-round rotation of detector swaps (cell j gets
  /// cycle[(round + j) % size] each round).  Empty disables reconfigs.
  std::vector<std::string> reconfig_cycle = {"flexcore-8", "flexcore-16",
                                             "zf-sic"};
  double snr_db = 18.0;
  /// Gauss-Markov coherence of channel aging (1 = static channels).
  double rho = 0.95;
  /// Leakage of the next cell's channel into this cell's (0 = isolated).
  double interference_coupling = 0.0;
  /// Diurnal load curve: frames per round scale by
  /// 1 + amplitude * sin(2*pi * round / period).
  double diurnal_amplitude = 0.0;
  double diurnal_period = 32.0;
  /// Cells close for whole windows of rounds and one cell only opens a
  /// quarter of the way in (user churn).
  bool churn = false;
  /// Per-frame deadline armed at submit (0 = none; kDeadlineExpire only).
  std::uint64_t deadline_us = 0;
  std::uint64_t seed = 1;
  std::size_t shards = 1;  ///< 1 = monolithic path (bit-identity checked)
  std::uint64_t shard_stall_budget_us = 0;
  fault::FaultPlan faults;
  api::RuntimeConfig runtime;  ///< inner runtime knobs (policy, queue, ...)
  /// Sample period of the synchronous-oracle spot check (0 disables).
  std::size_t spot_check_every = 16;
  /// Allowed clean-frame SER excess over the oracle (absolute).
  double ser_margin = 0.02;
};

/// Outcome of one scenario.  `violations` is empty iff every invariant
/// held; the counters feed the BENCH_soak.json scorecard.
struct SoakScenarioReport {
  std::string name;
  std::size_t frames_submitted = 0;  ///< submit() calls (storm dups incl.)
  std::size_t frames_done = 0;
  std::size_t frames_quarantined = 0;
  std::size_t frames_failed = 0;
  std::size_t frames_dropped = 0;
  std::size_t frames_expired = 0;
  std::size_t reconfigs = 0;        ///< reconfigure() calls that completed
  std::uint64_t faults_injected = 0;  ///< injector activations, all kinds
  std::size_t injected_bad = 0;  ///< frames submitted with corrupted data
  std::size_t injected_bad_done = 0;  ///< ... of those, completed kDone
  std::size_t tickets_lost = 0;  ///< non-terminal after the bounded wait
  std::size_t fifo_violations = 0;
  std::size_t spot_checks = 0;     ///< clean done-frames re-detected
  std::size_t bit_mismatches = 0;  ///< ... that differed (shards <= 1)
  std::size_t clean_symbols = 0;   ///< symbols scored on spot-checked frames
  std::size_t clean_errors = 0;    ///< runtime symbol errors on those
  std::size_t oracle_errors = 0;   ///< oracle symbol errors on those
  std::uint64_t shard_retries = 0;
  std::uint64_t shard_bypasses = 0;
  std::uint64_t watchdog_transitions = 0;  ///< cell health state changes
  int worst_health = 0;  ///< max CellHealth over cells at campaign end
  double seconds = 0.0;
  std::vector<std::string> violations;
  bool ok() const noexcept { return violations.empty(); }
};

/// Runs one scenario to completion (drains the runtime, waits out every
/// ticket) and returns the scorecard.  Deterministic inputs: the workload,
/// dynamics and injections replay exactly from cfg.seed / cfg.faults.seed;
/// shedding outcomes (drops, expiries) remain timing-dependent, and the
/// invariants are written to hold for every interleaving.
SoakScenarioReport run_soak_scenario(const SoakScenarioConfig& cfg);

/// The four-scenario chaos corpus of bench/fig19_soak_chaos: mobility,
/// churn, interference and diurnal campaigns, each with its own fault mix
/// (see soak.cpp for the exact plans).  `rounds` scales the horizon
/// (>= 128 yields >= 1000 reconfigurations across the corpus); `seed`
/// offsets every scenario's seeds.
std::vector<SoakScenarioConfig> default_soak_corpus(std::size_t rounds,
                                                    std::uint64_t seed);

}  // namespace flexcore::sim
