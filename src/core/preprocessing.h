// FlexCore pre-processing: find the N_PE most promising sphere-decoder paths.
//
// This implements §3.1 of the paper.  A tree path is identified by a
// *position vector* p: p(l) = k means "at tree level l, take the k-th
// closest constellation point to the effective received point".  Because
// the identification is relative to the (future) received signal, path
// ranking can happen a priori, from the channel (R) and noise power alone.
//
// The ranking model (Eqs. 2-4, Appendix):
//   Pc(p)    ~ prod_l Pl(p(l))
//   Pl(k)    = (1 - Pe(l)) * Pe(l)^(k-1)          (geometric in k)
//   Pe(l)    = per-level first-point error probability (see PeModel)
//
// The N_PE best position vectors are found with a best-first search over
// the pre-processing tree (Fig. 5): the root is [1,1,...,1]; the w-th child
// of a node increments p(w); a node created by incrementing element l only
// expands children w <= l (this makes every position vector reachable
// exactly once); a bounded candidate list L of size N_PE holds the frontier.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "modulation/constellation.h"
#include "modulation/error_rates.h"

namespace flexcore::core {

using modulation::Constellation;

/// A position vector: entry i (0-based array index, tree level i+1) is the
/// 1-based closeness rank of the constellation point chosen at that level.
using PositionVector = std::vector<int>;

/// One ranked tree path.
struct RankedPath {
  PositionVector p;
  double pc = 0.0;  ///< model probability that this path holds the solution
};

/// Pre-processing options.
struct PreprocessingConfig {
  /// Number of paths to emit (N_PE, the available processing elements).
  std::size_t num_paths = 64;
  /// Early-stop once the cumulative Pc of the emitted set reaches this
  /// value (a-FlexCore uses 0.95; 1.0 disables the criterion since the
  /// total probability over all paths is < 1).
  double stop_threshold = 1.0;
  /// Analytic model for Pe(l).  kExactSer is the calibrated model the
  /// paper's Fig. 14 validates; see DESIGN.md "Eq. 4 prefactor".
  modulation::PeModel pe_model = modulation::PeModel::kExactSer;
  /// Candidate-list capacity; 0 = num_paths (the paper's rule).  Larger
  /// values trade memory for an exactly-optimal frontier (ablation).
  std::size_t candidate_list_cap = 0;
  /// Nodes expanded per round.  1 = the paper's sequential traversal;
  /// larger values model the parallel expansion of §3.1.1, which the paper
  /// reports is loss-free while num_paths / batch_expand >= 10.
  std::size_t batch_expand = 1;
};

/// Pre-processing output.
struct PreprocessingResult {
  /// Selected paths in emission order (non-increasing pc for batch_expand=1).
  std::vector<RankedPath> paths;
  /// Sum of pc over `paths`.
  double pc_sum = 0.0;
  /// Per-level error probabilities Pe(l), array index = level-1.
  std::vector<double> pe;
  /// Real multiplications spent (Table 2 accounting: one multiply per child
  /// probability update, Nt-1 for the root).
  std::uint64_t real_mults = 0;
  /// Number of tree nodes expanded.
  std::uint64_t nodes_expanded = 0;
};

/// Computes the per-level error probabilities Pe(l) from the diagonal of R.
/// Takes a row-range view so the sharded preprocessing can rank paths off a
/// merged R that lives inside a stacked partial-QR buffer, no copy.
std::vector<double> level_error_probabilities(linalg::CMatView r,
                                              double noise_var,
                                              const Constellation& c,
                                              modulation::PeModel model);

/// Runs the pre-processing tree search of §3.1.1.
PreprocessingResult find_most_promising_paths(linalg::CMatView r,
                                              double noise_var,
                                              const Constellation& c,
                                              const PreprocessingConfig& cfg);

/// Same search over caller-supplied per-level probabilities Pe(l) (array
/// index = level-1) — the seam the control plane's path-count solver uses
/// to invert the model at a *nominal* SNR, with no channel realization in
/// hand.  `cfg.pe_model` is ignored (the pe values are taken as given).
PreprocessingResult find_most_promising_paths(const std::vector<double>& pe,
                                              int constellation_order,
                                              const PreprocessingConfig& cfg);

/// Reference implementation for tests: enumerate *all* |Q|^Nt position
/// vectors, rank by Pc, return the top `num_paths`.  Exponential; only for
/// tiny problems.
std::vector<RankedPath> rank_paths_exhaustive(const std::vector<double>& pe,
                                              int constellation_order,
                                              std::size_t nt,
                                              std::size_t num_paths);

}  // namespace flexcore::core
