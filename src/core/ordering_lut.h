// Approximate k-th-closest-symbol ordering via the triangle LUT of Fig. 6.
//
// Detection needs "the k-th closest constellation point to the effective
// received point".  Computing that exactly costs |Q| distance evaluations
// plus a sort per level — exactly what FlexCore avoids.  Instead (§3.2):
//
//  * Quantize the received point to the nearest point of the (unbounded)
//    constellation lattice; the residual falls in a square of side d_min
//    centered on that lattice point.
//  * Split the square into 8 triangles.  For ONE canonical triangle store a
//    precomputed distance order of lattice offsets; the other 7 follow by
//    the constellation's dihedral symmetry.
//  * The k-th entry of the (transformed) order added to the center gives
//    the k-th closest symbol.  If it lands outside the constellation the
//    corresponding processing element is deactivated (paper behaviour), or
//    optionally skipped (ablation).
#pragma once

#include <cstdint>
#include <vector>

#include "modulation/constellation.h"

namespace flexcore::core {

using linalg::cplx;
using modulation::Constellation;

/// How the canonical triangle's order is derived.
enum class LutSource {
  /// Distance order from the triangle's centroid: deterministic, and within
  /// a fraction of a percent of the Monte-Carlo order (see tests).
  kCentroid,
  /// The paper's method: most frequent exact order over points sampled
  /// uniformly in the triangle ("via computer simulations, compute the most
  /// frequent sorted order"), with a fixed seed for reproducibility.
  kMonteCarlo,
};

/// What to do when the LUT addresses a symbol outside the constellation.
enum class InvalidEntryPolicy {
  /// Paper behaviour: the PE is deactivated; the path yields no candidate.
  kDeactivate,
  /// Ablation: advance to the next in-constellation entry.
  kSkipToValid,
};

class OrderingLut {
 public:
  /// Lattice offset relative to the slicer center, in d_min steps.
  struct Offset {
    std::int8_t di;  ///< real-axis steps
    std::int8_t dq;  ///< imaginary-axis steps
  };

  explicit OrderingLut(const Constellation& c,
                       LutSource source = LutSource::kCentroid,
                       int mc_samples = 20000, std::uint64_t seed = 0x5eed);

  /// The symbol index of the k-th closest constellation point to z
  /// (k is 1-based, k <= |Q|), or -1 when the entry is invalid under
  /// `policy` (kDeactivate and out of constellation, or kSkipToValid with
  /// fewer than k valid entries).
  int kth_symbol(cplx z, int k,
                 InvalidEntryPolicy policy = InvalidEntryPolicy::kDeactivate) const;

  /// Canonical (triangle-1) order, exposed for tests and benches.
  const std::vector<Offset>& base_order() const noexcept { return base_; }

  const Constellation& constellation() const noexcept { return *c_; }

 private:
  std::vector<Offset> build_centroid_order() const;
  std::vector<Offset> build_monte_carlo_order(int samples, std::uint64_t seed) const;
  /// Sorted lattice offsets (ascending distance) for an arbitrary residual
  /// point `rep` inside the canonical triangle.
  std::vector<Offset> order_for_point(double u, double v) const;

  const Constellation* c_;
  std::vector<Offset> base_;  ///< |Q| entries for triangle t1
};

}  // namespace flexcore::core
