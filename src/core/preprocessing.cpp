#include "core/preprocessing.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace flexcore::core {

std::vector<double> level_error_probabilities(linalg::CMatView r,
                                              double noise_var,
                                              const Constellation& c,
                                              modulation::PeModel model) {
  const std::size_t nt = r.cols();
  std::vector<double> pe(nt);
  for (std::size_t i = 0; i < nt; ++i) {
    pe[i] = modulation::level_error_probability(model, c, std::abs(r(i, i)),
                                                noise_var);
  }
  return pe;
}

namespace {

/// Frontier node of the pre-processing tree.
struct Node {
  PositionVector p;
  double pc;
  int last_inc;  ///< 1-based element whose increment created this node
};

struct NodeGreater {
  bool operator()(const Node& a, const Node& b) const {
    if (a.pc != b.pc) return a.pc > b.pc;
    return a.p < b.p;  // deterministic tie-break
  }
};

}  // namespace

PreprocessingResult find_most_promising_paths(linalg::CMatView r,
                                              double noise_var,
                                              const Constellation& c,
                                              const PreprocessingConfig& cfg) {
  return find_most_promising_paths(
      level_error_probabilities(r, noise_var, c, cfg.pe_model), c.order(),
      cfg);
}

PreprocessingResult find_most_promising_paths(const std::vector<double>& pe,
                                              int constellation_order,
                                              const PreprocessingConfig& cfg) {
  if (cfg.num_paths == 0) {
    throw std::invalid_argument("find_most_promising_paths: num_paths == 0");
  }
  const std::size_t nt = pe.size();
  const int q = constellation_order;

  PreprocessingResult out;
  out.pe = pe;

  // Root probability prod_l (1 - Pe(l)): Nt-1 multiplications.
  double root_pc = 1.0;
  for (double pe_l : out.pe) root_pc *= (1.0 - pe_l);
  out.real_mults += nt >= 1 ? nt - 1 : 0;

  const std::size_t cap =
      cfg.candidate_list_cap == 0 ? cfg.num_paths : cfg.candidate_list_cap;
  const std::size_t batch = std::max<std::size_t>(1, cfg.batch_expand);

  // Frontier ordered by descending pc.  Sizes stay <= cap + Nt*batch.
  std::multiset<Node, NodeGreater> frontier;
  frontier.insert(Node{PositionVector(nt, 1), root_pc, static_cast<int>(nt)});

  out.paths.reserve(cfg.num_paths);

  while (!frontier.empty() && out.paths.size() < cfg.num_paths &&
         out.pc_sum < cfg.stop_threshold) {
    // Extract up to `batch` best frontier nodes for this round.
    std::vector<Node> round;
    for (std::size_t b = 0; b < batch && !frontier.empty(); ++b) {
      auto it = frontier.begin();
      round.push_back(*it);
      frontier.erase(it);
    }

    for (Node& node : round) {
      if (out.paths.size() >= cfg.num_paths || out.pc_sum >= cfg.stop_threshold) {
        break;
      }
      out.pc_sum += node.pc;
      ++out.nodes_expanded;

      // Children: increment element w for w in [1, last_inc]; the dedup rule
      // of §3.1.1 means larger elements are never incremented again.
      for (int w = 1; w <= node.last_inc; ++w) {
        int& entry = node.p[static_cast<std::size_t>(w - 1)];
        if (entry >= q) continue;  // rank cannot exceed |Q|
        ++entry;
        const double child_pc = node.pc * out.pe[static_cast<std::size_t>(w - 1)];
        ++out.real_mults;
        frontier.insert(Node{node.p, child_pc, w});
        --entry;
      }

      out.paths.push_back(RankedPath{std::move(node.p), node.pc});
    }

    // Trim the candidate list to its capacity (drop lowest pc).
    while (frontier.size() > cap) {
      frontier.erase(std::prev(frontier.end()));
    }
  }
  return out;
}

std::vector<RankedPath> rank_paths_exhaustive(const std::vector<double>& pe,
                                              int constellation_order,
                                              std::size_t nt,
                                              std::size_t num_paths) {
  const std::uint64_t q = static_cast<std::uint64_t>(constellation_order);
  double total_d = static_cast<double>(nt) * std::log2(static_cast<double>(q));
  if (total_d > 24) {
    throw std::invalid_argument("rank_paths_exhaustive: search space too large");
  }
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < nt; ++i) total *= q;

  std::vector<RankedPath> all;
  all.reserve(total);
  for (std::uint64_t code = 0; code < total; ++code) {
    PositionVector p(nt);
    std::uint64_t v = code;
    double pc = 1.0;
    for (std::size_t i = 0; i < nt; ++i) {
      const int k = static_cast<int>(v % q) + 1;
      v /= q;
      p[i] = k;
      pc *= (1.0 - pe[i]) * std::pow(pe[i], k - 1);
    }
    all.push_back(RankedPath{std::move(p), pc});
  }
  std::sort(all.begin(), all.end(), [](const RankedPath& a, const RankedPath& b) {
    if (a.pc != b.pc) return a.pc > b.pc;
    return a.p < b.p;
  });
  if (all.size() > num_paths) all.resize(num_paths);
  return all;
}

}  // namespace flexcore::core
