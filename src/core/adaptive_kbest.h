// Adaptive K-best: per-level survivor widths derived from FlexCore's
// probability model (the extension §6 of the paper proposes: "Using
// FlexCore's approach we can adaptively select the value of K, which will
// differ per Sphere decoding tree level").
//
// Classic K-best keeps a constant K survivors at every level, which §6
// criticizes: dense constellations and large arrays force K up (and the
// sorting cost with it) because a single K must cover the *worst* level.
// Here the pre-processing model fixes that: the per-level width K_l is the
// number of distinct path prefixes FlexCore's N_PE most promising position
// vectors pass through at level l, so reliable levels keep one survivor
// and weak levels get exactly the breadth the model says they need.
#pragma once

#include "core/preprocessing.h"
#include "detect/detector.h"
#include "linalg/qr.h"

namespace flexcore::core {

using detect::DetectionResult;
using detect::Detector;
using linalg::CMat;
using linalg::CVec;
using modulation::Constellation;

class AdaptiveKBestDetector : public Detector {
 public:
  /// `path_budget` plays the role of FlexCore's N_PE: the model allocates
  /// per-level widths as if that many processing elements were available.
  AdaptiveKBestDetector(const Constellation& c, std::size_t path_budget,
                        modulation::PeModel pe_model =
                            modulation::PeModel::kExactSer)
      : constellation_(&c), path_budget_(path_budget), pe_model_(pe_model) {}

  void set_channel(const CMat& h, double noise_var) override;
  DetectionResult detect(const CVec& y) const override;
  std::string name() const override {
    return "akbest-" + std::to_string(path_budget_);
  }
  std::size_t parallel_tasks() const override {
    std::size_t widest = 1;
    for (std::size_t k : level_k_) widest = std::max(widest, k);
    return widest;
  }

  /// The per-level survivor widths chosen for the current channel
  /// (array index = level - 1, i.e. detection order is back to front).
  const std::vector<std::size_t>& level_widths() const noexcept {
    return level_k_;
  }

 private:
  const Constellation* constellation_;
  std::size_t path_budget_;
  modulation::PeModel pe_model_;
  linalg::QrResult qr_;
  std::vector<CVec> rx_;
  std::vector<std::size_t> level_k_;
};

}  // namespace flexcore::core
