// The FlexCore parallel detector (paper §3.2): evaluate the pre-selected
// most-promising tree paths, one processing element per path, and return
// the minimum-distance candidate.
//
// This class is the library's primary public API.  Usage:
//
//   Constellation qam(64);
//   FlexCoreDetector det(qam, {.num_pes = 128});
//   det.set_channel(H, noise_var);        // QR + pre-processing
//   DetectionResult r = det.detect(y);    // parallel-friendly path walk
//
// The per-path work (evaluate_path) is pure and thread-safe, so callers can
// fan the paths out across any execution resource; detect() runs them
// sequentially, detect_batch fans the single-channel grid across a thread
// pool, and api::UplinkPipeline::detect_frame runs whole OFDM frames as one
// multi-channel grid the way the paper maps tasks onto GPU threads / FPGA
// engines.
#pragma once

#include <optional>
#include <span>

#include "core/ordering_lut.h"
#include "core/preprocessing.h"
#include "detect/detector.h"
#include "detect/path_grid.h"
#include "detect/path_kernels.h"
#include "detect/workspace.h"
#include "linalg/qr.h"

namespace flexcore::core {

using detect::DetectionResult;
using detect::DetectionStats;
using detect::Detector;
using linalg::CMat;
using linalg::CVec;

/// How the k-th closest symbol is located during the path walk.
enum class OrderingMode {
  kLut,        ///< triangle LUT (the paper's design; no sorting)
  kExactSort,  ///< exhaustive per-level sort (ablation / upper bound)
};

/// FlexCore configuration.
struct FlexCoreConfig {
  /// Available processing elements = paths selected by pre-processing.
  std::size_t num_pes = 64;
  /// If > 0, run as a-FlexCore: activate only the first paths whose
  /// cumulative Pc reaches this threshold (0.95 in the paper's Fig. 10).
  double adaptive_threshold = 0.0;
  /// Per-level error-probability model (DESIGN.md "Eq. 4 prefactor").
  /// Default kExactSer: the SER-calibrated model the paper's Appendix
  /// validates in Fig. 14.  kPaperErfc (Eq. 4 exactly as printed, which
  /// drops the constellation minimum-distance factor) is kept as an
  /// ablation; it degenerates the path allocation for dense constellations.
  modulation::PeModel pe_model = modulation::PeModel::kExactSer;
  OrderingMode ordering = OrderingMode::kLut;
  InvalidEntryPolicy invalid_policy = InvalidEntryPolicy::kDeactivate;
  LutSource lut_source = LutSource::kCentroid;
  /// Candidate-list cap for pre-processing (0 = num_pes, the paper's rule).
  std::size_t candidate_list_cap = 0;
  /// Pre-processing nodes expanded per round (1 = sequential).
  std::size_t batch_expand = 1;
  /// Compute tier of the path grids (detect/path_kernels.h): kFloat64 is
  /// bit-identical to the scalar kernels; kFloat32 evaluates the block
  /// kernel in single precision (spec suffix ":fp32"); kInt16 runs the
  /// quantized fixed-point kernel (spec suffix ":i16", accuracy bounded by
  /// detect::kI16SerTolerance).  Winner reconstruction and the sequential
  /// detect() path stay double in every tier.
  detect::Precision precision = detect::Precision::kFloat64;
};

/// Soft-output extension (§7 "promising next step"): max-log LLRs computed
/// from the evaluated path list.
struct SoftOutput {
  /// llrs[a][b] = LLR of bit b of antenna a (original antenna order),
  /// positive = bit 0 more likely.  Clipped to +-`kLlrClip` when only one
  /// hypothesis appears in the candidate list.
  std::vector<std::vector<double>> llrs;
  DetectionResult hard;  ///< the ordinary hard decision
  static constexpr double kLlrClip = 50.0;
};

class FlexCoreDetector : public Detector {
 public:
  FlexCoreDetector(const Constellation& c, FlexCoreConfig cfg);

  void set_channel(const CMat& h, double noise_var) override;
  DetectionResult detect(const CVec& y) const override;

  /// Batched detection over the attached thread pool: fans the flat
  /// vector x path grid (paper §4) across the pool, reconstructs the
  /// winning path per vector, and applies the SIC fallback to vectors
  /// whose every path was deactivated.  Symbols and metrics are identical
  /// to per-vector detect(); see detect::BatchResult for the stats
  /// contract.  Without an attached pool this falls back to the
  /// sequential base-class loop.
  void detect_batch(std::span<const CVec> ys,
                    detect::BatchResult* out) const override;
  void set_thread_pool(parallel::ThreadPool* pool) override { pool_ = pool; }

  std::string name() const override;
  std::size_t parallel_tasks() const override { return active_paths(); }

  /// Number of paths actually evaluated per vector: |E| for plain FlexCore,
  /// the adaptive prefix size for a-FlexCore.
  std::size_t active_paths() const;

  /// Cumulative model probability of the active path set.
  double active_pc_sum() const;

  /// Pre-processing output for the current channel (selected position
  /// vectors, Pe values, multiplication counts).
  const PreprocessingResult& preprocessing() const { return preproc_; }

  /// Writes ybar = Q^H y into `out` without allocating.  out.size() must be
  /// Nt (= R.cols()).
  void rotate_into(const CVec& y, std::span<linalg::cplx> out) const;

  /// Rotates y into tree-search coordinates (ybar = Q^H y).
  CVec rotate(const CVec& y) const {
    CVec out(qr_.R.cols());
    rotate_into(y, out);
    return out;
  }

  /// Result of walking one path; `valid` is false when a LUT entry pointed
  /// outside the constellation and the policy deactivated the PE.
  struct PathEval {
    bool valid = false;
    double metric = 0.0;
    std::vector<int> symbols;  // tree (permuted) order
    DetectionStats stats;
  };

  /// Walks path `path_index` (into preprocessing().paths); thread-safe.
  PathEval evaluate_path(const CVec& ybar, std::size_t path_index) const;

  /// Buffer-reusing instrumented path walk: symbol decisions land in
  /// ws.symbols (tree order), scratch in ws.s, and *stats is overwritten
  /// with this walk's counters.  Returns false when the path was
  /// deactivated (then ws.symbols/metric are partial, as in PathEval).
  bool evaluate_path(std::span<const linalg::cplx> ybar,
                     std::size_t path_index, detect::Workspace& ws,
                     double* metric, DetectionStats* stats) const;

  /// Metric-only path walk for the hot loop of the task grids: no
  /// allocation, no instrumentation.  Returns +infinity for deactivated
  /// paths.  Requires Nt <= 32.  Always full (double) precision.
  double path_metric(std::span<const linalg::cplx> ybar,
                     std::size_t path_index) const;

  /// Lane-parallel block kernel: metrics of paths [first_path,
  /// first_path + n_paths) in one call, through the PathPlan compiled by
  /// set_channel in the configured precision tier.  At kFloat64 the
  /// metrics are bit-identical to path_metric per path; at kFloat32 the
  /// grid runs single precision.  Thread-safe, allocation-free.
  void path_metric_block(std::span<const linalg::cplx> ybar,
                         std::size_t first_path, std::size_t n_paths,
                         double* out_metrics) const {
    if (cfg_.precision == detect::Precision::kInt16) {
      plan16_.path_metric_block(ybar, first_path, n_paths, out_metrics);
    } else if (cfg_.precision == detect::Precision::kFloat32) {
      plan32_.path_metric_block(ybar, first_path, n_paths, out_metrics);
    } else {
      plan64_.path_metric_block(ybar, first_path, n_paths, out_metrics);
    }
  }

  /// Heap footprint of the compiled plan of the configured tier (the
  /// number the precision ladder halves; reported by bench/micro_kernels).
  std::size_t plan_footprint_bytes() const {
    switch (cfg_.precision) {
      case detect::Precision::kInt16: return plan16_.footprint_bytes();
      case detect::Precision::kFloat32: return plan32_.footprint_bytes();
      default: return plan64_.footprint_bytes();
    }
  }

  /// The quantized plan of the current channel (compiled only when the
  /// configured precision is kInt16) — quantization introspection for
  /// tests and benches.
  const detect::PathPlanI16& plan_i16() const noexcept { return plan16_; }

  /// Builds the final DetectionResult of one vector from a grid verdict
  /// (run_path_grid / run_frame_grid): an instrumented walk of the winning
  /// path, or the plain-SIC fallback when `best_metric` is +infinity (every
  /// path deactivated).  Symbols come back in ORIGINAL antenna order.
  /// Returns true when the fallback fired.  Scratch lives in `ws`.
  bool reconstruct_winner(std::span<const linalg::cplx> ybar,
                          std::size_t best_path, double best_metric,
                          detect::Workspace& ws, DetectionResult* res) const;

  /// Hard detection + list-based max-log LLRs (soft extension).
  SoftOutput detect_soft(const CVec& y) const;

  const linalg::QrResult& qr() const noexcept { return qr_; }
  const FlexCoreConfig& config() const noexcept { return cfg_; }
  const Constellation& constellation() const noexcept { return *constellation_; }
  const OrderingLut& lut() const noexcept { return lut_; }

 private:
  /// Sequential reduction over all active paths; sets *fell (when given) if
  /// every path was deactivated and the SIC fallback produced the result.
  DetectionResult reduce(const CVec& ybar, std::vector<PathEval>* keep_all,
                         bool* fell = nullptr) const;

  /// Fallback when every PE was deactivated: walks the [1,1,...,1] path
  /// with exact slicing (plain SIC), which is always valid.  Fills
  /// `res->symbols` in tree (permuted) order and `res->metric`; scratch
  /// lives in `ws`.
  void sic_fallback_into(std::span<const linalg::cplx> ybar,
                         detect::Workspace& ws, DetectionResult* res) const;

  const Constellation* constellation_;
  parallel::ThreadPool* pool_ = nullptr;
  FlexCoreConfig cfg_;
  OrderingLut lut_;
  linalg::QrResult qr_;
  PreprocessingResult preproc_;
  std::size_t active_paths_ = 0;
  double noise_var_ = 1.0;
  CVec r_diag_inv_;        // 1 / R(i,i)
  std::vector<CVec> rx_;   // rx_[i][x] = R(i,i) * point(x)
  // Compiled path plans for the block kernel (only the configured
  // precision tier is compiled per set_channel).
  detect::PathPlan plan64_;
  detect::PathPlanF plan32_;
  detect::PathPlanI16 plan16_;
  // Per-worker reconstruction scratch plus the reusable grid output, kept
  // across detect_batch calls so repeated per-subcarrier batches stay at
  // their high-water mark (zero steady-state allocations).  Guarded by the
  // detect_batch contract (one driver thread at a time).
  mutable detect::WorkspaceBank workspaces_;
  mutable detect::PathGridOutput grid_;
  mutable std::vector<std::uint8_t> fell_;
};

}  // namespace flexcore::core
