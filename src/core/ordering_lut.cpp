#include "core/ordering_lut.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <random>

namespace flexcore::core {

namespace {
// Canonical triangle t1: residuals (u, v) with 0 <= v <= u <= h, where
// h = half the slicer square side = constellation scale.
}  // namespace

OrderingLut::OrderingLut(const Constellation& c, LutSource source,
                         int mc_samples, std::uint64_t seed)
    : c_(&c) {
  base_ = (source == LutSource::kCentroid)
              ? build_centroid_order()
              : build_monte_carlo_order(mc_samples, seed);
}

std::vector<OrderingLut::Offset> OrderingLut::order_for_point(double u,
                                                              double v) const {
  // Candidate offsets within a window that is guaranteed to contain the |Q|
  // nearest lattice points (window (2*side+1)^2 >= 4*|Q| entries).
  const int side = c_->side();
  const double step = c_->min_distance();
  struct Cand {
    double d2;
    Offset off;
  };
  std::vector<Cand> cands;
  cands.reserve(static_cast<std::size_t>((2 * side + 1) * (2 * side + 1)));
  for (int di = -side; di <= side; ++di) {
    for (int dq = -side; dq <= side; ++dq) {
      const double dx = di * step - u;
      const double dy = dq * step - v;
      cands.push_back(Cand{dx * dx + dy * dy,
                           Offset{static_cast<std::int8_t>(di),
                                  static_cast<std::int8_t>(dq)}});
    }
  }
  std::stable_sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.d2 != b.d2) return a.d2 < b.d2;
    if (a.off.di != b.off.di) return a.off.di < b.off.di;
    return a.off.dq < b.off.dq;
  });
  std::vector<Offset> order(static_cast<std::size_t>(c_->order()));
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = cands[k].off;
  return order;
}

std::vector<OrderingLut::Offset> OrderingLut::build_centroid_order() const {
  // Centroid of the triangle with vertices (0,0), (h,0), (h,h).
  const double h = c_->scale();
  return order_for_point(2.0 * h / 3.0, h / 3.0);
}

std::vector<OrderingLut::Offset> OrderingLut::build_monte_carlo_order(
    int samples, std::uint64_t seed) const {
  const double h = c_->scale();
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> unif(0.0, 1.0);

  std::map<std::vector<std::int16_t>, int> histogram;
  for (int s = 0; s < samples; ++s) {
    // Uniform sample in t1: u in [0,h], v in [0,u] via rejection-free warp.
    const double u = h * std::sqrt(unif(gen));
    const double v = u * unif(gen);
    const auto order = order_for_point(u, v);
    std::vector<std::int16_t> key;
    key.reserve(order.size());
    for (const Offset& o : order) {
      key.push_back(static_cast<std::int16_t>((o.di << 8) | (o.dq & 0xff)));
    }
    ++histogram[key];
  }
  // Most frequent order wins (ties broken by key order — deterministic).
  const auto best = std::max_element(
      histogram.begin(), histogram.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  std::vector<Offset> order;
  order.reserve(best->first.size());
  for (std::int16_t k : best->first) {
    order.push_back(Offset{static_cast<std::int8_t>(k >> 8),
                           static_cast<std::int8_t>(k & 0xff)});
  }
  return order;
}

int OrderingLut::kth_symbol(cplx z, int k, InvalidEntryPolicy policy) const {
  const int side = c_->side();
  const int ci = c_->unbounded_axis_index(z.real());
  const int cq = c_->unbounded_axis_index(z.imag());
  // Residual within the slicer square (pam_level's formula extends to
  // out-of-range axis indices).
  const double u = z.real() - (2.0 * ci - (side - 1)) * c_->scale();
  const double v = z.imag() - (2.0 * cq - (side - 1)) * c_->scale();

  // Identify the triangle: reflect (u, v) into t1 and remember the
  // transform; lattice symmetry lets us apply the same transform to the
  // stored offsets.
  const bool flip_u = u < 0.0;
  const bool flip_v = v < 0.0;
  const double au = flip_u ? -u : u;
  const double av = flip_v ? -v : v;
  const bool swap_axes = av > au;

  int found = 0;
  for (const Offset& base : base_) {
    int di = base.di;
    int dq = base.dq;
    if (swap_axes) std::swap(di, dq);
    if (flip_u) di = -di;
    if (flip_v) dq = -dq;
    const int ai = ci + di;
    const int aq = cq + dq;
    const bool valid = c_->axes_in_range(ai, aq);
    if (policy == InvalidEntryPolicy::kDeactivate) {
      ++found;
      if (found == k) return valid ? c_->index_from_axes(ai, aq) : -1;
    } else {  // kSkipToValid
      if (!valid) continue;
      ++found;
      if (found == k) return c_->index_from_axes(ai, aq);
    }
  }
  return -1;
}

}  // namespace flexcore::core
