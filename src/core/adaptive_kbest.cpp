#include "core/adaptive_kbest.h"

#include <algorithm>
#include <set>
#include <string>

namespace flexcore::core {

using detect::DetectionStats;
using linalg::cplx;

void AdaptiveKBestDetector::set_channel(const CMat& h, double noise_var) {
  qr_ = linalg::sorted_qr_wubben(h);
  const std::size_t nt = qr_.R.cols();
  const int q = constellation_->order();

  rx_.assign(nt, CVec(static_cast<std::size_t>(q)));
  for (std::size_t i = 0; i < nt; ++i) {
    for (int x = 0; x < q; ++x) {
      rx_[i][static_cast<std::size_t>(x)] = qr_.R(i, i) * constellation_->point(x);
    }
  }

  // Per-level widths = number of DISTINCT path prefixes the most promising
  // position vectors need at each level.  (Not the maximum rank: a K-best
  // survivor list at level l must hold every partial hypothesis the
  // selected paths pass through, and two paths sharing ranks down to level
  // l occupy one survivor slot.)
  core::PreprocessingConfig pcfg;
  pcfg.num_paths = path_budget_;
  pcfg.pe_model = pe_model_;
  const auto pre =
      core::find_most_promising_paths(qr_.R, noise_var, *constellation_, pcfg);
  level_k_.assign(nt, 1);
  std::vector<std::set<std::string>> prefixes(nt);
  for (const auto& rp : pre.paths) {
    std::string key;
    for (std::size_t ii = 0; ii < nt; ++ii) {
      const std::size_t i = nt - 1 - ii;  // walk top level downwards
      key += std::to_string(rp.p[i]);
      key += ',';
      prefixes[i].insert(key);
    }
  }
  for (std::size_t i = 0; i < nt; ++i) {
    level_k_[i] = std::max<std::size_t>(1, prefixes[i].size());
  }
}

DetectionResult AdaptiveKBestDetector::detect(const CVec& y) const {
  const CMat& r = qr_.R;
  const std::size_t nt = r.cols();
  const std::size_t q = static_cast<std::size_t>(constellation_->order());
  const CVec ybar = qr_.Q.hermitian() * y;

  struct Partial {
    double ped;
    std::vector<int> path;  // symbols, top level first
  };

  DetectionStats stats;
  std::vector<Partial> survivors{{0.0, {}}};

  for (std::size_t ii = 0; ii < nt; ++ii) {
    const std::size_t i = nt - 1 - ii;
    std::vector<Partial> candidates;
    candidates.reserve(survivors.size() * q);
    for (const Partial& sv : survivors) {
      cplx b = ybar[i];
      for (std::size_t j = i + 1; j < nt; ++j) {
        b -= r(i, j) * constellation_->point(sv.path[nt - 1 - j]);
        stats.real_mults += 4;
        stats.flops += 8;
      }
      for (std::size_t x = 0; x < q; ++x) {
        const double ped = sv.ped + linalg::abs2(b - rx_[i][x]);
        candidates.push_back({ped, sv.path});
        candidates.back().path.push_back(static_cast<int>(x));
      }
      stats.real_mults += 2 * q;
      stats.flops += 5 * q;
      ++stats.nodes_visited;
    }
    // The adaptive width for THIS level (classic K-best would use a
    // constant here).
    const std::size_t keep = std::min(level_k_[i], candidates.size());
    std::partial_sort(candidates.begin(),
                      candidates.begin() + static_cast<std::ptrdiff_t>(keep),
                      candidates.end(),
                      [](const Partial& a, const Partial& b) { return a.ped < b.ped; });
    candidates.resize(keep);
    survivors = std::move(candidates);
  }

  const Partial& best = survivors.front();
  std::vector<int> detected(nt);
  for (std::size_t ii = 0; ii < nt; ++ii) detected[nt - 1 - ii] = best.path[ii];

  DetectionResult res;
  res.symbols = linalg::unpermute(detected, qr_.perm);
  res.metric = best.ped;
  res.stats = stats;
  res.stats.paths_evaluated = parallel_tasks();
  return res;
}

}  // namespace flexcore::core
