#include "core/flexcore_detector.h"

#include "parallel/hot_path.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "detect/path_grid.h"
#include "obs/obs.h"
#include "parallel/thread_pool.h"

namespace flexcore::core {

FlexCoreDetector::FlexCoreDetector(const Constellation& c, FlexCoreConfig cfg)
    : constellation_(&c), cfg_(cfg), lut_(c, cfg.lut_source) {
  if (cfg_.num_pes == 0) {
    throw std::invalid_argument("FlexCoreDetector: num_pes must be >= 1");
  }
}

std::string FlexCoreDetector::name() const {
  std::string base = cfg_.adaptive_threshold > 0.0
                         ? "a-flexcore-" + std::to_string(cfg_.num_pes)
                         : "flexcore-" + std::to_string(cfg_.num_pes);
  base += detect::precision_suffix(cfg_.precision);
  return base;
}

void FlexCoreDetector::set_channel(const CMat& h, double noise_var) {
  noise_var_ = noise_var;
  qr_ = linalg::sorted_qr_wubben(h);

  PreprocessingConfig pcfg;
  pcfg.num_paths = cfg_.num_pes;
  pcfg.stop_threshold =
      cfg_.adaptive_threshold > 0.0 ? cfg_.adaptive_threshold : 1.0;
  pcfg.pe_model = cfg_.pe_model;
  pcfg.candidate_list_cap = cfg_.candidate_list_cap;
  pcfg.batch_expand = cfg_.batch_expand;
  preproc_ = find_most_promising_paths(qr_.R, noise_var, *constellation_, pcfg);
  active_paths_ = preproc_.paths.size();

  const std::size_t nt = qr_.R.cols();
  const int q = constellation_->order();
  r_diag_inv_.resize(nt);
  rx_.assign(nt, CVec(static_cast<std::size_t>(q)));
  for (std::size_t i = 0; i < nt; ++i) {
    r_diag_inv_[i] = cplx{1.0, 0.0} / qr_.R(i, i);
    for (int x = 0; x < q; ++x) {
      rx_[i][static_cast<std::size_t>(x)] = qr_.R(i, i) * constellation_->point(x);
    }
  }

  // Compile the selected path set into the block kernel's PathPlan (the
  // configured precision tier only; the other tier's plan is dropped so
  // stale state can never be evaluated).
  const bool exact = cfg_.ordering == OrderingMode::kExactSort;
  if (cfg_.precision == detect::Precision::kInt16) {
    plan16_.compile_flexcore(qr_.R, preproc_.paths, *constellation_, lut_,
                             exact, cfg_.invalid_policy);
    plan64_.clear();
    plan32_.clear();
  } else if (cfg_.precision == detect::Precision::kFloat32) {
    plan32_.compile_flexcore(qr_.R, preproc_.paths, *constellation_, lut_,
                             exact, cfg_.invalid_policy);
    plan64_.clear();
    plan16_.clear();
  } else {
    plan64_.compile_flexcore(qr_.R, preproc_.paths, *constellation_, lut_,
                             exact, cfg_.invalid_policy);
    plan32_.clear();
    plan16_.clear();
  }
}

std::size_t FlexCoreDetector::active_paths() const { return active_paths_; }

double FlexCoreDetector::active_pc_sum() const { return preproc_.pc_sum; }

FLEXCORE_HOT_PATH
void FlexCoreDetector::rotate_into(const CVec& y,
                                   std::span<cplx> out) const {
  linalg::hermitian_mul_into(qr_.Q, y, out);
}

FlexCoreDetector::PathEval FlexCoreDetector::evaluate_path(
    const CVec& ybar, std::size_t path_index) const {
  detect::Workspace ws;
  PathEval ev;
  ev.valid = evaluate_path(ybar, path_index, ws, &ev.metric, &ev.stats);
  ev.symbols = ws.symbols;
  return ev;
}

FLEXCORE_HOT_PATH
bool FlexCoreDetector::evaluate_path(std::span<const cplx> ybar,
                                     std::size_t path_index,
                                     detect::Workspace& ws, double* metric,
                                     DetectionStats* stats) const {
  const CMat& r = qr_.R;
  const std::size_t nt = r.cols();
  const PositionVector& p = preproc_.paths[path_index].p;

  // flexcore-lint: allow-next-line(HP001) warm per-worker workspace
  ws.symbols.assign(nt, 0);
  // flexcore-lint: allow-next-line(HP001) warm per-worker workspace
  ws.s.assign(nt, cplx{0.0, 0.0});
  *metric = 0.0;
  *stats = DetectionStats{};

  for (std::size_t ii = 0; ii < nt; ++ii) {
    const std::size_t i = nt - 1 - ii;
    // Interference cancellation (Eq. 5 numerator).
    cplx b = ybar[i];
    for (std::size_t j = i + 1; j < nt; ++j) {
      b -= r(i, j) * ws.s[j];
      stats->real_mults += 4;
      stats->flops += 8;
    }
    // Effective received point and k-th closest symbol.
    const cplx eff = b * r_diag_inv_[i];
    int x;
    if (cfg_.ordering == OrderingMode::kLut) {
      x = lut_.kth_symbol(eff, p[i], cfg_.invalid_policy);
    } else {
      x = (p[i] <= constellation_->order())
              ? constellation_->kth_nearest_exact(eff, p[i])
              : -1;
    }
    if (x < 0) return false;  // deactivated processing element
    ws.symbols[i] = x;
    ws.s[i] = constellation_->point(x);
    *metric += linalg::abs2(b - rx_[i][static_cast<std::size_t>(x)]);
    // Table 2 accounting: 4 real mults per cancelled term + 4 per level for
    // the PED constant multiply (the FPGA design folds the divide into a
    // multiply by R(l,l), so no extra cost is counted for `eff`).
    stats->real_mults += 4;
    stats->flops += 11;
    ++stats->nodes_visited;
  }
  return true;
}

FLEXCORE_HOT_PATH
double FlexCoreDetector::path_metric(std::span<const cplx> ybar,
                                     std::size_t path_index) const {
  const CMat& r = qr_.R;
  const std::size_t nt = r.cols();
  assert(nt <= 32);
  const PositionVector& p = preproc_.paths[path_index].p;

  std::array<cplx, 32> s;
  double metric = 0.0;
  for (std::size_t ii = 0; ii < nt; ++ii) {
    const std::size_t i = nt - 1 - ii;
    cplx b = ybar[i];
    for (std::size_t j = i + 1; j < nt; ++j) b -= r(i, j) * s[j];
    const cplx eff = b * r_diag_inv_[i];
    const int x = (cfg_.ordering == OrderingMode::kLut)
                      ? lut_.kth_symbol(eff, p[i], cfg_.invalid_policy)
                      : constellation_->kth_nearest_exact(eff, p[i]);
    if (x < 0) return std::numeric_limits<double>::infinity();
    s[i] = constellation_->point(x);
    metric += linalg::abs2(b - rx_[i][static_cast<std::size_t>(x)]);
  }
  return metric;
}

DetectionResult FlexCoreDetector::reduce(const CVec& ybar,
                                         std::vector<PathEval>* keep_all,
                                         bool* fell) const {
  DetectionResult res;
  res.metric = std::numeric_limits<double>::infinity();
  bool any = false;
  for (std::size_t pidx = 0; pidx < active_paths_; ++pidx) {
    PathEval ev = evaluate_path(ybar, pidx);
    res.stats += ev.stats;
    if (ev.valid && ev.metric < res.metric) {
      res.metric = ev.metric;
      res.symbols = ev.symbols;
      any = true;
    }
    if (keep_all) keep_all->push_back(std::move(ev));
  }
  if (!any) {
    // Every PE was deactivated (possible only for tiny path budgets at
    // extreme noise).
    detect::Workspace ws;
    sic_fallback_into(ybar, ws, &res);
  }
  if (fell != nullptr) *fell = !any;
  res.stats.paths_evaluated = active_paths_;
  res.symbols = linalg::unpermute(res.symbols, qr_.perm);
  return res;
}

void FlexCoreDetector::sic_fallback_into(std::span<const cplx> ybar,
                                         detect::Workspace& ws,
                                         DetectionResult* res) const {
  const std::size_t nt = qr_.R.cols();
  ws.symbols.assign(nt, 0);
  ws.s.assign(nt, cplx{0.0, 0.0});
  double metric = 0.0;
  for (std::size_t ii = 0; ii < nt; ++ii) {
    const std::size_t i = nt - 1 - ii;
    cplx b = ybar[i];
    for (std::size_t j = i + 1; j < nt; ++j) b -= qr_.R(i, j) * ws.s[j];
    ws.symbols[i] = constellation_->slice(b * r_diag_inv_[i]);
    ws.s[i] = constellation_->point(ws.symbols[i]);
    metric +=
        linalg::abs2(b - rx_[i][static_cast<std::size_t>(ws.symbols[i])]);
  }
  res->symbols = ws.symbols;
  res->metric = metric;
}

bool FlexCoreDetector::reconstruct_winner(std::span<const cplx> ybar,
                                          std::size_t best_path,
                                          double best_metric,
                                          detect::Workspace& ws,
                                          DetectionResult* res) const {
  // The double walk re-deriving the winner can disagree with the grid only
  // in the reduced-precision tiers, where a decision that lands near a cell
  // boundary can fall on the other side of it: the fp32 or int16 kernel may
  // crown a path the exact walk deactivates, or deactivate every path the
  // exact walk keeps.  Those vectors are rescued with one exact scalar
  // rescan (the quantized grid already paid for the other 99%+); only when
  // the exact scan also finds every path dead does the vector drop to plain
  // SIC, exactly like the fp64 tier.
  bool fell = true;
  if (!std::isinf(best_metric) &&
      evaluate_path(ybar, best_path, ws, &res->metric, &res->stats)) {
    res->symbols = ws.symbols;
    fell = false;
  } else {
    std::size_t rescue_path = 0;
    double rescue_metric = std::numeric_limits<double>::infinity();
    if (cfg_.precision != detect::Precision::kFloat64) {
      if (cfg_.precision == detect::Precision::kInt16) {
        // One exact scalar rescan of every active path, rescuing an i16
        // winner that fell on the wrong side of a quantization boundary.
        obs::counter_add(obs::Counter::kI16BoundaryRescans);
      }
      for (std::size_t p = 0; p < active_paths_; ++p) {
        const double m = path_metric(ybar, p);
        if (m < rescue_metric) {
          rescue_metric = m;
          rescue_path = p;
        }
      }
    }
    if (std::isfinite(rescue_metric) &&
        evaluate_path(ybar, rescue_path, ws, &res->metric, &res->stats)) {
      res->symbols = ws.symbols;
      fell = false;
    } else {
      res->stats = DetectionStats{};
      sic_fallback_into(ybar, ws, res);
    }
  }
  res->stats.paths_evaluated = active_paths_;
  // Every branch above leaves the winning tree-order decisions in
  // ws.symbols; unpermute straight from there into the caller's buffer so
  // the steady-state reconstruction allocates nothing.
  linalg::unpermute_into(ws.symbols, qr_.perm, &res->symbols);
  return fell;
}

void FlexCoreDetector::detect_batch(std::span<const CVec> ys,
                                    detect::BatchResult* out) const {
  if (pool_ == nullptr || active_paths_ == 0 || ys.empty()) {
    // Sequential loop with the base-class contract (full per-path
    // instrumentation, tasks = vector count), but with the SIC-fallback
    // counter kept consistent with the pooled grid path.
    out->results.clear();
    out->results.reserve(ys.size());
    out->stats = DetectionStats{};
    out->sic_fallbacks = 0;
    out->tasks = ys.size();
    const auto t0 = std::chrono::steady_clock::now();
    for (const CVec& y : ys) {
      bool fell = false;
      out->results.push_back(reduce(rotate(y), nullptr, &fell));
      out->stats += out->results.back().stats;
      out->sic_fallbacks += fell;
    }
    out->elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return;
  }
  const std::size_t nv = ys.size();
  detect::run_path_grid(*this, active_paths_, ys, qr_.R.cols(), *pool_,
                        &grid_);

  out->results.assign(nv, DetectionResult{});
  out->stats = DetectionStats{};
  out->sic_fallbacks = 0;
  out->tasks = grid_.tasks;
  out->elapsed_seconds = grid_.elapsed_seconds;

  // Winner reconstruction: one instrumented path walk per vector (the grid
  // itself runs the metric-only block kernel), plus the SIC fallback for
  // vectors whose every path was deactivated — the caller-level policy the
  // raw task grid historically punted on.
  fell_.assign(nv, 0);
  workspaces_.ensure(pool_->size());
  pool_->parallel_for_worker(nv, [&](std::size_t w, std::size_t v) {
    fell_[v] = reconstruct_winner(grid_.ybar(v), grid_.best_path[v],
                                  grid_.best_metric[v], workspaces_.at(w),
                                  &out->results[v]);
  });
  for (std::size_t v = 0; v < nv; ++v) {
    out->stats += out->results[v].stats;
    out->sic_fallbacks += fell_[v];
  }
}

DetectionResult FlexCoreDetector::detect(const CVec& y) const {
  return reduce(rotate(y), nullptr);
}

SoftOutput FlexCoreDetector::detect_soft(const CVec& y) const {
  const CVec ybar = rotate(y);
  std::vector<PathEval> all;
  all.reserve(active_paths_);

  SoftOutput out;
  out.hard = reduce(ybar, &all);

  const std::size_t nt = qr_.R.cols();
  const int bits = constellation_->bits_per_symbol();
  // min metric per (antenna, bit, value) over the candidate list.
  constexpr double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<std::array<double, 2>>> best(
      nt, std::vector<std::array<double, 2>>(static_cast<std::size_t>(bits),
                                             {inf, inf}));

  std::vector<std::uint8_t> bitbuf;
  for (const PathEval& ev : all) {
    if (!ev.valid) continue;
    const std::vector<int> sym = linalg::unpermute(ev.symbols, qr_.perm);
    for (std::size_t a = 0; a < nt; ++a) {
      bitbuf.clear();
      constellation_->unmap_bits(sym[a], bitbuf);
      for (int b = 0; b < bits; ++b) {
        auto& slot = best[a][static_cast<std::size_t>(b)][bitbuf[static_cast<std::size_t>(b)]];
        slot = std::min(slot, ev.metric);
      }
    }
  }

  // Max-log LLRs: (min metric with bit=1 - min metric with bit=0) / sigma^2.
  // Bits for which the candidate list contains only one hypothesis get a
  // saturated LLR scaled to the strongest *resolved* evidence of this
  // vector — the standard list-sphere-decoder clipping rule; a fixed large
  // constant would let unresolved bits crush genuine soft information.
  out.llrs.assign(nt, std::vector<double>(static_cast<std::size_t>(bits), 0.0));
  const double inv_noise = 1.0 / std::max(noise_var_, 1e-12);
  double max_resolved = 0.0;
  for (std::size_t a = 0; a < nt; ++a) {
    for (int b = 0; b < bits; ++b) {
      const double m0 = best[a][static_cast<std::size_t>(b)][0];
      const double m1 = best[a][static_cast<std::size_t>(b)][1];
      if (!std::isinf(m0) && !std::isinf(m1)) {
        max_resolved = std::max(max_resolved, std::abs(m1 - m0) * inv_noise);
      }
    }
  }
  const double clip =
      std::min(SoftOutput::kLlrClip, std::max(1.0, 1.2 * max_resolved));
  for (std::size_t a = 0; a < nt; ++a) {
    for (int b = 0; b < bits; ++b) {
      const double m0 = best[a][static_cast<std::size_t>(b)][0];
      const double m1 = best[a][static_cast<std::size_t>(b)][1];
      double llr;
      if (std::isinf(m0) && std::isinf(m1)) {
        llr = 0.0;
      } else if (std::isinf(m1)) {
        llr = clip;
      } else if (std::isinf(m0)) {
        llr = -clip;
      } else {
        llr = std::clamp((m1 - m0) * inv_noise, -SoftOutput::kLlrClip,
                         SoftOutput::kLlrClip);
      }
      out.llrs[a][static_cast<std::size_t>(b)] = llr;
    }
  }
  return out;
}

}  // namespace flexcore::core
