#include "detect/exhaustive.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace flexcore::detect {

DetectionResult exhaustive_ml(const Constellation& c, const CMat& h,
                              const CVec& y, std::uint64_t max_hypotheses) {
  const std::size_t nt = h.cols();
  const std::uint64_t q = static_cast<std::uint64_t>(c.order());
  double total_d = static_cast<double>(nt) * std::log2(static_cast<double>(q));
  if (total_d > 63 ||
      std::pow(static_cast<double>(q), static_cast<double>(nt)) >
          static_cast<double>(max_hypotheses)) {
    throw std::invalid_argument("exhaustive_ml: search space too large");
  }
  const std::uint64_t total =
      static_cast<std::uint64_t>(std::llround(std::pow(static_cast<double>(q),
                                                       static_cast<double>(nt))));

  DetectionResult best;
  best.metric = std::numeric_limits<double>::infinity();
  std::vector<int> sym(nt);
  CVec s(nt);

  for (std::uint64_t code = 0; code < total; ++code) {
    std::uint64_t v = code;
    for (std::size_t i = 0; i < nt; ++i) {
      sym[i] = static_cast<int>(v % q);
      v /= q;
      s[i] = c.point(sym[i]);
    }
    const CVec r = linalg::sub(y, h * s);
    const double m = linalg::norm2(r);
    ++best.stats.nodes_visited;
    if (m < best.metric) {
      best.metric = m;
      best.symbols = sym;
    }
  }
  best.stats.paths_evaluated = total;
  return best;
}

}  // namespace flexcore::detect
