#include "detect/fcsd.h"

#include <array>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "detect/path_grid.h"
#include "parallel/hot_path.h"
#include "parallel/thread_pool.h"

namespace flexcore::detect {

void FcsdDetector::set_channel(const CMat& h, double /*noise_var*/) {
  if (full_levels_ > h.cols()) {
    throw std::invalid_argument("FcsdDetector: full_levels > Nt");
  }
  qr_ = linalg::fcsd_sorted_qr(h, full_levels_);
  const std::size_t nt = qr_.R.cols();
  const int q = constellation_->order();
  rx_.assign(nt, CVec(static_cast<std::size_t>(q)));
  for (std::size_t i = 0; i < nt; ++i) {
    for (int x = 0; x < q; ++x) {
      rx_[i][static_cast<std::size_t>(x)] = qr_.R(i, i) * constellation_->point(x);
    }
  }

  // Compile the block-kernel plan in the configured precision tier.
  if (precision_ == Precision::kInt16) {
    plan16_.compile_fcsd(qr_.R, full_levels_, *constellation_);
    plan64_.clear();
    plan32_.clear();
  } else if (precision_ == Precision::kFloat32) {
    plan32_.compile_fcsd(qr_.R, full_levels_, *constellation_);
    plan64_.clear();
    plan16_.clear();
  } else {
    plan64_.compile_fcsd(qr_.R, full_levels_, *constellation_);
    plan32_.clear();
    plan16_.clear();
  }
}

std::size_t FcsdDetector::num_paths() const {
  std::size_t n = 1;
  for (std::size_t l = 0; l < full_levels_; ++l) {
    n *= static_cast<std::size_t>(constellation_->order());
  }
  return n;
}

FLEXCORE_HOT_PATH
void FcsdDetector::rotate_into(const CVec& y, std::span<cplx> out) const {
  linalg::hermitian_mul_into(qr_.Q, y, out);
}

FcsdDetector::PathEval FcsdDetector::evaluate_path(const CVec& ybar,
                                                   std::size_t path_index) const {
  detect::Workspace ws;
  PathEval ev;
  evaluate_path(ybar, path_index, ws, &ev.metric, &ev.stats);
  ev.symbols = ws.symbols;
  return ev;
}

FLEXCORE_HOT_PATH
void FcsdDetector::evaluate_path(std::span<const cplx> ybar,
                                 std::size_t path_index,
                                 detect::Workspace& ws, double* metric,
                                 DetectionStats* stats) const {
  const CMat& r = qr_.R;
  const std::size_t nt = r.cols();
  const std::size_t q = static_cast<std::size_t>(constellation_->order());

  // flexcore-lint: allow-next-line(HP001) warm per-worker workspace
  ws.symbols.assign(nt, 0);
  // flexcore-lint: allow-next-line(HP001) warm per-worker workspace
  ws.s.assign(nt, cplx{0.0, 0.0});
  *metric = 0.0;
  *stats = DetectionStats{};

  // Decode the fully-expanded level symbols from the path index: digit 0
  // drives the topmost level (detected first).
  std::size_t v = path_index;
  for (std::size_t d = 0; d < full_levels_; ++d) {
    ws.symbols[nt - 1 - d] = static_cast<int>(v % q);
    v /= q;
  }

  for (std::size_t ii = 0; ii < nt; ++ii) {
    const std::size_t i = nt - 1 - ii;
    cplx b = ybar[i];
    for (std::size_t j = i + 1; j < nt; ++j) {
      b -= r(i, j) * ws.s[j];
      stats->real_mults += 4;
      stats->flops += 8;
    }
    int x;
    if (ii < full_levels_) {
      x = ws.symbols[i];  // enumerated level
    } else {
      // Greedy single-child extension: nearest constellation point.
      x = constellation_->slice(b / r(i, i));
      stats->real_mults += 4;  // complex-by-real-reciprocal divide
      stats->flops += 8;
    }
    ws.symbols[i] = x;
    ws.s[i] = constellation_->point(x);
    *metric += linalg::abs2(b - rx_[i][static_cast<std::size_t>(x)]);
    stats->real_mults += 2;
    stats->flops += 5;
    ++stats->nodes_visited;
  }
}

bool FcsdDetector::reconstruct_winner(std::span<const cplx> ybar,
                                      std::size_t best_path,
                                      double /*best_metric*/,
                                      detect::Workspace& ws,
                                      DetectionResult* res) const {
  evaluate_path(ybar, best_path, ws, &res->metric, &res->stats);
  linalg::unpermute_into(ws.symbols, qr_.perm, &res->symbols);
  res->stats.paths_evaluated = num_paths();
  return false;
}

FLEXCORE_HOT_PATH
double FcsdDetector::path_metric(std::span<const cplx> ybar,
                                 std::size_t path_index) const {
  const CMat& r = qr_.R;
  const std::size_t nt = r.cols();
  assert(nt <= 32);
  const std::size_t q = static_cast<std::size_t>(constellation_->order());

  std::array<int, 32> top;
  std::size_t v = path_index;
  for (std::size_t d = 0; d < full_levels_; ++d) {
    top[d] = static_cast<int>(v % q);
    v /= q;
  }

  std::array<cplx, 32> s;
  double metric = 0.0;
  for (std::size_t ii = 0; ii < nt; ++ii) {
    const std::size_t i = nt - 1 - ii;
    cplx b = ybar[i];
    for (std::size_t j = i + 1; j < nt; ++j) b -= r(i, j) * s[j];
    const int x = (ii < full_levels_)
                      ? top[ii]
                      : constellation_->slice(b / r(i, i));
    s[i] = constellation_->point(x);
    metric += linalg::abs2(b - rx_[i][static_cast<std::size_t>(x)]);
  }
  return metric;
}

DetectionResult FcsdDetector::detect(const CVec& y) const {
  const CVec ybar = rotate(y);
  const std::size_t paths = num_paths();

  DetectionResult res;
  res.metric = std::numeric_limits<double>::infinity();
  for (std::size_t p = 0; p < paths; ++p) {
    PathEval ev = evaluate_path(ybar, p);
    res.stats += ev.stats;
    if (ev.metric < res.metric) {
      res.metric = ev.metric;
      res.symbols = std::move(ev.symbols);
    }
  }
  res.symbols = linalg::unpermute(res.symbols, qr_.perm);
  res.stats.paths_evaluated = paths;
  return res;
}

void FcsdDetector::detect_batch(std::span<const CVec> ys,
                                BatchResult* out) const {
  const std::size_t paths = num_paths();
  if (pool_ == nullptr || paths == 0 || ys.empty()) {
    Detector::detect_batch(ys, out);
    return;
  }
  const std::size_t nv = ys.size();
  run_path_grid(*this, paths, ys, qr_.R.cols(), *pool_, &grid_);

  out->results.assign(nv, DetectionResult{});
  out->stats = DetectionStats{};
  out->sic_fallbacks = 0;  // every FCSD path is always valid
  out->tasks = grid_.tasks;
  out->elapsed_seconds = grid_.elapsed_seconds;

  // Winner reconstruction: one instrumented path walk per vector (the grid
  // itself runs the metric-only block kernel).
  workspaces_.ensure(pool_->size());
  pool_->parallel_for_worker(nv, [&](std::size_t w, std::size_t v) {
    reconstruct_winner(grid_.ybar(v), grid_.best_path[v], grid_.best_metric[v],
                       workspaces_.at(w), &out->results[v]);
  });
  for (const DetectionResult& res : out->results) out->stats += res.stats;
}

}  // namespace flexcore::detect
