#include "detect/linear.h"

#include "linalg/solve.h"

namespace flexcore::detect {

void LinearDetector::set_channel(const CMat& h, double noise_var) {
  h_ = h;
  w_ = (kind_ == LinearKind::kZeroForcing) ? linalg::zf_filter(h)
                                           : linalg::mmse_filter(h, noise_var);
}

DetectionResult LinearDetector::detect(const CVec& y) const {
  const CVec x = w_ * y;
  DetectionResult res;
  res.symbols.resize(x.size());
  CVec s_hat(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    res.symbols[i] = constellation_->slice(x[i]);
    s_hat[i] = constellation_->point(res.symbols[i]);
  }
  // Report the true residual so linear results are comparable with
  // tree-search metrics.
  const CVec r = linalg::sub(y, h_ * s_hat);
  res.metric = linalg::norm2(r);
  res.stats.paths_evaluated = 1;
  // Filter multiply: Nr*Nt complex mults.
  res.stats.real_mults = 4 * w_.rows() * w_.cols();
  res.stats.flops = 8 * w_.rows() * w_.cols();
  return res;
}

}  // namespace flexcore::detect
