// Trellis / add-compare-select parallel detector of Wu et al. [50].
//
// Views the detection tree as a trellis with |Q| states per level (one per
// constellation point) and keeps one survivor path per state, extending all
// survivors level by level.  One processing element per constellation point
// computes each state's metric, so the PE count is FIXED at |Q| — the
// inflexibility the paper contrasts with FlexCore in Fig. 9 ("[50] ...
// requires a fixed number of processing elements, equal to the QAM
// constellation's size").
#pragma once

#include "detect/detector.h"
#include "linalg/qr.h"

namespace flexcore::detect {

class TrellisDetector : public Detector {
 public:
  explicit TrellisDetector(const Constellation& c) : constellation_(&c) {}

  void set_channel(const CMat& h, double noise_var) override;
  DetectionResult detect(const CVec& y) const override;
  std::string name() const override { return "trellis50"; }
  std::size_t parallel_tasks() const override {
    return static_cast<std::size_t>(constellation_->order());
  }

 private:
  const Constellation* constellation_;
  linalg::QrResult qr_;
  std::vector<CVec> rx_;
};

}  // namespace flexcore::detect
