#include "detect/trellis.h"

#include <limits>

namespace flexcore::detect {

void TrellisDetector::set_channel(const CMat& h, double /*noise_var*/) {
  qr_ = linalg::sorted_qr_wubben(h);
  const std::size_t nt = qr_.R.cols();
  const int q = constellation_->order();
  rx_.assign(nt, CVec(static_cast<std::size_t>(q)));
  for (std::size_t i = 0; i < nt; ++i) {
    for (int x = 0; x < q; ++x) {
      rx_[i][static_cast<std::size_t>(x)] = qr_.R(i, i) * constellation_->point(x);
    }
  }
}

DetectionResult TrellisDetector::detect(const CVec& y) const {
  const CMat& r = qr_.R;
  const std::size_t nt = r.cols();
  const std::size_t q = static_cast<std::size_t>(constellation_->order());
  const CVec ybar = qr_.Q.hermitian() * y;

  struct Survivor {
    double metric;
    std::vector<int> path;  // path[j] = symbol at level j (array index)
  };

  DetectionStats stats;
  constexpr double inf = std::numeric_limits<double>::infinity();

  // Top level: one survivor per state, metric of its own symbol.
  std::vector<Survivor> cur(q);
  {
    const std::size_t i = nt - 1;
    for (std::size_t x = 0; x < q; ++x) {
      cur[x].metric = linalg::abs2(ybar[i] - rx_[i][x]);
      cur[x].path.assign(nt, 0);
      cur[x].path[i] = static_cast<int>(x);
    }
    stats.real_mults += 2 * q;
    stats.flops += 5 * q;
    stats.nodes_visited += q;
  }

  std::vector<Survivor> next(q);
  std::vector<cplx> b(q);  // interference-cancelled obs per predecessor

  for (std::size_t ii = 1; ii < nt; ++ii) {
    const std::size_t i = nt - 1 - ii;
    // Per-predecessor interference cancellation, shared across new states.
    for (std::size_t p = 0; p < q; ++p) {
      cplx bp = ybar[i];
      for (std::size_t j = i + 1; j < nt; ++j) {
        bp -= r(i, j) * constellation_->point(cur[p].path[j]);
        stats.real_mults += 4;
        stats.flops += 8;
      }
      b[p] = bp;
    }
    // Add-compare-select: each new state picks its best predecessor.
    for (std::size_t x = 0; x < q; ++x) {
      double best = inf;
      std::size_t best_p = 0;
      for (std::size_t p = 0; p < q; ++p) {
        const double m = cur[p].metric + linalg::abs2(b[p] - rx_[i][x]);
        if (m < best) {
          best = m;
          best_p = p;
        }
      }
      stats.real_mults += 2 * q;
      stats.flops += 5 * q;
      next[x].metric = best;
      next[x].path = cur[best_p].path;
      next[x].path[i] = static_cast<int>(x);
      ++stats.nodes_visited;
    }
    cur.swap(next);
  }

  std::size_t winner = 0;
  for (std::size_t x = 1; x < q; ++x) {
    if (cur[x].metric < cur[winner].metric) winner = x;
  }

  DetectionResult res;
  res.symbols = linalg::unpermute(cur[winner].path, qr_.perm);
  res.metric = cur[winner].metric;
  res.stats = stats;
  res.stats.paths_evaluated = q;
  return res;
}

}  // namespace flexcore::detect
