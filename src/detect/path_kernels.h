// The lane-parallel path-kernel engine: compiled PathPlans and the
// path_metric_block kernel behind the detection grids.
//
// FlexCore's premise (paper §4) is that detection decomposes into thousands
// of tiny identical per-path programs a massively parallel substrate runs
// in lockstep.  The scalar CPU port kept each path as branchy
// std::complex<double> code; this engine maps the paper's SIMT grid onto
// CPU SIMD lanes instead:
//
//  * At preprocessing time (set_channel) the detector COMPILES its path set
//    into a PathPlan: per-level symbol selectors laid out path-major-blocked
//    (blocks of kLanes paths, selectors of one level contiguous across the
//    block's lanes), the channel state (R rows, 1/R(i,i), the R(i,i)*point
//    reconstruction table, the constellation points) split into re/im
//    structure-of-arrays, and the triangle LUT expanded into all 8 dihedral
//    transforms so the per-level lookup is table-walk + bounds check, no
//    reflection branches.
//  * path_metric_block(ybar, first, n, out) then evaluates a whole block of
//    paths per call: lane = path, the per-level interference-cancellation
//    loop written as branch-light split real/imag arithmetic the
//    auto-vectorizer turns into SIMD, with scalar gathers only for the
//    data-dependent k-th-symbol lookups.
//
// The plan is templated on the compute scalar: PathPlan (double) is
// bit-identical to the detector's scalar path_metric — same operations in
// the same order on the same values, verified by tests/kernel_test.cpp —
// while PathPlanF (float) is the reduced-precision tier in the spirit of
// the paper's fixed-point FPGA datapath (selected by Precision::kFloat32 /
// the ":fp32" registry spec suffix; see README "Kernel engine & precision
// tiers" for when it is safe).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/ordering_lut.h"
#include "core/preprocessing.h"
#include "linalg/matrix.h"
#include "linalg/simd.h"
#include "modulation/constellation.h"

namespace flexcore::detect {

/// Compute tier of the path kernels (and anything else that grows a
/// reduced-precision variant).  kFloat64 is the exact tier; kFloat32
/// evaluates the path grid in single precision — winner reconstruction and
/// everything outside the grid stays double.
enum class Precision {
  kFloat64,
  kFloat32,
};

/// Registry spec suffix of a tier ("" for fp64, ":fp32" for fp32), the
/// grammar api::make_detector parses and Detector::name round-trips.
constexpr const char* precision_suffix(Precision p) noexcept {
  return p == Precision::kFloat32 ? ":fp32" : "";
}

/// A compiled, SoA-blocked path set for one installed channel.  Compile
/// once per set_channel (cheap next to QR + path selection), evaluate with
/// path_metric_block from any thread — the plan is immutable after
/// compilation and evaluation touches only stack scratch.
template <typename T>
class PathPlanT {
 public:
  /// Paths per block (lanes per path_metric_block call).
  static constexpr std::size_t kLanes = linalg::kSimdLanes;
  /// Tree-depth cap shared with the scalar kernels (Nt <= 32).
  static constexpr std::size_t kMaxLevels = 32;

  /// Compiles a FlexCore path set: `paths[p].p[i]` is the 1-based closeness
  /// rank at level i.  `exact_ordering` selects the exhaustive-sort
  /// ablation instead of the triangle LUT; `policy` is the detector's
  /// invalid-entry policy (kDeactivate compiles to the branch-light
  /// transformed-LUT fast path, kSkipToValid falls back to per-lane
  /// OrderingLut calls).  `lut` must outlive the plan.
  void compile_flexcore(const linalg::CMat& r,
                        std::span<const core::RankedPath> paths,
                        const modulation::Constellation& c,
                        const core::OrderingLut& lut, bool exact_ordering,
                        core::InvalidEntryPolicy policy);

  /// Compiles the FCSD path set: |Q|^full_levels paths whose base-|Q|
  /// digits enumerate the top levels (decoded on the fly — the selector
  /// table would dwarf the channel state for L = 2) and whose remaining
  /// levels extend greedily by nearest-point slicing.
  void compile_fcsd(const linalg::CMat& r, std::size_t full_levels,
                    const modulation::Constellation& c);

  void clear() { nt_ = num_paths_ = 0; }
  bool compiled() const noexcept { return nt_ != 0; }
  std::size_t num_paths() const noexcept { return num_paths_; }
  std::size_t levels() const noexcept { return nt_; }

  /// Evaluates paths [first_path, first_path + n_paths) against the rotated
  /// vector `ybar` (length levels()), writing one Euclidean metric per path
  /// to `out` (+infinity for deactivated paths).  Equals the detector's
  /// scalar path_metric per path — bitwise for T = double.  Whole blocks
  /// are evaluated internally, so aligning first_path to kLanes avoids
  /// wasted lanes; any alignment is correct.
  void path_metric_block(std::span<const linalg::cplx> ybar,
                         std::size_t first_path, std::size_t n_paths,
                         double* out) const;

 private:
  enum class Mode : std::uint8_t {
    kLutRank,      ///< FlexCore, triangle LUT, kDeactivate (fast path)
    kGenericRank,  ///< FlexCore, triangle LUT, kSkipToValid (per-lane calls)
    kExactRank,    ///< FlexCore, exhaustive per-level sort (ablation)
    kFcsd,         ///< FCSD digit enumeration + greedy slicing
  };

  void compile_channel(const linalg::CMat& r,
                       const modulation::Constellation& c,
                       bool with_diag_inverse);
  void eval_block(const linalg::cplx* ybar, std::size_t block,
                  double out[kLanes]) const;

  Mode mode_ = Mode::kLutRank;
  std::size_t nt_ = 0;         ///< levels (0 = not compiled)
  std::size_t num_paths_ = 0;  ///< paths the plan covers
  int q_ = 0;                  ///< constellation order
  int side_ = 0;               ///< sqrt(order)
  double scale_ = 0.0;         ///< constellation PAM half-step
  double inv_scale_ = 0.0;     ///< Constellation::inv_scale() (slicer)

  // Channel state, split re/im.  R rows are stored dense row-major (only
  // the upper triangle is read); rdi is 1/R(i,i); rx[i*q + x] is
  // R(i,i) * point(x); pt is the constellation point table.
  linalg::SplitVec<T> r_, rdi_, rx_, pt_;

  // FlexCore selector table, path-major-blocked:
  //   ranks_[(block * nt_ + level) * kLanes + lane]
  // is the 1-based closeness rank of path block*kLanes+lane at `level`
  // (tail lanes of the last block hold rank 1 and are never emitted).
  std::vector<std::int32_t> ranks_;
  // all_rank_one_[block * nt_ + level]: every lane of the block selects
  // rank 1 there, so the k-th-symbol lookup reduces to the slicer center
  // (see compile_flexcore).
  std::vector<std::uint8_t> all_rank_one_;

  // Expanded triangle LUT: entry [t * q + (k-1)] is base-order entry k
  // under dihedral transform t = swap*4 | flip_u*2 | flip_v.
  std::vector<std::int8_t> lut_di_, lut_dq_;

  // FCSD digit decode: powq_[d] = |Q|^d for the enumerated levels.
  std::size_t full_levels_ = 0;
  std::vector<std::size_t> powq_;

  const modulation::Constellation* c_ = nullptr;  ///< slice / exact order
  const core::OrderingLut* lut_ = nullptr;        ///< kGenericRank fallback
  core::InvalidEntryPolicy policy_ = core::InvalidEntryPolicy::kDeactivate;
};

/// The exact tier (bit-identical to the scalar kernels).
using PathPlan = PathPlanT<double>;
/// The reduced-precision tier (paper's fixed-point datapath analogue).
using PathPlanF = PathPlanT<float>;

extern template class PathPlanT<double>;
extern template class PathPlanT<float>;

}  // namespace flexcore::detect
