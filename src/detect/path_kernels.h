// The lane-parallel path-kernel engine: compiled PathPlans and the
// path_metric_block kernel behind the detection grids.
//
// FlexCore's premise (paper §4) is that detection decomposes into thousands
// of tiny identical per-path programs a massively parallel substrate runs
// in lockstep.  The scalar CPU port kept each path as branchy
// std::complex<double> code; this engine maps the paper's SIMT grid onto
// CPU SIMD lanes instead:
//
//  * At preprocessing time (set_channel) the detector COMPILES its path set
//    into a PathPlan: per-level symbol selectors laid out path-major-blocked
//    (blocks of kLanes paths, selectors of one level contiguous across the
//    block's lanes), the channel state (R rows, 1/R(i,i), the R(i,i)*point
//    reconstruction table, the constellation points) split into re/im
//    structure-of-arrays, and the triangle LUT expanded into all 8 dihedral
//    transforms so the per-level lookup is table-walk + bounds check, no
//    reflection branches.
//  * path_metric_block(ybar, first, n, out) then evaluates a whole block of
//    paths per call: lane = path, the per-level interference-cancellation
//    loop written as branch-light split real/imag arithmetic the
//    auto-vectorizer turns into SIMD, with scalar gathers only for the
//    data-dependent k-th-symbol lookups.
//
// The plan is templated on the compute scalar: PathPlan (double) is
// bit-identical to the detector's scalar path_metric — same operations in
// the same order on the same values, verified by tests/kernel_test.cpp —
// while PathPlanF (float) is the reduced-precision tier in the spirit of
// the paper's fixed-point FPGA datapath (selected by Precision::kFloat32 /
// the ":fp32" registry spec suffix; see README "Kernel engine & precision
// tiers" for when it is safe).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/ordering_lut.h"
#include "core/preprocessing.h"
#include "linalg/matrix.h"
#include "linalg/simd.h"
#include "modulation/constellation.h"

namespace flexcore::detect {

/// Compute tier of the path kernels (and anything else that grows a
/// reduced-precision variant).  kFloat64 is the exact tier; kFloat32
/// evaluates the path grid in single precision; kInt16 runs the quantized
/// fixed-point tier (PathPlanI16) — winner reconstruction and everything
/// outside the grid stays double in every tier.
enum class Precision {
  kFloat64,
  kFloat32,
  kInt16,
};

/// Registry spec suffix of a tier ("" for fp64, ":fp32" for fp32, ":i16"
/// for the quantized tier), the grammar api::make_detector parses and
/// Detector::name round-trips.
constexpr const char* precision_suffix(Precision p) noexcept {
  return p == Precision::kFloat32  ? ":fp32"
         : p == Precision::kInt16  ? ":i16"
                                   : "";
}

/// Documented accuracy gate of the ":i16" tier: measured 64-QAM SER of the
/// quantized grid may exceed the fp64 grid's SER by at most this, absolute,
/// on the standard sweeps (the fp32 analogue is 5e-3).  Enforced by
/// tests/kernel_test.cpp, bench/ablation_fixed_point.cpp and
/// bench/fig17_kernel_engine.cpp; the control plane's degrade ladder
/// assumes this bound when it sheds to ":i16" under load.
inline constexpr double kI16SerTolerance = 1e-2;

/// A compiled, SoA-blocked path set for one installed channel.  Compile
/// once per set_channel (cheap next to QR + path selection), evaluate with
/// path_metric_block from any thread — the plan is immutable after
/// compilation and evaluation touches only stack scratch.
template <typename T>
class PathPlanT {
 public:
  /// Paths per block (lanes per path_metric_block call).
  static constexpr std::size_t kLanes = linalg::kSimdLanes;
  /// Tree-depth cap shared with the scalar kernels (Nt <= 32).
  static constexpr std::size_t kMaxLevels = 32;

  /// Compiles a FlexCore path set: `paths[p].p[i]` is the 1-based closeness
  /// rank at level i.  `exact_ordering` selects the exhaustive-sort
  /// ablation instead of the triangle LUT; `policy` is the detector's
  /// invalid-entry policy (kDeactivate compiles to the branch-light
  /// transformed-LUT fast path, kSkipToValid falls back to per-lane
  /// OrderingLut calls).  `lut` must outlive the plan.
  void compile_flexcore(const linalg::CMat& r,
                        std::span<const core::RankedPath> paths,
                        const modulation::Constellation& c,
                        const core::OrderingLut& lut, bool exact_ordering,
                        core::InvalidEntryPolicy policy);

  /// Compiles the FCSD path set: |Q|^full_levels paths whose base-|Q|
  /// digits enumerate the top levels (decoded on the fly — the selector
  /// table would dwarf the channel state for L = 2) and whose remaining
  /// levels extend greedily by nearest-point slicing.
  void compile_fcsd(const linalg::CMat& r, std::size_t full_levels,
                    const modulation::Constellation& c);

  void clear() { nt_ = num_paths_ = 0; }
  bool compiled() const noexcept { return nt_ != 0; }
  std::size_t num_paths() const noexcept { return num_paths_; }
  std::size_t levels() const noexcept { return nt_; }

  /// Evaluates paths [first_path, first_path + n_paths) against the rotated
  /// vector `ybar` (length levels()), writing one Euclidean metric per path
  /// to `out` (+infinity for deactivated paths).  Equals the detector's
  /// scalar path_metric per path — bitwise for T = double.  Whole blocks
  /// are evaluated internally, so aligning first_path to kLanes avoids
  /// wasted lanes; any alignment is correct.
  void path_metric_block(std::span<const linalg::cplx> ybar,
                         std::size_t first_path, std::size_t n_paths,
                         double* out) const;

  /// Heap bytes of the compiled plan (channel state + selector tables) —
  /// the footprint the precision tiers halve step by step; reported by
  /// bench/micro_kernels.cpp.
  std::size_t footprint_bytes() const noexcept;

 private:
  enum class Mode : std::uint8_t {
    kLutRank,      ///< FlexCore, triangle LUT, kDeactivate (fast path)
    kGenericRank,  ///< FlexCore, triangle LUT, kSkipToValid (per-lane calls)
    kExactRank,    ///< FlexCore, exhaustive per-level sort (ablation)
    kFcsd,         ///< FCSD digit enumeration + greedy slicing
  };

  void compile_channel(const linalg::CMat& r,
                       const modulation::Constellation& c,
                       bool with_diag_inverse);
  void eval_block(const linalg::cplx* ybar, std::size_t block,
                  double out[kLanes]) const;

  Mode mode_ = Mode::kLutRank;
  std::size_t nt_ = 0;         ///< levels (0 = not compiled)
  std::size_t num_paths_ = 0;  ///< paths the plan covers
  int q_ = 0;                  ///< constellation order
  int side_ = 0;               ///< sqrt(order)
  double scale_ = 0.0;         ///< constellation PAM half-step
  double inv_scale_ = 0.0;     ///< Constellation::inv_scale() (slicer)

  // Channel state, split re/im.  R rows are stored dense row-major (only
  // the upper triangle is read); rdi is 1/R(i,i); rx[i*q + x] is
  // R(i,i) * point(x); pt is the constellation point table.
  linalg::SplitVec<T> r_, rdi_, rx_, pt_;

  // FlexCore selector table, path-major-blocked:
  //   ranks_[(block * nt_ + level) * kLanes + lane]
  // is the 1-based closeness rank of path block*kLanes+lane at `level`
  // (tail lanes of the last block hold rank 1 and are never emitted).
  std::vector<std::int32_t> ranks_;
  // all_rank_one_[block * nt_ + level]: every lane of the block selects
  // rank 1 there, so the k-th-symbol lookup reduces to the slicer center
  // (see compile_flexcore).
  std::vector<std::uint8_t> all_rank_one_;

  // Expanded triangle LUT: entry [t * q + (k-1)] is base-order entry k
  // under dihedral transform t = swap*4 | flip_u*2 | flip_v.
  std::vector<std::int8_t> lut_di_, lut_dq_;

  // FCSD digit decode: powq_[d] = |Q|^d for the enumerated levels.
  std::size_t full_levels_ = 0;
  std::vector<std::size_t> powq_;

  const modulation::Constellation* c_ = nullptr;  ///< slice / exact order
  const core::OrderingLut* lut_ = nullptr;        ///< kGenericRank fallback
  core::InvalidEntryPolicy policy_ = core::InvalidEntryPolicy::kDeactivate;
};

/// The exact tier (bit-identical to the scalar kernels).
using PathPlan = PathPlanT<double>;
/// The reduced-precision tier (paper's fixed-point datapath analogue).
using PathPlanF = PathPlanT<float>;

extern template class PathPlanT<double>;
extern template class PathPlanT<float>;

/// The quantized tier (":i16"): the paper's 16-bit FPGA datapath (§5.3,
/// Table 3) mapped onto CPU SIMD.  Same compile/evaluate contract as
/// PathPlanT, different number format:
///
///  * Channel state is stored as int16 SoA (R rows, R(i,i)*point tables,
///    constellation points) under per-plan scale factors computed at
///    compile (set_channel) time — power-of-two scales chosen so the whole
///    interference-cancellation recurrence is overflow-free in int32 and
///    the fractional resolution never exceeds the shared Q-format
///    (perfmodel::I16Format, Q4.11).  Halving the element width halves the
///    plan footprint and doubles the lanes per SIMD register vs fp32, so
///    blocks are kLanes = 16 paths wide.
///  * The per-level walk runs in 32-bit integer lanes: b accumulates exact
///    int32 products of int16 values, the effective point is an int32
///    product against the quantized 1/R(i,i), and the Euclidean metric
///    accumulates saturating in uint32.
///  * Slicing is LUT-compiled: compile() precomputes one 256-entry int8
///    slicer table per (plan, level) covering the reachable effective-point
///    range, so the runtime rounded-center divide/compare chain collapses
///    to shift + clamp + table index (out-of-coverage buckets hold a
///    sentinel that deactivates the lane / clamps the greedy FCSD slice).
///
/// Metrics are returned as doubles (raw accumulator * 2^-2F), so the grid
/// min-reduction and winner reconstruction are unchanged.  The tier is
/// integer end-to-end, hence bit-identical across ISAs and build flags —
/// accuracy vs fp64 is bounded by kI16SerTolerance, not bit-identity.
class PathPlanI16 {
 public:
  /// Paths per block: twice the fp tier (int32 accumulator lanes).
  static constexpr std::size_t kLanes = linalg::kSimdLanesI16;
  static constexpr std::size_t kMaxLevels = PathPlan::kMaxLevels;
  /// Entries per compiled per-level slicer table.
  static constexpr std::size_t kSlicerBuckets = 256;
  /// Slicer-table sentinel: effective point outside the table's coverage
  /// (deactivates the lane in FlexCore modes; clamps in FCSD greedy mode).
  static constexpr std::int8_t kSlicerInvalid =
      std::numeric_limits<std::int8_t>::min();
  /// Extended axis-index pad kept around the constellation in the slicer /
  /// PAM residual tables (LUT offsets reach at most a couple of steps
  /// outside before the bounds check kills the lane).
  static constexpr int kPamPad = 4;

  /// Same contracts as PathPlanT::compile_flexcore / compile_fcsd.
  void compile_flexcore(const linalg::CMat& r,
                        std::span<const core::RankedPath> paths,
                        const modulation::Constellation& c,
                        const core::OrderingLut& lut, bool exact_ordering,
                        core::InvalidEntryPolicy policy);
  void compile_fcsd(const linalg::CMat& r, std::size_t full_levels,
                    const modulation::Constellation& c);

  void clear() { nt_ = num_paths_ = 0; }
  bool compiled() const noexcept { return nt_ != 0; }
  std::size_t num_paths() const noexcept { return num_paths_; }
  std::size_t levels() const noexcept { return nt_; }

  /// Same contract as PathPlanT::path_metric_block; metrics are the
  /// quantized grid's distances (double-valued, +infinity for deactivated
  /// paths), suitable for the same min-reduction.
  void path_metric_block(std::span<const linalg::cplx> ybar,
                         std::size_t first_path, std::size_t n_paths,
                         double* out) const;

  /// Heap bytes of the compiled plan (the footprint the tier halves).
  std::size_t footprint_bytes() const noexcept;

  // --- quantization introspection (tests / benches) ----------------------
  /// Fractional bits of the channel scale 2^F (R rows, rx tables, b).
  /// Capped at perfmodel's shared Q-format resolution.
  int frac_bits() const noexcept { return fbits_; }
  /// Fractional bits of the constellation-point scale 2^P.
  int point_bits() const noexcept { return pbits_; }
  /// Per-level fractional bits of the quantized 1/R(i,i).
  int rdi_bits(std::size_t level) const { return gbits_[level]; }
  /// Runs the compiled slicer table of `level` on an effective-point
  /// coordinate (value domain): the unclamped axis index the kernel would
  /// pick, or kSlicerInvalid when `eff` falls outside the table coverage.
  /// Exposed so tests can check golden patterns against hand-computed
  /// slices.
  int slicer_center(std::size_t level, double eff) const;

 private:
  enum class Mode : std::uint8_t { kLutRank, kGenericRank, kExactRank, kFcsd };

  void compile_channel(const linalg::CMat& r,
                       const modulation::Constellation& c,
                       bool with_diag_inverse);

  Mode mode_ = Mode::kLutRank;
  std::size_t nt_ = 0;
  std::size_t num_paths_ = 0;
  int q_ = 0;
  int side_ = 0;
  double scale_ = 0.0;
  double inv_scale_ = 0.0;

  // Per-plan quantization state.  fbits_ (F): channel scale, R rows / rx
  // tables / the cancellation accumulator b are value * 2^F; pbits_ (P):
  // point scale; ybar is quantized per call at 2^(F+P) so the j-loop's
  // int16*int16 products land on ybar's scale with no runtime shift.
  int fbits_ = 0;
  int pbits_ = 0;
  /// Quantized PAM half-step at 2^P: pt[a_re, a_im] = ((2 a_re -
  /// (side-1)) h, ...) exactly — the kernel's hot mode rebuilds recurrence
  /// symbols from sliced axis indices with this identity instead of
  /// gathering the table (keeps the decision-feedback chain in registers).
  std::int32_t pt_half_q_ = 0;
  double metric_unscale_ = 0.0;  ///< 2^-2F: raw uint32 metric -> double
  /// Saturation bound of the per-call ybar quantization (raw units at
  /// 2^(F+P)); part of the compile-time proof that the int32 recurrence
  /// cannot overflow.
  double ybar_cap_raw_ = 0.0;

  // Quantized R rows, split re/im, int16 raw values (see class comment).
  linalg::SplitVec<std::int16_t> r_q_;

  /// Per-level quantized complex row step rh = R(i,i) * scale * 2^F: the
  /// rx table is exactly affine in the doubled axis offsets with this
  /// step, which the kernel's hot mode exploits to rebuild the metric
  /// reference from sliced axis indices instead of gathering the row.
  std::vector<std::int32_t> rh_re_q_, rh_im_q_;

  // The quantized rx[i][x] = R(i,i)*point(x) and point tables, stored ONLY
  // packed: one int32 per symbol holding the (re, im) int16 pair (re low,
  // im high), so the table modes' decided-point gather is a single read
  // per lane per table and the unpack is two vector shifts.  The hot mode
  // never reads them (it rebuilds both values from rh / pt_half_q_).
  std::vector<std::int32_t> rx_pack_, pt_pack_;

  // Quantized 1/R(i,i): raw int16 pair at per-level scale 2^gbits_[i]
  // (a non-finite inverse — rank-deficient channel — compiles to raw 0,
  // which drives every slice out of coverage and deactivates the lane,
  // mirroring the fp tiers' NaN clamp).
  std::vector<std::int16_t> rdi_re_q_, rdi_im_q_;
  std::vector<int> gbits_;

  // LUT-compiled slicer, per level: bucket = (eff_raw >> shift) + 128,
  // clamped to [0, 255]; the int8 entry is the unclamped center axis index
  // or kSlicerInvalid.  eff_raw is at scale 2^(F + gbits_[level]).
  std::vector<int> slicer_shift_;
  std::vector<std::int8_t> slicer_;  // nt_ * kSlicerBuckets

  // Affine form of the compiled slicer with the complex 1/R(i,i) rotation
  // folded in, for the lane-vector rank-1 fast path: straight from the
  // int16-clamped cancellation value b, with no eff computation and no
  // table gather,
  //   ci = (b_re * slice_ar_[i] - b_im * slice_ai_[i] + slice_off_[i])
  //        >> slice_s_[i]
  //   cq = (b_re * slice_ai_[i] + b_im * slice_ar_[i] + slice_off_[i])
  //        >> slice_s_[i]
  // — the rounded-center rule as four multiplies and two shifts per lane
  // block.  ar/ai quantize Re/Im(1/R(i,i)) * inv_scale/2 / 2^F at 2^s with
  // |ar|, |ai| <= 2^13, so |b * a| sums below 2^30 and the chain cannot
  // wrap (b is int16-clamped); slice_off_ = side * 2^(s-1) folds the
  // (side-1)/2 center offset and the round-half-up bias into the final
  // arithmetic shift.  slice_live_[i] is 0 on rank-deficient (or
  // absurdly ill-scaled) levels — the vector path's equivalent of the
  // all-sentinel table (every lane dies at that level).
  std::vector<std::int32_t> slice_ar_, slice_ai_, slice_off_, slice_s_;
  std::vector<std::uint8_t> slice_live_;

  // PAM residual tables for the triangle classification, per level at the
  // eff_raw scale, over the padded axis range [-kPamPad, side + kPamPad]:
  // pam_q_[level * pam_span_ + (a + kPamPad)] ~= pam_level(a) * 2^(F+G_i),
  // saturated to +-2^30 (saturated entries are unreachable: eff_raw itself
  // is bounded by 2*kMax^2).
  std::vector<std::int32_t> pam_q_;
  int pam_span_ = 0;

  // FlexCore selector table, path-major-blocked exactly like PathPlanT but
  // kLanes = 16 wide and int16 entries (ranks <= 256).
  std::vector<std::int16_t> ranks_;
  // fix_mask_[block * nt_ + level]: bit l set when lane l must take the
  // scalar table path at that level (rank > 1, or a LUT whose first entry
  // is not the slicer center).  The finer per-LANE grain — versus
  // PathPlanT's per-block all_rank_one_ — matters at kLanes = 16: one
  // rank-2 path no longer drags fifteen rank-1 neighbours off the vector
  // fast path.
  std::vector<std::uint32_t> fix_mask_;
  std::vector<std::int8_t> lut_di_, lut_dq_;

  std::size_t full_levels_ = 0;
  std::vector<std::size_t> powq_;

  const modulation::Constellation* c_ = nullptr;
  const core::OrderingLut* lut_ = nullptr;
  core::InvalidEntryPolicy policy_ = core::InvalidEntryPolicy::kDeactivate;
};

}  // namespace flexcore::detect
