// Depth-first maximum-likelihood sphere decoder (Geosphere-class baseline).
//
// Transforms the ML problem argmin ||ybar - R s||^2 into a tree search
// (paper §2) and explores it depth-first with Schnorr-Euchner child ordering
// and radius pruning, which guarantees the exact ML solution.  This is the
// "ML" / "Geosphere" reference curve of Figs. 9 and 10, and the detector
// whose instrumented FLOP counts reproduce Table 1.
#pragma once

#include "detect/detector.h"
#include "linalg/qr.h"

namespace flexcore::detect {

class MlSphereDecoder : public Detector {
 public:
  struct Options {
    /// Stop after visiting this many tree nodes (0 = search to completion).
    /// When truncated the decoder returns the best leaf found so far, so the
    /// result is no longer guaranteed ML.
    std::uint64_t max_nodes = 0;
    /// Use the Wübben sorted QR (recommended; dramatically fewer nodes).
    bool use_sorted_qr = true;
  };

  explicit MlSphereDecoder(const Constellation& c)
      : constellation_(&c), opt_(Options()) {}
  MlSphereDecoder(const Constellation& c, Options opt)
      : constellation_(&c), opt_(opt) {}

  void set_channel(const CMat& h, double noise_var) override;
  DetectionResult detect(const CVec& y) const override;
  std::string name() const override { return "ml-sd"; }

 private:
  struct SearchState;
  void search(SearchState& st, std::size_t level, double ped) const;

  const Constellation* constellation_;
  Options opt_;
  linalg::QrResult qr_;
  // rx_[i][x] = R(i,i) * constellation point x, precomputed per channel.
  std::vector<CVec> rx_;
};

}  // namespace flexcore::detect
