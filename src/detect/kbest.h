// K-best breadth-first sphere decoder (related-work baseline, §6).
//
// Keeps the K lowest-PED partial paths at every tree level.  Included to
// quantify the paper's claim that K-best needs large K (hence heavy sorting)
// for dense constellations and large arrays, while FlexCore selects paths
// a-priori per channel instead.
#pragma once

#include "detect/detector.h"
#include "detect/workspace.h"
#include "linalg/qr.h"

namespace flexcore::detect {

class KBestDetector : public Detector {
 public:
  KBestDetector(const Constellation& c, std::size_t k)
      : constellation_(&c), k_(k) {}

  void set_channel(const CMat& h, double noise_var) override;
  DetectionResult detect(const CVec& y) const override;

  /// Sequential loop like the base class, but threading ONE workspace
  /// through the whole batch so the survivor/candidate lists are not
  /// reallocated per vector.
  void detect_batch(std::span<const CVec> ys, BatchResult* out) const override;

  std::string name() const override { return "kbest-" + std::to_string(k_); }
  std::size_t parallel_tasks() const override { return k_; }

  /// Buffer-reusing core of detect(): the per-level survivor/candidate
  /// lists live as flat arrays in `ws` and are reused across calls instead
  /// of being reallocated per vector.
  void detect_into(const CVec& y, Workspace& ws, DetectionResult* res) const;

 private:
  const Constellation* constellation_;
  std::size_t k_;
  linalg::QrResult qr_;
  std::vector<CVec> rx_;
};

}  // namespace flexcore::detect
