// K-best breadth-first sphere decoder (related-work baseline, §6).
//
// Keeps the K lowest-PED partial paths at every tree level.  Included to
// quantify the paper's claim that K-best needs large K (hence heavy sorting)
// for dense constellations and large arrays, while FlexCore selects paths
// a-priori per channel instead.
#pragma once

#include "detect/detector.h"
#include "linalg/qr.h"

namespace flexcore::detect {

class KBestDetector : public Detector {
 public:
  KBestDetector(const Constellation& c, std::size_t k)
      : constellation_(&c), k_(k) {}

  void set_channel(const CMat& h, double noise_var) override;
  DetectionResult detect(const CVec& y) const override;
  std::string name() const override { return "kbest-" + std::to_string(k_); }
  std::size_t parallel_tasks() const override { return k_; }

 private:
  const Constellation* constellation_;
  std::size_t k_;
  linalg::QrResult qr_;
  std::vector<CVec> rx_;
};

}  // namespace flexcore::detect
